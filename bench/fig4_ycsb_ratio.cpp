// Figure 4 (a, b): YCSB throughput and per-op latency vs write ratio.
// Single client in California; 1000 records, 10K ops, Zipfian keys;
// ZooKeeper vs ZooKeeper+observers vs WanKeeper across the paper's three
// AWS regions (leader / L2 in Virginia).
//
// Paper shape to reproduce: WanKeeper ~10x ZK throughput at 50% writes,
// ~3x at 5%; slightly *below* ZK at 0% writes (marshalling overhead);
// ZK writes ~2 WAN RTTs, ZK+obs ~1 RTT, WanKeeper a couple ms once hot.
#include <cstdio>
#include <string>

#include "common/stats.h"
#include "ycsb/runner.h"

using namespace wankeeper;
using namespace wankeeper::ycsb;

int main(int argc, char** argv) {
  std::uint64_t ops = 10000;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") ops = 2000;
  }

  std::printf("=== Fig 4: YCSB read/write ratio, 1 client (California) ===\n");
  TablePrinter table({"write%", "system", "ops/sec", "read avg ms",
                      "write avg ms", "write p80 ms", "local wr%"});

  const double write_ratios[] = {0.0, 0.05, 0.10, 0.25, 0.50};
  double zk_tput[5] = {0};
  double wk_tput[5] = {0};
  int row = 0;
  for (double wr : write_ratios) {
    for (SystemKind sys : {SystemKind::kZooKeeper, SystemKind::kZooKeeperObserver,
                           SystemKind::kWanKeeper}) {
      RunConfig cfg;
      cfg.system = sys;
      ClientSpec client;
      client.site = kCalifornia;
      client.shared_fraction = 0.0;  // single client: it loads its own records
      client.workload.record_count = 1000;
      client.workload.op_count = ops;
      client.workload.write_fraction = wr;
      client.workload.seed = 42;
      cfg.clients = {client};
      const RunResult r = run_experiment(cfg);
      if (sys == SystemKind::kZooKeeper) zk_tput[row] = r.total_throughput;
      if (sys == SystemKind::kWanKeeper) wk_tput[row] = r.total_throughput;
      table.row({TablePrinter::num(wr * 100, 0), system_name(sys),
                 TablePrinter::num(r.total_throughput, 1),
                 TablePrinter::num(r.reads.mean_ms(), 2),
                 TablePrinter::num(r.writes.mean_ms(), 2),
                 TablePrinter::num(
                     static_cast<double>(r.writes.percentile_us(0.8)) / 1000.0, 2),
                 sys == SystemKind::kWanKeeper
                     ? TablePrinter::num(r.local_write_fraction() * 100, 0)
                     : "-"});
      if (sys == SystemKind::kWanKeeper && !r.token_audit_clean) {
        std::printf("!! token audit violations\n");
        return 1;
      }
    }
    ++row;
  }

  std::printf("\nSpeedup WanKeeper vs plain ZooKeeper:\n");
  for (int i = 0; i < 5; ++i) {
    if (zk_tput[i] > 0) {
      std::printf("  %3.0f%% writes: %.1fx\n", write_ratios[i] * 100,
                  wk_tput[i] / zk_tput[i]);
    }
  }
  return 0;
}

// Lock-service bench: the classic ZooKeeper fair-lock recipe (ephemeral
// sequential znodes, each waiter watching its predecessor) running on
// WanKeeper across five WAN sites, under a calm network and under the
// hostile5 scenario (flapping link, one-way partition, whole-site
// leave/rejoin — see sim/scenario.cpp). Grown from examples/wan_lock.cpp
// into a measured bench.
//
// Reported per mode, emitted to BENCH_lock.json:
//   hand-off latency  — release (or holder death) to next acquisition;
//   fairness          — Jain index over per-site acquisition counts;
//   herd size         — watch-triggered queue re-inspections per hand-off
//                       (predecessor watching should hold this at ~1).
//
// Regression gates (CI runs `fig_lock --quick`):
//   both modes:  mutual exclusion holds, herd size <= 1.5, progress floor;
//   calm:        Jain >= 0.90, hand-off p99 <= 5 s, all sites converge;
//   hostile:     Jain >= 0.50 (the left site is dead for ~1/4 of the run),
//                lock keeps making progress through every scripted event.
//
//   ./build/bench/fig_lock [--quick] [--out BENCH_lock.json]
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/scenario.h"
#include "wankeeper/deployment.h"

using namespace wankeeper;

namespace {

// The wan_lock example's FairLock plus instrumentation: every check()
// triggered by a watch event is a member of the "herd" that a hand-off
// woke up.
class FairLock {
 public:
  FairLock(zk::Client& zk, std::string dir, std::uint64_t* herd_wakeups)
      : zk_(zk), dir_(std::move(dir)), herd_wakeups_(herd_wakeups) {
    zk_.set_watch_handler([this](const std::string& path, store::WatchEvent e) {
      if (e == store::WatchEvent::kDeleted && path == watching_) {
        watching_.clear();
        ++*herd_wakeups_;
        check();
      }
    });
  }

  using Body = std::function<void(std::function<void()> release)>;
  void lock(Body body) {
    body_ = std::move(body);
    zk_.create(dir_ + "/lk-", "", /*ephemeral=*/true, /*sequential=*/true,
               [this](const zk::ClientResult& r) {
                 if (!r.ok()) return;
                 me_ = r.created_path;
                 check();
               });
  }

 private:
  void check() {
    zk_.get_children(dir_, false, [this](const zk::ClientResult& r) {
      if (!r.ok() || me_.empty()) return;
      auto names = r.children;
      std::sort(names.begin(), names.end());
      const std::string mine = me_.substr(dir_.size() + 1);
      const auto it = std::find(names.begin(), names.end(), mine);
      if (it == names.end()) return;
      if (it == names.begin()) {
        body_([this]() {
          zk_.remove(me_, -1, [](const zk::ClientResult&) {});
          me_.clear();
        });
        return;
      }
      watching_ = dir_ + "/" + *(it - 1);
      zk_.exists_node(watching_, true, [this](const zk::ClientResult& er) {
        if (er.rc == store::Rc::kNoNode && !watching_.empty()) {
          watching_.clear();
          check();
        }
      });
    });
  }

  zk::Client& zk_;
  std::string dir_;
  std::string me_;
  std::string watching_;
  Body body_;
  std::uint64_t* herd_wakeups_;
};

struct LockRunResult {
  std::uint64_t acquisitions = 0;
  std::uint64_t increments = 0;  // committed critical sections we observed
  std::uint64_t mutex_violations = 0;
  std::uint64_t herd_wakeups = 0;
  std::vector<std::uint64_t> per_site;
  LatencyRecorder handoff;
  bool converged = false;
  bool audit_clean = false;
  int final_counter = 0;

  double jain() const {
    double sum = 0, sq = 0;
    std::size_t n = 0;
    for (const std::uint64_t c : per_site) {
      sum += static_cast<double>(c);
      sq += static_cast<double>(c) * static_cast<double>(c);
      ++n;
    }
    if (sq == 0) return 0.0;
    return sum * sum / (static_cast<double>(n) * sq);
  }
  double herd_per_handoff() const {
    return acquisitions == 0
               ? 0.0
               : static_cast<double>(herd_wakeups) /
                     static_cast<double>(acquisitions);
  }
};

LockRunResult run_lock_bench(const std::string& scenario_name, Time run_for,
                             int contenders_per_site) {
  sim::Scenario scenario = sim::make_scenario(scenario_name);
  wk::TokenAuditor audit;
  sim::Simulator sim(7);
  sim::Network net(sim, sim::scenario_latency(scenario));
  wk::DeploymentConfig cfg;
  cfg.sites = scenario.sites();
  wk::Deployment deploy(sim, net, cfg, &audit);
  LockRunResult out;
  out.per_site.assign(static_cast<std::size_t>(cfg.sites), 0);
  if (!deploy.wait_ready()) return out;

  auto setup = deploy.make_client("setup", 0, 10);
  sim.run_for(kSecond);
  setup->create("/locks", "", false, false, {});
  setup->create("/counter", "0", false, false, {});
  sim.run_for(2 * kSecond);

  struct Contender {
    std::unique_ptr<zk::Client> zk;
    std::unique_ptr<FairLock> lock;
    SiteId site = 0;
  };
  std::vector<Contender> contenders;
  for (SiteId s = 0; s < static_cast<SiteId>(cfg.sites); ++s) {
    for (int c = 0; c < contenders_per_site; ++c) {
      Contender cc;
      cc.site = s;
      cc.zk = deploy.make_client(
          "lk-s" + std::to_string(s) + "-" + std::to_string(c), s,
          static_cast<SessionId>(100 + contenders.size()));
      cc.lock = std::make_unique<FairLock>(*cc.zk, "/locks", &out.herd_wakeups);
      contenders.push_back(std::move(cc));
    }
  }
  sim.run_for(kSecond);

  // The lock trades a single counter around; mutual exclusion shows as a
  // strictly increasing read at every acquisition. `last_release` times the
  // hand-off gap; a holder that dies mid-section (hostile site leave) ends
  // its hold when its ephemeral expires, and the successor's acquisition
  // still closes the gap.
  Time last_release = 0;
  int last_seen = -1;
  bool stopping = false;
  std::function<void(int)> grab = [&](int i) {
    auto& c = contenders[static_cast<std::size_t>(i)];
    c.lock->lock([&, i](std::function<void()> release) {
      auto& me = contenders[static_cast<std::size_t>(i)];
      ++out.acquisitions;
      ++out.per_site[static_cast<std::size_t>(me.site)];
      if (last_release != 0) {
        out.handoff.record(sim.now() - last_release);
      }
      me.zk->get_data(
          "/counter", false, [&, i, release](const zk::ClientResult& r) {
            if (!r.ok()) {  // our site is mid-crash; the ephemeral will expire
              return;
            }
            const int v = std::stoi(std::string(r.data.begin(), r.data.end()));
            if (v <= last_seen) ++out.mutex_violations;
            last_seen = v;
            auto& me2 = contenders[static_cast<std::size_t>(i)];
            me2.zk->set_data(
                "/counter", std::to_string(v + 1), -1,
                [&, i, release](const zk::ClientResult& wr) {
                  if (wr.ok()) ++out.increments;
                  last_release = sim.now();
                  release();
                  if (!stopping) grab(i);
                });
          });
    });
  };
  for (std::size_t i = 0; i < contenders.size(); ++i) {
    grab(static_cast<int>(i));
  }

  sim::ScenarioHooks hooks;
  hooks.site_down = [&deploy](SiteId s) { deploy.crash_site(s); };
  hooks.site_up = [&deploy](SiteId s) { deploy.restart_site(s); };
  scenario.install(net, hooks);

  sim.run_for(std::max(run_for, scenario.horizon() + 8 * kSecond));
  stopping = true;
  sim.run_for(30 * kSecond);  // drain: expiries, resync, final hand-offs

  out.converged = deploy.converged();
  out.audit_clean = audit.clean();
  std::vector<std::uint8_t> data;
  deploy.broker(0, 0).tree().get_data("/counter", &data);
  out.final_counter = std::stoi(std::string(data.begin(), data.end()));
  return out;
}

void show(TablePrinter& t, const char* mode, const LockRunResult& r) {
  t.row({mode, std::to_string(r.acquisitions),
         TablePrinter::num(static_cast<double>(r.handoff.percentile_us(0.5)) /
                               1000.0, 1),
         TablePrinter::num(static_cast<double>(r.handoff.percentile_us(0.99)) /
                               1000.0, 1),
         TablePrinter::num(r.jain(), 3),
         TablePrinter::num(r.herd_per_handoff(), 2),
         std::to_string(r.mutex_violations), r.converged ? "yes" : "NO"});
}

void json_mode(std::FILE* f, const char* mode, const LockRunResult& r,
               bool last) {
  std::fprintf(f, "  \"%s\": {\n", mode);
  std::fprintf(f, "    \"acquisitions\": %llu, \"increments\": %llu,\n",
               static_cast<unsigned long long>(r.acquisitions),
               static_cast<unsigned long long>(r.increments));
  std::fprintf(f,
               "    \"handoff_p50_ms\": %.2f, \"handoff_p99_ms\": %.2f,\n",
               static_cast<double>(r.handoff.percentile_us(0.5)) / 1000.0,
               static_cast<double>(r.handoff.percentile_us(0.99)) / 1000.0);
  std::fprintf(f, "    \"jain_fairness\": %.4f, \"herd_per_handoff\": %.3f,\n",
               r.jain(), r.herd_per_handoff());
  std::fprintf(f, "    \"per_site_acquisitions\": [");
  for (std::size_t s = 0; s < r.per_site.size(); ++s) {
    std::fprintf(f, "%s%llu", s == 0 ? "" : ", ",
                 static_cast<unsigned long long>(r.per_site[s]));
  }
  std::fprintf(f, "],\n");
  std::fprintf(f,
               "    \"mutex_violations\": %llu, \"final_counter\": %d, "
               "\"converged\": %s, \"audit_clean\": %s\n",
               static_cast<unsigned long long>(r.mutex_violations),
               r.final_counter, r.converged ? "true" : "false",
               r.audit_clean ? "true" : "false");
  std::fprintf(f, "  }%s\n", last ? "" : ",");
}

int gate(bool pass, const char* what) {
  if (!pass) std::printf("!! FAIL: %s\n", what);
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_lock.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  std::printf("=== Lock service across 5 WAN sites: calm vs hostile ===\n");
  const int per_site = 2;
  const Time calm_run = quick ? 30 * kSecond : 90 * kSecond;

  const LockRunResult calm = run_lock_bench("calm5", calm_run, per_site);
  // hostile5's own horizon dominates; run_for is a floor.
  const LockRunResult hostile = run_lock_bench("hostile5", 0, per_site);

  TablePrinter table({"mode", "acquisitions", "handoff p50 ms",
                      "handoff p99 ms", "jain", "herd", "mutex viol",
                      "converged"});
  show(table, "calm", calm);
  show(table, "hostile", hostile);

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("!! cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"quick\": %s, \"contenders_per_site\": %d,\n",
                 quick ? "true" : "false", per_site);
    json_mode(f, "calm", calm, false);
    json_mode(f, "hostile", hostile, true);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  int rc = 0;
  // Safety gates: no interleaved critical sections, no token-audit
  // violations, and the calm counter accounts for every increment exactly.
  rc |= gate(calm.mutex_violations == 0, "calm: mutual exclusion violated");
  rc |= gate(hostile.mutex_violations == 0,
             "hostile: mutual exclusion violated");
  rc |= gate(calm.audit_clean && hostile.audit_clean,
             "token audit violations");
  rc |= gate(calm.converged, "calm: sites diverged");
  rc |= gate(hostile.converged, "hostile: sites diverged after heal");
  rc |= gate(calm.final_counter == static_cast<int>(calm.increments),
             "calm: counter != observed increments");
  // Progress gates: the queue must keep moving, even through the hostile
  // run's flap + one-way cut + site leave.
  rc |= gate(calm.acquisitions >= 50, "calm: too few acquisitions");
  rc |= gate(hostile.acquisitions >= 30, "hostile: lock stalled");
  // Quality gates: predecessor watching keeps the herd at ~1 wakeup per
  // hand-off, and rotation stays fair (the hostile bar allows for the dead
  // site's lost turns).
  rc |= gate(calm.herd_per_handoff() <= 1.5, "calm: thundering herd");
  rc |= gate(hostile.herd_per_handoff() <= 1.5, "hostile: thundering herd");
  rc |= gate(calm.jain() >= 0.90, "calm: unfair acquisition distribution");
  rc |= gate(hostile.jain() >= 0.50, "hostile: unfair acquisition distribution");
  rc |= gate(static_cast<double>(calm.handoff.percentile_us(0.99)) <=
                 5.0 * kSecond,
             "calm: hand-off p99 above 5s");

  std::printf(rc == 0 ? "\nall lock-bench gates passed\n"
                      : "\nlock-bench gates FAILED\n");
  return rc;
}

// Wall-clock runtime baseline: the same WanKeeper stack the simulator
// exercises virtually, hosted on rt::ThreadRuntime and timed against real
// hardware. Three sites live in one process (no sockets — bench_rt measures
// the runtime + protocol stack, the rt-soak CI job covers the TCP mesh).
//
// Workload: closed-loop clients, Zipfian key choice over a keyspace that is
// half site-private, half shared across sites (shared keys force token
// recalls through the hub), 50/50 read/write.
//
// Reported, emitted to BENCH_rt.json:
//   ops/sec, latency percentiles (p50/p95/p99/max, microseconds),
//   per-op error count, dropped frames, final convergence.
//
// Regression gates (CI runs `fig_rt --quick`):
//   liveness    — every op completes ok, replicas converge at the end;
//   throughput  — a deliberately conservative ops/sec floor. The modeled
//                 service time (150 us) + head overhead (100 us) are real
//                 timer waits on this runtime, so a closed-loop client is
//                 bounded near ~4k ops/s; the floor only catches an
//                 order-of-magnitude stall, not host jitter;
//   tail        — p99 ceiling, again orders of magnitude above healthy.
//
//   ./build/bench/fig_rt [--quick] [--out BENCH_rt.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "obs/metrics.h"
#include "rt/cluster.h"
#include "rt/thread_runtime.h"
#include "zk/client.h"

using namespace wankeeper;

namespace {

struct BenchResult {
  std::vector<std::uint64_t> latencies_us;  // merged, sorted
  std::uint64_t errors = 0;
  double wall_ms = 0.0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t zab_proposals = 0;  // aggregated across loop threads
  bool converged = false;
  bool ready = true;

  double ops_per_sec() const {
    return wall_ms <= 0.0 ? 0.0
                          : static_cast<double>(latencies_us.size()) /
                                (wall_ms / 1000.0);
  }
  std::uint64_t pct(double p) const {
    if (latencies_us.empty()) return 0;
    const auto at = static_cast<std::size_t>(
        p * static_cast<double>(latencies_us.size() - 1));
    return latencies_us[at];
  }
};

class BenchDriver {
 public:
  BenchDriver(rt::ThreadRuntime& rt, rt::HostedCluster& cluster,
              std::size_t ops_per_client, std::size_t keys)
      : rt_(rt),
        cluster_(cluster),
        ops_per_client_(ops_per_client),
        keys_(keys),
        zipf_(keys * 2) {
    per_client_.resize(cluster.local_client_count());
    for (auto& v : per_client_) v.reserve(ops_per_client);
  }

  bool precreate() {
    std::atomic<long> pending{0};
    for (std::size_t i = 0; i < cluster_.local_client_count(); ++i) {
      // Every client creates its own site's keys; redundant creates across
      // co-sited clients fail benignly with kNodeExists.
      zk::Client* c = &cluster_.client(i);
      const SiteId site = cluster_.client_site(i);
      for (std::size_t j = 0; j < keys_; ++j) {
        for (const std::string& key :
             {"/s" + std::to_string(site) + "-k" + std::to_string(j),
              "/shared-k" + std::to_string(j)}) {
          ++pending;
          rt_.call(c->id(), [c, key, &pending] {
            c->create(key, key, false, false,
                      [&pending](const zk::ClientResult&) { --pending; });
          });
        }
      }
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (pending.load() > 0) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return true;
  }

  bool run() {
    const std::size_t n = cluster_.local_client_count();
    const auto bench_start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      zk::Client* c = &cluster_.client(i);
      const SiteId site = cluster_.client_site(i);
      rt_.call(c->id(), [this, c, site, i] { next_op(c, site, i, 0); });
    }
    const auto deadline = bench_start + std::chrono::seconds(180);
    while (clients_done_.load() < static_cast<long>(n)) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    wall_ms_ = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - bench_start)
                   .count();
    return true;
  }

  BenchResult collect() {
    BenchResult r;
    for (const auto& v : per_client_) {
      r.latencies_us.insert(r.latencies_us.end(), v.begin(), v.end());
    }
    std::sort(r.latencies_us.begin(), r.latencies_us.end());
    r.errors = errors_.load();
    r.wall_ms = wall_ms_;
    return r;
  }

 private:
  // Runs on the client's loop. per_client_[idx] is loop-confined until
  // collect(), which runs after every client reported done.
  void next_op(zk::Client* c, SiteId site, std::size_t idx, std::size_t done) {
    if (done >= ops_per_client_) {
      ++clients_done_;
      return;
    }
    Rng& rng = rt_.rng();
    const std::uint64_t draw = zipf_.next(rng);
    const std::string key =
        draw < keys_
            ? "/shared-k" + std::to_string(draw)
            : "/s" + std::to_string(site) + "-k" + std::to_string(draw - keys_);
    const bool write = rng.chance(0.5);
    const auto start = std::chrono::steady_clock::now();
    auto finish = [this, c, site, idx, done,
                   start](const zk::ClientResult& r) {
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
      per_client_[idx].push_back(static_cast<std::uint64_t>(us));
      if (!r.ok()) ++errors_;
      next_op(c, site, idx, done + 1);
    };
    if (write) {
      c->set_data(key, "v" + std::to_string(done), -1, std::move(finish));
    } else {
      c->get_data(key, false, std::move(finish));
    }
  }

  rt::ThreadRuntime& rt_;
  rt::HostedCluster& cluster_;
  const std::size_t ops_per_client_;
  const std::size_t keys_;
  Zipfian zipf_;
  std::vector<std::vector<std::uint64_t>> per_client_;
  std::atomic<long> clients_done_{0};
  std::atomic<std::uint64_t> errors_{0};
  double wall_ms_ = 0.0;
};

BenchResult run_bench(bool quick) {
  rt::ClusterConfig cfg;
  cfg.sites = 3;
  cfg.nodes_per_site = 2;
  cfg.clients_per_site = quick ? 2 : 4;
  cfg.base_port = 0;  // all sites in-process; rt-soak covers the TCP path
  cfg.seed = 7;
  const std::size_t ops = quick ? 400 : 2000;
  const std::size_t keys = 16;

  rt::ThreadRuntime trt(cfg.seed);
  rt::HostedCluster cluster(trt, cfg);
  cluster.start();

  BenchResult r;
  if (!cluster.wait_ready(60 * kSecond)) {
    r.ready = false;
    return r;
  }
  BenchDriver driver(trt, cluster, ops, keys);
  if (!driver.precreate() || !driver.run()) {
    r.ready = false;
    return r;
  }
  r = driver.collect();

  // Converge: fan-outs from the last writes are still in flight.
  const Time settle_deadline = trt.now() + 20 * kSecond;
  while (trt.now() < settle_deadline) {
    if (cluster.converged_locally()) {
      r.converged = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  r.frames_dropped = trt.frames_dropped();

  // Metrics live in per-thread registries on this runtime; fold them into
  // one deployment-wide view (obs::MetricsRegistry::merge_from).
  obs::MetricsRegistry all;
  trt.collect_metrics(all);
  r.zab_proposals = all.counter_total("zab.proposals");
  return r;
}

int gate(bool pass, const char* what) {
  if (!pass) std::printf("!! FAIL: %s\n", what);
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_rt.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  std::printf("=== Thread-runtime wall-clock baseline (3 sites, %s) ===\n",
              quick ? "quick" : "full");
  const BenchResult r = run_bench(quick);
  if (!r.ready) {
    std::printf("!! FAIL: cluster never became ready / load stalled\n");
    return 1;
  }

  const double ops_per_sec = r.ops_per_sec();
  std::printf("ops:         %zu (%llu error(s))\n", r.latencies_us.size(),
              static_cast<unsigned long long>(r.errors));
  std::printf("wall time:   %.1f ms  ->  %.0f ops/sec\n", r.wall_ms,
              ops_per_sec);
  std::printf("latency us:  p50 %llu  p95 %llu  p99 %llu  max %llu\n",
              static_cast<unsigned long long>(r.pct(0.50)),
              static_cast<unsigned long long>(r.pct(0.95)),
              static_cast<unsigned long long>(r.pct(0.99)),
              static_cast<unsigned long long>(r.pct(1.0)));
  std::printf("frames dropped: %llu, converged: %s, zab proposals: %llu\n",
              static_cast<unsigned long long>(r.frames_dropped),
              r.converged ? "yes" : "no",
              static_cast<unsigned long long>(r.zab_proposals));

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("!! cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"ops\": %zu, \"errors\": %llu,\n",
                 r.latencies_us.size(),
                 static_cast<unsigned long long>(r.errors));
    std::fprintf(f, "  \"wall_ms\": %.1f, \"ops_per_sec\": %.0f,\n", r.wall_ms,
                 ops_per_sec);
    std::fprintf(
        f,
        "  \"p50_us\": %llu, \"p95_us\": %llu, \"p99_us\": %llu, "
        "\"max_us\": %llu,\n",
        static_cast<unsigned long long>(r.pct(0.50)),
        static_cast<unsigned long long>(r.pct(0.95)),
        static_cast<unsigned long long>(r.pct(0.99)),
        static_cast<unsigned long long>(r.pct(1.0)));
    std::fprintf(f, "  \"frames_dropped\": %llu, \"zab_proposals\": %llu, "
                 "\"converged\": %s\n}\n",
                 static_cast<unsigned long long>(r.frames_dropped),
                 static_cast<unsigned long long>(r.zab_proposals),
                 r.converged ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  int rc = 0;
  rc |= gate(!r.latencies_us.empty(), "no ops completed");
  rc |= gate(r.errors == 0, "client ops failed");
  rc |= gate(r.converged, "replicas did not converge after the burst");
  rc |= gate(r.frames_dropped == 0, "runtime dropped frames");
  rc |= gate(r.zab_proposals > 0, "metrics aggregation saw no zab proposals");
  // Loose floors: a closed-loop client is bounded near ~4k ops/s by the
  // modeled 250 us of per-op timer waits; 200 total catches a stall only.
  rc |= gate(ops_per_sec >= 200.0, "below 200 ops/sec");
  rc |= gate(r.pct(0.99) < 500000, "p99 above 500 ms");

  std::printf(rc == 0 ? "\nall rt-bench gates passed\n"
                      : "\nrt-bench gates FAILED\n");
  return rc;
}

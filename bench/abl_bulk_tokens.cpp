// Ablation: bulk tokens for sequential znodes (paper §III-B). Sequential
// siblings share their parent's token and move in bulk, because their names
// come from the parent's counter. This bench shows the tradeoff the paper
// describes: when a lock queue is used by one site the bulk token migrates
// and the whole recipe runs at local latency; when two sites share the
// queue, the bulk token pins at L2 / ping-pongs and every enqueue pays WAN.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>

#include "common/stats.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "wankeeper/deployment.h"

using namespace wankeeper;

namespace {

struct Result {
  double enqueues_per_sec = 0;
  double mean_ms = 0;
};

// `sites` lists where the enqueuers live; each repeatedly creates a
// sequential ephemeral node under /q then deletes it.
Result run_queue(const std::vector<SiteId>& sites, int ops_per_client) {
  sim::Simulator sim(5);
  sim::Network net(sim, sim::LatencyModel::paper_wan());
  wk::Deployment deploy(sim, net, wk::DeploymentConfig{});
  if (!deploy.wait_ready()) return {};
  auto setup = deploy.make_client("setup", 0, 10);
  sim.run_for(kSecond);
  setup->create("/q", "", false, false, {});
  sim.run_for(2 * kSecond);

  struct Enqueuer {
    std::unique_ptr<zk::Client> zk;
    int remaining;
    bool done = false;
    LatencyRecorder lat;
  };
  std::vector<Enqueuer> clients;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    Enqueuer e;
    e.zk = deploy.make_client("q" + std::to_string(i), sites[i],
                              static_cast<SessionId>(100 + i));
    e.remaining = ops_per_client;
    clients.push_back(std::move(e));
  }
  sim.run_for(kSecond);

  const Time start = sim.now();
  std::function<void(int)> pump = [&](int i) {
    auto& e = clients[static_cast<std::size_t>(i)];
    if (e.remaining-- <= 0) {
      e.done = true;
      return;
    }
    const Time t0 = sim.now();
    e.zk->create("/q/item-", "", true, true, [&, i, t0](const zk::ClientResult& r) {
      auto& me = clients[static_cast<std::size_t>(i)];
      me.lat.record(sim.now() - t0);
      if (!r.ok()) {
        pump(i);
        return;
      }
      me.zk->remove(r.created_path, -1,
                    [&, i](const zk::ClientResult&) { pump(i); });
    });
  };
  for (std::size_t i = 0; i < clients.size(); ++i) pump(static_cast<int>(i));

  const Time guard = sim.now() + 2 * 3600 * kSecond;
  while (sim.now() < guard) {
    bool all = true;
    for (const auto& e : clients) {
      if (!e.done) all = false;
    }
    if (all) break;
    sim.run_for(200 * kMillisecond);
  }

  Result out;
  LatencyRecorder all;
  std::uint64_t total = 0;
  for (auto& e : clients) {
    all.merge(e.lat);
    total += static_cast<std::uint64_t>(ops_per_client);
  }
  const Time span = sim.now() - start;
  out.enqueues_per_sec = static_cast<double>(total) * kSecond /
                         static_cast<double>(span > 0 ? span : 1);
  out.mean_ms = all.mean_ms();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int ops = 300;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") ops = 100;
  }
  std::printf("=== Ablation: bulk sequential-znode tokens (lock queues) ===\n");
  TablePrinter table({"enqueuers", "enq/sec", "enqueue ms"});

  const Result one_site = run_queue({1, 1}, ops);
  table.row({"2x California", TablePrinter::num(one_site.enqueues_per_sec, 1),
             TablePrinter::num(one_site.mean_ms, 2)});
  const Result two_sites = run_queue({1, 2}, ops);
  table.row({"CA + FRA", TablePrinter::num(two_sites.enqueues_per_sec, 1),
             TablePrinter::num(two_sites.mean_ms, 2)});

  std::printf("\nSingle-site queues enjoy the migrated bulk token (couple-ms\n"
              "enqueues); cross-site queues serialize at L2 or shuttle the\n"
              "bulk token — the §III-B tradeoff. Ratio: %.1fx\n",
              one_site.enqueues_per_sec / two_sites.enqueues_per_sec);
  return 0;
}

// Figure 7: throughput vs access overlap under a 100% write workload, two
// clients (California, Frankfurt). The overlap knob controls the fraction
// of each client's record space shared with the other site.
//
// Paper shape: ZooKeeper(+obs) is flat in overlap (no locality to lose);
// WanKeeper declines smoothly as overlap rises, and even at 100% overlap
// stays ~20% above ZK+observers by exploiting random runs of same-site
// accesses in the interleaving.
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "ycsb/runner.h"

using namespace wankeeper;
using namespace wankeeper::ycsb;

namespace {

RunResult run_overlap(SystemKind sys, double overlap, std::uint64_t ops) {
  RunConfig cfg;
  cfg.system = sys;
  for (SiteId site : {kCalifornia, kFrankfurt}) {
    ClientSpec client;
    client.site = site;
    client.shared_fraction = overlap;
    client.workload.record_count = 1000;
    client.workload.op_count = ops;
    client.workload.write_fraction = 1.0;  // 100% writes
    client.workload.seed = 42 + static_cast<std::uint64_t>(site);
    cfg.clients.push_back(client);
  }
  return run_experiment(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t ops = 10000;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") ops = 2000;
  }

  std::printf("=== Fig 7: throughput vs access overlap, 100%% writes ===\n");
  TablePrinter table({"overlap%", "system", "total ops/s", "write avg ms",
                      "local wr%", "recalls"});

  double zko_at_100 = 0, wk_at_100 = 0;
  std::vector<std::pair<double, RunResult>> wk_results;
  for (double overlap : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    for (SystemKind sys : {SystemKind::kZooKeeper, SystemKind::kZooKeeperObserver,
                           SystemKind::kWanKeeper}) {
      const RunResult r = run_overlap(sys, overlap, ops);
      table.row({TablePrinter::num(overlap * 100, 0), system_name(sys),
                 TablePrinter::num(r.total_throughput, 1),
                 TablePrinter::num(r.writes.mean_ms(), 2),
                 sys == SystemKind::kWanKeeper
                     ? TablePrinter::num(r.local_write_fraction() * 100, 0)
                     : "-",
                 sys == SystemKind::kWanKeeper ? std::to_string(r.wk_recalls)
                                               : "-"});
      if (overlap == 1.0 && sys == SystemKind::kZooKeeperObserver) {
        zko_at_100 = r.total_throughput;
      }
      if (overlap == 1.0 && sys == SystemKind::kWanKeeper) {
        wk_at_100 = r.total_throughput;
      }
      if (!r.token_audit_clean) {
        std::printf("!! token audit violations\n");
        return 1;
      }
      if (sys == SystemKind::kWanKeeper) wk_results.emplace_back(overlap, r);
    }
  }

  // Where WanKeeper writes spend their time as contention rises: the
  // token_wait and wan_hop phases should grow with overlap while enqueue
  // and zab_propose stay flat.
  std::printf("\n=== WanKeeper per-phase latency vs overlap ===\n");
  TablePrinter phases({"overlap%", "span", "count", "p50 ms", "p99 ms",
                       "total ms"});
  for (const auto& [overlap, r] : wk_results) {
    for (const auto& st : r.phase_breakdown) {
      if (st.count == 0) continue;
      phases.row({TablePrinter::num(overlap * 100, 0), st.kind,
                  std::to_string(st.count),
                  TablePrinter::num(static_cast<double>(st.p50_us) / 1000.0, 2),
                  TablePrinter::num(static_cast<double>(st.p99_us) / 1000.0, 2),
                  TablePrinter::num(static_cast<double>(st.total_us) / 1000.0, 1)});
    }
  }
  if (zko_at_100 > 0) {
    std::printf("\nAt 100%% overlap, WanKeeper / ZK+obs = %.2fx (paper: ~1.2x)\n",
                wk_at_100 / zko_at_100);
  }
  return 0;
}

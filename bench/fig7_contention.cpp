// Figure 7: throughput vs access overlap under a 100% write workload, two
// clients (California, Frankfurt). The overlap knob controls the fraction
// of each client's record space shared with the other site.
//
// Paper shape: ZooKeeper(+obs) is flat in overlap (no locality to lose);
// WanKeeper declines smoothly as overlap rises, and even at 100% overlap
// stays ~20% above ZK+observers by exploiting random runs of same-site
// accesses in the interleaving.
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "ycsb/runner.h"

using namespace wankeeper;
using namespace wankeeper::ycsb;

namespace {

RunResult run_overlap(SystemKind sys, double overlap, std::uint64_t ops) {
  RunConfig cfg;
  cfg.system = sys;
  for (SiteId site : {kCalifornia, kFrankfurt}) {
    ClientSpec client;
    client.site = site;
    client.shared_fraction = overlap;
    client.workload.record_count = 1000;
    client.workload.op_count = ops;
    client.workload.write_fraction = 1.0;  // 100% writes
    client.workload.seed = 42 + static_cast<std::uint64_t>(site);
    cfg.clients.push_back(client);
  }
  return run_experiment(cfg);
}

// --- batching A/B mode (--batching): WanKeeper only, group commit + WAN
// frame coalescing off vs on, identical workload/seed/WAN model. The WAN
// model charges per-frame channel occupancy (a serialization cost batching
// amortizes); it is the same in both modes, so the comparison is honest.

constexpr Time kWanFrameOverhead = 2 * kMillisecond;

RunResult run_batching_case(double overlap, std::size_t clients_per_site,
                            std::uint64_t ops_per_client, bool batching) {
  RunConfig cfg;
  cfg.system = SystemKind::kWanKeeper;
  cfg.batching = batching;
  cfg.wan_frame_overhead = kWanFrameOverhead;
  for (SiteId site : {kCalifornia, kFrankfurt}) {
    for (std::size_t c = 0; c < clients_per_site; ++c) {
      ClientSpec client;
      client.site = site;
      client.shared_fraction = overlap;
      client.workload.record_count = 200;
      client.workload.op_count = ops_per_client;
      client.workload.write_fraction = 1.0;
      client.workload.seed =
          42 + static_cast<std::uint64_t>(site) * 100 + c;
      client.tag = "s" + std::to_string(site) + "c" + std::to_string(c);
      cfg.clients.push_back(client);
    }
  }
  return run_experiment(cfg);
}

void json_case(std::FILE* f, const char* name, double overlap,
               std::size_t clients, const RunResult& off, const RunResult& on,
               bool last) {
  auto one = [f](const char* mode, const RunResult& r, bool inner_last) {
    std::fprintf(f,
                 "    \"%s\": {\"throughput_ops_s\": %.1f, "
                 "\"write_p50_ms\": %.3f, \"write_p99_ms\": %.3f, "
                 "\"frames_sent\": %llu, \"frame_msgs\": %llu}%s\n",
                 mode, r.total_throughput,
                 static_cast<double>(r.writes.percentile_us(0.5)) / 1000.0,
                 static_cast<double>(r.writes.percentile_us(0.99)) / 1000.0,
                 static_cast<unsigned long long>(r.wk_frames_sent),
                 static_cast<unsigned long long>(r.wk_frame_msgs),
                 inner_last ? "" : ",");
  };
  std::fprintf(f, "  \"%s\": {\n", name);
  std::fprintf(f, "    \"overlap\": %.2f, \"clients\": %zu,\n", overlap,
               clients);
  one("off", off, false);
  one("on", on, true);
  std::fprintf(f, "  }%s\n", last ? "" : ",");
}

int run_batching_mode(bool quick, const std::string& out_path) {
  std::printf("=== Batching A/B: group commit + WAN coalescing ===\n");
  std::printf("WAN channel occupancy: %lld us per frame (both modes)\n\n",
              static_cast<long long>(kWanFrameOverhead));

  // Contended: every record shared, many closed-loop writers per site, so
  // the unbatched run saturates the per-frame WAN channel.
  const std::size_t kContendedClients = 16;  // per site
  const std::uint64_t contended_ops = quick ? 100 : 300;
  // Local: the original fig7 shape at overlap 0 — two lone writers whose
  // tokens settle at their sites. Group commit must not delay their
  // (unbatchable) lone requests.
  const std::uint64_t local_ops = quick ? 500 : 2000;

  TablePrinter table({"case", "batching", "total ops/s", "wr p50 ms",
                      "wr p99 ms", "frames", "msgs/frame"});
  auto show = [&table](const char* name, const char* mode, const RunResult& r) {
    const double per_frame =
        r.wk_frames_sent == 0
            ? 0.0
            : static_cast<double>(r.wk_frame_msgs) /
                  static_cast<double>(r.wk_frames_sent);
    table.row({name, mode, TablePrinter::num(r.total_throughput, 1),
               TablePrinter::num(
                   static_cast<double>(r.writes.percentile_us(0.5)) / 1000.0, 2),
               TablePrinter::num(
                   static_cast<double>(r.writes.percentile_us(0.99)) / 1000.0, 2),
               std::to_string(r.wk_frames_sent),
               TablePrinter::num(per_frame, 1)});
  };

  const RunResult cont_off =
      run_batching_case(1.0, kContendedClients, contended_ops, false);
  show("contended", "off", cont_off);
  const RunResult cont_on =
      run_batching_case(1.0, kContendedClients, contended_ops, true);
  show("contended", "on", cont_on);
  const RunResult local_off = run_batching_case(0.0, 1, local_ops, false);
  show("local", "off", local_off);
  const RunResult local_on = run_batching_case(0.0, 1, local_ops, true);
  show("local", "on", local_on);

  for (const RunResult* r : {&cont_off, &cont_on, &local_off, &local_on}) {
    if (!r->token_audit_clean) {
      std::printf("!! token audit violations\n");
      return 1;
    }
  }

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("!! cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"wan_frame_overhead_us\": %lld,\n",
                 static_cast<long long>(kWanFrameOverhead));
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    json_case(f, "contended", 1.0, kContendedClients * 2, cont_off, cont_on,
              false);
    json_case(f, "local", 0.0, 2, local_off, local_on, true);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  // Regression gates (the issue's acceptance bars). Fail loudly so CI can
  // run this binary as a smoke check.
  int rc = 0;
  const double frame_drop =
      cont_off.wk_frames_sent == 0
          ? 0.0
          : 1.0 - static_cast<double>(cont_on.wk_frames_sent) /
                      static_cast<double>(cont_off.wk_frames_sent);
  std::printf("\ncontended frames: %llu -> %llu (%.0f%% drop; need >=30%%)\n",
              static_cast<unsigned long long>(cont_off.wk_frames_sent),
              static_cast<unsigned long long>(cont_on.wk_frames_sent),
              frame_drop * 100);
  if (frame_drop < 0.30) {
    std::printf("!! FAIL: coalescing removed <30%% of frames\n");
    rc = 1;
  }
  std::printf("contended throughput: %.1f -> %.1f ops/s (need improvement)\n",
              cont_off.total_throughput, cont_on.total_throughput);
  if (cont_on.total_throughput <= cont_off.total_throughput) {
    std::printf("!! FAIL: batching did not improve contended throughput\n");
    rc = 1;
  }
  const double p50_off =
      static_cast<double>(local_off.writes.percentile_us(0.5));
  const double p50_on = static_cast<double>(local_on.writes.percentile_us(0.5));
  std::printf("local write p50: %.2f -> %.2f ms (need <= +10%%)\n",
              p50_off / 1000.0, p50_on / 1000.0);
  if (p50_on > 1.10 * p50_off) {
    std::printf("!! FAIL: batching regressed local write p50 by >10%%\n");
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t ops = 10000;
  bool quick = false;
  bool batching = false;
  std::string batching_out = "BENCH_batching.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
      ops = 2000;
    } else if (arg == "--batching") {
      batching = true;
    } else if (arg == "--batching-out" && i + 1 < argc) {
      batching_out = argv[++i];
    }
  }
  if (batching) return run_batching_mode(quick, batching_out);

  std::printf("=== Fig 7: throughput vs access overlap, 100%% writes ===\n");
  TablePrinter table({"overlap%", "system", "total ops/s", "write avg ms",
                      "local wr%", "recalls"});

  double zko_at_100 = 0, wk_at_100 = 0;
  std::vector<std::pair<double, RunResult>> wk_results;
  for (double overlap : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    for (SystemKind sys : {SystemKind::kZooKeeper, SystemKind::kZooKeeperObserver,
                           SystemKind::kWanKeeper}) {
      const RunResult r = run_overlap(sys, overlap, ops);
      table.row({TablePrinter::num(overlap * 100, 0), system_name(sys),
                 TablePrinter::num(r.total_throughput, 1),
                 TablePrinter::num(r.writes.mean_ms(), 2),
                 sys == SystemKind::kWanKeeper
                     ? TablePrinter::num(r.local_write_fraction() * 100, 0)
                     : "-",
                 sys == SystemKind::kWanKeeper ? std::to_string(r.wk_recalls)
                                               : "-"});
      if (overlap == 1.0 && sys == SystemKind::kZooKeeperObserver) {
        zko_at_100 = r.total_throughput;
      }
      if (overlap == 1.0 && sys == SystemKind::kWanKeeper) {
        wk_at_100 = r.total_throughput;
      }
      if (!r.token_audit_clean) {
        std::printf("!! token audit violations\n");
        return 1;
      }
      if (sys == SystemKind::kWanKeeper) wk_results.emplace_back(overlap, r);
    }
  }

  // Where WanKeeper writes spend their time as contention rises: the
  // token_wait and wan_hop phases should grow with overlap while enqueue
  // and zab_propose stay flat.
  std::printf("\n=== WanKeeper per-phase latency vs overlap ===\n");
  TablePrinter phases({"overlap%", "span", "count", "p50 ms", "p99 ms",
                       "total ms"});
  for (const auto& [overlap, r] : wk_results) {
    for (const auto& st : r.phase_breakdown) {
      if (st.count == 0) continue;
      phases.row({TablePrinter::num(overlap * 100, 0), st.kind,
                  std::to_string(st.count),
                  TablePrinter::num(static_cast<double>(st.p50_us) / 1000.0, 2),
                  TablePrinter::num(static_cast<double>(st.p99_us) / 1000.0, 2),
                  TablePrinter::num(static_cast<double>(st.total_us) / 1000.0, 1)});
    }
  }
  // Token churn vs overlap, straight from the flight recorder: at 0%
  // overlap records migrate once to their site and stay; at 100% the same
  // records ping-pong (migrations and recall RTTs climb together).
  std::printf("\n=== Token ownership vs overlap (flight recorder) ===\n");
  TablePrinter churn({"overlap%", "records moved", "migrations", "recalls",
                      "recall p50 ms", "recall p99 ms"});
  for (const auto& [overlap, r] : wk_results) {
    const LatencyRecorder rtt = r.ownership.recall_rtt();
    churn.row({TablePrinter::num(overlap * 100, 0),
               std::to_string(r.ownership.records().size()),
               std::to_string(r.ownership.total_migrations()),
               std::to_string(r.ownership.total_recalls()),
               rtt.count() ? TablePrinter::num(
                                 static_cast<double>(rtt.percentile_us(0.5)) /
                                     1000.0, 1)
                           : "-",
               rtt.count() ? TablePrinter::num(
                                 static_cast<double>(rtt.percentile_us(0.99)) /
                                     1000.0, 1)
                           : "-"});
  }
  if (zko_at_100 > 0) {
    std::printf("\nAt 100%% overlap, WanKeeper / ZK+obs = %.2fx (paper: ~1.2x)\n",
                wk_at_100 / zko_at_100);
  }
  return 0;
}

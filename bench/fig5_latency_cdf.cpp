// Figure 5: CDF of write-request latency for 50% and 100% write workloads
// (single client in California). Paper shape: 80% (50%-write) and 90%
// (100%-write) of WanKeeper writes complete in a couple of milliseconds;
// ZooKeeper+observer writes cluster at 1 WAN RTT; plain ZooKeeper at 2 RTT.
#include <cstdio>
#include <string>

#include "common/stats.h"
#include "ycsb/runner.h"

using namespace wankeeper;
using namespace wankeeper::ycsb;

namespace {

RunResult run_one(SystemKind sys, double write_fraction, std::uint64_t ops) {
  RunConfig cfg;
  cfg.system = sys;
  ClientSpec client;
  client.site = kCalifornia;
  client.shared_fraction = 0.0;
  client.workload.record_count = 1000;
  client.workload.op_count = ops;
  client.workload.write_fraction = write_fraction;
  client.workload.seed = 42;
  cfg.clients = {client};
  return run_experiment(cfg);
}

void print_cdf(const char* label, const LatencyRecorder& lat) {
  std::printf("\n-- %s (n=%zu) --\n", label, lat.count());
  std::printf("%-12s %s\n", "latency_ms", "cumulative");
  for (const auto& [ms, frac] : lat.cdf(20)) {
    std::printf("%-12.2f %.3f\n", ms, frac);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t ops = 10000;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") ops = 2000;
  }
  std::printf("=== Fig 5: write latency CDF, 1 client (California) ===\n");

  for (double wf : {0.5, 1.0}) {
    std::printf("\n### %.0f%% write workload ###\n", wf * 100);
    for (SystemKind sys : {SystemKind::kZooKeeper, SystemKind::kZooKeeperObserver,
                           SystemKind::kWanKeeper}) {
      const RunResult r = run_one(sys, wf, ops);
      const std::string label = std::string(system_name(sys)) + " writes";
      print_cdf(label.c_str(), r.writes);
      std::printf("   p50=%.2fms p80=%.2fms p90=%.2fms p99=%.2fms\n",
                  r.writes.percentile_us(0.5) / 1000.0,
                  r.writes.percentile_us(0.8) / 1000.0,
                  r.writes.percentile_us(0.9) / 1000.0,
                  r.writes.percentile_us(0.99) / 1000.0);
    }
  }
  return 0;
}

// Figure 5: CDF of write-request latency for 50% and 100% write workloads
// (single client in California). Paper shape: 80% (50%-write) and 90%
// (100%-write) of WanKeeper writes complete in a couple of milliseconds;
// ZooKeeper+observer writes cluster at 1 WAN RTT; plain ZooKeeper at 2 RTT.
//
// The flight recorder explains the shape: each run prints a per-phase
// latency breakdown (where writes spend their time — queueing, Zab, WAN
// hops, token waits) and, with --metrics-out FILE, dumps the WanKeeper
// metrics registry as JSON. Both are byte-identical across same-seed runs.
#include <cstdio>
#include <fstream>
#include <string>

#include "common/stats.h"
#include "ycsb/runner.h"

using namespace wankeeper;
using namespace wankeeper::ycsb;

namespace {

bool g_batching = false;  // --batching: group commit + WAN coalescing on

RunResult run_one(SystemKind sys, double write_fraction, std::uint64_t ops) {
  RunConfig cfg;
  cfg.system = sys;
  cfg.batching = g_batching;
  ClientSpec client;
  client.site = kCalifornia;
  client.shared_fraction = 0.0;
  client.workload.record_count = 1000;
  client.workload.op_count = ops;
  client.workload.write_fraction = write_fraction;
  client.workload.seed = 42;
  cfg.clients = {client};
  return run_experiment(cfg);
}

void print_cdf(const char* label, const LatencyRecorder& lat) {
  std::printf("\n-- %s (n=%zu) --\n", label, lat.count());
  std::printf("%-12s %s\n", "latency_ms", "cumulative");
  for (const auto& [ms, frac] : lat.cdf(20)) {
    std::printf("%-12.2f %.3f\n", ms, frac);
  }
}

void print_breakdown(const RunResult& r) {
  std::printf("   per-phase breakdown:\n");
  std::printf("   %-12s %8s %10s %10s %12s\n", "span", "count", "p50_ms",
              "p99_ms", "total_ms");
  for (const auto& st : r.phase_breakdown) {
    if (st.count == 0) continue;
    std::printf("   %-12s %8zu %10.2f %10.2f %12.1f\n", st.kind.c_str(),
                st.count, static_cast<double>(st.p50_us) / 1000.0,
                static_cast<double>(st.p99_us) / 1000.0,
                static_cast<double>(st.total_us) / 1000.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t ops = 10000;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") ops = 2000;
    if (std::string(argv[i]) == "--batching") g_batching = true;
    if (std::string(argv[i]) == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    }
  }
  std::printf("=== Fig 5: write latency CDF, 1 client (California) ===\n");
  if (g_batching) std::printf("(batching: group commit + WAN coalescing ON)\n");

  for (double wf : {0.5, 1.0}) {
    std::printf("\n### %.0f%% write workload ###\n", wf * 100);
    for (SystemKind sys : {SystemKind::kZooKeeper, SystemKind::kZooKeeperObserver,
                           SystemKind::kWanKeeper}) {
      const RunResult r = run_one(sys, wf, ops);
      const std::string label = std::string(system_name(sys)) + " writes";
      print_cdf(label.c_str(), r.writes);
      std::printf("   p50=%.2fms p80=%.2fms p90=%.2fms p99=%.2fms\n",
                  r.writes.percentile_us(0.5) / 1000.0,
                  r.writes.percentile_us(0.8) / 1000.0,
                  r.writes.percentile_us(0.9) / 1000.0,
                  r.writes.percentile_us(0.99) / 1000.0);
      print_breakdown(r);
      if (sys == SystemKind::kWanKeeper) {
        std::printf("   slowest traces:\n");
        for (const auto& t : r.slow_traces) std::printf("%s", t.c_str());
        if (!metrics_out.empty() && wf == 1.0) {
          std::ofstream out(metrics_out);
          out << r.metrics_json;
        }
      }
    }
  }
  return 0;
}

// Figure 10: SCFS metadata updates from two sites (California, Frankfurt),
// ZooKeeper+observers vs WanKeeper cold start.
//   (a) no hot spot: throughput & avg latency vs access overlap — WanKeeper
//       far ahead at <=10% overlap, converging toward ZK+obs at >=50%;
//   (b) 80/20 per-site hot spot: WanKeeper ~5x even at 80% overlap;
//   (c) throughput per 10 s window over time at 10% and 50% overlap —
//       Frankfurt accelerates once California finishes its 10K ops.
#include <cstdio>
#include <string>

#include "common/stats.h"
#include "scfs/workload.h"

using namespace wankeeper;
using namespace wankeeper::scfs;

namespace {

void run_sweep(bool hotspot, std::uint64_t ops) {
  std::printf("\n### Fig 10%s: %s ###\n", hotspot ? "b" : "a",
              hotspot ? "80%% of ops on per-site 20%% hot sets"
                      : "no hot spot (uniform)");
  TablePrinter table({"overlap%", "system", "total ops/s", "CA ops/s",
                      "FRA ops/s", "CA lat ms", "FRA lat ms", "local wr%"});
  double zko_80 = 0, wk_80 = 0;
  for (double overlap : {0.0, 0.1, 0.25, 0.5, 0.8, 1.0}) {
    for (ycsb::SystemKind sys :
         {ycsb::SystemKind::kZooKeeperObserver, ycsb::SystemKind::kWanKeeper}) {
      ScfsBenchConfig cfg;
      cfg.system = sys;
      cfg.overlap = overlap;
      cfg.hotspot = hotspot;
      cfg.ops_per_site = ops;
      const ScfsBenchResult r = run_scfs_bench(cfg);
      table.row({TablePrinter::num(overlap * 100, 0), ycsb::system_name(sys),
                 TablePrinter::num(r.total_throughput, 1),
                 TablePrinter::num(r.site_throughput[0], 1),
                 TablePrinter::num(r.site_throughput[1], 1),
                 TablePrinter::num(r.site_latency_ms[0], 1),
                 TablePrinter::num(r.site_latency_ms[1], 1),
                 sys == ycsb::SystemKind::kWanKeeper
                     ? TablePrinter::num(r.local_write_fraction * 100, 0)
                     : "-"});
      if (hotspot && overlap == 0.8) {
        if (sys == ycsb::SystemKind::kZooKeeperObserver) zko_80 = r.total_throughput;
        if (sys == ycsb::SystemKind::kWanKeeper) wk_80 = r.total_throughput;
      }
      if (!r.audit_clean) std::printf("!! token audit violations\n");
    }
  }
  if (hotspot && zko_80 > 0) {
    std::printf("\nAt 80%% overlap with hot spots, WanKeeper / ZK+obs = %.1fx "
                "(paper: ~5x)\n",
                wk_80 / zko_80);
  }
}

void run_timeseries(std::uint64_t ops) {
  std::printf("\n### Fig 10c: WanKeeper throughput per 10s window "
              "(20%% hot spot) ###\n");
  for (double overlap : {0.1, 0.5}) {
    ScfsBenchConfig cfg;
    cfg.system = ycsb::SystemKind::kWanKeeper;
    cfg.overlap = overlap;
    cfg.hotspot = true;
    cfg.ops_per_site = ops;
    const ScfsBenchResult r = run_scfs_bench(cfg);
    std::printf("\n%.0f%% overlap:\n", overlap * 100);
    std::printf("%-10s %-12s %-12s\n", "window", "CA ops/s", "FRA ops/s");
    const std::size_t n = std::max(r.series_ca.size(), r.series_fra.size());
    for (std::size_t w = 0; w < n; ++w) {
      std::printf("%-10zu %-12.1f %-12.1f\n", w,
                  w < r.series_ca.size() ? r.series_ca[w] : 0.0,
                  w < r.series_fra.size() ? r.series_fra[w] : 0.0);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t ops = 10000;
  bool timeseries_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") ops = 2000;
    if (std::string(argv[i]) == "--timeseries") timeseries_only = true;
  }
  std::printf("=== Fig 10: SCFS metadata updates, two sites ===\n");
  if (!timeseries_only) {
    run_sweep(/*hotspot=*/false, ops);
    run_sweep(/*hotspot=*/true, ops);
  }
  run_timeseries(ops);
  return 0;
}

// Microbenchmarks (google-benchmark) for the hot single-node components:
// the Zipfian key chooser, transaction marshalling, the znode tree, the
// token tables, and the Markov predictor. These bound the CPU costs behind
// the simulator's service-time model.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "store/datatree.h"
#include "wankeeper/predictor.h"
#include "wankeeper/token_manager.h"
#include "wankeeper/wan_transport.h"
#include "zk/server.h"

namespace wankeeper {
namespace {

void BM_ZipfianNext(benchmark::State& state) {
  Zipfian z(static_cast<std::uint64_t>(state.range(0)), 0.99);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.next(rng));
  }
}
BENCHMARK(BM_ZipfianNext)->Arg(1000)->Arg(100000);

void BM_TxnEncodeDecode(benchmark::State& state) {
  store::Txn txn;
  txn.type = store::TxnType::kSetData;
  txn.zxid = make_zxid(3, 1234);
  txn.path = "/ycsb/usertable/user4392857";
  txn.data.assign(static_cast<std::size_t>(state.range(0)), 0x61);
  txn.version = 17;
  for (auto _ : state) {
    const auto bytes = txn.encode();
    benchmark::DoNotOptimize(store::Txn::decode(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TxnEncodeDecode)->Arg(100)->Arg(1024);

void BM_EnvelopeRoundTrip(benchmark::State& state) {
  zk::Envelope env;
  env.session = 12345;
  env.xid = 678;
  env.txn.type = store::TxnType::kCreate;
  env.txn.path = "/services/search/instance-0000000042";
  env.txn.data.assign(128, 0x62);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zk::Envelope::decode(env.encode()));
  }
}
BENCHMARK(BM_EnvelopeRoundTrip);

void BM_DataTreeCreate(benchmark::State& state) {
  std::uint64_t i = 0;
  store::DataTree tree;
  for (auto _ : state) {
    store::Txn txn;
    txn.type = store::TxnType::kCreate;
    txn.zxid = ++i;
    txn.path = "/n" + std::to_string(i);
    benchmark::DoNotOptimize(tree.apply(txn, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DataTreeCreate);

void BM_DataTreeGetData(benchmark::State& state) {
  store::DataTree tree;
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) {
    store::Txn txn;
    txn.type = store::TxnType::kCreate;
    txn.zxid = i + 1;
    txn.path = "/n" + std::to_string(i);
    txn.data.assign(100, 0x61);
    tree.apply(txn, 0);
  }
  Rng rng(2);
  std::vector<std::uint8_t> data;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.get_data("/n" + std::to_string(rng.uniform(n)), &data));
  }
}
BENCHMARK(BM_DataTreeGetData)->Arg(1000)->Arg(100000);

void BM_DataTreeDigest(benchmark::State& state) {
  store::DataTree tree;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    store::Txn txn;
    txn.type = store::TxnType::kCreate;
    txn.zxid = i + 1;
    txn.path = "/n" + std::to_string(i);
    txn.data.assign(100, 0x61);
    tree.apply(txn, 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.digest());
  }
}
BENCHMARK(BM_DataTreeDigest);

void BM_BrokerTokenAccess(benchmark::State& state) {
  wk::BrokerTokenTable table;
  wk::ConsecutivePolicy policy(2);
  Rng rng(3);
  for (auto _ : state) {
    const auto key = "node:/k" + std::to_string(rng.uniform(1000));
    benchmark::DoNotOptimize(
        table.record_access(key, static_cast<SiteId>(rng.uniform(3)), policy));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BrokerTokenAccess);

// WAN transport frame coalescing: cost of pushing `batch` messages through
// send() + flush into one frame, delivering it, and handling the ack.
// Arg(1) is the uncoalesced baseline (one frame per message).
void BM_WanTransportCoalesce(benchmark::State& state) {
  struct Probe : sim::Message {
    const char* name() const override { return "probe"; }
    std::size_t wire_size() const override { return 128; }
  };
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  wk::WanBatchOptions opts;
  opts.max_msgs = batch;
  opts.max_bytes = 1 << 20;
  for (auto _ : state) {
    state.PauseTiming();
    sim::MessagePtr wire, ack;
    wk::WanTransport b(
        1, [&ack](SiteId, sim::MessagePtr m) { ack = std::move(m); },
        [](SiteId, const sim::MessagePtr&) {}, opts);
    wk::WanTransport a(
        0, [&wire](SiteId, sim::MessagePtr m) { wire = std::move(m); },
        [](SiteId, const sim::MessagePtr&) {}, opts);
    state.ResumeTiming();
    for (std::size_t i = 0; i < batch; ++i) {
      a.send(1, std::make_shared<Probe>());
    }
    b.on_message(0, wire);  // deliver the frame; b emits a cumulative ack
    a.on_message(1, ack);   // retire the frame
    benchmark::DoNotOptimize(a.unacked(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_WanTransportCoalesce)->Arg(1)->Arg(8)->Arg(32);

void BM_PredictorObserve(benchmark::State& state) {
  wk::MarkovPredictor predictor(1024);
  Rng rng(4);
  for (auto _ : state) {
    predictor.observe("rec" + std::to_string(rng.uniform(100)),
                      static_cast<SiteId>(rng.uniform(3)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PredictorObserve);

}  // namespace
}  // namespace wankeeper

BENCHMARK_MAIN();

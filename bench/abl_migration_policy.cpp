// Ablation: the token-migration policy knob (paper §II-B picks r=2; §VI
// proposes smarter policies). Sweeps the policy across two workloads:
//   - "locality": single client in California (pure home-site access);
//   - "contended": two clients, fully shared keys, 100% writes.
// never = pure centralized coordination (tokens pinned at L2);
// always = eager first-touch migration; consecutive:r = the paper's rule;
// predictive = Markov-model decisions (§II-B Token Prediction).
#include <cstdio>
#include <string>

#include "common/stats.h"
#include "ycsb/runner.h"

using namespace wankeeper;
using namespace wankeeper::ycsb;

namespace {

RunResult run_locality(const std::string& policy, std::uint64_t ops) {
  RunConfig cfg;
  cfg.system = SystemKind::kWanKeeper;
  cfg.wk_policy = policy;
  ClientSpec c;
  c.site = kCalifornia;
  c.shared_fraction = 0.0;
  c.workload.record_count = 1000;
  c.workload.op_count = ops;
  c.workload.write_fraction = 0.5;
  c.workload.seed = 42;
  cfg.clients = {c};
  return run_experiment(cfg);
}

RunResult run_mixed(const std::string& policy, std::uint64_t ops) {
  RunConfig cfg;
  cfg.system = SystemKind::kWanKeeper;
  cfg.wk_policy = policy;
  for (SiteId site : {kCalifornia, kFrankfurt}) {
    ClientSpec c;
    c.site = site;
    c.shared_fraction = 1.0;
    c.workload.record_count = 1000;
    c.workload.op_count = ops;
    c.workload.write_fraction = 1.0;
    c.workload.seed = 42 + static_cast<std::uint64_t>(site);
    cfg.clients.push_back(c);
  }
  return run_experiment(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t ops = 10000;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") ops = 2000;
  }
  const char* policies[] = {"never",         "always",       "consecutive:1",
                            "consecutive:2", "consecutive:3", "consecutive:4",
                            "predictive"};

  std::printf("=== Ablation: migration policy ===\n");
  std::printf("\n-- locality workload (1 client @ CA, 50%% writes) --\n");
  TablePrinter t1({"policy", "ops/sec", "write ms", "local wr%", "grants",
                   "recalls"});
  for (const char* p : policies) {
    const RunResult r = run_locality(p, ops);
    t1.row({p, TablePrinter::num(r.total_throughput, 1),
            TablePrinter::num(r.writes.mean_ms(), 2),
            TablePrinter::num(r.local_write_fraction() * 100, 0),
            std::to_string(r.wk_grants), std::to_string(r.wk_recalls)});
    if (!r.token_audit_clean) return 1;
  }

  std::printf("\n-- contended workload (CA+FRA, 100%% overlap, 100%% writes) --\n");
  TablePrinter t2({"policy", "ops/sec", "write ms", "local wr%", "grants",
                   "recalls"});
  for (const char* p : policies) {
    const RunResult r = run_mixed(p, ops);
    t2.row({p, TablePrinter::num(r.total_throughput, 1),
            TablePrinter::num(r.writes.mean_ms(), 2),
            TablePrinter::num(r.local_write_fraction() * 100, 0),
            std::to_string(r.wk_grants), std::to_string(r.wk_recalls)});
    if (!r.token_audit_clean) return 1;
  }
  std::printf("\nShape: 'never' is the centralized floor; eager policies win\n"
              "under locality; under full contention eager migration thrashes\n"
              "(grants+recalls per flip) and the spread between policies\n"
              "narrows toward the centralized floor.\n");
  return 0;
}

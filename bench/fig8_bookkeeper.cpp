// Figure 8b: BookKeeper geo-distributed write throughput vs writer
// duration. Four writers share one logical log (3 in California, 1 in
// Frankfurt; bookies in every region; no writers in Virginia) and hand off
// via a lock in the coordination service.
//
// Paper shape: centralized ZK is the bottleneck, worst at short durations;
// ZK+observers helps; WanKeeper adds local coordination writes in the log's
// home region (~45% over ZK+obs at 0.4 s); all converge as the duration
// grows and coordination leaves the critical path.
#include <cstdio>
#include <string>

#include "bookkeeper/writer.h"
#include "common/stats.h"

using namespace wankeeper;
using namespace wankeeper::bk;

int main(int argc, char** argv) {
  Time horizon = 60 * kSecond;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") horizon = 20 * kSecond;
  }

  std::printf("=== Fig 8b: BookKeeper geo writers (3 CA + 1 FRA) ===\n");
  std::printf("Lock recipes: 'simple' = create/watch lock (waiters race; home-\n"
              "region writers react a WAN RTT sooner, so turns concentrate in\n"
              "California); 'fair' = sequential-znode FIFO queue (strict 3:1\n"
              "rotation). The paper's ~1.45x at 0.4s falls between the two.\n\n");
  TablePrinter table({"duration s", "system", "entries/s", "rounds",
                      "handoff ms"});

  struct Variant {
    ycsb::SystemKind sys;
    bool fair;
    const char* label;
  };
  const Variant variants[] = {
      {ycsb::SystemKind::kZooKeeper, false, "ZK"},
      {ycsb::SystemKind::kZooKeeperObserver, false, "ZK+obs"},
      {ycsb::SystemKind::kWanKeeper, false, "WK simple"},
      {ycsb::SystemKind::kWanKeeper, true, "WK fair"},
  };

  double zko_04 = 0, wk_04 = 0;
  for (Time duration : {200 * kMillisecond, 400 * kMillisecond, 800 * kMillisecond,
                        1600 * kMillisecond, 3200 * kMillisecond}) {
    for (const auto& v : variants) {
      BkBenchConfig cfg;
      cfg.system = v.sys;
      cfg.fair_lock = v.fair;
      cfg.write_duration = duration;
      cfg.horizon = horizon;
      const BkBenchResult r = run_bk_bench(cfg);
      table.row({TablePrinter::num(static_cast<double>(duration) / kSecond, 1),
                 v.label, TablePrinter::num(r.entries_per_sec, 0),
                 std::to_string(r.total_rounds),
                 TablePrinter::num(r.mean_handoff_ms, 1)});
      if (duration == 400 * kMillisecond) {
        if (v.sys == ycsb::SystemKind::kZooKeeperObserver) zko_04 = r.entries_per_sec;
        if (v.sys == ycsb::SystemKind::kWanKeeper && !v.fair) wk_04 = r.entries_per_sec;
      }
      if (!r.audit_clean) {
        std::printf("!! token audit violations\n");
        return 1;
      }
    }
  }
  if (zko_04 > 0) {
    std::printf("\nAt 0.4s, WanKeeper(simple) / ZK+obs = %.2fx (paper: ~1.45x)\n",
                wk_04 / zko_04);
  }
  return 0;
}

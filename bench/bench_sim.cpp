// Sim-profiler baseline: how fast the discrete-event simulator itself
// executes a full WAN deployment, and — more importantly for CI — whether
// it is still deterministic. The workload is the flap3 scenario sweep from
// src/wankeeper/sweep_harness.h: three sites, a flapping WAN link, mixed
// read/write load, quiesce, full checker pass.
//
// Reported, emitted to BENCH_sim.json:
//   events/sec       — event-loop throughput (wall-clock, profiled run);
//   events executed / scheduled / cancelled, queue high-water;
//   event-slab behavior: slots recycled vs slab growth, callables that
//     spilled off the inline slot buffer;
//   message frame arena: frames handed out, recycled share, bytes;
//   payload sharing: bytes deep-copied vs structurally shared;
//   messages sent / delivered / dropped, WAN share;
//   flight-recorder volume (events recorded across all rings).
//
// Regression gates (CI runs `bench_sim --quick`):
//   determinism  — two unprofiled runs with the same seed must agree on
//                  every counter and on a digest of the merged event log
//                  (the profiled run must match too: profiling must not
//                  perturb the virtual execution);
//   liveness     — all counters nonzero, the sweep itself passes;
//   throughput   — a deliberately conservative events/sec floor, meant to
//                  catch an accidental O(n^2) in the hot path, not to
//                  benchmark the host machine.
//
//   ./build/bench/bench_sim [--quick] [--out BENCH_sim.json]
#include <cstdio>
#include <string>

#include "common/bytes.h"
#include "sim/message.h"
#include "wankeeper/sweep_harness.h"

using namespace wankeeper;

namespace {

struct RunOutcome {
  sim::SimProfile profile;
  sim::NetworkStats net;
  sim::detail::ArenaStats arena;  // message frames, this run only
  common::BytesStats payload;     // payload copy-vs-share, this run only
  std::uint64_t events_recorded = 0;  // flight recorder, all rings
  std::uint64_t event_digest = 0;     // FNV-1a over the merged event text
  Time virtual_end = 0;
  bool sweep_ok = false;
};

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

RunOutcome run_once(std::uint64_t seed, bool profiled) {
  sim::reset_message_arena_stats();
  common::bytes_stats() = common::BytesStats{};
  sim::Scenario scenario = sim::make_scenario("flap3");
  wk::DeploymentConfig cfg;
  cfg.sites = scenario.sites();
  wk::LoadedDeployment d(seed, cfg, sim::scenario_latency(scenario));
  if (profiled) d.sim.enable_profiling();
  const wk::SweepResult r = wk::run_scenario_sweep_on(d, scenario);

  RunOutcome out;
  out.profile = d.sim.profile();
  out.net = d.net.stats();
  out.arena = sim::message_arena_stats();
  out.payload = common::bytes_stats();
  out.virtual_end = d.sim.now();
  out.sweep_ok = r.ok();
  const obs::EventLog& events = d.sim.obs().events;
  for (const obs::Event& ev : events.merged()) {
    (void)ev;
    ++out.events_recorded;
  }
  out.event_digest = fnv1a(events.to_text());
  return out;
}

bool same_execution(const RunOutcome& a, const RunOutcome& b) {
  // Arena `reused` is deliberately absent: the second run in a process
  // starts with a warm free list, so its reuse share is *higher* — only the
  // demand-side counters (frames, bytes) are execution-determined.
  return a.profile.events_executed == b.profile.events_executed &&
         a.profile.events_scheduled == b.profile.events_scheduled &&
         a.profile.events_cancelled == b.profile.events_cancelled &&
         a.profile.events_pooled == b.profile.events_pooled &&
         a.profile.events_grown == b.profile.events_grown &&
         a.arena.allocs == b.arena.allocs && a.arena.bytes == b.arena.bytes &&
         a.payload.bytes_materialized == b.payload.bytes_materialized &&
         a.payload.bytes_shared == b.payload.bytes_shared &&
         a.net.messages_delivered == b.net.messages_delivered &&
         a.net.messages_dropped == b.net.messages_dropped &&
         a.events_recorded == b.events_recorded &&
         a.event_digest == b.event_digest && a.virtual_end == b.virtual_end;
}

int gate(bool pass, const char* what) {
  if (!pass) std::printf("!! FAIL: %s\n", what);
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_sim.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  std::printf("=== Simulator event-loop baseline (flap3 scenario sweep) ===\n");
  const std::uint64_t seed = 11;

  // Two cold unprofiled runs pin determinism; the profiled run measures
  // throughput and must replay the identical virtual execution.
  const RunOutcome a = run_once(seed, /*profiled=*/false);
  const RunOutcome b = run_once(seed, /*profiled=*/false);
  const RunOutcome p = run_once(seed, /*profiled=*/true);

  const double events_per_sec = p.profile.events_per_sec();
  const double virtual_s = static_cast<double>(p.virtual_end) / kSecond;
  std::printf("virtual time:     %.1f s\n", virtual_s);
  std::printf("events executed:  %llu (%llu scheduled, %llu cancelled)\n",
              static_cast<unsigned long long>(p.profile.events_executed),
              static_cast<unsigned long long>(p.profile.events_scheduled),
              static_cast<unsigned long long>(p.profile.events_cancelled));
  std::printf("queue high-water: %zu\n", p.profile.queue_high_water);
  std::printf("event slab:       %llu pooled, %llu chunk(s) grown, "
              "%llu fn heap spill(s)\n",
              static_cast<unsigned long long>(p.profile.events_pooled),
              static_cast<unsigned long long>(p.profile.events_grown),
              static_cast<unsigned long long>(p.profile.fn_heap_allocs));
  std::printf("frame arena:      %llu frame(s), %llu reused (%.1f%%), "
              "%llu bytes\n",
              static_cast<unsigned long long>(p.arena.allocs),
              static_cast<unsigned long long>(p.arena.reused),
              p.arena.allocs == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(p.arena.reused) /
                        static_cast<double>(p.arena.allocs),
              static_cast<unsigned long long>(p.arena.bytes));
  std::printf("payload bytes:    %llu materialized, %llu shared\n",
              static_cast<unsigned long long>(p.payload.bytes_materialized),
              static_cast<unsigned long long>(p.payload.bytes_shared));
  std::printf("wall time:        %.3f s  ->  %.0f events/sec\n",
              static_cast<double>(p.profile.wall_ns) / 1e9, events_per_sec);
  std::printf("messages:         %llu sent, %llu delivered, %llu dropped "
              "(%llu WAN)\n",
              static_cast<unsigned long long>(p.net.messages_sent),
              static_cast<unsigned long long>(p.net.messages_delivered),
              static_cast<unsigned long long>(p.net.messages_dropped),
              static_cast<unsigned long long>(p.net.wan_messages));
  std::printf("flight recorder:  %llu event(s), digest %016llx\n",
              static_cast<unsigned long long>(p.events_recorded),
              static_cast<unsigned long long>(p.event_digest));

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("!! cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"quick\": %s, \"seed\": %llu,\n",
                 quick ? "true" : "false",
                 static_cast<unsigned long long>(seed));
    std::fprintf(f, "  \"virtual_seconds\": %.3f,\n", virtual_s);
    std::fprintf(
        f,
        "  \"events_executed\": %llu, \"events_scheduled\": %llu,\n"
        "  \"events_cancelled\": %llu, \"queue_high_water\": %zu,\n",
        static_cast<unsigned long long>(p.profile.events_executed),
        static_cast<unsigned long long>(p.profile.events_scheduled),
        static_cast<unsigned long long>(p.profile.events_cancelled),
        p.profile.queue_high_water);
    std::fprintf(f, "  \"wall_ns\": %llu, \"events_per_sec\": %.0f,\n",
                 static_cast<unsigned long long>(p.profile.wall_ns),
                 events_per_sec);
    std::fprintf(
        f,
        "  \"events_pooled\": %llu, \"events_grown\": %llu,\n"
        "  \"fn_heap_allocs\": %llu,\n",
        static_cast<unsigned long long>(p.profile.events_pooled),
        static_cast<unsigned long long>(p.profile.events_grown),
        static_cast<unsigned long long>(p.profile.fn_heap_allocs));
    std::fprintf(
        f,
        "  \"arena_frames\": %llu, \"arena_reused\": %llu,\n"
        "  \"arena_bytes\": %llu,\n",
        static_cast<unsigned long long>(p.arena.allocs),
        static_cast<unsigned long long>(p.arena.reused),
        static_cast<unsigned long long>(p.arena.bytes));
    std::fprintf(
        f,
        "  \"payload_bytes_materialized\": %llu, "
        "\"payload_bytes_shared\": %llu,\n",
        static_cast<unsigned long long>(p.payload.bytes_materialized),
        static_cast<unsigned long long>(p.payload.bytes_shared));
    std::fprintf(
        f,
        "  \"messages_sent\": %llu, \"messages_delivered\": %llu,\n"
        "  \"messages_dropped\": %llu, \"wan_messages\": %llu,\n",
        static_cast<unsigned long long>(p.net.messages_sent),
        static_cast<unsigned long long>(p.net.messages_delivered),
        static_cast<unsigned long long>(p.net.messages_dropped),
        static_cast<unsigned long long>(p.net.wan_messages));
    std::fprintf(f,
                 "  \"recorder_events\": %llu, \"event_digest\": \"%016llx\",\n",
                 static_cast<unsigned long long>(p.events_recorded),
                 static_cast<unsigned long long>(p.event_digest));
    std::fprintf(f, "  \"deterministic\": %s, \"sweep_ok\": %s\n}\n",
                 same_execution(a, b) && same_execution(a, p) ? "true"
                                                              : "false",
                 p.sweep_ok ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  int rc = 0;
  rc |= gate(same_execution(a, b), "same seed, different execution");
  rc |= gate(same_execution(a, p),
             "profiling perturbed the virtual execution");
  rc |= gate(a.sweep_ok && b.sweep_ok && p.sweep_ok,
             "baseline sweep did not pass cleanly");
  rc |= gate(p.profile.events_executed > 0 && p.net.messages_delivered > 0,
             "no work executed");
  rc |= gate(p.events_recorded > 0, "flight recorder captured nothing");
  rc |= gate(p.profile.wall_ns > 0, "profiler measured no wall time");
  // Deliberately loose: CI machines vary widely; this catches an order-of-
  // magnitude event-loop regression, not jitter. Raised from 20k after the
  // event-slab/frame-arena rebuild tripled local throughput.
  rc |= gate(events_per_sec >= 60000.0, "event loop below 60k events/sec");
  // The steady-state pools must actually pool: if recycling stops (slots or
  // frames all fresh), the hot-path rebuild has silently regressed.
  rc |= gate(p.profile.events_pooled > p.profile.events_grown * 256,
             "event slab not recycling slots");
  rc |= gate(p.arena.reused * 2 > p.arena.allocs,
             "frame arena reuse below 50%");

  std::printf(rc == 0 ? "\nall sim-bench gates passed\n"
                      : "\nsim-bench gates FAILED\n");
  return rc;
}

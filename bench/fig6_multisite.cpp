// Figure 6: two-site throughput under a 50% write workload, clients in
// California and Frankfurt accessing disjoint partitions (0% overlap).
// Four configurations: plain ZK, ZK+observers, WanKeeper starting cold
// (all tokens at Virginia/L2), WanKeeper starting hot (tokens pre-split).
//
// Paper shape: ZK < ZK+obs (~2x ZK) < WK Cold < WK Hot.
#include <cstdio>
#include <string>

#include "common/stats.h"
#include "ycsb/runner.h"

using namespace wankeeper;
using namespace wankeeper::ycsb;

int main(int argc, char** argv) {
  std::uint64_t ops = 10000;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") ops = 2000;
  }

  std::printf(
      "=== Fig 6: two sites (CA, FRA), 50%% writes, disjoint partitions ===\n");
  TablePrinter table({"setup", "total ops/s", "CA ops/s", "FRA ops/s",
                      "write avg ms", "local wr%"});

  struct Setup {
    const char* label;
    SystemKind system;
    bool hot;
  };
  std::string ownership_report;
  const Setup setups[] = {
      {"ZK", SystemKind::kZooKeeper, false},
      {"ZK+obs", SystemKind::kZooKeeperObserver, false},
      {"WK Cold", SystemKind::kWanKeeper, false},
      {"WK Hot", SystemKind::kWanKeeper, true},
  };

  for (const auto& setup : setups) {
    RunConfig cfg;
    cfg.system = setup.system;
    cfg.wk_hot_start = setup.hot;
    for (SiteId site : {kCalifornia, kFrankfurt}) {
      ClientSpec client;
      client.site = site;
      client.shared_fraction = 0.0;  // disjoint partitions, no overlap
      client.workload.record_count = 1000;
      client.workload.op_count = ops;
      client.workload.write_fraction = 0.5;
      client.workload.seed = 42 + static_cast<std::uint64_t>(site);
      cfg.clients.push_back(client);
    }
    const RunResult r = run_experiment(cfg);
    table.row({setup.label, TablePrinter::num(r.total_throughput, 1),
               TablePrinter::num(r.clients[0].throughput(), 1),
               TablePrinter::num(r.clients[1].throughput(), 1),
               TablePrinter::num(r.writes.mean_ms(), 2),
               setup.system == SystemKind::kWanKeeper
                   ? TablePrinter::num(r.local_write_fraction() * 100, 0)
                   : "-"});
    if (!r.token_audit_clean) {
      std::printf("!! token audit violations\n");
      return 1;
    }
    if (setup.system == SystemKind::kWanKeeper) {
      ownership_report += std::string(setup.label) + ": " +
                          r.ownership.table(3, r.measure_end);
    }
  }
  // Token-ownership analytics from the flight recorder: cold should show
  // the private partitions migrating out to their sites; hot should show
  // almost no movement (tokens were pre-split before measurement).
  std::printf("\n%s", ownership_report.c_str());
  return 0;
}

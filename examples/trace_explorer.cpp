// Trace explorer: run a seeded contended workload against a three-region
// WanKeeper deployment and print what the flight recorder saw — the N
// slowest request traces span by span, the per-phase latency breakdown,
// the token-ownership timeline of the contended record, the structured
// event log, and the metrics registry. Optionally export the whole run as
// a Perfetto/chrome-trace JSON to open in ui.perfetto.dev. Everything is
// virtual-time deterministic: the same seed prints the same bytes.
//
//   cmake --build build && ./build/examples/trace_explorer [N] [--perfetto FILE]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/ownership.h"
#include "obs/perfetto.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "wankeeper/deployment.h"

using namespace wankeeper;

namespace {

// Issue one op and pump the simulation until its callback fires.
void await(sim::Simulator& sim, zk::Client& client, const std::string& path,
           const std::string& value) {
  bool done = false;
  client.set_data(path, value, -1, [&](const zk::ClientResult&) { done = true; });
  while (!done) sim.step();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t slowest_n = 5;
  std::string perfetto_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--perfetto") == 0 && i + 1 < argc) {
      perfetto_path = argv[++i];
    } else {
      slowest_n = static_cast<std::size_t>(std::atoi(argv[i]));
    }
  }

  sim::Simulator sim(/*seed=*/7);
  sim::Network net(sim, sim::LatencyModel::paper_wan());
  wk::Deployment deploy(sim, net, wk::DeploymentConfig{});
  if (!deploy.wait_ready()) {
    std::printf("deployment failed to become ready\n");
    return 1;
  }

  auto ca = deploy.make_client("ca-app", /*site=*/1, 1001);
  auto fra = deploy.make_client("fra-app", /*site=*/2, 1002);
  sim.run_for(kSecond);

  // Seed a handful of records, then contend on /hot from both sides of the
  // Atlantic: the token migrates to California after two consecutive
  // accesses, so Frankfurt's next write parks at L2 behind a recall —
  // exactly the kind of tail latency the tracer exists to explain.
  bool created = false;
  ca->create("/hot", "v0", false, false,
             [&](const zk::ClientResult&) { created = true; });
  while (!created) sim.step();

  // The load phase above is noise; start the recording here.
  sim.obs().clear();

  for (int round = 0; round < 4; ++round) {
    await(sim, *ca, "/hot", "ca-" + std::to_string(round));
    await(sim, *ca, "/hot", "ca-" + std::to_string(round) + "b");
    sim.run_for(kSecond);  // grant marker propagates; token lands in CA
    await(sim, *fra, "/hot", "fra-" + std::to_string(round));
    sim.run_for(kSecond);
  }

  const auto& obs = sim.obs();
  std::printf("=== %zu slowest traces (of %zu) ===\n", slowest_n,
              obs.tracer.trace_count());
  for (const auto* t : obs.tracer.slowest(slowest_n)) {
    std::printf("%s\n", obs.tracer.format_trace(t->id).c_str());
  }

  std::printf("=== per-phase breakdown ===\n%s\n",
              obs.tracer.breakdown_table().c_str());

  // The same story from the token's point of view: who owned /hot, when,
  // and what each recall round-trip cost.
  const auto ownership =
      obs::OwnershipAnalytics::from_events(obs.events.merged());
  std::printf("=== token ownership ===\n%s\n",
              ownership.table(3, sim.now()).c_str());

  std::printf("=== event log ===\n%s\n", obs.events.to_text().c_str());
  std::printf("=== metrics ===\n%s", obs.metrics.to_table().c_str());

  if (!perfetto_path.empty()) {
    std::ofstream f(perfetto_path);
    f << obs::perfetto_trace_json(obs.tracer, obs.events);
    std::printf("\nwrote %s — open it in ui.perfetto.dev or chrome://tracing\n",
                perfetto_path.c_str());
  }
  return 0;
}

// Quickstart: boot a three-region WanKeeper deployment, connect a client
// at each site, and watch writes become local as tokens migrate.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "sim/network.h"
#include "sim/simulator.h"
#include "wankeeper/deployment.h"

using namespace wankeeper;

int main() {
  // The simulated WAN: Virginia (0), California (1), Frankfurt (2), with
  // the paper's inter-region latencies. Virginia hosts the level-2 broker.
  sim::Simulator sim(/*seed=*/1);
  sim::Network net(sim, sim::LatencyModel::paper_wan());
  wk::Deployment deploy(sim, net, wk::DeploymentConfig{});
  if (!deploy.wait_ready()) {
    std::printf("deployment failed to become ready\n");
    return 1;
  }
  std::printf("3 sites up; L2 broker at site %d (Virginia)\n",
              deploy.l2_broker()->site());

  // A client in California. Its API is the ZooKeeper API: create, setData,
  // getData, watches, ephemerals, sequentials.
  auto client = deploy.make_client("ca-app", /*site=*/1, /*session=*/1001);
  sim.run_for(kSecond);

  auto run = [&](const char* what, auto&& op) {
    Time t0 = sim.now();
    bool done = false;
    op([&](const zk::ClientResult& r) {
      (void)r;
      done = true;
    });
    while (!done) sim.step();
    std::printf("  %-28s %6.2f ms\n", what,
                static_cast<double>(sim.now() - t0) / kMillisecond);
  };

  std::printf("\nCalifornia client, writes to /config:\n");
  run("create (remote, via L2)", [&](zk::Client::Callback cb) {
    client->create("/config", "v0", false, false, std::move(cb));
  });
  run("setData #1 (remote)", [&](zk::Client::Callback cb) {
    client->set_data("/config", "v1", -1, std::move(cb));
  });
  // Two consecutive accesses from California: the token migrates here.
  run("setData #2 (token arrives)", [&](zk::Client::Callback cb) {
    client->set_data("/config", "v2", -1, std::move(cb));
  });
  sim.run_for(kSecond);  // grant marker propagates
  run("setData #3 (local commit!)", [&](zk::Client::Callback cb) {
    client->set_data("/config", "v3", -1, std::move(cb));
  });
  run("getData (always local)", [&](zk::Client::Callback cb) {
    client->get_data("/config", false, std::move(cb));
  });

  // Reads anywhere stay local; the update is visible WAN-wide.
  auto fra = deploy.make_client("fra-app", /*site=*/2, 1002);
  sim.run_for(2 * kSecond);
  std::printf("\nFrankfurt client:\n");
  run("getData at Frankfurt (local)", [&](zk::Client::Callback cb) {
    fra->get_data("/config", false, std::move(cb));
  });

  const auto& tokens = deploy.site_leader(1)->site_tokens();
  std::printf("\nCalifornia site now holds %zu token(s); "
              "owns /config: %s\n",
              tokens.owned_count(),
              tokens.owns(wk::node_token("/config")) ? "yes" : "no");
  return 0;
}

// Shared cloud-backed filesystem metadata (the SCFS use case of §IV-C):
// clients on two continents create, stat, update, and list files whose
// metadata lives in WanKeeper. File bytes would go to cloud object stores;
// only the metadata path is shown (and measured) here.
//
//   ./build/examples/scfs_metadata
#include <cstdio>

#include "scfs/metadata.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "wankeeper/deployment.h"

using namespace wankeeper;

int main() {
  sim::Simulator sim(3);
  sim::Network net(sim, sim::LatencyModel::paper_wan());
  wk::Deployment deploy(sim, net, wk::DeploymentConfig{});
  if (!deploy.wait_ready()) return 1;

  auto ca_zk = deploy.make_client("ca-fs", 1, 500);
  auto fra_zk = deploy.make_client("fra-fs", 2, 501);
  sim.run_for(kSecond);
  scfs::MetadataClient ca(*ca_zk);
  scfs::MetadataClient fra(*fra_zk);

  auto wait = [&](bool& done) {
    while (!done) sim.step();
    done = false;
  };
  bool done = false;

  ca.init([&](store::Rc rc) {
    std::printf("init: %s\n", store::rc_name(rc));
    done = true;
  });
  wait(done);

  // California creates and repeatedly updates a file's metadata: after the
  // second touch its token migrates and updates become local.
  ca.create_file("/docs/report.txt", [&](store::Rc rc, const scfs::FileMeta&) {
    std::printf("CA create /docs/report.txt: %s\n", store::rc_name(rc));
    done = true;
  });
  wait(done);

  for (int i = 1; i <= 4; ++i) {
    scfs::FileMeta meta;
    meta.path = "/docs/report.txt";
    meta.size = static_cast<std::uint64_t>(1000 * i);
    meta.mtime = static_cast<std::uint64_t>(sim.now());
    meta.backend_ref = "s3://bucket/report-v" + std::to_string(i);
    const Time t0 = sim.now();
    ca.update(meta, [&](store::Rc rc, const scfs::FileMeta& out) {
      std::printf("CA update v%d: %s (%.2f ms, version %d)\n", i,
                  store::rc_name(rc),
                  static_cast<double>(sim.now() - t0) / kMillisecond,
                  out.version);
      done = true;
    });
    wait(done);
  }

  sim.run_for(2 * kSecond);  // metadata fans out to Frankfurt

  fra.lookup("/docs/report.txt", [&](store::Rc rc, const scfs::FileMeta& meta) {
    std::printf("FRA lookup: %s size=%llu backend=%s (local read)\n",
                store::rc_name(rc),
                static_cast<unsigned long long>(meta.size),
                meta.backend_ref.c_str());
    done = true;
  });
  wait(done);

  fra.list_dir([&](store::Rc rc, const std::vector<std::string>& names) {
    std::printf("FRA list: %s, %zu file(s)\n", store::rc_name(rc), names.size());
    done = true;
  });
  wait(done);

  fra.remove_file("/docs/report.txt", [&](store::Rc rc) {
    std::printf("FRA remove (recalls the token): %s\n", store::rc_name(rc));
    done = true;
  });
  wait(done);

  sim.run_for(2 * kSecond);
  std::printf("file gone at California: %s\n",
              deploy.broker(1, 0).tree().exists(
                  scfs::MetadataClient::znode_of("/scfs", "/docs/report.txt"))
                  ? "no (!)"
                  : "yes");
  return 0;
}

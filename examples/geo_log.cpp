// Geo-replicated shared log (the BookKeeper use case of paper §IV-B):
// writers in different regions append to one logical log, coordinating
// ownership through WanKeeper. The log's home region enjoys local
// coordination; a remote writer can still take over.
//
//   ./build/examples/geo_log
#include <cstdio>

#include "bookkeeper/writer.h"

using namespace wankeeper;
using namespace wankeeper::bk;

int main() {
  std::printf("Geo-distributed BookKeeper log, 3 writers in California + 1 in\n"
              "Frankfurt, bookies in every region, WanKeeper coordination.\n\n");

  for (auto sys : {ycsb::SystemKind::kZooKeeperObserver, ycsb::SystemKind::kWanKeeper}) {
    BkBenchConfig cfg;
    cfg.system = sys;
    cfg.write_duration = 500 * kMillisecond;
    cfg.horizon = 30 * kSecond;
    const BkBenchResult r = run_bk_bench(cfg);
    std::printf("%-10s  %7.0f entries/s  %3llu writer rounds  "
                "mean hand-off %.0f ms\n",
                ycsb::system_name(sys), r.entries_per_sec,
                static_cast<unsigned long long>(r.total_rounds),
                r.mean_handoff_ms);
  }

  std::printf("\nWanKeeper keeps the lock and log-metadata tokens in the\n"
              "home region, so most writer hand-offs never cross the WAN.\n");
  return 0;
}

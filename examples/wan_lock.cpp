// Distributed fair lock across WAN sites: the classic ZooKeeper recipe
// (ephemeral sequential znodes under a lock directory, each waiter watching
// its predecessor), running on WanKeeper. The sequential siblings share one
// bulk token (paper §III-B), so when the lock is contended within one
// region the whole queue operates at local latency.
//
//   ./build/examples/wan_lock
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"
#include "wankeeper/deployment.h"

using namespace wankeeper;

namespace {

// A minimal lock client: lock() invokes `critical_section` once the lock is
// held; unlock happens when `critical_section` calls the passed release fn.
class FairLock {
 public:
  FairLock(zk::Client& zk, std::string dir) : zk_(zk), dir_(std::move(dir)) {
    zk_.set_watch_handler([this](const std::string& path, store::WatchEvent e) {
      if (e == store::WatchEvent::kDeleted && path == watching_) {
        watching_.clear();
        check();
      }
    });
  }

  using Body = std::function<void(std::function<void()> release)>;
  void lock(Body body) {
    body_ = std::move(body);
    zk_.create(dir_ + "/lk-", "", /*ephemeral=*/true, /*sequential=*/true,
               [this](const zk::ClientResult& r) {
                 if (!r.ok()) return;
                 me_ = r.created_path;
                 check();
               });
  }

 private:
  void check() {
    zk_.get_children(dir_, false, [this](const zk::ClientResult& r) {
      if (!r.ok() || me_.empty()) return;
      auto names = r.children;
      std::sort(names.begin(), names.end());
      const std::string mine = me_.substr(dir_.size() + 1);
      const auto it = std::find(names.begin(), names.end(), mine);
      if (it == names.end()) return;
      if (it == names.begin()) {
        body_([this]() {
          zk_.remove(me_, -1, [](const zk::ClientResult&) {});
          me_.clear();
        });
        return;
      }
      watching_ = dir_ + "/" + *(it - 1);
      zk_.exists_node(watching_, true, [this](const zk::ClientResult& er) {
        if (er.rc == store::Rc::kNoNode && !watching_.empty()) {
          watching_.clear();
          check();
        }
      });
    });
  }

  zk::Client& zk_;
  std::string dir_;
  std::string me_;
  std::string watching_;
  Body body_;
};

}  // namespace

int main() {
  sim::Simulator sim(2);
  sim::Network net(sim, sim::LatencyModel::paper_wan());
  wk::Deployment deploy(sim, net, wk::DeploymentConfig{});
  if (!deploy.wait_ready()) return 1;

  auto setup = deploy.make_client("setup", 0, 10);
  sim.run_for(kSecond);
  setup->create("/locks", "", false, false, {});
  setup->create("/counter", "0", false, false, {});
  sim.run_for(2 * kSecond);

  // Five contenders in California, one in Frankfurt, all incrementing a
  // shared counter under the lock.
  struct Contender {
    std::unique_ptr<zk::Client> zk;
    std::unique_ptr<FairLock> lock;
    int increments = 0;
    Time acquired_at = 0;
  };
  std::vector<Contender> contenders;
  std::vector<SiteId> placement = {1, 1, 1, 1, 1, 2};
  int next_value = 0;

  std::function<void(int)> grab = [&](int i) {
    auto& c = contenders[static_cast<std::size_t>(i)];
    c.lock->lock([&, i](std::function<void()> release) {
      auto& me = contenders[static_cast<std::size_t>(i)];
      me.acquired_at = sim.now();
      // Critical section: read-modify-write without interference.
      me.zk->get_data("/counter", false, [&, i, release](const zk::ClientResult& r) {
        const int v = std::stoi(std::string(r.data.begin(), r.data.end()));
        if (v != next_value) {
          std::printf("!! mutual exclusion violated: %d vs %d\n", v, next_value);
        }
        ++next_value;
        auto& me2 = contenders[static_cast<std::size_t>(i)];
        me2.zk->set_data("/counter", std::to_string(v + 1), -1,
                         [&, i, release](const zk::ClientResult&) {
                           auto& me3 = contenders[static_cast<std::size_t>(i)];
                           ++me3.increments;
                           release();
                           if (next_value < 30) grab(i);
                         });
      });
    });
  };

  for (std::size_t i = 0; i < placement.size(); ++i) {
    Contender c;
    c.zk = deploy.make_client("lk" + std::to_string(i), placement[i],
                              static_cast<SessionId>(100 + i));
    c.lock = std::make_unique<FairLock>(*c.zk, "/locks");
    contenders.push_back(std::move(c));
  }
  sim.run_for(kSecond);
  for (std::size_t i = 0; i < placement.size(); ++i) grab(static_cast<int>(i));

  sim.run_for(120 * kSecond);

  std::printf("final counter target: %d\n", next_value);
  bool all_visible = true;
  for (SiteId s = 0; s < 3; ++s) {
    std::vector<std::uint8_t> data;
    deploy.broker(s, 0).tree().get_data("/counter", &data);
    const std::string v(data.begin(), data.end());
    std::printf("  site %d sees counter = %s\n", s, v.c_str());
    all_visible &= v == std::to_string(next_value);
  }
  for (std::size_t i = 0; i < contenders.size(); ++i) {
    std::printf("  contender %zu (site %d): %d increments\n", i, placement[i],
                contenders[i].increments);
  }
  std::printf(all_visible ? "mutual exclusion held; all sites converged\n"
                          : "!! sites diverged\n");
  return all_visible ? 0 : 1;
}

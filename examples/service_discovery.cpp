// Service discovery and failure detection across regions: instances
// register ephemeral znodes under /services/<name>; consumers anywhere list
// them with local reads and get watch notifications when membership
// changes. Sessions are kept alive WAN-wide by the heartbeater (§III-B),
// and an instance crash removes its entry everywhere.
//
//   ./build/examples/service_discovery
#include <cstdio>

#include "sim/network.h"
#include "sim/simulator.h"
#include "wankeeper/deployment.h"

using namespace wankeeper;

int main() {
  sim::Simulator sim(4);
  sim::Network net(sim, sim::LatencyModel::paper_wan());
  wk::Deployment deploy(sim, net, wk::DeploymentConfig{});
  if (!deploy.wait_ready()) return 1;

  auto setup = deploy.make_client("setup", 0, 10);
  sim.run_for(kSecond);
  setup->create("/services", "", false, false, {});
  setup->create("/services/search", "", false, false, {});
  sim.run_for(2 * kSecond);

  // Two search instances register: one in California, one in Frankfurt.
  auto ca_inst = deploy.make_client("search-ca", 1, 100);
  auto fra_inst = deploy.make_client("search-fra", 2, 101);
  sim.run_for(kSecond);
  ca_inst->create("/services/search/ca-1", "10.1.0.5:9000", true, false, {});
  fra_inst->create("/services/search/fra-1", "10.2.0.9:9000", true, false, {});
  sim.run_for(3 * kSecond);

  // A consumer in Virginia discovers them with a local read and watches for
  // membership changes.
  auto consumer = deploy.make_client("consumer", 0, 102);
  sim.run_for(kSecond);
  int notifications = 0;
  consumer->set_watch_handler(
      [&](const std::string& path, store::WatchEvent event) {
        ++notifications;
        std::printf("  [watch] %s on %s\n", store::watch_event_name(event),
                    path.c_str());
      });
  auto list = [&](const char* label) {
    bool done = false;
    consumer->get_children("/services/search", /*watch=*/true,
                           [&](const zk::ClientResult& r) {
                             std::printf("%s: %zu instance(s):", label,
                                         r.children.size());
                             for (const auto& c : r.children) {
                               std::printf(" %s", c.c_str());
                             }
                             std::printf("\n");
                             done = true;
                           });
    while (!done) sim.step();
  };

  list("initial membership");

  // The California instance dies (no graceful close). Its session expires
  // at its home site; the closeSession replicates; the ephemeral vanishes
  // WAN-wide and the consumer's watch fires.
  std::printf("California instance crashes...\n");
  net.actor(ca_inst->id()).crash();
  sim.run_for(20 * kSecond);
  list("after failure detection");

  // A replacement registers; the (re-armed) watch fires again.
  auto ca2 = deploy.make_client("search-ca2", 1, 103);
  sim.run_for(kSecond);
  ca2->create("/services/search/ca-2", "10.1.0.6:9000", true, false, {});
  sim.run_for(3 * kSecond);
  list("after replacement joins");

  std::printf("watch notifications delivered: %d\n", notifications);
  return notifications >= 2 ? 0 : 1;
}

// Wire codec for every protocol message: the serialization boundary that
// lets the same zab/zk/wankeeper actors run over real sockets. The DES
// passes MessagePtr by reference and never needs this; ThreadRuntime
// encodes at send and decodes on the destination loop, so each node only
// ever sees value copies — the same isolation a socket gives.
//
// Tags are explicit and stable (never reuse or reorder a value): the
// in-process sim::kMsgTypeId is assigned by link order and MUST NOT leak
// onto the wire. Field encodings reuse the BufferWriter/Reader format the
// store already uses for txn payloads, so a ReplicateUp envelope crossing
// a real TCP link is byte-identical to the one the sim charges for.
#pragma once

#include <cstdint>
#include <vector>

#include "common/buffer.h"
#include "sim/message.h"

namespace wankeeper::rt {

// One value per concrete sim::Message subclass. Append only.
enum class WireType : std::uint16_t {
  // zab/
  kVote = 1,
  kCurrentLeader = 2,
  kFollowerInfo = 3,
  kNewEpoch = 4,
  kAckEpoch = 5,
  kSync = 6,
  kNewLeader = 7,
  kAckNewLeader = 8,
  kUpToDate = 9,
  kObserverInfo = 10,
  kPropose = 11,
  kAck = 12,
  kCommit = 13,
  kInform = 14,
  kPing = 15,
  kPingReply = 16,
  // zk/
  kClientRequest = 32,
  kClientReply = 33,
  kWatchNotify = 34,
  kForwardRequest = 35,
  kRequestError = 36,
  kSessionTouch = 37,
  // wankeeper/
  kWanEnvelope = 64,
  kWanAck = 65,
  kRegister = 66,
  kWanForward = 67,
  kReplicateUp = 68,
  kResyncPull = 69,
  kResyncChunk = 70,
  kWanHeartbeat = 71,
  kRegisterOk = 72,
  kReplicateDown = 73,
  kTokenRecall = 74,
  kWanRequestError = 75,
  kWanHeartbeatReply = 76,
};

// Appends [u16 tag][fields...] — WanEnvelopeMsg recurses for its inners.
// Throws BufferError for a message type outside the codec's inventory.
void encode_into(BufferWriter& w, const sim::Message& m);

// Reads one message written by encode_into. The result is stamped with the
// process-local type_id (via the message factories), so msg_cast dispatch
// works exactly as on sim-built messages. Throws BufferError on a bad tag
// or truncated buffer.
sim::MessagePtr decode_from(BufferReader& r);

inline std::vector<std::uint8_t> encode_message(const sim::Message& m) {
  BufferWriter w;
  encode_into(w, m);
  return w.take();
}

inline sim::MessagePtr decode_message(const std::vector<std::uint8_t>& bytes) {
  BufferReader r(bytes);
  return decode_from(r);
}

}  // namespace wankeeper::rt

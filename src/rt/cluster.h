// Deployment builder for a WanKeeper cluster on the thread runtime — the
// real-hardware analogue of wk::Deployment. The NodeId plan is pure
// arithmetic on the config, so every process in a multi-process deployment
// derives the identical id map without coordination: site s with n
// servers owns ids [s*2n, (s+1)*2n) — servers first, then their co-located
// zab peers — and client ids follow after every site's server/peer block.
// The last peer of each site gets the highest id AND priority, mirroring
// the sim Ensemble's intended-leader convention.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rt/thread_runtime.h"
#include "wankeeper/broker.h"
#include "zab/peer.h"
#include "zk/client.h"

namespace wankeeper::rt {

struct ClusterConfig {
  std::size_t sites = 3;
  std::size_t nodes_per_site = 3;
  std::size_t clients_per_site = 2;
  // TCP base port; site s listens on base_port + s. 0 = single process
  // hosting every site, no sockets.
  std::uint16_t base_port = 0;
  std::uint64_t seed = 1;
  zk::ServerOptions server;
  wk::WanOptions wan;
  zab::PeerOptions peer;

  ClusterConfig() {
    // Mirror wk::DeploymentConfig: the paper's ~0.1 ms head-processor
    // marshalling charge on every client-facing request.
    server.service_time = 150 * kMicrosecond;
    server.head_overhead = 100 * kMicrosecond;
  }
};

// The cluster-wide id arithmetic; identical in every process.
struct ClusterPlan {
  explicit ClusterPlan(const ClusterConfig& cfg)
      : sites(cfg.sites),
        nodes(cfg.nodes_per_site),
        clients(cfg.clients_per_site),
        base_port(cfg.base_port) {}

  std::size_t sites;
  std::size_t nodes;
  std::size_t clients;
  std::uint16_t base_port;

  NodeId server_id(SiteId s, std::size_t i) const {
    return static_cast<NodeId>(static_cast<std::size_t>(s) * 2 * nodes + i);
  }
  NodeId peer_id(SiteId s, std::size_t i) const {
    return static_cast<NodeId>(static_cast<std::size_t>(s) * 2 * nodes +
                               nodes + i);
  }
  NodeId client_id(SiteId s, std::size_t k) const {
    return static_cast<NodeId>(sites * 2 * nodes +
                               static_cast<std::size_t>(s) * clients + k);
  }
  SessionId session_of(SiteId s, std::size_t k) const {
    return static_cast<SessionId>(s) * 10000 + static_cast<SessionId>(k) + 1;
  }
  std::uint16_t port_of(SiteId s) const {
    return static_cast<std::uint16_t>(base_port + s);
  }
};

// Builds the brokers, peers, and clients of `local_sites` (empty = all
// sites) on one ThreadRuntime, registers every other site's nodes as
// remote, and wires the loopback TCP mesh. Each (broker, peer) pair shares
// one event loop; each client gets its own.
class HostedCluster {
 public:
  HostedCluster(ThreadRuntime& rt, ClusterConfig cfg,
                std::vector<SiteId> local_sites = {});
  ~HostedCluster();

  // rt.start() + client session connects. wait_ready polls (wall clock)
  // until every local site has an elected leader that finished hub
  // registration (and, if the hub site is local, left RECONCILING).
  void start();
  bool wait_ready(Time max_wait);

  const ClusterPlan& plan() const { return plan_; }
  const std::vector<SiteId>& local_sites() const { return local_sites_; }
  bool is_local(SiteId s) const;

  std::size_t local_client_count() const { return clients_.size(); }
  zk::Client& client(std::size_t idx) { return *clients_[idx].client; }
  SiteId client_site(std::size_t idx) const { return clients_[idx].site; }

  // Current leader broker of a local site (nullptr mid-election). Reads
  // leadership flags without posting to the owning loop: single-word reads
  // used for polling, not for protocol decisions.
  wk::Broker* site_leader(SiteId s);
  wk::Broker& broker(SiteId s, std::size_t i);

  // Leader replica's tree digest, sampled on its own loop (safe snapshot).
  std::uint64_t tree_digest(SiteId s);
  // All up local replicas (across local sites) agree on their tree digest.
  bool converged_locally();

 private:
  struct SiteNode {
    std::unique_ptr<wk::Broker> broker;
    std::unique_ptr<zab::Peer> peer;
  };
  struct ClientSlot {
    std::unique_ptr<zk::Client> client;
    SiteId site = kNoSite;
    NodeId node = kNoNode;
    NodeId server = kNoNode;
  };

  ThreadRuntime& rt_;
  ClusterConfig cfg_;
  ClusterPlan plan_;
  std::vector<SiteId> local_sites_;
  std::shared_ptr<wk::SiteDirectory> directory_;
  std::vector<std::vector<SiteNode>> nodes_by_site_;  // indexed by SiteId
  std::vector<ClientSlot> clients_;
};

}  // namespace wankeeper::rt

#include "rt/codec.h"

#include <string>

#include "common/types.h"
#include "store/datatree.h"
#include "wankeeper/messages.h"
#include "zab/messages.h"
#include "zk/messages.h"
#include "zk/server.h"

// GCC 12 issues a spurious -Wfree-nonheap-object when BufferReader::blob()'s
// returned vector is moved into shared storage and its (empty) husk is
// destroyed inline; there is no non-heap free anywhere in this file.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
#endif

namespace wankeeper::rt {
namespace {

using sim::Message;
using sim::MessagePtr;
using sim::msg_cast;

void put_tag(BufferWriter& w, WireType t) {
  w.u8(static_cast<std::uint8_t>(static_cast<std::uint16_t>(t) & 0xff));
  w.u8(static_cast<std::uint8_t>(static_cast<std::uint16_t>(t) >> 8));
}

WireType get_tag(BufferReader& r) {
  const std::uint16_t lo = r.u8();
  const std::uint16_t hi = r.u8();
  return static_cast<WireType>(static_cast<std::uint16_t>(lo | (hi << 8)));
}

// --- field helpers ---

void put_entry(BufferWriter& w, const zab::LogEntry& e) {
  w.u64(e.zxid);
  w.u32(static_cast<std::uint32_t>(e.payload.size()));
  const std::uint8_t* p = e.payload.data();
  for (std::size_t i = 0; i < e.payload.size(); ++i) w.u8(p[i]);
}

zab::LogEntry get_entry(BufferReader& r) {
  zab::LogEntry e;
  e.zxid = r.u64();
  std::vector<std::uint8_t> payload = r.blob();
  e.payload = common::Bytes(std::move(payload));
  return e;
}

void put_entries(BufferWriter& w, const std::vector<zab::LogEntry>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& e : v) put_entry(w, e);
}

std::vector<zab::LogEntry> get_entries(BufferReader& r) {
  std::vector<zab::LogEntry> v(r.u32());
  for (auto& e : v) e = get_entry(r);
  return v;
}

void put_op(BufferWriter& w, const zk::Op& op) {
  w.u8(static_cast<std::uint8_t>(op.op));
  w.str(op.path);
  w.blob(op.data);
  w.boolean(op.ephemeral);
  w.boolean(op.sequential);
  w.i32(op.version);
}

zk::Op get_op(BufferReader& r) {
  zk::Op op;
  op.op = static_cast<zk::OpCode>(r.u8());
  op.path = r.str();
  op.data = r.blob();
  op.ephemeral = r.boolean();
  op.sequential = r.boolean();
  op.version = r.i32();
  return op;
}

void put_request(BufferWriter& w, const zk::ClientRequest& m) {
  w.i64(m.session);
  w.i64(m.xid);
  put_op(w, m.op);
  w.boolean(m.watch);
  w.u32(static_cast<std::uint32_t>(m.multi_ops.size()));
  for (const auto& op : m.multi_ops) put_op(w, op);
  w.i64(m.session_timeout);
  w.u64(m.trace);
}

void get_request(BufferReader& r, zk::ClientRequest& m) {
  m.session = r.i64();
  m.xid = r.i64();
  m.op = get_op(r);
  m.watch = r.boolean();
  m.multi_ops.resize(r.u32());
  for (auto& op : m.multi_ops) op = get_op(r);
  m.session_timeout = r.i64();
  m.trace = r.u64();
}

void put_stat(BufferWriter& w, const store::Stat& s) {
  w.u64(s.czxid);
  w.u64(s.mzxid);
  w.i64(s.ctime);
  w.i64(s.mtime);
  w.i32(s.version);
  w.i32(s.cversion);
  w.i64(s.ephemeral_owner);
  w.i32(s.num_children);
}

store::Stat get_stat(BufferReader& r) {
  store::Stat s;
  s.czxid = r.u64();
  s.mzxid = r.u64();
  s.ctime = r.i64();
  s.mtime = r.i64();
  s.version = r.i32();
  s.cversion = r.i32();
  s.ephemeral_owner = r.i64();
  s.num_children = r.i32();
  return s;
}

// zk::Envelope already has a wire form (it IS the replicated txn record);
// nest it as a blob so its framing stays self-contained.
void put_envelope(BufferWriter& w, const zk::Envelope& e) {
  w.blob(e.encode());
}

zk::Envelope get_envelope(BufferReader& r) {
  return zk::Envelope::decode(r.blob());
}

void put_frontiers(BufferWriter& w, const std::vector<wk::GseqFrontier>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& f : v) {
    w.u32(f.epoch);
    w.u64(f.counter);
  }
}

std::vector<wk::GseqFrontier> get_frontiers(BufferReader& r) {
  std::vector<wk::GseqFrontier> v(r.u32());
  for (auto& f : v) {
    f.epoch = r.u32();
    f.counter = r.u64();
  }
  return v;
}

void put_strings(BufferWriter& w, const std::vector<std::string>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& s : v) w.str(s);
}

std::vector<std::string> get_strings(BufferReader& r) {
  std::vector<std::string> v(r.u32());
  for (auto& s : v) s = r.str();
  return v;
}

void put_sessions(BufferWriter& w, const std::vector<SessionId>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const SessionId s : v) w.i64(s);
}

std::vector<SessionId> get_sessions(BufferReader& r) {
  std::vector<SessionId> v(r.u32());
  for (auto& s : v) s = r.i64();
  return v;
}

}  // namespace

void encode_into(BufferWriter& w, const Message& m) {
  // zab/ — election, discovery, synchronization, broadcast.
  if (const auto* p = msg_cast<zab::VoteMsg>(&m)) {
    put_tag(w, WireType::kVote);
    w.u64(p->round);
    w.i32(p->candidate);
    w.u64(p->candidate_zxid);
    w.i32(p->candidate_priority);
  } else if (const auto* p = msg_cast<zab::CurrentLeaderMsg>(&m)) {
    put_tag(w, WireType::kCurrentLeader);
    w.i32(p->leader);
    w.u32(p->epoch);
  } else if (const auto* p = msg_cast<zab::FollowerInfoMsg>(&m)) {
    put_tag(w, WireType::kFollowerInfo);
    w.u32(p->accepted_epoch);
    w.u64(p->last_zxid);
  } else if (const auto* p = msg_cast<zab::NewEpochMsg>(&m)) {
    put_tag(w, WireType::kNewEpoch);
    w.u32(p->epoch);
  } else if (const auto* p = msg_cast<zab::AckEpochMsg>(&m)) {
    put_tag(w, WireType::kAckEpoch);
    w.u32(p->current_epoch);
    w.u64(p->last_zxid);
  } else if (const auto* p = msg_cast<zab::SyncMsg>(&m)) {
    put_tag(w, WireType::kSync);
    w.u32(p->epoch);
    w.u64(p->truncate_to);
    put_entries(w, p->entries);
    w.u64(p->commit_up_to);
  } else if (const auto* p = msg_cast<zab::NewLeaderMsg>(&m)) {
    put_tag(w, WireType::kNewLeader);
    w.u32(p->epoch);
  } else if (const auto* p = msg_cast<zab::AckNewLeaderMsg>(&m)) {
    put_tag(w, WireType::kAckNewLeader);
    w.u32(p->epoch);
  } else if (const auto* p = msg_cast<zab::UpToDateMsg>(&m)) {
    put_tag(w, WireType::kUpToDate);
    w.u32(p->epoch);
  } else if (const auto* p = msg_cast<zab::ObserverInfoMsg>(&m)) {
    put_tag(w, WireType::kObserverInfo);
    w.u64(p->last_zxid);
  } else if (const auto* p = msg_cast<zab::ProposeMsg>(&m)) {
    put_tag(w, WireType::kPropose);
    w.u32(p->epoch);
    put_entries(w, p->entries);
  } else if (const auto* p = msg_cast<zab::AckMsg>(&m)) {
    put_tag(w, WireType::kAck);
    w.u32(p->epoch);
    w.u64(p->zxid);
  } else if (const auto* p = msg_cast<zab::CommitMsg>(&m)) {
    put_tag(w, WireType::kCommit);
    w.u32(p->epoch);
    w.u64(p->zxid);
  } else if (const auto* p = msg_cast<zab::InformMsg>(&m)) {
    put_tag(w, WireType::kInform);
    w.u32(p->epoch);
    put_entry(w, p->entry);
  } else if (const auto* p = msg_cast<zab::PingMsg>(&m)) {
    put_tag(w, WireType::kPing);
    w.u32(p->epoch);
    w.u64(p->commit_up_to);
  } else if (const auto* p = msg_cast<zab::PingReplyMsg>(&m)) {
    put_tag(w, WireType::kPingReply);
    w.u32(p->epoch);

    // zk/ — client-server and server-server.
  } else if (const auto* p = msg_cast<zk::ClientRequest>(&m)) {
    put_tag(w, WireType::kClientRequest);
    put_request(w, *p);
  } else if (const auto* p = msg_cast<zk::ClientReply>(&m)) {
    put_tag(w, WireType::kClientReply);
    w.i64(p->session);
    w.i64(p->xid);
    w.u8(static_cast<std::uint8_t>(p->op));
    w.i32(static_cast<std::int32_t>(p->rc));
    w.blob(p->data);
    put_stat(w, p->stat);
    put_strings(w, p->children);
    w.str(p->created_path);
    w.u64(p->zxid);
  } else if (const auto* p = msg_cast<zk::WatchNotifyMsg>(&m)) {
    put_tag(w, WireType::kWatchNotify);
    w.i64(p->session);
    w.str(p->path);
    w.u8(static_cast<std::uint8_t>(p->event));
  } else if (const auto* p = msg_cast<zk::ForwardRequestMsg>(&m)) {
    put_tag(w, WireType::kForwardRequest);
    w.i32(p->origin_server);
    put_request(w, p->request);
  } else if (const auto* p = msg_cast<zk::RequestErrorMsg>(&m)) {
    put_tag(w, WireType::kRequestError);
    w.i64(p->session);
    w.i64(p->xid);
    w.i32(static_cast<std::int32_t>(p->rc));
  } else if (const auto* p = msg_cast<zk::SessionTouchMsg>(&m)) {
    put_tag(w, WireType::kSessionTouch);
    put_sessions(w, p->sessions);

    // wankeeper/ — the L1 <-> L2 WAN protocol.
  } else if (const auto* p = msg_cast<wk::WanEnvelopeMsg>(&m)) {
    put_tag(w, WireType::kWanEnvelope);
    w.i32(p->from_site);
    w.i32(p->from_node);
    w.u32(p->stream_epoch);
    w.u32(p->stream_gen);
    w.u64(p->seq);
    w.u32(static_cast<std::uint32_t>(p->inners.size()));
    for (const auto& inner : p->inners) encode_into(w, *inner);
  } else if (const auto* p = msg_cast<wk::WanAckMsg>(&m)) {
    put_tag(w, WireType::kWanAck);
    w.i32(p->from_site);
    w.i32(p->from_node);
    w.u32(p->stream_epoch);
    w.u32(p->stream_gen);
    w.u64(p->cumulative);
  } else if (const auto* p = msg_cast<wk::RegisterMsg>(&m)) {
    put_tag(w, WireType::kRegister);
    w.i32(p->from_site);
    w.i32(p->from_node);
    w.u32(p->zab_epoch);
    put_frontiers(w, p->down_frontiers);
    put_strings(w, p->owned_tokens);
    w.u64(p->trace);
  } else if (const auto* p = msg_cast<wk::WanForwardMsg>(&m)) {
    put_tag(w, WireType::kWanForward);
    put_request(w, p->request);
    w.i32(p->origin_server);
  } else if (const auto* p = msg_cast<wk::ReplicateUpMsg>(&m)) {
    put_tag(w, WireType::kReplicateUp);
    put_envelope(w, p->envelope);
  } else if (const auto* p = msg_cast<wk::ResyncPullMsg>(&m)) {
    put_tag(w, WireType::kResyncPull);
    w.i32(p->from_site);
    w.u32(p->l2_epoch);
    put_frontiers(w, p->have);
    w.u64(p->trace);
  } else if (const auto* p = msg_cast<wk::ResyncChunkMsg>(&m)) {
    put_tag(w, WireType::kResyncChunk);
    w.i32(p->from_site);
    w.boolean(p->done);
    w.u32(static_cast<std::uint32_t>(p->envelopes.size()));
    for (const auto& e : p->envelopes) put_envelope(w, e);
    put_frontiers(w, p->frontiers);
    w.u64(p->trace);
  } else if (const auto* p = msg_cast<wk::WanHeartbeatMsg>(&m)) {
    put_tag(w, WireType::kWanHeartbeat);
    w.i32(p->from_site);
    w.i32(p->from_node);
    w.u32(p->zab_epoch);
    put_sessions(w, p->live_sessions);
    put_frontiers(w, p->down_frontiers);
    w.i32(p->l2_site);
    w.u32(p->l2_epoch);
    w.u64(p->trace);
  } else if (const auto* p = msg_cast<wk::RegisterOkMsg>(&m)) {
    put_tag(w, WireType::kRegisterOk);
    w.i32(p->from_site);
    w.i32(p->from_node);
    w.u32(p->zab_epoch);
    w.u64(p->up_frontier);
    w.i32(p->l2_site);
    w.u32(p->l2_epoch);
  } else if (const auto* p = msg_cast<wk::ReplicateDownMsg>(&m)) {
    put_tag(w, WireType::kReplicateDown);
    put_envelope(w, p->envelope);
    w.u32(p->l2_epoch);
    w.boolean(p->resync);
    w.u64(p->resync_trace);
  } else if (const auto* p = msg_cast<wk::TokenRecallMsg>(&m)) {
    put_tag(w, WireType::kTokenRecall);
    put_strings(w, p->keys);
  } else if (const auto* p = msg_cast<wk::WanRequestErrorMsg>(&m)) {
    put_tag(w, WireType::kWanRequestError);
    w.i32(p->origin_server);
    w.i64(p->session);
    w.i64(p->xid);
    w.i32(static_cast<std::int32_t>(p->rc));
  } else if (const auto* p = msg_cast<wk::WanHeartbeatReplyMsg>(&m)) {
    put_tag(w, WireType::kWanHeartbeatReply);
    w.i32(p->from_site);
    w.i32(p->from_node);
    w.u32(p->zab_epoch);
    w.u64(p->up_frontier);
    w.i32(p->l2_site);
    w.u32(p->l2_epoch);
  } else {
    throw BufferError(std::string("codec: unencodable message type ") +
                      m.name());
  }
}

MessagePtr decode_from(BufferReader& r) {
  const WireType tag = get_tag(r);
  switch (tag) {
    case WireType::kVote: {
      auto m = sim::make_mutable_message<zab::VoteMsg>();
      m->round = r.u64();
      m->candidate = r.i32();
      m->candidate_zxid = r.u64();
      m->candidate_priority = r.i32();
      return m;
    }
    case WireType::kCurrentLeader: {
      auto m = sim::make_mutable_message<zab::CurrentLeaderMsg>();
      m->leader = r.i32();
      m->epoch = r.u32();
      return m;
    }
    case WireType::kFollowerInfo: {
      auto m = sim::make_mutable_message<zab::FollowerInfoMsg>();
      m->accepted_epoch = r.u32();
      m->last_zxid = r.u64();
      return m;
    }
    case WireType::kNewEpoch: {
      auto m = sim::make_mutable_message<zab::NewEpochMsg>();
      m->epoch = r.u32();
      return m;
    }
    case WireType::kAckEpoch: {
      auto m = sim::make_mutable_message<zab::AckEpochMsg>();
      m->current_epoch = r.u32();
      m->last_zxid = r.u64();
      return m;
    }
    case WireType::kSync: {
      auto m = sim::make_mutable_message<zab::SyncMsg>();
      m->epoch = r.u32();
      m->truncate_to = r.u64();
      m->entries = get_entries(r);
      m->commit_up_to = r.u64();
      return m;
    }
    case WireType::kNewLeader: {
      auto m = sim::make_mutable_message<zab::NewLeaderMsg>();
      m->epoch = r.u32();
      return m;
    }
    case WireType::kAckNewLeader: {
      auto m = sim::make_mutable_message<zab::AckNewLeaderMsg>();
      m->epoch = r.u32();
      return m;
    }
    case WireType::kUpToDate: {
      auto m = sim::make_mutable_message<zab::UpToDateMsg>();
      m->epoch = r.u32();
      return m;
    }
    case WireType::kObserverInfo: {
      auto m = sim::make_mutable_message<zab::ObserverInfoMsg>();
      m->last_zxid = r.u64();
      return m;
    }
    case WireType::kPropose: {
      auto m = sim::make_mutable_message<zab::ProposeMsg>();
      m->epoch = r.u32();
      m->entries = get_entries(r);
      return m;
    }
    case WireType::kAck: {
      auto m = sim::make_mutable_message<zab::AckMsg>();
      m->epoch = r.u32();
      m->zxid = r.u64();
      return m;
    }
    case WireType::kCommit: {
      auto m = sim::make_mutable_message<zab::CommitMsg>();
      m->epoch = r.u32();
      m->zxid = r.u64();
      return m;
    }
    case WireType::kInform: {
      auto m = sim::make_mutable_message<zab::InformMsg>();
      m->epoch = r.u32();
      m->entry = get_entry(r);
      return m;
    }
    case WireType::kPing: {
      auto m = sim::make_mutable_message<zab::PingMsg>();
      m->epoch = r.u32();
      m->commit_up_to = r.u64();
      return m;
    }
    case WireType::kPingReply: {
      auto m = sim::make_mutable_message<zab::PingReplyMsg>();
      m->epoch = r.u32();
      return m;
    }
    case WireType::kClientRequest: {
      auto m = sim::make_mutable_message<zk::ClientRequest>();
      get_request(r, *m);
      return m;
    }
    case WireType::kClientReply: {
      auto m = sim::make_mutable_message<zk::ClientReply>();
      m->session = r.i64();
      m->xid = r.i64();
      m->op = static_cast<zk::OpCode>(r.u8());
      m->rc = static_cast<store::Rc>(r.i32());
      m->data = r.blob();
      m->stat = get_stat(r);
      m->children = get_strings(r);
      m->created_path = r.str();
      m->zxid = r.u64();
      return m;
    }
    case WireType::kWatchNotify: {
      auto m = sim::make_mutable_message<zk::WatchNotifyMsg>();
      m->session = r.i64();
      m->path = r.str();
      m->event = static_cast<store::WatchEvent>(r.u8());
      return m;
    }
    case WireType::kForwardRequest: {
      auto m = sim::make_mutable_message<zk::ForwardRequestMsg>();
      m->origin_server = r.i32();
      get_request(r, m->request);
      return m;
    }
    case WireType::kRequestError: {
      auto m = sim::make_mutable_message<zk::RequestErrorMsg>();
      m->session = r.i64();
      m->xid = r.i64();
      m->rc = static_cast<store::Rc>(r.i32());
      return m;
    }
    case WireType::kSessionTouch: {
      auto m = sim::make_mutable_message<zk::SessionTouchMsg>();
      m->sessions = get_sessions(r);
      return m;
    }
    case WireType::kWanEnvelope: {
      auto m = sim::make_mutable_message<wk::WanEnvelopeMsg>();
      m->from_site = r.i32();
      m->from_node = r.i32();
      m->stream_epoch = r.u32();
      m->stream_gen = r.u32();
      m->seq = r.u64();
      m->inners.resize(r.u32());
      for (auto& inner : m->inners) inner = decode_from(r);
      return m;
    }
    case WireType::kWanAck: {
      auto m = sim::make_mutable_message<wk::WanAckMsg>();
      m->from_site = r.i32();
      m->from_node = r.i32();
      m->stream_epoch = r.u32();
      m->stream_gen = r.u32();
      m->cumulative = r.u64();
      return m;
    }
    case WireType::kRegister: {
      auto m = sim::make_mutable_message<wk::RegisterMsg>();
      m->from_site = r.i32();
      m->from_node = r.i32();
      m->zab_epoch = r.u32();
      m->down_frontiers = get_frontiers(r);
      m->owned_tokens = get_strings(r);
      m->trace = r.u64();
      return m;
    }
    case WireType::kWanForward: {
      auto m = sim::make_mutable_message<wk::WanForwardMsg>();
      get_request(r, m->request);
      m->origin_server = r.i32();
      return m;
    }
    case WireType::kReplicateUp: {
      auto m = sim::make_mutable_message<wk::ReplicateUpMsg>();
      m->envelope = get_envelope(r);
      return m;
    }
    case WireType::kResyncPull: {
      auto m = sim::make_mutable_message<wk::ResyncPullMsg>();
      m->from_site = r.i32();
      m->l2_epoch = r.u32();
      m->have = get_frontiers(r);
      m->trace = r.u64();
      return m;
    }
    case WireType::kResyncChunk: {
      auto m = sim::make_mutable_message<wk::ResyncChunkMsg>();
      m->from_site = r.i32();
      m->done = r.boolean();
      m->envelopes.resize(r.u32());
      for (auto& e : m->envelopes) e = get_envelope(r);
      m->frontiers = get_frontiers(r);
      m->trace = r.u64();
      return m;
    }
    case WireType::kWanHeartbeat: {
      auto m = sim::make_mutable_message<wk::WanHeartbeatMsg>();
      m->from_site = r.i32();
      m->from_node = r.i32();
      m->zab_epoch = r.u32();
      m->live_sessions = get_sessions(r);
      m->down_frontiers = get_frontiers(r);
      m->l2_site = r.i32();
      m->l2_epoch = r.u32();
      m->trace = r.u64();
      return m;
    }
    case WireType::kRegisterOk: {
      auto m = sim::make_mutable_message<wk::RegisterOkMsg>();
      m->from_site = r.i32();
      m->from_node = r.i32();
      m->zab_epoch = r.u32();
      m->up_frontier = r.u64();
      m->l2_site = r.i32();
      m->l2_epoch = r.u32();
      return m;
    }
    case WireType::kReplicateDown: {
      auto m = sim::make_mutable_message<wk::ReplicateDownMsg>();
      m->envelope = get_envelope(r);
      m->l2_epoch = r.u32();
      m->resync = r.boolean();
      m->resync_trace = r.u64();
      return m;
    }
    case WireType::kTokenRecall: {
      auto m = sim::make_mutable_message<wk::TokenRecallMsg>();
      m->keys = get_strings(r);
      return m;
    }
    case WireType::kWanRequestError: {
      auto m = sim::make_mutable_message<wk::WanRequestErrorMsg>();
      m->origin_server = r.i32();
      m->session = r.i64();
      m->xid = r.i64();
      m->rc = static_cast<store::Rc>(r.i32());
      return m;
    }
    case WireType::kWanHeartbeatReply: {
      auto m = sim::make_mutable_message<wk::WanHeartbeatReplyMsg>();
      m->from_site = r.i32();
      m->from_node = r.i32();
      m->zab_epoch = r.u32();
      m->up_frontier = r.u64();
      m->l2_site = r.i32();
      m->l2_epoch = r.u32();
      return m;
    }
  }
  throw BufferError("codec: unknown wire tag " +
                    std::to_string(static_cast<std::uint16_t>(tag)));
}

}  // namespace wankeeper::rt

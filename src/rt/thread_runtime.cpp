#include "rt/thread_runtime.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "common/logging.h"
#include "obs/context.h"
#include "rt/codec.h"
#include "sim/faults.h"

namespace wankeeper::rt {
namespace {

// TimerId layout: (loop index + 1) in the high bits, per-loop sequence
// below. +1 keeps 0 invalid.
constexpr int kTimerLoopShift = 40;

// Past this many queued frames on one outbound link the peer process is
// effectively gone; drop new frames (counted) the way a dead link would.
constexpr std::size_t kMaxOutboundFrames = 1 << 16;

constexpr std::size_t kMaxFrameBytes = 64u << 20;

bool write_full(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w <= 0) return false;
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_full(int fd, std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r <= 0) return false;
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

std::vector<std::uint8_t> make_frame(NodeId from, NodeId to,
                                     const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame(12 + payload.size());
  store_le32(frame.data(), static_cast<std::uint32_t>(8 + payload.size()));
  store_le32(frame.data() + 4, static_cast<std::uint32_t>(from));
  store_le32(frame.data() + 8, static_cast<std::uint32_t>(to));
  std::memcpy(frame.data() + 12, payload.data(), payload.size());
  return frame;
}

// Sequential per-thread seeds: determinism of draws within a thread, not
// across interleavings (which are real on this runtime anyway).
std::atomic<std::uint64_t> thread_counter{0};

}  // namespace

ThreadRuntime::ThreadRuntime(std::uint64_t seed)
    : seed_(seed), start_tp_(std::chrono::steady_clock::now()) {}

ThreadRuntime::~ThreadRuntime() { stop(); }

Time ThreadRuntime::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_tp_)
      .count();
}

std::size_t ThreadRuntime::add_loop() {
  std::lock_guard<std::mutex> lk(route_mu_);
  if (started_) throw std::logic_error("add_loop after start");
  loops_.push_back(std::make_unique<Loop>());
  return loops_.size() - 1;
}

void ThreadRuntime::add_actor(sim::Actor& actor, NodeId id, SiteId site,
                              std::size_t loop) {
  std::lock_guard<std::mutex> lk(route_mu_);
  if (started_) throw std::logic_error("add_actor after start");
  if (loop >= loops_.size()) throw std::out_of_range("bad loop index");
  if (local_.count(id) != 0 || remote_site_.count(id) != 0) {
    throw std::logic_error("duplicate node id");
  }
  actor.id_ = id;
  actor.registry_ = this;
  local_[id] = LocalNode{&actor, loops_[loop].get(), loop, site};
  loops_[loop]->actors.push_back(&actor);
}

void ThreadRuntime::add_remote(NodeId id, SiteId site) {
  std::lock_guard<std::mutex> lk(route_mu_);
  if (local_.count(id) != 0) throw std::logic_error("node is local");
  remote_site_[id] = site;
}

void ThreadRuntime::listen(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("bind(127.0.0.1:" + std::to_string(port) +
                             ") failed");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw std::runtime_error("listen() failed");
  }
  std::lock_guard<std::mutex> lk(route_mu_);
  if (started_) throw std::logic_error("listen after start");
  listen_fds_.push_back(fd);
}

void ThreadRuntime::connect_site(SiteId site, std::uint16_t port) {
  std::lock_guard<std::mutex> lk(route_mu_);
  if (started_) throw std::logic_error("connect_site after start");
  auto conn = std::make_unique<Conn>();
  conn->port = port;
  conns_[site] = std::move(conn);
}

NodeId ThreadRuntime::spawn(sim::Actor& actor, SiteId site) {
  const std::size_t loop = add_loop();
  NodeId id;
  {
    std::lock_guard<std::mutex> lk(route_mu_);
    id = next_auto_id_++;
  }
  add_actor(actor, id, site, loop);
  return id;
}

void ThreadRuntime::start() {
  {
    std::lock_guard<std::mutex> lk(route_mu_);
    if (started_) throw std::logic_error("start() twice");
    started_ = true;
  }
  running_.store(true);
  for (auto& [site, conn] : conns_) {
    (void)site;
    conn->writer = std::thread([this, c = conn.get()] { run_writer(*c); });
  }
  for (const int fd : listen_fds_) {
    acceptors_.emplace_back([this, fd] { run_acceptor(fd); });
  }
  for (auto& loop : loops_) {
    loop->thread = std::thread([this, l = loop.get()] { run_loop(*l); });
  }
}

void ThreadRuntime::stop() {
  if (!running_.exchange(false)) return;
  // Break accept() and in-flight reads/writes.
  for (const int fd : listen_fds_) ::shutdown(fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lk(io_mu_);
    for (const int fd : reader_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& [site, conn] : conns_) {
    (void)site;
    std::lock_guard<std::mutex> lk(conn->mu);
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    conn->cv.notify_all();
  }
  for (auto& loop : loops_) {
    std::lock_guard<std::mutex> lk(loop->mu);
    loop->cv.notify_all();
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  for (auto& [site, conn] : conns_) {
    (void)site;
    if (conn->writer.joinable()) conn->writer.join();
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  for (auto& t : acceptors_) {
    if (t.joinable()) t.join();
  }
  acceptors_.clear();
  for (const int fd : listen_fds_) ::close(fd);
  listen_fds_.clear();
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lk(io_mu_);
    readers.swap(reader_threads_);
    for (const int fd : reader_fds_) ::close(fd);
    reader_fds_.clear();
  }
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
}

ThreadRuntime::Loop* ThreadRuntime::loop_of(NodeId node) const {
  std::lock_guard<std::mutex> lk(route_mu_);
  const auto it = local_.find(node);
  return it == local_.end() ? nullptr : it->second.loop;
}

TimerId ThreadRuntime::schedule(NodeId home, Time delay,
                                std::function<void()> fn) {
  Loop* loop = nullptr;
  std::size_t idx = 0;
  {
    std::lock_guard<std::mutex> lk(route_mu_);
    const auto it = local_.find(home);
    if (it == local_.end()) {
      throw std::logic_error("schedule: unknown home node");
    }
    loop = it->second.loop;
    idx = it->second.loop_idx;
  }
  const Time deadline = now() + (delay < 0 ? 0 : delay);
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> lk(loop->mu);
    seq = loop->next_seq++;
    loop->timers.emplace(std::make_pair(deadline, seq), std::move(fn));
    loop->deadline_of[seq] = deadline;
    loop->cv.notify_all();
  }
  return (static_cast<TimerId>(idx + 1) << kTimerLoopShift) | seq;
}

void ThreadRuntime::cancel(TimerId id) {
  if (id == 0) return;
  const std::size_t idx = static_cast<std::size_t>(id >> kTimerLoopShift) - 1;
  const std::uint64_t seq = id & ((1ULL << kTimerLoopShift) - 1);
  Loop* loop = nullptr;
  {
    std::lock_guard<std::mutex> lk(route_mu_);
    if (idx >= loops_.size()) return;
    loop = loops_[idx].get();
  }
  std::lock_guard<std::mutex> lk(loop->mu);
  const auto it = loop->deadline_of.find(seq);
  if (it == loop->deadline_of.end()) return;
  loop->timers.erase(std::make_pair(it->second, seq));
  loop->deadline_of.erase(it);
}

void ThreadRuntime::enqueue_local(Loop& loop, Delivery d) {
  std::lock_guard<std::mutex> lk(loop.mu);
  loop.inbox.push_back(std::move(d));
  loop.cv.notify_all();
}

void ThreadRuntime::send(NodeId from, NodeId to, sim::MessagePtr msg) {
  std::vector<std::uint8_t> payload = encode_message(*msg);
  Loop* loop = nullptr;
  Conn* conn = nullptr;
  {
    std::lock_guard<std::mutex> lk(route_mu_);
    const auto it = local_.find(to);
    if (it != local_.end()) {
      loop = it->second.loop;
    } else {
      const auto rit = remote_site_.find(to);
      if (rit == remote_site_.end()) {
        ++frames_dropped_;
        return;
      }
      const auto cit = conns_.find(rit->second);
      if (cit == conns_.end()) {
        ++frames_dropped_;
        return;
      }
      conn = cit->second.get();
    }
  }
  if (loop != nullptr) {
    enqueue_local(*loop, Delivery{from, to, std::move(payload)});
    return;
  }
  std::vector<std::uint8_t> frame = make_frame(from, to, payload);
  std::lock_guard<std::mutex> lk(conn->mu);
  if (conn->queue.size() >= kMaxOutboundFrames) {
    ++frames_dropped_;
    return;
  }
  conn->queue.push_back(std::move(frame));
  conn->cv.notify_all();
}

SiteId ThreadRuntime::site_of(NodeId node) const {
  std::lock_guard<std::mutex> lk(route_mu_);
  const auto it = local_.find(node);
  if (it != local_.end()) return it->second.site;
  const auto rit = remote_site_.find(node);
  return rit == remote_site_.end() ? kNoSite : rit->second;
}

obs::Context& ThreadRuntime::obs() {
  thread_local obs::Context ctx;
  return ctx;
}

sim::FaultPoints& ThreadRuntime::faults() {
  thread_local sim::FaultPoints points;
  return points;
}

Rng& ThreadRuntime::rng() {
  thread_local Rng r(seed_ + 0x9e37 * (1 + thread_counter.fetch_add(1)));
  return r;
}

void ThreadRuntime::forget_actor(NodeId node) {
  std::lock_guard<std::mutex> lk(route_mu_);
  local_.erase(node);
}

void ThreadRuntime::post(NodeId node, std::function<void()> fn) {
  Loop* loop = loop_of(node);
  if (loop == nullptr) throw std::logic_error("post: unknown node");
  std::lock_guard<std::mutex> lk(loop->mu);
  loop->posts.push_back(std::move(fn));
  loop->cv.notify_all();
}

void ThreadRuntime::call(NodeId node, std::function<void()> fn) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  post(node, [&] {
    fn();
    std::lock_guard<std::mutex> lk(mu);
    done = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return done; });
}

void ThreadRuntime::collect_metrics(obs::MetricsRegistry& into) {
  if (!running_.load()) return;
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining = loops_.size();
  for (auto& loop : loops_) {
    std::lock_guard<std::mutex> lk(loop->mu);
    loop->posts.push_back([this, &into, &mu, &cv, &remaining] {
      // Runs on the loop thread: obs() resolves to ITS registry.
      std::lock_guard<std::mutex> lk2(mu);
      into.merge_from(obs().metrics);
      if (--remaining == 0) cv.notify_all();
    });
    loop->cv.notify_all();
  }
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return remaining == 0; });
}

void ThreadRuntime::deliver(const Delivery& d) {
  sim::Actor* actor = nullptr;
  {
    std::lock_guard<std::mutex> lk(route_mu_);
    const auto it = local_.find(d.to);
    if (it != local_.end()) actor = it->second.actor;
  }
  if (actor == nullptr || !actor->up_) return;
  try {
    sim::MessagePtr msg = decode_message(d.bytes);
    actor->on_message(d.from, msg);
  } catch (const BufferError& e) {
    // A malformed frame is a codec bug or a torn stream; drop it like a
    // corrupt packet rather than taking the loop down.
    ++frames_dropped_;
    WK_WARN(now(), "rt", std::string("dropping undecodable frame: ") + e.what());
  }
}

void ThreadRuntime::run_loop(Loop& loop) {
  for (sim::Actor* actor : loop.actors) actor->start();
  std::unique_lock<std::mutex> lk(loop.mu);
  while (running_.load()) {
    if (!loop.posts.empty()) {
      auto fn = std::move(loop.posts.front());
      loop.posts.pop_front();
      lk.unlock();
      fn();
      lk.lock();
      continue;
    }
    if (!loop.inbox.empty()) {
      Delivery d = std::move(loop.inbox.front());
      loop.inbox.pop_front();
      lk.unlock();
      deliver(d);
      lk.lock();
      continue;
    }
    if (!loop.timers.empty() && loop.timers.begin()->first.first <= now()) {
      auto it = loop.timers.begin();
      const std::uint64_t seq = it->first.second;
      auto fn = std::move(it->second);
      loop.timers.erase(it);
      loop.deadline_of.erase(seq);
      lk.unlock();
      fn();
      lk.lock();
      continue;
    }
    if (loop.timers.empty()) {
      loop.cv.wait_for(lk, std::chrono::milliseconds(100));
    } else {
      loop.cv.wait_until(
          lk, start_tp_ + std::chrono::microseconds(
                              loop.timers.begin()->first.first));
    }
  }
  // Unblock any call() waiters that raced shutdown.
  while (!loop.posts.empty()) {
    auto fn = std::move(loop.posts.front());
    loop.posts.pop_front();
    lk.unlock();
    fn();
    lk.lock();
  }
}

void ThreadRuntime::run_writer(Conn& conn) {
  std::unique_lock<std::mutex> lk(conn.mu);
  while (running_.load()) {
    if (conn.queue.empty()) {
      conn.cv.wait_for(lk, std::chrono::milliseconds(100));
      continue;
    }
    if (conn.fd < 0) {
      lk.unlock();
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(conn.port);
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      int connected = -1;
      if (fd >= 0) {
        connected =
            ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
        if (connected == 0) {
          int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        } else {
          ::close(fd);
        }
      }
      if (connected != 0) {
        // Peer process not up yet (or gone): retry; queued frames wait.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        lk.lock();
        continue;
      }
      lk.lock();
      conn.fd = fd;
    }
    std::vector<std::uint8_t> frame = std::move(conn.queue.front());
    conn.queue.pop_front();
    const int fd = conn.fd;
    lk.unlock();
    const bool ok = write_full(fd, frame.data(), frame.size());
    lk.lock();
    if (!ok) {
      ++frames_dropped_;
      if (conn.fd >= 0) {
        ::close(conn.fd);
        conn.fd = -1;
      }
    }
  }
}

void ThreadRuntime::run_acceptor(int listen_fd) {
  while (running_.load()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) return;
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lk(io_mu_);
    if (!running_.load()) {
      ::close(fd);
      return;
    }
    reader_fds_.push_back(fd);
    reader_threads_.emplace_back([this, fd] { run_reader(fd); });
  }
}

void ThreadRuntime::run_reader(int fd) {
  std::uint8_t header[12];
  while (running_.load()) {
    if (!read_full(fd, header, sizeof(header))) return;
    const std::uint32_t len = load_le32(header);
    if (len < 8 || len > kMaxFrameBytes) return;  // torn stream
    Delivery d;
    d.from = static_cast<NodeId>(load_le32(header + 4));
    d.to = static_cast<NodeId>(load_le32(header + 8));
    d.bytes.resize(len - 8);
    if (!d.bytes.empty() && !read_full(fd, d.bytes.data(), d.bytes.size())) {
      return;
    }
    Loop* loop = loop_of(d.to);
    if (loop == nullptr) {
      ++frames_dropped_;
      continue;
    }
    enqueue_local(*loop, std::move(d));
  }
}

}  // namespace wankeeper::rt

// rt::Runtime over real threads and loopback TCP: the deployable
// counterpart of the deterministic simulator. Each event loop owns a set of
// actors (a co-located server + zab peer pair shares one loop, mirroring
// the one-process-per-replica deployment), and every message — even one
// between actors of the same loop — is serialized through rt/codec.h and
// decoded on the destination loop, so no mutable state ever crosses a node
// boundary by pointer.
//
// Cross-process topology: a node is either local (registered with
// add_actor) or remote (registered with add_remote, reachable through the
// TCP connection of its site). Frames are length-prefixed:
//   [u32 len][i32 from][i32 to][codec payload],  len = 8 + payload size.
// One listener socket per local site accepts peer processes' connections;
// one outbound connection (with a dedicated writer thread and a bounded
// queue) serves each remote site. Loss semantics match the seam contract:
// frames queued while a peer is down are delivered when it connects, frames
// in flight when a connection dies are gone — exactly the link-loss the
// protocols already recover from (Zab resync, WAN retransmit).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "rt/runtime.h"
#include "sim/actor.h"

namespace wankeeper::rt {

class ThreadRuntime final : public Runtime, public sim::ActorRegistry {
 public:
  explicit ThreadRuntime(std::uint64_t seed = 1);
  ~ThreadRuntime() override;

  ThreadRuntime(const ThreadRuntime&) = delete;
  ThreadRuntime& operator=(const ThreadRuntime&) = delete;

  // --- topology assembly; all of these before start() ---

  // A new event loop; returns its index for add_actor.
  std::size_t add_loop();
  // Register a local actor under an explicit, cluster-wide-agreed id.
  void add_actor(sim::Actor& actor, NodeId id, SiteId site, std::size_t loop);
  // Declare a node that lives in another process; sends to it are framed
  // over the TCP connection of `site`.
  void add_remote(NodeId id, SiteId site);
  // Accept frames for local actors on 127.0.0.1:port.
  void listen(std::uint16_t port);
  // Route frames addressed to `site`'s nodes to 127.0.0.1:port.
  void connect_site(SiteId site, std::uint16_t port);

  // Launches writer/listener/loop threads. Each loop first runs its actors'
  // start() in registration order, then serves timers and deliveries.
  void start();
  // Stops every thread and joins them; idempotent, also run by ~.
  // Registered actors must outlive this call.
  void stop();

  // Run fn on the loop that owns `node` (how non-loop threads poke actor
  // state: client ops, crash/restart, metric sampling). call() waits for
  // completion and rethrows nothing — fn must not throw.
  void post(NodeId node, std::function<void()> fn);
  void call(NodeId node, std::function<void()> fn);

  std::uint64_t frames_dropped() const { return frames_dropped_.load(); }

  // Fold every event-loop thread's thread-local metrics registry into
  // `into` (obs() is per-thread on this runtime, so no single registry has
  // the whole picture). Runs a task on each loop and waits for all of
  // them; only valid between start() and stop().
  void collect_metrics(obs::MetricsRegistry& into);

  // --- rt::Runtime ---
  Time now() const override;
  TimerId schedule(NodeId home, Time delay, std::function<void()> fn) override;
  void cancel(TimerId id) override;
  // Creates a dedicated loop and auto-assigns an id (ids from 1<<20, clear
  // of any cluster plan). Pre-start only.
  NodeId spawn(sim::Actor& actor, SiteId site) override;
  void send(NodeId from, NodeId to, sim::MessagePtr msg) override;
  SiteId site_of(NodeId node) const override;
  obs::Context& obs() override;          // per-thread shard
  sim::FaultPoints& faults() override;   // per-thread, never armed
  Rng& rng() override;                   // per-thread, seeded off `seed`

  // --- sim::ActorRegistry ---
  void forget_actor(NodeId node) override;

 private:
  struct Delivery {
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    std::vector<std::uint8_t> bytes;
  };

  struct Loop {
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    // (absolute deadline, seq) -> callback; deadline_of mirrors it so
    // cancel() is a lookup, not a scan.
    std::map<std::pair<Time, std::uint64_t>, std::function<void()>> timers;
    std::unordered_map<std::uint64_t, Time> deadline_of;
    std::uint64_t next_seq = 1;
    std::deque<Delivery> inbox;
    std::deque<std::function<void()>> posts;
    std::vector<sim::Actor*> actors;  // start() order
  };

  struct LocalNode {
    sim::Actor* actor = nullptr;
    Loop* loop = nullptr;
    std::size_t loop_idx = 0;
    SiteId site = kNoSite;
  };

  // Outbound link to one remote site's process.
  struct Conn {
    std::uint16_t port = 0;
    std::thread writer;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<std::uint8_t>> queue;  // complete frames
    int fd = -1;
  };

  void run_loop(Loop& loop);
  void deliver(const Delivery& d);
  void enqueue_local(Loop& loop, Delivery d);
  void run_writer(Conn& conn);
  void run_acceptor(int listen_fd);
  void run_reader(int fd);
  Loop* loop_of(NodeId node) const;

  const std::uint64_t seed_;
  const std::chrono::steady_clock::time_point start_tp_;

  std::atomic<bool> running_{false};
  bool started_ = false;

  mutable std::mutex route_mu_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::unordered_map<NodeId, LocalNode> local_;
  std::unordered_map<NodeId, SiteId> remote_site_;
  std::map<SiteId, std::unique_ptr<Conn>> conns_;
  NodeId next_auto_id_ = 1 << 20;

  std::vector<int> listen_fds_;
  std::vector<std::thread> acceptors_;
  std::mutex io_mu_;  // guards reader_threads_ / reader_fds_
  std::vector<std::thread> reader_threads_;
  std::vector<int> reader_fds_;

  std::atomic<std::uint64_t> frames_dropped_{0};
};

}  // namespace wankeeper::rt

#include "rt/cluster.h"

#include <algorithm>
#include <map>
#include <thread>

namespace wankeeper::rt {

HostedCluster::HostedCluster(ThreadRuntime& rt, ClusterConfig cfg,
                             std::vector<SiteId> local_sites)
    : rt_(rt), cfg_(cfg), plan_(cfg), local_sites_(std::move(local_sites)) {
  if (local_sites_.empty()) {
    for (std::size_t s = 0; s < cfg_.sites; ++s) {
      local_sites_.push_back(static_cast<SiteId>(s));
    }
  }
  // Every process derives the same global directory from the plan.
  directory_ = std::make_shared<wk::SiteDirectory>();
  directory_->servers_by_site.resize(cfg_.sites);
  for (std::size_t s = 0; s < cfg_.sites; ++s) {
    for (std::size_t i = 0; i < cfg_.nodes_per_site; ++i) {
      directory_->servers_by_site[s].push_back(
          plan_.server_id(static_cast<SiteId>(s), i));
    }
  }

  nodes_by_site_.resize(cfg_.sites);
  for (std::size_t su = 0; su < cfg_.sites; ++su) {
    const SiteId s = static_cast<SiteId>(su);
    if (!is_local(s)) {
      for (std::size_t i = 0; i < cfg_.nodes_per_site; ++i) {
        rt_.add_remote(plan_.server_id(s, i), s);
        rt_.add_remote(plan_.peer_id(s, i), s);
      }
      if (plan_.base_port != 0) rt_.connect_site(s, plan_.port_of(s));
      continue;
    }
    auto& nodes = nodes_by_site_[su];
    std::vector<NodeId> voters;
    std::map<NodeId, NodeId> peer_to_server;
    for (std::size_t i = 0; i < cfg_.nodes_per_site; ++i) {
      const std::string base = "wk-s" + std::to_string(su) + "-" +
                               std::to_string(i);
      SiteNode node;
      node.broker = std::make_unique<wk::Broker>(rt_, base, cfg_.server,
                                                 cfg_.wan, directory_,
                                                 /*auditor=*/nullptr);
      node.broker->set_site(s);
      node.peer = std::make_unique<zab::Peer>(rt_, base + "-zab",
                                              *node.broker, cfg_.peer);
      const std::size_t loop = rt_.add_loop();
      rt_.add_actor(*node.broker, plan_.server_id(s, i), s, loop);
      rt_.add_actor(*node.peer, plan_.peer_id(s, i), s, loop);
      voters.push_back(plan_.peer_id(s, i));
      peer_to_server[plan_.peer_id(s, i)] = plan_.server_id(s, i);
      nodes.push_back(std::move(node));
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      nodes[i].broker->attach_peer(*nodes[i].peer);
      nodes[i].broker->set_peer_server_map(peer_to_server);
      // Priority rises with index: the last peer (highest id) is the
      // intended initial leader, as in the sim Ensemble.
      nodes[i].peer->boot(voters, /*observers=*/{}, /*is_observer=*/false,
                          static_cast<std::int32_t>(i));
    }
    if (plan_.base_port != 0 && local_sites_.size() < cfg_.sites) {
      rt_.listen(plan_.port_of(s));
    }
  }

  for (const SiteId s : local_sites_) {
    for (std::size_t k = 0; k < cfg_.clients_per_site; ++k) {
      ClientSlot slot;
      slot.site = s;
      slot.node = plan_.client_id(s, k);
      slot.server = plan_.server_id(s, k % cfg_.nodes_per_site);
      slot.client = std::make_unique<zk::Client>(
          rt_, "client-s" + std::to_string(s) + "-" + std::to_string(k),
          plan_.session_of(s, k));
      const std::size_t loop = rt_.add_loop();
      rt_.add_actor(*slot.client, slot.node, s, loop);
      clients_.push_back(std::move(slot));
    }
  }
}

HostedCluster::~HostedCluster() {
  // Threads must not be touching the actors we are about to destroy.
  rt_.stop();
}

bool HostedCluster::is_local(SiteId s) const {
  return std::find(local_sites_.begin(), local_sites_.end(), s) !=
         local_sites_.end();
}

void HostedCluster::start() {
  rt_.start();
  for (auto& slot : clients_) {
    zk::Client* c = slot.client.get();
    const NodeId server = slot.server;
    rt_.call(slot.node, [c, server] { c->connect(server); });
  }
}

wk::Broker* HostedCluster::site_leader(SiteId s) {
  auto& nodes = nodes_by_site_[static_cast<std::size_t>(s)];
  for (auto& node : nodes) {
    if (node.peer->leading()) return node.broker.get();
  }
  return nullptr;
}

wk::Broker& HostedCluster::broker(SiteId s, std::size_t i) {
  return *nodes_by_site_[static_cast<std::size_t>(s)][i].broker;
}

bool HostedCluster::wait_ready(Time max_wait) {
  const Time deadline = rt_.now() + max_wait;
  while (rt_.now() < deadline) {
    bool ready = true;
    for (const SiteId s : local_sites_) {
      wk::Broker* leader = site_leader(s);
      if (leader == nullptr) {
        ready = false;
        break;
      }
      // Sample the leader's protocol state on its own loop.
      bool ok = false;
      rt_.call(leader->id(), [leader, &ok] {
        ok = leader->l2_role() ? !leader->l2_reconciling()
                               : leader->registered_with_hub();
      });
      if (!ok) {
        ready = false;
        break;
      }
    }
    if (ready) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

std::uint64_t HostedCluster::tree_digest(SiteId s) {
  wk::Broker* leader = site_leader(s);
  if (leader == nullptr) return 0;
  std::uint64_t digest = 0;
  rt_.call(leader->id(), [leader, &digest] {
    digest = leader->tree().digest();
  });
  return digest;
}

bool HostedCluster::converged_locally() {
  std::uint64_t digest = 0;
  bool first = true;
  for (const SiteId s : local_sites_) {
    for (auto& node : nodes_by_site_[static_cast<std::size_t>(s)]) {
      wk::Broker* b = node.broker.get();
      if (!b->up()) continue;
      std::uint64_t d = 0;
      rt_.call(b->id(), [b, &d] { d = b->tree().digest(); });
      if (first) {
        digest = d;
        first = false;
      } else if (d != digest) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace wankeeper::rt

// The runtime seam: the narrow surface protocol actors (zab::Peer,
// zk::Server, zk::Client, wk::Broker) actually need from their execution
// substrate — a clock, timers, message send, site placement, and the
// observability/fault-injection contexts. Everything in zab/, zk/, and
// wankeeper/ is written against this interface; sim::Simulator implements
// it over virtual time (the deterministic testing substrate) and
// rt::ThreadRuntime implements it over real threads and loopback TCP (the
// deployable artifact). See DESIGN.md §2d for what each implementation
// guarantees.
//
// The seam is deliberately message-shaped, not socket-shaped: send() takes
// an immutable sim::MessagePtr and delivery is a call to
// Actor::on_message(). The DES routes the pointer through the latency
// model unchanged; the thread runtime serializes it through rt/codec.h and
// reconstructs it on the destination's event loop, so the protocol code
// cannot tell the difference (and cannot accidentally share mutable state
// across nodes — the codec round-trip enforces value semantics).
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "sim/message.h"

namespace wankeeper {
class Rng;
}
namespace wankeeper::obs {
struct Context;
}
namespace wankeeper::sim {
class Actor;
class FaultPoints;
class Simulator;
}  // namespace wankeeper::sim

namespace wankeeper::rt {

// Timer handle. 0 is never a valid id (the simulator's slot generations
// start at 1; the thread runtime's sequence numbers do too), so callers can
// use 0 as "no timer armed". Layout is runtime-private.
using TimerId = std::uint64_t;

class Runtime {
 public:
  virtual ~Runtime() = default;

  // Current time in microseconds: virtual time on the DES, monotonic wall
  // clock (since runtime start) on the thread runtime.
  virtual Time now() const = 0;

  // Run `fn` after `delay` on the event loop that owns `home`. Loop
  // affinity only matters to multi-threaded runtimes (the callback must
  // run where the actor's state lives); the single-threaded DES ignores
  // it. Actors should use Actor::set_timer, which adds the
  // incarnation/liveness guard and, on the DES, skips the std::function
  // type erasure entirely.
  virtual TimerId schedule(NodeId home, Time delay,
                           std::function<void()> fn) = 0;
  // Cancelling an already-fired or unknown id is a harmless no-op.
  virtual void cancel(TimerId id) = 0;

  // Register an actor and assign its NodeId; calls (or arranges to call)
  // Actor::start(). On the DES this requires an attached sim::Network.
  virtual NodeId spawn(sim::Actor& actor, SiteId site) = 0;

  // Send msg from -> to. Fire-and-forget: delivery is not guaranteed
  // (links may be cut, the destination may be down or unreachable); loss
  // and reordering semantics are per-runtime — see DESIGN.md §2d. Both
  // runtimes guarantee FIFO per ordered (from, to) pair while the
  // transport stays connected.
  virtual void send(NodeId from, NodeId to, sim::MessagePtr msg) = 0;

  // Site placement of a node, kNoSite if unknown to this runtime.
  virtual SiteId site_of(NodeId node) const = 0;

  // Flight recorder (metrics + traces + event log). The DES has exactly
  // one; the thread runtime returns the calling loop's shard.
  virtual obs::Context& obs() = 0;
  // Crash/recovery fault-injection points. Armed points are a DES-only
  // feature; the thread runtime returns a shared, never-armed instance.
  virtual sim::FaultPoints& faults() = 0;
  // Seeded randomness. Deterministic on the DES; per-thread on the thread
  // runtime (seeded from the runtime seed, but interleaving is real).
  virtual Rng& rng() = 0;

  // Non-null iff this runtime is the deterministic simulator. Actor uses
  // it to keep the allocation-free timer fast path (and sim-only harness
  // code uses it to reach DES-specific APIs).
  virtual sim::Simulator* des() { return nullptr; }
};

}  // namespace wankeeper::rt

#include "common/buffer.h"

namespace wankeeper {

void BufferWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BufferWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BufferWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void BufferWriter::blob(const std::vector<std::uint8_t>& b) {
  u32(static_cast<std::uint32_t>(b.size()));
  bytes_.insert(bytes_.end(), b.begin(), b.end());
}

void BufferReader::need(std::size_t n) const {
  if (pos_ + n > size_) throw BufferError("buffer underflow");
}

std::uint8_t BufferReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t BufferReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t BufferReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::string BufferReader::str() {
  std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::uint8_t> BufferReader::blob() {
  std::uint32_t n = u32();
  need(n);
  std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return b;
}

}  // namespace wankeeper

// Minimal leveled logging. Off by default so tests and benches stay quiet;
// enable with Logger::set_level() or the WANKEEPER_LOG environment variable
// (trace|debug|info|warn|error).
#pragma once

#include <cstdio>
#include <string>

#include "common/types.h"

namespace wankeeper {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

// Parse a WANKEEPER_LOG value (trace|debug|info|warn|error|off). Unknown
// strings and nullptr disable logging — a typo must never spam a bench run.
LogLevel log_level_from_string(const char* s);

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);

  // `now` lets callers stamp messages with virtual time.
  static void log(LogLevel level, Time now, const std::string& component,
                  const std::string& message);

  static bool enabled(LogLevel l) { return l >= level(); }
};

#define WK_LOG(lvl, now, component, msg)                          \
  do {                                                            \
    if (::wankeeper::Logger::enabled(lvl)) {                      \
      ::wankeeper::Logger::log(lvl, now, component, msg);         \
    }                                                             \
  } while (0)

#define WK_TRACE(now, component, msg) WK_LOG(::wankeeper::LogLevel::kTrace, now, component, msg)
#define WK_DEBUG(now, component, msg) WK_LOG(::wankeeper::LogLevel::kDebug, now, component, msg)
#define WK_INFO(now, component, msg) WK_LOG(::wankeeper::LogLevel::kInfo, now, component, msg)
#define WK_WARN(now, component, msg) WK_LOG(::wankeeper::LogLevel::kWarn, now, component, msg)

}  // namespace wankeeper

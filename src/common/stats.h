// Latency/throughput accounting for the benchmark harnesses: streaming
// summary statistics, percentile estimation, CDF export, and windowed
// throughput series (Fig 10c style).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace wankeeper {

// Collects raw samples (microseconds) and answers summary queries.
// Sample counts in our experiments are 1e4..1e6, so keeping raw samples is
// fine and gives exact percentiles.
class LatencyRecorder {
 public:
  void record(Time latency_us);

  std::size_t count() const { return samples_.size(); }
  double mean_us() const;
  double mean_ms() const { return mean_us() / 1000.0; }
  Time min_us() const;
  Time max_us() const;
  // q in [0,1]; exact order statistic (nearest-rank).
  Time percentile_us(double q) const;

  // (latency_ms, cumulative_fraction) pairs suitable for plotting a CDF.
  // `points` caps the output size by subsampling evenly over ranks.
  std::vector<std::pair<double, double>> cdf(std::size_t points = 100) const;

  const std::vector<Time>& samples() const { return samples_; }
  void merge(const LatencyRecorder& other);
  void clear();

 private:
  void ensure_sorted() const;

  std::vector<Time> samples_;
  mutable bool sorted_ = false;
};

// Counts completed operations in fixed windows of virtual time, producing
// the throughput-over-time series of Fig 10c.
class ThroughputSeries {
 public:
  explicit ThroughputSeries(Time window = 10 * kSecond) : window_(window) {}

  void record(Time completion_time);

  // ops/sec per window, index i covering [i*window, (i+1)*window).
  std::vector<double> ops_per_sec() const;
  Time window() const { return window_; }

 private:
  Time window_;
  std::vector<std::uint64_t> counts_;
};

// Simple fixed-width table printer for bench output: pads columns and prints
// a header once, so every bench binary reports in the same format.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int col_width = 14);

  void row(const std::vector<std::string>& cells);
  static std::string num(double v, int precision = 1);

 private:
  std::vector<std::string> headers_;
  int width_;
  bool header_printed_ = false;
  void print_header();
};

}  // namespace wankeeper

// Flat binary serialization used for Zab transaction payloads.
//
// ZooKeeper marshals requests with jute; we use an equivalent hand-rolled
// length-prefixed little-endian format. Keeping txn payloads as real bytes
// (rather than passing C++ structs through) models the marshalling work the
// paper charges WanKeeper for, and forces every layer to round-trip its
// wire state, which the tests exploit.
//
// The integer accessors are inline: every committed txn is serialized once
// and deserialized at every applying peer, so out-of-line byte-at-a-time
// calls showed up as a few percent of the whole event-loop profile.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace wankeeper {

// Raw little-endian accessors for fixed-offset headers written outside a
// BufferWriter — the socket frame header in rt/thread_runtime.cpp reads and
// writes these directly on the wire buffer. Same byte order as u32() below.
inline void store_le32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
inline std::uint32_t load_le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

class BufferWriter {
 public:
  // Pre-size for a known payload; saves the doubling reallocs on the
  // per-commit encode path.
  void reserve(std::size_t n) { bytes_.reserve(n); }
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    const std::size_t n = bytes_.size();
    bytes_.resize(n + 4);
    for (int i = 0; i < 4; ++i) {
      bytes_[n + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    }
  }
  void u64(std::uint64_t v) {
    const std::size_t n = bytes_.size();
    bytes_.resize(n + 8);
    for (int i = 0; i < 8; ++i) {
      bytes_[n + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    }
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void blob(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    bytes_.insert(bytes_.end(), b.begin(), b.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

// Thrown when a reader runs off the end of a buffer or sees a bad tag:
// indicates a serialization bug, never expected in a healthy run.
class BufferError : public std::runtime_error {
 public:
  explicit BufferError(const std::string& what) : std::runtime_error(what) {}
};

class BufferReader {
 public:
  explicit BufferReader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  BufferReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<std::uint8_t> blob() {
    const std::uint32_t n = u32();
    need(n);
    std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > size_) throw BufferError("buffer underflow");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace wankeeper

// Flat binary serialization used for Zab transaction payloads.
//
// ZooKeeper marshals requests with jute; we use an equivalent hand-rolled
// length-prefixed little-endian format. Keeping txn payloads as real bytes
// (rather than passing C++ structs through) models the marshalling work the
// paper charges WanKeeper for, and forces every layer to round-trip its
// wire state, which the tests exploit.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace wankeeper {

class BufferWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s);
  void blob(const std::vector<std::uint8_t>& b);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

// Thrown when a reader runs off the end of a buffer or sees a bad tag:
// indicates a serialization bug, never expected in a healthy run.
class BufferError : public std::runtime_error {
 public:
  explicit BufferError(const std::string& what) : std::runtime_error(what) {}
};

class BufferReader {
 public:
  explicit BufferReader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  BufferReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() { return u8() != 0; }
  std::string str();
  std::vector<std::uint8_t> blob();

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace wankeeper

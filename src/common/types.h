// Fundamental identifier and time types shared by every layer.
#pragma once

#include <cstdint>
#include <string>

namespace wankeeper {

// Virtual time, microseconds since simulation start.
using Time = std::int64_t;

constexpr Time kMicrosecond = 1;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

// Globally unique actor address within one simulation.
using NodeId = std::int32_t;
constexpr NodeId kNoNode = -1;

// Datacenter / region identifier.
using SiteId = std::int32_t;
constexpr SiteId kNoSite = -1;

// Zab transaction id: (epoch << 32) | counter.
using Zxid = std::uint64_t;
constexpr Zxid kNoZxid = 0;

inline constexpr Zxid make_zxid(std::uint32_t epoch, std::uint32_t counter) {
  return (static_cast<Zxid>(epoch) << 32) | counter;
}
inline constexpr std::uint32_t zxid_epoch(Zxid z) {
  return static_cast<std::uint32_t>(z >> 32);
}
inline constexpr std::uint32_t zxid_counter(Zxid z) {
  return static_cast<std::uint32_t>(z & 0xffffffffu);
}

// Client session identifier (unique across the whole deployment).
using SessionId = std::int64_t;
constexpr SessionId kNoSession = -1;

// Client-assigned request sequence number; replies carry it back (FIFO order).
using Xid = std::int64_t;

std::string format_time(Time t);

}  // namespace wankeeper

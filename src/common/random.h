// Seeded pseudo-randomness for deterministic simulations, plus the YCSB
// key-chooser distributions the paper's workloads use.
#pragma once

#include <cstdint>
#include <vector>

namespace wankeeper {

// xoshiro256** — fast, seedable, good statistical quality; one instance per
// simulation so runs are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next();

  // Uniform in [0, n).
  std::uint64_t uniform(std::uint64_t n);
  // Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);
  // Uniform real in [0, 1).
  double real();
  // True with probability p.
  bool chance(double p);
  // Normal(mean, stddev) via Box-Muller.
  double normal(double mean, double stddev);

 private:
  std::uint64_t s_[4];
};

// Zipfian key chooser over {0, ..., n-1} with exponent s, exactly the
// distribution the paper quotes for YCSB:
//   f(k; s, N) = (1/k^s) / sum_{n=1..N} (1/n^s)
// Implemented with the Gray/Jim YCSB rejection-free inverse method so draws
// are O(1) after O(N)-free setup.
class Zipfian {
 public:
  Zipfian(std::uint64_t n, double s = 0.99);

  std::uint64_t next(Rng& rng);

  std::uint64_t n() const { return n_; }
  double exponent() const { return theta_; }
  // Probability mass of item with 1-based rank k (for tests).
  double pmf(std::uint64_t rank) const;

 private:
  static double zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
};

// YCSB "hotspot" distribution: `hot_fraction` of the keyspace receives
// `hot_op_fraction` of the operations; both sets are uniform inside.
// The hot set is a seeded random subset so two clients with different seeds
// get *different* hot sets, modeling the per-site hot spots of Fig 10b.
class Hotspot {
 public:
  Hotspot(std::uint64_t n, double hot_fraction, double hot_op_fraction,
          std::uint64_t hot_set_seed);

  std::uint64_t next(Rng& rng);

  const std::vector<std::uint64_t>& hot_set() const { return hot_; }

 private:
  std::uint64_t n_;
  double hot_op_fraction_;
  std::vector<std::uint64_t> hot_;   // hot keys
  std::vector<std::uint64_t> cold_;  // everything else
};

}  // namespace wankeeper

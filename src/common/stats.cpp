#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace wankeeper {

void LatencyRecorder::record(Time latency_us) {
  samples_.push_back(latency_us);
  sorted_ = false;
}

double LatencyRecorder::mean_us() const {
  if (samples_.empty()) return 0.0;
  const double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return sum / static_cast<double>(samples_.size());
}

Time LatencyRecorder::min_us() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

Time LatencyRecorder::max_us() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

void LatencyRecorder::ensure_sorted() const {
  if (!sorted_) {
    auto& mut = const_cast<std::vector<Time>&>(samples_);
    std::sort(mut.begin(), mut.end());
    const_cast<bool&>(sorted_) = true;
  }
}

Time LatencyRecorder::percentile_us(double q) const {
  if (samples_.empty()) return 0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile out of range");
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(idx, samples_.size() - 1)];
}

std::vector<std::pair<double, double>> LatencyRecorder::cdf(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  ensure_sorted();
  const std::size_t n = samples_.size();
  const std::size_t step = std::max<std::size_t>(1, n / points);
  for (std::size_t i = step - 1; i < n; i += step) {
    out.emplace_back(static_cast<double>(samples_[i]) / 1000.0,
                     static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (out.empty() || out.back().second < 1.0) {
    out.emplace_back(static_cast<double>(samples_[n - 1]) / 1000.0, 1.0);
  }
  return out;
}

void LatencyRecorder::merge(const LatencyRecorder& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void LatencyRecorder::clear() {
  samples_.clear();
  sorted_ = false;
}

void ThroughputSeries::record(Time completion_time) {
  const auto idx = static_cast<std::size_t>(completion_time / window_);
  if (counts_.size() <= idx) counts_.resize(idx + 1, 0);
  ++counts_[idx];
}

std::vector<double> ThroughputSeries::ops_per_sec() const {
  std::vector<double> out;
  out.reserve(counts_.size());
  const double secs = static_cast<double>(window_) / static_cast<double>(kSecond);
  for (auto c : counts_) out.push_back(static_cast<double>(c) / secs);
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> headers, int col_width)
    : headers_(std::move(headers)), width_(col_width) {}

void TablePrinter::print_header() {
  std::string line;
  for (const auto& h : headers_) {
    std::string cell = h;
    cell.resize(static_cast<std::size_t>(width_), ' ');
    line += cell;
  }
  std::printf("%s\n", line.c_str());
  std::printf("%s\n", std::string(line.size(), '-').c_str());
  header_printed_ = true;
}

void TablePrinter::row(const std::vector<std::string>& cells) {
  if (!header_printed_) print_header();
  std::string line;
  for (const auto& c : cells) {
    std::string cell = c;
    if (cell.size() < static_cast<std::size_t>(width_)) {
      cell.resize(static_cast<std::size_t>(width_), ' ');
    } else {
      cell += ' ';
    }
    line += cell;
  }
  std::printf("%s\n", line.c_str());
}

std::string TablePrinter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace wankeeper

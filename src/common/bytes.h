// Immutable shared byte buffer for transaction payloads. A Zab entry's
// payload used to be a std::vector<std::uint8_t> that was deep-copied at
// every hop of its life — leader log append, per-follower append, SYNC
// snapshots, observer INFORMs, L2 refills. The bytes never change after
// serialization, so Bytes keeps one heap block behind a shared_ptr and
// makes every "copy" a reference-count bump.
//
// Counters (thread-local; the sim is single-threaded and the parallel seed
// hunter forks) let bench/bench_sim report how many payload bytes were
// materialized vs. shared structurally.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <vector>

namespace wankeeper::common {

struct BytesStats {
  std::uint64_t bytes_materialized = 0;  // deep copies into fresh storage
  std::uint64_t bytes_shared = 0;        // copy-constructions that only bumped a refcount
};

inline BytesStats& bytes_stats() {
  thread_local BytesStats stats;
  return stats;
}

class Bytes {
 public:
  Bytes() = default;
  Bytes(std::vector<std::uint8_t> v) {  // NOLINT(google-explicit-constructor)
    bytes_stats().bytes_materialized += v.size();
    if (!v.empty()) {
      data_ = std::make_shared<const std::vector<std::uint8_t>>(std::move(v));
    }
  }
  Bytes(std::initializer_list<std::uint8_t> il) {
    bytes_stats().bytes_materialized += il.size();
    if (il.size() != 0) {
      data_ = std::make_shared<const std::vector<std::uint8_t>>(il);
    }
  }

  Bytes(const Bytes& other) : data_(other.data_) {
    bytes_stats().bytes_shared += size();
  }
  Bytes& operator=(const Bytes& other) {
    data_ = other.data_;
    bytes_stats().bytes_shared += size();
    return *this;
  }
  Bytes(Bytes&&) noexcept = default;
  Bytes& operator=(Bytes&&) noexcept = default;

  const std::uint8_t* data() const {
    return data_ == nullptr ? nullptr : data_->data();
  }
  std::size_t size() const { return data_ == nullptr ? 0 : data_->size(); }
  bool empty() const { return size() == 0; }

  // Materialize a mutable copy (rare: only where an API insists on vectors).
  std::vector<std::uint8_t> to_vector() const {
    bytes_stats().bytes_materialized += size();
    return data_ == nullptr ? std::vector<std::uint8_t>{} : *data_;
  }

  bool operator==(const Bytes& other) const {
    if (data_ == other.data_) return true;
    return size() == other.size() &&
           (size() == 0 ||
            std::memcmp(data(), other.data(), size()) == 0);
  }
  bool operator==(const std::vector<std::uint8_t>& v) const {
    return size() == v.size() &&
           (size() == 0 || std::memcmp(data(), v.data(), size()) == 0);
  }

 private:
  std::shared_ptr<const std::vector<std::uint8_t>> data_;
};

}  // namespace wankeeper::common

#include "common/logging.h"

#include <cstdlib>
#include <cstring>

namespace wankeeper {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("WANKEEPER_LOG");
  if (env == nullptr) return LogLevel::kOff;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kOff;
}

LogLevel g_level = level_from_env();

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

std::string format_time(Time t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%06llds",
                static_cast<long long>(t / kSecond),
                static_cast<long long>(t % kSecond));
  return buf;
}

LogLevel Logger::level() { return g_level; }

void Logger::set_level(LogLevel level) { g_level = level; }

void Logger::log(LogLevel level, Time now, const std::string& component,
                 const std::string& message) {
  std::fprintf(stderr, "[%s %s] %-14s %s\n", level_name(level),
               format_time(now).c_str(), component.c_str(), message.c_str());
}

}  // namespace wankeeper

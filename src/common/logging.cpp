#include "common/logging.h"

#include <cstdlib>
#include <cstring>

namespace wankeeper {

LogLevel log_level_from_string(const char* s) {
  if (s == nullptr) return LogLevel::kOff;
  if (std::strcmp(s, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(s, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(s, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(s, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(s, "error") == 0) return LogLevel::kError;
  return LogLevel::kOff;  // includes explicit "off" and any junk
}

namespace {

LogLevel g_level = log_level_from_string(std::getenv("WANKEEPER_LOG"));

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

std::string format_time(Time t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%06llds",
                static_cast<long long>(t / kSecond),
                static_cast<long long>(t % kSecond));
  return buf;
}

LogLevel Logger::level() { return g_level; }

void Logger::set_level(LogLevel level) { g_level = level; }

void Logger::log(LogLevel level, Time now, const std::string& component,
                 const std::string& message) {
  std::fprintf(stderr, "[%s %s] %-14s %s\n", level_name(level),
               format_time(now).c_str(), component.c_str(), message.c_str());
}

}  // namespace wankeeper

#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace wankeeper {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform(0)");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return v % n;
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(uniform(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::real() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return real() < p; }

double Rng::normal(double mean, double stddev) {
  double u1 = real();
  double u2 = real();
  if (u1 < 1e-300) u1 = 1e-300;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Zipfian::zeta(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

Zipfian::Zipfian(std::uint64_t n, double s) : n_(n), theta_(s) {
  if (n == 0) throw std::invalid_argument("Zipfian over empty keyspace");
  zetan_ = zeta(n, theta_);
  const double zeta2 = zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta_)) / (1.0 - zeta2 / zetan_);
}

std::uint64_t Zipfian::next(Rng& rng) {
  const double u = rng.real();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto k = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(k, n_ - 1);
}

double Zipfian::pmf(std::uint64_t rank) const {
  return (1.0 / std::pow(static_cast<double>(rank), theta_)) / zetan_;
}

Hotspot::Hotspot(std::uint64_t n, double hot_fraction, double hot_op_fraction,
                 std::uint64_t hot_set_seed)
    : n_(n), hot_op_fraction_(hot_op_fraction) {
  if (n == 0) throw std::invalid_argument("Hotspot over empty keyspace");
  auto hot_count = static_cast<std::uint64_t>(std::ceil(static_cast<double>(n) * hot_fraction));
  hot_count = std::clamp<std::uint64_t>(hot_count, 1, n);
  std::vector<std::uint64_t> keys(n);
  std::iota(keys.begin(), keys.end(), 0);
  Rng shuffler(hot_set_seed);
  for (std::uint64_t i = n - 1; i > 0; --i) {
    std::swap(keys[i], keys[shuffler.uniform(i + 1)]);
  }
  hot_.assign(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(hot_count));
  cold_.assign(keys.begin() + static_cast<std::ptrdiff_t>(hot_count), keys.end());
}

std::uint64_t Hotspot::next(Rng& rng) {
  if (!cold_.empty() && !rng.chance(hot_op_fraction_)) {
    return cold_[rng.uniform(cold_.size())];
  }
  return hot_[rng.uniform(hot_.size())];
}

}  // namespace wankeeper

// Shared crash-sweep harness: a loaded three-site deployment driven through
// a seed-derived schedule of node crashes, then quiesced and checked for
// token safety and cross-site convergence. One definition serves the gtest
// failure sweeps (tests/test_failures.cpp), the recovery fault-injection
// tests (tests/test_recovery.cpp), and the CI seed hunter (tools/seed_hunt)
// so "seed N failed" means the same schedule everywhere.
//
// Header-only and gtest-free on purpose: the callers assert on SweepResult
// with whatever reporting they have (EXPECT_*, exit codes, artifacts).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/failure.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "wankeeper/deployment.h"

namespace wankeeper::wk {

struct LoadedDeployment {
  sim::Simulator sim;
  sim::Network net;
  TokenAuditor audit;
  Deployment deploy;
  std::vector<std::unique_ptr<zk::Client>> clients;
  std::vector<std::uint64_t> completed;
  bool stop = false;

  explicit LoadedDeployment(std::uint64_t seed, DeploymentConfig cfg = {})
      : sim(seed), net(sim, sim::LatencyModel::paper_wan()),
        deploy(sim, net, cfg, &audit) {}

  void start_load() {
    auto setup = deploy.make_client("setup", 0, 50);
    sim.run_for(500 * kMillisecond);
    int created = 0;
    for (int k = 0; k < 10; ++k) {
      setup->create("/k" + std::to_string(k), "0", false, false,
                    [&](const zk::ClientResult&) { ++created; });
    }
    sim.run_for(5 * kSecond);

    completed.assign(3, 0);
    for (int i = 0; i < 3; ++i) {
      clients.push_back(deploy.make_client("c" + std::to_string(i),
                                           static_cast<SiteId>(i), 1000 + i));
    }
    sim.run_for(1 * kSecond);
    for (int i = 0; i < 3; ++i) issue(i);
  }

  void issue(int i) {
    if (stop) return;
    auto& rng = sim.rng();
    const std::string path = "/k" + std::to_string(rng.uniform(10));
    clients[static_cast<std::size_t>(i)]->set_data(
        path, "v", -1, [this, i](const zk::ClientResult& r) {
          if (r.ok()) ++completed[static_cast<std::size_t>(i)];
          if (r.rc == store::Rc::kSessionExpired) {
            // The WAN heartbeater expired us while our site was cut off;
            // do what a real client does and start a fresh session.
            clients[static_cast<std::size_t>(i)]->reconnect();
          }
          issue(i);  // retry/continue regardless of rc
        });
  }
};

struct SweepResult {
  bool audit_clean = false;
  std::string first_violation;
  bool converged = false;
  std::uint64_t completed_total = 0;

  bool ok() const { return audit_clean && converged && completed_total > 100; }
};

// The canonical crash schedule for `seed`: four random single-node crashes
// (network endpoint + co-located zab peer) with 5 s restarts over ~a minute
// of cross-site write load, then a 20 s quiesce.
inline SweepResult run_crash_sweep_on(LoadedDeployment& d, std::uint64_t seed) {
  d.start_load();

  Rng schedule(seed * 97);
  for (int i = 0; i < 4; ++i) {
    const Time when = d.sim.now() + 5 * kSecond + static_cast<Time>(
                          schedule.uniform(10 * kSecond));
    const SiteId site = static_cast<SiteId>(schedule.uniform(3));
    const std::size_t node = schedule.uniform(3);
    sim::FailureInjector inject(d.net);
    inject.crash_at(when, d.deploy.site_ensemble(site).server_id(node),
                    5 * kSecond);
    // The co-located zab peer shares the fate of its server.
    d.sim.at(when, [&d, site, node]() {
      d.deploy.site_ensemble(site).peer(node).crash();
    });
    d.sim.at(when + 5 * kSecond, [&d, site, node]() {
      d.deploy.site_ensemble(site).peer(node).restart();
    });
    d.sim.run_for(12 * kSecond);
  }
  d.stop = true;
  d.sim.run_for(20 * kSecond);  // quiesce

  SweepResult r;
  r.audit_clean = d.audit.clean();
  if (!d.audit.violations().empty()) r.first_violation = d.audit.violations().front();
  r.converged = d.deploy.converged();
  r.completed_total = d.completed[0] + d.completed[1] + d.completed[2];
  return r;
}

inline SweepResult run_crash_sweep(std::uint64_t seed, bool batching) {
  DeploymentConfig cfg;
  if (batching) cfg.enable_batching();
  LoadedDeployment d(seed, cfg);
  return run_crash_sweep_on(d, seed);
}

}  // namespace wankeeper::wk

// Shared sweep harness: a loaded multi-site deployment driven through a
// seed-derived schedule of node crashes (the canonical crash sweep) or a
// scripted hostile-WAN scenario (sim/scenario.h), then quiesced and checked
// for token safety, cross-site convergence, and — via the recorded
// operation history — client-visible consistency (wankeeper/consistency.h).
// One definition serves the gtest sweeps (tests/test_failures.cpp,
// tests/test_scenario.cpp), the recovery fault-injection tests
// (tests/test_recovery.cpp), and the CI seed hunter (tools/seed_hunt) so
// "seed N failed under scenario S" means the same schedule everywhere.
//
// Header-only and gtest-free on purpose: the callers assert on SweepResult
// with whatever reporting they have (EXPECT_*, exit codes, artifacts).
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "obs/ownership.h"
#include "sim/failure.h"
#include "sim/network.h"
#include "sim/scenario.h"
#include "sim/simulator.h"
#include "wankeeper/consistency.h"
#include "wankeeper/deployment.h"

namespace wankeeper::wk {

struct LoadedDeployment {
  sim::Simulator sim;
  sim::Network net;
  TokenAuditor audit;
  Deployment deploy;
  OpHistory history;
  std::vector<std::unique_ptr<zk::Client>> clients;
  std::vector<std::uint32_t> session_epoch;
  std::vector<std::uint64_t> completed;
  bool stop = false;

  // Scenario-sweep knobs (unused by the legacy crash sweep).
  sim::Scenario* scenario = nullptr;  // polled for per-site load factors
  int keys = 10;
  double read_fraction = 0.3;
  Time think_base = 20 * kMillisecond;  // per-op think time at load 1.0
  Time op_timeout = 25 * kSecond;       // watchdog: reconnect + move on

  LoadedDeployment(std::uint64_t seed, DeploymentConfig cfg,
                   sim::LatencyModel lat)
      : sim(seed), net(sim, std::move(lat)), deploy(sim, net, cfg, &audit) {}

  explicit LoadedDeployment(std::uint64_t seed, DeploymentConfig cfg = {})
      : LoadedDeployment(seed, cfg, sim::LatencyModel::paper_wan()) {}

  SiteId client_site(std::size_t i) const { return static_cast<SiteId>(i); }

  // --- legacy write-only load (the canonical crash sweep) ---
  // The op schedule (RNG draws, paths, timing) is frozen: tests and the
  // nightly hunt identify failures by seed, so "seed N" must mean the same
  // run it meant in PR 5. History recording rides along without consuming
  // randomness.
  void start_load() {
    auto setup = deploy.make_client("setup", 0, 50);
    sim.run_for(500 * kMillisecond);
    int created = 0;
    for (int k = 0; k < 10; ++k) {
      setup->create("/k" + std::to_string(k), "0", false, false,
                    [&](const zk::ClientResult&) { ++created; });
    }
    sim.run_for(5 * kSecond);

    const std::size_t n = deploy.sites();
    completed.assign(n, 0);
    session_epoch.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      clients.push_back(deploy.make_client("c" + std::to_string(i),
                                           client_site(i),
                                           1000 + static_cast<SessionId>(i)));
    }
    sim.run_for(1 * kSecond);
    for (std::size_t i = 0; i < n; ++i) issue(i);
  }

  void issue(std::size_t i) {
    if (stop) return;
    auto& rng = sim.rng();
    const std::string path = "/k" + std::to_string(rng.uniform(10));
    const std::uint64_t hid =
        history.begin(1000 + static_cast<SessionId>(i), session_epoch[i],
                      client_site(i), ClientOp::Kind::kWrite, path, sim.now());
    clients[i]->set_data(
        path, "v", -1, [this, i, hid](const zk::ClientResult& r) {
          history.finish(hid, sim.now(), r.ok(), r.stat.version);
          if (r.ok()) ++completed[i];
          if (r.rc == store::Rc::kSessionExpired) {
            // The WAN heartbeater expired us while our site was cut off;
            // do what a real client does and start a fresh session.
            ++session_epoch[i];
            clients[i]->reconnect();
          }
          issue(i);  // retry/continue regardless of rc
        });
  }

  // --- mixed read/write load for scenario sweeps ---
  // Closed loop with think time: each client alternates reads and writes
  // over the shared key space, throttled by the scenario's per-site load
  // factor (diurnal shifts). A watchdog abandons ops whose replies are
  // lost to crashes or cuts (reconnecting like a real client would); the
  // op history still captures a late-arriving true outcome, and the
  // checker treats abandoned writes as potential committers.
  void start_mixed_load() {
    auto setup = deploy.make_client("setup", 0, 50);
    sim.run_for(500 * kMillisecond);
    int created = 0;
    for (int k = 0; k < keys; ++k) {
      setup->create("/k" + std::to_string(k), "0", false, false,
                    [&](const zk::ClientResult&) { ++created; });
    }
    sim.run_for(5 * kSecond);

    const std::size_t n = deploy.sites();
    completed.assign(n, 0);
    session_epoch.assign(n, 0);
    op_gen_.assign(n, 0);
    outstanding_.assign(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      clients.push_back(deploy.make_client("c" + std::to_string(i),
                                           client_site(i),
                                           1000 + static_cast<SessionId>(i)));
    }
    sim.run_for(1 * kSecond);
    for (std::size_t i = 0; i < n; ++i) issue_mixed(i);
  }

  void issue_mixed(std::size_t i) {
    if (stop) return;
    auto& rng = sim.rng();
    const std::string path = "/k" + std::to_string(rng.uniform(
                                        static_cast<std::size_t>(keys)));
    const bool is_read = rng.chance(read_fraction);
    const std::uint64_t gen = ++op_gen_[i];
    outstanding_[i] = true;
    const std::uint64_t hid = history.begin(
        1000 + static_cast<SessionId>(i), session_epoch[i], client_site(i),
        is_read ? ClientOp::Kind::kRead : ClientOp::Kind::kWrite, path,
        sim.now());
    auto done = [this, i, gen, hid](const zk::ClientResult& r) {
      history.finish(hid, sim.now(), r.ok(), r.stat.version);
      if (op_gen_[i] != gen) return;  // watchdog moved on; outcome recorded
      outstanding_[i] = false;
      if (r.ok()) ++completed[i];
      if (r.rc == store::Rc::kSessionExpired) {
        ++session_epoch[i];
        clients[i]->reconnect();
      }
      schedule_next(i);
    };
    if (is_read) {
      clients[i]->get_data(path, false, done);
    } else {
      clients[i]->set_data(path, "v", -1, done);
    }
    sim.after(op_timeout, [this, i, gen]() {
      if (stop || op_gen_[i] != gen || !outstanding_[i]) return;
      // Reply lost (crash, cut, or a very long token wait): abandon the op,
      // re-establish the session, and continue. The history op stays open
      // unless its reply eventually arrives.
      outstanding_[i] = false;
      ++session_epoch[i];
      clients[i]->reconnect();
      schedule_next(i);
    });
  }

  void schedule_next(std::size_t i) {
    if (stop) return;
    double load = 1.0;
    if (scenario != nullptr) {
      load = std::clamp(scenario->current_load(client_site(i)), 0.05, 20.0);
    }
    const Time think =
        think_base > 0
            ? static_cast<Time>(static_cast<double>(think_base) / load)
            : 0;
    if (think <= 0) {
      issue_mixed(i);
      return;
    }
    const std::uint64_t gen = op_gen_[i];
    sim.after(think, [this, i, gen]() {
      if (op_gen_[i] == gen && !outstanding_[i]) issue_mixed(i);
    });
  }

 private:
  std::vector<std::uint64_t> op_gen_;
  std::vector<bool> outstanding_;
};

struct SweepResult {
  bool audit_clean = false;
  std::string first_violation;
  bool converged = false;
  std::uint64_t completed_total = 0;
  // Client-visible consistency over the recorded op history.
  bool consistency_clean = true;
  std::size_t consistency_violations = 0;
  std::string first_consistency_witness;
  // Post-mortem: filled when the run failed or something (a consistency
  // violation, an armed fault hook) requested a dump — the merged
  // flight-recorder stream as JSON, plus any split-brain fork evidence
  // (duplicate gseq mints, dueling hubs) distilled from it. Empty on
  // clean runs.
  std::string post_mortem_json;
  std::string fork_evidence;
  std::vector<std::string> dump_reasons;
  // Split-brain forensics, computed on EVERY run (not only dumped ones):
  // a handover that re-mints a gseq or runs two hubs concurrently must
  // fail the sweep even when the racing histories happen to agree enough
  // to slip past the client-visible consistency checker.
  std::size_t duplicate_mints = 0;
  bool dueling_hubs = false;

  bool ok() const {
    return audit_clean && converged && consistency_clean &&
           duplicate_mints == 0 && !dueling_hubs && completed_total > 100;
  }
};

inline void finish_sweep(LoadedDeployment& d, SweepResult* r) {
  r->audit_clean = d.audit.clean();
  if (!d.audit.violations().empty()) {
    r->first_violation = d.audit.violations().front();
  }
  r->converged = d.deploy.converged();
  r->completed_total = 0;
  for (const std::uint64_t c : d.completed) r->completed_total += c;
  const auto violations = ConsistencyChecker::check(d.history);
  r->consistency_clean = violations.empty();
  r->consistency_violations = violations.size();
  if (!violations.empty()) {
    r->first_consistency_witness = violations.front().format();
  }

  // Stamp the checkers' findings into the flight recorder and decide
  // whether this run deserves a post-mortem. The harness stays file-free:
  // it serializes the dump into the result and the caller (gtest, the seed
  // hunter) writes it wherever its artifacts go.
  obs::EventLog& events = d.sim.obs().events;
  for (const std::string& v : d.audit.violations()) {
    events.record(d.sim.now(), kNoSite, obs::EventKind::kViolation, "audit", v);
  }
  for (const auto& v : violations) {
    events.record(d.sim.now(), kNoSite, obs::EventKind::kViolation,
                  "consistency", v.guarantee + ": " + v.detail, v.key);
  }
  if (!r->audit_clean) events.request_dump("token audit violation");
  if (!r->consistency_clean) events.request_dump("consistency violation");
  if (!r->converged) events.request_dump("sites did not converge");
  if (r->completed_total <= 100) events.request_dump("load starved");

  // Split-brain forensics run on every sweep: exact duplicate gseqs
  // (same-slot fork, the worst case) and dueling hubs (overlapping mint
  // reigns — what asym3 produced before handover reconciliation). These
  // are first-class failures, not just post-mortem color: two racing
  // histories can agree enough to slip past the client-visible checker
  // and still prove the sequencer forked.
  const auto merged = events.merged();
  const auto forks = obs::find_duplicate_mints(merged);
  r->duplicate_mints = forks.size();
  const auto duel = obs::find_dueling_hubs(merged);
  r->dueling_hubs = duel.found;
  if (!forks.empty()) {
    r->fork_evidence = obs::format_fork_evidence(forks);
    events.request_dump("duplicate gseq mint");
  }
  if (duel.found) {
    r->fork_evidence += obs::format_hub_duel(duel);
    events.request_dump("dueling hubs");
  }

  if (events.dump_requested()) {
    r->dump_reasons = events.dump_reasons();
    r->post_mortem_json = events.to_json();
  }
}

// The canonical crash schedule for `seed`: four random single-node crashes
// (network endpoint + co-located zab peer) with 5 s restarts over ~a minute
// of cross-site write load, then a 20 s quiesce.
inline SweepResult run_crash_sweep_on(LoadedDeployment& d, std::uint64_t seed) {
  d.start_load();

  Rng schedule(seed * 97);
  const std::size_t sites = d.deploy.sites();
  for (int i = 0; i < 4; ++i) {
    const Time when = d.sim.now() + 5 * kSecond + static_cast<Time>(
                          schedule.uniform(10 * kSecond));
    const SiteId site = static_cast<SiteId>(schedule.uniform(sites));
    const std::size_t node = schedule.uniform(3);
    sim::FailureInjector inject(d.net);
    inject.crash_at(when, d.deploy.site_ensemble(site).server_id(node),
                    5 * kSecond);
    // The co-located zab peer shares the fate of its server.
    d.sim.at(when, [&d, site, node]() {
      d.deploy.site_ensemble(site).peer(node).crash();
    });
    d.sim.at(when + 5 * kSecond, [&d, site, node]() {
      d.deploy.site_ensemble(site).peer(node).restart();
    });
    d.sim.run_for(12 * kSecond);
  }
  d.stop = true;
  d.sim.run_for(20 * kSecond);  // quiesce

  SweepResult r;
  finish_sweep(d, &r);
  return r;
}

inline SweepResult run_crash_sweep(std::uint64_t seed, bool batching) {
  DeploymentConfig cfg;
  if (batching) cfg.enable_batching();
  LoadedDeployment d(seed, cfg);
  return run_crash_sweep_on(d, seed);
}

// --- scenario sweeps -------------------------------------------------------
// A scripted hostile-WAN scenario under mixed read/write load: install the
// scenario with site-leave hooks wired to whole-site crash/restart, run
// past its horizon, then quiesce long enough for rejoin resync and check
// everything the crash sweep checks plus the op-history consistency
// contract.

inline SweepResult run_scenario_sweep_on(LoadedDeployment& d,
                                         sim::Scenario& scenario) {
  d.scenario = &scenario;
  if (!d.deploy.wait_ready()) {
    SweepResult r;
    r.first_violation = "deployment never became ready";
    return r;
  }
  d.start_mixed_load();

  sim::ScenarioHooks hooks;
  hooks.site_down = [&d](SiteId s) { d.deploy.crash_site(s); };
  hooks.site_up = [&d](SiteId s) { d.deploy.restart_site(s); };
  scenario.install(d.net, hooks);

  // Run every scripted event under load, plus a tail of calm traffic.
  d.sim.run_for(scenario.horizon() + 8 * kSecond);
  d.stop = true;
  d.sim.run_for(25 * kSecond);  // quiesce: reelections, resync, fan-out drain

  SweepResult r;
  finish_sweep(d, &r);
  return r;
}

inline SweepResult run_scenario_sweep(std::uint64_t seed, bool batching,
                                      const std::string& scenario_name) {
  sim::Scenario scenario = sim::make_scenario(scenario_name);
  DeploymentConfig cfg;
  cfg.sites = scenario.sites();
  if (batching) cfg.enable_batching();
  LoadedDeployment d(seed, cfg, sim::scenario_latency(scenario));
  return run_scenario_sweep_on(d, scenario);
}

}  // namespace wankeeper::wk

#include "wankeeper/token.h"

#include <algorithm>

namespace wankeeper::wk {

// Tokens are strictly per-record (one token per znode), as in the paper:
// create/delete/setData of a node take that node's token; sequential
// siblings share their parent's bulk token because their names are drawn
// from the parent's counter (§III-B). Non-sequential creates under a
// common parent deliberately do NOT serialize on the parent: they commute
// (the parent's child set is a set union and its cversion converges via a
// max rule in DataTree), which is what keeps e.g. ledger creation local to
// each site. The known causal-mode anomaly this admits — deleting a parent
// concurrently with a remote create under it — is inherited from the
// paper's design and documented in DESIGN.md.
std::vector<TokenKey> tokens_for_op(const zk::Op& op) {
  std::vector<TokenKey> keys;
  switch (op.op) {
    case zk::OpCode::kCreate:
      if (op.sequential) {
        keys.push_back(seq_token(store::parent_path(op.path)));
      } else {
        keys.push_back(token_for_path(op.path));
      }
      break;
    case zk::OpCode::kDelete:
    case zk::OpCode::kSetData:
      keys.push_back(token_for_path(op.path));
      break;
    default:
      break;
  }
  return keys;
}

namespace {
void collect_txn_tokens(const store::Txn& txn, std::vector<TokenKey>& keys) {
  switch (txn.type) {
    case store::TxnType::kCreate:
    case store::TxnType::kDelete:
    case store::TxnType::kSetData:
      keys.push_back(token_for_path(txn.path));
      break;
    case store::TxnType::kMulti:
      for (const auto& sub : txn.ops) collect_txn_tokens(sub, keys);
      break;
    default:
      break;
  }
}
}  // namespace

std::vector<TokenKey> tokens_for_txn(const store::Txn& txn) {
  std::vector<TokenKey> keys;
  collect_txn_tokens(txn, keys);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::vector<TokenKey> tokens_for_request(const zk::ClientRequest& req) {
  std::vector<TokenKey> keys;
  if (req.op.op == zk::OpCode::kMulti) {
    for (const auto& op : req.multi_ops) {
      for (auto& k : tokens_for_op(op)) keys.push_back(std::move(k));
    }
  } else {
    keys = tokens_for_op(req.op);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

}  // namespace wankeeper::wk

#include "wankeeper/token_manager.h"

#include <algorithm>

namespace wankeeper::wk {

// ------------------------------------------------------------- SiteTokenTable

void SiteTokenTable::apply_granted(const std::vector<TokenKey>& keys) {
  for (const auto& k : keys) owned_.insert(k);
}

void SiteTokenTable::apply_returned(const std::vector<TokenKey>& keys) {
  for (const auto& k : keys) {
    owned_.erase(k);
    outgoing_.erase(k);
    pending_recalls_.erase(k);  // a stale recall is satisfied by the return
  }
}

std::vector<TokenKey> SiteTokenTable::begin_recall(const std::vector<TokenKey>& keys) {
  std::vector<TokenKey> start_now;
  for (const auto& k : keys) {
    if (outgoing_.count(k) != 0) continue;  // return already in flight
    if (owned_.count(k) != 0) {
      outgoing_.insert(k);
      start_now.push_back(k);
    } else {
      pending_recalls_.insert(k);  // grant still in flight
    }
  }
  return start_now;
}

std::vector<TokenKey> SiteTokenTable::take_pending_recalls(
    const std::vector<TokenKey>& granted) {
  std::vector<TokenKey> out;
  for (const auto& k : granted) {
    const auto it = pending_recalls_.find(k);
    if (it != pending_recalls_.end()) {
      pending_recalls_.erase(it);
      outgoing_.insert(k);
      out.push_back(k);
    }
  }
  return out;
}

bool SiteTokenTable::holds_all(const std::vector<TokenKey>& keys) const {
  return std::all_of(keys.begin(), keys.end(), [this](const TokenKey& k) {
    return owned_.count(k) != 0 && outgoing_.count(k) == 0;
  });
}

bool SiteTokenTable::owns(const TokenKey& key) const { return owned_.count(key) != 0; }

bool SiteTokenTable::outgoing(const TokenKey& key) const {
  return outgoing_.count(key) != 0;
}

std::vector<TokenKey> SiteTokenTable::owned_keys() const {
  return {owned_.begin(), owned_.end()};
}

void SiteTokenTable::clear() {
  owned_.clear();
  outgoing_.clear();
  pending_recalls_.clear();
}

// ----------------------------------------------------------- BrokerTokenTable

SiteId BrokerTokenTable::owner(const TokenKey& key) const {
  const auto it = owners_.find(key);
  return it == owners_.end() ? kNoSite : it->second;
}

void BrokerTokenTable::set_owner(const TokenKey& key, SiteId site) {
  if (site == kNoSite) {
    owners_.erase(key);
    recalling_.erase(key);
  } else {
    owners_[key] = site;
  }
}

bool BrokerTokenTable::record_access(const TokenKey& key, SiteId site,
                                     MigrationPolicy& policy) {
  auto& h = history_[key];
  if (h.last_site == site) {
    ++h.consecutive;
  } else {
    h.last_site = site;
    h.consecutive = 1;
  }
  ++h.total_accesses;
  return policy.should_migrate(key, site, h);
}

const AccessHistory* BrokerTokenTable::history(const TokenKey& key) const {
  const auto it = history_.find(key);
  return it == history_.end() ? nullptr : &it->second;
}

bool BrokerTokenTable::recall_in_progress(const TokenKey& key) const {
  return recalling_.count(key) != 0;
}

void BrokerTokenTable::mark_recalling(const TokenKey& key, bool recalling) {
  if (recalling) {
    recalling_.insert(key);
  } else {
    recalling_.erase(key);
  }
}

void BrokerTokenTable::park(PendingRemote pending) {
  parked_.push_back(std::move(pending));
}

std::vector<PendingRemote> BrokerTokenTable::unpark(const TokenKey& key) {
  std::vector<PendingRemote> ready;
  for (auto it = parked_.begin(); it != parked_.end();) {
    it->missing.erase(key);
    if (it->missing.empty()) {
      ready.push_back(std::move(*it));
      it = parked_.erase(it);
    } else {
      ++it;
    }
  }
  return ready;
}

std::vector<TokenKey> BrokerTokenTable::owned_by(SiteId site) const {
  std::vector<TokenKey> out;
  for (const auto& [key, owner] : owners_) {
    if (owner == site) out.push_back(key);
  }
  return out;
}

void BrokerTokenTable::clear() {
  owners_.clear();
  clear_volatile();
}

void BrokerTokenTable::clear_volatile() {
  history_.clear();
  recalling_.clear();
  parked_.clear();
}

}  // namespace wankeeper::wk

// Safety auditor for the token protocol. Brokers report applied write
// transactions and token movements; the auditor checks the mutual-exclusion
// invariant of §II-B — one token per record, writes only ever committed by
// its current holder — and accumulates violations for tests to assert on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace wankeeper::wk {

class TokenAuditor {
 public:
  void violation(Time now, const std::string& what);

  void count_grant() { ++grants_; }
  void count_recall() { ++recalls_; }
  void count_return() { ++returns_; }
  void count_local_commit() { ++local_commits_; }
  void count_remote_commit() { ++remote_commits_; }

  const std::vector<std::string>& violations() const { return violations_; }
  bool clean() const { return violations_.empty(); }

  std::uint64_t grants() const { return grants_; }
  std::uint64_t recalls() const { return recalls_; }
  std::uint64_t returns() const { return returns_; }
  std::uint64_t local_commits() const { return local_commits_; }
  std::uint64_t remote_commits() const { return remote_commits_; }

 private:
  std::vector<std::string> violations_;
  std::uint64_t grants_ = 0;
  std::uint64_t recalls_ = 0;
  std::uint64_t returns_ = 0;
  std::uint64_t local_commits_ = 0;
  std::uint64_t remote_commits_ = 0;
};

}  // namespace wankeeper::wk

// WAN Heartbeater (paper §III-B): maintains the global view of all
// clusters, piggybacks live client session ids so ephemerals survive
// cross-site, detects L2 failure, and drives the promotion of a new L2
// among the surviving L1 sites.
#include <algorithm>

#include "common/logging.h"
#include "wankeeper/broker.h"

namespace wankeeper::wk {

void Broker::heartbeat_tick() {
  if (is_leader()) {
    // Sessions homed at this site, reported to the rest of the WAN.
    std::vector<SessionId> live;
    for (const auto& [session, home] : session_home_) {
      if (home == site()) live.push_back(session);
    }
    for (std::size_t s = 0; s < directory_->sites(); ++s) {
      const SiteId dest = static_cast<SiteId>(s);
      if (dest == site()) continue;
      auto m = std::make_shared<WanHeartbeatMsg>();
      m->from_site = site();
      m->live_sessions = live;
      m->down_frontier = applied_down_gseq_;
      m->l2_site = l2_site_;
      m->l2_epoch = l2_epoch_;
      raw_send_to_site(dest, std::move(m));
    }
    if (!registered_ && site() != l2_site_) send_register();
    if (l2_role()) l2_reclaim_dead_site_tokens();
    consider_l2_failover();
  }
  set_timer(wan_.heartbeat_interval, [this]() { heartbeat_tick(); });
}

void Broker::handle_heartbeat(SiteId from_site, const WanHeartbeatMsg& m) {
  site_last_heard_[from_site] = now();
  wan_live_sessions_[from_site] = m.live_sessions;
  site_down_frontier_[from_site] = m.down_frontier;
  adopt_l2(m.l2_site, m.l2_epoch);
  if (from_site == l2_site_) l2_last_heard_ = now();

  if (l2_role()) {
    // Keep the piggybacked sessions alive in our expiry tracker.
    touch_sessions(m.live_sessions);
    // Frontier gap with an idle stream: the site missed fan-outs under a
    // previous leadership; re-ship from its frontier.
    if (m.down_frontier < applied_down_gseq_ && transport_.unacked(from_site) == 0) {
      l2_resync_site(from_site, m.down_frontier);
    }
  }

  auto reply = std::make_shared<WanHeartbeatReplyMsg>();
  reply->from_site = site();
  reply->up_frontier = [&] {
    const auto it = up_frontier_.find(from_site);
    return it == up_frontier_.end() ? kNoZxid : it->second;
  }();
  reply->l2_site = l2_site_;
  reply->l2_epoch = l2_epoch_;
  raw_send_to_site(from_site, std::move(reply));
}

void Broker::handle_heartbeat_reply(SiteId from_site, const WanHeartbeatReplyMsg& m) {
  site_last_heard_[from_site] = now();
  adopt_l2(m.l2_site, m.l2_epoch);
  if (from_site == l2_site_) l2_last_heard_ = now();
}

void Broker::adopt_l2(SiteId site_id, std::uint32_t epoch) {
  if (site_id == kNoSite) return;
  if (epoch < l2_epoch_ || (epoch == l2_epoch_ && site_id == l2_site_)) return;
  WK_INFO(now(), name(),
          "adopting L2 site " + std::to_string(site_id) + " (epoch " +
              std::to_string(epoch) + ")");
  l2_site_ = site_id;
  l2_epoch_ = epoch;
  gseq_counter_ = 0;
  registered_ = false;
  l2_last_heard_ = now();  // grace for the new regime
  if (is_leader() && site() != l2_site_) send_register();
}

bool Broker::site_alive(SiteId s) const {
  if (s == site()) return true;
  const auto it = site_last_heard_.find(s);
  return it != site_last_heard_.end() &&
         now() - it->second <= wan_.l2_failover_timeout;
}

void Broker::consider_l2_failover() {
  if (!wan_.enable_l2_failover || site() == l2_site_) return;
  if (now() - l2_last_heard_ <= wan_.l2_failover_timeout) return;
  // The L2 site has gone silent. Deterministic promotion: the lowest alive
  // site id takes over; everyone converges on the same choice via the
  // epoch-stamped gossip in heartbeats.
  SiteId candidate = site();
  for (std::size_t s = 0; s < directory_->sites(); ++s) {
    const SiteId sid = static_cast<SiteId>(s);
    if (sid == l2_site_) continue;
    if (site_alive(sid) && sid < candidate) candidate = sid;
  }
  if (candidate != site()) return;  // the other site will promote itself
  WK_INFO(now(), name(),
          "L2 site " + std::to_string(l2_site_) + " silent for " +
              format_time(now() - l2_last_heard_) + "; promoting self");
  l2_epoch_ += 1;
  l2_site_ = site();
  gseq_counter_ = 0;
  registered_ = true;  // an L2 does not register with itself
  l2_last_heard_ = now();
}

}  // namespace wankeeper::wk

// WAN Heartbeater (paper §III-B): maintains the global view of all
// clusters, piggybacks live client session ids so ephemerals survive
// cross-site, detects L2 failure, and drives the promotion of a new L2
// among the surviving L1 sites.
#include <algorithm>

#include "common/logging.h"
#include "wankeeper/broker.h"

namespace wankeeper::wk {

void Broker::send_heartbeats() {
  if (!is_leader()) return;
  // Sessions homed at this site, reported to the rest of the WAN.
  std::vector<SessionId> live;
  for (const auto& [session, home] : session_home_) {
    if (home == site()) live.push_back(session);
  }
  for (std::size_t s = 0; s < directory_->sites(); ++s) {
    const SiteId dest = static_cast<SiteId>(s);
    if (dest == site()) continue;
    auto m = sim::make_mutable_message<WanHeartbeatMsg>();
    m->from_site = site();
    m->from_node = id();
    m->zab_epoch = peer()->current_epoch();
    m->live_sessions = live;
    m->down_frontiers = down_frontier_vector();
    m->l2_site = l2_site_;
    m->l2_epoch = l2_epoch_;
    // Only the heartbeat headed to the hub carries a trace: that is the
    // frontier announcement that can trigger a resync, and tracing every
    // gossip leg would drown the recorder in noise.
    if (dest == l2_site_) {
      m->trace = rt().obs().tracer.begin("frontier_announce", site(), now());
      rt().obs().tracer.open(m->trace, obs::SpanKind::kWanHop, dest, name(),
                              now(),
                              "heartbeat site " + std::to_string(site()) +
                                  " -> site " + std::to_string(dest));
    }
    raw_send_to_site(dest, std::move(m));
  }
}

void Broker::heartbeat_tick() {
  if (is_leader()) {
    send_heartbeats();
    if (!registered_ && site() != l2_site_) send_register();
    if (l2_role()) l2_reclaim_dead_site_tokens();
    consider_l2_failover();
    // Time-based reconcile exits (grace, max-wait) need a clock edge even
    // when no frontier message arrives to drive the check.
    if (l2_role() && l2_reconciling_) l2_reconcile_check();
  }
  set_timer(wan_.heartbeat_interval, [this]() { heartbeat_tick(); });
}

void Broker::handle_heartbeat(SiteId from_site, const WanHeartbeatMsg& m) {
  site_last_heard_[from_site] = now();
  wan_live_sessions_[from_site] = m.live_sessions;
  const bool stagnant = [&] {
    const auto it = site_frontiers_.find(from_site);
    return it != site_frontiers_.end() && it->second == m.down_frontiers;
  }();
  site_frontiers_[from_site] = m.down_frontiers;
  adopt_l2(m.l2_site, m.l2_epoch);
  if (from_site == l2_site_) l2_last_heard_ = now();

  if (l2_role()) {
    rt().obs().tracer.close(m.trace, obs::SpanKind::kWanHop, site(), now());
    // Keep the piggybacked sessions alive in our expiry tracker.
    touch_sessions(m.live_sessions);
    if (l2_reconciling_) {
      // Freshness requires acknowledging THIS regime: a heartbeat still
      // naming the old hub (or an old epoch) proves the sender exists, not
      // that it has stopped taking the old hub's fan-outs.
      if (m.l2_site == site() && m.l2_epoch == l2_epoch_) {
        l2_note_fresh_frontier(from_site, m.down_frontiers);
      }
      rt().obs().tracer.end(m.trace, now());
      if (frontier_ahead(m.down_frontiers)) l2_send_pull(from_site);
      l2_reconcile_check();
    } else {
      // The site missed fan-outs (lost stream, shed backlog, an old-epoch
      // hole); re-ship above its contiguous frontier. Resync when the
      // stream is idle, or when the announced frontier is behind AND did
      // not move over a whole heartbeat interval: under sustained load the
      // stream is never idle (new fan-outs keep it busy and the backlog
      // cap keeps shedding), yet a frozen frontier means a hole that
      // in-flight traffic will never fill. The cooldown gives each round
      // a chance to land before the next one re-ships the same range.
      const auto sent = resync_sent_at_.find(from_site);
      const bool cooled = sent == resync_sent_at_.end() ||
                          now() - sent->second >= wan_.resync_min_interval;
      if (frontier_behind(m.down_frontiers) && cooled &&
          (transport_.unacked(from_site) == 0 || stagnant)) {
        rt().obs().events.record(
            now(), site(), obs::EventKind::kFrontier, name(),
            stagnant ? "behind and stagnant" : "behind on idle stream",
            /*key=*/"", /*a=*/static_cast<std::uint64_t>(from_site));
        l2_resync_site(from_site, m.down_frontiers, m.trace);
      } else {
        // No resync this round: the announce trace ends at the hub.
        rt().obs().tracer.end(m.trace, now());
      }
    }
  } else {
    // We are not the hub this heartbeat hoped for; close the book on it.
    rt().obs().tracer.end(m.trace, now());
  }

  auto reply = sim::make_mutable_message<WanHeartbeatReplyMsg>();
  reply->from_site = site();
  reply->from_node = id();
  reply->zab_epoch = peer()->current_epoch();
  reply->up_frontier = [&] {
    const auto it = up_frontier_.find(from_site);
    return it == up_frontier_.end() ? kNoZxid : it->second;
  }();
  reply->l2_site = l2_site_;
  reply->l2_epoch = l2_epoch_;
  raw_send_to_site(from_site, std::move(reply));
}

void Broker::handle_heartbeat_reply(SiteId from_site, const WanHeartbeatReplyMsg& m) {
  site_last_heard_[from_site] = now();
  adopt_l2(m.l2_site, m.l2_epoch);
  if (from_site == l2_site_) l2_last_heard_ = now();
}

void Broker::adopt_l2(SiteId site_id, std::uint32_t epoch) {
  if (site_id == kNoSite) return;
  if (epoch < l2_epoch_) return;
  // Equal-epoch claims tie-break to the lowest site id, so two claimants
  // that promoted under the same epoch on either side of a healed cut
  // converge on one winner instead of flapping last-writer-wins.
  if (epoch == l2_epoch_ && site_id >= l2_site_) return;
  WK_INFO(now(), name(),
          "adopting L2 site " + std::to_string(site_id) + " (epoch " +
              std::to_string(epoch) + ")");
  rt().obs().events.record(now(), site(), obs::EventKind::kL2Adopt, name(),
                            "", /*key=*/"",
                            /*a=*/static_cast<std::uint64_t>(site_id),
                            /*b=*/epoch);
  l2_site_ = site_id;
  l2_epoch_ = epoch;
  gseq_counter_ = 0;
  registered_ = false;
  l2_last_heard_ = now();  // grace for the new regime
  if (site() != l2_site_) {
    l2_abort_reconcile("superseded by site " + std::to_string(site_id) +
                       " epoch " + std::to_string(epoch));
    if (is_leader()) send_register();
  } else {
    // Gossip handed the hub role to our own site: a relayed claim came
    // back with a fresher epoch than we remembered. An L2 does not
    // register with itself, and it must catch up before it serves.
    registered_ = true;
    if (is_leader() && !applied_down_by_epoch_.empty()) {
      l2_enter_reconcile("adopted own-site hub claim");
    }
  }
}

bool Broker::site_alive(SiteId s) const {
  if (s == site()) return true;
  const auto it = site_last_heard_.find(s);
  return it != site_last_heard_.end() &&
         now() - it->second <= wan_.l2_failover_timeout;
}

void Broker::consider_l2_failover() {
  if (!wan_.enable_l2_failover || site() == l2_site_) return;
  if (now() - l2_last_heard_ <= wan_.l2_failover_timeout) return;
  // A cut-off site sees *every* site silent, not just L2. If it promoted
  // itself it would run a second hub — granting tokens and stamping gseqs
  // the real L2 still owns — so require contact with a majority of all
  // sites (self included) before claiming the role.
  std::size_t alive = 0;
  for (std::size_t s = 0; s < directory_->sites(); ++s) {
    if (site_alive(static_cast<SiteId>(s))) ++alive;
  }
  if (alive * 2 <= directory_->sites()) return;
  // The L2 site has gone silent. Deterministic promotion: the lowest alive
  // site id takes over; everyone converges on the same choice via the
  // epoch-stamped gossip in heartbeats.
  SiteId candidate = site();
  for (std::size_t s = 0; s < directory_->sites(); ++s) {
    const SiteId sid = static_cast<SiteId>(s);
    if (sid == l2_site_) continue;
    if (site_alive(sid) && sid < candidate) candidate = sid;
  }
  if (candidate != site()) return;  // the other site will promote itself
  // Claim an epoch past every regime that has *observably minted*: our own
  // applied map plus every announced frontier. Bumping only the last
  // epoch we heard re-mints gseqs when our view of the hub was stale —
  // asym3's one-way cut hid the old hub's own bump from us.
  std::uint32_t epoch = l2_epoch_;
  for (const auto& [e, f] : applied_down_by_epoch_) {
    if (f.cum != 0 || !f.sparse.empty()) epoch = std::max(epoch, e);
  }
  for (const auto& [s, frontiers] : site_frontiers_) {
    (void)s;
    for (const auto& f : frontiers) {
      if (f.counter != 0) epoch = std::max(epoch, f.epoch);
    }
  }
  epoch += 1;
  WK_INFO(now(), name(),
          "L2 site " + std::to_string(l2_site_) + " silent for " +
              format_time(now() - l2_last_heard_) + "; promoting self (epoch " +
              std::to_string(epoch) + ")");
  rt().obs().events.record(now(), site(), obs::EventKind::kHubPromote, name(),
                            "old hub site " + std::to_string(l2_site_) +
                                " silent",
                            /*key=*/"", /*a=*/epoch);
  l2_epoch_ = epoch;
  l2_site_ = site();
  gseq_counter_ = 0;
  registered_ = true;  // an L2 does not register with itself
  l2_last_heard_ = now();
  l2_enter_reconcile("self-promotion");
  send_heartbeats();  // announce the claim now, not a heartbeat later
}

}  // namespace wankeeper::wk

// Level-2 broker logic: serializing tokenless writes, observing access
// patterns, migrating and recalling tokens, stamping the global sequence,
// and fanning committed transactions out to the sites.
#include <algorithm>

#include "common/logging.h"
#include "wankeeper/broker.h"

namespace wankeeper::wk {

std::uint64_t Broker::next_gseq() {
  if (gseq_counter_ == 0) {
    // Fresh leadership: resume after the highest counter applied under the
    // *current* epoch — the contiguous prefix plus the sparse set, since a
    // counter applied above a hole is just as spent as one below it. Keyed
    // per epoch: the old global-max shortcut went blind whenever the
    // numeric max belonged to a different epoch, so a re-promoted hub that
    // had seen a higher epoch restarted its own counters at 1 and re-minted
    // slots a prior same-epoch reign had already used.
    const auto it = applied_down_by_epoch_.find(l2_epoch_);
    if (it != applied_down_by_epoch_.end()) {
      gseq_counter_ = it->second.cum;
      if (!it->second.sparse.empty()) {
        gseq_counter_ = std::max(gseq_counter_, *it->second.sparse.rbegin());
      }
    }
  }
  const std::uint64_t gseq = make_gseq(l2_epoch_, ++gseq_counter_);
  // Flight recorder: the split-brain smoking gun. If two sites ever record
  // a mint for the same numeric gseq, the post-mortem has its fork.
  rt().obs().events.record(now(), site(), obs::EventKind::kGseqMint, name(),
                            "", /*key=*/"", /*a=*/gseq, /*b=*/l2_epoch_);
  return gseq;
}

void Broker::handle_wan_forward(SiteId from_site, const WanForwardMsg& m) {
  if (!l2_role()) return;  // stale routing; the site will re-register
  if (l2_reconciling_) {
    // Serialize nothing while catching up (serving would mint); replay in
    // arrival order at finish, guarded in case we were superseded.
    const zk::ClientRequest req = m.request;
    const NodeId origin = m.origin_server;
    reconcile_deferred_.push_back([this, req, from_site, origin]() {
      if (l2_role()) l2_serve(req, from_site, origin);
    });
    return;
  }
  rt().obs().tracer.close(m.request.trace, obs::SpanKind::kWanHop, site(),
                           now());
  l2_serve(m.request, from_site, m.origin_server);
}

void Broker::handle_replicate_up(SiteId from_site, const ReplicateUpMsg& m) {
  if (!l2_role()) return;
  if (l2_reconciling_) {
    // Sequencing a replicate-up mints a gseq stub for it; defer. The
    // origin-zxid dedup fences make a duplicate replay harmless.
    const ReplicateUpMsg copy = m;
    reconcile_deferred_.push_back([this, from_site, copy]() {
      if (l2_role()) handle_replicate_up(from_site, copy);
    });
    return;
  }
  (void)from_site;
  rt().obs().tracer.close(m.envelope.trace, obs::SpanKind::kWanHop, site(),
                           now());
  const store::Txn& txn = m.envelope.txn;
  const Zxid applied = [&] {
    const auto it = up_frontier_.find(txn.origin_site);
    return it == up_frontier_.end() ? kNoZxid : it->second;
  }();
  const Zxid proposed = [&] {
    const auto it = up_proposed_.find(txn.origin_site);
    return it == up_proposed_.end() ? kNoZxid : it->second;
  }();
  if (txn.origin_zxid <= std::max(applied, proposed)) return;  // duplicate
  // Fence: a data txn the origin committed under tokens it no longer owns
  // (its lease was reclaimed while it was unreachable) must not enter the
  // global order — the records have moved on without it. The origin's own
  // replicas converge again as soon as newer global writes to those
  // records fan back to it.
  switch (txn.type) {
    case store::TxnType::kCreate:
    case store::TxnType::kDelete:
    case store::TxnType::kSetData:
    case store::TxnType::kMulti: {
      for (const auto& key : tokens_for_txn(txn)) {
        if (broker_tokens_.owner(key) != txn.origin_site) {
          ++bstats_.fenced_up;
          WK_INFO(now(), name(),
                  "fenced stale replicate-up from site " +
                      std::to_string(txn.origin_site) + " for " + key);
          up_proposed_[txn.origin_site] = txn.origin_zxid;
          return;
        }
      }
      break;
    }
    default:
      break;
  }
  up_proposed_[txn.origin_site] = txn.origin_zxid;
  l2_propose_remote(m.envelope);
}

void Broker::handle_register(SiteId from_site, const RegisterMsg& m) {
  if (!l2_role()) {
    // Stale routing: the sender will adopt the real L2 via gossip. Close
    // the announce trace so it doesn't dangle open in the recorder.
    rt().obs().tracer.end(m.trace, now());
    return;
  }
  rt().obs().tracer.close(m.trace, obs::SpanKind::kWanHop, site(), now());
  site_last_heard_[from_site] = now();
  site_frontiers_[from_site] = m.down_frontiers;

  // Reconcile token ownership the site claims but our mirror lost (possible
  // across L2 failovers): re-grant through the log so every replica agrees.
  // While reconciling, granting would mint — defer, and re-check ownership
  // at replay (the pulled history may have moved the tokens).
  std::vector<TokenKey> repair;
  for (const auto& key : m.owned_tokens) {
    if (broker_tokens_.owner(key) != from_site) repair.push_back(key);
  }
  if (!repair.empty()) {
    if (l2_reconciling_) {
      reconcile_deferred_.push_back([this, repair, from_site]() {
        if (!l2_role()) return;
        std::vector<TokenKey> still;
        for (const auto& key : repair) {
          if (broker_tokens_.owner(key) != from_site) still.push_back(key);
        }
        if (!still.empty()) l2_propose_grant(still, from_site);
      });
    } else {
      l2_propose_grant(repair, from_site);
    }
  }

  // The RegisterOk still goes out mid-reconcile: it carries our identity
  // claim (the register doubles as the site's adoption of it) and the up
  // frontier the site needs to re-ship its unacked local txns.
  auto reply = sim::make_mutable_message<RegisterOkMsg>();
  reply->from_site = site();
  reply->from_node = id();
  reply->zab_epoch = peer()->current_epoch();
  reply->up_frontier = [&] {
    const auto it = up_frontier_.find(from_site);
    return it == up_frontier_.end() ? kNoZxid : it->second;
  }();
  reply->l2_site = l2_site_;
  reply->l2_epoch = l2_epoch_;
  raw_send_to_site(from_site, std::move(reply));

  if (l2_reconciling_) {
    // Registering with us is adoption: the site has stopped following the
    // old hub. Its frontier joins the census; a pull goes out from
    // l2_reconcile_check if it is ahead of us. The finish step resyncs it,
    // so no refill is lost by skipping l2_resync_site here.
    l2_note_fresh_frontier(from_site, m.down_frontiers);
    rt().obs().tracer.end(m.trace, now());
    l2_reconcile_check();
    return;
  }
  if (frontier_ahead(m.down_frontiers)) {
    // The site applied gseqs we never did (we took over mid-history and
    // served past grace before it reported): straggler catch-up pull.
    l2_send_pull(from_site);
  }
  l2_resync_site(from_site, m.down_frontiers, m.trace);
}

void Broker::l2_propose_remote(const zk::Envelope& env) {
  zk::Envelope copy = env;
  copy.txn.zxid = kNoZxid;  // our zab assigns a fresh local zxid
  propose_envelope(std::move(copy), {});
}

void Broker::l2_serve(const zk::ClientRequest& req, SiteId from_site,
                      NodeId origin_server) {
  // Re-served after a park: close the wait span (no-op on first arrival).
  rt().obs().tracer.close(req.trace, obs::SpanKind::kTokenWait, site(), now());
  const auto keys = tokens_for_request(req);

  // Fail fast on requests that are invalid against our (causally current)
  // replica — e.g. create of an already-existing znode — *before* touching
  // token state. This keeps doomed requests (lost lock races and the like)
  // from forcing token recalls. The error can be slightly stale for
  // records whose token is away; under the causal mode that is the same
  // class of staleness as local reads, and retrying clients converge.
  {
    auto probe = prep_request(req);
    if (probe.rc != store::Rc::kOk) {
      if (from_site == site()) {
        send_request_error(origin_server, req.session, req.xid, probe.rc);
      } else {
        auto err = sim::make_mutable_message<WanRequestErrorMsg>();
        err->origin_server = origin_server;
        err->session = req.session;
        err->xid = req.xid;
        err->rc = probe.rc;
        transport_.send(from_site, std::move(err));
      }
      return;
    }
  }

  // Any token currently away (or leaving) blocks serialization here.
  std::set<TokenKey> missing;
  for (const auto& key : keys) {
    if (broker_tokens_.owner(key) != kNoSite || l2_pending_grants_.count(key) != 0) {
      missing.insert(key);
    }
  }

  if (!missing.empty()) {
    ++bstats_.parked;
    rt().obs().metrics.counter("broker.parked", site()).inc();
    rt().obs().tracer.open(req.trace, obs::SpanKind::kTokenWait, site(),
                            name(), now(),
                            "waiting for " + std::to_string(missing.size()) +
                                " token(s)");
    PendingRemote pending;
    pending.from_site = from_site;
    pending.origin_server = origin_server;
    pending.request = req;
    pending.missing = missing;
    // Piggyback: one recall message per owner site, not per key.
    std::map<SiteId, std::vector<TokenKey>> recalls;
    for (const auto& key : missing) {
      const SiteId owner = broker_tokens_.owner(key);
      if (owner != kNoSite && !broker_tokens_.recall_in_progress(key)) {
        recalls[owner].push_back(key);
      }
      // pending grants: the recall fires when the grant marker applies
    }
    broker_tokens_.park(std::move(pending));
    for (auto& [owner, owner_keys] : recalls) l2_send_recall(owner_keys, owner);
    return;
  }

  // Tokens are home: serialize here. Record the access pattern and let the
  // policy decide whether they should migrate to the requesting site.
  std::vector<TokenKey> grant_keys;
  if (policy_ == nullptr) policy_ = make_policy(wan_.policy);
  for (const auto& key : keys) {
    const bool migrate = broker_tokens_.record_access(key, from_site, *policy_);
    if (migrate && from_site != site()) grant_keys.push_back(key);
  }

  auto prep = prep_request(req);
  if (prep.rc != store::Rc::kOk) {
    if (from_site == site()) {
      send_request_error(origin_server, req.session, req.xid, prep.rc);
    } else {
      auto err = sim::make_mutable_message<WanRequestErrorMsg>();
      err->origin_server = origin_server;
      err->session = req.session;
      err->xid = req.xid;
      err->rc = prep.rc;
      transport_.send(from_site, std::move(err));
    }
    return;
  }
  ++bstats_.l2_served;
  rt().obs().metrics.counter("broker.l2_served", site()).inc();
  zk::Envelope env;
  env.session = req.session;
  env.xid = req.xid;
  env.trace = req.trace;
  env.txn = std::move(prep.txn);
  env.txn.origin_site = from_site;  // requester; decorate_txn stamps gseq
  propose_envelope(std::move(env), std::move(prep.overlay));

  if (!grant_keys.empty()) l2_propose_grant(grant_keys, from_site);
}

void Broker::l2_propose_grant(const std::vector<TokenKey>& keys, SiteId grantee) {
  ++bstats_.grants;
  WK_DEBUG(now(), name(),
           "granting " + std::to_string(keys.size()) + " token(s) to site " +
               std::to_string(grantee));
  for (const auto& key : keys) l2_pending_grants_.insert(key);
  zk::Envelope env;
  env.txn.type = store::TxnType::kTokenGranted;
  env.txn.paths = keys;
  env.txn.origin_site = grantee;
  propose_envelope(std::move(env), {});
  // Recovery fault point: a grant is proposed but its marker not yet
  // committed — crash here models the hub dying with a grant in flight
  // during a leader change.
  rt().faults().fire("wk.grant_proposed", name());
}

void Broker::l2_send_recall(const std::vector<TokenKey>& keys, SiteId owner) {
  if (keys.empty()) return;
  bstats_.recalls += keys.size();
  for (const auto& key : keys) {
    if (auditor_ != nullptr) auditor_->count_recall();
    rt().obs().metrics.counter("token.recalls", site()).inc();
    recall_sent_.try_emplace(key, now());
    broker_tokens_.mark_recalling(key, true);
    rt().obs().events.record(now(), site(), obs::EventKind::kTokenRecall,
                              name(), "", key,
                              /*a=*/static_cast<std::uint64_t>(owner));
  }
  auto m = sim::make_mutable_message<TokenRecallMsg>();
  m->keys = keys;
  transport_.send(owner, std::move(m));
}

void Broker::l2_serve_unparked(std::vector<PendingRemote> ready) {
  for (auto& p : ready) {
    l2_serve(p.request, p.from_site, p.origin_server);
  }
}

// One fan-out leg. A replicated-up txn already lives at its origin site in
// full, but the origin still has to learn the *gseq* the hub stamped on it —
// otherwise its per-epoch applied frontier keeps a permanent hole there and
// every later resync decision is poisoned. So instead of skipping the origin
// we ship a stub: gseq kept, payload stripped to a noop, client routing
// cleared. The stub applies through the origin's zab like any fan-out, which
// is exactly what makes its frontier a pure function of applied txns.
void Broker::l2_send_down(SiteId dest, const zk::Envelope& env, bool resync,
                          obs::TraceId resync_trace) {
  auto m = sim::make_mutable_message<ReplicateDownMsg>();
  m->envelope = env;
  // The message's epoch names the *sending regime*, not the txn's mint
  // epoch (which rides in its gseq): a current hub re-shipping an older
  // epoch's txn must pass the receiver's stale-regime fence — stamping the
  // mint epoch got exactly those resyncs dropped as if from a deposed hub.
  m->l2_epoch = l2_epoch_;
  m->resync = resync;
  m->resync_trace = resync_trace;
  if (env.txn.origin_zxid != kNoZxid && dest == env.txn.origin_site) {
    store::Txn stub;
    stub.type = store::TxnType::kNoop;
    stub.gseq = env.txn.gseq;
    stub.origin_site = env.txn.origin_site;
    // Keeping origin_zxid lets the origin later re-join this gseq with its
    // own gseq-0 log entry if it ever becomes the hub (see l2_resync_site).
    stub.origin_zxid = env.txn.origin_zxid;
    m->envelope.txn = std::move(stub);
    m->envelope.session = kNoSession;
    m->envelope.xid = 0;
    m->envelope.trace = obs::kNoTrace;
  }
  transport_.send(dest, std::move(m));
}

void Broker::l2_fan_out(const zk::Envelope& env) {
  const store::Txn& txn = env.txn;
  for (std::size_t s = 0; s < directory_->sites(); ++s) {
    const SiteId dest = static_cast<SiteId>(s);
    if (dest == site()) continue;
    // Shed load for unreachable sites: an unbounded backlog would take
    // minutes to drain after a long partition, whereas the frontier-based
    // resync replays the gap from the log in one burst on reconnect.
    if (transport_.unacked(dest) > wan_.max_site_backlog) {
      ++bstats_.fanout_skipped;
      continue;
    }
    // Trace only the hop back to the request's origin site (where the
    // client is waiting); the other fan-out legs are not on its path.
    if (dest == txn.origin_site && txn.origin_zxid == kNoZxid) {
      rt().obs().tracer.open(env.trace, obs::SpanKind::kWanHop, dest, name(),
                              now(),
                              "site " + std::to_string(site()) + " -> site " +
                                  std::to_string(dest) + " (down)");
    }
    l2_send_down(dest, env, /*resync=*/false, obs::kNoTrace);
  }
}

// The committed-log walk shared by the hub->site refill (l2_resync_site)
// and the site->new-hub pull (handle_resync_pull). Everything globally
// sequenced above `have` — the destination's contiguous counter per epoch —
// is handed to `ship` in log (== gseq) order. Per-gseq dedup at the receiver
// makes over-shipping (of sparse counters held above a hole) harmless.
//
// Local-origin commits pass through our log with gseq 0; the gseq the hub
// stamped on them came back only as a noop stub (keyed by our zxid). The
// walk tracks the gseq-0 entries so a stub further down the log is expanded
// back into the full transaction when the destination is missing it.
std::uint64_t Broker::ship_missing_gseqs(
    const std::vector<GseqFrontier>& have,
    const std::function<void(zk::Envelope&&)>& ship) {
  std::map<std::uint32_t, std::uint64_t> covered;  // epoch -> contiguous ctr
  for (const auto& f : have) covered[f.epoch] = f.counter;
  const auto& log = peer()->log();
  std::map<Zxid, std::size_t> own_origin;  // our zxid -> log index
  std::uint64_t shipped = 0;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto& entry = log.at(i);
    if (entry.zxid > peer()->last_delivered()) break;
    zk::Envelope env = zk::Envelope::decode(entry.payload);
    if (env.txn.gseq == 0) {
      if (env.txn.origin_site == site() &&
          env.txn.type != store::TxnType::kNoop &&
          env.txn.type != store::TxnType::kError) {
        own_origin[entry.zxid] = i;
      }
      continue;
    }
    if (env.txn.type == store::TxnType::kNoop) {
      // A stub from a regime in which we were an L1 origin: expand it from
      // our own log entry so the destination gets the real payload.
      const auto oi = env.txn.origin_site == site()
                          ? own_origin.find(env.txn.origin_zxid)
                          : own_origin.end();
      if (oi == own_origin.end()) continue;
      const std::uint64_t g = env.txn.gseq;
      env = zk::Envelope::decode(log.at(oi->second).payload);
      env.txn.gseq = g;
      env.txn.origin_zxid = log.at(oi->second).zxid;
      env.session = kNoSession;
      env.xid = 0;
      env.trace = obs::kNoTrace;
    }
    if (env.txn.type == store::TxnType::kError) continue;
    const auto it = covered.find(gseq_epoch(env.txn.gseq));
    if (it != covered.end() && gseq_counter(env.txn.gseq) <= it->second) {
      continue;
    }
    env.txn.zxid = entry.zxid;
    ship(std::move(env));
    ++shipped;
  }
  return shipped;
}

void Broker::l2_resync_site(SiteId dest, const std::vector<GseqFrontier>& frontiers,
                            obs::TraceId announce) {
  // Re-ship committed L2-sequenced txns the site is missing (frames lost to
  // leadership changes on either end, or shed fan-outs). The site announces
  // its contiguously-applied counter per L2 epoch; anything above that is
  // re-shipped. Because the hub's committed gseqs are contiguous from 1
  // within each epoch, this closes every hole in one round.
  obs::TraceId trace = obs::kNoTrace;
  const std::uint64_t shipped =
      ship_missing_gseqs(frontiers, [&](zk::Envelope&& env) {
        if (trace == obs::kNoTrace) {
          // One trace per resync round: a span per shipped txn would drown
          // the recorder; the round-level span still shows ship -> first
          // apply. When the frontiers arrived with their own trace (a
          // register or heartbeat announce), the resync continues it — the
          // post-mortem then reads announce -> ship -> apply.
          trace = announce != obs::kNoTrace
                      ? announce
                      : rt().obs().tracer.begin("resync", site(), now());
          rt().obs().tracer.open(trace, obs::SpanKind::kWanHop, dest, name(),
                                  now(),
                                  "resync site " + std::to_string(site()) +
                                      " -> site " + std::to_string(dest));
        }
        l2_send_down(dest, env, /*resync=*/true, trace);
      });
  if (shipped > 0) {
    resync_sent_at_[dest] = now();
    rt().obs().metrics.counter("resync.rounds", site()).inc();
    rt().obs().metrics.counter("resync.txns_shipped", site()).inc(shipped);
    WK_INFO(now(), name(),
            "resynced site " + std::to_string(dest) + " with " +
                std::to_string(shipped) + " txn(s)");
    rt().obs().events.record(now(), site(), obs::EventKind::kResync, name(),
                              "", /*key=*/"", /*a=*/shipped,
                              /*b=*/static_cast<std::uint64_t>(dest));
    // Recovery fault point: the resync burst is on the wire but nothing is
    // confirmed applied — crash here models the hub dying right after a
    // resync request was served.
    rt().faults().fire("wk.resync_sent", name());
  } else if (announce != obs::kNoTrace) {
    // Frontiers were already covered — the announce trace ends here rather
    // than dangling open in the recorder.
    rt().obs().tracer.end(announce, now());
  }
}

void Broker::l2_reclaim_dead_site_tokens() {
  // Reclaiming proposes marker txns (which would mint mid-catch-up), and a
  // "dead" verdict over a liveness map assembled seconds ago is exactly the
  // stale judgment a reconciling hub must not act on.
  if (l2_reconciling_) return;
  for (const auto& [s, heard] : site_last_heard_) {
    if (s == site()) continue;
    if (now() - heard <= wan_.token_lease) continue;
    const auto keys = broker_tokens_.owned_by(s);
    if (keys.empty()) continue;
    ++bstats_.lease_reclaims;
    WK_INFO(now(), name(),
            "lease expired: reclaiming " + std::to_string(keys.size()) +
                " token(s) from dead site " + std::to_string(s));
    for (const auto& key : keys) {
      rt().obs().events.record(now(), site(), obs::EventKind::kTokenReclaim,
                                name(), "lease expired", key,
                                /*a=*/static_cast<std::uint64_t>(s));
    }
    zk::Envelope env;
    env.txn.type = store::TxnType::kTokenReturned;
    env.txn.paths = keys;
    env.txn.origin_site = s;  // reclaimed on the silent owner's behalf
    propose_envelope(std::move(env), {});
  }
}

// ------------------------------------------------ hub handover catch-up
//
// A hub assuming service with evidence of prior WAN sequencing enters
// RECONCILING (DESIGN.md §5d): it collects applied down-frontiers from the
// sites as they acknowledge the new regime, pulls every transaction they
// applied that it did not (ResyncPullMsg / ResyncChunkMsg — the inverse of
// l2_resync_site), and only once its replica covers what a majority has
// applied does it start serving — with next_gseq() resuming after the
// highest applied counter instead of restarting at 1. Client work arriving
// meanwhile is deferred and replayed at finish. This closes the asym3
// split-brain: without it, a site that self-promoted behind a one-way cut
// re-minted gseqs the old hub had already fanned out.

void Broker::l2_enter_reconcile(const std::string& why) {
  if (l2_reconciling_ || !l2_role()) return;
  l2_reconciling_ = true;
  reconcile_started_ = now();
  reconcile_frontiers_.clear();
  reconcile_pull_sent_.clear();
  reconcile_epoch_was_fresh_ = applied_down_by_epoch_.count(l2_epoch_) == 0;
  ++bstats_.reconciles;
  rt().obs().metrics.counter("reconcile.entered", site()).inc();
  WK_INFO(now(), name(),
          "RECONCILING (epoch " + std::to_string(l2_epoch_) + "): " + why);
  rt().obs().events.record(now(), site(), obs::EventKind::kHubReconcile,
                            name(), "begin: " + why, /*key=*/"",
                            /*a=*/l2_epoch_);
  l2_reconcile_check();
}

void Broker::l2_abort_reconcile(const std::string& why) {
  if (!l2_reconciling_) return;
  l2_reconciling_ = false;
  rt().obs().metrics.counter("reconcile.aborted", site()).inc();
  WK_INFO(now(), name(), "reconcile aborted: " + why);
  rt().obs().events.record(now(), site(), obs::EventKind::kHubReconcile,
                            name(), "abort: " + why, /*key=*/"",
                            /*a=*/l2_epoch_);
  reconcile_frontiers_.clear();
  reconcile_pull_sent_.clear();
  // Replay even on abort: each closure re-checks the role it needs, so
  // local writes re-route to whoever superseded us and hub-only work
  // drops out harmlessly.
  auto deferred = std::move(reconcile_deferred_);
  reconcile_deferred_.clear();
  for (auto& fn : deferred) fn();
}

void Broker::l2_finish_reconcile(const std::string& how) {
  l2_reconciling_ = false;
  rt().obs().metrics.counter("reconcile.completed", site()).inc();
  rt().obs().metrics.histogram("reconcile.duration_us", site())
      .record(now() - reconcile_started_);
  WK_INFO(now(), name(),
          "reconciled (epoch " + std::to_string(l2_epoch_) + ", " + how +
              "); serving");
  rt().obs().events.record(now(), site(), obs::EventKind::kHubReconcile,
                            name(), "done: " + how, /*key=*/"",
                            /*a=*/l2_epoch_,
                            /*b=*/static_cast<std::uint64_t>(now() -
                                                             reconcile_started_));
  // Fan-out was gated during catch-up, so the txns we pulled never left
  // this site: resync every known site up to our (now-covering) replica
  // before replaying the deferred writes — the replay mints fresh gseqs
  // that fan out normally on top. A resync fires the wk.resync_sent fault
  // point, whose observer may crash this broker synchronously — on_crash()
  // clears site_frontiers_, so walk a snapshot and stop if the role dies.
  std::vector<std::pair<SiteId, std::vector<GseqFrontier>>> resync_plan;
  for (const auto& [s, frontiers] : site_frontiers_) {
    if (s == site()) continue;
    resync_plan.emplace_back(s, frontiers);
  }
  for (const auto& [s, frontiers] : resync_plan) {
    if (!l2_role()) return;  // crashed/deposed mid-walk; state already reset
    l2_resync_site(s, frontiers);
  }
  reconcile_frontiers_.clear();
  reconcile_pull_sent_.clear();
  auto deferred = std::move(reconcile_deferred_);
  reconcile_deferred_.clear();
  for (auto& fn : deferred) fn();
}

void Broker::l2_note_fresh_frontier(SiteId from_site,
                                    const std::vector<GseqFrontier>& frontiers) {
  if (!l2_reconciling_ || from_site == site()) return;
  reconcile_frontiers_[from_site] = frontiers;
}

void Broker::l2_reconcile_check() {
  if (!l2_reconciling_ || !l2_role()) return;

  // Stale-view promotion guard: if any announced frontier names an epoch at
  // or above the one we claimed — and our own replica had nothing for the
  // claimed epoch when we entered — another regime minted under it; re-bump
  // past everything observed so our mints can never collide with theirs.
  std::uint32_t max_minted = 0;
  for (const auto& [s, frontiers] : site_frontiers_) {
    for (const auto& f : frontiers) {
      if (f.counter != 0) max_minted = std::max(max_minted, f.epoch);
    }
  }
  for (const auto& [epoch, f] : applied_down_by_epoch_) {
    if (f.cum != 0 || !f.sparse.empty()) max_minted = std::max(max_minted, epoch);
  }
  if (max_minted > l2_epoch_ ||
      (max_minted == l2_epoch_ && reconcile_epoch_was_fresh_)) {
    const std::uint32_t bumped = max_minted + 1;
    WK_INFO(now(), name(),
            "reconcile: epoch " + std::to_string(l2_epoch_) +
                " already minted elsewhere; re-bumping to " +
                std::to_string(bumped));
    rt().obs().events.record(now(), site(), obs::EventKind::kHubPromote,
                              name(), "re-bump during reconcile", /*key=*/"",
                              /*a=*/bumped);
    l2_epoch_ = bumped;
    gseq_counter_ = 0;
    reconcile_epoch_was_fresh_ = true;
    send_heartbeats();  // gossip the corrected claim immediately
  }

  // Freshness census: sites that have spoken to us *under this regime* —
  // a register, a heartbeat naming us, or a completed pull. An old hub
  // that is still minting fails that test even though it heartbeats.
  const std::size_t sites = directory_->sites();
  std::size_t fresh = 1;  // self
  for (const auto& [s, frontiers] : reconcile_frontiers_) {
    (void)frontiers;
    if (s != site()) ++fresh;
  }
  const bool majority = fresh * 2 > sites;
  const bool all_fresh = fresh >= sites;

  // Coverage: our contiguous applied frontier must reach every currently
  // alive fresh reporter's announced frontier. A dead reporter cannot
  // answer pulls; its data is either with the living or gone (the CP
  // trade the failover already made).
  bool covered = true;
  for (const auto& [s, frontiers] : reconcile_frontiers_) {
    if (!site_alive(s)) continue;
    if (frontier_ahead(frontiers)) covered = false;
  }

  const Time elapsed = now() - reconcile_started_;
  if (majority && covered &&
      (all_fresh || elapsed >= wan_.reconcile_grace)) {
    l2_finish_reconcile(all_fresh ? "all sites reported" : "majority + grace");
    return;
  }
  if (majority && elapsed >= wan_.reconcile_max_wait) {
    // Pathological stall (an ahead site flapping in and out of liveness):
    // serve rather than wedge forever. Logged loudly — the post-mortem
    // will show exactly what was left uncovered.
    rt().obs().events.record(now(), site(), obs::EventKind::kHubReconcile,
                              name(), "timeout: serving uncovered", /*key=*/"",
                              /*a=*/l2_epoch_);
    l2_finish_reconcile("timeout");
    return;
  }

  // Not done: chase whoever is ahead of us. Fresh or not — a pull carries
  // our identity claim as gossip, so it also converts a still-deluded old
  // hub into a responder. A pull fires the wk.reconcile_pull fault point,
  // whose observer may crash this broker synchronously — on_crash() clears
  // both frontier maps, so collect the targets first, then send.
  std::vector<SiteId> chase;
  for (const auto& [s, frontiers] : site_frontiers_) {
    if (s == site() || !frontier_ahead(frontiers)) continue;
    chase.push_back(s);
  }
  for (const auto& [s, frontiers] : reconcile_frontiers_) {
    if (frontier_ahead(frontiers)) chase.push_back(s);
  }
  for (const SiteId s : chase) {
    if (!l2_role()) return;  // crashed/deposed mid-walk; nothing left to pull
    l2_send_pull(s);
  }
}

void Broker::l2_send_pull(SiteId dest) {
  if (dest == site() || !l2_role()) return;
  const auto it = reconcile_pull_sent_.find(dest);
  if (it != reconcile_pull_sent_.end() &&
      now() - it->second < wan_.reconcile_pull_interval) {
    return;
  }
  reconcile_pull_sent_[dest] = now();
  ++bstats_.reconcile_pulls;
  rt().obs().metrics.counter("reconcile.pulls_sent", site()).inc();
  auto m = sim::make_mutable_message<ResyncPullMsg>();
  m->from_site = site();
  m->l2_epoch = l2_epoch_;
  m->have = down_frontier_vector();
  m->trace = rt().obs().tracer.begin("reconcile_pull", site(), now());
  rt().obs().tracer.open(m->trace, obs::SpanKind::kWanHop, dest, name(), now(),
                          "pull site " + std::to_string(site()) +
                              " <- site " + std::to_string(dest));
  rt().obs().events.record(now(), site(), obs::EventKind::kResync, name(),
                            "pull request", /*key=*/"", /*a=*/0,
                            /*b=*/static_cast<std::uint64_t>(dest));
  transport_.send(dest, std::move(m));
  // Recovery fault point: the new hub is mid-catch-up with a pull on the
  // wire — crash here models the reconciling hub dying before it served.
  rt().faults().fire("wk.reconcile_pull", name());
}

void Broker::handle_resync_pull(SiteId /*from_site*/, const ResyncPullMsg& m) {
  // The pull is gossip: the sender claims to be the hub at m.l2_epoch.
  // A responder still following the old regime adopts the claim first
  // (lowest-site tie-breaks apply), so answering implies acknowledging.
  adopt_l2(m.from_site, m.l2_epoch);
  rt().obs().tracer.close(m.trace, obs::SpanKind::kWanHop, site(), now());
  if (m.from_site != l2_site_ || m.l2_epoch != l2_epoch_) {
    // A superseded claimant: answer nothing; it will hear the real hub's
    // gossip and stand down on its own.
    rt().obs().tracer.end(m.trace, now());
    return;
  }
  auto chunk = sim::make_mutable_message<ResyncChunkMsg>();
  chunk->from_site = site();
  const std::uint64_t shipped =
      ship_missing_gseqs(m.have, [&](zk::Envelope&& env) {
        chunk->envelopes.push_back(std::move(env));
        if (chunk->envelopes.size() >= wan_.resync_chunk_max) {
          transport_.send(m.from_site, std::move(chunk));
          chunk = sim::make_mutable_message<ResyncChunkMsg>();
          chunk->from_site = site();
        }
      });
  // The final (possibly empty) chunk carries our frontiers: the hub marks
  // us reconciled off it even when we had nothing it was missing.
  chunk->done = true;
  chunk->frontiers = down_frontier_vector();
  chunk->trace = m.trace;
  rt().obs().tracer.open(m.trace, obs::SpanKind::kWanHop, m.from_site, name(),
                          now(),
                          "chunks site " + std::to_string(site()) +
                              " -> site " + std::to_string(m.from_site));
  transport_.send(m.from_site, std::move(chunk));
  if (shipped > 0) {
    rt().obs().metrics.counter("reconcile.pulls_served", site()).inc();
    rt().obs().metrics.counter("reconcile.pull_txns", site()).inc(shipped);
    WK_INFO(now(), name(),
            "answered reconcile pull from site " +
                std::to_string(m.from_site) + " with " +
                std::to_string(shipped) + " txn(s)");
    rt().obs().events.record(now(), site(), obs::EventKind::kResync, name(),
                              "pull answered", /*key=*/"", /*a=*/shipped,
                              /*b=*/static_cast<std::uint64_t>(m.from_site));
  }
}

void Broker::handle_resync_chunk(SiteId from_site, const ResyncChunkMsg& m) {
  if (site() != l2_site_ || !is_leader()) return;  // superseded; moot
  std::uint64_t adopted = 0;
  for (const zk::Envelope& env : m.envelopes) {
    const std::uint64_t g = env.txn.gseq;
    if (g == 0 || gseq_applied(g) || down_proposed_.count(g) != 0) continue;
    down_proposed_.insert(g);
    ++bstats_.pulled_txns;
    ++adopted;
    zk::Envelope copy = env;
    copy.txn.zxid = kNoZxid;  // our zab assigns a fresh local zxid
    // gseq != 0, so decorate_txn leaves the stamp alone; session/xid ride
    // along so an origin client still waiting gets its reply on apply.
    propose_envelope(std::move(copy), {});
  }
  if (adopted > 0) {
    rt().obs().metrics.counter("reconcile.pull_applied", site()).inc(adopted);
  }
  if (m.done) {
    rt().obs().tracer.close(m.trace, obs::SpanKind::kWanHop, site(), now());
    rt().obs().tracer.end(m.trace, now());
    site_last_heard_[from_site] = now();
    site_frontiers_[from_site] = m.frontiers;
    // Answering the pull implies the responder adopted our regime.
    l2_note_fresh_frontier(from_site, m.frontiers);
    l2_reconcile_check();
  }
  // Recovery fault point: pulled txns proposed but not yet applied — crash
  // here models the reconciling hub dying mid-catch-up.
  if (adopted > 0) rt().faults().fire("wk.reconcile_apply", name());
}

}  // namespace wankeeper::wk

// Level-2 broker logic: serializing tokenless writes, observing access
// patterns, migrating and recalling tokens, stamping the global sequence,
// and fanning committed transactions out to the sites.
#include <algorithm>

#include "common/logging.h"
#include "wankeeper/broker.h"

namespace wankeeper::wk {

std::uint64_t Broker::next_gseq() {
  if (gseq_counter_ == 0 && gseq_epoch(applied_down_gseq_) == l2_epoch_) {
    // Fresh leadership in the same L2 epoch: resume after the applied max.
    gseq_counter_ = gseq_counter(applied_down_gseq_);
  }
  const std::uint64_t gseq = make_gseq(l2_epoch_, ++gseq_counter_);
  // Flight recorder: the split-brain smoking gun. If two sites ever record
  // a mint for the same numeric gseq, the post-mortem has its fork.
  sim().obs().events.record(now(), site(), obs::EventKind::kGseqMint, name(),
                            "", /*key=*/"", /*a=*/gseq, /*b=*/l2_epoch_);
  return gseq;
}

void Broker::handle_wan_forward(SiteId from_site, const WanForwardMsg& m) {
  if (!l2_role()) return;  // stale routing; the site will re-register
  sim().obs().tracer.close(m.request.trace, obs::SpanKind::kWanHop, site(),
                           now());
  l2_serve(m.request, from_site, m.origin_server);
}

void Broker::handle_replicate_up(SiteId from_site, const ReplicateUpMsg& m) {
  if (!l2_role()) return;
  (void)from_site;
  sim().obs().tracer.close(m.envelope.trace, obs::SpanKind::kWanHop, site(),
                           now());
  const store::Txn& txn = m.envelope.txn;
  const Zxid applied = [&] {
    const auto it = up_frontier_.find(txn.origin_site);
    return it == up_frontier_.end() ? kNoZxid : it->second;
  }();
  const Zxid proposed = [&] {
    const auto it = up_proposed_.find(txn.origin_site);
    return it == up_proposed_.end() ? kNoZxid : it->second;
  }();
  if (txn.origin_zxid <= std::max(applied, proposed)) return;  // duplicate
  // Fence: a data txn the origin committed under tokens it no longer owns
  // (its lease was reclaimed while it was unreachable) must not enter the
  // global order — the records have moved on without it. The origin's own
  // replicas converge again as soon as newer global writes to those
  // records fan back to it.
  switch (txn.type) {
    case store::TxnType::kCreate:
    case store::TxnType::kDelete:
    case store::TxnType::kSetData:
    case store::TxnType::kMulti: {
      for (const auto& key : tokens_for_txn(txn)) {
        if (broker_tokens_.owner(key) != txn.origin_site) {
          ++bstats_.fenced_up;
          WK_INFO(now(), name(),
                  "fenced stale replicate-up from site " +
                      std::to_string(txn.origin_site) + " for " + key);
          up_proposed_[txn.origin_site] = txn.origin_zxid;
          return;
        }
      }
      break;
    }
    default:
      break;
  }
  up_proposed_[txn.origin_site] = txn.origin_zxid;
  l2_propose_remote(m.envelope);
}

void Broker::handle_register(SiteId from_site, const RegisterMsg& m) {
  if (!l2_role()) {
    // Stale routing: the sender will adopt the real L2 via gossip. Close
    // the announce trace so it doesn't dangle open in the recorder.
    sim().obs().tracer.end(m.trace, now());
    return;
  }
  sim().obs().tracer.close(m.trace, obs::SpanKind::kWanHop, site(), now());
  site_last_heard_[from_site] = now();
  site_frontiers_[from_site] = m.down_frontiers;

  // Reconcile token ownership the site claims but our mirror lost (possible
  // across L2 failovers): re-grant through the log so every replica agrees.
  std::vector<TokenKey> repair;
  for (const auto& key : m.owned_tokens) {
    if (broker_tokens_.owner(key) != from_site) repair.push_back(key);
  }
  if (!repair.empty()) l2_propose_grant(repair, from_site);

  auto reply = std::make_shared<RegisterOkMsg>();
  reply->from_site = site();
  reply->from_node = id();
  reply->zab_epoch = peer()->current_epoch();
  reply->up_frontier = [&] {
    const auto it = up_frontier_.find(from_site);
    return it == up_frontier_.end() ? kNoZxid : it->second;
  }();
  reply->l2_site = l2_site_;
  reply->l2_epoch = l2_epoch_;
  raw_send_to_site(from_site, std::move(reply));

  l2_resync_site(from_site, m.down_frontiers, m.trace);
}

void Broker::l2_propose_remote(const zk::Envelope& env) {
  zk::Envelope copy = env;
  copy.txn.zxid = kNoZxid;  // our zab assigns a fresh local zxid
  propose_envelope(std::move(copy), {});
}

void Broker::l2_serve(const zk::ClientRequest& req, SiteId from_site,
                      NodeId origin_server) {
  // Re-served after a park: close the wait span (no-op on first arrival).
  sim().obs().tracer.close(req.trace, obs::SpanKind::kTokenWait, site(), now());
  const auto keys = tokens_for_request(req);

  // Fail fast on requests that are invalid against our (causally current)
  // replica — e.g. create of an already-existing znode — *before* touching
  // token state. This keeps doomed requests (lost lock races and the like)
  // from forcing token recalls. The error can be slightly stale for
  // records whose token is away; under the causal mode that is the same
  // class of staleness as local reads, and retrying clients converge.
  {
    auto probe = prep_request(req);
    if (probe.rc != store::Rc::kOk) {
      if (from_site == site()) {
        send_request_error(origin_server, req.session, req.xid, probe.rc);
      } else {
        auto err = std::make_shared<WanRequestErrorMsg>();
        err->origin_server = origin_server;
        err->session = req.session;
        err->xid = req.xid;
        err->rc = probe.rc;
        transport_.send(from_site, std::move(err));
      }
      return;
    }
  }

  // Any token currently away (or leaving) blocks serialization here.
  std::set<TokenKey> missing;
  for (const auto& key : keys) {
    if (broker_tokens_.owner(key) != kNoSite || l2_pending_grants_.count(key) != 0) {
      missing.insert(key);
    }
  }

  if (!missing.empty()) {
    ++bstats_.parked;
    sim().obs().metrics.counter("broker.parked", site()).inc();
    sim().obs().tracer.open(req.trace, obs::SpanKind::kTokenWait, site(),
                            name(), now(),
                            "waiting for " + std::to_string(missing.size()) +
                                " token(s)");
    PendingRemote pending;
    pending.from_site = from_site;
    pending.origin_server = origin_server;
    pending.request = req;
    pending.missing = missing;
    // Piggyback: one recall message per owner site, not per key.
    std::map<SiteId, std::vector<TokenKey>> recalls;
    for (const auto& key : missing) {
      const SiteId owner = broker_tokens_.owner(key);
      if (owner != kNoSite && !broker_tokens_.recall_in_progress(key)) {
        recalls[owner].push_back(key);
      }
      // pending grants: the recall fires when the grant marker applies
    }
    broker_tokens_.park(std::move(pending));
    for (auto& [owner, owner_keys] : recalls) l2_send_recall(owner_keys, owner);
    return;
  }

  // Tokens are home: serialize here. Record the access pattern and let the
  // policy decide whether they should migrate to the requesting site.
  std::vector<TokenKey> grant_keys;
  if (policy_ == nullptr) policy_ = make_policy(wan_.policy);
  for (const auto& key : keys) {
    const bool migrate = broker_tokens_.record_access(key, from_site, *policy_);
    if (migrate && from_site != site()) grant_keys.push_back(key);
  }

  auto prep = prep_request(req);
  if (prep.rc != store::Rc::kOk) {
    if (from_site == site()) {
      send_request_error(origin_server, req.session, req.xid, prep.rc);
    } else {
      auto err = std::make_shared<WanRequestErrorMsg>();
      err->origin_server = origin_server;
      err->session = req.session;
      err->xid = req.xid;
      err->rc = prep.rc;
      transport_.send(from_site, std::move(err));
    }
    return;
  }
  ++bstats_.l2_served;
  sim().obs().metrics.counter("broker.l2_served", site()).inc();
  zk::Envelope env;
  env.session = req.session;
  env.xid = req.xid;
  env.trace = req.trace;
  env.txn = std::move(prep.txn);
  env.txn.origin_site = from_site;  // requester; decorate_txn stamps gseq
  propose_envelope(std::move(env), std::move(prep.overlay));

  if (!grant_keys.empty()) l2_propose_grant(grant_keys, from_site);
}

void Broker::l2_propose_grant(const std::vector<TokenKey>& keys, SiteId grantee) {
  ++bstats_.grants;
  WK_DEBUG(now(), name(),
           "granting " + std::to_string(keys.size()) + " token(s) to site " +
               std::to_string(grantee));
  for (const auto& key : keys) l2_pending_grants_.insert(key);
  zk::Envelope env;
  env.txn.type = store::TxnType::kTokenGranted;
  env.txn.paths = keys;
  env.txn.origin_site = grantee;
  propose_envelope(std::move(env), {});
  // Recovery fault point: a grant is proposed but its marker not yet
  // committed — crash here models the hub dying with a grant in flight
  // during a leader change.
  sim().faults().fire("wk.grant_proposed", name());
}

void Broker::l2_send_recall(const std::vector<TokenKey>& keys, SiteId owner) {
  if (keys.empty()) return;
  bstats_.recalls += keys.size();
  for (const auto& key : keys) {
    if (auditor_ != nullptr) auditor_->count_recall();
    sim().obs().metrics.counter("token.recalls", site()).inc();
    recall_sent_.try_emplace(key, now());
    broker_tokens_.mark_recalling(key, true);
    sim().obs().events.record(now(), site(), obs::EventKind::kTokenRecall,
                              name(), "", key,
                              /*a=*/static_cast<std::uint64_t>(owner));
  }
  auto m = std::make_shared<TokenRecallMsg>();
  m->keys = keys;
  transport_.send(owner, std::move(m));
}

void Broker::l2_serve_unparked(std::vector<PendingRemote> ready) {
  for (auto& p : ready) {
    l2_serve(p.request, p.from_site, p.origin_server);
  }
}

// One fan-out leg. A replicated-up txn already lives at its origin site in
// full, but the origin still has to learn the *gseq* the hub stamped on it —
// otherwise its per-epoch applied frontier keeps a permanent hole there and
// every later resync decision is poisoned. So instead of skipping the origin
// we ship a stub: gseq kept, payload stripped to a noop, client routing
// cleared. The stub applies through the origin's zab like any fan-out, which
// is exactly what makes its frontier a pure function of applied txns.
void Broker::l2_send_down(SiteId dest, const zk::Envelope& env, bool resync,
                          obs::TraceId resync_trace) {
  auto m = std::make_shared<ReplicateDownMsg>();
  m->envelope = env;
  m->l2_epoch = gseq_epoch(env.txn.gseq);
  m->resync = resync;
  m->resync_trace = resync_trace;
  if (env.txn.origin_zxid != kNoZxid && dest == env.txn.origin_site) {
    store::Txn stub;
    stub.type = store::TxnType::kNoop;
    stub.gseq = env.txn.gseq;
    stub.origin_site = env.txn.origin_site;
    // Keeping origin_zxid lets the origin later re-join this gseq with its
    // own gseq-0 log entry if it ever becomes the hub (see l2_resync_site).
    stub.origin_zxid = env.txn.origin_zxid;
    m->envelope.txn = std::move(stub);
    m->envelope.session = kNoSession;
    m->envelope.xid = 0;
    m->envelope.trace = obs::kNoTrace;
  }
  transport_.send(dest, std::move(m));
}

void Broker::l2_fan_out(const zk::Envelope& env) {
  const store::Txn& txn = env.txn;
  for (std::size_t s = 0; s < directory_->sites(); ++s) {
    const SiteId dest = static_cast<SiteId>(s);
    if (dest == site()) continue;
    // Shed load for unreachable sites: an unbounded backlog would take
    // minutes to drain after a long partition, whereas the frontier-based
    // resync replays the gap from the log in one burst on reconnect.
    if (transport_.unacked(dest) > wan_.max_site_backlog) {
      ++bstats_.fanout_skipped;
      continue;
    }
    // Trace only the hop back to the request's origin site (where the
    // client is waiting); the other fan-out legs are not on its path.
    if (dest == txn.origin_site && txn.origin_zxid == kNoZxid) {
      sim().obs().tracer.open(env.trace, obs::SpanKind::kWanHop, dest, name(),
                              now(),
                              "site " + std::to_string(site()) + " -> site " +
                                  std::to_string(dest) + " (down)");
    }
    l2_send_down(dest, env, /*resync=*/false, obs::kNoTrace);
  }
}

void Broker::l2_resync_site(SiteId dest, const std::vector<GseqFrontier>& frontiers,
                            obs::TraceId announce) {
  // Re-ship committed L2-sequenced txns the site is missing (frames lost to
  // leadership changes on either end, or shed fan-outs). The site announces
  // its contiguously-applied counter per L2 epoch; anything above that is
  // re-shipped — per-gseq dedup at the receiver makes over-shipping (of the
  // sparse counters it does hold above a hole) harmless. Because the hub's
  // committed gseqs are contiguous from 1 within each epoch, this closes
  // every hole in one round. Log order == gseq order.
  std::map<std::uint32_t, std::uint64_t> have;  // epoch -> contiguous counter
  for (const auto& f : frontiers) have[f.epoch] = f.counter;
  const auto& log = peer()->log();
  // Local-origin commits pass through our log with gseq 0; the gseq the old
  // hub stamped on them came back only as a noop stub (keyed by our zxid).
  // Track the gseq-0 entries so a stub further down the log can be expanded
  // back into the full transaction when the destination is missing it.
  std::map<Zxid, std::size_t> own_origin;  // our zxid -> log index
  std::uint64_t shipped = 0;
  obs::TraceId trace = obs::kNoTrace;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto& entry = log.at(i);
    if (entry.zxid > peer()->last_delivered()) break;
    zk::Envelope env = zk::Envelope::decode(entry.payload);
    if (env.txn.gseq == 0) {
      if (env.txn.origin_site == site() &&
          env.txn.type != store::TxnType::kNoop &&
          env.txn.type != store::TxnType::kError) {
        own_origin[entry.zxid] = i;
      }
      continue;
    }
    if (env.txn.type == store::TxnType::kNoop) {
      // A stub from a past regime in which we were an L1 origin: expand it
      // from our own log entry so the destination gets the real payload.
      const auto oi = env.txn.origin_site == site()
                          ? own_origin.find(env.txn.origin_zxid)
                          : own_origin.end();
      if (oi == own_origin.end()) continue;
      const std::uint64_t g = env.txn.gseq;
      env = zk::Envelope::decode(log.at(oi->second).payload);
      env.txn.gseq = g;
      env.txn.origin_zxid = log.at(oi->second).zxid;
      env.session = kNoSession;
      env.xid = 0;
      env.trace = obs::kNoTrace;
    }
    if (env.txn.type == store::TxnType::kError) continue;
    const auto it = have.find(gseq_epoch(env.txn.gseq));
    if (it != have.end() && gseq_counter(env.txn.gseq) <= it->second) continue;
    if (trace == obs::kNoTrace) {
      // One trace per resync round: a span per shipped txn would drown the
      // recorder; the round-level span still shows ship -> first apply.
      // When the frontiers arrived with their own trace (a register or a
      // heartbeat announce), the resync continues it instead of starting a
      // fresh one — the post-mortem then reads announce -> ship -> apply.
      trace = announce != obs::kNoTrace
                  ? announce
                  : sim().obs().tracer.begin("resync", site(), now());
      sim().obs().tracer.open(trace, obs::SpanKind::kWanHop, dest, name(),
                              now(),
                              "resync site " + std::to_string(site()) +
                                  " -> site " + std::to_string(dest));
    }
    env.txn.zxid = entry.zxid;
    l2_send_down(dest, env, /*resync=*/true, trace);
    ++shipped;
  }
  if (shipped > 0) {
    resync_sent_at_[dest] = now();
    sim().obs().metrics.counter("resync.rounds", site()).inc();
    sim().obs().metrics.counter("resync.txns_shipped", site()).inc(shipped);
    WK_INFO(now(), name(),
            "resynced site " + std::to_string(dest) + " with " +
                std::to_string(shipped) + " txn(s)");
    sim().obs().events.record(now(), site(), obs::EventKind::kResync, name(),
                              "", /*key=*/"", /*a=*/shipped,
                              /*b=*/static_cast<std::uint64_t>(dest));
    // Recovery fault point: the resync burst is on the wire but nothing is
    // confirmed applied — crash here models the hub dying right after a
    // resync request was served.
    sim().faults().fire("wk.resync_sent", name());
  } else if (announce != obs::kNoTrace) {
    // Frontiers were already covered — the announce trace ends here rather
    // than dangling open in the recorder.
    sim().obs().tracer.end(announce, now());
  }
}

void Broker::l2_reclaim_dead_site_tokens() {
  for (const auto& [s, heard] : site_last_heard_) {
    if (s == site()) continue;
    if (now() - heard <= wan_.token_lease) continue;
    const auto keys = broker_tokens_.owned_by(s);
    if (keys.empty()) continue;
    ++bstats_.lease_reclaims;
    WK_INFO(now(), name(),
            "lease expired: reclaiming " + std::to_string(keys.size()) +
                " token(s) from dead site " + std::to_string(s));
    for (const auto& key : keys) {
      sim().obs().events.record(now(), site(), obs::EventKind::kTokenReclaim,
                                name(), "lease expired", key,
                                /*a=*/static_cast<std::uint64_t>(s));
    }
    zk::Envelope env;
    env.txn.type = store::TxnType::kTokenReturned;
    env.txn.paths = keys;
    env.txn.origin_site = s;  // reclaimed on the silent owner's behalf
    propose_envelope(std::move(env), {});
  }
}

}  // namespace wankeeper::wk

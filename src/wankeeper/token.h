// Tokens: the unit of write-ownership WanKeeper migrates between the L2
// broker and L1 sites. One token exists per *record*; holding it grants the
// exclusive right to commit writes to that record locally (paper §II-B).
//
// Record granularity: a plain znode is its own record. Sequential znodes
// under one parent form a single *bulk* record keyed by the parent (paper
// §III-B: sequence numbers come from the parent's counter, so siblings
// cannot be owned by different sites). Structural edits (create/delete)
// also take the parent's token, so cross-site namespace changes under one
// parent are serialized.
#pragma once

#include <string>
#include <vector>

#include "store/paths.h"
#include "store/txn.h"
#include "zk/messages.h"

namespace wankeeper::wk {

// A token key is a string with a kind prefix:
//   "node:<path>"  — the token for one znode record
//   "seq:<parent>" — the bulk token covering all sequential children of
//                    <parent> (and the parent's child counter)
using TokenKey = std::string;

inline TokenKey node_token(const std::string& path) { return "node:" + path; }
inline TokenKey seq_token(const std::string& parent) { return "seq:" + parent; }

// True when `name` carries the 10-digit suffix stamped on sequential nodes.
inline bool looks_sequential(const std::string& path) {
  return store::sequence_of(store::basename(path)) >= 0;
}

// The token a single data operation on `path` needs.
inline TokenKey token_for_path(const std::string& path) {
  if (looks_sequential(path)) return seq_token(store::parent_path(path));
  return node_token(path);
}

// All tokens a write request needs before it may commit locally.
// Reads never need tokens (write-token-only mode == causal consistency).
std::vector<TokenKey> tokens_for_op(const zk::Op& op);
std::vector<TokenKey> tokens_for_request(const zk::ClientRequest& req);

// Tokens an already-prepared transaction required (the audit-side mirror of
// tokens_for_request; sequential-ness is recovered from the stamped name).
std::vector<TokenKey> tokens_for_txn(const store::Txn& txn);

}  // namespace wankeeper::wk

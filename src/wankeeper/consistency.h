// Client-visible consistency checking. The sweep harness records every
// completed client operation — who (session + site), what (key, read or
// write), when (virtual start/end), and which version it produced or
// observed — and the checker verifies after the run that the history obeys
// WanKeeper's client contract (paper §II-D):
//
//   per-key write linearizability — committed writes to one record form a
//     single total order (the version chain) consistent with real time: a
//     write that finished before another started must carry the smaller
//     version, and no version is produced twice;
//   read-your-writes — a read that starts after the same session's write
//     completed observes that write's version or newer;
//   monotonic reads — a session's successive reads of a key never observe
//     an older version than an earlier read did;
//   monotonic writes (session FIFO) — a session's own committed writes to a
//     key carry strictly increasing versions;
//   no reads from the future — an observed version is bounded by the write
//     attempts that had actually started by the time the read returned.
//
// Reads are deliberately NOT checked for linearizability: WanKeeper serves
// reads locally and the paper's §II-D example licenses bounded staleness
// (tested separately in tests/test_consistency.cpp). Under crash schedules
// a timed-out write may still commit, so the write chain is allowed gaps —
// only duplicates and real-time inversions are violations.
//
// Each violation carries a witness: the minimal operation subsequence that
// exhibits it, formatted for failure artifacts (tools/seed_hunt).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace wankeeper::wk {

struct ClientOp {
  enum class Kind { kWrite, kRead };

  std::uint64_t id = 0;  // history-assigned, by begin() order
  SessionId session = kNoSession;
  // Reconnect epoch: a session that expired and reconnected is a *new*
  // session for guarantee purposes (ZooKeeper semantics) — the harness
  // bumps this on every reconnect and the checker scopes session
  // guarantees to (session, session_epoch).
  std::uint32_t session_epoch = 0;
  SiteId site = kNoSite;
  Kind kind = Kind::kWrite;
  std::string key;
  Time start = 0;
  Time end = 0;
  bool ok = false;           // completed with Rc::kOk
  std::int32_t version = -1; // produced (write) / observed (read); -1 unknown

  std::string describe() const;
};

// Append-only operation log. begin() at issue time, finish() from the
// completion callback; ops whose finish never arrives (client crashed or
// the run stopped) stay open and are ignored by the checker except as
// potential writers in the future-read bound.
class OpHistory {
 public:
  std::uint64_t begin(SessionId session, std::uint32_t session_epoch,
                      SiteId site, ClientOp::Kind kind, const std::string& key,
                      Time start);
  void finish(std::uint64_t id, Time end, bool ok, std::int32_t version);

  const std::vector<ClientOp>& ops() const { return ops_; }
  std::size_t completed_ok() const { return completed_ok_; }

 private:
  std::vector<ClientOp> ops_;
  std::vector<bool> open_;
  std::size_t completed_ok_ = 0;
};

struct ConsistencyViolation {
  std::string guarantee;  // e.g. "read-your-writes"
  std::string key;
  std::string detail;
  std::vector<ClientOp> witness;  // minimal op subsequence

  std::string format() const;
};

class ConsistencyChecker {
 public:
  // Verify the whole history; returns every violation found (empty = clean).
  static std::vector<ConsistencyViolation> check(const OpHistory& history);
};

}  // namespace wankeeper::wk

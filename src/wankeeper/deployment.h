// Multi-site WanKeeper deployment: one Zab-replicated broker cluster per
// site (the L1s), one site designated L2, all sharing the simulated WAN.
// Mirrors the paper's setup of "a ZooKeeper cluster at each AWS region,
// one of them serving as the level-2 broker".
#pragma once

#include <memory>
#include <vector>

#include "wankeeper/audit.h"
#include "wankeeper/broker.h"
#include "zk/ensemble.h"

namespace wankeeper::wk {

// Canonical batching-on knobs, shared by tests and benches so "batching on"
// means the same configuration everywhere. Zab max_delay stays well under
// the intra-site round trip's usefulness as a backstop; WAN max_delay is
// ~1% of the shortest one-way WAN latency, so coalescing never shows up in
// client-visible percentiles.
inline zab::PeerOptions batched_peer_options(zab::PeerOptions base = {}) {
  base.max_batch = 16;
  base.max_delay = 2 * kMillisecond;
  return base;
}

inline WanBatchOptions batched_wan_options() {
  WanBatchOptions b;
  b.max_msgs = 16;
  b.max_bytes = 16 * 1024;
  // Collection window for partial frames: generous next to 60-160 ms WAN
  // RTTs (adds <2% to a cross-site hop) but wide enough to bunch messages
  // produced a few hundred microseconds apart under load.
  b.max_delay = 2 * kMillisecond;
  return b;
}

struct DeploymentConfig {
  std::size_t sites = 3;
  std::size_t nodes_per_site = 3;
  zk::ServerOptions server;   // server.head_overhead models WK marshalling
  WanOptions wan;             // wan.l2_site picks the level-2 site
  zab::PeerOptions peer;

  DeploymentConfig() {
    // The paper measures WanKeeper's extra head-processor marshalling as
    // ~0.1 ms on reads; charge it on every client-facing request.
    server.service_time = 150 * kMicrosecond;
    server.head_overhead = 100 * kMicrosecond;
  }

  // Turn on Zab group commit + WAN frame coalescing (both default off).
  DeploymentConfig& enable_batching() {
    peer = batched_peer_options(peer);
    wan.batch = batched_wan_options();
    return *this;
  }
};

class Deployment {
 public:
  Deployment(sim::Simulator& sim, sim::Network& net, DeploymentConfig config,
             TokenAuditor* auditor = nullptr);

  std::size_t sites() const { return ensembles_.size(); }
  zk::Ensemble& site_ensemble(SiteId s) { return *ensembles_[static_cast<std::size_t>(s)]; }
  Broker& broker(SiteId s, std::size_t node);
  // The current leader broker of a site, or nullptr mid-election.
  Broker* site_leader(SiteId s);
  // The broker currently acting as L2, or nullptr.
  Broker* l2_broker();

  // Runs the simulation until every site has a leader and every L1 leader
  // has registered with L2.
  bool wait_ready(Time max_wait = 15 * kSecond);

  // All replicas at all sites converged to the same tree. Only meaningful
  // after quiescence (no in-flight client ops or fan-outs).
  bool converged() const;

  std::unique_ptr<zk::Client> make_client(const std::string& name, SiteId s,
                                          SessionId session,
                                          std::size_t node = 0);

  void crash_site_leader(SiteId s);
  void crash_site(SiteId s);
  void restart_site(SiteId s);

  const SiteDirectory& directory() const { return *directory_; }
  DeploymentConfig& config() { return config_; }
  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return net_; }

 private:
  sim::Simulator& sim_;
  sim::Network& net_;
  DeploymentConfig config_;
  std::shared_ptr<SiteDirectory> directory_;
  std::vector<std::unique_ptr<zk::Ensemble>> ensembles_;
};

}  // namespace wankeeper::wk

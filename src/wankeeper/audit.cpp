#include "wankeeper/audit.h"

#include "common/logging.h"

namespace wankeeper::wk {

void TokenAuditor::violation(Time now, const std::string& what) {
  violations_.push_back(format_time(now) + ": " + what);
  WK_WARN(now, "audit", what);
}

}  // namespace wankeeper::wk

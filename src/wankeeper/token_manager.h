// Token bookkeeping on both sides of the hierarchy.
//
// SiteTokenTable (L1): the set of tokens this site owns, the outgoing set
// (recalled, return in flight — paper Fig 3's "moves the token from owner
// set to out-going set"), and recalls that arrived before their grant.
// State changes are driven by *applied* kTokenGranted/kTokenReturned txns,
// so a recovering L1 leader reconstructs it from its log (paper §II-D).
//
// BrokerTokenTable (L2): where every migrated token lives, per-token access
// history for the migration policy, recall-in-progress flags, and the queue
// of remote requests waiting for tokens to come home. Also rebuilt from
// applied marker txns.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "wankeeper/policy.h"
#include "wankeeper/token.h"
#include "zk/messages.h"

namespace wankeeper::wk {

class SiteTokenTable {
 public:
  // Applied grant/return markers.
  void apply_granted(const std::vector<TokenKey>& keys);
  void apply_returned(const std::vector<TokenKey>& keys);

  // A recall arrived: moves owned keys to outgoing. Returns the keys that
  // can start the return flow now; keys we don't own yet (grant in flight)
  // are remembered and surfaced by take_pending_recalls() when the grant
  // applies.
  std::vector<TokenKey> begin_recall(const std::vector<TokenKey>& keys);
  // Pending recalls among `granted` (consumed).
  std::vector<TokenKey> take_pending_recalls(const std::vector<TokenKey>& granted);

  // A write may commit locally iff every key is owned and none is outgoing.
  bool holds_all(const std::vector<TokenKey>& keys) const;
  bool owns(const TokenKey& key) const;
  bool outgoing(const TokenKey& key) const;

  std::size_t owned_count() const { return owned_.size(); }
  std::vector<TokenKey> owned_keys() const;
  void clear();

 private:
  std::set<TokenKey> owned_;
  std::set<TokenKey> outgoing_;
  std::set<TokenKey> pending_recalls_;
};

// A remote request parked at L2 until its tokens come home.
struct PendingRemote {
  SiteId from_site = kNoSite;
  NodeId origin_server = kNoNode;  // routes prep errors back
  zk::ClientRequest request;
  std::set<TokenKey> missing;
};

class BrokerTokenTable {
 public:
  // kNoSite means "token at the L2 broker" (the default for every record).
  SiteId owner(const TokenKey& key) const;
  void set_owner(const TokenKey& key, SiteId site);

  // Record an access from `site` and consult the policy. Returns true when
  // the token should migrate to `site`.
  bool record_access(const TokenKey& key, SiteId site, MigrationPolicy& policy);

  const AccessHistory* history(const TokenKey& key) const;

  // --- recall orchestration ---
  bool recall_in_progress(const TokenKey& key) const;
  void mark_recalling(const TokenKey& key, bool recalling);

  // --- pending remote requests ---
  void park(PendingRemote pending);
  // Token `key` is home again: strike it from waiters; requests with no
  // remaining missing tokens are returned ready to serve.
  std::vector<PendingRemote> unpark(const TokenKey& key);
  std::size_t parked_count() const { return parked_.size(); }
  const std::deque<PendingRemote>& parked() const { return parked_; }

  // Tokens currently owned by `site` (for lease reclaim on site death).
  std::vector<TokenKey> owned_by(SiteId site) const;

  std::size_t migrated_count() const { return owners_.size(); }
  void clear();
  // Crash semantics: ownership is snapshot-like (rebuilt from applied
  // markers) but histories, recall flags, and parked requests are not.
  void clear_volatile();

 private:
  std::map<TokenKey, SiteId> owners_;  // only migrated tokens; rest at L2
  std::map<TokenKey, AccessHistory> history_;
  std::set<TokenKey> recalling_;
  std::deque<PendingRemote> parked_;
};

}  // namespace wankeeper::wk

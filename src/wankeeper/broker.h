// The WanKeeper broker: a zk::Server extended with the paper's token
// machinery. Every replica in every site runs Broker code; the WAN roles
// activate on the site leader:
//
//   L1 broker  (site leader)            — token-check head processor: writes
//     whose tokens are all local commit in the site's own Zab; the rest are
//     forwarded to L2. Commits replicate up; tokens recalled by L2 are
//     returned after in-flight local txns drain.
//   L2 broker  (leader of the designated L2 site) — serializes tokenless
//     writes, observes access patterns, migrates tokens per policy, recalls
//     them on conflict, stamps every transaction with a global sequence and
//     fans it out, hub-style, to all other sites (which preserves causal
//     order across the WAN).
//
// All durable protocol state (token ownership, session homes, replication
// frontiers, the L2 sequence counter) is derived purely from *applied*
// transactions — grant/return movements are logged as marker txns — so any
// newly elected leader, L1 or L2, reconstructs it from its replica state
// exactly as §II-D prescribes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "wankeeper/audit.h"
#include "wankeeper/messages.h"
#include "wankeeper/policy.h"
#include "wankeeper/token.h"
#include "wankeeper/token_manager.h"
#include "wankeeper/wan_transport.h"
#include "zk/server.h"

namespace wankeeper::wk {

// Static deployment directory: which server NodeIds live at which site.
// Shared by all brokers; contents fixed after construction.
struct SiteDirectory {
  std::vector<std::vector<NodeId>> servers_by_site;

  std::size_t sites() const { return servers_by_site.size(); }
};

struct WanOptions {
  SiteId l2_site = 0;
  std::string policy = "consecutive:2";  // see make_policy()
  Time heartbeat_interval = 1 * kSecond;
  Time retransmit_interval = 300 * kMillisecond;
  Time l2_failover_timeout = 5 * kSecond;   // silence before promoting a new L2
  // Lease discipline (paper §II-B): a site stops using its tokens when it
  // has not heard from L2 for lease_valid; L2 reclaims a silent site's
  // tokens after token_lease >> lease_valid. The long default makes
  // reclaim a dead-site remedy, not a partition remedy: during transient
  // partitions the held records simply stay unavailable elsewhere (CP).
  // Writes a site committed inside its lease window but could not
  // replicate before a reclaim are *fenced* at L2 (see handle_replicate_up)
  // so they can never fork the global order.
  Time lease_valid = 8 * kSecond;
  Time token_lease = 60 * kSecond;
  bool enable_l2_failover = true;
  // Per-site fan-out backlog cap: beyond this many unacked messages the L2
  // stops queueing fan-outs for the site (it is unreachable) and relies on
  // the gseq-frontier resync when it reconnects.
  std::size_t max_site_backlog = 512;
  // Minimum spacing between resync rounds to one site. A round ships
  // everything above the site's contiguous frontier, and the refill needs a
  // WAN round trip plus apply time to move that frontier; re-shipping every
  // heartbeat until then would only manufacture dedup-dropped duplicates.
  Time resync_min_interval = 2 * kSecond;
  // Hub handover catch-up (RECONCILING; DESIGN.md §5d). A hub assuming
  // service with evidence of prior WAN sequencing must not mint until its
  // replica covers what the other sites have applied. It waits for every
  // site to check in under the new regime up to reconcile_grace, then
  // serves on majority coverage; reconcile_max_wait force-completes a
  // pathologically stalled catch-up (an ahead site flapping forever) so
  // the hub cannot wedge — but never before a majority has reported.
  Time reconcile_grace = 5 * kSecond;
  Time reconcile_max_wait = 15 * kSecond;
  // Per-site spacing between reconcile pull retries. The pull itself rides
  // the reliable transport; retries only chase frontier movement.
  Time reconcile_pull_interval = 1 * kSecond;
  // Envelopes per ResyncChunkMsg when answering a pull.
  std::size_t resync_chunk_max = 32;
  // WAN frame coalescing (default off: one message per frame). With
  // batch.max_msgs > 1, grants/recalls, replicate-downs, and forwards
  // headed to the same site share frames.
  WanBatchOptions batch;
};

struct BrokerStats {
  std::uint64_t local_token_commits = 0;   // writes committed under site tokens
  std::uint64_t wan_forwards = 0;          // writes sent to L2
  std::uint64_t l2_served = 0;             // writes serialized at L2
  std::uint64_t grants = 0;
  std::uint64_t recalls = 0;
  std::uint64_t returns = 0;
  std::uint64_t replicate_up = 0;
  std::uint64_t replicate_down = 0;
  std::uint64_t parked = 0;
  std::uint64_t lease_reclaims = 0;
  std::uint64_t fenced_up = 0;      // stale replicate-ups dropped after reclaim
  std::uint64_t fanout_skipped = 0; // fan-outs shed to an unreachable site
  std::uint64_t reconciles = 0;     // RECONCILING entries on this broker
  std::uint64_t reconcile_pulls = 0;  // pull rounds sent while catching up
  std::uint64_t pulled_txns = 0;      // txns adopted from ResyncChunk replies
};

class Broker : public zk::Server {
 public:
  Broker(rt::Runtime& rt, std::string name, zk::ServerOptions server_opts,
         WanOptions wan_opts, std::shared_ptr<const SiteDirectory> directory,
         TokenAuditor* auditor = nullptr);

  // --- introspection ---
  bool l2_role() const { return site() == l2_site_ && is_leader(); }
  // True while a freshly promoted hub is still catching up (RECONCILING):
  // collecting frontiers, pulling missing txns, deferring client work.
  bool l2_reconciling() const { return l2_reconciling_; }
  // An L1 leader has completed hub discovery (Fig 2 registration); an L2
  // does not register with itself, so this is true for a hub leader too.
  bool registered_with_hub() const { return registered_; }
  SiteId l2_site() const { return l2_site_; }
  std::uint32_t l2_epoch() const { return l2_epoch_; }
  const SiteTokenTable& site_tokens() const { return site_tokens_; }
  const BrokerTokenTable& token_table() const { return broker_tokens_; }
  const BrokerStats& broker_stats() const { return bstats_; }
  const WanTransport& transport() const { return transport_; }
  std::uint64_t applied_down_gseq() const { return applied_down_gseq_; }
  std::vector<GseqFrontier> applied_down_frontiers() const {
    return down_frontier_vector();
  }

  // Bench/test hook: pre-place tokens at a site (the paper's "WK Hot"
  // configuration in Fig 6). Only effective on the acting L2 broker.
  void bench_grant_tokens(const std::vector<TokenKey>& keys, SiteId grantee) {
    if (l2_role() && !keys.empty()) l2_propose_grant(keys, grantee);
  }

  void start() override;
  void on_message(NodeId from, const sim::MessagePtr& msg) override;

 protected:
  void on_crash() override;
  void on_restart() override;

  // zk::Server extension points
  void route_write(const zk::ClientRequest& req, NodeId origin_server) override;
  void post_apply(const zk::Envelope& env, store::Rc rc) override;
  std::vector<SessionId> pinned_sessions() const override;
  void became_leader() override;
  void lost_leadership() override;
  void decorate_txn(store::Txn& txn) override;

 private:
  friend class Deployment;

  // ---- WAN plumbing ----
  WanTransport make_transport(SiteId site_id);
  void raw_send_to_site(SiteId dest, sim::MessagePtr frame);
  void wan_deliver(SiteId from_site, const sim::MessagePtr& inner);
  void wan_tick();
  // Every WAN message carries the sender's leader identity and zab epoch
  // in-band (the network-level sender may be a bouncing follower). A zab
  // epoch bump means the peer site's old leadership — and both directions
  // of its WAN streams — are dead: reset our outgoing stream and, if the
  // peer is the L2 site, re-register to re-announce our frontier.
  void observe_peer(SiteId s, NodeId leader_node, std::uint32_t zab_epoch);
  void learn_leader_hint(SiteId s, NodeId node);

  // ---- gseq frontier accounting (broker.cpp) ----
  // Derived purely from applied txns, like the other durable mirrors:
  // per L2 epoch, the contiguously applied counter prefix plus the sparse
  // set applied above a hole (holes come from fan-out shedding and lost
  // streams; resync fills them from the contiguous frontier).
  void note_gseq_applied(std::uint64_t gseq);
  bool gseq_applied(std::uint64_t gseq) const;
  std::vector<GseqFrontier> down_frontier_vector() const;
  // True when our applied frontier exceeds `theirs` in any epoch (the L2
  // uses this to decide a site needs a resync).
  bool frontier_behind(const std::vector<GseqFrontier>& theirs) const;
  // The inverse: `theirs` exceeds our applied frontier in any epoch (a hub
  // uses this to decide it must pull from the announcing site).
  bool frontier_ahead(const std::vector<GseqFrontier>& theirs) const;

  // ---- L1 side (broker.cpp) ----
  bool tokens_held_locally(const std::vector<TokenKey>& keys) const;
  bool leases_valid() const;
  void forward_to_l2(const zk::ClientRequest& req, NodeId origin_server);
  void handle_token_recall(const TokenRecallMsg& m);
  void propose_token_return(const std::vector<TokenKey>& keys);
  void handle_replicate_down(SiteId from_site, const ReplicateDownMsg& m);
  void handle_register_ok(const RegisterOkMsg& m);
  void handle_wan_request_error(const WanRequestErrorMsg& m);
  void send_register();
  void resend_local_origin_after(Zxid up_frontier);

  // ---- L2 side (level2.cpp) ----
  void handle_wan_forward(SiteId from_site, const WanForwardMsg& m);
  void handle_replicate_up(SiteId from_site, const ReplicateUpMsg& m);
  void handle_register(SiteId from_site, const RegisterMsg& m);
  void l2_serve(const zk::ClientRequest& req, SiteId from_site,
                NodeId origin_server);
  void l2_propose_remote(const zk::Envelope& env);
  void l2_propose_grant(const std::vector<TokenKey>& keys, SiteId grantee);
  void l2_send_recall(const std::vector<TokenKey>& keys, SiteId owner);
  void l2_serve_unparked(std::vector<PendingRemote> ready);
  void l2_fan_out(const zk::Envelope& env);
  void l2_send_down(SiteId dest, const zk::Envelope& env, bool resync,
                    obs::TraceId resync_trace);
  // `announce` is the trace riding on the register/heartbeat that carried
  // the frontiers. Passing it transfers ownership: a triggered resync
  // continues it (ship -> first apply), a no-op round ends it. A caller
  // that decides not to resync at all must end the trace itself.
  void l2_resync_site(SiteId site, const std::vector<GseqFrontier>& frontiers,
                      obs::TraceId announce = obs::kNoTrace);
  void l2_reclaim_dead_site_tokens();
  std::uint64_t next_gseq();

  // ---- hub handover catch-up (level2.cpp) ----
  // A hub entering service with evidence of prior WAN sequencing goes
  // through RECONCILING before minting; see the functions' definitions and
  // DESIGN.md §5d for the state machine.
  void l2_enter_reconcile(const std::string& why);
  void l2_abort_reconcile(const std::string& why);
  void l2_reconcile_check();
  void l2_finish_reconcile(const std::string& how);
  void l2_send_pull(SiteId dest);
  void l2_note_fresh_frontier(SiteId from_site,
                              const std::vector<GseqFrontier>& frontiers);
  void handle_resync_pull(SiteId from_site, const ResyncPullMsg& m);
  void handle_resync_chunk(SiteId from_site, const ResyncChunkMsg& m);
  // Walks the committed log and hands every globally sequenced txn above
  // `have` (contiguous counter per epoch) to `ship`, expanding noop stubs
  // of our own origin back into full payloads. Shared by l2_resync_site
  // (hub -> site refill) and handle_resync_pull (site -> new hub).
  std::uint64_t ship_missing_gseqs(
      const std::vector<GseqFrontier>& have,
      const std::function<void(zk::Envelope&&)>& ship);

  // ---- liveness / registration / failover (heartbeat.cpp) ----
  void heartbeat_tick();
  void send_heartbeats();
  void handle_heartbeat(SiteId from_site, const WanHeartbeatMsg& m);
  void handle_heartbeat_reply(SiteId from_site, const WanHeartbeatReplyMsg& m);
  void adopt_l2(SiteId site, std::uint32_t epoch);
  void consider_l2_failover();
  bool site_alive(SiteId s) const;

  // ---- shared apply-side mirror maintenance (broker.cpp) ----
  void apply_token_marker(const store::Txn& txn);
  void audit_applied(const zk::Envelope& env);

  WanOptions wan_;
  std::shared_ptr<const SiteDirectory> directory_;
  TokenAuditor* auditor_;
  std::unique_ptr<MigrationPolicy> policy_;

  // Snapshot-like state: a deterministic function of the applied txn
  // prefix; survives crashes alongside the data tree.
  SiteTokenTable site_tokens_;
  BrokerTokenTable broker_tokens_;          // global token map mirror
  std::map<SessionId, SiteId> session_home_;
  std::map<SiteId, Zxid> up_frontier_;      // per-site applied origin zxids
  std::uint64_t applied_down_gseq_ = 0;     // highest L2 gseq applied here
  std::uint64_t gseq_counter_ = 0;          // L2: counter within l2_epoch_
  // Per-L2-epoch applied frontier: cum = contiguous prefix of counters
  // applied, sparse = counters applied above a hole. Together they answer
  // gseq_applied() exactly, making resync idempotent (exactly-once apply
  // per gseq), while cum alone is what a resync request announces.
  struct AppliedFrontier {
    std::uint64_t cum = 0;
    std::set<std::uint64_t> sparse;
  };
  std::map<std::uint32_t, AppliedFrontier> applied_down_by_epoch_;

  // Volatile state (cleared on crash).
  WanTransport transport_;
  SiteId l2_site_ = 0;
  std::uint32_t l2_epoch_ = 1;
  std::map<SiteId, Zxid> up_proposed_;      // L2: dedupe between propose/apply
  std::set<std::uint64_t> down_proposed_;   // L1: dedupe between propose/apply
  std::set<TokenKey> l2_pending_grants_;    // grant proposed, not yet applied
  std::map<SiteId, Time> site_last_heard_;
  std::map<SiteId, std::vector<SessionId>> wan_live_sessions_;
  std::map<SiteId, std::vector<GseqFrontier>> site_frontiers_;
  std::map<SiteId, Time> resync_sent_at_;  // L2: per-site round cooldown
  std::map<SiteId, std::size_t> leader_hint_;
  std::map<SiteId, std::uint32_t> peer_zab_epoch_;  // last observed per site
  std::map<TokenKey, Time> recall_sent_;  // L2: recall RTT measurement
  Time l2_last_heard_ = 0;
  bool registered_ = false;
  // Hub handover catch-up (volatile, like the rest of the liveness state).
  bool l2_reconciling_ = false;
  Time reconcile_started_ = 0;
  // Whether our replica had no mints for the claimed epoch at entry: if it
  // had none and a frontier later names that epoch, someone else minted
  // under it and we must re-bump past them (stale-view promotion race).
  bool reconcile_epoch_was_fresh_ = false;
  // Frontiers from sites that acknowledged *this* regime (register, a
  // heartbeat naming us, or a completed pull) — the freshness census.
  std::map<SiteId, std::vector<GseqFrontier>> reconcile_frontiers_;
  std::map<SiteId, Time> reconcile_pull_sent_;  // per-site pull cooldown
  // Client work arriving while reconciling, replayed in order at finish
  // (or abort — each closure re-checks the role it needs).
  std::vector<std::function<void()>> reconcile_deferred_;
  BrokerStats bstats_;
  obs::CachedCounter frames_sent_ctr_;
  obs::CachedCounter frame_msgs_ctr_;
  obs::CachedHistogram frame_batch_hist_;
};

}  // namespace wankeeper::wk

#include "wankeeper/consistency.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace wankeeper::wk {

std::string ClientOp::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "op#%llu s%lld.%u@site%d %s %s [%.3fs..%.3fs] v=%d %s",
                static_cast<unsigned long long>(id),
                static_cast<long long>(session), session_epoch, site,
                kind == Kind::kWrite ? "WRITE" : "READ", key.c_str(),
                static_cast<double>(start) / kSecond,
                static_cast<double>(end) / kSecond, version,
                ok ? "ok" : "failed");
  return buf;
}

std::uint64_t OpHistory::begin(SessionId session, std::uint32_t session_epoch,
                               SiteId site, ClientOp::Kind kind,
                               const std::string& key, Time start) {
  ClientOp op;
  op.id = ops_.size();
  op.session = session;
  op.session_epoch = session_epoch;
  op.site = site;
  op.kind = kind;
  op.key = key;
  op.start = start;
  ops_.push_back(std::move(op));
  open_.push_back(true);
  return ops_.back().id;
}

void OpHistory::finish(std::uint64_t id, Time end, bool ok,
                       std::int32_t version) {
  if (id >= ops_.size() || !open_[id]) return;
  open_[id] = false;
  ClientOp& op = ops_[id];
  op.end = end;
  op.ok = ok;
  op.version = version;
  if (ok) ++completed_ok_;
}

std::string ConsistencyViolation::format() const {
  std::string out = guarantee + " violated on " + key + ": " + detail + "\n";
  for (const ClientOp& op : witness) out += "    " + op.describe() + "\n";
  return out;
}

namespace {

struct KeyOps {
  std::vector<const ClientOp*> ok_writes;
  std::vector<const ClientOp*> ok_reads;
  std::vector<const ClientOp*> write_attempts;  // ok, failed, or still open
};

void check_write_chain(const std::string& key, const KeyOps& k,
                       std::vector<ConsistencyViolation>* out) {
  // Duplicate versions: two committed writes can never produce the same
  // version of one record.
  auto by_version = k.ok_writes;
  std::sort(by_version.begin(), by_version.end(),
            [](const ClientOp* a, const ClientOp* b) {
              if (a->version != b->version) return a->version < b->version;
              return a->id < b->id;
            });
  for (std::size_t i = 1; i < by_version.size(); ++i) {
    if (by_version[i]->version == by_version[i - 1]->version) {
      out->push_back({"write-linearizability", key,
                      "version " + std::to_string(by_version[i]->version) +
                          " produced twice",
                      {*by_version[i - 1], *by_version[i]}});
    }
  }
  // Real-time order: walking versions downward, remember the earliest
  // completion among higher-versioned writes; a lower-versioned write that
  // *started* after that completion happened-after it in real time, yet
  // serialized before it — a cycle no single total order can explain.
  const ClientOp* min_end_higher = nullptr;
  for (auto it = by_version.rbegin(); it != by_version.rend(); ++it) {
    const ClientOp* w = *it;
    if (min_end_higher != nullptr && min_end_higher->end < w->start) {
      out->push_back(
          {"write-linearizability", key,
           "v" + std::to_string(min_end_higher->version) +
               " completed before v" + std::to_string(w->version) +
               " started, but serialized after it",
           {*min_end_higher, *w}});
    }
    if (min_end_higher == nullptr || w->end < min_end_higher->end) {
      min_end_higher = w;
    }
  }
}

void check_future_reads(const std::string& key, const KeyOps& k,
                        std::vector<ConsistencyViolation>* out) {
  // An observed version v needs at least v write attempts (the create that
  // births the record is version 0) started before the read returned. A
  // sorted start-time list gives the count in O(log n) per read.
  std::vector<Time> starts;
  starts.reserve(k.write_attempts.size());
  for (const ClientOp* w : k.write_attempts) starts.push_back(w->start);
  std::sort(starts.begin(), starts.end());
  for (const ClientOp* r : k.ok_reads) {
    if (r->version <= 0) continue;
    const auto started =
        std::upper_bound(starts.begin(), starts.end(), r->end) - starts.begin();
    if (r->version > static_cast<std::int32_t>(started)) {
      out->push_back({"no-future-reads", key,
                      "observed v" + std::to_string(r->version) + " but only " +
                          std::to_string(started) +
                          " write attempt(s) had started",
                      {*r}});
    }
  }
}

void check_session(const std::string& key,
                   const std::vector<const ClientOp*>& session_ops,
                   std::vector<ConsistencyViolation>* out) {
  // session_ops: one (session, epoch)'s completed ok ops on one key, in
  // program order. The client pipelines FIFO over one connection, so a
  // read issued after a write — even a still-in-flight one — must observe
  // it (the session queue serves them in order).
  const ClientOp* last_write = nullptr;
  const ClientOp* last_read = nullptr;
  for (const ClientOp* op : session_ops) {
    if (op->kind == ClientOp::Kind::kWrite) {
      if (last_write != nullptr && op->version <= last_write->version) {
        out->push_back({"monotonic-writes", key,
                        "session wrote v" + std::to_string(op->version) +
                            " after its own v" +
                            std::to_string(last_write->version),
                        {*last_write, *op}});
      }
      last_write = op;
    } else {
      if (op->version < 0) continue;
      if (last_write != nullptr && op->version < last_write->version) {
        out->push_back({"read-your-writes", key,
                        "read observed v" + std::to_string(op->version) +
                            " after the session's own write of v" +
                            std::to_string(last_write->version),
                        {*last_write, *op}});
      }
      if (last_read != nullptr && op->version < last_read->version) {
        out->push_back({"monotonic-reads", key,
                        "read observed v" + std::to_string(op->version) +
                            " after an earlier read observed v" +
                            std::to_string(last_read->version),
                        {*last_read, *op}});
      }
      last_read = op;
    }
  }
}

}  // namespace

std::vector<ConsistencyViolation> ConsistencyChecker::check(
    const OpHistory& history) {
  std::vector<ConsistencyViolation> out;

  std::map<std::string, KeyOps> keys;
  // (session, epoch, key) -> completed ok ops in program order. Op ids are
  // assigned in begin() order and each client runs closed-loop or pipelines
  // FIFO, so ascending id is session program order.
  std::map<std::tuple<SessionId, std::uint32_t, std::string>,
           std::vector<const ClientOp*>>
      sessions;

  for (const ClientOp& op : history.ops()) {
    KeyOps& k = keys[op.key];
    if (op.kind == ClientOp::Kind::kWrite) k.write_attempts.push_back(&op);
    if (!op.ok || op.end == 0) continue;  // failed or never finished
    if (op.kind == ClientOp::Kind::kWrite) {
      k.ok_writes.push_back(&op);
    } else {
      k.ok_reads.push_back(&op);
    }
    sessions[{op.session, op.session_epoch, op.key}].push_back(&op);
  }

  for (const auto& [key, k] : keys) {
    check_write_chain(key, k, &out);
    check_future_reads(key, k, &out);
  }
  for (const auto& [skey, ops] : sessions) {
    check_session(std::get<2>(skey), ops, &out);
  }
  return out;
}

}  // namespace wankeeper::wk

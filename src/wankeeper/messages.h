// WanKeeper's inter-site (L1 <-> L2) wire protocol. All of these travel
// inside WanEnvelopeMsg frames managed by WanTransport, which provides the
// reliable FIFO streams the protocol assumes (paper §II-B: "we require FIFO
// channels between brokers/servers, which can be ensured by using TCP").
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/trace.h"
#include "sim/message.h"
#include "store/txn.h"
#include "wankeeper/token.h"
#include "zk/messages.h"
#include "zk/server.h"

namespace wankeeper::wk {

// Global sequence numbers encode (l2_epoch, counter): the epoch in the high
// bits so numeric order follows regime order, the per-epoch counter below.
constexpr int kGseqEpochShift = 40;
constexpr std::uint64_t kGseqCounterMask = (1ULL << kGseqEpochShift) - 1;
inline std::uint32_t gseq_epoch(std::uint64_t g) {
  return static_cast<std::uint32_t>(g >> kGseqEpochShift);
}
inline std::uint64_t gseq_counter(std::uint64_t g) { return g & kGseqCounterMask; }
inline std::uint64_t make_gseq(std::uint32_t epoch, std::uint64_t counter) {
  return (static_cast<std::uint64_t>(epoch) << kGseqEpochShift) | counter;
}

// Per-L2-epoch replication frontier: `counter` is the highest gseq counter
// applied *contiguously* from epoch `epoch` (gseq = epoch << 40 | counter).
// A site's down-frontier is a vector of these, one per L2 epoch it has seen,
// so a resync after an L2 failover can re-ship holes left in an *older*
// epoch — a single numeric-max frontier cannot express those (the epoch
// occupies the high bits, so any new-epoch gseq compares above every
// old-epoch one).
struct GseqFrontier {
  std::uint32_t epoch = 0;
  std::uint64_t counter = 0;

  friend bool operator==(const GseqFrontier& a, const GseqFrontier& b) {
    return a.epoch == b.epoch && a.counter == b.counter;
  }
};

// The coverage target of hub handover catch-up (DESIGN.md §5d): per epoch,
// the max contiguous counter any announcing site has applied. A freshly
// promoted hub must reach this before minting — anything below it is a
// transaction the cluster has already seen and the new hub has not.
inline std::vector<GseqFrontier> majority_frontier(
    const std::vector<std::vector<GseqFrontier>>& announced) {
  std::map<std::uint32_t, std::uint64_t> acc;
  for (const auto& frontiers : announced) {
    for (const auto& f : frontiers) {
      auto& c = acc[f.epoch];
      c = std::max(c, f.counter);
    }
  }
  std::vector<GseqFrontier> out;
  out.reserve(acc.size());
  for (const auto& [epoch, counter] : acc) out.push_back({epoch, counter});
  return out;
}

// The epochs where `target` exceeds `have`, and by how much — what a
// reconciling hub still needs to pull. Empty means covered.
inline std::vector<GseqFrontier> frontier_deficit(
    const std::vector<GseqFrontier>& have,
    const std::vector<GseqFrontier>& target) {
  std::vector<GseqFrontier> out;
  for (const auto& t : target) {
    if (t.counter == 0) continue;
    std::uint64_t mine = 0;
    for (const auto& h : have) {
      if (h.epoch == t.epoch) mine = h.counter;
    }
    if (mine < t.counter) out.push_back({t.epoch, t.counter - mine});
  }
  return out;
}

// --- transport framing ---

// One frame carries one or more protocol messages with consecutive
// sequence numbers (coalescing); inners[i] has sequence seq + i.
struct WanEnvelopeMsg : sim::Message {
  SiteId from_site = kNoSite;
  NodeId from_node = kNoNode;      // sending leader, for receiver leader hints
  std::uint32_t stream_epoch = 0;  // sender's zab epoch: new leader, new stream
  std::uint32_t stream_gen = 0;    // bumped when the sender restarts the stream
  std::uint64_t seq = 0;           // FIFO sequence of inners.front()
  std::vector<sim::MessagePtr> inners;
  std::uint64_t last_seq() const { return seq + inners.size() - 1; }
  std::size_t wire_size() const override {
    std::size_t n = 32;
    for (const auto& inner : inners) n += 8 + inner->wire_size();
    return n;
  }
  const char* name() const override { return "wk.envelope"; }
};

struct WanAckMsg : sim::Message {
  SiteId from_site = kNoSite;
  NodeId from_node = kNoNode;
  std::uint32_t stream_epoch = 0;  // epoch of the stream being acked
  std::uint32_t stream_gen = 0;    // generation of the stream being acked
  std::uint64_t cumulative = 0;    // everything <= cumulative received
  const char* name() const override { return "wk.ack"; }
};

// --- L1 -> L2 ---

// Discovery phase of the paper's Fig 2: a (re)elected L1 leader registers
// with the L2 site, reporting its replication frontiers and owned tokens so
// both ends can resynchronize.
struct RegisterMsg : sim::Message {
  SiteId from_site = kNoSite;
  NodeId from_node = kNoNode;  // the (re)elected leader announcing itself
  std::uint32_t zab_epoch = 0;
  std::vector<GseqFrontier> down_frontiers;  // contiguously applied, per epoch
  std::vector<TokenKey> owned_tokens;
  obs::TraceId trace = obs::kNoTrace;  // register hop -> resync it triggers
  const char* name() const override { return "wk.register"; }
};

// A write the L1 site lacks tokens for, forwarded for L2 serialization
// (step 8 of Fig 2). origin_server routes prep errors back.
struct WanForwardMsg : sim::Message {
  zk::ClientRequest request;
  NodeId origin_server = kNoNode;
  std::size_t wire_size() const override { return 48 + request.wire_size(); }
  const char* name() const override { return "wk.forward"; }
};

// A transaction committed locally under site tokens, replicated up to L2
// for global sequencing and fan-out (step 14 of Fig 2).
struct ReplicateUpMsg : sim::Message {
  zk::Envelope envelope;  // txn.origin_site/origin_zxid identify it globally
  std::size_t wire_size() const override {
    return 64 + envelope.txn.path.size() + envelope.txn.data.size();
  }
  const char* name() const override { return "wk.replicateUp"; }
};

// A returned token (the marker txn already flowed up via ReplicateUp; this
// is implicit — kept for documentation symmetry; see broker.cpp).

// A reconciling hub announcing its own applied frontiers and asking a site
// that is ahead to ship what the hub is missing — the inverse of
// l2_resync_site. Carries the puller's claimed identity: receiving one IS
// hub gossip, so a responder still following the old regime adopts the
// claim first and then serves the pull.
struct ResyncPullMsg : sim::Message {
  SiteId from_site = kNoSite;
  std::uint32_t l2_epoch = 0;          // the puller's claimed hub epoch
  std::vector<GseqFrontier> have;      // puller's contiguous applied frontiers
  obs::TraceId trace = obs::kNoTrace;  // pull -> chunks -> apply timeline
  std::size_t wire_size() const override { return 32 + 12 * have.size(); }
  const char* name() const override { return "wk.resyncPull"; }
};

// The answer: committed globally-sequenced transactions above the puller's
// frontier, in log (== gseq) order, chunked. The final chunk (done) also
// carries the responder's own frontiers, which doubles as its adoption of
// the puller's regime.
struct ResyncChunkMsg : sim::Message {
  SiteId from_site = kNoSite;
  bool done = false;
  std::vector<zk::Envelope> envelopes;
  std::vector<GseqFrontier> frontiers;  // set on the final (done) chunk
  obs::TraceId trace = obs::kNoTrace;   // set on the final (done) chunk
  std::size_t wire_size() const override {
    std::size_t n = 32 + 12 * frontiers.size();
    for (const auto& e : envelopes) {
      n += 64 + e.txn.path.size() + e.txn.data.size();
    }
    return n;
  }
  const char* name() const override { return "wk.resyncChunk"; }
};

// Site liveness + ephemeral-session piggyback (the paper's WAN Heartbeater)
// + L2 identity gossip used for failover.
struct WanHeartbeatMsg : sim::Message {
  SiteId from_site = kNoSite;
  NodeId from_node = kNoNode;
  std::uint32_t zab_epoch = 0;  // sender leadership; a bump resets WAN streams
  std::vector<SessionId> live_sessions;
  std::vector<GseqFrontier> down_frontiers;
  SiteId l2_site = kNoSite;
  std::uint32_t l2_epoch = 0;
  // Set only on the heartbeat sent *to the hub*: the frontier announcement
  // that can trigger a resync. The hub either continues this trace into the
  // resync round or ends it on arrival, so no trace leaks open.
  obs::TraceId trace = obs::kNoTrace;
  const char* name() const override { return "wk.heartbeat"; }
};

// --- L2 -> L1 ---

struct RegisterOkMsg : sim::Message {
  SiteId from_site = kNoSite;
  NodeId from_node = kNoNode;
  std::uint32_t zab_epoch = 0;
  Zxid up_frontier = kNoZxid;  // highest origin zxid L2 applied from you
  SiteId l2_site = kNoSite;
  std::uint32_t l2_epoch = 0;
  const char* name() const override { return "wk.registerOk"; }
};

// A globally sequenced transaction fanned out to a site (step 10 of Fig 2).
// Epoch-tagged: a receiver drops fan-outs from a deposed L2 regime instead
// of applying them against the new regime's sequence. `resync` marks
// re-shipments from l2_resync_site (metrics + trace bookkeeping only; the
// dedup path is identical either way, which is what makes resync idempotent).
struct ReplicateDownMsg : sim::Message {
  zk::Envelope envelope;  // txn.gseq orders it; session/xid route the reply
  std::uint32_t l2_epoch = 0;
  bool resync = false;
  obs::TraceId resync_trace = obs::kNoTrace;  // span: resync ship -> apply
  std::size_t wire_size() const override {
    return 64 + envelope.txn.path.size() + envelope.txn.data.size();
  }
  const char* name() const override { return "wk.replicateDown"; }
};

// Termination of lease for tokens (paper §II-B): the owner must finish
// in-flight local txns on them and return them.
struct TokenRecallMsg : sim::Message {
  std::vector<TokenKey> keys;
  const char* name() const override { return "wk.recall"; }
};

// Prep failure for a forwarded request; routed back to the origin server.
struct WanRequestErrorMsg : sim::Message {
  NodeId origin_server = kNoNode;
  SessionId session = kNoSession;
  Xid xid = 0;
  store::Rc rc = store::Rc::kOk;
  const char* name() const override { return "wk.requestError"; }
};

struct WanHeartbeatReplyMsg : sim::Message {
  SiteId from_site = kNoSite;
  NodeId from_node = kNoNode;
  std::uint32_t zab_epoch = 0;
  Zxid up_frontier = kNoZxid;
  SiteId l2_site = kNoSite;
  std::uint32_t l2_epoch = 0;
  const char* name() const override { return "wk.heartbeatReply"; }
};

}  // namespace wankeeper::wk

// Markov-model access prediction (paper §II-B "Token Prediction").
//
// States are (record, site) pairs; a transition is recorded whenever a
// record is accessed by some site. Per the paper, edges only connect states
// sharing the record or the site, and probabilities are estimated over a
// sliding FIFO window of the most recent accesses so the model tracks
// shifting client populations.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "common/types.h"

namespace wankeeper::wk {

class MarkovPredictor {
 public:
  explicit MarkovPredictor(std::size_t window = 1024) : window_(window) {}

  // Record that `site` accessed `record`.
  void observe(const std::string& record, SiteId site);

  // Most likely next site to access `record`, with its estimated
  // probability, based on transitions out of the record's current state.
  struct Prediction {
    SiteId site = kNoSite;
    double probability = 0.0;
  };
  std::optional<Prediction> predict_next_site(const std::string& record) const;

  // Probability that the next access to `record` comes from `site`.
  double site_probability(const std::string& record, SiteId site) const;

  std::size_t window() const { return window_; }
  std::size_t observations() const { return history_.size(); }

 private:
  struct State {
    std::string record;
    SiteId site;
    bool operator<(const State& o) const {
      if (record != o.record) return record < o.record;
      return site < o.site;
    }
  };

  void add_transition(const State& from, const State& to, int delta);

  std::size_t window_;
  // Sliding window of states in access order (per record, as the paper's
  // same-object correlation; the oldest falls out and decrements counts).
  std::deque<State> history_;
  // Last state per record, to chain same-record transitions.
  std::map<std::string, State> last_state_;
  // Transition counts between (record,site) states that share the record.
  std::map<State, std::map<SiteId, std::uint32_t>> transitions_;
  std::map<State, std::uint32_t> totals_;
  // Window bookkeeping: per-record previous chain for decrement on expiry.
  std::deque<std::pair<State, State>> window_edges_;
};

}  // namespace wankeeper::wk

#include "wankeeper/policy.h"

#include <stdexcept>

namespace wankeeper::wk {

std::unique_ptr<MigrationPolicy> make_policy(const std::string& spec) {
  if (spec == "never") return std::make_unique<NeverMigratePolicy>();
  if (spec == "always") return std::make_unique<AlwaysMigratePolicy>();
  if (spec == "predictive") return std::make_unique<PredictivePolicy>();
  if (spec.rfind("consecutive", 0) == 0) {
    std::uint32_t r = 2;
    const auto colon = spec.find(':');
    if (colon != std::string::npos) {
      r = static_cast<std::uint32_t>(std::stoul(spec.substr(colon + 1)));
    }
    return std::make_unique<ConsecutivePolicy>(r);
  }
  throw std::invalid_argument("unknown migration policy: " + spec);
}

}  // namespace wankeeper::wk

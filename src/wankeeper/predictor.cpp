#include "wankeeper/predictor.h"

namespace wankeeper::wk {

void MarkovPredictor::add_transition(const State& from, const State& to, int delta) {
  auto& row = transitions_[from];
  auto& total = totals_[from];
  if (delta > 0) {
    row[to.site] += static_cast<std::uint32_t>(delta);
    total += static_cast<std::uint32_t>(delta);
  } else {
    const auto dec = static_cast<std::uint32_t>(-delta);
    auto it = row.find(to.site);
    if (it != row.end()) {
      it->second = it->second > dec ? it->second - dec : 0;
      if (it->second == 0) row.erase(it);
    }
    total = total > dec ? total - dec : 0;
    if (total == 0) {
      transitions_.erase(from);
      totals_.erase(from);
    }
  }
}

void MarkovPredictor::observe(const std::string& record, SiteId site) {
  const State current{record, site};
  const auto it = last_state_.find(record);
  if (it != last_state_.end()) {
    add_transition(it->second, current, +1);
    window_edges_.emplace_back(it->second, current);
    if (window_edges_.size() > window_) {
      const auto& [from, to] = window_edges_.front();
      add_transition(from, to, -1);
      window_edges_.pop_front();
    }
  }
  last_state_[record] = current;
  history_.push_back(current);
  if (history_.size() > window_) history_.pop_front();
}

std::optional<MarkovPredictor::Prediction> MarkovPredictor::predict_next_site(
    const std::string& record) const {
  const auto last = last_state_.find(record);
  if (last == last_state_.end()) return std::nullopt;
  const auto row = transitions_.find(last->second);
  if (row == transitions_.end()) return std::nullopt;
  const auto total = totals_.find(last->second);
  if (total == totals_.end() || total->second == 0) return std::nullopt;
  Prediction best;
  for (const auto& [site, count] : row->second) {
    const double p = static_cast<double>(count) / static_cast<double>(total->second);
    if (p > best.probability) {
      best.site = site;
      best.probability = p;
    }
  }
  if (best.site == kNoSite) return std::nullopt;
  return best;
}

double MarkovPredictor::site_probability(const std::string& record,
                                         SiteId site) const {
  const auto last = last_state_.find(record);
  if (last == last_state_.end()) return 0.0;
  const auto row = transitions_.find(last->second);
  const auto total = totals_.find(last->second);
  if (row == transitions_.end() || total == totals_.end() || total->second == 0) {
    return 0.0;
  }
  const auto it = row->second.find(site);
  if (it == row->second.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(total->second);
}

}  // namespace wankeeper::wk

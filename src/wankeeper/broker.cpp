// Broker: construction, WAN plumbing, the L1 token-check head processor,
// and the apply-side mirror maintenance shared by every replica. The L2
// serialization logic lives in level2.cpp; liveness/registration/failover
// in heartbeat.cpp.
#include "wankeeper/broker.h"

#include <algorithm>

#include "common/logging.h"

namespace wankeeper::wk {

Broker::Broker(rt::Runtime& rt, std::string name, zk::ServerOptions server_opts,
               WanOptions wan_opts, std::shared_ptr<const SiteDirectory> directory,
               TokenAuditor* auditor)
    : Server(rt, std::move(name), server_opts),
      wan_(wan_opts),
      directory_(std::move(directory)),
      auditor_(auditor),
      // my_site unknown until registration; fixed in start()
      transport_(make_transport(kNoSite)),
      l2_site_(wan_opts.l2_site) {}

WanTransport Broker::make_transport(SiteId site_id) {
  WanTransport t(
      site_id,
      [this](SiteId dest, sim::MessagePtr frame) {
        raw_send_to_site(dest, std::move(frame));
      },
      [this](SiteId from, const sim::MessagePtr& inner) { wan_deliver(from, inner); },
      wan_.batch,
      [this](Time delay) {
        set_timer(delay, [this]() { transport_.flush_all(); });
      });
  t.set_frame_observer([this](std::size_t msgs) {
    auto& metrics = rt().obs().metrics;
    frames_sent_ctr_.at(metrics, "wan.frames_sent", site()).inc();
    frame_msgs_ctr_.at(metrics, "wan.frame_msgs", site()).inc(msgs);
    frame_batch_hist_.at(metrics, "wan.frame_batch", site())
        .record(static_cast<Time>(msgs));
  });
  return t;
}

void Broker::start() {
  Server::start();
  // Rebind the transport's site id now that set_site() has run.
  transport_ = make_transport(site());
  transport_.set_from_node(id());
  set_timer(wan_.retransmit_interval, [this]() { wan_tick(); });
  set_timer(wan_.heartbeat_interval, [this]() { heartbeat_tick(); });
}

void Broker::on_crash() {
  Server::on_crash();
  // Snapshot-like mirrors (site_tokens_, broker_tokens_ ownership,
  // session_home_, frontiers) survive: they are deterministic functions of
  // the applied prefix, which models durable state. Protocol liveness state
  // does not.
  transport_.reset();
  broker_tokens_.clear_volatile();
  up_proposed_.clear();
  down_proposed_.clear();
  l2_pending_grants_.clear();
  site_last_heard_.clear();
  wan_live_sessions_.clear();
  site_frontiers_.clear();
  resync_sent_at_.clear();
  leader_hint_.clear();
  peer_zab_epoch_.clear();
  recall_sent_.clear();
  registered_ = false;
  l2_last_heard_ = 0;
  l2_reconciling_ = false;
  reconcile_frontiers_.clear();
  reconcile_pull_sent_.clear();
  reconcile_deferred_.clear();
}

void Broker::on_restart() {
  Server::on_restart();
  set_timer(wan_.retransmit_interval, [this]() { wan_tick(); });
  set_timer(wan_.heartbeat_interval, [this]() { heartbeat_tick(); });
}

void Broker::became_leader() {
  transport_.open_streams(peer()->current_epoch());
  // Re-derive the L2 sequence from the applied log (which zab fully
  // delivers before this hook): a stale in-memory counter from an earlier
  // reign here would re-stamp gseqs an interim leader already used, putting
  // two different txns under one counter — receivers keep whichever arrives
  // first and the sites never converge. next_gseq() resumes per epoch from
  // the applied frontier, so zeroing here is what makes the resume run.
  gseq_counter_ = 0;
  registered_ = false;
  l2_last_heard_ = now();  // grace period before lease panic / failover
  if (site() != l2_site_) {
    send_register();
    return;
  }
  // Leading the believed-hub site with evidence of prior WAN sequencing:
  // our replica — and our view of the hub identity itself — may be stale
  // (a revived hub site does not know it was deposed while down), so catch
  // up against the other sites before minting anything. A bootstrap leader
  // (nothing ever applied) serves immediately; deployments starting up are
  // unaffected.
  if (!applied_down_by_epoch_.empty()) l2_enter_reconcile("hub leader change");
}

void Broker::lost_leadership() {
  transport_.reset();
  broker_tokens_.clear_volatile();
  l2_pending_grants_.clear();
  up_proposed_.clear();
  down_proposed_.clear();
  recall_sent_.clear();
  registered_ = false;
  // Deferred work dies with the leadership: the requests were never
  // proposed, and the clients' watchdogs re-drive them at the new leader.
  l2_reconciling_ = false;
  reconcile_frontiers_.clear();
  reconcile_pull_sent_.clear();
  reconcile_deferred_.clear();
}

// ----------------------------------------------------------- WAN plumbing

void Broker::raw_send_to_site(SiteId dest, sim::MessagePtr frame) {
  const auto& servers = directory_->servers_by_site.at(static_cast<std::size_t>(dest));
  if (servers.empty()) return;
  std::size_t hint = 0;
  if (const auto it = leader_hint_.find(dest); it != leader_hint_.end()) {
    hint = it->second % servers.size();
  }
  rt().send(id(), servers[hint], std::move(frame));
}

void Broker::learn_leader_hint(SiteId s, NodeId node) {
  if (s == kNoSite || node == kNoNode ||
      static_cast<std::size_t>(s) >= directory_->sites()) {
    return;
  }
  const auto& servers = directory_->servers_by_site[static_cast<std::size_t>(s)];
  for (std::size_t i = 0; i < servers.size(); ++i) {
    if (servers[i] == node) {
      leader_hint_[s] = i;
      return;
    }
  }
}

void Broker::observe_peer(SiteId s, NodeId leader_node, std::uint32_t zab_epoch) {
  if (s == kNoSite || s == site()) return;
  learn_leader_hint(s, leader_node);
  if (zab_epoch == 0) return;
  const auto it = peer_zab_epoch_.find(s);
  if (it == peer_zab_epoch_.end()) {
    peer_zab_epoch_[s] = zab_epoch;  // baseline; nothing of ours can be stale
    return;
  }
  if (zab_epoch <= it->second) return;
  it->second = zab_epoch;
  // The peer site's old leadership is gone, and with it the in-stream state
  // our outgoing frames were sequenced against: without a reset the new
  // leader buffers them forever (seq > expected) and the stream wedges.
  transport_.reset_stream(s);
  rt().obs().metrics.counter("wan.stream_resets", site()).inc();
  WK_INFO(now(), name(),
          "site " + std::to_string(s) + " re-elected (zab epoch " +
              std::to_string(zab_epoch) + "); stream reset");
  if (site() != l2_site_ && s == l2_site_) {
    // The hub's new leader never saw our registration: re-announce our
    // frontier so it resyncs us (and we re-ship our unacked local txns).
    registered_ = false;
    send_register();
  }
}

void Broker::wan_tick() {
  if (is_leader()) {
    transport_.retransmit_tick(now(), wan_.retransmit_interval);
  }
  set_timer(wan_.retransmit_interval, [this]() { wan_tick(); });
}

void Broker::on_message(NodeId from, const sim::MessagePtr& msg) {
  const bool is_wan =
      sim::msg_cast<WanEnvelopeMsg>(msg.get()) != nullptr ||
      sim::msg_cast<WanAckMsg>(msg.get()) != nullptr ||
      sim::msg_cast<WanHeartbeatMsg>(msg.get()) != nullptr ||
      sim::msg_cast<WanHeartbeatReplyMsg>(msg.get()) != nullptr ||
      sim::msg_cast<RegisterMsg>(msg.get()) != nullptr ||
      sim::msg_cast<RegisterOkMsg>(msg.get()) != nullptr;
  if (!is_wan) {
    Server::on_message(from, msg);
    return;
  }

  (void)from;

  // WAN traffic is broker-leader business: bounce to the local leader if it
  // landed on a follower (the sender's hint was stale).
  if (!is_leader()) {
    if (leader_server() != kNoNode && leader_server() != id()) {
      rt().send(id(), leader_server(), msg);
    }
    return;
  }

  // Learn the sender's leadership from the identity every WAN message
  // carries in-band. The network-level `from` must never be used: a message
  // bounced through a same-site follower arrives with that follower as the
  // sender, which is exactly how leader hints used to rot (all traffic then
  // routes through a stale node and one crash blackholes the site).
  if (const auto* m = sim::msg_cast<WanEnvelopeMsg>(msg.get())) {
    // A frame's stream_epoch IS the sender's zab epoch, so data traffic
    // triggers the reset as fast as a heartbeat would.
    observe_peer(m->from_site, m->from_node, m->stream_epoch);
  } else if (const auto* m = sim::msg_cast<WanAckMsg>(msg.get())) {
    // An ack's stream_epoch names *our* stream, not the acker's leadership.
    observe_peer(m->from_site, m->from_node, /*zab_epoch=*/0);
  } else if (const auto* m = sim::msg_cast<WanHeartbeatMsg>(msg.get())) {
    observe_peer(m->from_site, m->from_node, m->zab_epoch);
  } else if (const auto* m =
                 sim::msg_cast<WanHeartbeatReplyMsg>(msg.get())) {
    observe_peer(m->from_site, m->from_node, m->zab_epoch);
  } else if (const auto* m = sim::msg_cast<RegisterMsg>(msg.get())) {
    observe_peer(m->from_site, m->from_node, m->zab_epoch);
  } else if (const auto* m = sim::msg_cast<RegisterOkMsg>(msg.get())) {
    observe_peer(m->from_site, m->from_node, m->zab_epoch);
  }

  if (transport_.on_message(kNoSite, msg)) return;

  if (const auto* m = sim::msg_cast<WanHeartbeatMsg>(msg.get())) {
    handle_heartbeat(m->from_site, *m);
    return;
  }
  if (const auto* m = sim::msg_cast<WanHeartbeatReplyMsg>(msg.get())) {
    handle_heartbeat_reply(m->from_site, *m);
    return;
  }
  if (const auto* m = sim::msg_cast<RegisterMsg>(msg.get())) {
    handle_register(m->from_site, *m);
    return;
  }
  if (const auto* m = sim::msg_cast<RegisterOkMsg>(msg.get())) {
    handle_register_ok(*m);
    return;
  }
}

void Broker::wan_deliver(SiteId from_site, const sim::MessagePtr& inner) {
  if (!is_leader()) return;  // stream content is meaningless off-leader
  if (const auto* m = sim::msg_cast<WanForwardMsg>(inner.get())) {
    handle_wan_forward(from_site, *m);
    return;
  }
  if (const auto* m = sim::msg_cast<ReplicateUpMsg>(inner.get())) {
    handle_replicate_up(from_site, *m);
    return;
  }
  if (const auto* m = sim::msg_cast<ReplicateDownMsg>(inner.get())) {
    handle_replicate_down(from_site, *m);
    return;
  }
  if (const auto* m = sim::msg_cast<TokenRecallMsg>(inner.get())) {
    handle_token_recall(*m);
    return;
  }
  if (const auto* m = sim::msg_cast<WanRequestErrorMsg>(inner.get())) {
    handle_wan_request_error(*m);
    return;
  }
  if (const auto* m = sim::msg_cast<ResyncPullMsg>(inner.get())) {
    handle_resync_pull(from_site, *m);
    return;
  }
  if (const auto* m = sim::msg_cast<ResyncChunkMsg>(inner.get())) {
    handle_resync_chunk(from_site, *m);
    return;
  }
}

// ----------------------------------------------------- L1 head processor

void Broker::decorate_txn(store::Txn& txn) {
  if (txn.origin_site == kNoSite) txn.origin_site = site();
  if (l2_role() && txn.gseq == 0) txn.gseq = next_gseq();
}

bool Broker::tokens_held_locally(const std::vector<TokenKey>& keys) const {
  return site_tokens_.holds_all(keys);
}

bool Broker::leases_valid() const {
  if (site() == l2_site_) return true;
  return now() - l2_last_heard_ <= wan_.lease_valid;
}

void Broker::route_write(const zk::ClientRequest& req, NodeId origin_server) {
  if (!is_leader()) {
    Server::route_write(req, origin_server);  // forward to the site leader
    return;
  }
  if (l2_role()) {
    if (l2_reconciling_) {
      // Serialize nothing while catching up: park the write and replay it
      // through route_write when reconciliation resolves (which re-routes
      // it to the real hub if we were superseded meanwhile).
      reconcile_deferred_.push_back(
          [this, req, origin_server]() { route_write(req, origin_server); });
      return;
    }
    l2_serve(req, site(), origin_server);
    return;
  }
  const auto keys = tokens_for_request(req);
  if (keys.empty()) {
    // Session ops and sync: always local (sessions are site-scoped; the
    // commit still replicates up so ephemerals are known WAN-wide).
    prep_and_propose(req, origin_server);
    return;
  }
  if (tokens_held_locally(keys) && leases_valid()) {
    ++bstats_.local_token_commits;
    if (auditor_ != nullptr) auditor_->count_local_commit();
    rt().obs().metrics.counter("token.local_commits", site()).inc();
    prep_and_propose(req, origin_server);
    return;
  }
  forward_to_l2(req, origin_server);
}

void Broker::forward_to_l2(const zk::ClientRequest& req, NodeId origin_server) {
  ++bstats_.wan_forwards;
  rt().obs().metrics.counter("broker.wan_forwards", site()).inc();
  rt().obs().tracer.open(req.trace, obs::SpanKind::kWanHop, l2_site_, name(),
                          now(),
                          "site " + std::to_string(site()) + " -> site " +
                              std::to_string(l2_site_) + " (forward)");
  auto m = sim::make_mutable_message<WanForwardMsg>();
  m->request = req;
  m->origin_server = origin_server;
  transport_.send(l2_site_, std::move(m));
}

void Broker::handle_token_recall(const TokenRecallMsg& m) {
  // Recalls are sent by the hub; one arriving while we ARE the hub is
  // from a deposed regime and must not start a return cycle.
  if (l2_role()) return;
  const auto start_now = site_tokens_.begin_recall(m.keys);
  if (!start_now.empty()) propose_token_return(start_now);
}

void Broker::propose_token_return(const std::vector<TokenKey>& keys) {
  // A return is a proposal (it would mint a gseq mid-catch-up): park it
  // until reconciliation resolves. If we were superseded meanwhile the
  // replay re-routes through the normal recall machinery.
  if (l2_reconciling_) {
    reconcile_deferred_.push_back([this, keys]() {
      if (is_leader()) propose_token_return(keys);
    });
    return;
  }
  zk::Envelope env;
  env.txn.type = store::TxnType::kTokenReturned;
  env.txn.paths = keys;
  env.txn.origin_site = site();
  propose_envelope(std::move(env), {});
}

void Broker::handle_replicate_down(SiteId from_site, const ReplicateDownMsg& m) {
  // No-op on retransmits: the span is already closed.
  rt().obs().tracer.close(m.envelope.trace, obs::SpanKind::kWanHop, site(),
                           now());
  auto& metrics = rt().obs().metrics;
  // Epoch fence: fan-outs from a deposed L2 regime must not be applied
  // against the new regime's sequence; ones from a newer regime mean we
  // have not heard the gossip yet — adopt it from the hub itself.
  if (m.l2_epoch != 0) {
    if (m.l2_epoch < l2_epoch_) {
      metrics.counter("resync.stale_l2_dropped", site()).inc();
      return;
    }
    if (m.l2_epoch > l2_epoch_) adopt_l2(from_site, m.l2_epoch);
  }
  const std::uint64_t g = m.envelope.txn.gseq;
  // Exactly-once apply per gseq: the per-epoch applied frontier (durable,
  // derived from applied txns) plus the propose-in-flight set make a resync
  // racing normal fan-out — or a second resync after a hub leader change —
  // harmless duplication.
  if (gseq_applied(g) || down_proposed_.count(g) != 0) {
    if (m.resync) metrics.counter("resync.dedup_dropped", site()).inc();
    return;
  }
  if (m.resync) {
    metrics.counter("resync.applied", site()).inc();
    rt().obs().tracer.close(m.resync_trace, obs::SpanKind::kWanHop, site(),
                             now());
  }
  down_proposed_.insert(g);
  ++bstats_.replicate_down;
  zk::Envelope env = m.envelope;
  env.txn.zxid = kNoZxid;  // the local zab assigns a fresh zxid
  propose_envelope(std::move(env), {});
  if (m.resync) {
    // Recovery fault point: a resynced txn is proposed locally but not yet
    // applied — crash here models a site dying mid-resync.
    rt().faults().fire("wk.resync_apply", name());
  }
}

void Broker::handle_wan_request_error(const WanRequestErrorMsg& m) {
  send_request_error(m.origin_server, m.session, m.xid, m.rc);
}

void Broker::send_register() {
  auto m = sim::make_mutable_message<RegisterMsg>();
  m->from_site = site();
  m->from_node = id();
  m->zab_epoch = peer()->current_epoch();
  m->down_frontiers = down_frontier_vector();
  m->owned_tokens = site_tokens_.owned_keys();
  // The frontier announcement gets its own trace so a post-mortem can see
  // register -> (resync ship -> first apply) as one timeline.
  m->trace = rt().obs().tracer.begin("register", site(), now());
  rt().obs().tracer.open(m->trace, obs::SpanKind::kWanHop, l2_site_, name(),
                          now(),
                          "register site " + std::to_string(site()) +
                              " -> site " + std::to_string(l2_site_));
  raw_send_to_site(l2_site_, std::move(m));
  rt().obs().metrics.counter("resync.registers_sent", site()).inc();
  rt().obs().events.record(now(), site(), obs::EventKind::kRegister, name(),
                            "to hub site " + std::to_string(l2_site_),
                            /*key=*/"",
                            /*a=*/static_cast<std::uint64_t>(peer()->current_epoch()));
  // Recovery fault point: the frontier announcement is on the wire; crash
  // here models a leader dying between registering and being resynced.
  rt().faults().fire("wk.register_sent", name());
}

void Broker::handle_register_ok(const RegisterOkMsg& m) {
  adopt_l2(m.l2_site, m.l2_epoch);
  if (m.l2_site != l2_site_ || m.l2_epoch != l2_epoch_) return;  // stale hub
  registered_ = true;
  l2_last_heard_ = now();
  resend_local_origin_after(m.up_frontier);
}

void Broker::resend_local_origin_after(Zxid up_frontier) {
  // Re-ship committed local-origin transactions the L2 hasn't applied:
  // covers frames lost to our (or L2's) leadership changes.
  const auto& log = peer()->log();
  for (std::size_t i = log.index_after(up_frontier); i < log.size(); ++i) {
    const auto& entry = log.at(i);
    if (entry.zxid > peer()->last_delivered()) break;  // only committed
    zk::Envelope env = zk::Envelope::decode(entry.payload);
    if (env.txn.origin_site != site() || env.txn.gseq != 0) continue;
    if (env.txn.type == store::TxnType::kNoop ||
        env.txn.type == store::TxnType::kError) {
      continue;
    }
    env.txn.zxid = entry.zxid;
    env.txn.origin_zxid = entry.zxid;
    auto m = sim::make_mutable_message<ReplicateUpMsg>();
    m->envelope = std::move(env);
    transport_.send(l2_site_, std::move(m));
  }
}

// --------------------------------------------------- gseq frontier accounting

void Broker::note_gseq_applied(std::uint64_t gseq) {
  auto& f = applied_down_by_epoch_[gseq_epoch(gseq)];
  const std::uint64_t c = gseq_counter(gseq);
  if (c <= f.cum) return;
  if (c == f.cum + 1) {
    f.cum = c;
    // Drain any sparse counters the advancing prefix now covers.
    auto it = f.sparse.begin();
    while (it != f.sparse.end() && *it == f.cum + 1) {
      f.cum = *it;
      it = f.sparse.erase(it);
    }
  } else {
    f.sparse.insert(c);
  }
}

bool Broker::gseq_applied(std::uint64_t gseq) const {
  const auto it = applied_down_by_epoch_.find(gseq_epoch(gseq));
  if (it == applied_down_by_epoch_.end()) return false;
  const std::uint64_t c = gseq_counter(gseq);
  return c <= it->second.cum || it->second.sparse.count(c) != 0;
}

std::vector<GseqFrontier> Broker::down_frontier_vector() const {
  std::vector<GseqFrontier> v;
  v.reserve(applied_down_by_epoch_.size());
  for (const auto& [epoch, f] : applied_down_by_epoch_) {
    v.push_back({epoch, f.cum});
  }
  return v;
}

bool Broker::frontier_behind(const std::vector<GseqFrontier>& theirs) const {
  for (const auto& [epoch, f] : applied_down_by_epoch_) {
    if (f.cum == 0) continue;
    std::uint64_t their_cum = 0;
    for (const auto& t : theirs) {
      if (t.epoch == epoch) their_cum = t.counter;
    }
    if (their_cum < f.cum) return true;
  }
  return false;
}

bool Broker::frontier_ahead(const std::vector<GseqFrontier>& theirs) const {
  for (const auto& t : theirs) {
    if (t.counter == 0) continue;
    const auto it = applied_down_by_epoch_.find(t.epoch);
    const std::uint64_t mine =
        it == applied_down_by_epoch_.end() ? 0 : it->second.cum;
    if (mine < t.counter) return true;
  }
  return false;
}

// --------------------------------------------------- apply-side mirrors

void Broker::post_apply(const zk::Envelope& env, store::Rc rc) {
  (void)rc;
  const store::Txn& txn = env.txn;

  // Session home tracking (for pinned_sessions and heartbeats).
  if (txn.type == store::TxnType::kCreateSession) {
    session_home_[txn.session] = txn.origin_site;
  } else if (txn.type == store::TxnType::kCloseSession) {
    session_home_.erase(txn.session);
  }

  // Replication frontiers.
  if (txn.gseq != 0) {
    if (txn.gseq > applied_down_gseq_) applied_down_gseq_ = txn.gseq;
    note_gseq_applied(txn.gseq);
    down_proposed_.erase(txn.gseq);
  }
  if (txn.origin_zxid != kNoZxid && txn.origin_site != kNoSite) {
    auto& f = up_frontier_[txn.origin_site];
    f = std::max(f, txn.origin_zxid);
  }

  if (txn.type == store::TxnType::kTokenGranted ||
      txn.type == store::TxnType::kTokenReturned) {
    apply_token_marker(txn);
  }

  audit_applied(env);

  if (!is_leader()) return;

  // Replicate local commits up to L2 (data and token returns alike).
  if (site() != l2_site_ && txn.origin_site == site() && txn.gseq == 0 &&
      txn.type != store::TxnType::kNoop && txn.type != store::TxnType::kError) {
    ++bstats_.replicate_up;
    zk::Envelope up = env;
    up.txn.origin_zxid = txn.zxid;
    rt().obs().tracer.open(up.trace, obs::SpanKind::kWanHop, l2_site_, name(),
                            now(),
                            "site " + std::to_string(site()) + " -> site " +
                                std::to_string(l2_site_) + " (up)");
    auto m = sim::make_mutable_message<ReplicateUpMsg>();
    m->envelope = std::move(up);
    transport_.send(l2_site_, std::move(m));
  }

  // L2: hub fan-out in commit (== gseq) order. Gated while reconciling —
  // txns pulled during catch-up reach the sites via the resync rounds the
  // finish step runs, after the gseq counter has safely resumed.
  if (l2_role() && !l2_reconciling_ && txn.gseq != 0 &&
      txn.type != store::TxnType::kNoop &&
      txn.type != store::TxnType::kError) {
    l2_fan_out(env);
  }
  // A pulled txn applying is reconcile progress: it may complete coverage.
  if (l2_role() && l2_reconciling_ && txn.gseq != 0) l2_reconcile_check();
}

void Broker::apply_token_marker(const store::Txn& txn) {
  if (txn.type == store::TxnType::kTokenGranted) {
    const SiteId grantee = txn.origin_site;
    for (const auto& key : txn.paths) {
      broker_tokens_.set_owner(key, grantee);
      l2_pending_grants_.erase(key);
    }
    // Flight recorder: one grant event per key, written by the applying
    // leader(s) — the hub and the grantee each log into their own ring, and
    // the ownership analytics dedupe the repeated transition.
    if (is_leader() && (grantee == site() || l2_role())) {
      for (const auto& key : txn.paths) {
        rt().obs().events.record(now(), site(), obs::EventKind::kTokenGrant,
                                  name(), "", key,
                                  /*a=*/static_cast<std::uint64_t>(grantee));
      }
    }
    if (grantee == site()) {
      site_tokens_.apply_granted(txn.paths);
      if (auditor_ != nullptr) auditor_->count_grant();
      rt().obs().metrics.counter("token.grants", site()).inc();
      // Recalls that raced ahead of this grant start their return now.
      const auto ret = site_tokens_.take_pending_recalls(txn.paths);
      if (is_leader() && !ret.empty()) propose_token_return(ret);
    }
    if (l2_role()) {
      // Requests parked on these keys need the token back from its new
      // owner; recall immediately (the grant decision raced the request).
      std::vector<TokenKey> wanted_keys;
      for (const auto& key : txn.paths) {
        if (broker_tokens_.recall_in_progress(key)) continue;
        // A parked request references the key in its missing set.
        for (const auto& p : broker_tokens_.parked()) {
          if (p.missing.count(key) != 0) {
            wanted_keys.push_back(key);
            break;
          }
        }
      }
      l2_send_recall(wanted_keys, grantee);
    }
  } else {  // kTokenReturned
    const SiteId returner = txn.origin_site;
    for (const auto& key : txn.paths) {
      broker_tokens_.set_owner(key, kNoSite);
      broker_tokens_.mark_recalling(key, false);
    }
    if (is_leader() && (returner == site() || l2_role())) {
      for (const auto& key : txn.paths) {
        rt().obs().events.record(now(), site(), obs::EventKind::kTokenReturn,
                                  name(), "", key,
                                  /*a=*/static_cast<std::uint64_t>(returner));
      }
    }
    if (returner == site()) {
      site_tokens_.apply_returned(txn.paths);
      if (auditor_ != nullptr) auditor_->count_return();
      rt().obs().metrics.counter("token.returns", site()).inc();
    }
    if (l2_role()) {
      for (const auto& key : txn.paths) {
        if (const auto it = recall_sent_.find(key); it != recall_sent_.end()) {
          rt().obs().metrics.histogram("token.recall_latency_us")
              .record(now() - it->second);
          recall_sent_.erase(it);
        }
      }
      std::vector<PendingRemote> ready;
      for (const auto& key : txn.paths) {
        auto r = broker_tokens_.unpark(key);
        for (auto& p : r) ready.push_back(std::move(p));
      }
      l2_serve_unparked(std::move(ready));
    }
  }
}

void Broker::audit_applied(const zk::Envelope& env) {
  if (auditor_ == nullptr) return;
  const store::Txn& txn = env.txn;
  switch (txn.type) {
    case store::TxnType::kCreate:
    case store::TxnType::kDelete:
    case store::TxnType::kSetData:
    case store::TxnType::kMulti:
      break;
    default:
      return;
  }
  const auto keys = tokens_for_txn(txn);

  // A txn committed locally under site tokens: this site must own them all.
  if (txn.origin_site == site() && txn.gseq == 0 && site() != l2_site_) {
    for (const auto& key : keys) {
      if (!site_tokens_.owns(key)) {
        auditor_->violation(now(), name() + ": local commit without token " + key);
      }
    }
  }
  // At the L2 site: a txn the L2 serialized itself requires the token home;
  // a replicated-up txn requires the token to (still) be at its origin.
  // Scoped to gseqs of our own hub epoch: followers learn of a handover
  // late (hub gossip travels between leaders), so after a failover the old
  // hub site's followers would otherwise audit the new hub's txns against
  // a token mirror from the previous regime.
  if (site() == l2_site_ && txn.gseq != 0 &&
      gseq_epoch(txn.gseq) == l2_epoch_) {
    if (txn.origin_zxid == kNoZxid) {
      for (const auto& key : keys) {
        if (broker_tokens_.owner(key) != kNoSite) {
          auditor_->violation(now(), name() + ": L2 served " + key +
                                         " while token is at site " +
                                         std::to_string(broker_tokens_.owner(key)));
        }
      }
      auditor_->count_remote_commit();
      rt().obs().metrics.counter("token.remote_commits", site()).inc();
    } else {
      for (const auto& key : keys) {
        if (broker_tokens_.owner(key) != txn.origin_site) {
          auditor_->violation(now(), name() + ": site " +
                                         std::to_string(txn.origin_site) +
                                         " wrote " + key + " without owning it");
        }
      }
    }
  }
}

std::vector<SessionId> Broker::pinned_sessions() const {
  // Non-L2 leaders never expire sessions homed elsewhere; the L2 leader
  // relies on heartbeat-carried touches instead (a dead site's sessions
  // then expire naturally).
  if (l2_role()) {
    if (!l2_reconciling_) return {};
    // A reconciling hub's liveness view is stale: it missed the
    // heartbeat-carried touches while it was not the hub, and expiring a
    // session is a proposal (it would mint a gseq mid-catch-up). Pin every
    // known session until reconciliation completes.
    std::vector<SessionId> pinned;
    pinned.reserve(session_home_.size());
    for (const auto& [session, home] : session_home_) pinned.push_back(session);
    return pinned;
  }
  std::vector<SessionId> pinned;
  for (const auto& [session, home] : session_home_) {
    if (home != site()) pinned.push_back(session);
  }
  return pinned;
}

}  // namespace wankeeper::wk

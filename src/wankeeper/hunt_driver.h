// Seed-hunt driver: the engine behind tools/seed_hunt and the determinism
// tests. Runs the canonical crash sweep or a named hostile-WAN scenario
// sweep over a seed range in one or both batching modes, dumps
// flight-recorder artifacts for failing cells, and (optionally) fans the
// range out across forked worker processes.
//
// Parallel semantics: each (seed, mode) cell is an independent seeded
// simulation sharing nothing with its neighbors, so splitting the range
// across processes cannot change any cell's outcome. Workers append their
// FAIL lines to per-chunk part files; the parent merges them in seed order,
// so `report.txt` is byte-identical whether the hunt ran with --parallel 1
// or --parallel 16. Processes (not threads) keep the thread-local frame
// arena and RNG state trivially isolated.
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define WK_HUNT_HAS_FORK 1
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#else
#define WK_HUNT_HAS_FORK 0
#endif

#include "obs/perfetto.h"
#include "wankeeper/sweep_harness.h"

namespace wankeeper::wk::hunt {

struct HuntOptions {
  std::uint64_t start = 1;
  std::uint64_t count = 50;
  int batching = 2;  // 0, 1, or 2 = both
  std::string scenario = "crash";
  std::string out_dir = ".";
  bool events = false;   // dump flight-recorder artifacts for passing cells too
  int parallel = 1;      // worker processes; 0 = hardware concurrency
  bool progress = true;  // stream progress lines to stdout (serial only)
};

struct HuntReport {
  std::uint64_t cells = 0;
  std::uint64_t failures = 0;
  // One line per failed cell, in (seed, mode) order; exactly what was
  // printed to stdout and written to <out>/report.txt.
  std::vector<std::string> fail_lines;

  bool ok() const { return failures == 0; }
};

inline std::string cell_stem(std::uint64_t seed, bool batching,
                             const std::string& out_dir) {
  return out_dir + "/seed" + std::to_string(seed) +
         (batching ? "_batched" : "_unbatched");
}

// The flight-recorder artifacts: the merged post-mortem event log, the
// Perfetto trace (spans + events, loadable in ui.perfetto.dev), and the
// token-ownership analytics distilled from the event stream. Returns the
// event-log path so the failure summary line can point straight at it.
inline std::string dump_events(wk::LoadedDeployment& d, const wk::SweepResult& r,
                               const std::string& stem) {
  const std::string events_path = stem + ".events.json";
  {
    std::ofstream f(events_path);
    f << (r.post_mortem_json.empty() ? d.sim.obs().events.to_json()
                                     : r.post_mortem_json);
  }
  {
    std::ofstream f(stem + ".trace.json");
    f << obs::perfetto_trace_json(d.sim.obs().tracer, d.sim.obs().events);
  }
  {
    std::ofstream f(stem + ".ownership.json");
    f << obs::OwnershipAnalytics::from_events(d.sim.obs().events.merged())
             .to_json();
  }
  return events_path;
}

// On failure, dump the full metrics registry plus the slowest traces, the
// scenario script that was running, and the consistency checker's violation
// witness (the minimal op subsequence) so the CI artifact carries everything
// needed to start debugging without a rerun.
inline void dump_artifacts(wk::LoadedDeployment& d, const wk::SweepResult& r,
                           std::uint64_t seed, bool batching,
                           const std::string& scenario_script,
                           const std::string& out_dir) {
  // ofstream fails silently on a missing directory — a CI failure losing
  // its only witness is the worst possible outcome, so create it here.
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string stem = cell_stem(seed, batching, out_dir);
  {
    std::ofstream f(stem + ".metrics.json");
    f << d.sim.obs().metrics.to_json() << "\n";
  }
  {
    std::ofstream f(stem + ".report.txt");
    f << "seed: " << seed << "\n"
      << "batching: " << (batching ? "on" : "off") << "\n"
      << "audit_clean: " << r.audit_clean << "\n"
      << "first_violation: " << r.first_violation << "\n"
      << "converged: " << r.converged << "\n"
      << "completed_total: " << r.completed_total << "\n"
      << "consistency_clean: " << r.consistency_clean << " ("
      << r.consistency_violations << " violation(s))\n"
      << "duplicate_mints: " << r.duplicate_mints << "\n"
      << "dueling_hubs: " << r.dueling_hubs << "\n";
    for (const std::string& reason : r.dump_reasons) {
      f << "dump_reason: " << reason << "\n";
    }
    if (!r.fork_evidence.empty()) {
      f << "\nsplit-brain fork evidence:\n" << r.fork_evidence;
    }
    if (!r.first_consistency_witness.empty()) {
      f << "\nconsistency witness (minimal op subsequence):\n"
        << r.first_consistency_witness;
    }
    if (!scenario_script.empty()) {
      f << "\nscenario script:\n" << scenario_script;
    }
    f << "\n"
      << obs::OwnershipAnalytics::from_events(d.sim.obs().events.merged())
             .table(5, d.sim.now());
    f << "\n" << d.sim.obs().tracer.breakdown_table() << "\n";
    for (const auto* t : d.sim.obs().tracer.slowest(20)) {
      f << d.sim.obs().tracer.format_trace(t->id) << "\n";
    }
  }
}

// Runs one (seed, mode) cell. On failure the FAIL summary line (without
// trailing newline) is appended to *fail_line and artifacts are dumped.
inline bool run_cell(std::uint64_t seed, bool batching,
                     const std::string& scenario, const std::string& out_dir,
                     bool events_always, std::string* fail_line) {
  wk::DeploymentConfig cfg;
  if (batching) cfg.enable_batching();
  std::unique_ptr<wk::LoadedDeployment> d;
  wk::SweepResult r;
  std::string script;
  if (scenario == "crash") {
    d = std::make_unique<wk::LoadedDeployment>(seed, cfg);
    r = wk::run_crash_sweep_on(*d, seed);
  } else {
    sim::Scenario sc = sim::make_scenario(scenario);
    cfg.sites = sc.sites();
    d = std::make_unique<wk::LoadedDeployment>(seed, cfg,
                                               sim::scenario_latency(sc));
    r = wk::run_scenario_sweep_on(*d, sc);
    script = sc.to_script();
  }
  if (r.ok()) {
    if (events_always) {
      std::error_code ec;
      std::filesystem::create_directories(out_dir, ec);
      dump_events(*d, r, cell_stem(seed, batching, out_dir));
    }
    return true;
  }
  dump_artifacts(*d, r, seed, batching, script, out_dir);
  const std::string events_path =
      dump_events(*d, r, cell_stem(seed, batching, out_dir));
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "FAIL seed %llu batching %d scenario %s: audit_clean=%d "
                "converged=%d consistency=%d dup_mints=%zu duel=%d "
                "completed=%llu%s%s events=%s",
                static_cast<unsigned long long>(seed), int(batching),
                scenario.c_str(), int(r.audit_clean), int(r.converged),
                int(r.consistency_clean), r.duplicate_mints,
                int(r.dueling_hubs),
                static_cast<unsigned long long>(r.completed_total),
                r.first_violation.empty() ? "" : " violation=",
                r.first_violation.c_str(), events_path.c_str());
  *fail_line = buf;
  return false;
}

inline std::vector<bool> hunt_modes(int batching) {
  std::vector<bool> modes;
  if (batching == 0 || batching == 2) modes.push_back(false);
  if (batching == 1 || batching == 2) modes.push_back(true);
  return modes;
}

// Serial walk of [start, start + count); the workhorse both for --parallel 1
// and for each forked worker's chunk.
inline HuntReport run_range(const HuntOptions& opt, std::uint64_t start,
                            std::uint64_t count) {
  const std::vector<bool> modes = hunt_modes(opt.batching);
  HuntReport rep;
  for (std::uint64_t s = start; s < start + count; ++s) {
    for (const bool batching : modes) {
      ++rep.cells;
      std::string line;
      if (!run_cell(s, batching, opt.scenario, opt.out_dir, opt.events,
                    &line)) {
        ++rep.failures;
        rep.fail_lines.push_back(line);
        std::printf("%s\n", line.c_str());
        std::printf("artifacts: %s.{metrics.json,report.txt}\n",
                    cell_stem(s, batching, opt.out_dir).c_str());
      }
    }
    if (opt.progress && (s - start + 1) % 10 == 0) {
      std::printf("progress: %llu/%llu seeds, %llu failure(s)\n",
                  static_cast<unsigned long long>(s - start + 1),
                  static_cast<unsigned long long>(count),
                  static_cast<unsigned long long>(rep.failures));
      std::fflush(stdout);
    }
  }
  return rep;
}

// Writes the merged <out>/report.txt: every FAIL line in (seed, mode) order
// followed by the summary line. Identical for serial and parallel runs.
inline void write_report(const HuntOptions& opt, const HuntReport& rep) {
  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);
  std::ofstream f(opt.out_dir + "/report.txt");
  for (const std::string& line : rep.fail_lines) f << line << "\n";
  f << "seed_hunt done: scenario " << opt.scenario << ", " << rep.cells
    << " cell(s), " << rep.failures << " failure(s)\n";
}

#if WK_HUNT_HAS_FORK
// Fork-per-chunk parallel driver. Each worker runs a contiguous slice of the
// seed range and appends its FAIL lines to <out>/.hunt_part_<i>; the parent
// merges the parts in slice order (== seed order) and deletes them. Workers
// share the artifact directory without coordination because every cell's
// files are keyed by (seed, mode).
inline HuntReport run_parallel(const HuntOptions& opt, int workers) {
  const std::uint64_t n = static_cast<std::uint64_t>(workers);
  const std::uint64_t base = opt.count / n;
  const std::uint64_t extra = opt.count % n;
  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);

  struct Chunk {
    std::uint64_t start = 0, count = 0;
    pid_t pid = -1;
    int status = 0;
    bool reaped = false;
    std::string part_path;

    std::string slice() const {
      return "[" + std::to_string(start) + ", " +
             std::to_string(start + count) + ")";
    }
  };
  std::vector<Chunk> chunks;
  std::uint64_t next = opt.start;
  for (std::uint64_t i = 0; i < n; ++i) {
    Chunk c;
    c.start = next;
    c.count = base + (i < extra ? 1 : 0);
    next += c.count;
    if (c.count == 0) continue;
    c.part_path = opt.out_dir + "/.hunt_part_" + std::to_string(i);
    chunks.push_back(c);
  }

  for (Chunk& c : chunks) {
    std::fflush(stdout);
    const pid_t pid = fork();
    if (pid == 0) {
      // Worker: quiet serial run of the slice, FAIL lines to the part file.
      HuntOptions sub = opt;
      sub.progress = false;
      std::freopen("/dev/null", "w", stdout);  // suppress streaming output
      const HuntReport part = run_range(sub, c.start, c.count);
      std::ofstream f(c.part_path);
      f << part.cells << " " << part.failures << "\n";
      for (const std::string& line : part.fail_lines) f << line << "\n";
      f.close();
      _exit(part.failures == 0 ? 0 : 1);
    }
    c.pid = pid;  // pid < 0 (fork failure) handled below: run inline
    if (pid < 0) {
      // An exception out of the inline slice would skip the reap barrier
      // below and leave every already-forked worker a zombie — contain it
      // and report the slice as failed instead.
      try {
        HuntOptions sub = opt;
        sub.progress = false;
        const HuntReport part = run_range(sub, c.start, c.count);
        std::ofstream f(c.part_path);
        f << part.cells << " " << part.failures << "\n";
        for (const std::string& line : part.fail_lines) f << line << "\n";
      } catch (const std::exception& e) {
        std::ofstream f(c.part_path);
        f << "0 1\n"
          << "FAIL inline slice for seeds " << c.slice()
          << " threw: " << e.what() << "\n";
      }
    }
  }

  // Reap barrier: collect EVERY worker before touching any part file, so a
  // bad early slice cannot leave the later workers as zombies.
  for (Chunk& c : chunks) {
    if (c.pid <= 0) continue;
    int status = 0;
    pid_t r;
    do {
      r = waitpid(c.pid, &status, 0);
    } while (r < 0 && errno == EINTR);
    if (r == c.pid) {
      c.status = status;
      c.reaped = true;
    }
  }

  HuntReport rep;
  for (Chunk& c : chunks) {
    // A crashed worker is itself a failure: propagate how it died into
    // report.txt so the range is never silently under-covered. Exit 0 is a
    // clean slice and exit 1 means cell failures the part file records;
    // anything else died before the part file was complete.
    bool worker_died = false;
    auto report_worker = [&](const std::string& how) {
      worker_died = true;
      rep.failures += 1;
      std::string line = "FAIL worker for seeds " + c.slice() + " " + how;
      std::printf("%s\n", line.c_str());
      rep.fail_lines.push_back(std::move(line));
    };
    if (c.pid > 0 && !c.reaped) {
      report_worker("could not be reaped");
    } else if (c.reaped && WIFSIGNALED(c.status)) {
      report_worker("killed by signal " + std::to_string(WTERMSIG(c.status)));
    } else if (c.reaped && WIFEXITED(c.status) && WEXITSTATUS(c.status) > 1) {
      report_worker("exited with status " +
                    std::to_string(WEXITSTATUS(c.status)));
    }
    std::ifstream f(c.part_path);
    std::uint64_t cells = 0, failures = 0;
    if (f >> cells >> failures) {
      rep.cells += cells;
      rep.failures += failures;
      std::string line;
      std::getline(f, line);  // eat the counts line's newline
      while (std::getline(f, line)) {
        if (!line.empty()) {
          rep.fail_lines.push_back(line);
          std::printf("%s\n", line.c_str());
        }
      }
    } else if (!worker_died) {
      report_worker("left no part file");
    }
    std::filesystem::remove(c.part_path, ec);
  }
  return rep;
}
#endif  // WK_HUNT_HAS_FORK

// Entry point: picks serial or parallel, writes the merged report, prints
// the summary line. Returns the report (failures == 0 means a green run).
inline HuntReport run_hunt(const HuntOptions& opt) {
  int workers = opt.parallel;
  if (workers == 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 1;
  }
  if (workers > 1 && static_cast<std::uint64_t>(workers) > opt.count) {
    workers = static_cast<int>(opt.count == 0 ? 1 : opt.count);
  }
  HuntReport rep;
#if WK_HUNT_HAS_FORK
  if (workers > 1) {
    rep = run_parallel(opt, workers);
  } else {
    rep = run_range(opt, opt.start, opt.count);
  }
#else
  // No fork on this platform: fall back to the serial walk.
  rep = run_range(opt, opt.start, opt.count);
#endif
  write_report(opt, rep);
  std::printf("seed_hunt done: scenario %s, %llu cell(s), %llu failure(s)\n",
              opt.scenario.c_str(), static_cast<unsigned long long>(rep.cells),
              static_cast<unsigned long long>(rep.failures));
  return rep;
}

}  // namespace wankeeper::wk::hunt

// Token-migration policies: when should the L2 broker hand a record's token
// to a requesting site? The paper's production rule is "r consecutive
// requests from the same site" with r=2 identified as the sweet spot
// (§II-B); Never/Always bound the tradeoff spectrum and the Markov policy
// implements the paper's speculative-prediction extension. The ablation
// bench abl_migration_policy sweeps these.
#pragma once

#include <memory>
#include <string>

#include "common/types.h"
#include "wankeeper/predictor.h"
#include "wankeeper/token.h"

namespace wankeeper::wk {

// Per-token access history the L2 broker feeds to the policy.
struct AccessHistory {
  SiteId last_site = kNoSite;
  std::uint32_t consecutive = 0;  // run length of last_site, incl. current
  std::uint64_t total_accesses = 0;
};

class MigrationPolicy {
 public:
  virtual ~MigrationPolicy() = default;
  // Called by L2 after serving an access to `key` on behalf of `site`
  // (history already updated to include this access). True => migrate the
  // token to `site`.
  virtual bool should_migrate(const TokenKey& key, SiteId site,
                              const AccessHistory& history) = 0;
  virtual const char* name() const = 0;
};

// The paper's rule: migrate after `r` consecutive accesses from one site.
class ConsecutivePolicy : public MigrationPolicy {
 public:
  explicit ConsecutivePolicy(std::uint32_t r = 2) : r_(r) {}
  bool should_migrate(const TokenKey&, SiteId site,
                      const AccessHistory& history) override {
    return history.last_site == site && history.consecutive >= r_;
  }
  const char* name() const override { return "consecutive"; }
  std::uint32_t r() const { return r_; }

 private:
  std::uint32_t r_;
};

// Pure centralized coordination: tokens never leave the broker.
class NeverMigratePolicy : public MigrationPolicy {
 public:
  bool should_migrate(const TokenKey&, SiteId, const AccessHistory&) override {
    return false;
  }
  const char* name() const override { return "never"; }
};

// Fully eager: first touch migrates (the other end of the spectrum).
class AlwaysMigratePolicy : public MigrationPolicy {
 public:
  bool should_migrate(const TokenKey&, SiteId, const AccessHistory&) override {
    return true;
  }
  const char* name() const override { return "always"; }
};

// Speculative policy from §II-B: migrate when the Markov model says the
// requesting site is likely (>= threshold) to be the next accessor, even on
// the first touch; falls back to the consecutive rule otherwise.
class PredictivePolicy : public MigrationPolicy {
 public:
  PredictivePolicy(double threshold = 0.6, std::uint32_t fallback_r = 2,
                   std::size_t window = 1024)
      : threshold_(threshold), fallback_(fallback_r), predictor_(window) {}

  bool should_migrate(const TokenKey& key, SiteId site,
                      const AccessHistory& history) override {
    predictor_.observe(key, site);
    // When the model has signal for this record, it decides alone: grant
    // iff the requester is likely to come back (this both migrates early
    // to a dominant site and *vetoes* grants to sites that touch a record
    // in short bursts, which the consecutive rule would thrash on).
    if (predictor_.predict_next_site(key).has_value()) {
      return predictor_.site_probability(key, site) >= threshold_;
    }
    return fallback_.should_migrate(key, site, history);
  }
  const char* name() const override { return "predictive"; }
  const MarkovPredictor& predictor() const { return predictor_; }

 private:
  double threshold_;
  ConsecutivePolicy fallback_;
  MarkovPredictor predictor_;
};

std::unique_ptr<MigrationPolicy> make_policy(const std::string& spec);

}  // namespace wankeeper::wk

#include "wankeeper/wan_transport.h"

namespace wankeeper::wk {

WanTransport::WanTransport(SiteId my_site, RawSend raw_send, Deliver deliver)
    : my_site_(my_site), raw_send_(std::move(raw_send)), deliver_(std::move(deliver)) {}

void WanTransport::open_streams(std::uint32_t stream_epoch) {
  epoch_ = stream_epoch;
  out_.clear();
}

void WanTransport::send(SiteId dest, sim::MessagePtr inner) {
  auto& stream = out_[dest];
  auto frame = std::make_shared<WanEnvelopeMsg>();
  frame->from_site = my_site_;
  frame->stream_epoch = epoch_;
  frame->seq = stream.next_seq++;
  frame->inner = std::move(inner);
  stream.unacked.emplace_back(frame->seq, frame);
  ++frames_sent_;
  raw_send_(dest, std::move(frame));
}

bool WanTransport::on_message(SiteId implied_from, const sim::MessagePtr& msg) {
  (void)implied_from;
  if (const auto* m = dynamic_cast<const WanEnvelopeMsg*>(msg.get())) {
    handle_envelope(*m);
    return true;
  }
  if (const auto* m = dynamic_cast<const WanAckMsg*>(msg.get())) {
    handle_ack(*m);
    return true;
  }
  return false;
}

void WanTransport::handle_envelope(const WanEnvelopeMsg& m) {
  auto& stream = in_[m.from_site];
  if (m.stream_epoch < stream.epoch) return;  // frame from a dead leadership
  if (m.stream_epoch > stream.epoch) {
    stream.epoch = m.stream_epoch;
    stream.expected = 1;
    stream.buffer.clear();
  }
  if (m.seq >= stream.expected) {
    stream.buffer.emplace(m.seq, m.inner);
    while (!stream.buffer.empty() &&
           stream.buffer.begin()->first == stream.expected) {
      const sim::MessagePtr inner = stream.buffer.begin()->second;
      stream.buffer.erase(stream.buffer.begin());
      ++stream.expected;
      deliver_(m.from_site, inner);
    }
  }
  // Cumulative ack (also re-acks duplicates so the sender stops resending).
  auto ack = std::make_shared<WanAckMsg>();
  ack->from_site = my_site_;
  ack->stream_epoch = stream.epoch;
  ack->cumulative = stream.expected - 1;
  raw_send_(m.from_site, std::move(ack));
}

void WanTransport::handle_ack(const WanAckMsg& m) {
  if (m.stream_epoch != epoch_) return;
  auto it = out_.find(m.from_site);
  if (it == out_.end()) return;
  auto& unacked = it->second.unacked;
  while (!unacked.empty() && unacked.front().first <= m.cumulative) {
    unacked.pop_front();
  }
}

void WanTransport::retransmit_tick(Time now, Time age) {
  for (auto& [dest, stream] : out_) {
    if (stream.unacked.empty()) continue;
    if (now - stream.last_send < age) continue;
    stream.last_send = now;
    // Resend a bounded window; FIFO reassembly tolerates duplicates.
    std::size_t budget = 1024;
    for (const auto& [seq, frame] : stream.unacked) {
      if (budget-- == 0) break;
      ++retransmits_;
      raw_send_(dest, frame);
    }
  }
}

std::size_t WanTransport::unacked(SiteId dest) const {
  const auto it = out_.find(dest);
  return it == out_.end() ? 0 : it->second.unacked.size();
}

void WanTransport::reset() {
  out_.clear();
  in_.clear();
}

}  // namespace wankeeper::wk

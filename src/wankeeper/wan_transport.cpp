#include "wankeeper/wan_transport.h"

namespace wankeeper::wk {

WanTransport::WanTransport(SiteId my_site, RawSend raw_send, Deliver deliver,
                           WanBatchOptions batch, ScheduleFlush schedule_flush)
    : my_site_(my_site),
      raw_send_(std::move(raw_send)),
      deliver_(std::move(deliver)),
      batch_(batch),
      schedule_flush_(std::move(schedule_flush)) {}

void WanTransport::open_streams(std::uint32_t stream_epoch) {
  epoch_ = stream_epoch;
  out_.clear();  // drops in-flight frames AND partial batches of the old epoch
}

std::uint32_t WanTransport::stream_gen(SiteId dest) const {
  const auto it = gen_.find(dest);
  return it == gen_.end() ? 1 : it->second;
}

void WanTransport::reset_stream(SiteId dest) {
  gen_[dest] = stream_gen(dest) + 1;
  out_.erase(dest);
  ++stream_resets_;
}

void WanTransport::send(SiteId dest, sim::MessagePtr inner) {
  auto& stream = out_[dest];
  if (stream.pending.empty()) stream.pending_first_seq = stream.next_seq;
  stream.pending_bytes += inner->wire_size();
  stream.pending.push_back(std::move(inner));
  ++stream.next_seq;
  if (batch_.max_msgs <= 1 || stream.pending.size() >= batch_.max_msgs ||
      stream.pending_bytes >= batch_.max_bytes) {
    flush_stream(dest, stream);
  } else if (stream.pending.size() == 1 && schedule_flush_) {
    schedule_flush_(batch_.max_delay);
  }
}

void WanTransport::flush(SiteId dest) {
  const auto it = out_.find(dest);
  if (it != out_.end()) flush_stream(dest, it->second);
}

void WanTransport::flush_all() {
  for (auto& [dest, stream] : out_) flush_stream(dest, stream);
}

void WanTransport::flush_stream(SiteId dest, OutStream& stream) {
  if (stream.pending.empty()) return;
  auto frame = sim::make_mutable_message<WanEnvelopeMsg>();
  frame->from_site = my_site_;
  frame->from_node = from_node_;
  frame->stream_epoch = epoch_;
  frame->stream_gen = stream_gen(dest);
  frame->seq = stream.pending_first_seq;
  frame->inners = std::move(stream.pending);
  stream.pending.clear();
  stream.pending_bytes = 0;
  stream.unacked.emplace_back(frame->last_seq(), frame);
  stream.unacked_msgs += frame->inners.size();
  ++frames_sent_;
  messages_sent_ += frame->inners.size();
  if (on_frame_) on_frame_(frame->inners.size());
  raw_send_(dest, std::move(frame));
}

bool WanTransport::on_message(SiteId implied_from, const sim::MessagePtr& msg) {
  (void)implied_from;
  if (const auto* m = sim::msg_cast<WanEnvelopeMsg>(msg.get())) {
    handle_envelope(*m);
    return true;
  }
  if (const auto* m = sim::msg_cast<WanAckMsg>(msg.get())) {
    handle_ack(*m);
    return true;
  }
  return false;
}

void WanTransport::handle_envelope(const WanEnvelopeMsg& m) {
  auto& stream = in_[m.from_site];
  // Streams are ordered by (epoch, gen); a frame from an older pair is from
  // a dead leadership or an abandoned generation.
  if (m.stream_epoch < stream.epoch ||
      (m.stream_epoch == stream.epoch && m.stream_gen < stream.gen)) {
    return;
  }
  if (m.stream_epoch > stream.epoch ||
      (m.stream_epoch == stream.epoch && m.stream_gen > stream.gen)) {
    stream.epoch = m.stream_epoch;
    stream.gen = m.stream_gen;
    stream.expected = 1;
    stream.buffer.clear();
  }
  for (std::size_t i = 0; i < m.inners.size(); ++i) {
    const std::uint64_t seq = m.seq + i;
    if (seq >= stream.expected) stream.buffer.emplace(seq, m.inners[i]);
  }
  // Draining hands each inner message to the broker, where a fault-point
  // observer may crash this node synchronously — on_crash() resets the
  // transport and frees every in-stream, so re-resolve the stream after
  // every delivery and stop (no ack: this incarnation is dead) if it
  // vanished under us.
  for (;;) {
    auto it = in_.find(m.from_site);
    if (it == in_.end()) return;
    InStream& s = it->second;
    if (s.buffer.empty() || s.buffer.begin()->first != s.expected) {
      // One cumulative ack per frame (also re-acks duplicates so the
      // sender stops resending).
      auto ack = sim::make_mutable_message<WanAckMsg>();
      ack->from_site = my_site_;
      ack->from_node = from_node_;
      ack->stream_epoch = s.epoch;
      ack->stream_gen = s.gen;
      ack->cumulative = s.expected - 1;
      raw_send_(m.from_site, std::move(ack));
      return;
    }
    const sim::MessagePtr inner = s.buffer.begin()->second;
    s.buffer.erase(s.buffer.begin());
    ++s.expected;
    deliver_(m.from_site, inner);
  }
}

void WanTransport::handle_ack(const WanAckMsg& m) {
  if (m.stream_epoch != epoch_ || m.stream_gen != stream_gen(m.from_site)) {
    return;  // ack for a dead stream; its frames are already abandoned
  }
  auto it = out_.find(m.from_site);
  if (it == out_.end()) return;
  auto& stream = it->second;
  // A frame is retired only once its last message is covered; a partial-
  // frame ack (possible after loss) keeps the whole frame for retransmit.
  while (!stream.unacked.empty() && stream.unacked.front().first <= m.cumulative) {
    const auto* frame =
        static_cast<const WanEnvelopeMsg*>(stream.unacked.front().second.get());
    stream.unacked_msgs -= frame->inners.size();
    stream.unacked.pop_front();
  }
}

void WanTransport::retransmit_tick(Time now, Time age) {
  for (auto& [dest, stream] : out_) {
    // Backstop for partial batches when no flush timer is wired.
    if (!stream.pending.empty() && now - stream.last_send >= age) {
      flush_stream(dest, stream);
      stream.last_send = now;
      continue;
    }
    if (stream.unacked.empty()) continue;
    if (now - stream.last_send < age) continue;
    stream.last_send = now;
    // Resend a bounded window of whole frames; FIFO reassembly tolerates
    // duplicates.
    std::size_t budget = 1024;
    for (const auto& [last_seq, frame] : stream.unacked) {
      if (budget-- == 0) break;
      ++retransmits_;
      raw_send_(dest, frame);
    }
  }
}

std::size_t WanTransport::unacked(SiteId dest) const {
  const auto it = out_.find(dest);
  if (it == out_.end()) return 0;
  return it->second.pending.size() + it->second.unacked_msgs;
}

void WanTransport::reset() {
  out_.clear();
  in_.clear();
  gen_.clear();
}

}  // namespace wankeeper::wk

#include "wankeeper/deployment.h"

namespace wankeeper::wk {

Deployment::Deployment(sim::Simulator& sim, sim::Network& net,
                       DeploymentConfig config, TokenAuditor* auditor)
    : sim_(sim), net_(net), config_(config),
      directory_(std::make_shared<SiteDirectory>()) {
  directory_->servers_by_site.resize(config_.sites);
  for (std::size_t s = 0; s < config_.sites; ++s) {
    std::vector<zk::NodeSpec> specs(config_.nodes_per_site,
                                    zk::NodeSpec{static_cast<SiteId>(s), false});
    auto factory = [this, auditor](rt::Runtime& rt, const std::string& name,
                                   const zk::ServerOptions& opts) {
      return std::unique_ptr<zk::Server>(
          new Broker(rt, name, opts, config_.wan, directory_, auditor));
    };
    ensembles_.push_back(std::make_unique<zk::Ensemble>(
        sim_, net_, specs, config_.server, config_.peer, factory,
        "wk-s" + std::to_string(s)));
    auto& ens = *ensembles_.back();
    for (std::size_t i = 0; i < ens.size(); ++i) {
      directory_->servers_by_site[s].push_back(ens.server_id(i));
    }
  }
}

Broker& Deployment::broker(SiteId s, std::size_t node) {
  return static_cast<Broker&>(site_ensemble(s).server(node));
}

Broker* Deployment::site_leader(SiteId s) {
  auto& ens = site_ensemble(s);
  const std::size_t i = ens.leader_index();
  return i == zk::Ensemble::npos ? nullptr : &static_cast<Broker&>(ens.server(i));
}

Broker* Deployment::l2_broker() {
  for (std::size_t s = 0; s < sites(); ++s) {
    Broker* leader = site_leader(static_cast<SiteId>(s));
    if (leader != nullptr && leader->l2_role()) return leader;
  }
  return nullptr;
}

bool Deployment::wait_ready(Time max_wait) {
  const Time deadline = sim_.now() + max_wait;
  while (sim_.now() < deadline) {
    Broker* l2 = l2_broker();
    // A reconciling hub is not ready: it defers every write until its
    // replica covers the majority frontier.
    bool ready = l2 != nullptr && !l2->l2_reconciling();
    for (std::size_t s = 0; ready && s < sites(); ++s) {
      Broker* leader = site_leader(static_cast<SiteId>(s));
      if (leader == nullptr || (!leader->l2_role() && !leader->registered_)) {
        ready = false;
      }
    }
    if (ready) return true;
    sim_.run_for(100 * kMillisecond);
  }
  return false;
}

bool Deployment::converged() const {
  std::uint64_t digest = 0;
  bool first = true;
  for (const auto& ens : ensembles_) {
    for (std::size_t i = 0; i < ens->size(); ++i) {
      const auto& server = const_cast<zk::Ensemble&>(*ens).server(i);
      if (!server.up()) continue;
      const std::uint64_t d = server.tree().digest();
      if (first) {
        digest = d;
        first = false;
      } else if (d != digest) {
        return false;
      }
    }
  }
  return true;
}

std::unique_ptr<zk::Client> Deployment::make_client(const std::string& name,
                                                    SiteId s, SessionId session,
                                                    std::size_t node) {
  return site_ensemble(s).make_client(name, s, node, session);
}

void Deployment::crash_site_leader(SiteId s) {
  auto& ens = site_ensemble(s);
  const std::size_t i = ens.leader_index();
  if (i != zk::Ensemble::npos) ens.crash_node(i);
}

void Deployment::crash_site(SiteId s) {
  sim_.obs().events.record(sim_.now(), s, obs::EventKind::kSiteLeave,
                           "deployment", "", /*key=*/"",
                           /*a=*/static_cast<std::uint64_t>(s));
  auto& ens = site_ensemble(s);
  for (std::size_t i = 0; i < ens.size(); ++i) ens.crash_node(i);
}

void Deployment::restart_site(SiteId s) {
  sim_.obs().events.record(sim_.now(), s, obs::EventKind::kSiteRejoin,
                           "deployment", "", /*key=*/"",
                           /*a=*/static_cast<std::uint64_t>(s));
  auto& ens = site_ensemble(s);
  for (std::size_t i = 0; i < ens.size(); ++i) ens.restart_node(i);
}

}  // namespace wankeeper::wk

// Reliable FIFO streams between site leaders over the lossy simulated WAN —
// the paper's "WAN Transport component handles all WAN communication".
//
// Semantics: per (sender-site -> receiver-site) stream, messages are
// delivered to the receiver's handler exactly once and in send order, as
// long as both leaderships persist. A new leader (new zab epoch) opens a
// fresh stream; messages of dead streams are dropped and their content is
// re-derived by the registration/frontier resync protocol one level up.
//
// The class is passive (no actor of its own): the owning Broker feeds it
// received envelopes/acks, drains its outgoing queue, and drives its
// retransmission timer.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "common/types.h"
#include "sim/message.h"
#include "wankeeper/messages.h"

namespace wankeeper::wk {

class WanTransport {
 public:
  // raw_send(dest_site, frame): hand a frame to the network (the Broker
  // resolves the destination site's current leader server).
  // deliver(src_site, inner): an in-order, deduplicated protocol message.
  using RawSend = std::function<void(SiteId, sim::MessagePtr)>;
  using Deliver = std::function<void(SiteId, const sim::MessagePtr&)>;

  WanTransport(SiteId my_site, RawSend raw_send, Deliver deliver);

  // New leadership at this site: abandon previous outgoing streams.
  void open_streams(std::uint32_t stream_epoch);
  std::uint32_t stream_epoch() const { return epoch_; }

  // Queue `inner` for reliable FIFO delivery to `dest`'s leader.
  void send(SiteId dest, sim::MessagePtr inner);

  // Feed incoming frames. Returns true if the message was consumed.
  bool on_message(SiteId implied_from, const sim::MessagePtr& msg);

  // Retransmit unacked frames older than `age`; call periodically.
  void retransmit_tick(Time now, Time age);

  std::size_t unacked(SiteId dest) const;
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t retransmits() const { return retransmits_; }

  void reset();  // crash: all stream state is volatile

 private:
  struct OutStream {
    std::uint64_t next_seq = 1;
    std::deque<std::pair<std::uint64_t, sim::MessagePtr>> unacked;  // (seq, frame)
    Time last_send = 0;
  };
  struct InStream {
    std::uint32_t epoch = 0;
    std::uint64_t expected = 1;
    std::map<std::uint64_t, sim::MessagePtr> buffer;  // out-of-order inners
  };

  void handle_envelope(const WanEnvelopeMsg& m);
  void handle_ack(const WanAckMsg& m);

  SiteId my_site_;
  RawSend raw_send_;
  Deliver deliver_;
  std::uint32_t epoch_ = 0;
  std::map<SiteId, OutStream> out_;
  std::map<SiteId, InStream> in_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t retransmits_ = 0;
};

}  // namespace wankeeper::wk

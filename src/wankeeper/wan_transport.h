// Reliable FIFO streams between site leaders over the lossy simulated WAN —
// the paper's "WAN Transport component handles all WAN communication".
//
// Semantics: per (sender-site -> receiver-site) stream, messages are
// delivered to the receiver's handler exactly once and in send order, as
// long as both leaderships persist. A new leader (new zab epoch) opens a
// fresh stream; messages of dead streams are dropped and their content is
// re-derived by the registration/frontier resync protocol one level up.
//
// Streams are identified by (stream_epoch, stream_gen), compared
// lexicographically. The epoch is the sender's zab epoch (new leadership =
// new stream). The generation handles the mirror-image failure: when the
// *receiver's* leadership changes, its in-stream state (expected seq) is
// gone while the sender keeps transmitting mid-stream sequence numbers —
// without a reset those frames buffer forever and the stream wedges. The
// sender learns of the receiver's new leadership from the zab epoch
// gossiped in WAN heartbeats/registration and calls reset_stream(dest),
// which abandons the old in-flight frames under a bumped generation; the
// receiver accepts the higher (epoch, gen) pair and restarts from seq 1.
//
// Frame coalescing: with batch.max_msgs > 1, consecutive messages to the
// same destination share one WanEnvelopeMsg frame (each inner keeps its own
// sequence number). A partial batch is flushed when it reaches max_msgs or
// max_bytes, when the owner-driven flush timer fires (see ScheduleFlush),
// or on the retransmit tick as a backstop. Retransmission, acking, and
// epoch bumps all operate on whole frames; receiver-side reassembly is
// per-message, so FIFO and exactly-once are unchanged by batching.
//
// The class is passive (no actor of its own): the owning Broker feeds it
// received envelopes/acks, drains its outgoing queue, and drives its
// retransmission and flush timers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/types.h"
#include "sim/message.h"
#include "wankeeper/messages.h"

namespace wankeeper::wk {

struct WanBatchOptions {
  std::size_t max_msgs = 1;           // >1 enables coalescing
  std::size_t max_bytes = 16 * 1024;  // flush when pending payload reaches this
  Time max_delay = 500 * kMicrosecond;  // flush deadline after first pending msg
};

class WanTransport {
 public:
  // raw_send(dest_site, frame): hand a frame to the network (the Broker
  // resolves the destination site's current leader server).
  // deliver(src_site, inner): an in-order, deduplicated protocol message.
  // schedule_flush(delay): ask the owner to call flush_all() after `delay`
  // (the passive transport cannot arm timers itself). Optional; without it
  // partial batches ride the owner's retransmit tick.
  using RawSend = std::function<void(SiteId, sim::MessagePtr)>;
  using Deliver = std::function<void(SiteId, const sim::MessagePtr&)>;
  using ScheduleFlush = std::function<void(Time)>;
  // Observes every frame put on the wire (first send only, not retransmits)
  // with its inner-message count; the Broker hooks metrics here.
  using FrameObserver = std::function<void(std::size_t)>;

  WanTransport(SiteId my_site, RawSend raw_send, Deliver deliver,
               WanBatchOptions batch = {}, ScheduleFlush schedule_flush = {});

  void set_frame_observer(FrameObserver cb) { on_frame_ = std::move(cb); }

  // Identity stamped into every frame/ack so receivers can learn which node
  // currently leads this site (frames may reach them bounced via followers).
  void set_from_node(NodeId node) { from_node_ = node; }

  // New leadership at this site: abandon previous outgoing streams
  // (including any partial batches not yet framed).
  void open_streams(std::uint32_t stream_epoch);
  std::uint32_t stream_epoch() const { return epoch_; }

  // The receiver's leadership changed (observed via gossiped zab epochs):
  // abandon the in-flight frames to `dest` and restart the stream under a
  // bumped generation. The dropped messages are re-derived one level up
  // (registration / frontier resync), exactly as for an epoch bump.
  void reset_stream(SiteId dest);
  std::uint32_t stream_gen(SiteId dest) const;
  std::uint64_t stream_resets() const { return stream_resets_; }

  // Queue `inner` for reliable FIFO delivery to `dest`'s leader.
  void send(SiteId dest, sim::MessagePtr inner);

  // Frame and transmit any partial batch.
  void flush(SiteId dest);
  void flush_all();

  // Feed incoming frames. Returns true if the message was consumed.
  bool on_message(SiteId implied_from, const sim::MessagePtr& msg);

  // Retransmit unacked frames older than `age`; call periodically. Also
  // flushes partial batches as a backstop.
  void retransmit_tick(Time now, Time age);

  // Backlog to `dest` in messages (pending + framed-but-unacked), not
  // frames, so shedding thresholds mean the same thing in both modes.
  std::size_t unacked(SiteId dest) const;
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t retransmits() const { return retransmits_; }

  void reset();  // crash: all stream state is volatile

 private:
  struct OutStream {
    std::uint64_t next_seq = 1;
    // Coalescing buffer; sequence numbers already assigned: pending[i] has
    // seq pending_first_seq + i.
    std::vector<sim::MessagePtr> pending;
    std::uint64_t pending_first_seq = 0;
    std::size_t pending_bytes = 0;
    std::deque<std::pair<std::uint64_t, sim::MessagePtr>> unacked;  // (last seq, frame)
    std::size_t unacked_msgs = 0;
    Time last_send = 0;
  };
  struct InStream {
    std::uint32_t epoch = 0;
    std::uint32_t gen = 0;
    std::uint64_t expected = 1;
    std::map<std::uint64_t, sim::MessagePtr> buffer;  // out-of-order inners
  };

  void flush_stream(SiteId dest, OutStream& stream);
  void handle_envelope(const WanEnvelopeMsg& m);
  void handle_ack(const WanAckMsg& m);

  SiteId my_site_;
  NodeId from_node_ = kNoNode;
  RawSend raw_send_;
  Deliver deliver_;
  WanBatchOptions batch_;
  ScheduleFlush schedule_flush_;
  FrameObserver on_frame_;
  std::uint32_t epoch_ = 0;
  std::map<SiteId, OutStream> out_;
  std::map<SiteId, InStream> in_;
  // Outgoing generation per destination; survives open_streams so the pair
  // (epoch_, gen_[dest]) never repeats within one broker incarnation.
  std::map<SiteId, std::uint32_t> gen_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t stream_resets_ = 0;
};

}  // namespace wankeeper::wk

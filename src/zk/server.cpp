#include "zk/server.h"

#include <algorithm>

#include "common/logging.h"
#include "store/paths.h"

namespace wankeeper::zk {

const char* op_name(OpCode op) {
  switch (op) {
    case OpCode::kCreateSession: return "createSession";
    case OpCode::kCloseSession: return "closeSession";
    case OpCode::kCreate: return "create";
    case OpCode::kDelete: return "delete";
    case OpCode::kSetData: return "setData";
    case OpCode::kGetData: return "getData";
    case OpCode::kExists: return "exists";
    case OpCode::kGetChildren: return "getChildren";
    case OpCode::kSync: return "sync";
    case OpCode::kMulti: return "multi";
    case OpCode::kPing: return "ping";
  }
  return "?";
}

std::vector<std::uint8_t> Envelope::encode() const {
  BufferWriter w;
  // Rough upper bound on the common single-op layout (fixed header plus
  // path and data); multi/grant txns just fall back to vector growth.
  w.reserve(96 + txn.path.size() + txn.data.size());
  w.i64(session);
  w.i64(xid);
  w.u64(trace);
  txn.serialize(w);
  return w.take();
}

namespace {
Envelope decode_reader(BufferReader r) {
  Envelope e;
  e.session = r.i64();
  e.xid = r.i64();
  e.trace = r.u64();
  e.txn = store::Txn::deserialize(r);
  return e;
}
}  // namespace

Envelope Envelope::decode(const std::vector<std::uint8_t>& bytes) {
  return decode_reader(BufferReader(bytes));
}

Envelope Envelope::decode(const common::Bytes& bytes) {
  return decode_reader(BufferReader(bytes.data(), bytes.size()));
}

Server::Server(rt::Runtime& rt, std::string name, ServerOptions opts)
    : Actor(rt, std::move(name)), opts_(opts) {}

void Server::start() {
  set_timer(opts_.session_check_interval, [this]() { session_expiry_tick(); });
  set_timer(opts_.touch_relay_interval, [this]() { touch_relay_tick(); });
}

void Server::on_crash() {
  rt().obs().events.record(now(), site(), obs::EventKind::kNodeCrash, name());
  // Connections, queues, watches, and projections are volatile. The tree
  // models the on-disk snapshot at the zab delivered frontier and survives.
  local_sessions_.clear();
  watches_ = store::WatchManager{};
  outstanding_.clear();
  expiring_.clear();
  session_tracker_ = SessionTracker{};
  leader_server_ = kNoNode;
  busy_until_ = 0;
}

void Server::on_restart() {
  rt().obs().events.record(now(), site(), obs::EventKind::kNodeRestart,
                            name());
  set_timer(opts_.session_check_interval, [this]() { session_expiry_tick(); });
  set_timer(opts_.touch_relay_interval, [this]() { touch_relay_tick(); });
}

// ------------------------------------------------------------ CPU model

Time Server::reserve_cpu(Time service) {
  const Time start = std::max(now(), busy_until_);
  busy_until_ = start + service;
  return busy_until_ - now();
}

// --------------------------------------------------------- role changes

void Server::on_leading(std::uint32_t epoch) {
  (void)epoch;
  leader_server_ = id();
  // The new leader's session tracker starts from the sessions recorded in
  // the replicated state (createSession txns it has applied). We rebuild it
  // lazily: any session that pings will be touched; sessions are seeded by
  // apply_committed as createSession txns arrive. Give everyone a grace
  // touch so a leadership change doesn't mass-expire sessions.
  // (ZooKeeper similarly resets expiry buckets on leader startup.)
  session_tracker_grace();
  became_leader();
}

void Server::session_tracker_grace() {
  for (SessionId s : tracked_sessions_) {
    session_tracker_.add(s, opts_.default_session_timeout, now());
  }
}

void Server::on_following(NodeId leader_peer, std::uint32_t epoch) {
  (void)epoch;
  const bool was_leader = leader_server_ == id();
  const auto it = peer_to_server_.find(leader_peer);
  leader_server_ = it == peer_to_server_.end() ? kNoNode : it->second;
  if (was_leader) lost_leadership();
  fail_in_flight_writes(store::Rc::kUnavailable);
}

void Server::on_looking() {
  const bool was_leader = leader_server_ == id();
  leader_server_ = kNoNode;
  if (was_leader) lost_leadership();
  fail_in_flight_writes(store::Rc::kUnavailable);
}

void Server::fail_in_flight_writes(store::Rc rc) {
  for (SessionId sid : local_sessions_.ids()) {
    auto* ls = local_sessions_.find(sid);
    if (ls == nullptr || !ls->in_flight || !ls->in_flight_is_write) continue;
    ClientReply reply;
    reply.session = sid;
    reply.xid = ls->in_flight_xid;
    reply.op = ls->in_flight_op;
    reply.rc = rc;
    reply_to_session(sid, reply);
    complete_request(sid);
  }
}

// ------------------------------------------------------------ messaging

void Server::on_message(NodeId from, const sim::MessagePtr& msg) {
  if (auto* m = sim::msg_cast<ClientRequest>(msg.get())) {
    handle_client_request(from, *m);
    return;
  }
  if (auto* m = sim::msg_cast<ForwardRequestMsg>(msg.get())) {
    handle_forward(from, *m);
    return;
  }
  if (auto* m = sim::msg_cast<RequestErrorMsg>(msg.get())) {
    handle_request_error(*m);
    return;
  }
  if (auto* m = sim::msg_cast<SessionTouchMsg>(msg.get())) {
    handle_session_touch(*m);
    return;
  }
}

void Server::handle_client_request(NodeId from, const ClientRequest& req) {
  if (req.op.op == OpCode::kPing) {
    session_tracker_.touch(req.session, now());
    pinged_sessions_.insert(req.session);
    return;
  }
  if (req.op.op == OpCode::kCreateSession) {
    local_sessions_.ensure(req.session, from,
                           req.session_timeout > 0 ? req.session_timeout
                                                   : opts_.default_session_timeout);
  }
  auto* ls = local_sessions_.find(req.session);
  if (ls == nullptr) {
    ClientReply reply;
    reply.session = req.session;
    reply.xid = req.xid;
    reply.op = req.op.op;
    reply.rc = store::Rc::kSessionExpired;
    rt().send(id(), from, sim::make_message<ClientReply>(reply));
    return;
  }
  ls->client = from;
  ls->queue.push_back(req);
  rt().obs().tracer.open(req.trace, obs::SpanKind::kEnqueue, site(), name(),
                          now());
  pump_session(req.session);
}

void Server::pump_session(SessionId session) {
  auto* ls = local_sessions_.find(session);
  if (ls == nullptr || ls->in_flight || ls->queue.empty()) return;
  ClientRequest req = std::move(ls->queue.front());
  ls->queue.pop_front();
  ls->in_flight = true;
  ls->in_flight_xid = req.xid;
  ls->in_flight_is_write = is_write_op(req.op.op);
  ls->in_flight_op = req.op.op;
  ls->in_flight_since = now();
  const Xid xid = req.xid;
  const Time delay = reserve_cpu(opts_.service_time + opts_.head_overhead);
  set_timer(delay, [this, session, req = std::move(req)]() {
    execute_request(session, req);
  });
  // Watchdog: if the request is still in flight after the timeout (lost
  // forward, partition, dead leader), fail it so the client can retry.
  set_timer(opts_.request_timeout,
            [this, session, xid]() { watch_in_flight_timeout(session, xid); });
}

void Server::watch_in_flight_timeout(SessionId session, Xid xid) {
  auto* ls = local_sessions_.find(session);
  if (ls == nullptr || !ls->in_flight || ls->in_flight_xid != xid) return;
  ClientReply reply;
  reply.session = session;
  reply.xid = xid;
  reply.op = ls->in_flight_op;
  reply.rc = store::Rc::kUnavailable;
  reply_to_session(session, reply);
  complete_request(session);
}

void Server::execute_request(SessionId session, const ClientRequest& req) {
  auto* ls = local_sessions_.find(session);
  if (ls == nullptr) return;
  rt().obs().tracer.close(req.trace, obs::SpanKind::kEnqueue, site(), now());
  if (ls->in_flight_is_write) {
    ++stats_.writes_routed;
    route_write(req, id());
  } else {
    serve_read(session, req);
  }
}

void Server::serve_read(SessionId session, const ClientRequest& req) {
  ++stats_.reads_served;
  ClientReply reply;
  reply.session = session;
  reply.xid = req.xid;
  reply.op = req.op.op;
  reply.zxid = tree_.last_applied();
  switch (req.op.op) {
    case OpCode::kGetData: {
      reply.rc = tree_.get_data(req.op.path, &reply.data, &reply.stat);
      if (req.watch && reply.rc == store::Rc::kOk) {
        watches_.add_data_watch(req.op.path, session);
      }
      break;
    }
    case OpCode::kExists: {
      const bool found = tree_.exists(req.op.path, &reply.stat);
      reply.rc = found ? store::Rc::kOk : store::Rc::kNoNode;
      // exists() watches fire on creation too, so register regardless.
      if (req.watch) watches_.add_data_watch(req.op.path, session);
      break;
    }
    case OpCode::kGetChildren: {
      reply.rc = tree_.get_children(req.op.path, &reply.children);
      if (req.watch && reply.rc == store::Rc::kOk) {
        watches_.add_child_watch(req.op.path, session);
      }
      break;
    }
    default:
      reply.rc = store::Rc::kBadArguments;
  }
  reply_to_session(session, reply);
  complete_request(session);
}

void Server::complete_request(SessionId session) {
  auto* ls = local_sessions_.find(session);
  if (ls == nullptr) return;
  ls->in_flight = false;
  pump_session(session);
}

void Server::reply_to_session(SessionId session, const ClientReply& reply) {
  const auto* ls = local_sessions_.find(session);
  if (ls == nullptr || ls->client == kNoNode) return;
  rt().send(id(), ls->client, sim::make_message<ClientReply>(reply));
}

// ------------------------------------------------------------- write path

void Server::route_write(const ClientRequest& req, NodeId origin_server) {
  if (is_leader()) {
    prep_and_propose(req, origin_server);
    return;
  }
  if (leader_server_ == kNoNode) {
    send_request_error(origin_server, req.session, req.xid, store::Rc::kUnavailable);
    return;
  }
  forward_to(leader_server_, req, origin_server);
}

void Server::forward_to(NodeId server, const ClientRequest& req, NodeId origin_server) {
  ++stats_.forwards;
  auto m = sim::make_mutable_message<ForwardRequestMsg>();
  m->origin_server = origin_server;
  m->request = req;
  rt().send(id(), server, std::move(m));
}

void Server::handle_forward(NodeId from, const ForwardRequestMsg& m) {
  (void)from;
  if (!is_leader()) {
    // Stale routing: bounce an error so the origin fails fast and the
    // client retries against the new topology.
    send_request_error(m.origin_server, m.request.session, m.request.xid,
                       store::Rc::kUnavailable);
    return;
  }
  const Time delay = reserve_cpu(opts_.service_time);
  const ForwardRequestMsg copy = m;
  set_timer(delay, [this, copy]() {
    if (!is_leader()) {
      send_request_error(copy.origin_server, copy.request.session,
                         copy.request.xid, store::Rc::kUnavailable);
      return;
    }
    route_write(copy.request, copy.origin_server);
  });
}

void Server::prep_and_propose(const ClientRequest& req, NodeId origin_server) {
  PrepResult prep = prep_request(req);
  if (prep.rc != store::Rc::kOk) {
    send_request_error(origin_server, req.session, req.xid, prep.rc);
    return;
  }
  Envelope env;
  env.session = req.session;
  env.xid = req.xid;
  env.trace = req.trace;
  env.txn = std::move(prep.txn);
  const Zxid zxid = propose_envelope(env, std::move(prep.overlay));
  if (zxid == kNoZxid) {
    send_request_error(origin_server, req.session, req.xid, store::Rc::kUnavailable);
  }
}

Zxid Server::propose_envelope(Envelope env, Overlay overlay) {
  if (peer_ == nullptr || !peer_->leading()) return kNoZxid;
  decorate_txn(env.txn);
  const Zxid zxid = peer_->propose(env.encode());
  if (zxid == kNoZxid) return kNoZxid;
  // Closed when this replica applies the commit (zab quorum + delivery).
  rt().obs().tracer.open(env.trace, obs::SpanKind::kZabPropose, site(), name(),
                          now());
  for (auto& [path, rec] : overlay) {
    rec.zxid = zxid;
    outstanding_[path] = rec;
  }
  return zxid;
}

void Server::send_request_error(NodeId origin_server, SessionId session, Xid xid,
                                store::Rc rc) {
  ++stats_.request_errors;
  if (origin_server == id()) {
    RequestErrorMsg m;
    m.session = session;
    m.xid = xid;
    m.rc = rc;
    handle_request_error(m);
    return;
  }
  auto m = sim::make_mutable_message<RequestErrorMsg>();
  m->session = session;
  m->xid = xid;
  m->rc = rc;
  rt().send(id(), origin_server, std::move(m));
}

void Server::handle_request_error(const RequestErrorMsg& m) {
  auto* ls = local_sessions_.find(m.session);
  if (ls == nullptr || !ls->in_flight || ls->in_flight_xid != m.xid) return;
  ClientReply reply;
  reply.session = m.session;
  reply.xid = m.xid;
  reply.op = ls->in_flight_op;
  reply.rc = m.rc;
  reply_to_session(m.session, reply);
  complete_request(m.session);
}

// ------------------------------------------------------------------ prep

Server::ChangeRecord Server::project(const std::string& path,
                                     const Overlay& overlay) const {
  if (const auto it = overlay.find(path); it != overlay.end()) return it->second;
  if (const auto it = outstanding_.find(path); it != outstanding_.end()) {
    return it->second;
  }
  ChangeRecord rec;
  store::Stat stat;
  if (tree_.exists(path, &stat)) {
    rec.exists = true;
    rec.version = stat.version;
    rec.cversion = stat.cversion;
    rec.ephemeral_owner = stat.ephemeral_owner;
    rec.child_count = stat.num_children;
  }
  return rec;
}

store::Rc Server::prep_create(const Op& op, SessionId session, Overlay& overlay,
                              store::Txn* txn) {
  if (!store::valid_path(op.path) || op.path == "/") return store::Rc::kInvalidPath;
  const std::string parent = store::parent_path(op.path);
  ChangeRecord pp = project(parent, overlay);
  if (!pp.exists) return store::Rc::kNoNode;
  if (pp.ephemeral_owner != kNoSession) return store::Rc::kNoChildrenForEphemerals;

  std::string final_path = op.path;
  if (op.sequential) {
    final_path = op.path + [&] {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%010d", pp.cversion);
      return std::string(buf);
    }();
  }
  ChangeRecord cp = project(final_path, overlay);
  if (cp.exists) return store::Rc::kNodeExists;

  txn->type = store::TxnType::kCreate;
  txn->path = final_path;
  txn->data = op.data;
  txn->ephemeral = op.ephemeral;
  txn->session = session;
  txn->version = 0;
  txn->parent_cversion = pp.cversion + 1;

  pp.cversion += 1;
  pp.child_count += 1;
  overlay[parent] = pp;
  cp.exists = true;
  cp.version = 0;
  cp.cversion = 0;
  cp.child_count = 0;
  cp.ephemeral_owner = op.ephemeral ? session : kNoSession;
  overlay[final_path] = cp;
  return store::Rc::kOk;
}

store::Rc Server::prep_delete(const Op& op, Overlay& overlay, store::Txn* txn) {
  if (!store::valid_path(op.path) || op.path == "/") return store::Rc::kInvalidPath;
  ChangeRecord cp = project(op.path, overlay);
  if (!cp.exists) return store::Rc::kNoNode;
  if (op.version >= 0 && cp.version != op.version) return store::Rc::kBadVersion;
  if (cp.child_count > 0) return store::Rc::kNotEmpty;
  const std::string parent = store::parent_path(op.path);
  ChangeRecord pp = project(parent, overlay);

  txn->type = store::TxnType::kDelete;
  txn->path = op.path;
  txn->version = op.version < 0 ? 0x7fffffff : op.version;
  txn->parent_cversion = pp.cversion + 1;

  cp.exists = false;
  overlay[op.path] = cp;
  pp.cversion += 1;
  pp.child_count = std::max(0, pp.child_count - 1);
  overlay[parent] = pp;
  return store::Rc::kOk;
}

store::Rc Server::prep_set_data(const Op& op, Overlay& overlay, store::Txn* txn) {
  if (!store::valid_path(op.path)) return store::Rc::kInvalidPath;
  ChangeRecord cp = project(op.path, overlay);
  if (!cp.exists) return store::Rc::kNoNode;
  if (op.version >= 0 && cp.version != op.version) return store::Rc::kBadVersion;

  txn->type = store::TxnType::kSetData;
  txn->path = op.path;
  txn->data = op.data;
  txn->version = cp.version + 1;

  cp.version += 1;
  overlay[op.path] = cp;
  return store::Rc::kOk;
}

store::Rc Server::prep_one(const Op& op, SessionId session, Overlay& overlay,
                           store::Txn* txn) {
  switch (op.op) {
    case OpCode::kCreate:
      return prep_create(op, session, overlay, txn);
    case OpCode::kDelete:
      return prep_delete(op, overlay, txn);
    case OpCode::kSetData:
      return prep_set_data(op, overlay, txn);
    default:
      return store::Rc::kBadArguments;
  }
}

Server::PrepResult Server::prep_request(const ClientRequest& req) {
  PrepResult out;
  switch (req.op.op) {
    case OpCode::kCreateSession: {
      out.txn.type = store::TxnType::kCreateSession;
      out.txn.session = req.session;
      out.txn.session_timeout =
          req.session_timeout > 0 ? req.session_timeout : opts_.default_session_timeout;
      return out;
    }
    case OpCode::kCloseSession: {
      out.txn.type = store::TxnType::kCloseSession;
      out.txn.session = req.session;
      // Project the implied ephemeral deletions.
      for (const auto& path : tree_.ephemerals_of(req.session)) {
        ChangeRecord cp = project(path, out.overlay);
        cp.exists = false;
        out.overlay[path] = cp;
      }
      return out;
    }
    case OpCode::kSync: {
      out.txn.type = store::TxnType::kNoop;
      return out;
    }
    case OpCode::kMulti: {
      out.txn.type = store::TxnType::kMulti;
      for (const auto& op : req.multi_ops) {
        store::Txn sub;
        out.rc = prep_one(op, req.session, out.overlay, &sub);
        if (out.rc != store::Rc::kOk) {
          out.overlay.clear();
          return out;
        }
        out.txn.ops.push_back(std::move(sub));
      }
      return out;
    }
    default: {
      out.rc = prep_one(req.op, req.session, out.overlay, &out.txn);
      return out;
    }
  }
}

// ----------------------------------------------------------------- apply

void Server::on_commit(const zab::LogEntry& entry) {
  Envelope env = Envelope::decode(entry.payload);
  env.txn.zxid = entry.zxid;
  apply_committed(env);
}

void Server::apply_committed(const Envelope& env) {
  ++stats_.txns_applied;
  // Commits landing at the same instant arrived as one group-commit round;
  // the burst size histogram makes batching visible at the apply path.
  if (now() != last_apply_at_) {
    if (apply_burst_ > 0) {
      apply_burst_hist_.at(rt().obs().metrics, "zk.apply_burst", site())
          .record(static_cast<Time>(apply_burst_));
    }
    apply_burst_ = 0;
    last_apply_at_ = now();
  }
  ++apply_burst_;
  const store::Txn& txn = env.txn;
  // Pairs with the proposing leader's open; a no-op on the other replicas.
  rt().obs().tracer.close(env.trace, obs::SpanKind::kZabPropose, site(), now());

  std::vector<std::string> closed_ephemerals;
  if (txn.type == store::TxnType::kCloseSession) {
    closed_ephemerals = tree_.ephemerals_of(txn.session);
  }

  const store::Rc rc = tree_.apply(txn, now());
  clean_outstanding(txn.zxid);

  // Session lifecycle.
  if (txn.type == store::TxnType::kCreateSession) {
    tracked_sessions_.insert(txn.session);
    session_tracker_.add(txn.session,
                         txn.session_timeout > 0 ? txn.session_timeout
                                                 : opts_.default_session_timeout,
                         now());
  } else if (txn.type == store::TxnType::kCloseSession) {
    tracked_sessions_.erase(txn.session);
    session_tracker_.remove(txn.session);
    expiring_.erase(txn.session);
    watches_.remove_session(txn.session);
  }

  // Watches.
  for (const auto& fire : watches_.on_txn(txn, closed_ephemerals)) {
    const auto* ls = local_sessions_.find(fire.session);
    if (ls == nullptr || ls->client == kNoNode) continue;
    ++stats_.watch_notifications;
    auto m = sim::make_mutable_message<WatchNotifyMsg>();
    m->session = fire.session;
    m->path = fire.path;
    m->event = fire.event;
    rt().send(id(), ls->client, std::move(m));
  }

  // Reply if this server owns the originating request.
  auto* ls = local_sessions_.find(env.session);
  if (ls != nullptr && ls->in_flight && ls->in_flight_xid == env.xid) {
    rt().obs().tracer.point(env.trace, obs::SpanKind::kApply, site(), name(),
                             now());
    ClientReply reply;
    reply.session = env.session;
    reply.xid = env.xid;
    reply.op = ls->in_flight_op;
    reply.rc = rc;
    reply.zxid = txn.zxid;
    if (txn.type == store::TxnType::kCreate) reply.created_path = txn.path;
    if (txn.type == store::TxnType::kSetData) {
      reply.stat.version = txn.version;
      reply.stat.mzxid = txn.zxid;
    }
    if (txn.type == store::TxnType::kMulti && !txn.ops.empty()) {
      // Surface the first created path (lock recipes need it).
      for (const auto& sub : txn.ops) {
        if (sub.type == store::TxnType::kCreate) {
          reply.created_path = sub.path;
          break;
        }
      }
    }
    reply_to_session(env.session, reply);
    complete_request(env.session);
    if (ls->in_flight_op == OpCode::kCloseSession) {
      local_sessions_.remove(env.session);
    }
  }

  post_apply(env, rc);
}

void Server::post_apply(const Envelope& env, store::Rc rc) {
  (void)env;
  (void)rc;
}

void Server::clean_outstanding(Zxid zxid) {
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    if (it->second.zxid != kNoZxid && it->second.zxid <= zxid) {
      it = outstanding_.erase(it);
    } else {
      ++it;
    }
  }
}

// --------------------------------------------------------------- sessions

void Server::handle_session_touch(const SessionTouchMsg& m) {
  for (SessionId s : m.sessions) session_tracker_.touch(s, now());
}

void Server::touch_sessions(const std::vector<SessionId>& sessions) {
  for (SessionId s : sessions) session_tracker_.touch(s, now());
}

void Server::session_expiry_tick() {
  if (is_leader()) {
    const auto pinned = pinned_sessions();
    for (SessionId s : session_tracker_.expired(now(), pinned)) {
      if (expiring_.count(s) != 0) continue;
      expiring_.insert(s);
      WK_DEBUG(now(), name(), "expiring session " + std::to_string(s));
      Envelope env;
      env.session = s;
      env.xid = -1;  // not tied to a client request
      env.txn.type = store::TxnType::kCloseSession;
      env.txn.session = s;
      propose_envelope(env, {});
    }
  }
  set_timer(opts_.session_check_interval, [this]() { session_expiry_tick(); });
}

void Server::touch_relay_tick() {
  // Relay liveness of locally-attached sessions to the leader.
  if (!is_leader() && leader_server_ != kNoNode) {
    auto ids = local_sessions_.ids();
    std::vector<SessionId> live;
    for (SessionId s : ids) {
      if (pinged_sessions_.count(s) != 0) live.push_back(s);
    }
    if (!live.empty()) {
      auto m = sim::make_mutable_message<SessionTouchMsg>();
      m->sessions = std::move(live);
      rt().send(id(), leader_server_, std::move(m));
    }
  }
  pinged_sessions_.clear();
  set_timer(opts_.touch_relay_interval, [this]() { touch_relay_tick(); });
}

std::vector<std::string> Server::touched_paths(const ClientRequest& req) {
  std::vector<std::string> out;
  auto add = [&out](const Op& op) {
    switch (op.op) {
      case OpCode::kCreate:
      case OpCode::kDelete:
      case OpCode::kSetData:
        out.push_back(op.path);
        break;
      default:
        break;
    }
  };
  if (req.op.op == OpCode::kMulti) {
    for (const auto& op : req.multi_ops) add(op);
  } else {
    add(req.op);
  }
  return out;
}

}  // namespace wankeeper::zk

#include "zk/session.h"

#include <algorithm>

namespace wankeeper::zk {

void SessionTracker::add(SessionId session, Time timeout, Time now) {
  sessions_[session] = Entry{timeout, now};
}

void SessionTracker::touch(SessionId session, Time now) {
  const auto it = sessions_.find(session);
  if (it != sessions_.end()) it->second.last_touch = now;
}

void SessionTracker::remove(SessionId session) { sessions_.erase(session); }

bool SessionTracker::known(SessionId session) const {
  return sessions_.count(session) != 0;
}

std::vector<SessionId> SessionTracker::expired(
    Time now, const std::vector<SessionId>& pinned) const {
  std::vector<SessionId> out;
  for (const auto& [id, entry] : sessions_) {
    if (now - entry.last_touch <= entry.timeout) continue;
    if (std::find(pinned.begin(), pinned.end(), id) != pinned.end()) continue;
    out.push_back(id);
  }
  return out;
}

LocalSession& LocalSessions::ensure(SessionId session, NodeId client, Time timeout) {
  auto& s = sessions_[session];
  s.client = client;
  if (timeout > 0) s.timeout = timeout;
  return s;
}

LocalSession* LocalSessions::find(SessionId session) {
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? nullptr : &it->second;
}

const LocalSession* LocalSessions::find(SessionId session) const {
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? nullptr : &it->second;
}

void LocalSessions::remove(SessionId session) { sessions_.erase(session); }

std::vector<SessionId> LocalSessions::ids() const {
  std::vector<SessionId> out;
  out.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) out.push_back(id);
  return out;
}

}  // namespace wankeeper::zk

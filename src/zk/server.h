// A ZooKeeper-like server replica: client sessions and FIFO request queues,
// the leader's request-processor pipeline (prep with outstanding-change
// projection -> Zab proposal -> commit -> apply/reply), local reads, watch
// delivery, session expiry, and follower/observer write forwarding.
//
// The request-processor chain of the paper's Figure 3 maps onto:
//   head (route_write, virtual)  -> WanKeeper's token processor overrides it
//   prep (prep_request)          -> ZooKeeper's PrepRequestProcessor
//   proposal (propose_txn)       -> ProposalRequestProcessor / Zab
//   commit+final (on_commit)     -> CommitProcessor + FinalRequestProcessor
//
// Each Server is co-located with a zab::Peer (same machine, zero-latency
// method calls between them); the pair is one "node".
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"
#include "sim/actor.h"
#include "store/datatree.h"
#include "store/txn.h"
#include "store/watch.h"
#include "zab/peer.h"
#include "zk/messages.h"
#include "zk/session.h"

namespace wankeeper::zk {

// What travels inside a Zab payload: the originating request identity plus
// the prepared transaction. session/xid route the commit back to the client.
struct Envelope {
  SessionId session = kNoSession;
  Xid xid = 0;
  obs::TraceId trace = obs::kNoTrace;  // rides the wire so traces cross sites
  store::Txn txn;

  std::vector<std::uint8_t> encode() const;
  static Envelope decode(const std::vector<std::uint8_t>& bytes);
  static Envelope decode(const common::Bytes& bytes);
};

struct ServerOptions {
  Time service_time = 150 * kMicrosecond;   // CPU per client-facing request
  Time head_overhead = 0;  // extra head-processor cost on every request (WanKeeper)
  Time session_check_interval = 500 * kMillisecond;
  Time touch_relay_interval = 1 * kSecond;
  Time request_timeout = 10 * kSecond;      // in-flight op -> kUnavailable
  Time default_session_timeout = 6 * kSecond;
};

struct ServerStats {
  std::uint64_t reads_served = 0;
  std::uint64_t writes_routed = 0;
  std::uint64_t txns_applied = 0;
  std::uint64_t forwards = 0;
  std::uint64_t watch_notifications = 0;
  std::uint64_t request_errors = 0;
};

class Server : public sim::Actor, public zab::StateMachine {
 public:
  Server(rt::Runtime& rt, std::string name, ServerOptions opts = {});

  // --- wiring (before the deployment starts) ---
  void attach_peer(zab::Peer& peer) { peer_ = &peer; }
  // zab peer NodeId -> server NodeId, for routing forwards to the leader.
  void set_peer_server_map(std::map<NodeId, NodeId> m) { peer_to_server_ = std::move(m); }
  void set_site(SiteId site) { site_ = site; }

  // --- introspection ---
  const store::DataTree& tree() const { return tree_; }
  bool is_leader() const { return peer_ != nullptr && peer_->leading(); }
  NodeId leader_server() const { return leader_server_; }
  SiteId site() const { return site_; }
  const ServerStats& stats() const { return stats_; }
  zab::Peer* peer() { return peer_; }

  // --- zab::StateMachine ---
  void on_commit(const zab::LogEntry& entry) override;
  void on_leading(std::uint32_t epoch) override;
  void on_following(NodeId leader_peer, std::uint32_t epoch) override;
  void on_looking() override;

  // --- sim::Actor ---
  void start() override;
  void on_message(NodeId from, const sim::MessagePtr& msg) override;

 protected:
  void on_crash() override;
  void on_restart() override;

  // ---- extension points for WanKeeper ----
  // Head of the write pipeline: decides local-commit vs forward. Base
  // implementation: leader preps+proposes, everyone else forwards to the
  // leader server. `origin_server` is where the owning session lives.
  virtual void route_write(const ClientRequest& req, NodeId origin_server);
  // Called after a committed txn has been applied (and any reply sent).
  virtual void post_apply(const Envelope& env, store::Rc rc);
  // Sessions the leader must not expire (alive elsewhere in the WAN).
  virtual std::vector<SessionId> pinned_sessions() const { return {}; }
  // Role-change hooks beyond the zab callbacks.
  virtual void became_leader() {}
  virtual void lost_leadership() {}
  // Stamp deployment-level fields onto a txn as it enters the pipeline
  // (WanKeeper: origin site, L2 global sequence). Called by
  // propose_envelope for every proposal, including session expiry.
  virtual void decorate_txn(store::Txn& txn) { (void)txn; }

  // ---- building blocks shared with the WanKeeper broker ----
  struct ChangeRecord {
    Zxid zxid = kNoZxid;  // pending proposal that produces this state
    bool exists = false;
    std::int32_t version = 0;
    std::int32_t cversion = 0;
    SessionId ephemeral_owner = kNoSession;
    std::int32_t child_count = 0;
  };
  using Overlay = std::map<std::string, ChangeRecord>;

  struct PrepResult {
    store::Rc rc = store::Rc::kOk;
    store::Txn txn;
    Overlay overlay;  // projected changes to record if proposed
  };

  // Validate a request against projected state and build its txn.
  PrepResult prep_request(const ClientRequest& req);
  // Propose an envelope through Zab (after decorate_txn); records `overlay`
  // as outstanding. Returns the assigned zxid or kNoZxid when not leading.
  Zxid propose_envelope(Envelope env, Overlay overlay);
  // Refresh liveness of sessions known via WAN heartbeats (WanKeeper L2).
  void touch_sessions(const std::vector<SessionId>& sessions);
  // prep + propose + error handling; used by route_write implementations.
  void prep_and_propose(const ClientRequest& req, NodeId origin_server);

  void send_request_error(NodeId origin_server, SessionId session, Xid xid,
                          store::Rc rc);
  void forward_to(NodeId server, const ClientRequest& req, NodeId origin_server);
  void reply_to_session(SessionId session, const ClientReply& reply);

  // Paths touched by a write request (token lookups + validation).
  static std::vector<std::string> touched_paths(const ClientRequest& req);

  const ServerOptions& options() const { return opts_; }
  store::DataTree& mutable_tree() { return tree_; }
  LocalSessions& local_sessions() { return local_sessions_; }
  ServerStats& mutable_stats() { return stats_; }

  // CPU model: returns the delay until this request's service slot.
  Time reserve_cpu(Time service);

 private:
  ChangeRecord project(const std::string& path, const Overlay& overlay) const;
  store::Rc prep_create(const Op& op, SessionId session, Overlay& overlay,
                        store::Txn* txn);
  store::Rc prep_delete(const Op& op, Overlay& overlay, store::Txn* txn);
  store::Rc prep_set_data(const Op& op, Overlay& overlay, store::Txn* txn);
  store::Rc prep_one(const Op& op, SessionId session, Overlay& overlay,
                     store::Txn* txn);

  void handle_client_request(NodeId from, const ClientRequest& req);
  void handle_forward(NodeId from, const ForwardRequestMsg& m);
  void handle_request_error(const RequestErrorMsg& m);
  void handle_session_touch(const SessionTouchMsg& m);

  void pump_session(SessionId session);
  void execute_request(SessionId session, const ClientRequest& req);
  void serve_read(SessionId session, const ClientRequest& req);
  void complete_request(SessionId session);
  void fail_in_flight_writes(store::Rc rc);
  void watch_in_flight_timeout(SessionId session, Xid xid);

  void apply_committed(const Envelope& env);
  void clean_outstanding(Zxid zxid);

  void session_expiry_tick();
  void touch_relay_tick();
  void session_tracker_grace();

  ServerOptions opts_;
  zab::Peer* peer_ = nullptr;
  std::map<NodeId, NodeId> peer_to_server_;
  SiteId site_ = kNoSite;

  store::DataTree tree_;
  store::WatchManager watches_;
  LocalSessions local_sessions_;
  SessionTracker session_tracker_;  // meaningful on the leader
  std::set<SessionId> expiring_;    // closeSession proposed, not yet committed
  std::set<SessionId> tracked_sessions_;  // all sessions alive in replicated state
  std::set<SessionId> pinged_sessions_;   // pinged since last touch relay

  // Leader projection state (ZooKeeper's outstandingChanges).
  Overlay outstanding_;

  NodeId leader_server_ = kNoNode;
  Time busy_until_ = 0;
  Time last_apply_at_ = -1;      // commit-burst tracking (zk.apply_burst)
  std::uint64_t apply_burst_ = 0;
  obs::CachedHistogram apply_burst_hist_;
  ServerStats stats_;
};

}  // namespace wankeeper::zk

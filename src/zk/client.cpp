#include "zk/client.h"

namespace wankeeper::zk {

Client::Client(rt::Runtime& rt, std::string name, SessionId session)
    : Actor(rt, std::move(name)), session_(session) {}

void Client::connect(NodeId server, Callback cb, Time session_timeout) {
  server_ = server;
  connected_ = true;
  ClientRequest req;
  req.op.op = OpCode::kCreateSession;
  req.session_timeout = session_timeout;
  send_request(std::move(req), std::move(cb));
  if (!ping_armed_) {
    ping_armed_ = true;
    set_timer(ping_interval_, [this]() { ping_tick(); });
  }
}

void Client::reconnect(Callback cb) {
  if (server_ == kNoNode) return;
  connect(server_, std::move(cb));
}

void Client::ping_tick() {
  if (!connected_) {
    ping_armed_ = false;
    return;
  }
  ClientRequest req;
  req.session = session_;
  req.op.op = OpCode::kPing;
  req.xid = 0;
  rt().send(id(), server_, sim::make_message<ClientRequest>(req));
  set_timer(ping_interval_, [this]() { ping_tick(); });
}

void Client::send_request(ClientRequest req, Callback cb) {
  req.session = session_;
  req.xid = next_xid_++;
  auto& tracer = rt().obs().tracer;
  if (tracer.enabled()) {
    std::string what = op_name(req.op.op);
    if (!req.op.path.empty()) what += " " + req.op.path;
    req.trace = tracer.begin(std::move(what), rt().site_of(id()), now());
    pending_trace_[req.xid] = req.trace;
  }
  if (cb) pending_[req.xid] = std::move(cb);
  rt().send(id(), server_, sim::make_message<ClientRequest>(std::move(req)));
}

void Client::create(const std::string& path, std::vector<std::uint8_t> data,
                    bool ephemeral, bool sequential, Callback cb) {
  ClientRequest req;
  req.op.op = OpCode::kCreate;
  req.op.path = path;
  req.op.data = std::move(data);
  req.op.ephemeral = ephemeral;
  req.op.sequential = sequential;
  send_request(std::move(req), std::move(cb));
}

void Client::create(const std::string& path, const std::string& data,
                    bool ephemeral, bool sequential, Callback cb) {
  create(path, std::vector<std::uint8_t>(data.begin(), data.end()), ephemeral,
         sequential, std::move(cb));
}

void Client::remove(const std::string& path, std::int32_t version, Callback cb) {
  ClientRequest req;
  req.op.op = OpCode::kDelete;
  req.op.path = path;
  req.op.version = version;
  send_request(std::move(req), std::move(cb));
}

void Client::set_data(const std::string& path, std::vector<std::uint8_t> data,
                      std::int32_t version, Callback cb) {
  ClientRequest req;
  req.op.op = OpCode::kSetData;
  req.op.path = path;
  req.op.data = std::move(data);
  req.op.version = version;
  send_request(std::move(req), std::move(cb));
}

void Client::set_data(const std::string& path, const std::string& data,
                      std::int32_t version, Callback cb) {
  set_data(path, std::vector<std::uint8_t>(data.begin(), data.end()), version,
           std::move(cb));
}

void Client::get_data(const std::string& path, bool watch, Callback cb) {
  ClientRequest req;
  req.op.op = OpCode::kGetData;
  req.op.path = path;
  req.watch = watch;
  send_request(std::move(req), std::move(cb));
}

void Client::exists_node(const std::string& path, bool watch, Callback cb) {
  ClientRequest req;
  req.op.op = OpCode::kExists;
  req.op.path = path;
  req.watch = watch;
  send_request(std::move(req), std::move(cb));
}

void Client::get_children(const std::string& path, bool watch, Callback cb) {
  ClientRequest req;
  req.op.op = OpCode::kGetChildren;
  req.op.path = path;
  req.watch = watch;
  send_request(std::move(req), std::move(cb));
}

void Client::sync(Callback cb) {
  ClientRequest req;
  req.op.op = OpCode::kSync;
  send_request(std::move(req), std::move(cb));
}

void Client::multi(std::vector<Op> ops, Callback cb) {
  ClientRequest req;
  req.op.op = OpCode::kMulti;
  req.multi_ops = std::move(ops);
  send_request(std::move(req), std::move(cb));
}

void Client::close(Callback cb) {
  ClientRequest req;
  req.op.op = OpCode::kCloseSession;
  connected_ = false;
  send_request(std::move(req), std::move(cb));
}

void Client::on_message(NodeId from, const sim::MessagePtr& msg) {
  (void)from;
  if (const auto* m = sim::msg_cast<ClientReply>(msg.get())) {
    if (const auto tit = pending_trace_.find(m->xid); tit != pending_trace_.end()) {
      rt().obs().tracer.end(tit->second, now());
      pending_trace_.erase(tit);
    }
    const auto it = pending_.find(m->xid);
    if (it == pending_.end()) return;
    Callback cb = std::move(it->second);
    pending_.erase(it);
    ++ops_completed_;
    ClientResult result;
    result.rc = m->rc;
    result.data = m->data;
    result.stat = m->stat;
    result.children = m->children;
    result.created_path = m->created_path;
    result.zxid = m->zxid;
    if (cb) cb(result);
    return;
  }
  if (const auto* m = sim::msg_cast<WatchNotifyMsg>(msg.get())) {
    if (watch_handler_) watch_handler_(m->path, m->event);
    return;
  }
}

}  // namespace wankeeper::zk

#include "zk/ensemble.h"

#include <stdexcept>

namespace wankeeper::zk {

Ensemble::Ensemble(sim::Simulator& sim, sim::Network& net,
                   std::vector<NodeSpec> specs, ServerOptions server_opts,
                   zab::PeerOptions peer_opts, ServerFactory server_factory,
                   const std::string& name_prefix)
    : sim_(sim), net_(net) {
  if (!server_factory) {
    server_factory = [](rt::Runtime& rt, const std::string& name,
                       const ServerOptions& opts) {
      return std::make_unique<Server>(rt, name, opts);
    };
  }
  nodes_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Node node;
    node.spec = specs[i];
    const std::string base = name_prefix + "-" + std::to_string(i);
    node.server = server_factory(sim_, base, server_opts);
    node.peer = std::make_unique<zab::Peer>(sim_, base + "-zab", *node.server,
                                            peer_opts);
    nodes_.push_back(std::move(node));
  }
  // Register servers first, then peers in spec order: the last voter peer
  // gets the highest NodeId and wins the initial election.
  for (auto& node : nodes_) {
    // Wire the site before add_node: registration invokes start(), which
    // may capture it (the WanKeeper broker binds its transport).
    node.server->set_site(node.spec.site);
    node.server_id = net_.add_node(*node.server, node.spec.site);
  }
  std::vector<NodeId> voters;
  std::vector<NodeId> observers;
  std::map<NodeId, NodeId> peer_to_server;
  for (auto& node : nodes_) {
    node.peer_id = net_.add_node(*node.peer, node.spec.site);
    peer_to_server[node.peer_id] = node.server_id;
    (node.spec.observer ? observers : voters).push_back(node.peer_id);
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto& node = nodes_[i];
    node.server->attach_peer(*node.peer);
    node.server->set_peer_server_map(peer_to_server);
    // Priority rises with spec order: the last voter is the intended leader.
    node.peer->boot(voters, observers, node.spec.observer,
                    static_cast<std::int32_t>(i));
  }
}

std::size_t Ensemble::node_at_site(SiteId site) const {
  std::size_t fallback = npos;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].spec.site != site) continue;
    if (!nodes_[i].spec.observer) return i;
    if (fallback == npos) fallback = i;
  }
  if (fallback == npos) throw std::invalid_argument("no node at site");
  return fallback;
}

std::size_t Ensemble::leader_index() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].peer->leading()) return i;
  }
  return npos;
}

Server* Ensemble::leader_server() {
  const std::size_t i = leader_index();
  return i == npos ? nullptr : nodes_[i].server.get();
}

void Ensemble::crash_node(std::size_t i) {
  nodes_[i].server->crash();
  nodes_[i].peer->crash();
}

void Ensemble::restart_node(std::size_t i) {
  nodes_[i].server->restart();
  nodes_[i].peer->restart();
}

bool Ensemble::wait_for_leader(Time max_wait) {
  const Time deadline = sim_.now() + max_wait;
  while (sim_.now() < deadline) {
    if (leader_index() != npos) return true;
    sim_.run_for(50 * kMillisecond);
  }
  return leader_index() != npos;
}

bool Ensemble::converged() const {
  std::uint64_t digest = 0;
  bool first = true;
  for (const auto& node : nodes_) {
    if (!node.server->up()) continue;
    const std::uint64_t d = node.server->tree().digest();
    if (first) {
      digest = d;
      first = false;
    } else if (d != digest) {
      return false;
    }
  }
  return true;
}

std::unique_ptr<Client> Ensemble::make_client(const std::string& name,
                                              SiteId site, std::size_t node,
                                              SessionId session) {
  auto client = std::make_unique<Client>(sim_, name, session);
  net_.add_node(*client, site);
  client->connect(nodes_[node].server_id);
  return client;
}

}  // namespace wankeeper::zk

// Deployment builder for a single ZooKeeper-like ensemble: constructs the
// co-located (server, zab peer) pairs across sites, wires ids, boots
// elections, and offers test/bench conveniences (wait for leader, crash a
// node, check replica convergence, make clients).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"
#include "zk/client.h"
#include "zk/server.h"

namespace wankeeper::zk {

struct NodeSpec {
  SiteId site = 0;
  bool observer = false;
};

class Ensemble {
 public:
  // Creates one (server, peer) pair per spec. The *last voter in spec
  // order* wins the initial election (empty logs tie-break on id), so put
  // the intended leader site's voter last.
  // `server_factory` lets WanKeeper substitute its broker subclass.
  using ServerFactory = std::function<std::unique_ptr<Server>(
      rt::Runtime&, const std::string& name, const ServerOptions&)>;

  Ensemble(sim::Simulator& sim, sim::Network& net, std::vector<NodeSpec> specs,
           ServerOptions server_opts = {}, zab::PeerOptions peer_opts = {},
           ServerFactory server_factory = {}, const std::string& name_prefix = "zk");

  std::size_t size() const { return nodes_.size(); }
  Server& server(std::size_t i) { return *nodes_[i].server; }
  zab::Peer& peer(std::size_t i) { return *nodes_[i].peer; }
  NodeId server_id(std::size_t i) const { return nodes_[i].server_id; }
  SiteId site_of_node(std::size_t i) const { return nodes_[i].spec.site; }
  bool is_observer(std::size_t i) const { return nodes_[i].spec.observer; }

  // Index of a server at `site` (first match), preferring voters.
  std::size_t node_at_site(SiteId site) const;

  // Current established leader's index, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t leader_index() const;
  Server* leader_server();

  void crash_node(std::size_t i);
  void restart_node(std::size_t i);

  // Runs the simulation until a leader is established (or deadline).
  bool wait_for_leader(Time max_wait = 10 * kSecond);
  // Runs until all up-to-date replicas report identical tree digests.
  bool converged() const;

  // Builds a client at `site`, connected to node index `node`.
  std::unique_ptr<Client> make_client(const std::string& name, SiteId site,
                                      std::size_t node, SessionId session);

  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return net_; }

 private:
  struct Node {
    NodeSpec spec;
    std::unique_ptr<Server> server;
    std::unique_ptr<zab::Peer> peer;
    NodeId server_id = kNoNode;
    NodeId peer_id = kNoNode;
  };

  sim::Simulator& sim_;
  sim::Network& net_;
  std::vector<Node> nodes_;
};

}  // namespace wankeeper::zk

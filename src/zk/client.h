// Client handle: the ZooKeeper-style API surface (create / delete / setData
// / getData / exists / getChildren / sync / multi, watches, ephemeral and
// sequential flags). Asynchronous with callbacks; requests pipeline FIFO
// over a single connection to one server, matching the synchronous-API
// semantics when the caller chains callbacks (as the YCSB driver does).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/actor.h"
#include "store/datatree.h"
#include "store/watch.h"
#include "zk/messages.h"

namespace wankeeper::zk {

struct ClientResult {
  store::Rc rc = store::Rc::kOk;
  std::vector<std::uint8_t> data;
  store::Stat stat;
  std::vector<std::string> children;
  std::string created_path;
  Zxid zxid = kNoZxid;

  bool ok() const { return rc == store::Rc::kOk; }
};

class Client : public sim::Actor {
 public:
  using Callback = std::function<void(const ClientResult&)>;
  using WatchHandler =
      std::function<void(const std::string& path, store::WatchEvent event)>;

  // `session` must be unique across the deployment (callers hand out ids).
  Client(rt::Runtime& rt, std::string name, SessionId session);

  SessionId session() const { return session_; }
  NodeId server() const { return server_; }

  // Establish the session against `server`. Further calls may be issued
  // immediately; they pipeline behind the connect.
  void connect(NodeId server, Callback cb = {}, Time session_timeout = 0);
  // Re-establish an expired session against the same server (what a real
  // ZooKeeper client does after SESSION_EXPIRED).
  void reconnect(Callback cb = {});

  void create(const std::string& path, std::vector<std::uint8_t> data,
              bool ephemeral, bool sequential, Callback cb);
  void create(const std::string& path, const std::string& data, bool ephemeral,
              bool sequential, Callback cb);
  void remove(const std::string& path, std::int32_t version, Callback cb);
  void set_data(const std::string& path, std::vector<std::uint8_t> data,
                std::int32_t version, Callback cb);
  void set_data(const std::string& path, const std::string& data,
                std::int32_t version, Callback cb);
  void get_data(const std::string& path, bool watch, Callback cb);
  void exists_node(const std::string& path, bool watch, Callback cb);
  void get_children(const std::string& path, bool watch, Callback cb);
  void sync(Callback cb);
  void multi(std::vector<Op> ops, Callback cb);
  void close(Callback cb = {});

  void set_watch_handler(WatchHandler h) { watch_handler_ = std::move(h); }

  std::uint64_t ops_completed() const { return ops_completed_; }

  void on_message(NodeId from, const sim::MessagePtr& msg) override;

 private:
  void send_request(ClientRequest req, Callback cb);
  void ping_tick();

  SessionId session_;
  NodeId server_ = kNoNode;
  Xid next_xid_ = 1;
  Time ping_interval_ = 1500 * kMillisecond;
  std::map<Xid, Callback> pending_;
  std::map<Xid, obs::TraceId> pending_trace_;
  WatchHandler watch_handler_;
  std::uint64_t ops_completed_ = 0;
  bool connected_ = false;
  bool ping_armed_ = false;
};

}  // namespace wankeeper::zk

// Client-server and server-server wire messages for the ZooKeeper-like
// service layer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/trace.h"
#include "sim/message.h"
#include "store/datatree.h"
#include "store/watch.h"

namespace wankeeper::zk {

enum class OpCode : std::uint8_t {
  kCreateSession = 1,
  kCloseSession = 2,
  kCreate = 3,
  kDelete = 4,
  kSetData = 5,
  kGetData = 6,
  kExists = 7,
  kGetChildren = 8,
  kSync = 9,
  kMulti = 10,
  kPing = 11,
};

const char* op_name(OpCode op);

inline bool is_write_op(OpCode op) {
  switch (op) {
    case OpCode::kCreate:
    case OpCode::kDelete:
    case OpCode::kSetData:
    case OpCode::kMulti:
    case OpCode::kCreateSession:
    case OpCode::kCloseSession:
    case OpCode::kSync:  // routed through the commit pipeline like a write
      return true;
    default:
      return false;
  }
}

// One operation; multi requests carry several.
struct Op {
  OpCode op = OpCode::kGetData;
  std::string path;
  std::vector<std::uint8_t> data;
  bool ephemeral = false;
  bool sequential = false;
  std::int32_t version = -1;  // delete/setData precondition (-1 = any)
};

struct ClientRequest : sim::Message {
  SessionId session = kNoSession;
  Xid xid = 0;
  Op op;
  bool watch = false;          // register watch on read ops
  std::vector<Op> multi_ops;   // when op.op == kMulti
  Time session_timeout = 0;    // kCreateSession
  obs::TraceId trace = obs::kNoTrace;  // flight-recorder id, assigned at issue

  std::size_t wire_size() const override {
    return 64 + op.path.size() + op.data.size();
  }
  const char* name() const override { return "zk.request"; }
};

struct ClientReply : sim::Message {
  SessionId session = kNoSession;
  Xid xid = 0;
  OpCode op = OpCode::kPing;
  store::Rc rc = store::Rc::kOk;
  std::vector<std::uint8_t> data;       // getData
  store::Stat stat;                      // getData/exists/setData
  std::vector<std::string> children;     // getChildren
  std::string created_path;              // create (resolved sequential name)
  Zxid zxid = kNoZxid;                   // commit zxid for writes

  std::size_t wire_size() const override { return 96 + data.size(); }
  const char* name() const override { return "zk.reply"; }
};

struct WatchNotifyMsg : sim::Message {
  SessionId session = kNoSession;
  std::string path;
  store::WatchEvent event = store::WatchEvent::kDataChanged;
  const char* name() const override { return "zk.watch"; }
};

// Follower/observer server forwarding a write to the leader server.
struct ForwardRequestMsg : sim::Message {
  NodeId origin_server = kNoNode;
  ClientRequest request;
  std::size_t wire_size() const override { return 32 + request.wire_size(); }
  const char* name() const override { return "zk.forward"; }
};

// Leader telling the origin server a request failed validation (the success
// path flows back through the commit stream instead).
struct RequestErrorMsg : sim::Message {
  SessionId session = kNoSession;
  Xid xid = 0;
  store::Rc rc = store::Rc::kOk;
  const char* name() const override { return "zk.requestError"; }
};

// Session keepalive relayed from the session's server to the leader.
struct SessionTouchMsg : sim::Message {
  std::vector<SessionId> sessions;
  const char* name() const override { return "zk.sessionTouch"; }
};

}  // namespace wankeeper::zk

// Session bookkeeping.
//
// SessionTracker runs on the leader: it owns expiry. Servers relay client
// pings as SessionTouch messages; when a session goes silent past its
// timeout the leader proposes a closeSession txn, which deletes the
// session's ephemerals everywhere.
//
// LocalSessions runs on every server: it binds sessions to client
// connections and holds the per-session FIFO request queue that gives
// ZooKeeper's per-client ordering guarantee.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/types.h"
#include "zk/messages.h"

namespace wankeeper::zk {

class SessionTracker {
 public:
  void add(SessionId session, Time timeout, Time now);
  void touch(SessionId session, Time now);
  void remove(SessionId session);
  bool known(SessionId session) const;
  std::size_t count() const { return sessions_.size(); }

  // Sessions whose timeout elapsed before `now`, excluding any in `pinned`
  // (WanKeeper: sessions alive at other sites, learned via WAN heartbeats).
  std::vector<SessionId> expired(Time now,
                                 const std::vector<SessionId>& pinned = {}) const;

 private:
  struct Entry {
    Time timeout;
    Time last_touch;
  };
  std::map<SessionId, Entry> sessions_;
};

// Per-session state on the server that owns the client connection.
struct LocalSession {
  NodeId client = kNoNode;
  Time timeout = 0;
  // FIFO queue: requests execute strictly in arrival order, one at a time.
  std::deque<ClientRequest> queue;
  bool in_flight = false;
  Xid in_flight_xid = 0;
  bool in_flight_is_write = false;
  OpCode in_flight_op = OpCode::kPing;
  Time in_flight_since = 0;
};

class LocalSessions {
 public:
  LocalSession& ensure(SessionId session, NodeId client, Time timeout);
  LocalSession* find(SessionId session);
  const LocalSession* find(SessionId session) const;
  void remove(SessionId session);
  std::vector<SessionId> ids() const;
  std::size_t count() const { return sessions_.size(); }
  void clear() { sessions_.clear(); }

 private:
  std::map<SessionId, LocalSession> sessions_;
};

}  // namespace wankeeper::zk

#include "store/datatree.h"

#include <algorithm>

#include "store/paths.h"

namespace wankeeper::store {

namespace {
// FNV-1a accumulation for the convergence digest.
std::uint64_t fnv(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}
std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) { return fnv(h, &v, sizeof(v)); }
}  // namespace

const char* rc_name(Rc rc) {
  switch (rc) {
    case Rc::kOk: return "ok";
    case Rc::kNoNode: return "no-node";
    case Rc::kNodeExists: return "node-exists";
    case Rc::kBadVersion: return "bad-version";
    case Rc::kNotEmpty: return "not-empty";
    case Rc::kNoChildrenForEphemerals: return "no-children-for-ephemerals";
    case Rc::kInvalidPath: return "invalid-path";
    case Rc::kSessionExpired: return "session-expired";
    case Rc::kNotReadOnly: return "not-read-only";
    case Rc::kUnavailable: return "unavailable";
    case Rc::kBadArguments: return "bad-arguments";
  }
  return "?";
}

DataTree::DataTree() {
  nodes_["/"] = Node{};  // the root always exists
}

Rc DataTree::get_data(const std::string& path, std::vector<std::uint8_t>* data,
                      Stat* stat) const {
  const auto it = nodes_.find(path);
  if (it == nodes_.end()) return Rc::kNoNode;
  if (data != nullptr) *data = it->second.data;
  if (stat != nullptr) *stat = it->second.stat;
  return Rc::kOk;
}

bool DataTree::exists(const std::string& path, Stat* stat) const {
  const auto it = nodes_.find(path);
  if (it == nodes_.end()) return false;
  if (stat != nullptr) *stat = it->second.stat;
  return true;
}

Rc DataTree::get_children(const std::string& path,
                          std::vector<std::string>* children) const {
  const auto it = nodes_.find(path);
  if (it == nodes_.end()) return Rc::kNoNode;
  if (children != nullptr) {
    children->assign(it->second.children.begin(), it->second.children.end());
  }
  return Rc::kOk;
}

std::vector<std::string> DataTree::ephemerals_of(SessionId session) const {
  const auto it = ephemerals_.find(session);
  if (it == ephemerals_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

Rc DataTree::apply(const Txn& txn, Time now) {
  if (txn.zxid != kNoZxid && txn.zxid <= last_applied_) {
    return Rc::kOk;  // already applied (sync replay)
  }
  const Rc rc = apply_one(txn, now);
  if (txn.zxid != kNoZxid) last_applied_ = txn.zxid;
  return rc;
}

Rc DataTree::apply_one(const Txn& txn, Time now) {
  switch (txn.type) {
    case TxnType::kCreate:
      return apply_create(txn, now);
    case TxnType::kDelete:
      return apply_delete(txn);
    case TxnType::kSetData:
      return apply_set_data(txn, now);
    case TxnType::kMulti: {
      // Multi is all-or-nothing; the leader only proposes multis whose ops
      // all validated, so sub-op failure here indicates divergence. We apply
      // greedily and surface the first failure for diagnostics.
      for (const auto& sub : txn.ops) {
        const Rc rc = apply_one(sub, now);
        if (rc != Rc::kOk) return rc;
      }
      return Rc::kOk;
    }
    case TxnType::kCloseSession: {
      // Remove all ephemerals owned by the session.
      const auto eph = ephemerals_of(txn.session);
      for (const auto& path : eph) {
        Txn del;
        del.type = TxnType::kDelete;
        del.path = path;
        del.version = -1;
        apply_delete(del);
      }
      ephemerals_.erase(txn.session);
      return Rc::kOk;
    }
    case TxnType::kCreateSession:
    case TxnType::kNoop:
    case TxnType::kTokenGranted:
    case TxnType::kTokenReturned:
    case TxnType::kError:
      return Rc::kOk;  // no tree effect
  }
  return Rc::kBadArguments;
}

Rc DataTree::apply_create(const Txn& txn, Time now) {
  if (!valid_path(txn.path) || txn.path == "/") return Rc::kInvalidPath;
  const std::string parent = parent_path(txn.path);
  auto pit = nodes_.find(parent);
  if (pit == nodes_.end()) return Rc::kNoNode;
  if (pit->second.stat.ephemeral_owner != kNoSession) {
    return Rc::kNoChildrenForEphemerals;
  }
  if (nodes_.count(txn.path) != 0) return Rc::kNodeExists;

  Node node;
  node.data = txn.data;
  node.stat.czxid = txn.zxid;
  node.stat.mzxid = txn.zxid;
  node.stat.ctime = now;
  node.stat.mtime = now;
  node.stat.version = 0;
  if (txn.ephemeral) {
    node.stat.ephemeral_owner = txn.session;
    ephemerals_[txn.session].insert(txn.path);
  }
  nodes_[txn.path] = std::move(node);
  pit = nodes_.find(parent);
  pit->second.children.insert(basename(txn.path));
  // Sequential counters live in the parent's cversion; the leader stamps the
  // resulting cversion into the txn so application is idempotent. Taking the
  // max keeps replicas convergent when *different* sites commit creates
  // under the same parent concurrently (allowed under WanKeeper's causal
  // mode for non-sequential children; sequential children are serialized by
  // a bulk token, so for them the max equals the stamp).
  pit->second.stat.cversion = std::max(
      pit->second.stat.cversion,
      txn.parent_cversion != 0 ? txn.parent_cversion : pit->second.stat.cversion + 1);
  pit->second.stat.num_children = static_cast<std::int32_t>(pit->second.children.size());
  return Rc::kOk;
}

Rc DataTree::apply_delete(const Txn& txn) {
  const auto it = nodes_.find(txn.path);
  if (it == nodes_.end()) return Rc::kNoNode;
  if (!it->second.children.empty()) return Rc::kNotEmpty;
  if (txn.version >= 0 && it->second.stat.version != txn.version &&
      txn.version != 0x7fffffff) {
    return Rc::kBadVersion;
  }
  if (it->second.stat.ephemeral_owner != kNoSession) {
    auto eit = ephemerals_.find(it->second.stat.ephemeral_owner);
    if (eit != ephemerals_.end()) eit->second.erase(txn.path);
  }
  const std::string parent = parent_path(txn.path);
  nodes_.erase(it);
  auto pit = nodes_.find(parent);
  if (pit != nodes_.end()) {
    pit->second.children.erase(basename(txn.path));
    pit->second.stat.cversion = std::max(
        pit->second.stat.cversion,
        txn.parent_cversion != 0 ? txn.parent_cversion : pit->second.stat.cversion + 1);
    pit->second.stat.num_children = static_cast<std::int32_t>(pit->second.children.size());
  }
  return Rc::kOk;
}

Rc DataTree::apply_set_data(const Txn& txn, Time now) {
  const auto it = nodes_.find(txn.path);
  if (it == nodes_.end()) return Rc::kNoNode;
  // Idempotent: the serialization point (token holder or L2) computed the
  // resulting version, and versions of one record are totally ordered by
  // it. Apply is last-writer-wins on that order: a cross-site resync can
  // refill an old missed write *after* newer ones (local apply order is
  // zab order, not gseq order), and skipping the stale overwrite here is
  // what lets every site converge to the same record whatever the refill
  // order. Re-applying the newest txn (zab sync replay) is a no-op too.
  if (txn.version <= it->second.stat.version) return Rc::kOk;
  it->second.data = txn.data;
  it->second.stat.version = txn.version;
  it->second.stat.mzxid = txn.zxid;
  it->second.stat.mtime = now;
  return Rc::kOk;
}

std::uint64_t DataTree::digest() const {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& [path, node] : nodes_) {
    h = fnv(h, path.data(), path.size());
    h = fnv(h, node.data.data(), node.data.size());
    h = fnv_u64(h, static_cast<std::uint64_t>(node.stat.version));
    h = fnv_u64(h, static_cast<std::uint64_t>(node.stat.ephemeral_owner));
  }
  return h;
}

std::vector<std::string> DataTree::all_paths() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [path, node] : nodes_) out.push_back(path);
  return out;
}

DataTree::Snapshot DataTree::snapshot() const {
  BufferWriter w;
  w.u32(static_cast<std::uint32_t>(nodes_.size()));
  for (const auto& [path, node] : nodes_) {
    w.str(path);
    w.blob(node.data);
    w.u64(node.stat.czxid);
    w.u64(node.stat.mzxid);
    w.i64(node.stat.ctime);
    w.i64(node.stat.mtime);
    w.i32(node.stat.version);
    w.i32(node.stat.cversion);
    w.i64(node.stat.ephemeral_owner);
  }
  return Snapshot{w.take(), last_applied_};
}

void DataTree::restore(const Snapshot& snap) {
  nodes_.clear();
  ephemerals_.clear();
  BufferReader r(snap.bytes);
  const auto count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string path = r.str();
    Node node;
    node.data = r.blob();
    node.stat.czxid = r.u64();
    node.stat.mzxid = r.u64();
    node.stat.ctime = r.i64();
    node.stat.mtime = r.i64();
    node.stat.version = r.i32();
    node.stat.cversion = r.i32();
    node.stat.ephemeral_owner = r.i64();
    if (node.stat.ephemeral_owner != kNoSession) {
      ephemerals_[node.stat.ephemeral_owner].insert(path);
    }
    nodes_[path] = std::move(node);
  }
  // Rebuild child sets from paths.
  for (auto& [path, node] : nodes_) {
    if (path == "/") continue;
    nodes_[parent_path(path)].children.insert(basename(path));
  }
  for (auto& [path, node] : nodes_) {
    node.stat.num_children = static_cast<std::int32_t>(node.children.size());
  }
  last_applied_ = snap.last_applied;
}

}  // namespace wankeeper::store

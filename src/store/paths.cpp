#include "store/paths.h"

#include <cctype>
#include <cstdio>

namespace wankeeper::store {

bool valid_path(std::string_view path) {
  if (path.empty() || path[0] != '/') return false;
  if (path.size() == 1) return true;  // root
  if (path.back() == '/') return false;
  for (std::size_t i = 1; i < path.size(); ++i) {
    if (path[i] == '/' && path[i - 1] == '/') return false;  // empty component
  }
  return true;
}

std::string parent_path(std::string_view path) {
  if (path == "/") return "";
  const auto pos = path.rfind('/');
  if (pos == 0) return "/";
  return std::string(path.substr(0, pos));
}

std::string basename(std::string_view path) {
  if (path == "/") return "";
  const auto pos = path.rfind('/');
  return std::string(path.substr(pos + 1));
}

std::string join_path(std::string_view parent, std::string_view child) {
  if (parent == "/") return "/" + std::string(child);
  return std::string(parent) + "/" + std::string(child);
}

std::string sequential_name(std::string_view prefix, std::uint32_t counter) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%010u", counter);
  return std::string(prefix) + buf;
}

std::int64_t sequence_of(std::string_view name) {
  if (name.size() < 10) return -1;
  const std::string_view tail = name.substr(name.size() - 10);
  std::int64_t v = 0;
  for (char c : tail) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return -1;
    v = v * 10 + (c - '0');
  }
  return v;
}

}  // namespace wankeeper::store

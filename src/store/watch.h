// ZooKeeper-style one-shot watches. Each server replica keeps its own watch
// table for the sessions attached to it; watches fire when the replica
// applies a matching transaction (so a watch fires exactly when the change
// becomes locally visible, same as ZooKeeper).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "store/txn.h"

namespace wankeeper::store {

enum class WatchEvent : std::uint8_t {
  kCreated = 1,
  kDeleted = 2,
  kDataChanged = 3,
  kChildrenChanged = 4,
};

const char* watch_event_name(WatchEvent e);

struct WatchFire {
  SessionId session;
  std::string path;
  WatchEvent event;
  bool operator==(const WatchFire&) const = default;
};

class WatchManager {
 public:
  // Data watches are set by getData/exists; child watches by getChildren.
  void add_data_watch(const std::string& path, SessionId session);
  void add_child_watch(const std::string& path, SessionId session);

  // Computes and consumes the watches triggered by `txn`.
  // `closed_ephemerals` lists paths implicitly deleted by a kCloseSession
  // txn (the caller knows them because it queried the tree before apply).
  std::vector<WatchFire> on_txn(const Txn& txn,
                                const std::vector<std::string>& closed_ephemerals = {});

  void remove_session(SessionId session);

  std::size_t data_watch_count() const;
  std::size_t child_watch_count() const;

 private:
  void fire_data(const std::string& path, WatchEvent event,
                 std::vector<WatchFire>* out);
  void fire_child(const std::string& path, std::vector<WatchFire>* out);
  void on_single(const Txn& txn, std::vector<WatchFire>* out);
  void on_delete_path(const std::string& path, std::vector<WatchFire>* out);

  std::map<std::string, std::set<SessionId>> data_watches_;
  std::map<std::string, std::set<SessionId>> child_watches_;
};

}  // namespace wankeeper::store

// znode path utilities (ZooKeeper path rules: absolute, '/'-separated, no
// trailing slash except the root itself, no empty components).
#pragma once

#include <string>
#include <string_view>

namespace wankeeper::store {

bool valid_path(std::string_view path);

// Parent of "/a/b/c" is "/a/b"; parent of "/a" is "/"; parent of "/" is "".
std::string parent_path(std::string_view path);

// Last component: basename("/a/b") == "b"; basename("/") == "".
std::string basename(std::string_view path);

// join("/a", "b") == "/a/b"; join("/", "b") == "/b".
std::string join_path(std::string_view parent, std::string_view child);

// ZooKeeper sequential suffix: 10-digit zero-padded counter.
std::string sequential_name(std::string_view prefix, std::uint32_t counter);

// Extract the numeric suffix of a sequential node name, or -1 if none.
std::int64_t sequence_of(std::string_view name);

}  // namespace wankeeper::store

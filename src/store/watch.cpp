#include "store/watch.h"

#include "store/paths.h"

namespace wankeeper::store {

const char* watch_event_name(WatchEvent e) {
  switch (e) {
    case WatchEvent::kCreated: return "created";
    case WatchEvent::kDeleted: return "deleted";
    case WatchEvent::kDataChanged: return "dataChanged";
    case WatchEvent::kChildrenChanged: return "childrenChanged";
  }
  return "?";
}

void WatchManager::add_data_watch(const std::string& path, SessionId session) {
  data_watches_[path].insert(session);
}

void WatchManager::add_child_watch(const std::string& path, SessionId session) {
  child_watches_[path].insert(session);
}

void WatchManager::fire_data(const std::string& path, WatchEvent event,
                             std::vector<WatchFire>* out) {
  auto it = data_watches_.find(path);
  if (it == data_watches_.end()) return;
  for (SessionId s : it->second) out->push_back({s, path, event});
  data_watches_.erase(it);  // one-shot
}

void WatchManager::fire_child(const std::string& path, std::vector<WatchFire>* out) {
  auto it = child_watches_.find(path);
  if (it == child_watches_.end()) return;
  for (SessionId s : it->second) out->push_back({s, path, WatchEvent::kChildrenChanged});
  child_watches_.erase(it);  // one-shot
}

void WatchManager::on_delete_path(const std::string& path, std::vector<WatchFire>* out) {
  fire_data(path, WatchEvent::kDeleted, out);
  fire_child(path, out);
  fire_child(parent_path(path), out);
}

void WatchManager::on_single(const Txn& txn, std::vector<WatchFire>* out) {
  switch (txn.type) {
    case TxnType::kCreate:
      fire_data(txn.path, WatchEvent::kCreated, out);
      fire_child(parent_path(txn.path), out);
      break;
    case TxnType::kDelete:
      on_delete_path(txn.path, out);
      break;
    case TxnType::kSetData:
      fire_data(txn.path, WatchEvent::kDataChanged, out);
      break;
    case TxnType::kMulti:
      for (const auto& sub : txn.ops) on_single(sub, out);
      break;
    default:
      break;
  }
}

std::vector<WatchFire> WatchManager::on_txn(
    const Txn& txn, const std::vector<std::string>& closed_ephemerals) {
  std::vector<WatchFire> out;
  if (txn.type == TxnType::kCloseSession) {
    for (const auto& path : closed_ephemerals) on_delete_path(path, &out);
  } else {
    on_single(txn, &out);
  }
  return out;
}

void WatchManager::remove_session(SessionId session) {
  for (auto it = data_watches_.begin(); it != data_watches_.end();) {
    it->second.erase(session);
    it = it->second.empty() ? data_watches_.erase(it) : std::next(it);
  }
  for (auto it = child_watches_.begin(); it != child_watches_.end();) {
    it->second.erase(session);
    it = it->second.empty() ? child_watches_.erase(it) : std::next(it);
  }
}

std::size_t WatchManager::data_watch_count() const {
  std::size_t n = 0;
  for (const auto& [p, s] : data_watches_) n += s.size();
  return n;
}

std::size_t WatchManager::child_watch_count() const {
  std::size_t n = 0;
  for (const auto& [p, s] : child_watches_) n += s.size();
  return n;
}

}  // namespace wankeeper::store

#include "store/txn.h"

namespace wankeeper::store {

const char* txn_type_name(TxnType t) {
  switch (t) {
    case TxnType::kNoop: return "noop";
    case TxnType::kCreate: return "create";
    case TxnType::kDelete: return "delete";
    case TxnType::kSetData: return "setData";
    case TxnType::kMulti: return "multi";
    case TxnType::kCreateSession: return "createSession";
    case TxnType::kCloseSession: return "closeSession";
    case TxnType::kTokenGranted: return "tokenGranted";
    case TxnType::kTokenReturned: return "tokenReturned";
    case TxnType::kError: return "error";
  }
  return "?";
}

void Txn::serialize(BufferWriter& w) const {
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(zxid);
  w.str(path);
  w.blob(data);
  w.boolean(ephemeral);
  w.i32(version);
  w.i64(session);
  w.i64(session_timeout);
  w.i32(parent_cversion);
  w.u32(static_cast<std::uint32_t>(ops.size()));
  for (const auto& sub : ops) sub.serialize(w);
  w.u32(static_cast<std::uint32_t>(paths.size()));
  for (const auto& p : paths) w.str(p);
  w.i32(origin_site);
  w.u64(origin_zxid);
  w.u64(gseq);
  w.i32(error);
}

Txn Txn::deserialize(BufferReader& r) {
  Txn t;
  t.type = static_cast<TxnType>(r.u8());
  t.zxid = r.u64();
  t.path = r.str();
  t.data = r.blob();
  t.ephemeral = r.boolean();
  t.version = r.i32();
  t.session = r.i64();
  t.session_timeout = r.i64();
  t.parent_cversion = r.i32();
  const auto nops = r.u32();
  t.ops.reserve(nops);
  for (std::uint32_t i = 0; i < nops; ++i) t.ops.push_back(deserialize(r));
  const auto npaths = r.u32();
  t.paths.reserve(npaths);
  for (std::uint32_t i = 0; i < npaths; ++i) t.paths.push_back(r.str());
  t.origin_site = r.i32();
  t.origin_zxid = r.u64();
  t.gseq = r.u64();
  t.error = r.i32();
  return t;
}

std::vector<std::uint8_t> Txn::encode() const {
  BufferWriter w;
  serialize(w);
  return w.take();
}

Txn Txn::decode(const std::vector<std::uint8_t>& bytes) {
  BufferReader r(bytes);
  return deserialize(r);
}

bool Txn::operator==(const Txn& other) const {
  return type == other.type && zxid == other.zxid && path == other.path &&
         data == other.data && ephemeral == other.ephemeral &&
         version == other.version && session == other.session &&
         session_timeout == other.session_timeout &&
         parent_cversion == other.parent_cversion && ops == other.ops &&
         paths == other.paths && origin_site == other.origin_site &&
         origin_zxid == other.origin_zxid && gseq == other.gseq &&
         error == other.error;
}

}  // namespace wankeeper::store

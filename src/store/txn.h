// Idempotent transaction records: what the leader's PrepRequestProcessor
// turns client requests into, what Zab replicates as payload, and what the
// DataTree applies. One record type serves both the plain ZooKeeper layer
// and WanKeeper's extensions (token movements and remote-commit envelopes
// are logged as transactions so a recovering leader can reconstruct the
// token state from its log, as paper §II-D requires).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/types.h"

namespace wankeeper::store {

enum class TxnType : std::uint8_t {
  kNoop = 0,
  kCreate = 1,
  kDelete = 2,
  kSetData = 3,
  kMulti = 4,
  kCreateSession = 5,
  kCloseSession = 6,
  // --- WanKeeper-only records ---
  kTokenGranted = 7,   // this site received tokens for `paths`
  kTokenReturned = 8,  // this site gave tokens for `paths` back to L2
  kError = 9,          // serialized failure (keeps zxid sequence gapless)
};

const char* txn_type_name(TxnType t);

// A single idempotent state change. Fields are a superset; which are
// meaningful depends on `type` (see comments). "Idempotent" means the
// outcome is embedded: sequential creates carry the final path, setData
// carries the resulting version, so re-applying or applying on a follower
// needs no further decisions.
struct Txn {
  TxnType type = TxnType::kNoop;
  Zxid zxid = kNoZxid;  // assigned by the Zab leader at proposal time

  std::string path;                 // create/delete/setData: the final path
  std::vector<std::uint8_t> data;   // create/setData
  bool ephemeral = false;           // create
  std::int32_t version = 0;         // setData: resulting version; delete: checked version
  SessionId session = kNoSession;   // owner for ephemerals; create/close session
  Time session_timeout = 0;         // createSession
  std::int32_t parent_cversion = 0; // create/delete: resulting parent cversion

  std::vector<Txn> ops;             // multi: sub-operations
  std::vector<std::string> paths;   // token grant/return: affected records

  // WanKeeper provenance: which site committed this change first, and under
  // which zxid there. Zero/absent for purely local history. Used for
  // idempotent cross-site replication and the causal-consistency checker.
  SiteId origin_site = kNoSite;
  Zxid origin_zxid = kNoZxid;
  // Level-2 global sequence: stamped when the txn passes through the L2
  // broker; monotone per L2 epoch. Sites apply cross-site txns in gseq
  // order, which is what makes the hub fan-out causally consistent, and a
  // recovering L2 resumes the counter from the highest gseq in its log.
  std::uint64_t gseq = 0;

  std::int32_t error = 0;           // kError: rc that was recorded

  void serialize(BufferWriter& w) const;
  static Txn deserialize(BufferReader& r);

  std::vector<std::uint8_t> encode() const;
  static Txn decode(const std::vector<std::uint8_t>& bytes);

  bool operator==(const Txn& other) const;
};

}  // namespace wankeeper::store

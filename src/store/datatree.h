// The hierarchical znode store: ZooKeeper's data model with persistent,
// ephemeral, and sequential nodes, per-node versions and stat, and
// idempotent transaction application. One DataTree instance lives in every
// server replica; replicas converge because they apply the same txn stream.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "store/txn.h"

namespace wankeeper::store {

// Operation outcome codes, mirroring ZooKeeper's KeeperException codes that
// matter for coordination recipes.
enum class Rc : std::int32_t {
  kOk = 0,
  kNoNode = 1,
  kNodeExists = 2,
  kBadVersion = 3,
  kNotEmpty = 4,
  kNoChildrenForEphemerals = 5,
  kInvalidPath = 6,
  kSessionExpired = 7,
  kNotReadOnly = 8,   // write attempted against a read-only (partitioned) server
  kUnavailable = 9,   // request could not be served (e.g., lost quorum)
  kBadArguments = 10,
};

const char* rc_name(Rc rc);

// Node metadata exposed to clients, following ZooKeeper's Stat.
struct Stat {
  Zxid czxid = kNoZxid;          // zxid that created the node
  Zxid mzxid = kNoZxid;          // zxid of the last modification
  Time ctime = 0;
  Time mtime = 0;
  std::int32_t version = 0;      // data version
  std::int32_t cversion = 0;     // child-list version (sequential counter)
  SessionId ephemeral_owner = kNoSession;
  std::int32_t num_children = 0;
};

class DataTree {
 public:
  DataTree();

  // --- read-side API (served locally by every replica) ---
  Rc get_data(const std::string& path, std::vector<std::uint8_t>* data,
              Stat* stat = nullptr) const;
  bool exists(const std::string& path, Stat* stat = nullptr) const;
  Rc get_children(const std::string& path, std::vector<std::string>* children) const;
  std::size_t node_count() const { return nodes_.size(); }

  // Ephemeral nodes owned by a session (for expiry cleanup).
  std::vector<std::string> ephemerals_of(SessionId session) const;

  // --- write-side: transaction application ---
  // Applies `txn` if txn.zxid > last_applied(); returns the rc the original
  // operation produced. Duplicate/old zxids are skipped (returns kOk) so
  // replay after reconnect/sync is harmless.
  Rc apply(const Txn& txn, Time now);

  Zxid last_applied() const { return last_applied_; }
  void set_last_applied(Zxid z) { last_applied_ = z; }

  // Order-independent-of-nothing content digest: two replicas that applied
  // the same txn prefix produce identical digests. Used by convergence tests.
  std::uint64_t digest() const;

  // All paths currently in the tree (sorted). Test/debug helper.
  std::vector<std::string> all_paths() const;

  // Deep snapshot/restore for Zab SNAP synchronization.
  struct Snapshot {
    std::vector<std::uint8_t> bytes;
    Zxid last_applied = kNoZxid;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& snap);

 private:
  struct Node {
    std::vector<std::uint8_t> data;
    Stat stat;
    std::set<std::string> children;  // child names (not full paths)
  };

  Rc apply_create(const Txn& txn, Time now);
  Rc apply_delete(const Txn& txn);
  Rc apply_set_data(const Txn& txn, Time now);
  Rc apply_one(const Txn& txn, Time now);

  std::map<std::string, Node> nodes_;  // full path -> node
  std::map<SessionId, std::set<std::string>> ephemerals_;
  Zxid last_applied_ = kNoZxid;
};

}  // namespace wankeeper::store

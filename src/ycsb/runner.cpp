#include "ycsb/runner.h"

#include <map>
#include <memory>
#include <set>
#include <stdexcept>

namespace wankeeper::ycsb {

namespace {

constexpr const char* kBasePath = "/ycsb";

// Runs one loader client through a list of creates; sets *done at the end.
void load_paths(zk::Client& loader, std::shared_ptr<std::vector<std::string>> paths,
                std::size_t payload, std::shared_ptr<bool> done) {
  auto body = std::vector<std::uint8_t>(payload, 0x61);
  auto step = std::make_shared<std::function<void(std::size_t)>>();
  // The lambda must not capture `step` strongly — it lives inside *step, so a
  // strong self-capture is a refcount cycle that outlives the experiment.
  // Each in-flight create callback holds the strong reference instead.
  std::weak_ptr<std::function<void(std::size_t)>> weak_step = step;
  *step = [&loader, paths, body, weak_step, done](std::size_t i) {
    if (i >= paths->size()) {
      *done = true;
      return;
    }
    auto self = weak_step.lock();
    loader.create((*paths)[i], body, false, false,
                  [self, i](const zk::ClientResult&) { (*self)(i + 1); });
  };
  (*step)(0);
}

void run_drivers(sim::Simulator& sim, std::vector<std::unique_ptr<Driver>>& drivers,
                 Time guard_deadline) {
  for (auto& d : drivers) d->start();
  while (sim.now() < guard_deadline) {
    bool all_done = true;
    for (const auto& d : drivers) {
      if (!d->done()) {
        all_done = false;
        break;
      }
    }
    if (all_done) return;
    sim.run_for(100 * kMillisecond);
  }
  throw std::runtime_error("experiment exceeded max_sim_time");
}

}  // namespace

RunResult run_experiment(const RunConfig& config) {
  TestbedOptions bed_opts;
  bed_opts.wk_policy = config.wk_policy;
  bed_opts.batching = config.batching;
  bed_opts.wan_frame_overhead = config.wan_frame_overhead;
  bed_opts.wan_bytes_per_us = config.wan_bytes_per_us;
  Testbed bed(config.system, config.seed, bed_opts);
  sim::Simulator& sim = bed.sim();
  RunResult result;
  result.clients.resize(config.clients.size());

  // Per-client key mappers (tags default to c<i>).
  std::vector<KeyMapper> mappers;
  const std::uint64_t records =
      config.clients.empty() ? 0 : config.clients.front().workload.record_count;
  for (std::size_t i = 0; i < config.clients.size(); ++i) {
    const auto& spec = config.clients[i];
    const std::string tag = spec.tag.empty() ? "c" + std::to_string(i) : spec.tag;
    result.clients[i].name = tag;
    mappers.emplace_back(kBasePath, tag, spec.shared_fraction,
                         spec.workload.record_count);
  }

  // --- load phase (untimed). As in YCSB, each client loads its own records
  // from its own site (giving every private record exactly one access from
  // its home site before measurement, like the paper's runs); records
  // shared between sites load neutrally from Virginia.
  {
    const std::size_t payload =
        config.clients.empty() ? 64 : config.clients.front().workload.payload_bytes;

    std::map<SiteId, std::set<std::string>> by_site;
    std::set<std::string> assigned;
    by_site[kVirginia].insert(kBasePath);
    for (std::size_t i = 0; i < config.clients.size(); ++i) {
      for (std::uint64_t r = 0; r < records; ++r) {
        const std::string path = mappers[i].path_of(r);
        if (assigned.count(path) != 0) continue;
        assigned.insert(path);
        by_site[mappers[i].is_shared(r) ? kVirginia : config.clients[i].site]
            .insert(path);
      }
    }

    std::vector<std::unique_ptr<zk::Client>> loaders;
    std::vector<std::shared_ptr<bool>> done_flags;
    int loader_id = 0;
    const Time guard = sim.now() + 4 * 3600 * kSecond;

    // Virginia first, alone, so the base znode exists before other sites'
    // creates reference it.
    {
      auto loader = bed.make_client("loader-va", kVirginia, 100 + loader_id++);
      sim.run_for(300 * kMillisecond);
      auto done = std::make_shared<bool>(false);
      const auto& paths = by_site[kVirginia];
      load_paths(*loader,
                 std::make_shared<std::vector<std::string>>(paths.begin(), paths.end()),
                 payload, done);
      while (!*done && sim.now() < guard) sim.run_for(100 * kMillisecond);
      loaders.push_back(std::move(loader));
    }
    for (const auto& [site, paths] : by_site) {
      if (site == kVirginia) continue;
      auto loader = bed.make_client("loader-" + std::to_string(site), site,
                                    100 + loader_id++);
      sim.run_for(300 * kMillisecond);
      auto done = std::make_shared<bool>(false);
      load_paths(*loader,
                 std::make_shared<std::vector<std::string>>(paths.begin(), paths.end()),
                 payload, done);
      loaders.push_back(std::move(loader));
      done_flags.push_back(done);
    }
    while (sim.now() < guard) {
      bool all = true;
      for (const auto& d : done_flags) {
        if (!*d) all = false;
      }
      if (all) break;
      sim.run_for(100 * kMillisecond);
    }
    for (auto& l : loaders) l->close();
    sim.run_for(2 * kSecond);  // drain fan-out

    // WK Hot: pre-place each client's private tokens at its site (Fig 6).
    if (config.system == SystemKind::kWanKeeper && config.wk_hot_start) {
      wk::Broker* l2 = bed.deployment()->l2_broker();
      if (l2 == nullptr) throw std::runtime_error("no L2 broker");
      for (std::size_t i = 0; i < config.clients.size(); ++i) {
        std::vector<wk::TokenKey> keys;
        for (const auto& path : mappers[i].private_paths()) {
          keys.push_back(wk::node_token(path));
        }
        l2->bench_grant_tokens(keys, config.clients[i].site);
      }
      sim.run_for(2 * kSecond);  // let the grant markers propagate
    }
    sim.run_for(config.settle);
  }

  // Reset the flight recorder so the exports cover only the measurement
  // phase (the load phase would otherwise dominate every histogram).
  sim.obs().clear();

  // --- measurement phase ---
  std::vector<std::unique_ptr<zk::Client>> clients;
  std::vector<std::unique_ptr<Driver>> drivers;
  for (std::size_t i = 0; i < config.clients.size(); ++i) {
    const auto& spec = config.clients[i];
    clients.push_back(bed.make_client(result.clients[i].name, spec.site,
                                      static_cast<SessionId>(1000 + i)));
    drivers.push_back(std::make_unique<Driver>(*clients.back(), spec.workload,
                                               mappers[i], result.clients[i]));
  }
  sim.run_for(1 * kSecond);  // sessions established
  run_drivers(sim, drivers, sim.now() + config.max_sim_time);
  sim.run_for(2 * kSecond);  // drain replication before inspecting state

  // --- collect ---
  AggregateMetrics agg;
  for (auto& c : result.clients) agg.clients.push_back(&c);
  result.total_throughput = agg.total_throughput();
  result.reads = agg.merged_reads();
  result.writes = agg.merged_writes();

  if (config.system == SystemKind::kWanKeeper) {
    const auto counters = bed.wk_counters();
    result.wk_local_commits = counters.local_commits;
    result.wk_forwards = counters.forwards;
    result.wk_grants = counters.grants;
    result.wk_recalls = counters.recalls;
    result.wk_frames_sent = sim.obs().metrics.counter_total("wan.frames_sent");
    result.wk_frame_msgs = sim.obs().metrics.counter_total("wan.frame_msgs");
    result.token_audit_clean = bed.audit_clean();
  }

  // --- flight-recorder exports (the testbed dies with this scope) ---
  const auto& obs = sim.obs();
  result.metrics_json = obs.metrics.to_json();
  for (std::size_t k = 0; k < obs::kSpanKindCount; ++k) {
    const auto kind = static_cast<obs::SpanKind>(k);
    const auto rec = obs.tracer.span_latencies(kind);
    RunResult::SpanStat st;
    st.kind = obs::span_kind_name(kind);
    st.count = rec.count();
    if (st.count > 0) {
      st.p50_us = rec.percentile_us(0.50);
      st.p99_us = rec.percentile_us(0.99);
      for (const Time s : rec.samples()) st.total_us += s;
    }
    result.phase_breakdown.push_back(std::move(st));
  }
  for (const auto* t : obs.tracer.slowest(config.trace_report_n)) {
    result.slow_traces.push_back(obs.tracer.format_trace(t->id));
  }
  result.ownership = obs::OwnershipAnalytics::from_events(obs.events.merged());
  result.measure_end = sim.now();
  return result;
}

}  // namespace wankeeper::ycsb

#include "ycsb/client.h"

namespace wankeeper::ycsb {

Driver::Driver(zk::Client& client, WorkloadSpec spec, KeyMapper mapper,
               ClientMetrics& metrics)
    : client_(client),
      spec_(spec),
      mapper_(std::move(mapper)),
      metrics_(metrics),
      stream_(spec),
      payload_(spec.payload_bytes, 0x61) {}

void Driver::start() {
  metrics_.started = client_.sim().now();
  issue_next();
}

void Driver::issue_next() {
  if (issued_ >= spec_.op_count) {
    done_ = true;
    metrics_.finished = client_.sim().now();
    return;
  }
  ++issued_;
  issue(stream_.next());
}

void Driver::issue(const OpStream::Op& op) {
  const Time issued_at = client_.sim().now();
  const std::string path = mapper_.path_of(op.rank);
  auto cb = [this, op, issued_at](const zk::ClientResult& r) {
    on_result(op, issued_at, r);
  };
  if (op.is_write) {
    client_.set_data(path, payload_, -1, std::move(cb));
  } else {
    client_.get_data(path, false, std::move(cb));
  }
}

void Driver::on_result(const OpStream::Op& op, Time issued_at,
                       const zk::ClientResult& result) {
  auto& reg = client_.sim().obs().metrics;
  if (result.rc == store::Rc::kUnavailable) {
    ++metrics_.retries;
    reg.counter("ycsb.retries").inc();
    issue(op);  // transient: leadership change or lost forward
    return;
  }
  const Time latency = client_.sim().now() - issued_at;
  if (op.is_write) {
    metrics_.write_latency.record(latency);
    reg.histogram("ycsb.write_latency_us").record(latency);
  } else {
    metrics_.read_latency.record(latency);
    reg.histogram("ycsb.read_latency_us").record(latency);
  }
  ++metrics_.ops;
  reg.counter("ycsb.ops").inc();
  // Windowed series are relative to this client's measurement start.
  metrics_.series.record(client_.sim().now() - metrics_.started);
  issue_next();
}

void Driver::preload(zk::Client& client, const KeyMapper& mapper,
                     std::uint64_t record_count, std::size_t payload_bytes,
                     std::function<void()> on_complete) {
  auto paths = std::make_shared<std::vector<std::string>>();
  for (std::uint64_t r = 0; r < record_count; ++r) {
    paths->push_back(mapper.path_of(r));
  }
  auto payload = std::vector<std::uint8_t>(payload_bytes, 0x61);
  auto next = std::make_shared<std::function<void(std::size_t)>>();
  *next = [&client, paths, payload, next,
           done = std::move(on_complete)](std::size_t i) {
    if (i >= paths->size()) {
      if (done) done();
      return;
    }
    // kNodeExists is fine: shared records are preloaded once per client set.
    client.create((*paths)[i], payload, false, false,
                  [next, i](const zk::ClientResult&) { (*next)(i + 1); });
  };
  (*next)(0);
}

}  // namespace wankeeper::ycsb

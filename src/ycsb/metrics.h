// Per-client and aggregated measurement for the benchmark harnesses.
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace wankeeper::ycsb {

struct ClientMetrics {
  std::string name;
  std::uint64_t ops = 0;
  std::uint64_t retries = 0;
  LatencyRecorder read_latency;
  LatencyRecorder write_latency;
  ThroughputSeries series{10 * kSecond};
  Time started = 0;
  Time finished = 0;

  double throughput() const {
    // Guard: a run that never finished (crash mid-measurement, zero ops)
    // leaves finished at 0 < started, and the naive span would go negative.
    if (finished <= started) return 0.0;
    const Time span = finished - started;
    return static_cast<double>(ops) * static_cast<double>(kSecond) /
           static_cast<double>(span);
  }
};

struct AggregateMetrics {
  std::vector<ClientMetrics*> clients;

  // Total ops / wall span from first start to last finish.
  double total_throughput() const;
  LatencyRecorder merged_reads() const;
  LatencyRecorder merged_writes() const;
};

}  // namespace wankeeper::ycsb

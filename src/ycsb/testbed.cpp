#include "ycsb/testbed.h"

#include <stdexcept>

namespace wankeeper::ycsb {

const char* system_name(SystemKind kind) {
  switch (kind) {
    case SystemKind::kZooKeeper: return "ZK";
    case SystemKind::kZooKeeperObserver: return "ZK+obs";
    case SystemKind::kWanKeeper: return "WanKeeper";
  }
  return "?";
}

Testbed::Testbed(SystemKind kind, std::uint64_t seed, TestbedOptions opts)
    : kind_(kind),
      sim_(std::make_unique<sim::Simulator>(seed)),
      net_(std::make_unique<sim::Network>(*sim_, sim::LatencyModel::paper_wan())) {
  net_->set_wan_cost({opts.wan_frame_overhead, opts.wan_bytes_per_us});
  zab::PeerOptions peer_opts;
  if (opts.batching) peer_opts = wk::batched_peer_options(peer_opts);
  switch (kind_) {
    case SystemKind::kZooKeeper: {
      // One voter per region; Virginia last => leader site (paper setup).
      ensemble_ = std::make_unique<zk::Ensemble>(
          *sim_, *net_,
          std::vector<zk::NodeSpec>{{kCalifornia, false},
                                    {kFrankfurt, false},
                                    {kVirginia, false}},
          zk::ServerOptions{}, peer_opts);
      if (!ensemble_->wait_for_leader()) throw std::runtime_error("no ZK leader");
      break;
    }
    case SystemKind::kZooKeeperObserver: {
      // Voting core in Virginia, a non-voting observer per other region.
      ensemble_ = std::make_unique<zk::Ensemble>(
          *sim_, *net_,
          std::vector<zk::NodeSpec>{{kVirginia, false},
                                    {kVirginia, false},
                                    {kVirginia, false},
                                    {kCalifornia, true},
                                    {kFrankfurt, true}},
          zk::ServerOptions{}, peer_opts);
      if (!ensemble_->wait_for_leader()) throw std::runtime_error("no ZKO leader");
      break;
    }
    case SystemKind::kWanKeeper: {
      auditor_ = std::make_unique<wk::TokenAuditor>();
      wk::DeploymentConfig cfg;
      cfg.wan.l2_site = kVirginia;
      cfg.wan.policy = opts.wk_policy;
      if (opts.batching) cfg.enable_batching();
      deployment_ = std::make_unique<wk::Deployment>(*sim_, *net_, cfg, auditor_.get());
      if (!deployment_->wait_ready()) throw std::runtime_error("WK not ready");
      break;
    }
  }
}

std::unique_ptr<zk::Client> Testbed::make_client(const std::string& name,
                                                 SiteId site, SessionId session) {
  if (deployment_ != nullptr) return deployment_->make_client(name, site, session);
  return ensemble_->make_client(name, site, ensemble_->node_at_site(site), session);
}

Testbed::WkCounters Testbed::wk_counters() const {
  WkCounters out;
  if (deployment_ == nullptr) return out;
  auto& deploy = const_cast<wk::Deployment&>(*deployment_);
  for (std::size_t s = 0; s < deploy.sites(); ++s) {
    auto& ens = deploy.site_ensemble(static_cast<SiteId>(s));
    for (std::size_t n = 0; n < ens.size(); ++n) {
      const auto& st = deploy.broker(static_cast<SiteId>(s), n).broker_stats();
      out.local_commits += st.local_token_commits;
      out.forwards += st.wan_forwards;
      out.grants += st.grants;
      out.recalls += st.recalls;
    }
  }
  return out;
}

}  // namespace wankeeper::ycsb

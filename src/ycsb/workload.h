// YCSB-style workload specification and key choosers, matching the paper's
// evaluation setup (§IV-A): N records, a read/write mix, and keys drawn
// from the Zipfian distribution it quotes — plus the uniform and hotspot
// variants the SCFS experiments use (§IV-C).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/random.h"
#include "common/types.h"

namespace wankeeper::ycsb {

enum class KeyDistribution { kZipfian, kUniform, kHotspot };

struct WorkloadSpec {
  std::uint64_t record_count = 1000;  // paper: 1000 records
  std::uint64_t op_count = 10000;     // paper: 10K operations
  double write_fraction = 0.5;
  KeyDistribution distribution = KeyDistribution::kZipfian;
  double zipfian_s = 0.99;            // YCSB's default constant
  // Hotspot variant (Fig 10b: "80% of operations updating 20% of data").
  double hot_fraction = 0.2;
  double hot_op_fraction = 0.8;
  std::uint64_t hot_set_seed = 7;     // per-client seeds give per-site hot sets
  std::size_t payload_bytes = 100;
  std::uint64_t seed = 1;
};

// Draws (record rank, is_write) pairs for one client.
class OpStream {
 public:
  explicit OpStream(const WorkloadSpec& spec);

  struct Op {
    std::uint64_t rank = 0;
    bool is_write = false;
  };
  Op next();

  const WorkloadSpec& spec() const { return spec_; }

 private:
  WorkloadSpec spec_;
  Rng rng_;
  std::unique_ptr<Zipfian> zipfian_;
  std::unique_ptr<Hotspot> hotspot_;
};

// Maps a client's record rank to a znode path. Experiments use this to
// model access overlap between sites: ranks below `shared_fraction *
// record_count` resolve to a shared record, the rest to a per-client
// private record (Fig 6 = 0% overlap, Fig 7 sweeps 0..100%).
class KeyMapper {
 public:
  KeyMapper(std::string base_path, std::string client_tag,
            double shared_fraction, std::uint64_t record_count);

  std::string path_of(std::uint64_t rank) const;
  bool is_shared(std::uint64_t rank) const;

  // Every path this client can touch (for preloading / token warmup).
  std::vector<std::string> all_paths() const;
  std::vector<std::string> private_paths() const;

 private:
  std::string base_;
  std::string tag_;
  std::uint64_t shared_limit_;
  std::uint64_t records_;
};

}  // namespace wankeeper::ycsb

// Shared system-under-test builder for every evaluation harness (YCSB,
// BookKeeper, SCFS): constructs one of the paper's three systems on the
// calibrated three-region WAN and hands out site-local clients.
#pragma once

#include <memory>
#include <string>

#include "sim/network.h"
#include "sim/simulator.h"
#include "wankeeper/deployment.h"
#include "zk/ensemble.h"

namespace wankeeper::ycsb {

enum class SystemKind { kZooKeeper, kZooKeeperObserver, kWanKeeper };
const char* system_name(SystemKind kind);

// Paper site ids.
inline constexpr SiteId kVirginia = 0;
inline constexpr SiteId kCalifornia = 1;
inline constexpr SiteId kFrankfurt = 2;

struct TestbedOptions {
  std::string wk_policy = "consecutive:2";
  // Zab group commit + WAN frame coalescing (canonical knobs; applies to
  // the ZK systems' peers too so mode comparisons are apples-to-apples).
  bool batching = false;
  // WAN channel occupancy (default: latency-only, the legacy model).
  Time wan_frame_overhead = 0;
  double wan_bytes_per_us = 0.0;
};

class Testbed {
 public:
  // Builds and boots the system; returns once a leader (and for WanKeeper,
  // site registration) is established.
  Testbed(SystemKind kind, std::uint64_t seed, TestbedOptions opts);
  Testbed(SystemKind kind, std::uint64_t seed,
          const std::string& wk_policy = "consecutive:2")
      : Testbed(kind, seed, TestbedOptions{wk_policy}) {}

  SystemKind kind() const { return kind_; }
  sim::Simulator& sim() { return *sim_; }
  sim::Network& net() { return *net_; }

  // A client attached to its site-local server (voter, observer, or L1).
  std::unique_ptr<zk::Client> make_client(const std::string& name, SiteId site,
                                          SessionId session);

  // WanKeeper-only accessors (nullptr for the ZooKeeper systems).
  wk::Deployment* deployment() { return deployment_.get(); }
  wk::TokenAuditor* auditor() { return auditor_.get(); }
  zk::Ensemble* ensemble() { return ensemble_.get(); }

  struct WkCounters {
    std::uint64_t local_commits = 0;
    std::uint64_t forwards = 0;
    std::uint64_t grants = 0;
    std::uint64_t recalls = 0;
  };
  WkCounters wk_counters() const;
  bool audit_clean() const { return auditor_ == nullptr || auditor_->clean(); }

 private:
  SystemKind kind_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<zk::Ensemble> ensemble_;
  std::unique_ptr<wk::TokenAuditor> auditor_;
  std::unique_ptr<wk::Deployment> deployment_;
};

}  // namespace wankeeper::ycsb

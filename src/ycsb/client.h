// Closed-loop YCSB driver: issues one synchronous operation at a time
// against a zk::Client (exactly the paper's "YCSB benchmark client with the
// synchronous ZooKeeper client API"), records per-op latency, and retries
// transient unavailability.
#pragma once

#include <functional>
#include <memory>

#include "ycsb/metrics.h"
#include "ycsb/workload.h"
#include "zk/client.h"

namespace wankeeper::ycsb {

class Driver {
 public:
  Driver(zk::Client& client, WorkloadSpec spec, KeyMapper mapper,
         ClientMetrics& metrics);

  // Begin issuing (call once the deployment is ready and records exist).
  void start();
  bool done() const { return done_; }

  // Creates the driver's records through `client` (untimed load phase);
  // invokes `on_complete` when all records exist.
  static void preload(zk::Client& client, const KeyMapper& mapper,
                      std::uint64_t record_count, std::size_t payload_bytes,
                      std::function<void()> on_complete);

 private:
  void issue_next();
  void issue(const OpStream::Op& op);
  void on_result(const OpStream::Op& op, Time issued_at,
                 const zk::ClientResult& result);

  zk::Client& client_;
  WorkloadSpec spec_;
  KeyMapper mapper_;
  ClientMetrics& metrics_;
  OpStream stream_;
  std::vector<std::uint8_t> payload_;
  std::uint64_t issued_ = 0;
  bool done_ = false;
};

}  // namespace wankeeper::ycsb

// Experiment orchestration: builds one of the three systems the paper
// compares — plain ZooKeeper (voters spread across regions, leader in
// Virginia), ZooKeeper-with-observers (voting core in Virginia, observers
// in the other regions), and WanKeeper (an L1 cluster per region, Virginia
// as L2) — on the calibrated WAN, preloads records, drives closed-loop
// clients, and reports throughput/latency plus WanKeeper token statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ycsb/client.h"
#include "ycsb/metrics.h"
#include "ycsb/testbed.h"
#include "ycsb/workload.h"

namespace wankeeper::ycsb {

struct ClientSpec {
  SiteId site = kCalifornia;
  WorkloadSpec workload;
  // Fraction of each client's record space that is shared with the other
  // clients (access overlap): Fig 6 uses 0, Fig 7 sweeps 0..1.
  double shared_fraction = 1.0;
  std::string tag;  // defaults to "c<i>"
};

struct RunConfig {
  SystemKind system = SystemKind::kWanKeeper;
  std::vector<ClientSpec> clients;
  std::string wk_policy = "consecutive:2";
  bool wk_hot_start = false;  // pre-grant private tokens (Fig 6 "WK Hot")
  std::uint64_t seed = 1;
  Time settle = 1 * kSecond;
  Time max_sim_time = 4 * 3600 * kSecond;  // runaway guard
};

struct RunResult {
  std::vector<ClientMetrics> clients;
  double total_throughput = 0.0;
  LatencyRecorder reads;
  LatencyRecorder writes;

  // WanKeeper-only accounting.
  std::uint64_t wk_local_commits = 0;
  std::uint64_t wk_forwards = 0;
  std::uint64_t wk_grants = 0;
  std::uint64_t wk_recalls = 0;
  bool token_audit_clean = true;

  double local_write_fraction() const {
    const auto total = wk_local_commits + wk_forwards;
    return total == 0 ? 0.0
                      : static_cast<double>(wk_local_commits) /
                            static_cast<double>(total);
  }
};

RunResult run_experiment(const RunConfig& config);

}  // namespace wankeeper::ycsb

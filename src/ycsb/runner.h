// Experiment orchestration: builds one of the three systems the paper
// compares — plain ZooKeeper (voters spread across regions, leader in
// Virginia), ZooKeeper-with-observers (voting core in Virginia, observers
// in the other regions), and WanKeeper (an L1 cluster per region, Virginia
// as L2) — on the calibrated WAN, preloads records, drives closed-loop
// clients, and reports throughput/latency plus WanKeeper token statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/ownership.h"
#include "ycsb/client.h"
#include "ycsb/metrics.h"
#include "ycsb/testbed.h"
#include "ycsb/workload.h"

namespace wankeeper::ycsb {

struct ClientSpec {
  SiteId site = kCalifornia;
  WorkloadSpec workload;
  // Fraction of each client's record space that is shared with the other
  // clients (access overlap): Fig 6 uses 0, Fig 7 sweeps 0..1.
  double shared_fraction = 1.0;
  std::string tag;  // defaults to "c<i>"
};

struct RunConfig {
  SystemKind system = SystemKind::kWanKeeper;
  std::vector<ClientSpec> clients;
  std::string wk_policy = "consecutive:2";
  bool wk_hot_start = false;  // pre-grant private tokens (Fig 6 "WK Hot")
  bool batching = false;      // group commit + WAN coalescing (canonical knobs)
  // WAN channel occupancy (see sim::WanCostModel); default latency-only.
  Time wan_frame_overhead = 0;
  double wan_bytes_per_us = 0.0;
  std::uint64_t seed = 1;
  Time settle = 1 * kSecond;
  Time max_sim_time = 4 * 3600 * kSecond;  // runaway guard
  // Flight recorder: how many of the slowest traces to carry back in the
  // result (0 disables the report; tracing itself is always on and cheap).
  std::size_t trace_report_n = 5;
};

struct RunResult {
  std::vector<ClientMetrics> clients;
  double total_throughput = 0.0;
  LatencyRecorder reads;
  LatencyRecorder writes;

  // Flight-recorder exports, captured over the measurement phase only (the
  // registry and tracer are reset after load/settle). All three are
  // deterministic for a fixed config+seed.
  struct SpanStat {
    std::string kind;        // enqueue, wan_hop, token_wait, zab_propose, apply
    std::size_t count = 0;
    Time p50_us = 0;
    Time p99_us = 0;
    Time total_us = 0;       // summed span time (where requests spend latency)
  };
  std::vector<SpanStat> phase_breakdown;  // one entry per span kind, in order
  std::string metrics_json;               // MetricsRegistry::to_json()
  std::vector<std::string> slow_traces;   // formatted N slowest traces
  // Token movement over the measurement phase, distilled from the event
  // log: per-record ownership timelines, migration counts, recall RTTs.
  obs::OwnershipAnalytics ownership;
  Time measure_end = 0;  // virtual end of the phase, for open timelines

  // WanKeeper-only accounting.
  std::uint64_t wk_local_commits = 0;
  std::uint64_t wk_forwards = 0;
  std::uint64_t wk_grants = 0;
  std::uint64_t wk_recalls = 0;
  // WAN transport frame accounting over the measurement phase (all sites):
  // frames on the wire and protocol messages inside them; their ratio is
  // the realized coalescing factor.
  std::uint64_t wk_frames_sent = 0;
  std::uint64_t wk_frame_msgs = 0;
  bool token_audit_clean = true;

  double local_write_fraction() const {
    const auto total = wk_local_commits + wk_forwards;
    return total == 0 ? 0.0
                      : static_cast<double>(wk_local_commits) /
                            static_cast<double>(total);
  }
};

RunResult run_experiment(const RunConfig& config);

}  // namespace wankeeper::ycsb

#include "ycsb/workload.h"

namespace wankeeper::ycsb {

OpStream::OpStream(const WorkloadSpec& spec) : spec_(spec), rng_(spec.seed) {
  switch (spec_.distribution) {
    case KeyDistribution::kZipfian:
      zipfian_ = std::make_unique<Zipfian>(spec_.record_count, spec_.zipfian_s);
      break;
    case KeyDistribution::kHotspot:
      hotspot_ = std::make_unique<Hotspot>(spec_.record_count, spec_.hot_fraction,
                                           spec_.hot_op_fraction, spec_.hot_set_seed);
      break;
    case KeyDistribution::kUniform:
      break;
  }
}

OpStream::Op OpStream::next() {
  Op op;
  switch (spec_.distribution) {
    case KeyDistribution::kZipfian:
      op.rank = zipfian_->next(rng_);
      break;
    case KeyDistribution::kHotspot:
      op.rank = hotspot_->next(rng_);
      break;
    case KeyDistribution::kUniform:
      op.rank = rng_.uniform(spec_.record_count);
      break;
  }
  op.is_write = rng_.chance(spec_.write_fraction);
  return op;
}

KeyMapper::KeyMapper(std::string base_path, std::string client_tag,
                     double shared_fraction, std::uint64_t record_count)
    : base_(std::move(base_path)),
      tag_(std::move(client_tag)),
      shared_limit_(static_cast<std::uint64_t>(shared_fraction *
                                               static_cast<double>(record_count))),
      records_(record_count) {}

bool KeyMapper::is_shared(std::uint64_t rank) const { return rank < shared_limit_; }

std::string KeyMapper::path_of(std::uint64_t rank) const {
  if (is_shared(rank)) return base_ + "/s" + std::to_string(rank);
  return base_ + "/" + tag_ + "-" + std::to_string(rank);
}

std::vector<std::string> KeyMapper::all_paths() const {
  std::vector<std::string> out;
  out.reserve(records_);
  for (std::uint64_t r = 0; r < records_; ++r) out.push_back(path_of(r));
  return out;
}

std::vector<std::string> KeyMapper::private_paths() const {
  std::vector<std::string> out;
  for (std::uint64_t r = shared_limit_; r < records_; ++r) out.push_back(path_of(r));
  return out;
}

}  // namespace wankeeper::ycsb

#include "ycsb/metrics.h"

#include <algorithm>

namespace wankeeper::ycsb {

double AggregateMetrics::total_throughput() const {
  if (clients.empty()) return 0.0;
  std::uint64_t ops = 0;
  Time start = clients.front()->started;
  Time finish = clients.front()->finished;
  for (const auto* c : clients) {
    ops += c->ops;
    start = std::min(start, c->started);
    finish = std::max(finish, c->finished);
  }
  const Time span = finish - start;
  if (span <= 0) return 0.0;
  return static_cast<double>(ops) * static_cast<double>(kSecond) /
         static_cast<double>(span);
}

LatencyRecorder AggregateMetrics::merged_reads() const {
  LatencyRecorder out;
  for (const auto* c : clients) out.merge(c->read_latency);
  return out;
}

LatencyRecorder AggregateMetrics::merged_writes() const {
  LatencyRecorder out;
  for (const auto* c : clients) out.merge(c->write_latency);
  return out;
}

}  // namespace wankeeper::ycsb

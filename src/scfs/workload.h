// The SCFS metadata-update microbenchmark of Figure 10: clients in
// California and Frankfurt drive metadata updates against files they share
// to a configurable degree, with an optional per-site 80/20 hot spot.
#pragma once

#include <vector>

#include "ycsb/runner.h"

namespace wankeeper::scfs {

struct ScfsBenchConfig {
  ycsb::SystemKind system = ycsb::SystemKind::kWanKeeper;
  double overlap = 0.1;        // fraction of files shared between the sites
  bool hotspot = false;        // Fig 10b: 80% of ops on a per-site 20% hot set
  std::uint64_t files = 1000;
  std::uint64_t ops_per_site = 10000;
  std::uint64_t seed = 1;
};

struct ScfsBenchResult {
  double total_throughput = 0.0;
  // Index 0 = California, 1 = Frankfurt.
  double site_throughput[2] = {0.0, 0.0};
  double site_latency_ms[2] = {0.0, 0.0};
  std::vector<double> series_ca;   // ops/sec per 10 s window (Fig 10c)
  std::vector<double> series_fra;
  double local_write_fraction = 0.0;
  bool audit_clean = true;
};

ScfsBenchResult run_scfs_bench(const ScfsBenchConfig& config);

}  // namespace wankeeper::scfs

#include "scfs/workload.h"

namespace wankeeper::scfs {

ScfsBenchResult run_scfs_bench(const ScfsBenchConfig& config) {
  ycsb::RunConfig run;
  run.system = config.system;
  run.seed = config.seed;

  // Metadata updates are pure writes against the coordination service; the
  // per-site hot sets of Fig 10b come from per-client hot-set seeds.
  int i = 0;
  for (SiteId site : {ycsb::kCalifornia, ycsb::kFrankfurt}) {
    ycsb::ClientSpec client;
    client.site = site;
    client.shared_fraction = config.overlap;
    client.tag = site == ycsb::kCalifornia ? "ca" : "fra";
    client.workload.record_count = config.files;
    client.workload.op_count = config.ops_per_site;
    client.workload.write_fraction = 1.0;
    client.workload.distribution = config.hotspot
                                       ? ycsb::KeyDistribution::kHotspot
                                       : ycsb::KeyDistribution::kUniform;
    client.workload.hot_fraction = 0.2;
    client.workload.hot_op_fraction = 0.8;
    client.workload.hot_set_seed = 1000 + static_cast<std::uint64_t>(site);
    client.workload.seed = config.seed + 17 * static_cast<std::uint64_t>(i);
    run.clients.push_back(client);
    ++i;
  }

  const ycsb::RunResult r = ycsb::run_experiment(run);

  ScfsBenchResult out;
  out.total_throughput = r.total_throughput;
  for (int c = 0; c < 2; ++c) {
    out.site_throughput[c] = r.clients[static_cast<std::size_t>(c)].throughput();
    out.site_latency_ms[c] =
        r.clients[static_cast<std::size_t>(c)].write_latency.mean_ms();
  }
  out.series_ca = r.clients[0].series.ops_per_sec();
  out.series_fra = r.clients[1].series.ops_per_sec();
  out.local_write_fraction = r.local_write_fraction();
  out.audit_clean = r.token_audit_clean;
  return out;
}

}  // namespace wankeeper::scfs

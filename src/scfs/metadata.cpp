#include "scfs/metadata.h"

#include "common/buffer.h"

namespace wankeeper::scfs {

MetadataClient::MetadataClient(zk::Client& zk, std::string root)
    : zk_(zk), root_(std::move(root)) {}

std::string MetadataClient::znode_of(const std::string& root,
                                     const std::string& path) {
  // Flatten the SCFS path into one component: the MDS namespace is flat in
  // SCFS (a single metadata table), only the coordination keys matter.
  std::string flat = path;
  for (auto& c : flat) {
    if (c == '/') c = '_';
  }
  return root + "/" + flat;
}

std::vector<std::uint8_t> MetadataClient::encode(const FileMeta& meta) const {
  BufferWriter w;
  w.str(meta.path);
  w.u64(meta.size);
  w.u64(meta.mtime);
  w.str(meta.backend_ref);
  return w.take();
}

FileMeta MetadataClient::decode(const std::string& path,
                                const std::vector<std::uint8_t>& bytes) const {
  FileMeta meta;
  meta.path = path;
  if (bytes.empty()) return meta;
  BufferReader r(bytes);
  meta.path = r.str();
  meta.size = r.u64();
  meta.mtime = r.u64();
  meta.backend_ref = r.str();
  return meta;
}

void MetadataClient::init(std::function<void(store::Rc)> cb) {
  zk_.create(root_, "", false, false,
             [cb = std::move(cb)](const zk::ClientResult& r) {
               const store::Rc rc =
                   r.rc == store::Rc::kNodeExists ? store::Rc::kOk : r.rc;
               if (cb) cb(rc);
             });
}

void MetadataClient::create_file(const std::string& path, Callback cb) {
  FileMeta meta;
  meta.path = path;
  zk_.create(znode_of(root_, path), encode(meta), false, false,
             [cb = std::move(cb), meta](const zk::ClientResult& r) {
               if (cb) cb(r.rc, meta);
             });
}

void MetadataClient::update(const FileMeta& meta, Callback cb) {
  zk_.set_data(znode_of(root_, meta.path), encode(meta), -1,
               [this, cb = std::move(cb), meta](const zk::ClientResult& r) {
                 FileMeta out = meta;
                 out.version = r.stat.version;
                 if (cb) cb(r.rc, out);
               });
}

void MetadataClient::lookup(const std::string& path, Callback cb) {
  zk_.get_data(znode_of(root_, path), false,
               [this, path, cb = std::move(cb)](const zk::ClientResult& r) {
                 FileMeta meta = decode(path, r.data);
                 meta.version = r.stat.version;
                 if (cb) cb(r.rc, meta);
               });
}

void MetadataClient::remove_file(const std::string& path,
                                 std::function<void(store::Rc)> cb) {
  zk_.remove(znode_of(root_, path), -1,
             [cb = std::move(cb)](const zk::ClientResult& r) {
               if (cb) cb(r.rc);
             });
}

void MetadataClient::list_dir(ListCallback cb) {
  zk_.get_children(root_, false,
                   [cb = std::move(cb)](const zk::ClientResult& r) {
                     if (cb) cb(r.rc, r.children);
                   });
}

}  // namespace wankeeper::scfs

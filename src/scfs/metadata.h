// SCFS metadata service model (paper §IV-C): the Shared Cloud-backed File
// System keeps file metadata in a coordination service and uses it to
// arbitrate multi-client access; file *data* goes to cloud stores and never
// touches the coordination path. MetadataClient is the MDS-facing slice of
// an SCFS client: metadata lookups are local reads, metadata updates are
// coordination writes — the operations Figure 10 measures.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "zk/client.h"

namespace wankeeper::scfs {

struct FileMeta {
  std::string path;           // SCFS-visible path, e.g. "/docs/a.txt"
  std::uint64_t size = 0;
  std::uint64_t mtime = 0;    // application timestamp
  std::string backend_ref;    // opaque pointer into the cloud data store
  std::int32_t version = 0;   // metadata version (from the znode)
};

class MetadataClient {
 public:
  using Callback = std::function<void(store::Rc, const FileMeta&)>;
  using ListCallback =
      std::function<void(store::Rc, const std::vector<std::string>&)>;

  // All metadata lives under `root` (default "/scfs").
  explicit MetadataClient(zk::Client& zk, std::string root = "/scfs");

  // Creates the metadata root (idempotent).
  void init(std::function<void(store::Rc)> cb);

  void create_file(const std::string& path, Callback cb);
  // Metadata update (size/mtime/backend pointer): one coordination write.
  void update(const FileMeta& meta, Callback cb);
  void lookup(const std::string& path, Callback cb);
  void remove_file(const std::string& path, std::function<void(store::Rc)> cb);
  void list_dir(ListCallback cb);

  static std::string znode_of(const std::string& root, const std::string& path);

 private:
  std::vector<std::uint8_t> encode(const FileMeta& meta) const;
  FileMeta decode(const std::string& path,
                  const std::vector<std::uint8_t>& bytes) const;

  zk::Client& zk_;
  std::string root_;
};

}  // namespace wankeeper::scfs

// The paper's geo-distributed iterating-writers benchmark (§IV-B, Fig 8):
// several writers at different sites share one logical log. Each writer
// acquires a lock znode through the coordination service, records its
// region and ledger in a shared metadata znode, writes entries to its
// region's bookies for a fixed duration, stamps a finish record, and
// releases the lock for the next writer. The lock/metadata path is exactly
// where ZooKeeper bottlenecks over WAN and where WanKeeper's token
// migration pays off (the log's "home region" holds the tokens).
#pragma once

#include <memory>

#include "bookkeeper/ledger.h"
#include "common/stats.h"
#include "ycsb/testbed.h"
#include "zk/client.h"

namespace wankeeper::bk {

// One iterating writer. Drives its zk::Client through the acquire ->
// publish -> write -> finish -> release loop until stop() is called.
class GeoWriter {
 public:
  // `fair_lock` selects the lock recipe: false = simple create/watch lock
  // (the paper's literal "requesting and acquiring a lock"; waiters race on
  // release, which biases turns toward the log's home region since local
  // waiters react a WAN RTT sooner); true = sequential-znode FIFO queue
  // (Curator-style fair lock, strict rotation; exercises bulk tokens).
  GeoWriter(zk::Client& zk, LedgerWriter& ledger, std::string tag,
            Time write_duration, bool fair_lock = false);

  void run();
  void stop() { stopped_ = true; }

  std::uint64_t rounds() const { return rounds_; }
  const LatencyRecorder& handoff_latency() const { return handoff_latency_; }

 private:
  void enqueue();       // fair recipe
  void check_lock();    // fair recipe
  void try_acquire();   // herd recipe
  void on_acquired();
  void publish_then_write();
  void finish_round();

  zk::Client& zk_;
  LedgerWriter& ledger_;
  std::string tag_;
  Time write_duration_;
  bool fair_lock_;
  bool stopped_ = false;
  bool waiting_herd_ = false;
  std::string my_node_;    // our sequential queue node (held position)
  std::string watching_;   // predecessor we are waiting on
  Time acquire_started_ = 0;
  Time slot_deadline_ = 0;
  std::uint64_t rounds_ = 0;
  LatencyRecorder handoff_latency_;  // lock request -> acquired
};

struct BkBenchConfig {
  ycsb::SystemKind system = ycsb::SystemKind::kWanKeeper;
  Time write_duration = 400 * kMillisecond;
  Time horizon = 60 * kSecond;        // measured window
  std::size_t ca_writers = 3;         // paper: 3 in California...
  std::size_t fra_writers = 1;        // ...1 in Frankfurt, 0 in Virginia
  std::size_t bookies_per_region = 3;
  std::size_t write_quorum = 2;
  bool fair_lock = false;
  std::string wk_policy = "consecutive:2";
  std::uint64_t seed = 1;
};

struct BkBenchResult {
  double entries_per_sec = 0.0;
  std::uint64_t total_entries = 0;
  std::uint64_t total_rounds = 0;
  double mean_handoff_ms = 0.0;
  bool audit_clean = true;
  ycsb::Testbed::WkCounters wk;  // WanKeeper token accounting
};

BkBenchResult run_bk_bench(const BkBenchConfig& config);

}  // namespace wankeeper::bk

// Client-side ledger writer: streams entries to an ensemble of bookies
// with a write quorum, closed-loop (entry n+1 is sent once n reaches its
// quorum), mirroring the BookKeeper client's add path.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "bookkeeper/bookie.h"

namespace wankeeper::bk {

class LedgerWriter : public sim::Actor {
 public:
  LedgerWriter(sim::Simulator& sim, std::string name,
               std::vector<NodeId> ensemble, std::size_t write_quorum,
               std::size_t payload_bytes = 1024);

  void set_network(sim::Network& net) { net_ = &net; }

  // Begin a new ledger; entry ids restart from 0.
  void open(LedgerId ledger);
  // Add entries until `deadline`, then call `done(entries_written)`.
  // Closed-loop: respects the bookie ack round trip per entry.
  void write_until(Time deadline, std::function<void(std::uint64_t)> done);

  std::uint64_t total_entries() const { return total_entries_; }
  LedgerId current_ledger() const { return ledger_; }

  void on_message(NodeId from, const sim::MessagePtr& msg) override;

 private:
  void send_next();

  sim::Network* net_ = nullptr;
  std::vector<NodeId> ensemble_;
  std::size_t write_quorum_;
  std::vector<std::uint8_t> payload_;
  LedgerId ledger_ = -1;
  EntryId next_entry_ = 0;
  std::set<NodeId> acks_;
  Time deadline_ = 0;
  bool writing_ = false;
  std::function<void(std::uint64_t)> done_;
  std::uint64_t round_entries_ = 0;
  std::uint64_t total_entries_ = 0;
};

}  // namespace wankeeper::bk

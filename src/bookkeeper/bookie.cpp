#include "bookkeeper/bookie.h"

namespace wankeeper::bk {

Bookie::Bookie(sim::Simulator& sim, std::string name, Time add_latency)
    : Actor(sim, std::move(name)), add_latency_(add_latency) {}

void Bookie::on_message(NodeId from, const sim::MessagePtr& msg) {
  if (const auto* m = sim::msg_cast<AddEntryMsg>(msg.get())) {
    const LedgerId ledger = m->ledger;
    const EntryId entry = m->entry;
    auto payload = m->payload;
    // Journal write before the ack, as a real bookie does.
    set_timer(add_latency_, [this, from, ledger, entry, payload]() {
      ledgers_[ledger][entry] = payload;
      ++entries_stored_;
      auto ack = sim::make_mutable_message<AddEntryAckMsg>();
      ack->ledger = ledger;
      ack->entry = entry;
      net_->send(id(), from, std::move(ack));
    });
    return;
  }
  if (const auto* m = sim::msg_cast<ReadEntryMsg>(msg.get())) {
    auto reply = sim::make_mutable_message<ReadEntryReplyMsg>();
    reply->ledger = m->ledger;
    reply->entry = m->entry;
    const auto lit = ledgers_.find(m->ledger);
    if (lit != ledgers_.end()) {
      const auto eit = lit->second.find(m->entry);
      if (eit != lit->second.end()) {
        reply->found = true;
        reply->payload = eit->second;
      }
    }
    net_->send(id(), from, std::move(reply));
    return;
  }
}

bool Bookie::has_entry(LedgerId ledger, EntryId entry) const {
  const auto lit = ledgers_.find(ledger);
  return lit != ledgers_.end() && lit->second.count(entry) != 0;
}

void Bookie::on_crash() { ledgers_.clear(); }

}  // namespace wankeeper::bk

#include "bookkeeper/ledger.h"

namespace wankeeper::bk {

LedgerWriter::LedgerWriter(sim::Simulator& sim, std::string name,
                           std::vector<NodeId> ensemble, std::size_t write_quorum,
                           std::size_t payload_bytes)
    : Actor(sim, std::move(name)),
      ensemble_(std::move(ensemble)),
      write_quorum_(write_quorum),
      payload_(payload_bytes, 0x62) {}

void LedgerWriter::open(LedgerId ledger) {
  ledger_ = ledger;
  next_entry_ = 0;
}

void LedgerWriter::write_until(Time deadline, std::function<void(std::uint64_t)> done) {
  deadline_ = deadline;
  done_ = std::move(done);
  writing_ = true;
  round_entries_ = 0;
  send_next();
}

void LedgerWriter::send_next() {
  if (now() >= deadline_) {
    writing_ = false;
    auto done = std::move(done_);
    if (done) done(round_entries_);
    return;
  }
  acks_.clear();
  for (NodeId bookie : ensemble_) {
    auto m = sim::make_mutable_message<AddEntryMsg>();
    m->ledger = ledger_;
    m->entry = next_entry_;
    m->payload = payload_;
    net_->send(id(), bookie, std::move(m));
  }
}

void LedgerWriter::on_message(NodeId from, const sim::MessagePtr& msg) {
  const auto* ack = sim::msg_cast<AddEntryAckMsg>(msg.get());
  if (ack == nullptr || !writing_) return;
  if (ack->ledger != ledger_ || ack->entry != next_entry_) return;
  acks_.insert(from);
  if (acks_.size() < write_quorum_) return;
  ++next_entry_;
  ++round_entries_;
  ++total_entries_;
  send_next();
}

}  // namespace wankeeper::bk

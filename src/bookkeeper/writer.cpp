#include "bookkeeper/writer.h"

#include <algorithm>
#include <stdexcept>

namespace wankeeper::bk {

namespace {
constexpr const char* kLocksDir = "/bk/log/locks";
constexpr const char* kLockPath = "/bk/log/lock";
constexpr const char* kMetaPath = "/bk/log/meta";
}  // namespace

GeoWriter::GeoWriter(zk::Client& zk, LedgerWriter& ledger, std::string tag,
                     Time write_duration, bool fair_lock)
    : zk_(zk),
      ledger_(ledger),
      tag_(std::move(tag)),
      write_duration_(write_duration),
      fair_lock_(fair_lock) {
  zk_.set_watch_handler([this](const std::string& path, store::WatchEvent event) {
    if (stopped_ || event != store::WatchEvent::kDeleted) return;
    if (fair_lock_) {
      // Fair recipe: deletion of our predecessor is our turn signal.
      if (path == watching_) {
        watching_.clear();
        check_lock();
      }
    } else if (path == kLockPath && waiting_herd_) {
      // Herd recipe: the lock vanished; race to take it.
      waiting_herd_ = false;
      try_acquire();
    }
  });
}

void GeoWriter::run() {
  acquire_started_ = zk_.sim().now();
  if (fair_lock_) {
    enqueue();
  } else {
    try_acquire();
  }
}

void GeoWriter::try_acquire() {
  if (stopped_) return;
  zk_.create(kLockPath, tag_, /*ephemeral=*/true, /*sequential=*/false,
             [this](const zk::ClientResult& r) {
               if (stopped_) return;
               if (r.ok()) {
                 my_node_ = kLockPath;
                 on_acquired();
                 return;
               }
               if (r.rc == store::Rc::kNodeExists) {
                 waiting_herd_ = true;
                 zk_.exists_node(kLockPath, /*watch=*/true,
                                 [this](const zk::ClientResult& er) {
                                   if (stopped_ || !waiting_herd_) return;
                                   if (er.rc == store::Rc::kNoNode) {
                                     waiting_herd_ = false;
                                     try_acquire();  // released already
                                   }
                                 });
                 return;
               }
               try_acquire();  // transient failure
             });
}

void GeoWriter::enqueue() {
  if (stopped_) return;
  zk_.create(std::string(kLocksDir) + "/w-", tag_, /*ephemeral=*/true,
             /*sequential=*/true, [this](const zk::ClientResult& r) {
               if (stopped_) return;
               if (!r.ok()) {
                 enqueue();  // transient failure
                 return;
               }
               my_node_ = r.created_path;
               check_lock();
             });
}

void GeoWriter::check_lock() {
  if (stopped_ || my_node_.empty()) return;
  zk_.get_children(kLocksDir, false, [this](const zk::ClientResult& r) {
    if (stopped_ || my_node_.empty()) return;
    if (!r.ok() || r.children.empty()) {
      check_lock();
      return;
    }
    std::vector<std::string> sorted = r.children;
    std::sort(sorted.begin(), sorted.end());
    const std::string mine = my_node_.substr(std::string(kLocksDir).size() + 1);
    const auto it = std::find(sorted.begin(), sorted.end(), mine);
    if (it == sorted.end()) {
      // Our node vanished (session hiccup): start over.
      my_node_.clear();
      enqueue();
      return;
    }
    if (it == sorted.begin()) {
      on_acquired();
      return;
    }
    // Watch the predecessor; its deletion is our turn signal.
    const std::string pred = std::string(kLocksDir) + "/" + *(it - 1);
    watching_ = pred;
    zk_.exists_node(pred, /*watch=*/true, [this, pred](const zk::ClientResult& er) {
      if (stopped_) return;
      if (er.rc == store::Rc::kNoNode && watching_ == pred) {
        watching_.clear();
        check_lock();  // predecessor already gone
      }
    });
  });
}

void GeoWriter::on_acquired() {
  handoff_latency_.record(zk_.sim().now() - acquire_started_);
  // The paper allots each writer a fixed time covering "writing the log
  // metadata, creating local ledger, and actually writing to the log":
  // coordination latency eats into the slot, which is exactly where the
  // WAN coordination service shows up in log throughput.
  slot_deadline_ = zk_.sim().now() + write_duration_;
  publish_then_write();
}

void GeoWriter::publish_then_write() {
  // Record region + new ledger in the shared metadata znode, create the
  // ledger's metadata, then stream entries to the local bookies.
  const LedgerId ledger_id =
      static_cast<LedgerId>(zk_.session() * 1000000 + static_cast<std::int64_t>(rounds_));
  const std::string meta = tag_ + ":ledger=" + std::to_string(ledger_id);
  zk_.set_data(kMetaPath, meta, -1, [this, ledger_id](const zk::ClientResult& r) {
    if (stopped_) return;
    if (!r.ok()) {
      finish_round();
      return;
    }
    zk_.create("/bk/ledgers/" + tag_ + "-" + std::to_string(rounds_), "", false,
               false, [this, ledger_id](const zk::ClientResult&) {
                 if (stopped_) return;
                 ledger_.open(ledger_id);
                 ledger_.write_until(slot_deadline_,
                                     [this](std::uint64_t) { finish_round(); });
               });
  });
}

void GeoWriter::finish_round() {
  // Stamp the finish record, release the lock (delete our queue node), and
  // immediately re-enqueue for the next turn.
  const std::string fin = tag_ + ":finished=" + std::to_string(rounds_);
  zk_.set_data(kMetaPath, fin, -1, [this](const zk::ClientResult&) {
    const std::string node = my_node_;
    my_node_.clear();
    zk_.remove(node, -1, [this](const zk::ClientResult&) {
      ++rounds_;
      if (stopped_) return;
      acquire_started_ = zk_.sim().now();
      if (fair_lock_) {
        enqueue();
      } else {
        try_acquire();
      }
    });
  });
}

BkBenchResult run_bk_bench(const BkBenchConfig& config) {
  ycsb::Testbed bed(config.system, config.seed, config.wk_policy);
  sim::Simulator& sim = bed.sim();
  sim::Network& net = bed.net();

  // Bookies per region (data plane).
  std::vector<std::vector<NodeId>> bookies_by_site(3);
  std::vector<std::unique_ptr<Bookie>> bookies;
  for (SiteId site : {ycsb::kVirginia, ycsb::kCalifornia, ycsb::kFrankfurt}) {
    for (std::size_t i = 0; i < config.bookies_per_region; ++i) {
      auto bookie = std::make_unique<Bookie>(
          sim, "bookie-s" + std::to_string(site) + "-" + std::to_string(i));
      const NodeId id = net.add_node(*bookie, site);
      bookie->set_network(net);
      bookies_by_site[static_cast<std::size_t>(site)].push_back(id);
      bookies.push_back(std::move(bookie));
    }
  }

  // Base znodes, created from Virginia.
  {
    auto setup = bed.make_client("bk-setup", ycsb::kVirginia, 500);
    sim.run_for(500 * kMillisecond);
    bool done = false;
    setup->create("/bk", "", false, false, [&](const zk::ClientResult&) {
      setup->create("/bk/log", "", false, false, [&](const zk::ClientResult&) {
        setup->create(kLocksDir, "", false, false, [&](const zk::ClientResult&) {
          setup->create("/bk/ledgers", "", false, false, [&](const zk::ClientResult&) {
            setup->create(kMetaPath, "init", false, false,
                          [&](const zk::ClientResult&) { done = true; });
          });
        });
      });
    });
    const Time guard = sim.now() + 60 * kSecond;
    while (!done && sim.now() < guard) sim.run_for(50 * kMillisecond);
    if (!done) throw std::runtime_error("bookkeeper setup failed");
    setup->close();
    sim.run_for(2 * kSecond);
  }

  // Writers: 3 in California, 1 in Frankfurt (paper Fig 8a).
  struct WriterBundle {
    std::unique_ptr<zk::Client> zk;
    std::unique_ptr<LedgerWriter> ledger;
    std::unique_ptr<GeoWriter> writer;
  };
  std::vector<WriterBundle> writers;
  int wid = 0;
  auto add_writer = [&](SiteId site) {
    WriterBundle b;
    const std::string tag = "w" + std::to_string(wid) + "-s" + std::to_string(site);
    b.zk = bed.make_client("zk-" + tag, site, 600 + wid);
    b.ledger = std::make_unique<LedgerWriter>(
        sim, "lw-" + tag, bookies_by_site[static_cast<std::size_t>(site)],
        config.write_quorum);
    net.add_node(*b.ledger, site);
    b.ledger->set_network(net);
    b.writer = std::make_unique<GeoWriter>(*b.zk, *b.ledger, tag,
                                           config.write_duration,
                                           config.fair_lock);
    writers.push_back(std::move(b));
    ++wid;
  };
  for (std::size_t i = 0; i < config.ca_writers; ++i) add_writer(ycsb::kCalifornia);
  for (std::size_t i = 0; i < config.fra_writers; ++i) add_writer(ycsb::kFrankfurt);

  sim.run_for(1 * kSecond);  // sessions established
  const Time start = sim.now();
  std::uint64_t entries_before = 0;
  for (auto& b : writers) entries_before += b.ledger->total_entries();
  for (auto& b : writers) b.writer->run();
  sim.run_until(start + config.horizon);

  BkBenchResult result;
  for (auto& b : writers) {
    b.writer->stop();
    result.total_entries += b.ledger->total_entries();
    result.total_rounds += b.writer->rounds();
  }
  result.total_entries -= entries_before;
  result.entries_per_sec = static_cast<double>(result.total_entries) *
                           static_cast<double>(kSecond) /
                           static_cast<double>(config.horizon);
  LatencyRecorder handoffs;
  for (auto& b : writers) handoffs.merge(b.writer->handoff_latency());
  result.mean_handoff_ms = handoffs.mean_ms();
  result.audit_clean = bed.audit_clean();
  result.wk = bed.wk_counters();
  return result;
}

}  // namespace wankeeper::bk

// Bookies: BookKeeper's ledger-storage servers. Deliberately simple — the
// paper's BookKeeper experiment stresses only the *coordination* path
// (ledger metadata and the writer lock live in ZooKeeper/WanKeeper); entry
// storage is local to each region and off the coordination critical path.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "sim/actor.h"
#include "sim/network.h"

namespace wankeeper::bk {

using LedgerId = std::int64_t;
using EntryId = std::int64_t;

struct AddEntryMsg : sim::Message {
  LedgerId ledger = 0;
  EntryId entry = 0;
  std::vector<std::uint8_t> payload;
  std::size_t wire_size() const override { return 32 + payload.size(); }
  const char* name() const override { return "bk.addEntry"; }
};

struct AddEntryAckMsg : sim::Message {
  LedgerId ledger = 0;
  EntryId entry = 0;
  const char* name() const override { return "bk.addEntryAck"; }
};

struct ReadEntryMsg : sim::Message {
  LedgerId ledger = 0;
  EntryId entry = 0;
  const char* name() const override { return "bk.readEntry"; }
};

struct ReadEntryReplyMsg : sim::Message {
  LedgerId ledger = 0;
  EntryId entry = 0;
  bool found = false;
  std::vector<std::uint8_t> payload;
  std::size_t wire_size() const override { return 32 + payload.size(); }
  const char* name() const override { return "bk.readEntryReply"; }
};

class Bookie : public sim::Actor {
 public:
  Bookie(sim::Simulator& sim, std::string name, Time add_latency = 200 * kMicrosecond);

  void set_network(sim::Network& net) { net_ = &net; }

  void on_message(NodeId from, const sim::MessagePtr& msg) override;

  std::uint64_t entries_stored() const { return entries_stored_; }
  bool has_entry(LedgerId ledger, EntryId entry) const;

 protected:
  void on_crash() override;

 private:
  sim::Network* net_ = nullptr;
  Time add_latency_;  // fsync + journal model
  std::map<LedgerId, std::map<EntryId, std::vector<std::uint8_t>>> ledgers_;
  std::uint64_t entries_stored_ = 0;
};

}  // namespace wankeeper::bk

#include "sim/simulator.h"

#include <chrono>
#include <stdexcept>

namespace wankeeper::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {
  // Every fault firing lands in the flight recorder, and an *armed* firing
  // (a hook is about to crash someone) flags the run for a post-mortem dump
  // — by the time the resulting failure surfaces, the interesting part of
  // the history is this instant, not the symptom.
  faults_.set_observer([this](const std::string& point,
                              const std::string& actor, bool armed) {
    obs_.events.record(now_, kNoSite, obs::EventKind::kFault, actor,
                       armed ? "armed hook firing" : "", point);
    if (armed) obs_.events.request_dump("fault hook fired: " + point);
  });
}

EventId Simulator::at(Time when, std::function<void()> fn) {
  if (when < now_) throw std::invalid_argument("scheduling into the past");
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn)});
  ++profile_.events_scheduled;
  if (queue_.size() > profile_.queue_high_water) {
    profile_.queue_high_water = queue_.size();
  }
  return id;
}

void Simulator::cancel(EventId id) {
  cancelled_.insert(id);
  ++profile_.events_cancelled;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    ++profile_.events_executed;
    if (profiling_) {
      const auto begin = std::chrono::steady_clock::now();
      ev.fn();
      const auto end = std::chrono::steady_clock::now();
      profile_.wall_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
              .count());
    } else {
      ev.fn();
    }
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
}

void Simulator::run_until(Time deadline) {
  while (!queue_.empty()) {
    // Peek past cancelled entries without executing.
    Event ev = queue_.top();
    if (cancelled_.count(ev.id) != 0) {
      queue_.pop();
      cancelled_.erase(ev.id);
      continue;
    }
    if (ev.time > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace wankeeper::sim

#include "sim/simulator.h"

#include <chrono>
#include <stdexcept>

namespace wankeeper::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {
  // Every fault firing lands in the flight recorder, and an *armed* firing
  // (a hook is about to crash someone) flags the run for a post-mortem dump
  // — by the time the resulting failure surfaces, the interesting part of
  // the history is this instant, not the symptom.
  faults_.set_observer([this](const std::string& point,
                              const std::string& actor, bool armed) {
    obs_.events.record(now_, kNoSite, obs::EventKind::kFault, actor,
                       armed ? "armed hook firing" : "", point);
    if (armed) obs_.events.request_dump("fault hook fired: " + point);
  });
}

Simulator::~Simulator() {
  // Destroy callables still sitting in queued slots (their captures may own
  // resources); the slab itself is freed by the chunk vector.
  while (!queue_.empty()) {
    const QueueEntry ev = queue_.top();
    queue_.pop();
    Slot& s = *slot(ev.slot);
    if (s.queued) {
      s.destroy(s.heap != nullptr ? s.heap : static_cast<void*>(s.buf));
      s.queued = false;
    }
  }
}

void Simulator::throw_past_schedule() {
  throw std::invalid_argument("scheduling into the past");
}

std::uint32_t Simulator::acquire_slot() {
  ++live_;
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slot(index)->next_free;
    ++profile_.events_pooled;
    return index;
  }
  const std::uint32_t index =
      static_cast<std::uint32_t>(chunks_.size() * kSlotsPerChunk);
  chunks_.push_back(std::make_unique<Slot[]>(kSlotsPerChunk));
  // Chain all but the first new slot onto the free list.
  Slot* chunk = chunks_.back().get();
  for (std::size_t i = kSlotsPerChunk - 1; i >= 1; --i) {
    chunk[i].next_free = free_head_;
    free_head_ = index + static_cast<std::uint32_t>(i);
  }
  ++profile_.events_grown;
  return index;
}

void Simulator::release_slot(std::uint32_t index, Slot& s) {
  ++s.gen;  // retire every EventId handed out for this occupancy
  s.invoke = nullptr;
  s.destroy = nullptr;
  s.heap = nullptr;
  s.next_free = free_head_;
  free_head_ = index;
}

void Simulator::cancel(EventId id) {
  const std::uint32_t index = static_cast<std::uint32_t>(id & 0xffffffffu);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (static_cast<std::size_t>(index) >= chunks_.size() * kSlotsPerChunk) {
    return;
  }
  Slot& s = *slot(index);
  if (s.gen != gen || !s.queued || s.cancelled) return;
  s.cancelled = true;
  ++cancelled_live_;
  ++profile_.events_cancelled;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const QueueEntry ev = queue_.top();
    queue_.pop();
    Slot& s = *slot(ev.slot);
    --live_;
    if (s.cancelled) {
      --cancelled_live_;
      s.queued = false;
      s.destroy(s.heap != nullptr ? s.heap : static_cast<void*>(s.buf));
      release_slot(ev.slot, s);
      continue;
    }
    s.queued = false;
    now_ = ev.time;
    ++profile_.events_executed;
    void* fn = s.heap != nullptr ? s.heap : static_cast<void*>(s.buf);
    if (profiling_) {
      const auto begin = std::chrono::steady_clock::now();
      s.invoke(fn);
      const auto end = std::chrono::steady_clock::now();
      profile_.wall_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
              .count());
    } else {
      s.invoke(fn);
    }
    // The callable may have scheduled new events (possibly growing the
    // slab) but the executing slot stays ours until this moment.
    s.destroy(s.heap != nullptr ? s.heap : static_cast<void*>(s.buf));
    release_slot(ev.slot, s);
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
}

void Simulator::run_until(Time deadline) {
  while (!queue_.empty()) {
    // Drop cancelled entries without executing or advancing the clock.
    const QueueEntry ev = queue_.top();
    Slot& s = *slot(ev.slot);
    if (s.cancelled) {
      queue_.pop();
      --live_;
      --cancelled_live_;
      s.queued = false;
      s.destroy(s.heap != nullptr ? s.heap : static_cast<void*>(s.buf));
      release_slot(ev.slot, s);
      continue;
    }
    if (ev.time > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace wankeeper::sim

#include "sim/simulator.h"

#include <stdexcept>

namespace wankeeper::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

EventId Simulator::at(Time when, std::function<void()> fn) {
  if (when < now_) throw std::invalid_argument("scheduling into the past");
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn)});
  return id;
}

void Simulator::cancel(EventId id) { cancelled_.insert(id); }

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
}

void Simulator::run_until(Time deadline) {
  while (!queue_.empty()) {
    // Peek past cancelled entries without executing.
    Event ev = queue_.top();
    if (cancelled_.count(ev.id) != 0) {
      queue_.pop();
      cancelled_.erase(ev.id);
      continue;
    }
    if (ev.time > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace wankeeper::sim

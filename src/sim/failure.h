// Declarative failure schedules for integration and property tests:
// crash/restart nodes and cut/heal partitions at given virtual times.
#pragma once

#include <vector>

#include "common/types.h"
#include "sim/network.h"

namespace wankeeper::sim {

class FailureInjector {
 public:
  explicit FailureInjector(Network& net) : net_(net) {}

  // Crash `node` at `when`, restart `down_for` later (0 = stay down).
  void crash_at(Time when, NodeId node, Time down_for = 0);
  // Cut sites a<->b at `when`, heal `cut_for` later (0 = stay cut).
  void partition_at(Time when, SiteId a, SiteId b, Time cut_for = 0);
  // Isolate a whole site, heal after `cut_for` (0 = stay cut).
  void isolate_site_at(Time when, SiteId s, Time cut_for = 0);

 private:
  Network& net_;
};

}  // namespace wankeeper::sim

// Declarative failure schedules for integration and property tests:
// crash/restart nodes and cut/heal partitions at given virtual times.
// Every action is a scheduled call into sim::Network's single link/liveness
// state (the one link_up() reads), so injector schedules and scenario
// scripts (sim/scenario.h) compose without desyncing.
#pragma once

#include <vector>

#include "common/types.h"
#include "sim/network.h"

namespace wankeeper::sim {

class FailureInjector {
 public:
  explicit FailureInjector(Network& net) : net_(net) {}

  // Crash `node` at `when`, restart `down_for` later (0 = stay down).
  void crash_at(Time when, NodeId node, Time down_for = 0);
  // Cut sites a<->b at `when`, heal `cut_for` later (0 = stay cut).
  void partition_at(Time when, SiteId a, SiteId b, Time cut_for = 0);
  // Cut only from -> to (asymmetric), heal `cut_for` later (0 = stay cut).
  void partition_oneway_at(Time when, SiteId from, SiteId to, Time cut_for = 0);
  // Isolate a whole site, heal after `cut_for` (0 = stay cut).
  void isolate_site_at(Time when, SiteId s, Time cut_for = 0);
  // Degrade from -> to (drop rate + extra latency), restore after
  // `degraded_for` (0 = stay degraded).
  void degrade_link_at(Time when, SiteId from, SiteId to, double drop_rate,
                       Time extra_latency, Time degraded_for = 0);

 private:
  Network& net_;
};

}  // namespace wankeeper::sim

#include "sim/scenario.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/logging.h"

namespace wankeeper::sim {

namespace {

std::string fmt_ms(Time t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1fms", static_cast<double>(t) / kMillisecond);
  return buf;
}

std::string fmt_s(Time t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(t) / kSecond);
  return buf;
}

}  // namespace

Scenario::Scenario(std::string name, std::size_t sites)
    : name_(std::move(name)), sites_(sites) {}

Scenario& Scenario::add(
    Time when, std::string describe,
    std::function<void(Network&, const ScenarioHooks&, Scenario&)> fn) {
  horizon_ = std::max(horizon_, when);
  events_.push_back(Event{when, std::move(describe), std::move(fn)});
  return *this;
}

Scenario& Scenario::set_link_latency(Time when, SiteId a, SiteId b, Time one_way,
                                     bool symmetric) {
  return add(when,
             "set_latency " + std::to_string(a) + (symmetric ? "<->" : "->") +
                 std::to_string(b) + " " + fmt_ms(one_way),
             [a, b, one_way, symmetric](Network& net, const ScenarioHooks&,
                                        Scenario&) {
               net.set_latency(a, b, one_way, symmetric);
             });
}

Scenario& Scenario::scale_wan_latency(Time when, double factor) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", factor);
  return add(when, std::string("scale_wan_latency x") + buf,
             [factor](Network& net, const ScenarioHooks&, Scenario&) {
               net.scale_wan_latency(factor);
             });
}

Scenario& Scenario::degrade_link(Time when, SiteId a, SiteId b, double drop_rate,
                                 Time extra_latency, Time duration,
                                 bool symmetric) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", drop_rate);
  const std::string arrow = symmetric ? "<->" : "->";
  add(when,
      "degrade " + std::to_string(a) + arrow + std::to_string(b) + " drop=" +
          buf + " +" + fmt_ms(extra_latency) +
          (duration > 0 ? " for " + fmt_s(duration) : ""),
      [a, b, drop_rate, extra_latency, symmetric](Network& net,
                                                  const ScenarioHooks&,
                                                  Scenario&) {
        net.degrade_link(a, b, drop_rate, extra_latency);
        if (symmetric) net.degrade_link(b, a, drop_rate, extra_latency);
      });
  if (duration > 0) {
    add(when + duration,
        "restore " + std::to_string(a) + arrow + std::to_string(b),
        [a, b, symmetric](Network& net, const ScenarioHooks&, Scenario&) {
          net.degrade_link(a, b, 0.0, 0);
          if (symmetric) net.degrade_link(b, a, 0.0, 0);
        });
  }
  return *this;
}

Scenario& Scenario::flap_link(Time first_down, SiteId a, SiteId b, Time down_for,
                              Time up_for, int cycles) {
  Time t = first_down;
  for (int c = 0; c < cycles; ++c) {
    partition(t, a, b, down_for);
    t += down_for + up_for;
  }
  return *this;
}

Scenario& Scenario::partition(Time when, SiteId a, SiteId b, Time cut_for) {
  add(when,
      "partition " + std::to_string(a) + "<->" + std::to_string(b) +
          (cut_for > 0 ? " for " + fmt_s(cut_for) : ""),
      [a, b](Network& net, const ScenarioHooks&, Scenario&) {
        net.partition(a, b, true);
      });
  if (cut_for > 0) {
    add(when + cut_for,
        "heal " + std::to_string(a) + "<->" + std::to_string(b),
        [a, b](Network& net, const ScenarioHooks&, Scenario&) {
          net.partition(a, b, false);
        });
  }
  return *this;
}

Scenario& Scenario::partition_oneway(Time when, SiteId from, SiteId to,
                                     Time cut_for) {
  add(when,
      "partition_oneway " + std::to_string(from) + "->" + std::to_string(to) +
          (cut_for > 0 ? " for " + fmt_s(cut_for) : ""),
      [from, to](Network& net, const ScenarioHooks&, Scenario&) {
        net.partition_oneway(from, to, true);
      });
  if (cut_for > 0) {
    add(when + cut_for,
        "heal_oneway " + std::to_string(from) + "->" + std::to_string(to),
        [from, to](Network& net, const ScenarioHooks&, Scenario&) {
          net.partition_oneway(from, to, false);
        });
  }
  return *this;
}

Scenario& Scenario::site_leave(Time when, SiteId s, Time gone_for) {
  add(when,
      "site_leave " + std::to_string(s) +
          (gone_for > 0 ? " rejoin_after " + fmt_s(gone_for) : ""),
      [s](Network& net, const ScenarioHooks& hooks, Scenario&) {
        if (hooks.site_down) {
          hooks.site_down(s);
        } else {
          net.isolate_site(s, true);
        }
      });
  if (gone_for > 0) {
    add(when + gone_for, "site_rejoin " + std::to_string(s),
        [s](Network& net, const ScenarioHooks& hooks, Scenario&) {
          if (hooks.site_up) {
            hooks.site_up(s);
          } else {
            net.isolate_site(s, false);
          }
        });
  }
  return *this;
}

Scenario& Scenario::load_factor(Time when, SiteId s, double factor) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", factor);
  return add(when,
             "load_factor site " + std::to_string(s) + " x" + buf,
             [s, factor](Network&, const ScenarioHooks&, Scenario& self) {
               if (static_cast<std::size_t>(s) < self.load_.size()) {
                 self.load_[static_cast<std::size_t>(s)] = factor;
               }
             });
}

void Scenario::install(Network& net, ScenarioHooks hooks) {
  if (net.latency().sites() < sites_) {
    throw std::invalid_argument("scenario '" + name_ + "' needs " +
                                std::to_string(sites_) + " sites");
  }
  load_.assign(sites_, 1.0);
  hooks_ = std::move(hooks);
  // Stable order: events scripted at the same time fire in script order.
  std::vector<const Event*> ordered;
  ordered.reserve(events_.size());
  for (const Event& e : events_) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) { return a->when < b->when; });
  for (const Event* e : ordered) {
    net.sim().after(e->when, [this, e, &net]() {
      WK_INFO(net.sim().now(), "scenario:" + name_, e->describe);
      net.sim().obs().events.record(net.sim().now(), kNoSite,
                                    obs::EventKind::kScenario, name_,
                                    e->describe);
      e->apply(net, hooks_, *this);
    });
  }
}

double Scenario::current_load(SiteId s) const {
  if (s < 0 || static_cast<std::size_t>(s) >= load_.size()) return 1.0;
  return load_[static_cast<std::size_t>(s)];
}

std::string Scenario::to_script() const {
  std::vector<const Event*> ordered;
  ordered.reserve(events_.size());
  for (const Event& e : events_) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) { return a->when < b->when; });
  std::string out = "scenario " + name_ + " sites=" + std::to_string(sites_) +
                    " horizon=" + fmt_s(horizon_) + "\n";
  for (const Event* e : ordered) {
    out += "  @" + fmt_s(e->when) + " " + e->describe + "\n";
  }
  return out;
}

// ----------------------------------------------------------------- library

Scenario make_scenario(const std::string& name) {
  if (name == "calm3") return Scenario("calm3", 3);
  if (name == "calm5") return Scenario("calm5", 5);

  if (name == "flap3") {
    // A flapping VA<->CA link plus a lossy, slow CA<->FRA stretch: the
    // coalescing/retransmit stack must ride through repeated short cuts.
    Scenario s("flap3", 3);
    s.flap_link(6 * kSecond, 0, 1, /*down*/ 1500 * kMillisecond,
                /*up*/ 3 * kSecond, /*cycles*/ 5);
    s.degrade_link(10 * kSecond, 1, 2, /*drop*/ 0.10,
                   /*extra*/ 15 * kMillisecond, /*for*/ 15 * kSecond);
    return s;
  }

  if (name == "asym3") {
    // One-way outages against the L2 site (0): first CA stops hearing L2
    // long enough to cross the failover timeout (forcing a hub epoch bump
    // while the old hub is still healthy), then L2 stops hearing FRA so
    // its frontier goes stagnant and the resync path must catch FRA up.
    Scenario s("asym3", 3);
    s.partition_oneway(8 * kSecond, 0, 1, 6 * kSecond);
    s.partition_oneway(20 * kSecond, 2, 0, 5 * kSecond);
    return s;
  }

  if (name == "asym3_fanout") {
    // asym3's forced handover under a heavy fan-out backlog: the hub site
    // carries 3x load when the cut lands, so the promoted hub starts well
    // behind the frontier the old hub pushed and must pull its way level
    // before minting. Exercises the RECONCILING pull path at depth.
    Scenario s("asym3_fanout", 3);
    s.load_factor(5 * kSecond, 0, 3.0);
    s.partition_oneway(8 * kSecond, 0, 1, 6 * kSecond);
    s.load_factor(16 * kSecond, 0, 1.0);
    return s;
  }

  if (name == "asym3_double") {
    // Two handovers back to back: the first cut promotes site 1, then the
    // return cut silences the *new* hub from site 0's vantage and hands
    // the role back. Each promotion must resume the counter the previous
    // regime left and never re-mint either predecessor's slots.
    Scenario s("asym3_double", 3);
    s.partition_oneway(8 * kSecond, 0, 1, 6 * kSecond);
    s.partition_oneway(20 * kSecond, 1, 0, 6 * kSecond);
    return s;
  }

  if (name == "asym3_flap") {
    // The asym3 cut heals and immediately re-flaps twice mid-reconcile:
    // the promoted hub keeps losing its pull responder for half a second
    // at a time. Completion must ride on retried pulls + the grace clock,
    // not on any single uninterrupted exchange.
    Scenario s("asym3_flap", 3);
    s.partition_oneway(8 * kSecond, 0, 1, 6 * kSecond);
    s.partition_oneway(14400 * kMillisecond, 0, 1, 500 * kMillisecond);
    s.partition_oneway(15400 * kMillisecond, 0, 1, 500 * kMillisecond);
    return s;
  }

  if (name == "hostile5") {
    // The acceptance scenario (ISSUE 6): heterogeneous 5-site matrix plus a
    // latency reroute, a flapping link, a lossy link, an asymmetric
    // partition, a site leave/rejoin, and diurnal load shifts. Every
    // condition heals before the horizon, so a quiesced run must converge.
    Scenario s("hostile5", 5);
    s.set_link_latency(4 * kSecond, 0, 2, 95 * kMillisecond);  // reroute
    s.flap_link(8 * kSecond, 1, 3, /*down*/ 2 * kSecond, /*up*/ 3 * kSecond,
                /*cycles*/ 4);
    s.degrade_link(10 * kSecond, 0, 4, /*drop*/ 0.05,
                   /*extra*/ 20 * kMillisecond, /*for*/ 12 * kSecond);
    s.partition_oneway(14 * kSecond, 2, 4, 8 * kSecond);
    s.load_factor(18 * kSecond, 1, 2.5);
    s.load_factor(18 * kSecond, 2, 0.3);
    s.site_leave(26 * kSecond, 3, /*gone_for*/ 14 * kSecond);
    s.load_factor(38 * kSecond, 1, 1.0);
    s.load_factor(38 * kSecond, 2, 1.0);
    s.set_link_latency(44 * kSecond, 0, 2, 44 * kMillisecond);  // route back
    return s;
  }

  if (name == "diurnal5") {
    // The load peak rotates around the planet while a midday latency swell
    // raises every WAN cost by 50% and relaxes again.
    Scenario s("diurnal5", 5);
    SiteId prev = kNoSite;
    Time t = 5 * kSecond;
    for (SiteId peak : {1, 2, 3, 4}) {
      s.load_factor(t, peak, 3.0);
      if (prev != kNoSite) s.load_factor(t, prev, 1.0);
      prev = peak;
      t += 10 * kSecond;
    }
    s.load_factor(t, prev, 1.0);
    s.scale_wan_latency(20 * kSecond, 1.5);
    s.scale_wan_latency(40 * kSecond, 1.0 / 1.5);
    return s;
  }

  throw std::invalid_argument("unknown scenario: " + name);
}

std::vector<std::string> scenario_names() {
  return {"calm3",       "calm5",       "flap3",      "asym3",
          "asym3_fanout", "asym3_double", "asym3_flap", "hostile5",
          "diurnal5"};
}

LatencyModel scenario_latency(const Scenario& s) {
  if (s.sites() == 3) return LatencyModel::paper_wan();
  if (s.sites() == 5) return LatencyModel::wan5();
  return LatencyModel(s.sites(), 150 * kMicrosecond, 50 * kMillisecond);
}

}  // namespace wankeeper::sim

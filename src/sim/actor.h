// An Actor is one process in the deployment: a server replica, a broker, a
// client, a bookie. Actors receive messages from their runtime and set
// timers on it. Historically actors ran only on the simulator; they are now
// written against rt::Runtime, so the identical protocol code also runs on
// rt::ThreadRuntime over real threads and sockets. Crash/restart semantics:
// a crashed actor receives nothing and all its pending timers are
// invalidated (they belong to the previous incarnation); durable state
// survives in the derived class unless it chooses to clear it.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/types.h"
#include "rt/runtime.h"
#include "sim/message.h"
#include "sim/simulator.h"

namespace wankeeper::rt {
class ThreadRuntime;
}

namespace wankeeper::sim {

class Network;

// Whoever owns the routing table an actor is registered in (the sim
// Network, or a thread runtime). Notified on destruction so in-flight
// deliveries to a destroyed actor are dropped rather than dereferencing
// freed memory.
class ActorRegistry {
 public:
  virtual void forget_actor(NodeId node) = 0;

 protected:
  ~ActorRegistry() = default;
};

class Actor {
 public:
  Actor(rt::Runtime& rt, std::string name)
      : rt_(rt), des_(rt.des()), name_(std::move(name)) {}
  // Deregisters from its registry; see ActorRegistry.
  virtual ~Actor() {
    if (registry_ != nullptr) registry_->forget_actor(id_);
  }

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  rt::Runtime& rt() const { return rt_; }
  // DES-only accessor for harness/test code; protocol code must not assume
  // it. Throws when the actor runs on a non-simulated runtime.
  Simulator& sim() const {
    if (des_ == nullptr) throw std::logic_error("actor not on a simulator");
    return *des_;
  }
  Time now() const { return des_ != nullptr ? des_->now() : rt_.now(); }
  bool up() const { return up_; }

  // Invoked once by the runtime when the actor is registered.
  virtual void start() {}

  // Message delivery; never invoked while crashed.
  virtual void on_message(NodeId from, const MessagePtr& msg) = 0;

  // Crash: drop volatile state (derived hook), invalidate timers.
  void crash() {
    if (!up_) return;
    up_ = false;
    ++incarnation_;
    on_crash();
  }
  // Restart with a fresh incarnation.
  void restart() {
    if (up_) return;
    up_ = true;
    ++incarnation_;
    on_restart();
  }

  // Timer scheduling bound to the current incarnation: if the actor crashes
  // or restarts before the timer fires, the callback is silently skipped.
  // Templated so on the DES the callable flows straight into the
  // simulator's event slab instead of bouncing through a std::function
  // allocation (the cached des_ pointer keeps that path identical —
  // schedule order, allocation counters, and digests are unchanged by the
  // runtime seam). Other runtimes take the type-erased schedule() path.
  //
  // The weak liveness token guards the case where the actor is *destroyed*
  // (not just crashed) while the timer is pending: the wrapper must decide
  // "skip" without dereferencing `this` at all, because the memory may
  // already belong to someone else.
  template <typename F>
  EventId set_timer(Time delay, F&& fn) {
    const std::uint64_t inc = incarnation_;
    auto guarded = [this, alive = std::weak_ptr<const char>(live_token_), inc,
                    f = std::forward<F>(fn)]() {
      if (!alive.expired() && up_ && incarnation_ == inc) f();
    };
    if (des_ != nullptr) return des_->after(delay, std::move(guarded));
    return rt_.schedule(id_, delay, std::move(guarded));
  }
  void cancel_timer(EventId id) {
    if (des_ != nullptr) {
      des_->cancel(id);
      return;
    }
    rt_.cancel(id);
  }

 protected:
  virtual void on_crash() {}
  virtual void on_restart() {}

 private:
  friend class Network;
  friend class wankeeper::rt::ThreadRuntime;

  ActorRegistry* registry_ = nullptr;
  rt::Runtime& rt_;
  Simulator* const des_;  // cached rt_.des(); non-null iff on the DES
  std::string name_;
  NodeId id_ = kNoNode;
  bool up_ = true;
  std::uint64_t incarnation_ = 0;
  // Dies with the actor; pending timer wrappers hold a weak_ptr to it.
  std::shared_ptr<const char> live_token_ = std::make_shared<const char>('\0');
};

}  // namespace wankeeper::sim

// An Actor is one process in the simulation: a server replica, a broker, a
// client, a bookie. Actors receive messages from the Network and set timers
// on the Simulator. Crash/restart semantics: a crashed actor receives
// nothing and all its pending timers are invalidated (they belong to the
// previous incarnation); durable state survives in the derived class unless
// it chooses to clear it.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "common/types.h"
#include "sim/message.h"
#include "sim/simulator.h"

namespace wankeeper::sim {

class Network;

class Actor {
 public:
  Actor(Simulator& sim, std::string name) : sim_(sim), name_(std::move(name)) {}
  // Deregisters from the network so in-flight deliveries to a destroyed
  // actor are dropped rather than dereferencing freed memory.
  virtual ~Actor();

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  Simulator& sim() { return sim_; }
  Time now() const { return sim_.now(); }
  bool up() const { return up_; }

  // Invoked once by the Network when the actor is registered.
  virtual void start() {}

  // Message delivery; never invoked while crashed.
  virtual void on_message(NodeId from, const MessagePtr& msg) = 0;

  // Crash: drop volatile state (derived hook), invalidate timers.
  void crash() {
    if (!up_) return;
    up_ = false;
    ++incarnation_;
    on_crash();
  }
  // Restart with a fresh incarnation.
  void restart() {
    if (up_) return;
    up_ = true;
    ++incarnation_;
    on_restart();
  }

  // Timer scheduling bound to the current incarnation: if the actor crashes
  // or restarts before the timer fires, the callback is silently skipped.
  // Templated so the callable flows straight into the simulator's event
  // slab instead of bouncing through a std::function allocation.
  //
  // The weak liveness token guards the case where the actor is *destroyed*
  // (not just crashed) while the timer is pending: the wrapper must decide
  // "skip" without dereferencing `this` at all, because the memory may
  // already belong to someone else.
  template <typename F>
  EventId set_timer(Time delay, F&& fn) {
    const std::uint64_t inc = incarnation_;
    return sim_.after(
        delay, [this, alive = std::weak_ptr<const char>(live_token_), inc,
                f = std::forward<F>(fn)]() {
          if (!alive.expired() && up_ && incarnation_ == inc) f();
        });
  }
  void cancel_timer(EventId id) { sim_.cancel(id); }

 protected:
  virtual void on_crash() {}
  virtual void on_restart() {}

 private:
  friend class Network;

  Network* registered_net_ = nullptr;
  Simulator& sim_;
  std::string name_;
  NodeId id_ = kNoNode;
  bool up_ = true;
  std::uint64_t incarnation_ = 0;
  // Dies with the actor; pending timer wrappers hold a weak_ptr to it.
  std::shared_ptr<const char> live_token_ = std::make_shared<const char>('\0');
};

}  // namespace wankeeper::sim

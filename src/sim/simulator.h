// Deterministic discrete-event simulator: a virtual clock plus an event
// queue. Every node, client, and network delivery in the reproduction runs
// on one Simulator instance, so whole WAN deployments execute single-
// threaded and bit-reproducibly from a seed.
//
// Hot-path layout: the priority queue holds 24-byte (time, seq, slot)
// entries; the callables live in slab-allocated fixed-size slots that are
// recycled through a free list, so steady-state scheduling performs no
// heap allocation at all (callables larger than the slot's inline buffer
// spill to the heap and are counted in SimProfile::fn_heap_allocs).
// Cancellation is a generation check on the slot — no tombstone set, no
// hashing. Event order is exactly what it always was: time, then schedule
// order (the monotonic sequence number breaks ties), so the rebuild is
// digest-invisible to every seeded run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "obs/context.h"
#include "rt/runtime.h"
#include "sim/faults.h"

namespace wankeeper::sim {

class Actor;
class Network;

// Encodes (slot generation << 32 | slot index); opaque to callers.
// Generations start at 1, so a valid id is never 0 and a stale or
// fabricated id fails the generation check instead of aliasing.
// Layout-compatible with rt::TimerId (the simulator IS a runtime).
using EventId = rt::TimerId;

// Event-loop profile: how hard the simulator itself worked. Scheduling and
// execution counters are always on (plain increments); wall-clock timing is
// opt-in via enable_profiling() because the clock reads cost more than the
// event dispatch they measure.
struct SimProfile {
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t events_cancelled = 0;  // effective cancels only
  std::size_t queue_high_water = 0;
  // Allocation behavior of the event slab: pooled = recycled a free slot,
  // grown = had to extend the slab (the pool's footprint high-water),
  // fn_heap_allocs = callables too big for a slot's inline buffer.
  std::uint64_t events_pooled = 0;
  std::uint64_t events_grown = 0;
  std::uint64_t fn_heap_allocs = 0;
  // Only meaningful when profiling was enabled for the run.
  std::uint64_t wall_ns = 0;

  double events_per_sec() const {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(events_executed) * 1e9 /
                              static_cast<double>(wall_ns);
  }
};

// `final` matters: Actor caches a Simulator* from rt::Runtime::des() and
// the compiler devirtualizes every now()/after()/cancel() through it, so
// the seam costs the DES hot path nothing.
class Simulator final : public rt::Runtime {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator() override;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const override { return now_; }
  Rng& rng() override { return rng_; }
  // Flight recorder (metrics + traces) for everything running on this sim.
  obs::Context& obs() override { return obs_; }
  // Recovery fault-injection points (see sim/faults.h).
  FaultPoints& faults() override { return faults_; }
  Simulator* des() override { return this; }

  // --- rt::Runtime message/placement surface, delegated to the attached
  // Network (the most recently constructed one; deployments build exactly
  // one per simulator). Implemented in network.cpp.
  void attach_network(Network& net) { net_ = &net; }
  Network* network() const { return net_; }
  NodeId spawn(Actor& actor, SiteId site) override;
  void send(NodeId from, NodeId to, MessagePtr msg) override;
  SiteId site_of(NodeId node) const override;

  // Type-erased timer entry point for runtime-generic callers; Actor's
  // templated set_timer goes straight to after() instead. `home` is
  // irrelevant on a single-threaded runtime.
  rt::TimerId schedule(NodeId home, Time delay,
                       std::function<void()> fn) override {
    (void)home;
    return after(delay, std::move(fn));
  }

  // Schedule `fn` at absolute virtual time `when` (>= now). Events at equal
  // times run in scheduling order. Returns an id usable with cancel().
  template <typename F>
  EventId at(Time when, F&& fn) {
    if (when < now_) throw_past_schedule();
    const std::uint32_t slot_index = acquire_slot();
    Slot& s = *slot(slot_index);
    emplace_fn(s, std::forward<F>(fn));
    s.queued = true;
    s.cancelled = false;
    queue_.push(QueueEntry{when, next_seq_++, slot_index});
    ++profile_.events_scheduled;
    if (queue_.size() > profile_.queue_high_water) {
      profile_.queue_high_water = queue_.size();
    }
    return make_id(s.gen, slot_index);
  }
  template <typename F>
  EventId after(Time delay, F&& fn) {
    return at(now_ + delay, std::forward<F>(fn));
  }

  // Cancelling an already-fired or unknown id is a harmless no-op.
  void cancel(EventId id) override;

  // Execute the next pending event. Returns false when the queue is empty.
  bool step();
  // Run until the queue drains (or `max_events` as a runaway guard).
  void run(std::uint64_t max_events = ~std::uint64_t{0});
  // Run events with time <= deadline; clock ends at deadline even if idle.
  void run_until(Time deadline);
  void run_for(Time duration) { run_until(now_ + duration); }

  std::uint64_t events_executed() const { return profile_.events_executed; }
  std::size_t pending_events() const { return live_ - cancelled_live_; }

  // Wall-clock timing of the event loop (off by default; counters are free).
  void enable_profiling(bool on = true) { profiling_ = on; }
  const SimProfile& profile() const { return profile_; }

 private:
  // Callables up to this size run from the slot itself; larger ones (rare:
  // a closure over a whole scenario script, say) spill to one heap block.
  static constexpr std::size_t kInlineFnBytes = 64;
  static constexpr std::size_t kSlotsPerChunk = 256;

  struct Slot {
    alignas(max_align_t) unsigned char buf[kInlineFnBytes];
    void (*invoke)(void*) = nullptr;
    void (*destroy)(void*) = nullptr;  // destroys (and frees, if heap) the fn
    void* heap = nullptr;              // non-null when the fn lives off-slab
    std::uint32_t gen = 1;
    std::uint32_t next_free = 0;
    bool queued = false;     // scheduled and not yet popped
    bool cancelled = false;
  };

  struct QueueEntry {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  // 4-ary min-heap on (time, seq). seq is unique, so the key is a strict
  // total order and the pop sequence is identical to any other heap over
  // the same entries — switching arity is digest-invisible. Half the levels
  // of a binary heap means a shorter dependent-compare chain per pop, which
  // was the single hottest simulator-owned frame in the event-loop profile.
  class EventHeap {
   public:
    bool empty() const { return v_.empty(); }
    std::size_t size() const { return v_.size(); }
    const QueueEntry& top() const { return v_.front(); }

    void push(const QueueEntry& e) {
      std::size_t i = v_.size();
      v_.push_back(e);
      while (i != 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!before(e, v_[parent])) break;
        v_[i] = v_[parent];
        i = parent;
      }
      v_[i] = e;
    }

    void pop() {
      const QueueEntry last = v_.back();
      v_.pop_back();
      const std::size_t n = v_.size();
      if (n == 0) return;
      std::size_t i = 0;
      for (;;) {
        const std::size_t first = 4 * i + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t end = first + 4 < n ? first + 4 : n;
        for (std::size_t c = first + 1; c < end; ++c) {
          if (before(v_[c], v_[best])) best = c;
        }
        if (!before(v_[best], last)) break;
        v_[i] = v_[best];
        i = best;
      }
      v_[i] = last;
    }

   private:
    static bool before(const QueueEntry& a, const QueueEntry& b) {
      return a.time != b.time ? a.time < b.time : a.seq < b.seq;
    }

    std::vector<QueueEntry> v_;
  };

  static EventId make_id(std::uint32_t gen, std::uint32_t slot_index) {
    return (static_cast<EventId>(gen) << 32) | slot_index;
  }

  Slot* slot(std::uint32_t index) {
    return &chunks_[index / kSlotsPerChunk][index % kSlotsPerChunk];
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index, Slot& s);
  [[noreturn]] static void throw_past_schedule();

  template <typename F>
  void emplace_fn(Slot& s, F&& fn) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineFnBytes &&
                  alignof(D) <= alignof(max_align_t)) {
      ::new (static_cast<void*>(s.buf)) D(std::forward<F>(fn));
      s.heap = nullptr;
      s.invoke = [](void* p) { (*static_cast<D*>(p))(); };
      s.destroy = [](void* p) { static_cast<D*>(p)->~D(); };
    } else {
      s.heap = new D(std::forward<F>(fn));
      s.invoke = [](void* p) { (*static_cast<D*>(p))(); };
      s.destroy = [](void* p) { delete static_cast<D*>(p); };
      ++profile_.fn_heap_allocs;
    }
  }

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  bool profiling_ = false;
  SimProfile profile_;
  EventHeap queue_;
  // Slab of event slots; chunked so addresses stay stable while growing.
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t free_head_ = kNoFreeSlot;
  static constexpr std::uint32_t kNoFreeSlot = ~std::uint32_t{0};
  std::size_t live_ = 0;            // queued entries (incl. cancelled)
  std::size_t cancelled_live_ = 0;  // queued entries already cancelled
  Rng rng_;
  obs::Context obs_;
  FaultPoints faults_;
  Network* net_ = nullptr;
};

}  // namespace wankeeper::sim

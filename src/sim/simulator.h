// Deterministic discrete-event simulator: a virtual clock plus an event
// queue. Every node, client, and network delivery in the reproduction runs
// on one Simulator instance, so whole WAN deployments execute single-
// threaded and bit-reproducibly from a seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "obs/context.h"
#include "sim/faults.h"

namespace wankeeper::sim {

using EventId = std::uint64_t;

// Event-loop profile: how hard the simulator itself worked. Scheduling and
// execution counters are always on (plain increments); wall-clock timing is
// opt-in via enable_profiling() because the clock reads cost more than the
// event dispatch they measure.
struct SimProfile {
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t events_cancelled = 0;
  std::size_t queue_high_water = 0;
  // Only meaningful when profiling was enabled for the run.
  std::uint64_t wall_ns = 0;

  double events_per_sec() const {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(events_executed) * 1e9 /
                              static_cast<double>(wall_ns);
  }
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  Time now() const { return now_; }
  Rng& rng() { return rng_; }
  // Flight recorder (metrics + traces) for everything running on this sim.
  obs::Context& obs() { return obs_; }
  // Recovery fault-injection points (see sim/faults.h).
  FaultPoints& faults() { return faults_; }

  // Schedule `fn` at absolute virtual time `when` (>= now). Events at equal
  // times run in scheduling order. Returns an id usable with cancel().
  EventId at(Time when, std::function<void()> fn);
  EventId after(Time delay, std::function<void()> fn) { return at(now_ + delay, std::move(fn)); }

  // Cancelling an already-fired or unknown id is a harmless no-op.
  void cancel(EventId id);

  // Execute the next pending event. Returns false when the queue is empty.
  bool step();
  // Run until the queue drains (or `max_events` as a runaway guard).
  void run(std::uint64_t max_events = ~std::uint64_t{0});
  // Run events with time <= deadline; clock ends at deadline even if idle.
  void run_until(Time deadline);
  void run_for(Time duration) { run_until(now_ + duration); }

  std::uint64_t events_executed() const { return profile_.events_executed; }
  std::size_t pending_events() const { return queue_.size() - cancelled_.size(); }

  // Wall-clock timing of the event loop (off by default; counters are free).
  void enable_profiling(bool on = true) { profiling_ = on; }
  const SimProfile& profile() const { return profile_; }

 private:
  struct Event {
    Time time;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  Time now_ = 0;
  EventId next_id_ = 1;
  bool profiling_ = false;
  SimProfile profile_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  Rng rng_;
  obs::Context obs_;
  FaultPoints faults_;
};

}  // namespace wankeeper::sim

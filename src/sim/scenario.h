// Declarative hostile-WAN scenario engine. A Scenario is a scripted
// schedule of WAN events — latency-matrix changes, link flaps and
// degradations, symmetric and asymmetric partitions, whole-site leave and
// rejoin, diurnal load shifts — that installs onto a sim::Network as
// virtual-time callbacks. The same script object drives gtest sweeps,
// tools/seed_hunt cells, and the lock bench, and serializes itself
// (to_script) into failure artifacts so a red run carries its own WAN
// weather report.
//
// Scenarios deliberately script *site-level* conditions only; node-level
// crash schedules stay with sim::FailureInjector so the two compose. All
// event times are relative to the install() call.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/network.h"

namespace wankeeper::sim {

// Hooks into the system under test for events the network alone cannot
// express: a whole site's processes going down (leave) and coming back
// (rejoin). When unset, site leave falls back to isolating the site at the
// network layer, which keeps the processes alive but unreachable.
struct ScenarioHooks {
  std::function<void(SiteId)> site_down;
  std::function<void(SiteId)> site_up;
};

class Scenario {
 public:
  Scenario() = default;
  Scenario(std::string name, std::size_t sites);

  const std::string& name() const { return name_; }
  std::size_t sites() const { return sites_; }
  // Virtual time of the last scripted event; load generators should run at
  // least this long so every event lands under traffic.
  Time horizon() const { return horizon_; }
  std::size_t event_count() const { return events_.size(); }

  // --- script builders (all return *this for chaining) ---

  // Set the one-way latency of a link at `when` (both directions unless
  // symmetric=false). In-flight messages keep the cost they paid at send.
  Scenario& set_link_latency(Time when, SiteId a, SiteId b, Time one_way,
                             bool symmetric = true);
  // Scale every inter-site latency by `factor` at `when` (diurnal swell /
  // relax). Factors compose multiplicatively with previous scales.
  Scenario& scale_wan_latency(Time when, double factor);
  // Degrade a->b (and b->a unless symmetric=false) from `when` for
  // `duration` (0 = until the end of the run): lose `drop_rate` of
  // messages, delay the rest by `extra_latency`.
  Scenario& degrade_link(Time when, SiteId a, SiteId b, double drop_rate,
                         Time extra_latency, Time duration = 0,
                         bool symmetric = true);
  // Flap a<->b: starting at `first_down`, cut for `down_for`, heal for
  // `up_for`, `cycles` times.
  Scenario& flap_link(Time first_down, SiteId a, SiteId b, Time down_for,
                      Time up_for, int cycles);
  // Symmetric partition from `when`, healing after `cut_for` (0 = stays).
  Scenario& partition(Time when, SiteId a, SiteId b, Time cut_for = 0);
  // Asymmetric partition: only from->to is cut — `to` stops hearing `from`
  // while replies still flow. Heals after `cut_for` (0 = stays).
  Scenario& partition_oneway(Time when, SiteId from, SiteId to,
                             Time cut_for = 0);
  // Site leaves the deployment at `when` (processes down via hooks, or
  // network isolation without hooks) and rejoins `gone_for` later
  // (0 = never).
  Scenario& site_leave(Time when, SiteId s, Time gone_for = 0);
  // Diurnal load shift: from `when`, site `s` issues load at `factor` times
  // its base rate (load generators poll current_load()).
  Scenario& load_factor(Time when, SiteId s, double factor);

  // Schedule every event onto net.sim() relative to now, and reset runtime
  // state (load factors). A Scenario may be installed once per run; copy it
  // for reuse across runs in one process.
  void install(Network& net, ScenarioHooks hooks = {});

  // Current load multiplier for site `s` (1.0 until a load_factor event
  // fires). Valid after install().
  double current_load(SiteId s) const;

  // One line per scripted event, ordered by time — the artifact format
  // (EXPERIMENTS.md §hostile WANs).
  std::string to_script() const;

 private:
  struct Event {
    Time when = 0;
    std::string describe;
    std::function<void(Network&, const ScenarioHooks&, Scenario&)> apply;
  };

  Scenario& add(Time when, std::string describe,
                std::function<void(Network&, const ScenarioHooks&, Scenario&)> fn);

  std::string name_ = "unnamed";
  std::size_t sites_ = 3;
  Time horizon_ = 0;
  std::vector<Event> events_;
  std::vector<double> load_;  // runtime: per-site load factor
  ScenarioHooks hooks_;       // runtime: held through the run
};

// --- named scenario library (seed_hunt --scenario, CI, benches) ---

// Build a library scenario by name; throws std::invalid_argument on an
// unknown name. Current names:
//   calm3     — 3 paper sites, no events (baseline).
//   calm5     — 5 heterogeneous sites (wan5 matrix), no events.
//   flap3     — 3 sites, VA<->CA flapping plus a lossy degraded CA<->FRA.
//   asym3     — 3 sites, alternating one-way partitions against L2.
//   hostile5  — the acceptance scenario: 5 heterogeneous sites, latency
//               reroute, one flapping link, one asymmetric partition, one
//               site leave/rejoin, diurnal load shifts. Fully healed by
//               horizon() so quiesced runs must converge.
//   diurnal5  — 5 sites, rotating load peaks and a global latency swell.
Scenario make_scenario(const std::string& name);
std::vector<std::string> scenario_names();
// The latency matrix a library scenario expects (by its site count).
LatencyModel scenario_latency(const Scenario& s);

}  // namespace wankeeper::sim

#include "sim/network.h"

#include <algorithm>
#include <stdexcept>

namespace wankeeper::sim {

LatencyModel::LatencyModel(std::size_t sites, Time intra_site, Time inter_site,
                           double jitter_fraction)
    : jitter_(jitter_fraction) {
  matrix_.assign(sites, std::vector<Time>(sites, inter_site));
  for (std::size_t i = 0; i < sites; ++i) matrix_[i][i] = intra_site;
}

LatencyModel::LatencyModel(std::vector<std::vector<Time>> one_way, double jitter_fraction)
    : matrix_(std::move(one_way)), jitter_(jitter_fraction) {
  for (const auto& row : matrix_) {
    if (row.size() != matrix_.size()) throw std::invalid_argument("latency matrix not square");
  }
}

LatencyModel LatencyModel::paper_wan() {
  // One-way delays calibrated to 2016-era AWS pings: VA<->CA 62 ms RTT,
  // VA<->FRA 88 ms RTT, CA<->FRA 146 ms RTT, sub-ms within a region.
  const Time intra = 150 * kMicrosecond;
  return LatencyModel{{
      {intra, 31 * kMillisecond, 44 * kMillisecond},
      {31 * kMillisecond, intra, 73 * kMillisecond},
      {44 * kMillisecond, 73 * kMillisecond, intra},
  }};
}

LatencyModel LatencyModel::wan5() {
  // VA(0), CA(1), FRA(2), Tokyo(3), Sydney(4). One-way delays from public
  // inter-region ping tables, with slight forward/return asymmetry.
  const Time intra = 150 * kMicrosecond;
  const Time ms = kMillisecond;
  return LatencyModel{{
      {intra, 31 * ms, 44 * ms, 78 * ms, 102 * ms},
      {33 * ms, intra, 73 * ms, 54 * ms, 74 * ms},
      {44 * ms, 71 * ms, intra, 118 * ms, 140 * ms},
      {80 * ms, 52 * ms, 121 * ms, intra, 57 * ms},
      {99 * ms, 76 * ms, 137 * ms, 55 * ms, intra},
  }};
}

Time LatencyModel::base(SiteId from, SiteId to) const {
  return matrix_.at(static_cast<std::size_t>(from)).at(static_cast<std::size_t>(to));
}

void LatencyModel::set_base(SiteId from, SiteId to, Time one_way) {
  matrix_.at(static_cast<std::size_t>(from)).at(static_cast<std::size_t>(to)) = one_way;
}

void LatencyModel::scale_wan(double factor) {
  for (std::size_t i = 0; i < matrix_.size(); ++i) {
    for (std::size_t j = 0; j < matrix_.size(); ++j) {
      if (i == j) continue;
      matrix_[i][j] = std::max<Time>(
          1, static_cast<Time>(static_cast<double>(matrix_[i][j]) * factor));
    }
  }
}

Time LatencyModel::sample(Rng& rng, SiteId from, SiteId to) const {
  const Time b = base(from, to);
  if (jitter_ <= 0.0) return b;
  const double jittered = rng.normal(static_cast<double>(b), jitter_ * static_cast<double>(b));
  // Truncate: never faster than 50% of base, never negative.
  return std::max<Time>(static_cast<Time>(jittered), b / 2);
}

Network::Network(Simulator& sim, LatencyModel latency)
    : sim_(sim), latency_(std::move(latency)) {
  links_.resize(latency_.sites() * latency_.sites());
  wan_counters_.resize(latency_.sites());
  refresh_wan_counters();
  sim_.attach_network(*this);
}

// The simulator's rt::Runtime surface, routed through the attached network.
// Defined here (not simulator.cpp) so simulator.cpp needn't see Network.
NodeId Simulator::spawn(Actor& actor, SiteId site) {
  if (net_ == nullptr) throw std::logic_error("no network attached");
  return net_->add_node(actor, site);
}

void Simulator::send(NodeId from, NodeId to, MessagePtr msg) {
  if (net_ == nullptr) throw std::logic_error("no network attached");
  net_->send(from, to, std::move(msg));
}

SiteId Simulator::site_of(NodeId node) const {
  if (net_ == nullptr) return kNoSite;
  return net_->site_of(node);
}

void Network::refresh_wan_counters() {
  for (std::size_t s = 0; s < latency_.sites(); ++s) {
    wan_counters_[s].msgs =
        &sim_.obs().metrics.counter("net.wan_msgs", static_cast<SiteId>(s));
    wan_counters_[s].bytes =
        &sim_.obs().metrics.counter("net.wan_bytes", static_cast<SiteId>(s));
  }
  wan_counters_epoch_ = sim_.obs().metrics.epoch();
}

NodeId Network::add_node(Actor& actor, SiteId site) {
  if (site < 0 || static_cast<std::size_t>(site) >= latency_.sites()) {
    throw std::invalid_argument("site out of range for latency model");
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(&actor);
  sites_.push_back(site);
  channel_clock_.emplace_back();
  actor.id_ = id;
  actor.registry_ = this;
  actor.start();
  return id;
}

void Network::forget(NodeId node) {
  if (node >= 0 && static_cast<std::size_t>(node) < nodes_.size()) {
    nodes_[static_cast<std::size_t>(node)] = nullptr;
  }
}

bool Network::alive(NodeId node) const {
  return node >= 0 && static_cast<std::size_t>(node) < nodes_.size() &&
         nodes_[static_cast<std::size_t>(node)] != nullptr;
}

SiteId Network::site_of(NodeId node) const {
  return sites_.at(static_cast<std::size_t>(node));
}

Actor& Network::actor(NodeId node) const {
  return *nodes_.at(static_cast<std::size_t>(node));
}

const LinkState& Network::link(SiteId from, SiteId to) const {
  return links_.at(link_index(from, to));
}

LinkState& Network::link_mut(SiteId from, SiteId to) {
  return links_.at(link_index(from, to));
}

bool Network::partitioned(SiteId a, SiteId b) const {
  return link(a, b).cut;
}

bool Network::site_link_up(SiteId a, SiteId b) const {
  return !link(a, b).cut;
}

bool Network::link_up(NodeId from, NodeId to) const {
  if (!alive(from) || !alive(to)) return false;
  if (!actor(from).up() || !actor(to).up()) return false;
  return site_link_up(site_of(from), site_of(to));
}

void Network::partition(SiteId a, SiteId b, bool cut) {
  partition_oneway(a, b, cut);
  partition_oneway(b, a, cut);
}

void Network::partition_oneway(SiteId from, SiteId to, bool cut) {
  link_mut(from, to).cut = cut;
}

void Network::isolate_site(SiteId s, bool cut) {
  for (std::size_t other = 0; other < latency_.sites(); ++other) {
    if (static_cast<SiteId>(other) != s) partition(s, static_cast<SiteId>(other), cut);
  }
}

void Network::degrade_link(SiteId from, SiteId to, double drop_rate,
                           Time extra_latency) {
  LinkState& l = link_mut(from, to);
  l.drop_rate = drop_rate;
  l.extra_latency = extra_latency;
}

void Network::set_latency(SiteId from, SiteId to, Time one_way, bool symmetric) {
  latency_.set_base(from, to, one_way);
  if (symmetric) latency_.set_base(to, from, one_way);
}

void Network::scale_wan_latency(double factor) { latency_.scale_wan(factor); }

void Network::send(NodeId from, NodeId to, MessagePtr msg) {
  ++stats_.messages_sent;
  const std::size_t wire = msg->wire_size();
  stats_.bytes_sent += wire;
  if (!alive(from) || !alive(to)) {
    ++stats_.messages_dropped;
    return;
  }
  const SiteId sfrom = site_of(from);
  const SiteId sto = site_of(to);
  if (sfrom != sto) {
    ++stats_.wan_messages;
    if (wan_counters_epoch_ != sim_.obs().metrics.epoch()) {
      refresh_wan_counters();
    }
    const WanCounters& wc = wan_counters_[static_cast<std::size_t>(sfrom)];
    wc.msgs->inc();
    wc.bytes->inc(wire);
  }

  const LinkState& lnk = link(sfrom, sto);
  if (!link_up(from, to) ||
      (drop_rate_ > 0.0 && sim_.rng().chance(drop_rate_)) ||
      (lnk.drop_rate > 0.0 && sim_.rng().chance(lnk.drop_rate))) {
    ++stats_.messages_dropped;
    return;
  }

  Actor& dst = actor(to);
  const Time latency = latency_.sample(sim_.rng(), sfrom, sto) + lnk.extra_latency;
  Time deliver_at = sim_.now() + latency;
  // FIFO per ordered channel: never deliver before an earlier send. WAN
  // messages additionally hold the channel for their occupancy, so a burst
  // of frames serializes onto the link instead of arriving together.
  auto& row = channel_clock_[static_cast<std::size_t>(from)];
  if (row.size() <= static_cast<std::size_t>(to)) {
    row.resize(nodes_.size());
  }
  Time& clock = row[static_cast<std::size_t>(to)];
  Time occupancy = 0;
  if (sfrom != sto) {
    occupancy = wan_cost_.per_message;
    if (wan_cost_.bytes_per_us > 0.0) {
      occupancy += static_cast<Time>(static_cast<double>(wire) /
                                     wan_cost_.bytes_per_us);
    }
  }
  deliver_at = std::max(deliver_at, clock + occupancy);
  clock = deliver_at;

  const std::uint64_t dst_incarnation = dst.incarnation_;
  sim_.at(deliver_at, [this, from, to, dst_incarnation, m = std::move(msg)]() {
    // Deliveries racing a crash, restart, or destruction are lost.
    if (!alive(to)) {
      ++stats_.messages_dropped;
      return;
    }
    Actor& d = actor(to);
    if (!d.up() || d.incarnation_ != dst_incarnation) {
      ++stats_.messages_dropped;
      return;
    }
    ++stats_.messages_delivered;
    d.on_message(from, m);
  });
}

}  // namespace wankeeper::sim

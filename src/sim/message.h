// Base type for everything sent over the simulated network. Each protocol
// layer defines its own message structs derived from Message; receivers
// dispatch with msg_cast — an O(1) type-tag compare stamped by the factory
// functions below (dynamic_cast dominated the event-loop profile; the tag
// keeps the same deserialize-then-dispatch shape without the RTTI walk).
//
// Allocation: messages are by far the hottest heap traffic in a sweep (one
// per send, tens of thousands per simulated minute), so make_message /
// make_mutable_message back std::allocate_shared with a size-bucketed
// frame arena: freed control-block+object frames are recycled through
// per-size-class free lists instead of returning to the allocator. The
// arena is thread-local (the simulator is single-threaded; the parallel
// seed hunter forks processes, not threads) and recycling is invisible to
// the virtual execution — no behavior reads message addresses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

// Under ASan, poison pooled frames while they sit on a free list so a
// use-after-free into recycled memory is caught instead of silently reading
// whatever the next occupant wrote there.
#ifdef __SANITIZE_ADDRESS__
#include <sanitizer/asan_interface.h>
#define WK_POISON(p, n) __asan_poison_memory_region((p), (n))
#define WK_UNPOISON(p, n) __asan_unpoison_memory_region((p), (n))
#else
#define WK_POISON(p, n) ((void)0)
#define WK_UNPOISON(p, n) ((void)0)
#endif

namespace wankeeper::sim {

struct Message {
  virtual ~Message() = default;
  // Human-readable tag for traces.
  virtual const char* name() const = 0;
  // Approximate wire size in bytes; used only for network statistics.
  virtual std::size_t wire_size() const { return 64; }
  // Concrete-type tag for O(1) dispatch, stamped by make_message /
  // make_mutable_message. 0 means the message was constructed outside the
  // factories (some tests do); msg_cast falls back to dynamic_cast there.
  std::uint32_t type_id = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

namespace detail {
inline std::uint32_t next_msg_type_id() {
  static std::uint32_t n = 0;
  return ++n;
}
}  // namespace detail

// Process-local tag for a concrete message type. Assigned during static
// initialization (an inline variable, not a guarded function-local static:
// dispatch chains compare tags a dozen times per delivery, and the guard
// check showed up in the profile), so the numeric value depends on link
// order and is not stable across binaries — never serialize it.
template <typename T>
inline const std::uint32_t kMsgTypeId = detail::next_msg_type_id();

template <typename T>
std::uint32_t msg_type_id() {
  return kMsgTypeId<T>;
}

// dynamic_cast replacement for the flat Message hierarchy (every concrete
// type derives directly from Message, so an exact tag compare is enough).
template <typename T>
const T* msg_cast(const Message* m) {
  if (m == nullptr) return nullptr;
  if (m->type_id != 0) {
    return m->type_id == msg_type_id<T>() ? static_cast<const T*>(m) : nullptr;
  }
  return dynamic_cast<const T*>(m);
}

namespace detail {

// Frame arena counters, surfaced by bench/bench_sim.
struct ArenaStats {
  std::uint64_t allocs = 0;   // frames handed out
  std::uint64_t reused = 0;   // ... of which came from a free list
  std::uint64_t bytes = 0;    // bytes handed out (fresh + reused)
};

// Size classes in 64-byte steps up to 4 KiB; larger frames (rare: a huge
// coalesced envelope) fall through to plain new/delete.
class FrameArena {
 public:
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kMaxPooled = 4096;

  static FrameArena& instance() {
    thread_local FrameArena arena;
    return arena;
  }

  void* allocate(std::size_t bytes) {
    ++stats_.allocs;
    stats_.bytes += bytes;
    if (bytes > kMaxPooled) return ::operator new(bytes);
    const std::size_t bucket = (bytes + kGranularity - 1) / kGranularity;
    auto& list = free_[bucket];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      ++stats_.reused;
      WK_UNPOISON(p, bucket * kGranularity);
      return p;
    }
    return ::operator new(bucket * kGranularity);
  }

  void deallocate(void* p, std::size_t bytes) {
    if (bytes > kMaxPooled) {
      ::operator delete(p);
      return;
    }
    const std::size_t bucket = (bytes + kGranularity - 1) / kGranularity;
    free_[bucket].push_back(p);
    WK_POISON(p, bucket * kGranularity);
  }

  const ArenaStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ArenaStats{}; }

 private:
  FrameArena() : free_(kMaxPooled / kGranularity + 1) {}
  ~FrameArena() {
    for (auto& list : free_) {
      for (void* p : list) ::operator delete(p);
    }
  }

  std::vector<std::vector<void*>> free_;
  ArenaStats stats_;
};

template <typename T>
struct FrameAllocator {
  using value_type = T;

  FrameAllocator() = default;
  template <typename U>
  FrameAllocator(const FrameAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(FrameArena::instance().allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    FrameArena::instance().deallocate(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const FrameAllocator<U>&) const {
    return true;
  }
};

}  // namespace detail

inline const detail::ArenaStats& message_arena_stats() {
  return detail::FrameArena::instance().stats();
}
inline void reset_message_arena_stats() {
  detail::FrameArena::instance().reset_stats();
}

// Construct-complete messages (all fields passed to the constructor).
template <typename T, typename... Args>
MessagePtr make_message(Args&&... args) {
  auto p = std::allocate_shared<T>(detail::FrameAllocator<T>{},
                                   std::forward<Args>(args)...);
  p->type_id = msg_type_id<T>();
  return p;
}

// Build-then-fill messages: `auto m = make_mutable_message<FooMsg>();
// m->field = ...; send(..., m);`. Same arena as make_message — the
// shared_ptr converts to MessagePtr at the send boundary.
template <typename T, typename... Args>
std::shared_ptr<T> make_mutable_message(Args&&... args) {
  auto p = std::allocate_shared<T>(detail::FrameAllocator<T>{},
                                   std::forward<Args>(args)...);
  p->type_id = msg_type_id<T>();
  return p;
}

}  // namespace wankeeper::sim

// Base type for everything sent over the simulated network. Each protocol
// layer defines its own message structs derived from Message; receivers
// dispatch with dynamic_cast (deliberate: mirrors deserialize-then-dispatch
// in a real server, and keeps layers decoupled).
#pragma once

#include <cstddef>
#include <memory>

namespace wankeeper::sim {

struct Message {
  virtual ~Message() = default;
  // Human-readable tag for traces.
  virtual const char* name() const = 0;
  // Approximate wire size in bytes; used only for network statistics.
  virtual std::size_t wire_size() const { return 64; }
};

using MessagePtr = std::shared_ptr<const Message>;

template <typename T, typename... Args>
MessagePtr make_message(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

}  // namespace wankeeper::sim

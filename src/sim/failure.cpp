#include "sim/failure.h"

namespace wankeeper::sim {

void FailureInjector::crash_at(Time when, NodeId node, Time down_for) {
  net_.sim().at(when, [this, node]() { net_.actor(node).crash(); });
  if (down_for > 0) {
    net_.sim().at(when + down_for, [this, node]() { net_.actor(node).restart(); });
  }
}

void FailureInjector::partition_at(Time when, SiteId a, SiteId b, Time cut_for) {
  net_.sim().at(when, [this, a, b]() { net_.partition(a, b, true); });
  if (cut_for > 0) {
    net_.sim().at(when + cut_for, [this, a, b]() { net_.partition(a, b, false); });
  }
}

void FailureInjector::partition_oneway_at(Time when, SiteId from, SiteId to,
                                          Time cut_for) {
  net_.sim().at(when, [this, from, to]() { net_.partition_oneway(from, to, true); });
  if (cut_for > 0) {
    net_.sim().at(when + cut_for,
                  [this, from, to]() { net_.partition_oneway(from, to, false); });
  }
}

void FailureInjector::isolate_site_at(Time when, SiteId s, Time cut_for) {
  net_.sim().at(when, [this, s]() { net_.isolate_site(s, true); });
  if (cut_for > 0) {
    net_.sim().at(when + cut_for, [this, s]() { net_.isolate_site(s, false); });
  }
}

void FailureInjector::degrade_link_at(Time when, SiteId from, SiteId to,
                                      double drop_rate, Time extra_latency,
                                      Time degraded_for) {
  net_.sim().at(when, [this, from, to, drop_rate, extra_latency]() {
    net_.degrade_link(from, to, drop_rate, extra_latency);
  });
  if (degraded_for > 0) {
    net_.sim().at(when + degraded_for,
                  [this, from, to]() { net_.degrade_link(from, to, 0.0, 0); });
  }
}

}  // namespace wankeeper::sim

// Named fault-injection points for recovery testing. Protocol code marks
// the instants the recovery path is most fragile (a resync request just
// sent, a sync partially applied, a grant in flight during a leader change)
// by firing a named point; tests arm hooks that crash a node or cut a link
// at exactly that virtual-time instant. With nothing armed a fire() is a
// cheap counter bump, so the hooks stay compiled into the product code.
//
// Hooks are persistent (they fire every time the point is hit) and receive
// the name of the actor that hit the point, so a test can act on the first
// hit, a specific replica, or the Nth occurrence via captured state.
// Deterministic: hooks run inline at the fire site, in arm order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace wankeeper::sim {

class FaultPoints {
 public:
  // hook(actor_name): runs synchronously inside the firing actor's handler.
  // The actor checks up() after firing, so a hook may crash it mid-handler.
  using Hook = std::function<void(const std::string&)>;
  // observer(point, actor, armed): every fire, before the hooks run;
  // `armed` says whether any hook is about to act on this point. The
  // Simulator uses this to log fault firings into the flight recorder and
  // to flag armed (i.e., injected-crash) runs for a post-mortem dump.
  using Observer =
      std::function<void(const std::string&, const std::string&, bool)>;

  void arm(const std::string& point, Hook hook) {
    hooks_[point].push_back(std::move(hook));
  }

  void set_observer(Observer observer) { observer_ = std::move(observer); }

  void fire(const std::string& point, const std::string& actor) {
    ++fires_[point];
    const auto it = hooks_.find(point);
    if (observer_) observer_(point, actor, it != hooks_.end());
    if (it == hooks_.end()) return;
    for (const auto& hook : it->second) hook(actor);
  }

  std::uint64_t fires(const std::string& point) const {
    const auto it = fires_.find(point);
    return it == fires_.end() ? 0 : it->second;
  }

  void clear() {
    hooks_.clear();
    fires_.clear();
  }

 private:
  std::map<std::string, std::vector<Hook>> hooks_;
  std::map<std::string, std::uint64_t> fires_;
  Observer observer_;
};

}  // namespace wankeeper::sim

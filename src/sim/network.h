// Simulated WAN: actors are placed at sites; messages between actors incur
// the one-way latency of the (site, site) pair plus seeded jitter. Channels
// are FIFO per (src, dst) ordered pair — the TCP assumption the paper makes
// for broker/server links — enforced by never scheduling a delivery earlier
// than the previous one on the same channel. Supports site partitions, node
// crashes, and probabilistic drops for failure testing.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/actor.h"
#include "sim/message.h"
#include "sim/simulator.h"

namespace wankeeper::sim {

// One-way latency matrix between sites. Defaults below are calibrated to the
// paper's AWS deployment (Virginia=0, California=1, Frankfurt=2); see
// DESIGN.md §4.
class LatencyModel {
 public:
  // Uniform model: same latency between any two distinct sites.
  LatencyModel(std::size_t sites, Time intra_site, Time inter_site,
               double jitter_fraction = 0.05);
  // Explicit matrix (must be square, symmetric not required).
  LatencyModel(std::vector<std::vector<Time>> one_way, double jitter_fraction = 0.05);

  // The three-region topology of the paper: VA(0), CA(1), FRA(2).
  static LatencyModel paper_wan();

  std::size_t sites() const { return matrix_.size(); }
  Time base(SiteId from, SiteId to) const;
  // Base latency plus truncated-normal jitter drawn from `rng`.
  Time sample(Rng& rng, SiteId from, SiteId to) const;

 private:
  std::vector<std::vector<Time>> matrix_;
  double jitter_;
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t wan_messages = 0;  // crossing a site boundary
};

// Optional channel-occupancy model for inter-site links. Each WAN message
// holds its ordered (src, dst) channel for per_message plus its serialized
// bytes over the link bandwidth, so bursts of small frames queue behind one
// another — the per-message overhead the coalescing layer amortizes.
// Defaults model an infinitely fast pipe (latency only), the pre-existing
// behavior.
struct WanCostModel {
  Time per_message = 0;      // fixed per-message channel hold
  double bytes_per_us = 0.0; // link bandwidth; <= 0 means unmodeled
};

class Network {
 public:
  Network(Simulator& sim, LatencyModel latency);

  // Registers the actor, assigns its NodeId, calls start(). An actor that
  // is destroyed before the network deregisters itself; messages addressed
  // to it are then dropped.
  NodeId add_node(Actor& actor, SiteId site);
  void forget(NodeId node);

  SiteId site_of(NodeId node) const;
  Actor& actor(NodeId node) const;  // must still be alive
  bool alive(NodeId node) const;
  std::size_t node_count() const { return nodes_.size(); }

  // Sends msg from -> to. Dropped if either end is crashed at send time, the
  // sites are partitioned at send time, or the drop-rate coin fires.
  void send(NodeId from, NodeId to, MessagePtr msg);

  // --- failure injection ---
  void partition(SiteId a, SiteId b, bool cut);
  bool partitioned(SiteId a, SiteId b) const;
  // Isolate one site from every other site.
  void isolate_site(SiteId s, bool cut);
  void set_drop_rate(double p) { drop_rate_ = p; }
  void set_wan_cost(WanCostModel cost) { wan_cost_ = cost; }
  const WanCostModel& wan_cost() const { return wan_cost_; }

  const NetworkStats& stats() const { return stats_; }
  const LatencyModel& latency() const { return latency_; }
  Simulator& sim() { return sim_; }

 private:
  Simulator& sim_;
  LatencyModel latency_;
  std::vector<Actor*> nodes_;
  std::vector<SiteId> sites_;
  // FIFO enforcement: earliest allowed next delivery per ordered channel.
  std::map<std::pair<NodeId, NodeId>, Time> channel_clock_;
  std::set<std::pair<SiteId, SiteId>> cuts_;
  double drop_rate_ = 0.0;
  WanCostModel wan_cost_;
  NetworkStats stats_;
};

}  // namespace wankeeper::sim

// Simulated WAN: actors are placed at sites; messages between actors incur
// the one-way latency of the (site, site) pair plus seeded jitter. Channels
// are FIFO per (src, dst) ordered pair — the TCP assumption the paper makes
// for broker/server links — enforced by never scheduling a delivery earlier
// than the previous one on the same channel. Supports site partitions
// (symmetric or one-way), node crashes, per-link degradation (drop rate and
// extra latency), runtime latency-matrix changes, and probabilistic drops
// for failure testing. All of it is scriptable from sim/scenario.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"
#include "sim/actor.h"
#include "sim/message.h"
#include "sim/simulator.h"

namespace wankeeper::sim {

// One-way latency matrix between sites. Defaults below are calibrated to the
// paper's AWS deployment (Virginia=0, California=1, Frankfurt=2); see
// DESIGN.md §4. The matrix is mutable at runtime (set_base) so scenario
// scripts can model routing changes and diurnal latency swells; a message
// always pays the cost in effect at its *send* time.
class LatencyModel {
 public:
  // Uniform model: same latency between any two distinct sites.
  LatencyModel(std::size_t sites, Time intra_site, Time inter_site,
               double jitter_fraction = 0.05);
  // Explicit matrix (must be square, symmetric not required).
  LatencyModel(std::vector<std::vector<Time>> one_way, double jitter_fraction = 0.05);

  // The three-region topology of the paper: VA(0), CA(1), FRA(2).
  static LatencyModel paper_wan();
  // A five-region heterogeneous topology for the hostile-WAN scenarios:
  // VA(0), CA(1), FRA(2), Tokyo(3), Sydney(4). Deliberately *not* uniform:
  // one-way delays span 31–140 ms and the matrix is mildly asymmetric
  // (return paths differ by a few ms), matching the evaluation-survey
  // critique that symmetric grids hide routing effects.
  static LatencyModel wan5();

  std::size_t sites() const { return matrix_.size(); }
  Time base(SiteId from, SiteId to) const;
  void set_base(SiteId from, SiteId to, Time one_way);
  // Scale every inter-site entry by `factor` (intra-site costs untouched).
  void scale_wan(double factor);
  // Base latency plus truncated-normal jitter drawn from `rng`.
  Time sample(Rng& rng, SiteId from, SiteId to) const;

 private:
  std::vector<std::vector<Time>> matrix_;
  double jitter_;
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t wan_messages = 0;  // crossing a site boundary
};

// Optional channel-occupancy model for inter-site links. Each WAN message
// holds its ordered (src, dst) channel for per_message plus its serialized
// bytes over the link bandwidth, so bursts of small frames queue behind one
// another — the per-message overhead the coalescing layer amortizes.
// Defaults model an infinitely fast pipe (latency only), the pre-existing
// behavior.
struct WanCostModel {
  Time per_message = 0;      // fixed per-message channel hold
  double bytes_per_us = 0.0; // link bandwidth; <= 0 means unmodeled
};

// Mutable per-direction state of one inter-site link. A "cut" link drops
// every message in that direction; a degraded link loses a fraction and/or
// adds latency. Directions are independent so scenarios can express
// asymmetric partitions (A hears B but not vice versa).
struct LinkState {
  bool cut = false;
  double drop_rate = 0.0;
  Time extra_latency = 0;

  bool pristine() const {
    return !cut && drop_rate == 0.0 && extra_latency == 0;
  }
};

class Network : public ActorRegistry {
 public:
  // Attaches itself to `sim` so the simulator's rt::Runtime send/spawn/
  // site_of surface routes through this network.
  Network(Simulator& sim, LatencyModel latency);

  // Registers the actor, assigns its NodeId, calls start(). An actor that
  // is destroyed before the network deregisters itself; messages addressed
  // to it are then dropped.
  NodeId add_node(Actor& actor, SiteId site);
  void forget(NodeId node);
  void forget_actor(NodeId node) override { forget(node); }

  SiteId site_of(NodeId node) const;
  Actor& actor(NodeId node) const;  // must still be alive
  bool alive(NodeId node) const;
  std::size_t node_count() const { return nodes_.size(); }

  // Sends msg from -> to. Dropped if link_up(from, to) is false at send
  // time or the drop-rate coin (global or per-link) fires. A message in
  // flight pays the latency and link state sampled at send time; partitions
  // or latency changes that happen later do not affect it. Delivery-time
  // loss models connection reset only: destination crash, restart
  // (incarnation bump), or destruction while the message was in flight.
  void send(NodeId from, NodeId to, MessagePtr msg);

  // THE deliverability predicate, at the current virtual time: both
  // endpoints registered and up, and the directed site link not cut. Every
  // send-time admission decision goes through this one test — failure
  // injectors and scenario scripts mutate the same state it reads, so the
  // two can never disagree about whether a link is usable.
  bool link_up(NodeId from, NodeId to) const;
  // Site-level form: directed link a -> b not cut.
  bool site_link_up(SiteId a, SiteId b) const;

  // --- failure / scenario injection ---
  // Symmetric partition: cuts (or heals) both directions at once.
  void partition(SiteId a, SiteId b, bool cut);
  // Asymmetric partition: cut only from -> to ("to" cannot hear "from";
  // replies still flow). Healing one direction leaves the other alone.
  void partition_oneway(SiteId from, SiteId to, bool cut);
  // True when the directed link a -> b is cut.
  bool partitioned(SiteId a, SiteId b) const;
  // Isolate one site from every other site (both directions).
  void isolate_site(SiteId s, bool cut);
  // Degrade the directed link from -> to: lose `drop_rate` of messages and
  // add `extra_latency` to the rest. Pass zeros to restore the link.
  void degrade_link(SiteId from, SiteId to, double drop_rate, Time extra_latency);
  const LinkState& link(SiteId from, SiteId to) const;

  // Runtime latency control (affects messages sent after the call).
  void set_latency(SiteId from, SiteId to, Time one_way, bool symmetric = true);
  void scale_wan_latency(double factor);

  void set_drop_rate(double p) { drop_rate_ = p; }
  void set_wan_cost(WanCostModel cost) { wan_cost_ = cost; }
  const WanCostModel& wan_cost() const { return wan_cost_; }

  const NetworkStats& stats() const { return stats_; }
  const LatencyModel& latency() const { return latency_; }
  Simulator& sim() { return sim_; }

 private:
  LinkState& link_mut(SiteId from, SiteId to);
  std::size_t link_index(SiteId from, SiteId to) const {
    return static_cast<std::size_t>(from) * latency_.sites() +
           static_cast<std::size_t>(to);
  }

  Simulator& sim_;
  LatencyModel latency_;
  std::vector<Actor*> nodes_;
  std::vector<SiteId> sites_;
  // FIFO enforcement: earliest allowed next delivery per ordered channel.
  // Flat per-sender rows indexed by destination NodeId (node ids are dense
  // and never recycled); rows grow lazily, zero means "never used". This
  // sits on the per-send hot path — it used to be a std::map of pairs.
  std::vector<std::vector<Time>> channel_clock_;
  // Directed (from, to) site-pair link state, dense S×S (sites are fixed at
  // construction). Default-constructed cells are pristine, so lookups are
  // one index — no tree walk, no insertion-order dependence by design.
  std::vector<LinkState> links_;
  // Per-site WAN metric handles, resolved once per registry epoch instead
  // of a string-keyed registry lookup on every cross-site send. An obs
  // clear() between experiment phases bumps the epoch and dangles these, so
  // the hot path revalidates with one integer compare.
  struct WanCounters {
    obs::Counter* msgs = nullptr;
    obs::Counter* bytes = nullptr;
  };
  void refresh_wan_counters();
  std::vector<WanCounters> wan_counters_;
  std::uint64_t wan_counters_epoch_ = 0;
  double drop_rate_ = 0.0;
  WanCostModel wan_cost_;
  NetworkStats stats_;
};

}  // namespace wankeeper::sim

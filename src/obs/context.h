// The per-simulation observability context: one metrics registry plus one
// tracer, owned by the Simulator so every actor (and the network) reaches
// them through sim().obs() without extra wiring. One simulation == one
// flight recorder; the context dies with the run.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wankeeper::obs {

struct Context {
  MetricsRegistry metrics;
  Tracer tracer;

  void clear() {
    metrics.clear();
    tracer.clear();
  }
};

}  // namespace wankeeper::obs

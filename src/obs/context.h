// The per-simulation observability context: one metrics registry, one
// tracer, and one structured event log, owned by the Simulator so every
// actor (and the network) reaches them through sim().obs() without extra
// wiring. One simulation == one flight recorder; the context dies with the
// run.
#pragma once

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wankeeper::obs {

struct Context {
  MetricsRegistry metrics;
  Tracer tracer;
  EventLog events;

  void clear() {
    metrics.clear();
    tracer.clear();
    events.clear();
  }
};

}  // namespace wankeeper::obs

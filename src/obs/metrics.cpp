#include "obs/metrics.h"

#include <cstdio>

namespace wankeeper::obs {

namespace {

std::string site_label(SiteId site) {
  return site == kNoSite ? std::string("*") : std::to_string(site);
}

std::string fixed(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name, SiteId site) {
  return counters_[{name, site}];
}

Gauge& MetricsRegistry::gauge(const std::string& name, SiteId site) {
  return gauges_[{name, site}];
}

Histogram& MetricsRegistry::histogram(const std::string& name, SiteId site) {
  return histograms_[{name, site}];
}

std::uint64_t MetricsRegistry::counter_total(const std::string& name) const {
  std::uint64_t total = 0;
  for (const auto& [key, c] : counters_) {
    if (key.first == name) total += c.value();
  }
  return total;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  for (const auto& [key, c] : counters_) {
    snap.counters.emplace_back(key.first, key.second, c.value());
  }
  for (const auto& [key, g] : gauges_) {
    snap.gauges.emplace_back(key.first, key.second, g.value());
  }
  for (const auto& [key, h] : histograms_) {
    HistogramSummary s;
    s.name = key.first;
    s.site = key.second;
    s.count = h.count();
    const auto& rec = h.recorder();
    s.min_us = rec.min_us();
    s.p50_us = rec.percentile_us(0.5);
    s.p90_us = rec.percentile_us(0.9);
    s.p99_us = rec.percentile_us(0.99);
    s.max_us = rec.max_us();
    s.mean_us = rec.mean_us();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

std::string MetricsRegistry::to_json() const {
  const Snapshot snap = snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, site, value] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "@" + site_label(site) +
           "\": " + std::to_string(value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, site, value] : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "@" + site_label(site) +
           "\": " + std::to_string(value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& h : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + h.name + "@" + site_label(h.site) +
           "\": {\"count\": " + std::to_string(h.count) +
           ", \"min_us\": " + std::to_string(h.min_us) +
           ", \"p50_us\": " + std::to_string(h.p50_us) +
           ", \"p90_us\": " + std::to_string(h.p90_us) +
           ", \"p99_us\": " + std::to_string(h.p99_us) +
           ", \"max_us\": " + std::to_string(h.max_us) +
           ", \"mean_us\": " + fixed(h.mean_us) + "}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::to_table() const {
  const Snapshot snap = snapshot();
  std::string out;
  char line[256];
  for (const auto& [name, site, value] : snap.counters) {
    std::snprintf(line, sizeof(line), "%-36s %-4s %12llu\n", name.c_str(),
                  site_label(site).c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, site, value] : snap.gauges) {
    std::snprintf(line, sizeof(line), "%-36s %-4s %12lld\n", name.c_str(),
                  site_label(site).c_str(), static_cast<long long>(value));
    out += line;
  }
  for (const auto& h : snap.histograms) {
    std::snprintf(line, sizeof(line),
                  "%-36s %-4s n=%-8zu p50=%lldus p99=%lldus max=%lldus\n",
                  h.name.c_str(), site_label(h.site).c_str(), h.count,
                  static_cast<long long>(h.p50_us),
                  static_cast<long long>(h.p99_us),
                  static_cast<long long>(h.max_us));
    out += line;
  }
  return out;
}

void MetricsRegistry::clear() {
  ++epoch_;  // invalidate every cached handle
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [key, c] : other.counters_) {
    counters_[key].inc(c.value());
  }
  for (const auto& [key, g] : other.gauges_) {
    gauges_[key].add(g.value());
  }
  for (const auto& [key, h] : other.histograms_) {
    histograms_[key].merge(h);
  }
}

}  // namespace wankeeper::obs

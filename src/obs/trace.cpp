#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace wankeeper::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kEnqueue: return "enqueue";
    case SpanKind::kWanHop: return "wan_hop";
    case SpanKind::kTokenWait: return "token_wait";
    case SpanKind::kZabPropose: return "zab_propose";
    case SpanKind::kApply: return "apply";
  }
  return "?";
}

TraceId Tracer::begin(std::string what, SiteId origin_site, Time now) {
  if (!enabled_) return kNoTrace;
  TraceRecord& rec = traces_.emplace_back();
  rec.id = traces_.size();
  rec.what = std::move(what);
  rec.origin_site = origin_site;
  rec.begin = now;
  return rec.id;
}

void Tracer::open(TraceId trace, SpanKind kind, SiteId site,
                  const std::string& where, Time now, std::string detail) {
  if (!enabled_) return;
  TraceRecord* rec = lookup(trace);
  if (rec == nullptr) return;
  Span span;
  span.kind = kind;
  span.site = site;
  span.where = where;
  span.detail = std::move(detail);
  span.start = now;
  rec->spans.push_back(std::move(span));
}

void Tracer::close(TraceId trace, SpanKind kind, SiteId site, Time now) {
  if (!enabled_) return;
  TraceRecord* rec = lookup(trace);
  if (rec == nullptr) return;
  // Latest open span of this (kind, site): work inside one site is
  // sequential per trace, so this pairing is unambiguous.
  auto& spans = rec->spans;
  for (auto rit = spans.rbegin(); rit != spans.rend(); ++rit) {
    if (rit->kind == kind && rit->site == site && !rit->closed()) {
      rit->end = now;
      return;
    }
  }
}

void Tracer::point(TraceId trace, SpanKind kind, SiteId site,
                   const std::string& where, Time now, std::string detail) {
  if (!enabled_ || trace == kNoTrace) return;
  open(trace, kind, site, where, now, std::move(detail));
  close(trace, kind, site, now);
}

void Tracer::end(TraceId trace, Time now) {
  if (!enabled_) return;
  TraceRecord* rec = lookup(trace);
  if (rec == nullptr) return;
  rec->end = now;
}

const TraceRecord* Tracer::find(TraceId trace) const {
  if (trace == kNoTrace || trace > traces_.size()) return nullptr;
  return &traces_[trace - 1];
}

std::vector<SpanKind> Tracer::kinds_of(TraceId trace) const {
  std::vector<SpanKind> out;
  const TraceRecord* rec = find(trace);
  if (rec == nullptr) return out;
  out.reserve(rec->spans.size());
  for (const auto& span : rec->spans) out.push_back(span.kind);
  return out;
}

LatencyRecorder Tracer::span_latencies(SpanKind kind) const {
  LatencyRecorder rec;
  for (const auto& trace : traces_) {
    for (const auto& span : trace.spans) {
      if (span.kind == kind && span.closed()) rec.record(span.duration());
    }
  }
  return rec;
}

std::vector<const TraceRecord*> Tracer::slowest(std::size_t n) const {
  std::vector<const TraceRecord*> all;
  for (const auto& trace : traces_) {
    if (trace.completed()) all.push_back(&trace);
  }
  std::sort(all.begin(), all.end(),
            [](const TraceRecord* a, const TraceRecord* b) {
              if (a->duration() != b->duration()) {
                return a->duration() > b->duration();
              }
              return a->id < b->id;
            });
  if (all.size() > n) all.resize(n);
  return all;
}

std::string Tracer::format_trace(TraceId trace) const {
  const TraceRecord* rec = find(trace);
  if (rec == nullptr) return "trace " + std::to_string(trace) + ": <unknown>\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "trace %llu %s (site %d) total=%s\n",
                static_cast<unsigned long long>(rec->id), rec->what.c_str(),
                rec->origin_site,
                rec->completed() ? (std::to_string(rec->duration()) + "us").c_str()
                                 : "open");
  std::string out = line;
  for (const auto& span : rec->spans) {
    std::snprintf(line, sizeof(line),
                  "  +%-10lld %-12s site=%-2d %-16s %s%s%s\n",
                  static_cast<long long>(span.start - rec->begin),
                  span_kind_name(span.kind), span.site, span.where.c_str(),
                  span.closed() ? (std::to_string(span.duration()) + "us").c_str()
                                : "open",
                  span.detail.empty() ? "" : "  ", span.detail.c_str());
    out += line;
  }
  return out;
}

std::string Tracer::breakdown_table() const {
  std::string out =
      "span kind     count      p50_us       p99_us       total_us\n"
      "----------------------------------------------------------------\n";
  char line[160];
  for (std::size_t k = 0; k < kSpanKindCount; ++k) {
    const auto kind = static_cast<SpanKind>(k);
    const LatencyRecorder rec = span_latencies(kind);
    if (rec.count() == 0) continue;
    double total = 0;
    for (const Time t : rec.samples()) total += static_cast<double>(t);
    std::snprintf(line, sizeof(line), "%-12s %6zu %12lld %12lld %14.0f\n",
                  span_kind_name(kind), rec.count(),
                  static_cast<long long>(rec.percentile_us(0.5)),
                  static_cast<long long>(rec.percentile_us(0.99)), total);
    out += line;
  }
  return out;
}

void Tracer::clear() { traces_.clear(); }

}  // namespace wankeeper::obs

// Cross-site request tracing for the token protocol.
//
// Every client operation gets a TraceId at issue time; the id rides inside
// ClientRequest and the Zab Envelope wire format, so it survives forwards,
// WAN hops, L2 serialization, and fan-out. Components along the way record
// virtual-time-stamped spans against the trace:
//
//   enqueue      server request queue + CPU-slot wait at the session server
//   wan_hop      one site-to-site transfer (L1->L2 forward, replicate
//                up/down); the span's site is the *receiving* site
//   token_wait   parked at L2 while the record's token is recalled home
//   zab_propose  propose -> apply inside one site's Zab (site = that site)
//   apply        the originating server applies the txn and replies (point)
//
// Span open/close pairs are keyed (trace, kind, site), which is unambiguous
// because a trace's work inside one site is sequential while concurrent
// activity (fan-out to several sites) differs in site. Closing a span that
// was never opened is a harmless no-op (retransmits, bounced frames).
//
// Everything is deterministic: ids from a counter, timestamps from the
// virtual clock, storage in id order — same seed, same traces, byte for
// byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace wankeeper::obs {

using TraceId = std::uint64_t;
constexpr TraceId kNoTrace = 0;

enum class SpanKind : std::uint8_t {
  kEnqueue = 0,
  kWanHop,
  kTokenWait,
  kZabPropose,
  kApply,
};
constexpr std::size_t kSpanKindCount = 5;
const char* span_kind_name(SpanKind kind);

struct Span {
  SpanKind kind = SpanKind::kEnqueue;
  SiteId site = kNoSite;
  std::string where;   // actor name that opened the span
  std::string detail;  // optional, e.g. "site 1 -> site 0"
  Time start = 0;
  Time end = -1;  // -1 while open

  bool closed() const { return end >= start; }
  Time duration() const { return closed() ? end - start : 0; }
};

struct TraceRecord {
  TraceId id = kNoTrace;
  std::string what;  // e.g. "setData /ycsb/c0-17"
  SiteId origin_site = kNoSite;
  Time begin = 0;
  Time end = -1;  // client-observed completion; -1 while in flight
  std::vector<Span> spans;  // in open order (deterministic event order)

  bool completed() const { return end >= begin; }
  Time duration() const { return completed() ? end - begin : 0; }
};

class Tracer {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // All calls are no-ops when disabled or when trace == kNoTrace.
  TraceId begin(std::string what, SiteId origin_site, Time now);
  void open(TraceId trace, SpanKind kind, SiteId site, const std::string& where,
            Time now, std::string detail = "");
  void close(TraceId trace, SpanKind kind, SiteId site, Time now);
  void point(TraceId trace, SpanKind kind, SiteId site,
             const std::string& where, Time now, std::string detail = "");
  void end(TraceId trace, Time now);

  // --- queries ---
  const TraceRecord* find(TraceId trace) const;
  // All records in id order (ids are dense from 1; index i holds id i+1).
  const std::vector<TraceRecord>& traces() const { return traces_; }
  std::size_t trace_count() const { return traces_.size(); }

  // Span kinds of one trace in open order (assertion-friendly).
  std::vector<SpanKind> kinds_of(TraceId trace) const;

  // Durations (us) of every *closed* span of `kind` across all traces.
  LatencyRecorder span_latencies(SpanKind kind) const;

  // Completed traces, slowest first (ties broken by id for determinism).
  std::vector<const TraceRecord*> slowest(std::size_t n) const;

  // --- reports ---
  // One line per span, indented timeline with durations relative to begin.
  std::string format_trace(TraceId trace) const;
  // p50/p99/total per span kind across all traces.
  std::string breakdown_table() const;

  void clear();

 private:
  TraceRecord* lookup(TraceId trace) {
    if (trace == kNoTrace || trace > traces_.size()) return nullptr;
    return &traces_[trace - 1];
  }

  bool enabled_ = true;
  // Ids are handed out densely from 1, so the records live in a flat vector
  // (the tracer sits on the per-message hot path; a node-based map's
  // allocate/find/rebalance was a measurable share of the event loop).
  std::vector<TraceRecord> traces_;
};

}  // namespace wankeeper::obs

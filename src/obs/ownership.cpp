#include "obs/ownership.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace wankeeper::obs {

namespace {

std::string fmt_s(Time t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(t) / kSecond);
  return buf;
}

std::string owner_label(SiteId s) {
  return s == kNoSite ? std::string("hub") : "site " + std::to_string(s);
}

}  // namespace

OwnershipAnalytics OwnershipAnalytics::from_events(
    const std::vector<Event>& merged) {
  OwnershipAnalytics out;
  // Open recall per key: recall-sent time, for RTT attribution.
  std::map<std::string, Time> recall_open;

  auto transition = [&out](const std::string& key, SiteId new_owner, Time t) {
    RecordOwnership& rec = out.records_[key];
    if (rec.key.empty()) rec.key = key;
    const SiteId cur = rec.timeline.empty() ? kNoSite
                                            : rec.timeline.back().owner;
    if (!rec.timeline.empty() && cur == new_owner) return;  // duplicate record
    if (!rec.timeline.empty()) rec.timeline.back().to = t;
    if (rec.timeline.empty() && new_owner == kNoSite) return;  // still home
    rec.timeline.push_back(OwnershipInterval{new_owner, t, -1});
    ++rec.migrations;
  };

  for (const Event& ev : merged) {
    out.last_event_time_ = std::max(out.last_event_time_, ev.t);
    switch (ev.kind) {
      case EventKind::kTokenGrant: {
        RecordOwnership& rec = out.records_[ev.key];
        if (rec.key.empty()) rec.key = ev.key;
        ++rec.grants;
        transition(ev.key, static_cast<SiteId>(ev.a), ev.t);
        break;
      }
      case EventKind::kTokenReturn:
      case EventKind::kTokenReclaim: {
        RecordOwnership& rec = out.records_[ev.key];
        if (rec.key.empty()) rec.key = ev.key;
        if (ev.kind == EventKind::kTokenReclaim) {
          ++rec.reclaims;
        } else {
          ++rec.returns;
        }
        transition(ev.key, kNoSite, ev.t);
        if (const auto it = recall_open.find(ev.key);
            it != recall_open.end()) {
          rec.recall_rtt_us.record(ev.t - it->second);
          recall_open.erase(it);
        }
        break;
      }
      case EventKind::kTokenRecall: {
        RecordOwnership& rec = out.records_[ev.key];
        if (rec.key.empty()) rec.key = ev.key;
        ++rec.recalls;
        recall_open.try_emplace(ev.key, ev.t);
        break;
      }
      default:
        break;
    }
  }
  return out;
}

const RecordOwnership* OwnershipAnalytics::find(const std::string& key) const {
  const auto it = records_.find(key);
  return it == records_.end() ? nullptr : &it->second;
}

std::uint64_t OwnershipAnalytics::total_migrations() const {
  std::uint64_t n = 0;
  for (const auto& [key, rec] : records_) n += rec.migrations;
  return n;
}

std::uint64_t OwnershipAnalytics::total_recalls() const {
  std::uint64_t n = 0;
  for (const auto& [key, rec] : records_) n += rec.recalls;
  return n;
}

LatencyRecorder OwnershipAnalytics::recall_rtt() const {
  LatencyRecorder merged;
  for (const auto& [key, rec] : records_) merged.merge(rec.recall_rtt_us);
  return merged;
}

std::vector<const RecordOwnership*> OwnershipAnalytics::most_migrated(
    std::size_t n) const {
  std::vector<const RecordOwnership*> all;
  all.reserve(records_.size());
  for (const auto& [key, rec] : records_) all.push_back(&rec);
  std::sort(all.begin(), all.end(),
            [](const RecordOwnership* x, const RecordOwnership* y) {
              if (x->migrations != y->migrations) {
                return x->migrations > y->migrations;
              }
              return x->key < y->key;
            });
  if (all.size() > n) all.resize(n);
  return all;
}

std::string OwnershipAnalytics::format_timeline(const std::string& key,
                                                Time run_end) const {
  const RecordOwnership* rec = find(key);
  if (rec == nullptr || rec->timeline.empty()) {
    return key + ": at hub for the whole run\n";
  }
  std::string out = key + ": " + std::to_string(rec->migrations) +
                    " migration(s), " + std::to_string(rec->recalls) +
                    " recall(s)\n";
  Time cursor = 0;
  for (const OwnershipInterval& iv : rec->timeline) {
    if (iv.from > cursor) {
      out += "  [" + fmt_s(cursor) + " .. " + fmt_s(iv.from) + ")  hub\n";
    }
    const Time end = iv.open() ? run_end : iv.to;
    out += "  [" + fmt_s(iv.from) + " .. " +
           (iv.open() ? fmt_s(end) + "+" : fmt_s(end)) + ")  " +
           owner_label(iv.owner) + "  (" + fmt_s(end - iv.from) + ")\n";
    cursor = end;
  }
  if (!rec->timeline.empty() && !rec->timeline.back().open() &&
      cursor < run_end) {
    out += "  [" + fmt_s(cursor) + " .. " + fmt_s(run_end) + ")  hub\n";
  }
  return out;
}

std::string OwnershipAnalytics::table(std::size_t top_n, Time run_end) const {
  const LatencyRecorder rtt = recall_rtt();
  char head[160];
  std::snprintf(head, sizeof head,
                "ownership: %zu record(s) moved, %llu migration(s), "
                "%llu recall(s), recall rtt p50 %.1f ms p99 %.1f ms\n",
                records_.size(),
                static_cast<unsigned long long>(total_migrations()),
                static_cast<unsigned long long>(total_recalls()),
                rtt.count() ? static_cast<double>(rtt.percentile_us(0.5)) / kMillisecond : 0.0,
                rtt.count() ? static_cast<double>(rtt.percentile_us(0.99)) / kMillisecond : 0.0);
  std::string out = head;
  for (const RecordOwnership* rec : most_migrated(top_n)) {
    out += format_timeline(rec->key, run_end);
  }
  return out;
}

std::string OwnershipAnalytics::to_json() const {
  std::string out = "{\n  \"total_migrations\": " +
                    std::to_string(total_migrations()) +
                    ",\n  \"total_recalls\": " +
                    std::to_string(total_recalls());
  const LatencyRecorder rtt = recall_rtt();
  out += ",\n  \"recall_rtt_count\": " + std::to_string(rtt.count());
  if (rtt.count() > 0) {
    out += ",\n  \"recall_rtt_p50_us\": " +
           std::to_string(rtt.percentile_us(0.5)) +
           ",\n  \"recall_rtt_p99_us\": " +
           std::to_string(rtt.percentile_us(0.99));
  }
  out += ",\n  \"records\": {";
  bool first = true;
  for (const auto& [key, rec] : records_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + key + "\": {\"migrations\": " +
           std::to_string(rec.migrations) + ", \"grants\": " +
           std::to_string(rec.grants) + ", \"returns\": " +
           std::to_string(rec.returns) + ", \"recalls\": " +
           std::to_string(rec.recalls) + ", \"reclaims\": " +
           std::to_string(rec.reclaims) + ", \"timeline\": [";
    bool tfirst = true;
    for (const OwnershipInterval& iv : rec.timeline) {
      out += tfirst ? "" : ", ";
      tfirst = false;
      out += "{\"owner\": " + std::to_string(iv.owner) +
             ", \"from_us\": " + std::to_string(iv.from) +
             ", \"to_us\": " + std::to_string(iv.to) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::vector<ForkEvidence> find_duplicate_mints(
    const std::vector<Event>& merged) {
  std::map<std::uint64_t, std::set<SiteId>> mints;
  for (const Event& ev : merged) {
    if (ev.kind == EventKind::kGseqMint) mints[ev.a].insert(ev.site);
  }
  std::vector<ForkEvidence> out;
  for (const auto& [gseq, sites] : mints) {
    if (sites.size() < 2) continue;
    ForkEvidence f;
    f.gseq = gseq;
    f.sites.assign(sites.begin(), sites.end());
    out.push_back(std::move(f));
  }
  return out;
}

HubDuel find_dueling_hubs(const std::vector<Event>& merged) {
  constexpr std::uint64_t kCounterMask = (1ULL << 40) - 1;
  struct Reign {
    Time first = 0, last = 0;  // mint window
    Time ceded = -1;  // first adoption of a *different* hub after minting
    std::uint64_t mints = 0;
    std::uint64_t epoch = 0;                     // of the last mint
    std::map<std::uint64_t, std::uint64_t> by_counter;  // counter -> gseq
  };
  Time log_end = 0;
  std::map<SiteId, Reign> reigns;
  for (const Event& ev : merged) {
    log_end = std::max(log_end, ev.t);
    if (ev.kind == EventKind::kL2Adopt) {
      // A hub's reign ends when it concedes to another hub, not at its last
      // mint — a quiet old hub still *would* serialize a write that arrived.
      const auto it = reigns.find(ev.site);
      if (it != reigns.end() && it->second.ceded < 0 &&
          static_cast<SiteId>(ev.a) != ev.site) {
        it->second.ceded = ev.t;
      }
      continue;
    }
    if (ev.kind == EventKind::kSiteLeave) {
      // A crashed site cannot serialize anything, and it cannot record the
      // adoption that would normally end its reign — the crash ends it.
      const auto it = reigns.find(static_cast<SiteId>(ev.a));
      if (it != reigns.end() && it->second.ceded < 0) it->second.ceded = ev.t;
      continue;
    }
    if (ev.kind != EventKind::kGseqMint) continue;
    Reign& r = reigns[ev.site];
    if (r.mints == 0) r.first = ev.t;
    r.last = ev.t;
    ++r.mints;
    r.epoch = ev.a >> 40;
    r.by_counter.try_emplace(ev.a & kCounterMask, ev.a);
  }
  for (auto& [site, r] : reigns) {
    r.last = r.ceded >= 0 ? r.ceded : log_end;
  }

  HubDuel out;
  // Pick the overlapping pair with the longest shared window (maps iterate
  // in site order, so ties resolve deterministically).
  for (auto a = reigns.begin(); a != reigns.end(); ++a) {
    for (auto b = std::next(a); b != reigns.end(); ++b) {
      const Time begin = std::max(a->second.first, b->second.first);
      const Time end = std::min(a->second.last, b->second.last);
      if (begin > end) continue;  // clean handover, no duel
      if (out.found && end - begin <= out.overlap_end - out.overlap_begin) {
        continue;
      }
      out.found = true;
      const bool a_first = a->second.first <= b->second.first;
      const auto& ra = a_first ? a->second : b->second;
      const auto& rb = a_first ? b->second : a->second;
      out.hub_a = a_first ? a->first : b->first;
      out.hub_b = a_first ? b->first : a->first;
      out.epoch_a = ra.epoch;
      out.epoch_b = rb.epoch;
      out.overlap_begin = begin;
      out.overlap_end = end;
      out.mints_a = ra.mints;
      out.mints_b = rb.mints;
      out.shared_counters = 0;
      out.example_counter = 0;
      out.example_gseq_a = out.example_gseq_b = 0;
      for (const auto& [counter, gseq] : ra.by_counter) {
        const auto it = rb.by_counter.find(counter);
        if (it == rb.by_counter.end()) continue;
        if (out.shared_counters == 0) {
          out.example_counter = counter;
          out.example_gseq_a = gseq;
          out.example_gseq_b = it->second;
        }
        ++out.shared_counters;
      }
    }
  }
  return out;
}

std::string format_hub_duel(const HubDuel& duel) {
  if (!duel.found) return "no dueling hubs\n";
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "dueling hubs: site %d (epoch %llu, %llu mints) and site %d "
      "(epoch %llu, %llu mints) both reigning in [%s .. %s]\n"
      "  %llu sequence slot(s) claimed by both hubs; e.g. counter %llu "
      "minted as gseq %llu at site %d and gseq %llu at site %d\n",
      duel.hub_a, static_cast<unsigned long long>(duel.epoch_a),
      static_cast<unsigned long long>(duel.mints_a), duel.hub_b,
      static_cast<unsigned long long>(duel.epoch_b),
      static_cast<unsigned long long>(duel.mints_b),
      fmt_s(duel.overlap_begin).c_str(), fmt_s(duel.overlap_end).c_str(),
      static_cast<unsigned long long>(duel.shared_counters),
      static_cast<unsigned long long>(duel.example_counter),
      static_cast<unsigned long long>(duel.example_gseq_a), duel.hub_a,
      static_cast<unsigned long long>(duel.example_gseq_b), duel.hub_b);
  return buf;
}

std::string format_fork_evidence(const std::vector<ForkEvidence>& forks) {
  if (forks.empty()) return "no duplicate gseq mints\n";
  std::string out = std::to_string(forks.size()) +
                    " gseq(s) minted by more than one hub:\n";
  for (const ForkEvidence& f : forks) {
    out += "  gseq " + std::to_string(f.gseq) + " (epoch " +
           std::to_string(f.gseq >> 40) + ", counter " +
           std::to_string(f.gseq & ((1ULL << 40) - 1)) + ") minted by sites";
    for (const SiteId s : f.sites) out += " " + std::to_string(s);
    out += "\n";
  }
  return out;
}

}  // namespace wankeeper::obs

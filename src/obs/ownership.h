// Token-ownership analytics derived from the event log: per-record
// ownership timelines (which site held a token, when), migration counts,
// recall round-trip attribution, and split-brain forensics (two hubs
// minting the same global sequence number).
//
// The analytics are a pure function of EventLog::merged(): the benches and
// seed_hunt build them at report time, and a post-mortem reader can rebuild
// the exact same tables from a dumped events.json. A token with no grant
// events lives at the hub for the whole run and appears in no timeline —
// the interesting records are precisely the ones that moved.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "obs/event_log.h"

namespace wankeeper::obs {

// One hold: `owner` had the token from `from` until `to` (-1 while open at
// the end of the run). kNoSite means "home at the L2 hub".
struct OwnershipInterval {
  SiteId owner = kNoSite;
  Time from = 0;
  Time to = -1;

  bool open() const { return to < from; }
  Time duration(Time now) const { return (open() ? now : to) - from; }
};

struct RecordOwnership {
  std::string key;
  std::vector<OwnershipInterval> timeline;  // in time order, gap-free
  std::uint64_t migrations = 0;  // owner changes (grant away / return home)
  std::uint64_t grants = 0;
  std::uint64_t returns = 0;
  std::uint64_t recalls = 0;
  std::uint64_t reclaims = 0;
  LatencyRecorder recall_rtt_us;  // recall sent -> token back home
};

class OwnershipAnalytics {
 public:
  // Build from a merged, time-sorted event stream (EventLog::merged()).
  // Duplicate transition records (hub and grantee both log the same grant)
  // collapse: a grant/return that does not change the owner is counted but
  // opens no new interval.
  static OwnershipAnalytics from_events(const std::vector<Event>& merged);

  const std::map<std::string, RecordOwnership>& records() const {
    return records_;
  }
  const RecordOwnership* find(const std::string& key) const;

  std::uint64_t total_migrations() const;
  std::uint64_t total_recalls() const;
  LatencyRecorder recall_rtt() const;  // merged across records

  // Records by migration count, descending (ties by key for determinism).
  std::vector<const RecordOwnership*> most_migrated(std::size_t n) const;

  // --- reports (all deterministic) ---
  // One line per interval: "  [12.000s .. 31.500s)  site 2   (19.500s)".
  std::string format_timeline(const std::string& key, Time run_end) const;
  // Top-N most migrated records with counts and recall RTTs.
  std::string table(std::size_t top_n, Time run_end) const;
  std::string to_json() const;

 private:
  std::map<std::string, RecordOwnership> records_;
  Time last_event_time_ = 0;
};

// Split-brain forensics, layer 1: the exact same 64-bit gseq minted by more
// than one site. The epoch lives in the high bits and a promoting hub always
// bumps it, so this only fires when two sites promote to the *same* epoch —
// the worst-case signature, worth keeping armed even though the common fork
// (below) never trips it.
struct ForkEvidence {
  std::uint64_t gseq = 0;
  std::vector<SiteId> sites;  // distinct minting sites, ascending
};
std::vector<ForkEvidence> find_duplicate_mints(const std::vector<Event>& merged);
std::string format_fork_evidence(const std::vector<ForkEvidence>& forks);

// Split-brain forensics, layer 2: dueling hubs. The asym3 hub-handover fork
// looks like this in the event log — the partitioned site self-promotes and
// mints under a bumped epoch while the old hub, which never saw the
// promotion, keeps minting under its own. Both hubs stamp the same sequence
// slots (the low 40-bit counter), each under its own epoch: two histories
// claiming to be "the" commit order. Detected as two sites whose hub reigns
// overlap in virtual time — a reign runs from a site's first gseq mint until
// it concedes by adopting a different hub (kL2Adopt), or the log ends.
struct HubDuel {
  bool found = false;
  SiteId hub_a = kNoSite;  // earlier reign (first mint first)
  SiteId hub_b = kNoSite;
  std::uint64_t epoch_a = 0;  // epoch each hub minted under during the duel
  std::uint64_t epoch_b = 0;
  Time overlap_begin = 0;  // both sites reigned as hub in this window
  Time overlap_end = 0;
  std::uint64_t mints_a = 0;  // total mints per hub over the run
  std::uint64_t mints_b = 0;
  std::uint64_t shared_counters = 0;  // sequence slots claimed by both hubs
  // One concrete collision: the same counter as stamped by each hub.
  std::uint64_t example_counter = 0;
  std::uint64_t example_gseq_a = 0;
  std::uint64_t example_gseq_b = 0;
};
HubDuel find_dueling_hubs(const std::vector<Event>& merged);
std::string format_hub_duel(const HubDuel& duel);

}  // namespace wankeeper::obs

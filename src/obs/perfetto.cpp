#include "obs/perfetto.h"

#include <cstdio>
#include <set>

namespace wankeeper::obs {

namespace {

// Sites are small non-negative ints; kNoSite (-1) becomes a distinct high
// pid so "global" spans/events still render instead of vanishing.
int pid_of(SiteId site) { return site == kNoSite ? 0x7fff : site; }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_process_metadata(std::string* out, const std::set<SiteId>& sites,
                             bool* first) {
  for (const SiteId site : sites) {
    *out += *first ? "\n" : ",\n";
    *first = false;
    const std::string label =
        site == kNoSite ? std::string("global") : "site " + std::to_string(site);
    *out += "    {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " +
            std::to_string(pid_of(site)) + ", \"tid\": 0, \"args\": {\"name\": \"" +
            label + "\"}}";
  }
}

void append_spans(std::string* out, const Tracer& tracer, bool* first) {
  for (const TraceRecord& rec : tracer.traces()) {
    for (const Span& span : rec.spans) {
      *out += *first ? "\n" : ",\n";
      *first = false;
      const Time dur = span.closed() ? span.duration() : 0;
      *out += "    {\"ph\": \"X\", \"name\": \"" +
              std::string(span_kind_name(span.kind)) + "\", \"cat\": \"" +
              json_escape(rec.what) + "\", \"pid\": " +
              std::to_string(pid_of(span.site)) + ", \"tid\": " +
              std::to_string(rec.id) + ", \"ts\": " + std::to_string(span.start) +
              ", \"dur\": " + std::to_string(dur) + ", \"args\": {\"trace\": " +
              std::to_string(rec.id) + ", \"where\": \"" + json_escape(span.where) +
              "\"";
      if (!span.detail.empty()) {
        *out += ", \"detail\": \"" + json_escape(span.detail) + "\"";
      }
      if (!span.closed()) *out += ", \"open\": true";
      *out += "}}";
    }
    // The whole request as one envelope slice on its origin site's row, so
    // the client-observed latency is visible without adding up the spans.
    if (rec.completed()) {
      *out += *first ? "\n" : ",\n";
      *first = false;
      *out += "    {\"ph\": \"X\", \"name\": \"" + json_escape(rec.what) +
              "\", \"cat\": \"request\", \"pid\": " +
              std::to_string(pid_of(rec.origin_site)) + ", \"tid\": " +
              std::to_string(rec.id) + ", \"ts\": " + std::to_string(rec.begin) +
              ", \"dur\": " + std::to_string(rec.duration()) +
              ", \"args\": {\"trace\": " + std::to_string(rec.id) + "}}";
    }
  }
}

void append_events(std::string* out, const EventLog& events, bool* first) {
  for (const Event& ev : events.merged()) {
    *out += *first ? "\n" : ",\n";
    *first = false;
    // Instant events on tid 0 of the site's process: annotations, not work.
    *out += "    {\"ph\": \"i\", \"s\": \"p\", \"name\": \"" +
            std::string(event_kind_name(ev.kind)) + "\", \"cat\": \"event\", " +
            "\"pid\": " + std::to_string(pid_of(ev.site)) +
            ", \"tid\": 0, \"ts\": " + std::to_string(ev.t) +
            ", \"args\": {\"actor\": \"" + json_escape(ev.actor) + "\"";
    if (!ev.key.empty()) *out += ", \"key\": \"" + json_escape(ev.key) + "\"";
    if (ev.a != 0) *out += ", \"a\": " + std::to_string(ev.a);
    if (ev.b != 0) *out += ", \"b\": " + std::to_string(ev.b);
    if (!ev.detail.empty()) {
      *out += ", \"detail\": \"" + json_escape(ev.detail) + "\"";
    }
    *out += "}}";
  }
}

std::string export_json(const Tracer& tracer, const EventLog* events) {
  std::set<SiteId> sites;
  for (const TraceRecord& rec : tracer.traces()) {
    sites.insert(rec.origin_site);
    for (const Span& span : rec.spans) sites.insert(span.site);
  }
  if (events != nullptr) {
    for (const Event& ev : events->merged()) sites.insert(ev.site);
  }

  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  append_process_metadata(&out, sites, &first);
  append_spans(&out, tracer, &first);
  if (events != nullptr) append_events(&out, *events, &first);
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

}  // namespace

std::string perfetto_trace_json(const Tracer& tracer) {
  return export_json(tracer, nullptr);
}

std::string perfetto_trace_json(const Tracer& tracer, const EventLog& events) {
  return export_json(tracer, &events);
}

}  // namespace wankeeper::obs

#include "obs/event_log.h"

#include <algorithm>
#include <cstdio>

namespace wankeeper::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kTokenGrant: return "token_grant";
    case EventKind::kTokenRecall: return "token_recall";
    case EventKind::kTokenReturn: return "token_return";
    case EventKind::kTokenReclaim: return "token_reclaim";
    case EventKind::kLeaderElected: return "leader_elected";
    case EventKind::kLeaderLost: return "leader_lost";
    case EventKind::kL2Adopt: return "l2_adopt";
    case EventKind::kHubPromote: return "hub_promote";
    case EventKind::kHubReconcile: return "hub_reconcile";
    case EventKind::kGseqMint: return "gseq_mint";
    case EventKind::kRegister: return "register";
    case EventKind::kResync: return "resync";
    case EventKind::kFrontier: return "frontier";
    case EventKind::kScenario: return "scenario";
    case EventKind::kSiteLeave: return "site_leave";
    case EventKind::kSiteRejoin: return "site_rejoin";
    case EventKind::kNodeCrash: return "node_crash";
    case EventKind::kNodeRestart: return "node_restart";
    case EventKind::kFault: return "fault";
    case EventKind::kViolation: return "violation";
  }
  return "unknown";
}

namespace {

// Minimal JSON string escaping: the strings we record are actor names,
// paths, and log-style details, but witness text can carry quotes and
// newlines, and a dump that breaks a JSON parser is a dump lost.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void EventLog::set_capacity(std::size_t per_site_capacity) {
  capacity_ = per_site_capacity == 0 ? 1 : per_site_capacity;
}

void EventLog::record(Time t, SiteId site, EventKind kind,
                      const std::string& actor, std::string detail,
                      std::string key, std::uint64_t a, std::uint64_t b) {
  if (!enabled_) return;
  Ring& ring = rings_[site];
  Event ev;
  ev.seq = next_seq_++;
  ev.t = t;
  ev.site = site;
  ev.kind = kind;
  ev.actor = actor;
  ev.key = std::move(key);
  ev.a = a;
  ev.b = b;
  ev.detail = std::move(detail);
  if (ring.buf.size() < capacity_) {
    ring.buf.push_back(std::move(ev));
  } else {
    ring.buf[static_cast<std::size_t>(ring.total % capacity_)] = std::move(ev);
  }
  ++ring.total;
}

std::uint64_t EventLog::recorded(SiteId site) const {
  const auto it = rings_.find(site);
  return it == rings_.end() ? 0 : it->second.total;
}

std::uint64_t EventLog::dropped(SiteId site) const {
  const auto it = rings_.find(site);
  if (it == rings_.end()) return 0;
  return it->second.total - it->second.buf.size();
}

std::size_t EventLog::size() const {
  std::size_t n = 0;
  for (const auto& [site, ring] : rings_) n += ring.buf.size();
  return n;
}

std::vector<Event> EventLog::merged() const {
  std::vector<Event> out;
  out.reserve(size());
  for (const auto& [site, ring] : rings_) {
    out.insert(out.end(), ring.buf.begin(), ring.buf.end());
  }
  std::sort(out.begin(), out.end(), [](const Event& x, const Event& y) {
    if (x.t != y.t) return x.t < y.t;
    return x.seq < y.seq;
  });
  return out;
}

std::vector<Event> EventLog::merged(EventKind kind) const {
  std::vector<Event> all = merged();
  std::vector<Event> out;
  for (auto& ev : all) {
    if (ev.kind == kind) out.push_back(std::move(ev));
  }
  return out;
}

void EventLog::request_dump(std::string reason) {
  dump_reasons_.push_back(std::move(reason));
}

std::string EventLog::to_json() const {
  std::string out = "{\n  \"dump_reasons\": [";
  bool first = true;
  for (const auto& r : dump_reasons_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(r) + "\"";
  }
  out += dump_reasons_.empty() ? "],\n" : "\n  ],\n";
  out += "  \"rings\": {";
  first = true;
  for (const auto& [site, ring] : rings_) {
    out += first ? "\n" : ",\n";
    first = false;
    const std::string label = site == kNoSite ? "*" : std::to_string(site);
    out += "    \"" + label + "\": {\"recorded\": " +
           std::to_string(ring.total) + ", \"held\": " +
           std::to_string(ring.buf.size()) + ", \"dropped\": " +
           std::to_string(ring.total - ring.buf.size()) + "}";
  }
  out += rings_.empty() ? "},\n" : "\n  },\n";
  out += "  \"events\": [";
  first = true;
  for (const Event& ev : merged()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"seq\": " + std::to_string(ev.seq) +
           ", \"t_us\": " + std::to_string(ev.t) + ", \"site\": " +
           (ev.site == kNoSite ? std::string("-1") : std::to_string(ev.site)) +
           ", \"kind\": \"" + event_kind_name(ev.kind) + "\"" +
           ", \"actor\": \"" + json_escape(ev.actor) + "\"";
    if (!ev.key.empty()) out += ", \"key\": \"" + json_escape(ev.key) + "\"";
    if (ev.a != 0) out += ", \"a\": " + std::to_string(ev.a);
    if (ev.b != 0) out += ", \"b\": " + std::to_string(ev.b);
    if (!ev.detail.empty()) {
      out += ", \"detail\": \"" + json_escape(ev.detail) + "\"";
    }
    out += "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string EventLog::to_text() const {
  std::string out;
  for (const Event& ev : merged()) {
    char head[96];
    std::snprintf(head, sizeof head, "%12.6fs  site %2d  %-14s ",
                  static_cast<double>(ev.t) / kSecond,
                  static_cast<int>(ev.site), event_kind_name(ev.kind));
    out += head;
    out += ev.actor;
    if (!ev.key.empty()) out += " " + ev.key;
    if (ev.a != 0) out += " a=" + std::to_string(ev.a);
    if (ev.b != 0) out += " b=" + std::to_string(ev.b);
    if (!ev.detail.empty()) out += "  " + ev.detail;
    out += "\n";
  }
  return out;
}

void EventLog::clear() {
  rings_.clear();
  dump_reasons_.clear();
  next_seq_ = 1;
}

}  // namespace wankeeper::obs

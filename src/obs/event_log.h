// Black-box flight recorder: an always-on, fixed-size, per-site ring of
// structured protocol events. Where the metrics registry answers "how
// many / how long" and the tracer answers "where did THIS request spend
// its time", the event log answers the question every WAN post-mortem
// starts with: *who owned what, when, and which hub minted which gseq*.
//
// Every protocol state transition — token grant/recall/return/reclaim,
// elections, L2 epoch adoptions, hub promotion/demotion, gseq minting,
// frontier resyncs, scenario weather, crashes and fault-point firings —
// is recorded with a deterministic virtual-time stamp and a global
// sequence number. Each site has its own fixed-capacity ring (so one
// chatty site cannot evict another site's history) and merged() zips all
// rings into one time-sorted stream, with the global sequence breaking
// timestamp ties: two runs with the same seed produce byte-identical
// dumps.
//
// Dump discipline: recording is always on and cheap (a ring slot write);
// *dumping* happens post mortem. Anything that decides a run is worth
// dissecting — a failed sweep, a consistency-checker violation, an armed
// fault-injection hook firing — calls request_dump() and the harness
// serializes to_json() next to the other failure artifacts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace wankeeper::obs {

enum class EventKind : std::uint8_t {
  // Token protocol state transitions.
  kTokenGrant = 0,  // key -> site `a` (recorded where the marker applies)
  kTokenRecall,     // hub asked site `a` to return `key`
  kTokenReturn,     // `key` back home at the hub (from site `a`)
  kTokenReclaim,    // lease expiry: hub reclaimed `key` from dead site `a`
  // Leadership and hub identity.
  kLeaderElected,  // zab leadership established, epoch `a`
  kLeaderLost,     // zab leadership lost / stepped down
  kL2Adopt,        // adopted hub identity: site `a`, L2 epoch `b`
  kHubPromote,     // this site promoted itself to hub, L2 epoch `a`
  kHubReconcile,   // new-hub catch-up: begin/done/abort/timeout, epoch `a`
  kGseqMint,       // hub stamped gseq `a` (epoch `b`) on a transaction
  // Resync machinery.
  kRegister,     // L1 leader announced itself to the hub (zab epoch `a`)
  kResync,       // hub re-shipped `a` txn(s) to site `b`
  kFrontier,     // stagnant/behind frontier observed for site `a`
  // Environment: scenario weather, crash schedules, fault injection.
  kScenario,     // a scripted scenario event fired
  kSiteLeave,    // whole site `a` down (scenario hook)
  kSiteRejoin,   // whole site `a` back (scenario hook)
  kNodeCrash,    // one replica crashed
  kNodeRestart,  // one replica restarted
  kFault,        // named fault-injection point fired
  // Findings stamped in by the checkers at quiesce time.
  kViolation,  // token-audit or consistency-checker violation
};
constexpr std::size_t kEventKindCount = 20;
const char* event_kind_name(EventKind kind);

struct Event {
  std::uint64_t seq = 0;  // global record order; breaks equal-time ties
  Time t = 0;             // virtual time
  SiteId site = kNoSite;  // ring the event lives in (kNoSite = global)
  EventKind kind = EventKind::kScenario;
  std::string actor;   // name of the node/component that recorded it
  std::string key;     // token key / path, when applicable
  std::uint64_t a = 0; // numeric payload (see kind comments)
  std::uint64_t b = 0;
  std::string detail;  // human-readable amplification
};

class EventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 16384;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Per-site ring capacity. Only affects rings created after the call, so
  // set it before the run starts (tests use tiny rings to force wraps).
  void set_capacity(std::size_t per_site_capacity);
  std::size_t capacity() const { return capacity_; }

  void record(Time t, SiteId site, EventKind kind, const std::string& actor,
              std::string detail = "", std::string key = "",
              std::uint64_t a = 0, std::uint64_t b = 0);

  // Events recorded / evicted-by-wrap for one site's ring.
  std::uint64_t recorded(SiteId site) const;
  std::uint64_t dropped(SiteId site) const;
  // Events currently held across all rings.
  std::size_t size() const;

  // All held events, merged across sites and sorted by (t, seq). Equal
  // timestamps keep global record order, so the merge is deterministic.
  std::vector<Event> merged() const;
  std::vector<Event> merged(EventKind kind) const;

  // --- post-mortem dump plumbing ---
  // Mark this run as worth dumping (sweep failure, consistency violation,
  // armed fault hook fired). Reasons accumulate; recording continues.
  void request_dump(std::string reason);
  bool dump_requested() const { return !dump_reasons_.empty(); }
  const std::vector<std::string>& dump_reasons() const { return dump_reasons_; }

  // The post-mortem artifact: merged event stream plus per-ring accounting
  // and the dump reasons. Deterministic byte-for-byte for a given state.
  std::string to_json() const;
  // One line per merged event — the greppable flavor of the same dump.
  std::string to_text() const;

  void clear();

 private:
  struct Ring {
    std::vector<Event> buf;  // capacity-bounded; write index = total % cap
    std::uint64_t total = 0; // lifetime records into this ring
  };

  bool enabled_ = true;
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t next_seq_ = 1;
  std::map<SiteId, Ring> rings_;
  std::vector<std::string> dump_reasons_;
};

}  // namespace wankeeper::obs

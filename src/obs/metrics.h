// Flight-recorder metrics: a registry of named counters, gauges, and
// histograms that any component can register against, scoped per site.
//
// Everything is driven by virtual time and deterministic counters, so two
// runs with the same seed produce byte-identical snapshots — the registry
// is the ground truth the benches cite when a perf PR claims a win.
// Handles returned by counter()/gauge()/histogram() are stable until the
// next clear() (node-based map), so hot paths can cache them as long as
// they revalidate against epoch() — clear() bumps it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace wankeeper::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void add(std::int64_t delta) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

// Exact-percentile histogram (raw samples, like LatencyRecorder; sample
// volumes in our experiments make this affordable).
class Histogram {
 public:
  void record(Time v) { recorder_.record(v); }
  std::size_t count() const { return recorder_.count(); }
  const LatencyRecorder& recorder() const { return recorder_; }
  void merge(const Histogram& other) { recorder_.merge(other.recorder_); }

 private:
  LatencyRecorder recorder_;
};

class MetricsRegistry {
 public:
  // Metrics are keyed (name, site); site kNoSite means deployment-global.
  // Dotted lower-case names by convention: "broker.grants", "net.wan_bytes".
  Counter& counter(const std::string& name, SiteId site = kNoSite);
  Gauge& gauge(const std::string& name, SiteId site = kNoSite);
  Histogram& histogram(const std::string& name, SiteId site = kNoSite);

  // Sum of a counter family across all sites (including the global scope).
  std::uint64_t counter_total(const std::string& name) const;

  struct HistogramSummary {
    std::string name;
    SiteId site = kNoSite;
    std::size_t count = 0;
    Time min_us = 0;
    Time p50_us = 0;
    Time p90_us = 0;
    Time p99_us = 0;
    Time max_us = 0;
    double mean_us = 0.0;
  };

  // Point-in-time copy of every metric, sorted by (name, site): safe to
  // keep after the registry (and the simulation) are gone.
  struct Snapshot {
    std::vector<std::tuple<std::string, SiteId, std::uint64_t>> counters;
    std::vector<std::tuple<std::string, SiteId, std::int64_t>> gauges;
    std::vector<HistogramSummary> histograms;
  };
  Snapshot snapshot() const;

  // Deterministic exports: iteration order is the sorted key order and all
  // numbers are fixed-format, so identical runs serialize identically.
  std::string to_json() const;
  std::string to_table() const;

  void clear();

  // Fold another registry into this one: counters sum, gauges add,
  // histogram samples merge. The thread runtime keeps one registry per
  // event-loop thread (the registry is not thread-safe); this is how a
  // deployment-wide view is assembled from them (rt::ThreadRuntime::
  // collect_metrics). Under the single-threaded DES it is never needed.
  void merge_from(const MetricsRegistry& other);

  // Incremented by clear(); cached metric handles from an older epoch are
  // dangling and must be re-resolved.
  std::uint64_t epoch() const { return epoch_; }

 private:
  std::uint64_t epoch_ = 0;
  std::map<std::pair<std::string, SiteId>, Counter> counters_;
  std::map<std::pair<std::string, SiteId>, Gauge> gauges_;
  std::map<std::pair<std::string, SiteId>, Histogram> histograms_;
};

// Cached handles for per-event hot paths: the (name, site) map lookup —
// which builds a temporary std::string key — happens once, then the raw
// pointer is reused until clear() bumps the epoch. Keep one per call site
// as a member of the recording object.
class CachedCounter {
 public:
  Counter& at(MetricsRegistry& reg, const char* name, SiteId site) {
    if (ptr_ == nullptr || epoch_ != reg.epoch()) {
      ptr_ = &reg.counter(name, site);
      epoch_ = reg.epoch();
    }
    return *ptr_;
  }

 private:
  Counter* ptr_ = nullptr;
  std::uint64_t epoch_ = 0;
};

class CachedHistogram {
 public:
  Histogram& at(MetricsRegistry& reg, const char* name, SiteId site) {
    if (ptr_ == nullptr || epoch_ != reg.epoch()) {
      ptr_ = &reg.histogram(name, site);
      epoch_ = reg.epoch();
    }
    return *ptr_;
  }

 private:
  Histogram* ptr_ = nullptr;
  std::uint64_t epoch_ = 0;
};

}  // namespace wankeeper::obs

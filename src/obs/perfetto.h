// Chrome-trace / Perfetto JSON export for the request tracer: every span
// the obs::Tracer recorded becomes a complete ("X") event, so a cross-site
// request trace can be opened in ui.perfetto.dev or chrome://tracing and
// read on a real timeline instead of as indented text.
//
// Layout: one Perfetto "process" per site (pid = site id; kNoSite maps to
// pid 0x7fff), one "thread" per trace within that process (tid = trace id),
// so concurrent requests render as separate rows and one request's
// cross-site hops line up vertically at the same timestamps. Virtual
// microseconds map 1:1 onto the trace "ts" field. Output is deterministic:
// same tracer state, same bytes.
#pragma once

#include <string>

#include "obs/event_log.h"
#include "obs/trace.h"

namespace wankeeper::obs {

// The tracer's spans as a chrome://tracing "traceEvents" JSON document.
// Open spans (end still pending) are exported with zero duration and an
// "open": true arg rather than dropped — a post-mortem usually cares most
// about exactly the work that never finished.
std::string perfetto_trace_json(const Tracer& tracer);

// Same document with the event log merged in as instant ("i") events on
// each site's process row, so token grants, elections, and hub handovers
// annotate the request timeline they explain.
std::string perfetto_trace_json(const Tracer& tracer, const EventLog& events);

}  // namespace wankeeper::obs

// A Zab peer: one replica of an atomic-broadcast ensemble, implementing the
// protocol's four phases (election, discovery, synchronization, broadcast)
// plus ZooKeeper's observer role (non-voting learners fed by INFORM).
//
// The peer owns ordering and durability; the replicated application sits
// behind the StateMachine interface and receives committed entries in zxid
// order. Crash/restart models a process with a durable log and snapshot:
// the TxnLog, epochs, and delivered frontier survive; role and protocol
// state do not.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/actor.h"
#include "zab/log.h"
#include "zab/messages.h"

namespace wankeeper::zab {

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  // Called exactly once per committed entry, in zxid order.
  virtual void on_commit(const LogEntry& entry) = 0;

  // Role transitions (informational; a server uses these to route writes).
  virtual void on_leading(std::uint32_t epoch) { (void)epoch; }
  virtual void on_following(NodeId leader, std::uint32_t epoch) {
    (void)leader;
    (void)epoch;
  }
  virtual void on_looking() {}
};

enum class Role : std::uint8_t {
  kLooking,     // electing (voters) or searching for a leader (observers)
  kFollowing,   // voting follower, synced or syncing
  kLeading,     // elected leader (possibly still syncing initial quorum)
  kObserving,   // non-voting learner attached to a leader
};

const char* role_name(Role r);

struct PeerOptions {
  Time vote_interval = 150 * kMillisecond;       // rebroadcast votes while looking
  Time discovery_timeout = 900 * kMillisecond;   // waiting for epoch quorum / NEWEPOCH
  Time ping_interval = 75 * kMillisecond;        // leader heartbeat
  Time follower_timeout = 700 * kMillisecond;    // silence from leader -> looking
  Time leader_quorum_timeout = 900 * kMillisecond;  // leader lost quorum -> looking
  Time boot_stagger = 10 * kMillisecond;         // per-peer offset at start_election

  // Group commit (leader-side batching). With max_batch <= 1 every proposal
  // is broadcast immediately (the unbatched protocol). With max_batch > 1
  // the leader uses "natural" batching: a proposal is broadcast at once when
  // no quorum round is in flight, otherwise it accumulates until the round
  // completes, max_batch entries are pending, or max_delay elapses.
  std::size_t max_batch = 1;
  Time max_delay = 2 * kMillisecond;
};

class Peer : public sim::Actor {
 public:
  Peer(rt::Runtime& rt, std::string name, StateMachine& sm,
       PeerOptions opts = {});

  // Wire the peer into its ensemble once all NodeIds exist. `voters` must
  // include this peer's own id unless `is_observer`. `priority` breaks
  // election ties after zxid comparison (higher wins), letting deployments
  // place the leader deterministically (the paper pins it to Virginia);
  // higher-priority peers also boot their election first.
  void boot(std::vector<NodeId> voters, std::vector<NodeId> observers,
            bool is_observer, std::int32_t priority = 0);

  // --- introspection ---
  Role role() const { return role_; }
  bool leading() const { return up() && role_ == Role::kLeading && broadcasting_; }
  NodeId leader() const { return leader_; }
  std::uint32_t current_epoch() const { return current_epoch_; }
  Zxid last_logged() const { return log_.last_zxid(); }
  Zxid last_delivered() const { return delivered_; }
  const TxnLog& log() const { return log_; }
  bool is_observer() const { return is_observer_; }
  std::size_t quorum() const { return voters_.size() / 2 + 1; }

  // --- leader API ---
  // Assigns a zxid, appends locally, broadcasts PROPOSE. Returns kNoZxid
  // when this peer is not an established leader.
  Zxid propose(std::vector<std::uint8_t> payload);

  void on_message(NodeId from, const sim::MessagePtr& msg) override;

 protected:
  void on_crash() override;
  void on_restart() override;

 private:
  struct Vote {
    NodeId candidate = kNoNode;
    Zxid zxid = kNoZxid;
    std::int32_t priority = 0;
    bool better_than(const Vote& o) const {
      if (zxid != o.zxid) return zxid > o.zxid;
      if (priority != o.priority) return priority > o.priority;
      return candidate > o.candidate;
    }
  };

  // --- election ---
  void kickstart();
  void start_election();
  void looking_tick_helper();
  void broadcast_vote();
  void handle_vote(NodeId from, const VoteMsg& m);
  void handle_current_leader(const CurrentLeaderMsg& m);
  void evaluate_votes();
  void follow(NodeId leader);

  // --- discovery (leader-elect side) ---
  void enter_discovery();
  void maybe_start_epoch();
  void handle_follower_info(NodeId from, const FollowerInfoMsg& m);
  void handle_ack_epoch(NodeId from, const AckEpochMsg& m);
  void maybe_finish_discovery();

  // --- discovery/sync (follower side) ---
  void handle_new_epoch(NodeId from, const NewEpochMsg& m);
  void handle_sync(NodeId from, const SyncMsg& m);
  void handle_new_leader(NodeId from, const NewLeaderMsg& m);
  void handle_up_to_date(NodeId from, const UpToDateMsg& m);

  // --- sync (leader side) ---
  void sync_learner(NodeId learner, Zxid learner_last, bool observer);
  void handle_ack_new_leader(NodeId from, const AckNewLeaderMsg& m);
  void establish_leadership();

  // --- broadcast ---
  bool extends_log(Zxid next) const;
  void request_resync();
  void expect_sync();
  bool sync_in_flight() const;
  void flush_batch();
  void arm_flush_timer();
  void handle_propose(NodeId from, const ProposeMsg& m);
  void handle_ack(NodeId from, const AckMsg& m);
  void maybe_commit();
  void handle_commit(NodeId from, const CommitMsg& m);
  void handle_inform(NodeId from, const InformMsg& m);
  void handle_observer_info(NodeId from, const ObserverInfoMsg& m);

  // --- liveness ---
  void handle_ping(NodeId from, const PingMsg& m);
  void leader_tick();
  void follower_tick();
  void arm_follower_timer();
  void arm_leader_timer();

  // --- helpers ---
  void send(NodeId to, sim::MessagePtr m);
  void deliver_committed();
  void advance_commit_frontier(Zxid z);
  bool from_current_leader(NodeId from, std::uint32_t epoch) const;
  void note_contact(NodeId from);
  bool is_voter(NodeId n) const;
  void reset_volatile_role_state();

  StateMachine& sm_;
  PeerOptions opts_;
  std::vector<NodeId> voters_;
  std::vector<NodeId> observers_;
  bool is_observer_ = false;
  std::int32_t priority_ = 0;

  // --- durable state (survives crash) ---
  TxnLog log_;
  std::uint32_t accepted_epoch_ = 0;
  std::uint32_t current_epoch_ = 0;
  Zxid delivered_ = kNoZxid;  // applied frontier (models the snapshot)

  // --- volatile state ---
  Role role_ = Role::kLooking;
  NodeId leader_ = kNoNode;
  std::uint64_t round_ = 0;
  Vote my_vote_;
  std::map<NodeId, Vote> votes_;
  bool awaiting_new_epoch_ = false;
  Time awaiting_since_ = 0;

  // leader-elect / leader
  bool broadcasting_ = false;  // true once leadership is established
  std::uint32_t new_epoch_ = 0;
  std::uint32_t max_accepted_epoch_seen_ = 0;
  Zxid sync_point_ = kNoZxid;  // log frontier committed at establishment
  std::map<NodeId, Zxid> follower_infos_;
  std::set<NodeId> epoch_acks_;
  std::set<NodeId> newleader_acks_;
  std::set<NodeId> synced_followers_;
  std::set<NodeId> synced_observers_;
  std::uint32_t counter_ = 0;
  // Outstanding proposals awaiting quorum, in zxid order (proposals are
  // minted monotonically and the deque is cleared on epoch change, so
  // push_back keeps it sorted). Ack membership is a bitmask over voters_
  // indices — only voters ever ACK — which makes the cumulative-ack sweep
  // in handle_ack an OR per entry instead of a set insert. boot() rejects
  // ensembles with more than 64 voters to keep the mask exact.
  struct PendingProposal {
    Zxid zxid;
    std::uint64_t acks = 0;
  };
  std::uint64_t voter_bit(NodeId n) const;
  std::deque<PendingProposal> proposal_acks_;
  // Leader: propose->deliver latency, consumed by deliver_committed in the
  // same zxid order it was recorded in, so a deque front-scan replaces the
  // map lookup.
  std::deque<std::pair<Zxid, Time>> proposed_at_;
  obs::CachedCounter proposals_ctr_;
  obs::CachedHistogram batch_size_hist_;
  obs::CachedHistogram commit_latency_hist_;
  // Group commit: logged-but-not-yet-broadcast entries and the highest zxid
  // already sent to followers (a round is in flight while it exceeds the
  // commit frontier).
  std::vector<LogEntry> pending_batch_;
  Zxid broadcast_frontier_ = kNoZxid;
  bool flush_timer_armed_ = false;
  Zxid commit_frontier_ = kNoZxid;
  std::map<NodeId, Time> last_contact_;

  // follower
  Time last_leader_contact_ = 0;
  Time last_resync_request_ = -1;
  // A SYNC is owed to us (we sent ACKEPOCH/OBSERVERINFO and the leader will
  // answer with SYNC). Guards request_resync against re-entrancy — two
  // overlapping DIFF applications could truncate entries the first sync
  // already delivered — and lets handle_sync drop unsolicited SYNCs.
  bool sync_pending_ = false;
  Time sync_pending_since_ = 0;
};

}  // namespace wankeeper::zab

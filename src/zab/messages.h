// Zab wire messages: election, discovery, synchronization, broadcast —
// the four phases of Figure 2 (minus the WanKeeper L1/L2 extension, which
// lives in wankeeper/).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/message.h"
#include "zab/log.h"

namespace wankeeper::zab {

// --- election ---

// Broadcast by LOOKING peers; carries the sender's best-known candidate.
struct VoteMsg : sim::Message {
  std::uint64_t round = 0;   // election round (logical clock)
  NodeId candidate = kNoNode;
  Zxid candidate_zxid = kNoZxid;
  std::int32_t candidate_priority = 0;  // deployment-assigned tie-break
  const char* name() const override { return "zab.vote"; }
};

// Reply from a settled (FOLLOWING/LEADING) peer to a LOOKING one.
struct CurrentLeaderMsg : sim::Message {
  NodeId leader = kNoNode;
  std::uint32_t epoch = 0;
  const char* name() const override { return "zab.currentLeader"; }
};

// --- discovery ---

struct FollowerInfoMsg : sim::Message {
  std::uint32_t accepted_epoch = 0;
  Zxid last_zxid = kNoZxid;
  const char* name() const override { return "zab.followerInfo"; }
};

struct NewEpochMsg : sim::Message {
  std::uint32_t epoch = 0;
  const char* name() const override { return "zab.newEpoch"; }
};

struct AckEpochMsg : sim::Message {
  std::uint32_t current_epoch = 0;
  Zxid last_zxid = kNoZxid;
  const char* name() const override { return "zab.ackEpoch"; }
};

// --- synchronization ---

// TRUNC + DIFF in one message: drop everything after `truncate_to`, then
// append `entries`. `commit_up_to` tells the learner how far it may apply.
struct SyncMsg : sim::Message {
  std::uint32_t epoch = 0;
  Zxid truncate_to = kNoZxid;
  std::vector<LogEntry> entries;
  Zxid commit_up_to = kNoZxid;
  std::size_t wire_size() const override { return 64 + entries.size() * 128; }
  const char* name() const override { return "zab.sync"; }
};

struct NewLeaderMsg : sim::Message {
  std::uint32_t epoch = 0;
  const char* name() const override { return "zab.newLeader"; }
};

struct AckNewLeaderMsg : sim::Message {
  std::uint32_t epoch = 0;
  const char* name() const override { return "zab.ackNewLeader"; }
};

struct UpToDateMsg : sim::Message {
  std::uint32_t epoch = 0;
  const char* name() const override { return "zab.upToDate"; }
};

// Observer announcing itself to the leader (non-voting learner).
struct ObserverInfoMsg : sim::Message {
  Zxid last_zxid = kNoZxid;
  const char* name() const override { return "zab.observerInfo"; }
};

// --- broadcast ---

// One quorum round may carry several contiguous entries (group commit);
// a batch of one is the unbatched protocol.
struct ProposeMsg : sim::Message {
  std::uint32_t epoch = 0;
  std::vector<LogEntry> entries;  // contiguous, ascending zxids
  std::size_t wire_size() const override {
    std::size_t n = 16;
    for (const auto& e : entries) n += 32 + e.payload.size();
    return n;
  }
  const char* name() const override { return "zab.propose"; }
};

struct AckMsg : sim::Message {
  std::uint32_t epoch = 0;
  Zxid zxid = kNoZxid;
  const char* name() const override { return "zab.ack"; }
};

struct CommitMsg : sim::Message {
  std::uint32_t epoch = 0;
  Zxid zxid = kNoZxid;
  const char* name() const override { return "zab.commit"; }
};

// Commit + payload for observers (ZooKeeper's INFORM).
struct InformMsg : sim::Message {
  std::uint32_t epoch = 0;
  LogEntry entry;
  std::size_t wire_size() const override { return 48 + entry.payload.size(); }
  const char* name() const override { return "zab.inform"; }
};

// Leader heartbeat; piggybacks the commit frontier so stragglers catch up.
struct PingMsg : sim::Message {
  std::uint32_t epoch = 0;
  Zxid commit_up_to = kNoZxid;
  const char* name() const override { return "zab.ping"; }
};

struct PingReplyMsg : sim::Message {
  std::uint32_t epoch = 0;
  const char* name() const override { return "zab.pingReply"; }
};

}  // namespace wankeeper::zab

// The replicated transaction log a Zab peer persists. Entries are opaque
// payloads stamped with zxids; the log survives crashes (it models the disk
// log) while the peer's role and protocol state do not.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"

namespace wankeeper::zab {

struct LogEntry {
  Zxid zxid = kNoZxid;
  // Shared immutable bytes: copying an entry (log append, SYNC, INFORM,
  // per-follower fan-out) shares the payload instead of duplicating it.
  common::Bytes payload;

  bool operator==(const LogEntry&) const = default;
};

class TxnLog {
 public:
  // Appends must be in strictly increasing zxid order.
  void append(LogEntry entry);

  // Batch append: skips entries at or below the current tail (a batch may
  // overlap entries already received via sync). Returns the count appended.
  std::size_t append_new(const std::vector<LogEntry>& entries);

  Zxid last_zxid() const;
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  bool contains(Zxid zxid) const;
  const LogEntry* find(Zxid zxid) const;

  // Entries with zxid strictly greater than `after`.
  std::vector<LogEntry> entries_after(Zxid after) const;
  const std::vector<LogEntry>& entries() const { return entries_; }

  // Index of the first entry with zxid strictly greater than `after`
  // (== size() if none). With at(), allows copy-free in-order scans.
  std::size_t index_after(Zxid after) const;
  const LogEntry& at(std::size_t i) const { return entries_[i]; }

  // Drop every entry with zxid strictly greater than `keep_through`
  // (Zab TRUNC when a follower has uncommitted tail from a dead epoch).
  void truncate_after(Zxid keep_through);

  // Highest zxid z in this log such that every entry up to z is also a
  // prefix of `other` — used by the leader to pick DIFF/TRUNC points.
  Zxid last_common_zxid(const TxnLog& other) const;

 private:
  std::vector<LogEntry> entries_;  // ordered by zxid
};

}  // namespace wankeeper::zab

#include "zab/peer.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "common/logging.h"

namespace wankeeper::zab {

namespace {
// Leader-side sync decision: where to truncate the learner's log. If the
// learner's last zxid exists in our log we diff after it; otherwise its tail
// diverged from a dead epoch and we resync from scratch (its committed
// prefix is a prefix of ours by Zab safety, so this is just inefficient,
// never incorrect).
Zxid sync_truncate_point(const TxnLog& leader_log, Zxid learner_last) {
  if (learner_last == kNoZxid || leader_log.contains(learner_last)) return learner_last;
  return kNoZxid;
}
}  // namespace

std::uint64_t Peer::voter_bit(NodeId n) const {
  for (std::size_t i = 0; i < voters_.size(); ++i) {
    if (voters_[i] == n) return std::uint64_t{1} << i;
  }
  return 0;  // not a voter (cannot happen: only voters receive PROPOSE)
}

const char* role_name(Role r) {
  switch (r) {
    case Role::kLooking: return "looking";
    case Role::kFollowing: return "following";
    case Role::kLeading: return "leading";
    case Role::kObserving: return "observing";
  }
  return "?";
}

Peer::Peer(rt::Runtime& rt, std::string name, StateMachine& sm, PeerOptions opts)
    : Actor(rt, std::move(name)), sm_(sm), opts_(opts) {}

void Peer::boot(std::vector<NodeId> voters, std::vector<NodeId> observers,
                bool is_observer, std::int32_t priority) {
  voters_ = std::move(voters);
  if (voters_.size() > 64) {
    throw std::invalid_argument("zab ensemble exceeds 64 voters");
  }
  observers_ = std::move(observers);
  is_observer_ = is_observer;
  priority_ = priority;
  // Stagger initial elections deterministically, highest priority first, so
  // the intended leader's candidacy is on the wire before anyone else's.
  std::size_t position = 0;
  const auto& group = is_observer_ ? observers_ : voters_;
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (group[i] == id()) position = i;
  }
  const Time delay =
      opts_.boot_stagger * static_cast<Time>(group.size() - position);
  set_timer(delay, [this]() { kickstart(); });
}

void Peer::kickstart() {
  if (role_ != Role::kLooking) return;
  if (round_ == 0) {
    start_election();
    return;
  }
  // Already drawn into an election (or courting a leader) by messages that
  // arrived before this timer: don't reset it, just arm the watchdog tick.
  set_timer(opts_.vote_interval, [this]() { looking_tick_helper(); });
}

bool Peer::is_voter(NodeId n) const {
  return std::find(voters_.begin(), voters_.end(), n) != voters_.end();
}

void Peer::send(NodeId to, sim::MessagePtr m) { rt().send(id(), to, std::move(m)); }

void Peer::reset_volatile_role_state() {
  role_ = Role::kLooking;
  leader_ = kNoNode;
  broadcasting_ = false;
  awaiting_new_epoch_ = false;
  new_epoch_ = 0;
  votes_.clear();
  follower_infos_.clear();
  epoch_acks_.clear();
  newleader_acks_.clear();
  synced_followers_.clear();
  synced_observers_.clear();
  proposal_acks_.clear();
  proposed_at_.clear();
  pending_batch_.clear();
  broadcast_frontier_ = kNoZxid;
  flush_timer_armed_ = false;
  last_contact_.clear();
  sync_pending_ = false;
}

// A SYNC is now owed to us; remember it so request_resync doesn't solicit
// an overlapping one (the flag expires with the discovery timeout in case
// the SYNC itself is lost).
void Peer::expect_sync() {
  sync_pending_ = true;
  sync_pending_since_ = now();
}

bool Peer::sync_in_flight() const {
  return sync_pending_ &&
         now() - sync_pending_since_ < opts_.discovery_timeout;
}

void Peer::on_crash() {
  // Volatile state is rebuilt on restart; the log, epochs, and delivered
  // frontier model durable storage and survive.
}

void Peer::on_restart() {
  reset_volatile_role_state();
  set_timer(opts_.boot_stagger, [this]() {
    if (role_ == Role::kLooking && !awaiting_new_epoch_) {
      start_election();
    }
  });
}

// ---------------------------------------------------------------- election

void Peer::start_election() {
  reset_volatile_role_state();
  ++round_;
  sm_.on_looking();
  WK_DEBUG(now(), name(), "entering election round " + std::to_string(round_));
  if (is_observer_) {
    // Observers don't vote; probe the voters for an established leader.
    for (NodeId v : voters_) {
      auto m = sim::make_mutable_message<ObserverInfoMsg>();
      m->last_zxid = last_logged();
      send(v, m);
    }
    expect_sync();  // a leader among them answers with SYNC
  } else {
    my_vote_ = Vote{id(), last_logged(), priority_};
    votes_[id()] = my_vote_;
    broadcast_vote();
    evaluate_votes();  // handles single-node ensembles
  }
  set_timer(opts_.vote_interval, [this]() { looking_tick_helper(); });
}

// Re-armed polling while LOOKING; split out so the initial timer above and
// subsequent ones share code.
void Peer::looking_tick_helper() {
  if (role_ != Role::kLooking) return;
  if (awaiting_new_epoch_ && now() - awaiting_since_ > opts_.discovery_timeout) {
    start_election();
    return;
  }
  if (is_observer_) {
    for (NodeId v : voters_) {
      auto m = sim::make_mutable_message<ObserverInfoMsg>();
      m->last_zxid = last_logged();
      send(v, m);
    }
    expect_sync();
  } else if (!awaiting_new_epoch_) {
    broadcast_vote();
  }
  set_timer(opts_.vote_interval, [this]() { looking_tick_helper(); });
}

void Peer::broadcast_vote() {
  for (NodeId v : voters_) {
    if (v == id()) continue;
    auto m = sim::make_mutable_message<VoteMsg>();
    m->round = round_;
    m->candidate = my_vote_.candidate;
    m->candidate_zxid = my_vote_.zxid;
    m->candidate_priority = my_vote_.priority;
    send(v, m);
  }
}

void Peer::handle_vote(NodeId from, const VoteMsg& m) {
  if (is_observer_) return;
  if (role_ == Role::kFollowing && leader_ != kNoNode) {
    auto reply = sim::make_mutable_message<CurrentLeaderMsg>();
    reply->leader = leader_;
    reply->epoch = current_epoch_;
    send(from, reply);
    return;
  }
  if (role_ == Role::kLeading) {
    if (broadcasting_) {
      auto reply = sim::make_mutable_message<CurrentLeaderMsg>();
      reply->leader = id();
      reply->epoch = current_epoch_;
      send(from, reply);
    }
    return;  // mid-discovery: let our discovery timeout sort out races
  }
  // LOOKING
  if (m.round > round_) {
    round_ = m.round;
    votes_.clear();
    my_vote_ = Vote{id(), last_logged(), priority_};
    votes_[id()] = my_vote_;
  } else if (m.round < round_) {
    auto reply = sim::make_mutable_message<VoteMsg>();
    reply->round = round_;
    reply->candidate = my_vote_.candidate;
    reply->candidate_zxid = my_vote_.zxid;
    reply->candidate_priority = my_vote_.priority;
    send(from, reply);
    return;
  }
  const Vote incoming{m.candidate, m.candidate_zxid, m.candidate_priority};
  votes_[from] = incoming;
  if (incoming.better_than(my_vote_)) {
    my_vote_ = incoming;
    votes_[id()] = my_vote_;
    broadcast_vote();
  }
  evaluate_votes();
}

void Peer::evaluate_votes() {
  if (awaiting_new_epoch_) return;
  std::size_t support = 0;
  for (const auto& [node, vote] : votes_) {
    if (vote.candidate == my_vote_.candidate) ++support;
  }
  if (support < quorum()) return;
  if (my_vote_.candidate == id()) {
    enter_discovery();
  } else {
    follow(my_vote_.candidate);
  }
}

void Peer::follow(NodeId leader) {
  leader_ = leader;
  awaiting_new_epoch_ = true;
  awaiting_since_ = now();
  auto m = sim::make_mutable_message<FollowerInfoMsg>();
  m->accepted_epoch = accepted_epoch_;
  m->last_zxid = last_logged();
  send(leader, m);
}

void Peer::handle_current_leader(const CurrentLeaderMsg& m) {
  if (role_ != Role::kLooking || awaiting_new_epoch_) return;
  if (m.leader == kNoNode) return;
  if (is_observer_) {
    auto info = sim::make_mutable_message<ObserverInfoMsg>();
    info->last_zxid = last_logged();
    leader_ = m.leader;
    send(m.leader, info);
    expect_sync();
  } else if (m.leader == id()) {
    // Stale report naming us; ignore and let voting continue.
  } else {
    follow(m.leader);
  }
}

// --------------------------------------------------------------- discovery

void Peer::enter_discovery() {
  role_ = Role::kLeading;
  broadcasting_ = false;
  leader_ = id();
  new_epoch_ = 0;
  follower_infos_.clear();
  epoch_acks_.clear();
  newleader_acks_.clear();
  synced_followers_.clear();
  synced_observers_.clear();
  proposal_acks_.clear();
  pending_batch_.clear();
  broadcast_frontier_ = kNoZxid;
  follower_infos_[id()] = last_logged();
  max_accepted_epoch_seen_ = accepted_epoch_;
  WK_DEBUG(now(), name(), "leader-elect: entering discovery");
  const std::uint64_t this_round = round_;
  set_timer(opts_.discovery_timeout, [this, this_round]() {
    if (role_ == Role::kLeading && !broadcasting_ && round_ == this_round) {
      start_election();
    }
  });
  maybe_start_epoch();
}

void Peer::maybe_start_epoch() {
  if (new_epoch_ != 0 || follower_infos_.size() < quorum()) return;
  new_epoch_ = max_accepted_epoch_seen_ + 1;
  accepted_epoch_ = new_epoch_;
  epoch_acks_.insert(id());
  for (const auto& [node, zxid] : follower_infos_) {
    if (node == id()) continue;
    auto m = sim::make_mutable_message<NewEpochMsg>();
    m->epoch = new_epoch_;
    send(node, m);
  }
  maybe_finish_discovery();
}

void Peer::handle_follower_info(NodeId from, const FollowerInfoMsg& m) {
  if (role_ != Role::kLeading) return;
  if (broadcasting_) {
    // Late joiner on an established ensemble.
    auto reply = sim::make_mutable_message<NewEpochMsg>();
    reply->epoch = current_epoch_;
    send(from, reply);
    return;
  }
  follower_infos_[from] = m.last_zxid;
  max_accepted_epoch_seen_ = std::max(max_accepted_epoch_seen_, m.accepted_epoch);
  if (new_epoch_ != 0) {
    // Discovery already under way; bring the straggler along.
    auto reply = sim::make_mutable_message<NewEpochMsg>();
    reply->epoch = new_epoch_;
    send(from, reply);
    return;
  }
  maybe_start_epoch();
}

void Peer::handle_new_epoch(NodeId from, const NewEpochMsg& m) {
  if (m.epoch < accepted_epoch_) return;
  if (role_ == Role::kLeading && broadcasting_ && m.epoch <= current_epoch_) return;
  accepted_epoch_ = m.epoch;
  leader_ = from;
  awaiting_new_epoch_ = true;
  awaiting_since_ = now();
  if (role_ != Role::kLooking) {
    // A newer epoch supersedes whatever we were doing.
    role_ = Role::kLooking;
    broadcasting_ = false;
  }
  auto reply = sim::make_mutable_message<AckEpochMsg>();
  reply->current_epoch = current_epoch_;
  reply->last_zxid = last_logged();
  send(from, reply);
  expect_sync();
}

void Peer::handle_ack_epoch(NodeId from, const AckEpochMsg& m) {
  if (role_ != Role::kLeading) return;
  if (!broadcasting_ && m.last_zxid > last_logged()) {
    // A follower has history we lack: abdicate, re-elect (it will win).
    WK_DEBUG(now(), name(), "abdicating: follower has newer history");
    start_election();
    return;
  }
  follower_infos_[from] = m.last_zxid;
  if (broadcasting_) {
    sync_learner(from, m.last_zxid, /*observer=*/false);
    return;
  }
  epoch_acks_.insert(from);
  maybe_finish_discovery();
}

void Peer::maybe_finish_discovery() {
  if (broadcasting_ || epoch_acks_.size() < quorum()) return;
  current_epoch_ = new_epoch_;
  counter_ = 0;
  sync_point_ = last_logged();
  newleader_acks_.insert(id());
  for (NodeId f : epoch_acks_) {
    if (f == id()) continue;
    sync_learner(f, follower_infos_[f], /*observer=*/false);
  }
  // Single-node ensembles establish immediately.
  if (newleader_acks_.size() >= quorum()) establish_leadership();
}

// -------------------------------------------------------------------- sync

void Peer::sync_learner(NodeId learner, Zxid learner_last, bool observer) {
  const Zxid trunc = sync_truncate_point(log_, learner_last);
  auto sync = sim::make_mutable_message<SyncMsg>();
  sync->epoch = broadcasting_ ? current_epoch_ : new_epoch_;
  sync->truncate_to = trunc;
  sync->entries = log_.entries_after(trunc);
  sync->commit_up_to = broadcasting_ ? commit_frontier_ : delivered_;
  send(learner, sync);
  auto nl = sim::make_mutable_message<NewLeaderMsg>();
  nl->epoch = sync->epoch;
  send(learner, nl);
  if (observer) {
    synced_observers_.insert(learner);
  } else {
    synced_followers_.insert(learner);
  }
  last_contact_[learner] = now();
  if (broadcasting_) {
    auto utd = sim::make_mutable_message<UpToDateMsg>();
    utd->epoch = current_epoch_;
    send(learner, utd);
    auto commit = sim::make_mutable_message<CommitMsg>();
    commit->epoch = current_epoch_;
    commit->zxid = commit_frontier_;
    send(learner, commit);
  }
}

void Peer::handle_sync(NodeId from, const SyncMsg& m) {
  if (m.epoch < accepted_epoch_) return;
  // Unsolicited SYNC (e.g. a duplicate crossing a second resync request, or
  // one delayed past a role change): applying it would truncate entries a
  // previous sync already handed us. Only the sync we asked for may run.
  if (!sync_pending_) return;
  sync_pending_ = false;
  accepted_epoch_ = m.epoch;
  leader_ = from;
  log_.truncate_after(m.truncate_to);
  log_.append_new(m.entries);
  // Recovery fault point: the sync's entries are in the log but nothing is
  // committed or acked yet — crash here models a learner dying with a
  // half-adopted DIFF.
  rt().faults().fire("zab.sync_applying", name());
  if (!up()) return;
  advance_commit_frontier(m.commit_up_to);
  deliver_committed();
  last_leader_contact_ = now();
  // Cumulative ack covering everything the sync handed us (voters only);
  // without this, entries a late joiner received via sync rather than
  // PROPOSE could never gather an ack quorum.
  if (!is_observer_ && !m.entries.empty()) {
    auto ack = sim::make_mutable_message<AckMsg>();
    ack->epoch = m.epoch;
    ack->zxid = log_.last_zxid();
    send(from, ack);
  }
}

void Peer::handle_new_leader(NodeId from, const NewLeaderMsg& m) {
  if (from != leader_ || m.epoch < accepted_epoch_) return;
  current_epoch_ = m.epoch;
  awaiting_new_epoch_ = false;
  role_ = is_observer_ ? Role::kObserving : Role::kFollowing;
  auto ack = sim::make_mutable_message<AckNewLeaderMsg>();
  ack->epoch = m.epoch;
  send(from, ack);
  last_leader_contact_ = now();
  sm_.on_following(leader_, current_epoch_);
  arm_follower_timer();
}

void Peer::handle_up_to_date(NodeId from, const UpToDateMsg& m) {
  if (from != leader_ || m.epoch != current_epoch_) return;
  last_leader_contact_ = now();
}

void Peer::handle_ack_new_leader(NodeId from, const AckNewLeaderMsg& m) {
  if (role_ != Role::kLeading || m.epoch != current_epoch_) return;
  note_contact(from);
  newleader_acks_.insert(from);
  if (!broadcasting_ && newleader_acks_.size() >= quorum()) establish_leadership();
}

void Peer::establish_leadership() {
  broadcasting_ = true;
  advance_commit_frontier(sync_point_);
  deliver_committed();
  WK_INFO(now(), name(), "established leadership, epoch " + std::to_string(current_epoch_));
  rt().obs().events.record(now(), rt().site_of(id()),
                            obs::EventKind::kLeaderElected, name(), "",
                            /*key=*/"", /*a=*/current_epoch_);
  for (NodeId f : synced_followers_) {
    auto utd = sim::make_mutable_message<UpToDateMsg>();
    utd->epoch = current_epoch_;
    send(f, utd);
    auto commit = sim::make_mutable_message<CommitMsg>();
    commit->epoch = current_epoch_;
    commit->zxid = commit_frontier_;
    send(f, commit);
  }
  sm_.on_leading(current_epoch_);
  arm_leader_timer();
}

// --------------------------------------------------------------- broadcast

Zxid Peer::propose(std::vector<std::uint8_t> payload) {
  if (!leading()) return kNoZxid;
  ++counter_;
  const Zxid zxid = make_zxid(current_epoch_, counter_);
  LogEntry entry{zxid, std::move(payload)};
  log_.append(entry);
  proposal_acks_.push_back(PendingProposal{zxid, voter_bit(id())});
  proposals_ctr_.at(rt().obs().metrics, "zab.proposals", rt().site_of(id()))
      .inc();
  proposed_at_.emplace_back(zxid, now());
  pending_batch_.push_back(std::move(entry));
  // Natural batching: ship at once when the pipe is idle (a lone request
  // pays zero extra latency); while a round is in flight, accumulate.
  const bool round_in_flight = broadcast_frontier_ > commit_frontier_;
  if (opts_.max_batch <= 1 || pending_batch_.size() >= opts_.max_batch ||
      !round_in_flight) {
    flush_batch();
  } else {
    arm_flush_timer();
  }
  maybe_commit();
  return zxid;
}

// Broadcast every pending entry as one multi-entry PROPOSE.
void Peer::flush_batch() {
  if (pending_batch_.empty() || !leading()) return;
  batch_size_hist_
      .at(rt().obs().metrics, "zab.batch_size", rt().site_of(id()))
      .record(static_cast<Time>(pending_batch_.size()));
  auto m = sim::make_mutable_message<ProposeMsg>();
  m->epoch = current_epoch_;
  m->entries = std::move(pending_batch_);
  pending_batch_.clear();
  broadcast_frontier_ = std::max(broadcast_frontier_, m->entries.back().zxid);
  for (NodeId f : synced_followers_) send(f, m);
}

// Backstop so the last partial batch cannot stall when the in-flight round
// dies (e.g. its acks were lost and retransmission is up to re-election).
void Peer::arm_flush_timer() {
  if (flush_timer_armed_) return;
  flush_timer_armed_ = true;
  const std::uint32_t epoch = current_epoch_;
  set_timer(opts_.max_delay, [this, epoch]() {
    flush_timer_armed_ = false;
    if (leading() && current_epoch_ == epoch) flush_batch();
  });
}

// A learner may only append contiguously: within an epoch counters
// increment by one; a new epoch starts at counter 1. Anything else means a
// message was lost on a supposedly-FIFO channel (drops under partitions),
// and acking past the hole would break the cumulative-ack invariant.
bool Peer::extends_log(Zxid next) const {
  const Zxid last = log_.last_zxid();
  if (last == kNoZxid) return zxid_counter(next) == 1;
  if (zxid_epoch(next) == zxid_epoch(last)) {
    return zxid_counter(next) == zxid_counter(last) + 1;
  }
  return zxid_epoch(next) > zxid_epoch(last) && zxid_counter(next) == 1;
}

// Ask the leader to re-sync us (it responds with NEWEPOCH/SYNC as for a
// late joiner). Throttled: one request per 200ms regardless of how many
// out-of-order messages arrive meanwhile.
void Peer::request_resync() {
  if (leader_ == kNoNode) return;
  // Re-entrancy guard: while a solicited SYNC is still in flight, asking
  // again would interleave two DIFF applications (the second truncates what
  // the first delivered). The in-flight marker expires with the discovery
  // timeout so a lost SYNC cannot suppress recovery forever.
  if (sync_in_flight()) return;
  if (last_resync_request_ >= 0 &&
      now() - last_resync_request_ < 200 * kMillisecond) {
    return;
  }
  last_resync_request_ = now();
  WK_DEBUG(now(), name(), "log gap detected; requesting re-sync");
  if (is_observer_) {
    auto m = sim::make_mutable_message<ObserverInfoMsg>();
    m->last_zxid = last_logged();
    send(leader_, m);
    expect_sync();
  } else {
    auto m = sim::make_mutable_message<FollowerInfoMsg>();
    m->accepted_epoch = accepted_epoch_;
    m->last_zxid = last_logged();
    send(leader_, m);
  }
  // Recovery fault point: the resync request is on the wire; crash here
  // models a learner dying between asking for and receiving its DIFF.
  rt().faults().fire("zab.resync_request", name());
}

void Peer::handle_propose(NodeId from, const ProposeMsg& m) {
  if (!from_current_leader(from, m.epoch)) return;
  last_leader_contact_ = now();
  if (m.entries.empty()) return;
  for (const auto& entry : m.entries) {
    if (entry.zxid <= log_.last_zxid()) continue;  // duplicate (e.g. via sync)
    if (!extends_log(entry.zxid)) {
      request_resync();
      return;  // do NOT ack past the hole
    }
    log_.append(entry);
  }
  auto ack = sim::make_mutable_message<AckMsg>();
  ack->epoch = m.epoch;
  // Cumulative over what we actually hold, capped at this batch's tail
  // (acking beyond it would claim entries from a later lost PROPOSE).
  ack->zxid = std::min(log_.last_zxid(), m.entries.back().zxid);
  send(from, ack);
}

void Peer::handle_ack(NodeId from, const AckMsg& m) {
  if (role_ != Role::kLeading || m.epoch != current_epoch_) return;
  note_contact(from);
  // Acks are cumulative: an ack for z covers every outstanding z' <= z
  // (the deque is in zxid order, so stop at the first entry past z).
  const std::uint64_t bit = voter_bit(from);
  for (PendingProposal& p : proposal_acks_) {
    if (p.zxid > m.zxid) break;
    p.acks |= bit;
  }
  maybe_commit();
}

void Peer::maybe_commit() {
  bool committed_any = false;
  const Zxid old_frontier = commit_frontier_;
  while (!proposal_acks_.empty() &&
         static_cast<std::size_t>(std::popcount(proposal_acks_.front().acks)) >=
             quorum()) {
    commit_frontier_ = std::max(commit_frontier_, proposal_acks_.front().zxid);
    proposal_acks_.pop_front();
    committed_any = true;
  }
  if (!committed_any) return;
  deliver_committed();
  for (NodeId f : synced_followers_) {
    auto commit = sim::make_mutable_message<CommitMsg>();
    commit->epoch = current_epoch_;
    commit->zxid = commit_frontier_;
    send(f, commit);
  }
  // Observers learn committed entries (with payload) via INFORM.
  for (std::size_t i = log_.index_after(old_frontier); i < log_.size(); ++i) {
    const LogEntry& entry = log_.at(i);
    if (entry.zxid > commit_frontier_) break;
    for (NodeId o : synced_observers_) {
      auto inform = sim::make_mutable_message<InformMsg>();
      inform->epoch = current_epoch_;
      inform->entry = entry;
      send(o, inform);
    }
  }
  // Group commit: the quorum round just completed; ship the next batch.
  if (!pending_batch_.empty() && broadcast_frontier_ <= commit_frontier_) {
    flush_batch();
  }
}

void Peer::handle_commit(NodeId from, const CommitMsg& m) {
  if (!from_current_leader(from, m.epoch)) return;
  last_leader_contact_ = now();
  advance_commit_frontier(m.zxid);
  deliver_committed();
  // A commit frontier beyond our log means we lost a proposal at the tail
  // (no later proposal will expose the gap): fetch the missing entries.
  if (commit_frontier_ > log_.last_zxid()) request_resync();
}

void Peer::handle_inform(NodeId from, const InformMsg& m) {
  if (!from_current_leader(from, m.epoch)) return;
  last_leader_contact_ = now();
  if (m.entry.zxid > log_.last_zxid()) {
    if (!extends_log(m.entry.zxid)) {
      request_resync();
      return;
    }
    log_.append(m.entry);
  }
  advance_commit_frontier(m.entry.zxid);
  deliver_committed();
}

void Peer::handle_observer_info(NodeId from, const ObserverInfoMsg& m) {
  if (role_ == Role::kLeading && broadcasting_) {
    sync_learner(from, m.last_zxid, /*observer=*/true);
  } else if (role_ == Role::kFollowing && leader_ != kNoNode) {
    auto reply = sim::make_mutable_message<CurrentLeaderMsg>();
    reply->leader = leader_;
    reply->epoch = current_epoch_;
    send(from, reply);
  }
}

// ---------------------------------------------------------------- liveness

void Peer::handle_ping(NodeId from, const PingMsg& m) {
  if (!from_current_leader(from, m.epoch)) return;
  last_leader_contact_ = now();
  advance_commit_frontier(m.commit_up_to);
  deliver_committed();
  if (commit_frontier_ > log_.last_zxid()) request_resync();
  auto reply = sim::make_mutable_message<PingReplyMsg>();
  reply->epoch = m.epoch;
  send(from, reply);
}

void Peer::arm_leader_timer() {
  set_timer(opts_.ping_interval, [this]() { leader_tick(); });
}

void Peer::leader_tick() {
  if (role_ != Role::kLeading || !broadcasting_) return;
  for (NodeId f : synced_followers_) {
    auto ping = sim::make_mutable_message<PingMsg>();
    ping->epoch = current_epoch_;
    ping->commit_up_to = commit_frontier_;
    send(f, ping);
  }
  for (NodeId o : synced_observers_) {
    auto ping = sim::make_mutable_message<PingMsg>();
    ping->epoch = current_epoch_;
    ping->commit_up_to = commit_frontier_;
    send(o, ping);
  }
  // Still in contact with a quorum?
  std::size_t live = 1;  // self
  for (NodeId v : voters_) {
    if (v == id()) continue;
    const auto it = last_contact_.find(v);
    if (it != last_contact_.end() && now() - it->second <= opts_.leader_quorum_timeout) {
      ++live;
    }
  }
  if (live < quorum()) {
    WK_INFO(now(), name(), "lost quorum contact; stepping down");
    rt().obs().events.record(now(), rt().site_of(id()),
                              obs::EventKind::kLeaderLost, name(),
                              "lost quorum contact", /*key=*/"",
                              /*a=*/current_epoch_);
    start_election();
    return;
  }
  arm_leader_timer();
}

void Peer::arm_follower_timer() {
  set_timer(opts_.ping_interval, [this]() { follower_tick(); });
}

void Peer::follower_tick() {
  if (role_ != Role::kFollowing && role_ != Role::kObserving) return;
  if (now() - last_leader_contact_ > opts_.follower_timeout) {
    WK_INFO(now(), name(), "leader silent; re-electing");
    start_election();
    return;
  }
  arm_follower_timer();
}

void Peer::note_contact(NodeId from) { last_contact_[from] = now(); }

// ----------------------------------------------------------------- helpers

bool Peer::from_current_leader(NodeId from, std::uint32_t epoch) const {
  return from == leader_ && epoch == current_epoch_ &&
         (role_ == Role::kFollowing || role_ == Role::kObserving);
}

void Peer::advance_commit_frontier(Zxid z) {
  commit_frontier_ = std::max(commit_frontier_, z);
}

void Peer::deliver_committed() {
  for (std::size_t i = log_.index_after(delivered_); i < log_.size(); ++i) {
    const LogEntry& entry = log_.at(i);
    if (entry.zxid > commit_frontier_) break;
    delivered_ = entry.zxid;
    while (!proposed_at_.empty() && proposed_at_.front().first < entry.zxid) {
      proposed_at_.pop_front();  // entry adopted from sync, never timed here
    }
    if (!proposed_at_.empty() && proposed_at_.front().first == entry.zxid) {
      commit_latency_hist_
          .at(rt().obs().metrics, "zab.commit_latency_us",
              rt().site_of(id()))
          .record(now() - proposed_at_.front().second);
      proposed_at_.pop_front();
    }
    sm_.on_commit(entry);
  }
}

void Peer::on_message(NodeId from, const sim::MessagePtr& msg) {
  // Steady-state traffic first (broadcast/ack/commit/ping dwarf election and
  // sync messages); the casts are mutually exclusive so order is free.
  if (auto* m = sim::msg_cast<ProposeMsg>(msg.get())) return handle_propose(from, *m);
  if (auto* m = sim::msg_cast<AckMsg>(msg.get())) return handle_ack(from, *m);
  if (auto* m = sim::msg_cast<CommitMsg>(msg.get())) return handle_commit(from, *m);
  if (auto* m = sim::msg_cast<InformMsg>(msg.get())) return handle_inform(from, *m);
  if (auto* m = sim::msg_cast<PingMsg>(msg.get())) return handle_ping(from, *m);
  if (sim::msg_cast<PingReplyMsg>(msg.get()) != nullptr) return note_contact(from);
  if (auto* m = sim::msg_cast<VoteMsg>(msg.get())) return handle_vote(from, *m);
  if (auto* m = sim::msg_cast<CurrentLeaderMsg>(msg.get())) return handle_current_leader(*m);
  if (auto* m = sim::msg_cast<FollowerInfoMsg>(msg.get())) return handle_follower_info(from, *m);
  if (auto* m = sim::msg_cast<NewEpochMsg>(msg.get())) return handle_new_epoch(from, *m);
  if (auto* m = sim::msg_cast<AckEpochMsg>(msg.get())) return handle_ack_epoch(from, *m);
  if (auto* m = sim::msg_cast<SyncMsg>(msg.get())) return handle_sync(from, *m);
  if (auto* m = sim::msg_cast<NewLeaderMsg>(msg.get())) return handle_new_leader(from, *m);
  if (auto* m = sim::msg_cast<AckNewLeaderMsg>(msg.get())) return handle_ack_new_leader(from, *m);
  if (auto* m = sim::msg_cast<UpToDateMsg>(msg.get())) return handle_up_to_date(from, *m);
  if (auto* m = sim::msg_cast<ObserverInfoMsg>(msg.get())) return handle_observer_info(from, *m);
}

}  // namespace wankeeper::zab

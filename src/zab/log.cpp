#include "zab/log.h"

#include <algorithm>
#include <stdexcept>

namespace wankeeper::zab {

void TxnLog::append(LogEntry entry) {
  if (!entries_.empty() && entry.zxid <= entries_.back().zxid) {
    throw std::logic_error("TxnLog::append out of order");
  }
  entries_.push_back(std::move(entry));
}

std::size_t TxnLog::append_new(const std::vector<LogEntry>& entries) {
  std::size_t appended = 0;
  for (const auto& e : entries) {
    if (e.zxid <= last_zxid()) continue;
    entries_.push_back(e);
    ++appended;
  }
  return appended;
}

Zxid TxnLog::last_zxid() const {
  return entries_.empty() ? kNoZxid : entries_.back().zxid;
}

bool TxnLog::contains(Zxid zxid) const { return find(zxid) != nullptr; }

const LogEntry* TxnLog::find(Zxid zxid) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), zxid,
      [](const LogEntry& e, Zxid z) { return e.zxid < z; });
  if (it == entries_.end() || it->zxid != zxid) return nullptr;
  return &*it;
}

std::size_t TxnLog::index_after(Zxid after) const {
  const auto it = std::upper_bound(
      entries_.begin(), entries_.end(), after,
      [](Zxid z, const LogEntry& e) { return z < e.zxid; });
  return static_cast<std::size_t>(it - entries_.begin());
}

std::vector<LogEntry> TxnLog::entries_after(Zxid after) const {
  const auto it = std::upper_bound(
      entries_.begin(), entries_.end(), after,
      [](Zxid z, const LogEntry& e) { return z < e.zxid; });
  return {it, entries_.end()};
}

void TxnLog::truncate_after(Zxid keep_through) {
  const auto it = std::upper_bound(
      entries_.begin(), entries_.end(), keep_through,
      [](Zxid z, const LogEntry& e) { return z < e.zxid; });
  entries_.erase(it, entries_.end());
}

Zxid TxnLog::last_common_zxid(const TxnLog& other) const {
  // zxids are globally unique per entry (epoch+counter), and both logs are
  // prefixes of some total order up to divergence, so the last common zxid
  // is the highest zxid present in both with identical history before it.
  Zxid common = kNoZxid;
  std::size_t i = 0;
  const auto& a = entries_;
  const auto& b = other.entries_;
  while (i < a.size() && i < b.size() && a[i].zxid == b[i].zxid) {
    common = a[i].zxid;
    ++i;
  }
  return common;
}

}  // namespace wankeeper::zab

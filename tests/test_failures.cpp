// Failure-injection property tests: random crash and partition schedules
// over a loaded WanKeeper deployment must never violate token safety, and
// after healing the system must recover liveness and converge. The crash
// sweep runs with batching both off and on: a leader crash mid-batch or a
// dropped coalesced frame must not weaken any invariant.
#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/failure.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "wankeeper/deployment.h"

namespace wankeeper {
namespace {

constexpr SiteId kVA = 0;
constexpr SiteId kCA = 1;
constexpr SiteId kFRA = 2;

struct LoadedDeployment {
  sim::Simulator sim;
  sim::Network net;
  wk::TokenAuditor audit;
  wk::Deployment deploy;
  std::vector<std::unique_ptr<zk::Client>> clients;
  std::vector<std::uint64_t> completed;
  bool stop = false;

  explicit LoadedDeployment(std::uint64_t seed, wk::DeploymentConfig cfg = {})
      : sim(seed), net(sim, sim::LatencyModel::paper_wan()),
        deploy(sim, net, cfg, &audit) {}

  void start_load() {
    auto setup = deploy.make_client("setup", kVA, 50);
    sim.run_for(500 * kMillisecond);
    int created = 0;
    for (int k = 0; k < 10; ++k) {
      setup->create("/k" + std::to_string(k), "0", false, false,
                    [&](const zk::ClientResult&) { ++created; });
    }
    sim.run_for(5 * kSecond);

    const SiteId sites[3] = {kVA, kCA, kFRA};
    completed.assign(3, 0);
    for (int i = 0; i < 3; ++i) {
      clients.push_back(
          deploy.make_client("c" + std::to_string(i), sites[i], 1000 + i));
    }
    sim.run_for(1 * kSecond);
    for (int i = 0; i < 3; ++i) issue(i);
  }

  void issue(int i) {
    if (stop) return;
    auto& rng = sim.rng();
    const std::string path = "/k" + std::to_string(rng.uniform(10));
    clients[static_cast<std::size_t>(i)]->set_data(
        path, "v", -1, [this, i](const zk::ClientResult& r) {
          if (r.ok()) ++completed[static_cast<std::size_t>(i)];
          if (r.rc == store::Rc::kSessionExpired) {
            // The WAN heartbeater expired us while our site was cut off;
            // do what a real client does and start a fresh session.
            clients[static_cast<std::size_t>(i)]->reconnect();
          }
          issue(i);  // retry/continue regardless of rc
        });
  }
};

// (seed, batching on/off)
using FailureParam = std::tuple<std::uint64_t, bool>;

std::string failure_param_name(
    const ::testing::TestParamInfo<FailureParam>& info) {
  return "seed" + std::to_string(std::get<0>(info.param)) +
         (std::get<1>(info.param) ? "_batched" : "_unbatched");
}

class FailureSweep : public ::testing::TestWithParam<FailureParam> {};

// Extra seeds for the slow tier (ctest -C slow -L slow / WK_SLOW_TESTS=1).
class FailureSweepSlow : public FailureSweep {
 protected:
  void SetUp() override {
    if (std::getenv("WK_SLOW_TESTS") == nullptr) {
      GTEST_SKIP() << "set WK_SLOW_TESTS=1 (or run ctest -C slow -L slow)";
    }
  }
};

void run_crash_sweep(std::uint64_t seed, bool batching) {
  wk::DeploymentConfig cfg;
  if (batching) cfg.enable_batching();
  LoadedDeployment d(seed, cfg);
  d.start_load();

  // Random single-node crashes with restart, over a minute of load.
  Rng schedule(seed * 97);
  for (int i = 0; i < 4; ++i) {
    const Time when = d.sim.now() + 5 * kSecond + static_cast<Time>(
                          schedule.uniform(10 * kSecond));
    const SiteId site = static_cast<SiteId>(schedule.uniform(3));
    const std::size_t node = schedule.uniform(3);
    sim::FailureInjector inject(d.net);
    inject.crash_at(when, d.deploy.site_ensemble(site).server_id(node),
                    5 * kSecond);
    // The co-located zab peer shares the fate of its server.
    d.sim.at(when, [&d, site, node]() {
      d.deploy.site_ensemble(site).peer(node).crash();
    });
    d.sim.at(when + 5 * kSecond, [&d, site, node]() {
      d.deploy.site_ensemble(site).peer(node).restart();
    });
    d.sim.run_for(12 * kSecond);
  }
  d.stop = true;
  d.sim.run_for(20 * kSecond);  // quiesce

  EXPECT_TRUE(d.audit.clean())
      << (d.audit.violations().empty() ? "" : d.audit.violations().front());
  EXPECT_TRUE(d.deploy.converged());
  std::uint64_t total = d.completed[0] + d.completed[1] + d.completed[2];
  EXPECT_GT(total, 100u) << "the system made little progress under failures";
}

TEST_P(FailureSweep, RandomCrashesNeverViolateTokenSafety) {
  run_crash_sweep(std::get<0>(GetParam()), std::get<1>(GetParam()));
}

TEST_P(FailureSweepSlow, RandomCrashesNeverViolateTokenSafety) {
  run_crash_sweep(std::get<0>(GetParam()), std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureSweep,
                         ::testing::Combine(::testing::Values(3, 17, 23),
                                            ::testing::Bool()),
                         failure_param_name);

// Seeds 7, 11, 41 and 151 are deliberately absent: their crash schedules
// expose a pre-existing convergence gap (one site ends one record version
// behind after the quiesce, with batching both off and on — reproduced on
// the unmodified seed code, so not introduced by group commit/coalescing).
// Tracked as an open item in ROADMAP.md; re-add them once fixed.
INSTANTIATE_TEST_SUITE_P(WideSeeds, FailureSweepSlow,
                         ::testing::Combine(::testing::Values(19, 37, 53, 61,
                                                              71, 101, 131,
                                                              181),
                                            ::testing::Bool()),
                         failure_param_name);

TEST(FailuresBatched, MessageLossHandledByFrameRetransmission) {
  // 1% loss with coalescing on: dropped frames carry several protocol
  // messages each, so whole-frame retransmission and exactly-once delivery
  // are both load-bearing here.
  wk::DeploymentConfig cfg;
  cfg.enable_batching();
  LoadedDeployment d(31, cfg);
  d.net.set_drop_rate(0.01);
  d.start_load();
  d.sim.run_for(60 * kSecond);
  d.net.set_drop_rate(0.0);
  d.sim.run_for(10 * kSecond);
  d.stop = true;
  d.sim.run_for(20 * kSecond);
  EXPECT_TRUE(d.audit.clean())
      << (d.audit.violations().empty() ? "" : d.audit.violations().front());
  EXPECT_TRUE(d.deploy.converged());
  const std::uint64_t total = d.completed[0] + d.completed[1] + d.completed[2];
  EXPECT_GT(total, 30u);
}

TEST(Failures, PartitionedNonL2SiteStallsThenRecoversAndConverges) {
  // With the default (long) token lease, a transient partition is pure CP:
  // records whose tokens sit at the cut-off site stay unavailable
  // elsewhere; everything else keeps committing. On heal, the reliable WAN
  // streams resume, parked requests drain, and all replicas converge.
  wk::DeploymentConfig cfg;
  cfg.wan.lease_valid = 3 * kSecond;
  cfg.wan.enable_l2_failover = false;
  LoadedDeployment d(13, cfg);
  d.start_load();
  d.sim.run_for(10 * kSecond);  // tokens migrate under load

  const std::uint64_t fra_before = d.completed[2];
  const std::uint64_t ca_before = d.completed[1];
  d.net.isolate_site(kFRA, true);
  d.sim.run_for(20 * kSecond);
  EXPECT_GT(d.completed[1], ca_before) << "California should make progress";

  // Heal: Frankfurt resyncs and resumes; the load keeps running so every
  // record receives fresh global writes.
  d.net.isolate_site(kFRA, false);
  d.sim.run_for(30 * kSecond);
  EXPECT_GT(d.completed[2], fra_before) << "Frankfurt should resume after heal";
  d.stop = true;
  d.sim.run_for(20 * kSecond);
  EXPECT_TRUE(d.audit.clean())
      << (d.audit.violations().empty() ? "" : d.audit.violations().front());
  EXPECT_TRUE(d.deploy.converged());
}

TEST(Failures, L2SiteFailoverUnderLoadKeepsSafety) {
  wk::DeploymentConfig cfg;
  cfg.wan.l2_failover_timeout = 3 * kSecond;
  cfg.wan.lease_valid = 2 * kSecond;
  cfg.wan.token_lease = 5 * kSecond;
  LoadedDeployment d(29, cfg);
  d.start_load();
  d.sim.run_for(8 * kSecond);

  // Virginia (the L2 site) dies under load; California must take over.
  d.deploy.crash_site(kVA);
  d.sim.run_for(20 * kSecond);
  wk::Broker* l2 = d.deploy.l2_broker();
  ASSERT_NE(l2, nullptr);
  EXPECT_EQ(l2->site(), kCA);

  const std::uint64_t ca_before = d.completed[1];
  const std::uint64_t fra_before = d.completed[2];
  d.sim.run_for(20 * kSecond);
  EXPECT_GT(d.completed[1], ca_before);
  EXPECT_GT(d.completed[2], fra_before);
  EXPECT_TRUE(d.audit.clean())
      << (d.audit.violations().empty() ? "" : d.audit.violations().front());
  d.stop = true;
  d.sim.run_for(10 * kSecond);
}

TEST(Failures, MessageLossHandledByRetransmission) {
  wk::DeploymentConfig cfg;
  LoadedDeployment d(31, cfg);
  d.net.set_drop_rate(0.01);  // 1% of every message, LAN and WAN alike
  d.start_load();
  d.sim.run_for(60 * kSecond);
  d.net.set_drop_rate(0.0);
  d.sim.run_for(10 * kSecond);  // lossless tail so every stream drains
  d.stop = true;
  d.sim.run_for(20 * kSecond);
  EXPECT_TRUE(d.audit.clean())
      << (d.audit.violations().empty() ? "" : d.audit.violations().front());
  EXPECT_TRUE(d.deploy.converged());
  const std::uint64_t total = d.completed[0] + d.completed[1] + d.completed[2];
  EXPECT_GT(total, 30u);
}


}  // namespace
}  // namespace wankeeper

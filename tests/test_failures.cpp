// Failure-injection property tests: random crash and partition schedules
// over a loaded WanKeeper deployment must never violate token safety, and
// after healing the system must recover liveness and converge. The crash
// sweep runs with batching both off and on: a leader crash mid-batch or a
// dropped coalesced frame must not weaken any invariant.
//
// The loaded-deployment + crash-schedule harness lives in
// src/wankeeper/sweep_harness.h, shared with tests/test_recovery.cpp and
// the CI seed hunter (tools/seed_hunt) so a failing seed reproduces
// identically in all three.
#include <gtest/gtest.h>

#include <cstdlib>

#include "wankeeper/sweep_harness.h"

namespace wankeeper {
namespace {

constexpr SiteId kCA = 1;
constexpr SiteId kFRA = 2;

using wk::LoadedDeployment;

// (seed, batching on/off)
using FailureParam = std::tuple<std::uint64_t, bool>;

std::string failure_param_name(
    const ::testing::TestParamInfo<FailureParam>& info) {
  return "seed" + std::to_string(std::get<0>(info.param)) +
         (std::get<1>(info.param) ? "_batched" : "_unbatched");
}

class FailureSweep : public ::testing::TestWithParam<FailureParam> {};

// Extra seeds for the slow tier (ctest -C slow -L slow / WK_SLOW_TESTS=1).
class FailureSweepSlow : public FailureSweep {
 protected:
  void SetUp() override {
    if (std::getenv("WK_SLOW_TESTS") == nullptr) {
      GTEST_SKIP() << "set WK_SLOW_TESTS=1 (or run ctest -C slow -L slow)";
    }
  }
};

void expect_sweep_clean(std::uint64_t seed, bool batching) {
  const wk::SweepResult r = wk::run_crash_sweep(seed, batching);
  EXPECT_TRUE(r.audit_clean) << r.first_violation;
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.completed_total, 100u)
      << "the system made little progress under failures";
}

TEST_P(FailureSweep, RandomCrashesNeverViolateTokenSafety) {
  expect_sweep_clean(std::get<0>(GetParam()), std::get<1>(GetParam()));
}

TEST_P(FailureSweepSlow, RandomCrashesNeverViolateTokenSafety) {
  expect_sweep_clean(std::get<0>(GetParam()), std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureSweep,
                         ::testing::Combine(::testing::Values(3, 17, 23),
                                            ::testing::Bool()),
                         failure_param_name);

// Seeds 7, 11, 41, 101 and 151 once exposed the resync convergence gap
// (out-of-order refills regressing record versions, duplicate gseq stamping
// after hub leader re-election, wedged WAN streams after receiver-side
// re-election); they are enforced here so none of those regress. See
// DESIGN.md §crash-recovery resync.
INSTANTIATE_TEST_SUITE_P(WideSeeds, FailureSweepSlow,
                         ::testing::Combine(::testing::Values(7, 11, 19, 37,
                                                              41, 53, 61, 71,
                                                              101, 131, 151,
                                                              181),
                                            ::testing::Bool()),
                         failure_param_name);

TEST(FailuresBatched, MessageLossHandledByFrameRetransmission) {
  // 1% loss with coalescing on: dropped frames carry several protocol
  // messages each, so whole-frame retransmission and exactly-once delivery
  // are both load-bearing here.
  wk::DeploymentConfig cfg;
  cfg.enable_batching();
  LoadedDeployment d(31, cfg);
  d.net.set_drop_rate(0.01);
  d.start_load();
  d.sim.run_for(60 * kSecond);
  d.net.set_drop_rate(0.0);
  d.sim.run_for(10 * kSecond);
  d.stop = true;
  d.sim.run_for(20 * kSecond);
  EXPECT_TRUE(d.audit.clean())
      << (d.audit.violations().empty() ? "" : d.audit.violations().front());
  EXPECT_TRUE(d.deploy.converged());
  const std::uint64_t total = d.completed[0] + d.completed[1] + d.completed[2];
  EXPECT_GT(total, 30u);
}

TEST(Failures, PartitionedNonL2SiteStallsThenRecoversAndConverges) {
  // With the default (long) token lease, a transient partition is pure CP:
  // records whose tokens sit at the cut-off site stay unavailable
  // elsewhere; everything else keeps committing. On heal, the reliable WAN
  // streams resume, parked requests drain, and all replicas converge.
  wk::DeploymentConfig cfg;
  cfg.wan.lease_valid = 3 * kSecond;
  cfg.wan.enable_l2_failover = false;
  LoadedDeployment d(13, cfg);
  d.start_load();
  d.sim.run_for(10 * kSecond);  // tokens migrate under load

  const std::uint64_t fra_before = d.completed[2];
  const std::uint64_t ca_before = d.completed[1];
  d.net.isolate_site(kFRA, true);
  d.sim.run_for(20 * kSecond);
  EXPECT_GT(d.completed[1], ca_before) << "California should make progress";

  // Heal: Frankfurt resyncs and resumes; the load keeps running so every
  // record receives fresh global writes.
  d.net.isolate_site(kFRA, false);
  d.sim.run_for(30 * kSecond);
  EXPECT_GT(d.completed[2], fra_before) << "Frankfurt should resume after heal";
  d.stop = true;
  d.sim.run_for(20 * kSecond);
  EXPECT_TRUE(d.audit.clean())
      << (d.audit.violations().empty() ? "" : d.audit.violations().front());
  EXPECT_TRUE(d.deploy.converged());
}

TEST(Failures, L2SiteFailoverUnderLoadKeepsSafety) {
  wk::DeploymentConfig cfg;
  cfg.wan.l2_failover_timeout = 3 * kSecond;
  cfg.wan.lease_valid = 2 * kSecond;
  cfg.wan.token_lease = 5 * kSecond;
  LoadedDeployment d(29, cfg);
  d.start_load();
  d.sim.run_for(8 * kSecond);

  // Virginia (the L2 site) dies under load; California must take over.
  d.deploy.crash_site(0);
  d.sim.run_for(20 * kSecond);
  wk::Broker* l2 = d.deploy.l2_broker();
  ASSERT_NE(l2, nullptr);
  EXPECT_EQ(l2->site(), kCA);

  const std::uint64_t ca_before = d.completed[1];
  const std::uint64_t fra_before = d.completed[2];
  d.sim.run_for(20 * kSecond);
  EXPECT_GT(d.completed[1], ca_before);
  EXPECT_GT(d.completed[2], fra_before);
  EXPECT_TRUE(d.audit.clean())
      << (d.audit.violations().empty() ? "" : d.audit.violations().front());
  d.stop = true;
  d.sim.run_for(10 * kSecond);
}

TEST(Failures, MessageLossHandledByRetransmission) {
  wk::DeploymentConfig cfg;
  LoadedDeployment d(31, cfg);
  d.net.set_drop_rate(0.01);  // 1% of every message, LAN and WAN alike
  d.start_load();
  d.sim.run_for(60 * kSecond);
  d.net.set_drop_rate(0.0);
  d.sim.run_for(10 * kSecond);  // lossless tail so every stream drains
  d.stop = true;
  d.sim.run_for(20 * kSecond);
  EXPECT_TRUE(d.audit.clean())
      << (d.audit.violations().empty() ? "" : d.audit.violations().front());
  EXPECT_TRUE(d.deploy.converged());
  const std::uint64_t total = d.completed[0] + d.completed[1] + d.completed[2];
  EXPECT_GT(total, 30u);
}


}  // namespace
}  // namespace wankeeper

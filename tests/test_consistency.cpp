// Property tests for WanKeeper's consistency guarantees (paper §II-D):
//   - token mutual exclusion (audited at apply time on every replica),
//   - per-object linearizability: one gapless version chain per record,
//   - per-client FIFO order (read-your-writes, even across WAN commits),
//   - causal consistency across objects and sites (hub ordering),
//   - eventual convergence of all replicas at all sites.
// Seeded sweeps run the same random workload under several seeds, and the
// whole matrix again with group commit + WAN coalescing enabled: batching
// must be invisible to every consistency property.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>

#include "sim/network.h"
#include "sim/simulator.h"
#include "wankeeper/deployment.h"

namespace wankeeper {
namespace {

constexpr SiteId kVA = 0;
constexpr SiteId kCA = 1;
constexpr SiteId kFRA = 2;

// (seed, batching on/off)
using SweepParam = std::tuple<std::uint64_t, bool>;

std::string sweep_param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return "seed" + std::to_string(std::get<0>(info.param)) +
         (std::get<1>(info.param) ? "_batched" : "_unbatched");
}

class ConsistencySweep : public ::testing::TestWithParam<SweepParam> {};

// Extra seeds for the slow tier (ctest -C slow -L slow / WK_SLOW_TESTS=1).
class ConsistencySweepSlow : public ConsistencySweep {
 protected:
  void SetUp() override {
    if (std::getenv("WK_SLOW_TESTS") == nullptr) {
      GTEST_SKIP() << "set WK_SLOW_TESTS=1 (or run ctest -C slow -L slow)";
    }
  }
};

void run_contended_sweep(std::uint64_t seed, bool batching) {
  sim::Simulator sim(seed);
  sim::Network net(sim, sim::LatencyModel::paper_wan());
  wk::TokenAuditor audit;
  wk::DeploymentConfig cfg;
  if (batching) cfg.enable_batching();
  wk::Deployment deploy(sim, net, cfg, &audit);
  ASSERT_TRUE(deploy.wait_ready());

  // Shared key space: every client hits every key, maximizing migration
  // and recall traffic.
  constexpr int kKeys = 25;
  constexpr int kOpsPerClient = 150;
  auto setup = deploy.make_client("setup", kVA, 50);
  sim.run_for(500 * kMillisecond);
  int created = 0;
  for (int k = 0; k < kKeys; ++k) {
    setup->create("/k" + std::to_string(k), "0", false, false,
                  [&](const zk::ClientResult& r) {
                    ASSERT_TRUE(r.ok());
                    ++created;
                  });
  }
  const Time guard0 = sim.now() + 120 * kSecond;
  while (created < kKeys && sim.now() < guard0) sim.run_for(100 * kMillisecond);
  ASSERT_EQ(created, kKeys);

  struct ClientState {
    std::unique_ptr<zk::Client> client;
    Rng rng{0};
    int remaining = kOpsPerClient;
    bool done = false;
    // All versions this client's successful setDatas produced, per path.
    std::map<std::string, std::vector<std::int32_t>> versions;
  };
  std::vector<ClientState> clients(3);
  const SiteId sites[3] = {kVA, kCA, kFRA};
  for (int i = 0; i < 3; ++i) {
    clients[i].client = deploy.make_client("c" + std::to_string(i), sites[i],
                                           1000 + i);
    clients[i].rng = Rng(seed * 31 + static_cast<std::uint64_t>(i));
  }
  sim.run_for(1 * kSecond);

  std::function<void(int)> issue = [&](int i) {
    auto& st = clients[i];
    if (st.remaining-- <= 0) {
      st.done = true;
      return;
    }
    const std::string path =
        "/k" + std::to_string(st.rng.uniform(kKeys));
    if (st.rng.chance(0.7)) {
      st.client->set_data(path, "v", -1, [&, i, path](const zk::ClientResult& r) {
        if (r.ok()) clients[i].versions[path].push_back(r.stat.version);
        issue(i);
      });
    } else {
      st.client->get_data(path, false,
                          [&, i](const zk::ClientResult&) { issue(i); });
    }
  };
  for (int i = 0; i < 3; ++i) issue(i);

  const Time guard = sim.now() + 30 * 60 * kSecond;
  while (sim.now() < guard) {
    if (clients[0].done && clients[1].done && clients[2].done) break;
    sim.run_for(500 * kMillisecond);
  }
  ASSERT_TRUE(clients[0].done && clients[1].done && clients[2].done);
  sim.run_for(5 * kSecond);  // quiesce: drain replication

  // --- invariant 1: token mutual exclusion held throughout ---
  EXPECT_TRUE(audit.clean()) << audit.violations().size() << " violations, first: "
                             << (audit.violations().empty()
                                     ? ""
                                     : audit.violations().front());
  EXPECT_GT(audit.grants(), 0u);  // the sweep exercised migration

  // --- invariant 2: all replicas at all sites converged ---
  EXPECT_TRUE(deploy.converged());

  // --- invariant 3: per-object linearizability ---
  // Successful writes across all clients produced each version exactly
  // once, with no gaps: a single total order per record.
  for (int k = 0; k < kKeys; ++k) {
    const std::string path = "/k" + std::to_string(k);
    std::vector<std::int32_t> all;
    for (const auto& st : clients) {
      const auto it = st.versions.find(path);
      if (it != st.versions.end()) {
        all.insert(all.end(), it->second.begin(), it->second.end());
      }
    }
    std::sort(all.begin(), all.end());
    for (std::size_t i = 0; i < all.size(); ++i) {
      ASSERT_EQ(all[i], static_cast<std::int32_t>(i + 1))
          << path << ": version chain has a gap or duplicate";
    }
    // The final version in every replica equals the chain length.
    store::Stat stat;
    ASSERT_TRUE(deploy.broker(kVA, 0).tree().exists(path, &stat));
    EXPECT_EQ(stat.version, static_cast<std::int32_t>(all.size())) << path;
  }
}

TEST_P(ConsistencySweep, RandomContendedWorkloadKeepsAllInvariants) {
  run_contended_sweep(std::get<0>(GetParam()), std::get<1>(GetParam()));
}

TEST_P(ConsistencySweepSlow, RandomContendedWorkloadKeepsAllInvariants) {
  run_contended_sweep(std::get<0>(GetParam()), std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencySweep,
                         ::testing::Combine(::testing::Values(1, 7, 42, 1337,
                                                              90210),
                                            ::testing::Bool()),
                         sweep_param_name);

INSTANTIATE_TEST_SUITE_P(WideSeeds, ConsistencySweepSlow,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8, 13,
                                                              21, 34, 55, 89,
                                                              144),
                                            ::testing::Bool()),
                         sweep_param_name);

TEST(Consistency, ReadYourWritesAcrossWanCommit) {
  sim::Simulator sim(5);
  sim::Network net(sim, sim::LatencyModel::paper_wan());
  wk::Deployment deploy(sim, net, {});
  ASSERT_TRUE(deploy.wait_ready());
  auto va = deploy.make_client("va", kVA, 60);
  sim.run_for(500 * kMillisecond);
  bool ok = false;
  va->create("/ryw", "0", false, false,
             [&](const zk::ClientResult& r) { ok = r.ok(); });
  sim.run_for(2 * kSecond);
  ASSERT_TRUE(ok);

  // The CA client's very first write is remote (token at L2). Pipelining
  // a read right behind it must still observe the write: the session queue
  // holds the read until the remote commit is applied locally.
  auto ca = deploy.make_client("ca", kCA, 61);
  sim.run_for(1 * kSecond);
  std::string observed;
  ca->set_data("/ryw", "mine", -1, {});
  ca->get_data("/ryw", false, [&](const zk::ClientResult& r) {
    observed = std::string(r.data.begin(), r.data.end());
  });
  sim.run_for(5 * kSecond);
  EXPECT_EQ(observed, "mine");
}

TEST(Consistency, CausalChainAcrossThreeSites) {
  // c1@CA writes /x then /flag. c2@FRA waits for /flag, then writes /y.
  // c3@VA waits for /y; causality requires it then sees /x (the hub fans
  // out in a causal order, so no site can see /y without /x).
  sim::Simulator sim(9);
  sim::Network net(sim, sim::LatencyModel::paper_wan());
  wk::Deployment deploy(sim, net, {});
  ASSERT_TRUE(deploy.wait_ready());

  auto setup = deploy.make_client("setup", kVA, 70);
  sim.run_for(500 * kMillisecond);
  int created = 0;
  for (const char* p : {"/x", "/flag", "/y"}) {
    setup->create(p, "0", false, false,
                  [&](const zk::ClientResult& r) { created += r.ok() ? 1 : 0; });
  }
  sim.run_for(3 * kSecond);
  ASSERT_EQ(created, 3);

  auto c1 = deploy.make_client("c1", kCA, 71);
  auto c2 = deploy.make_client("c2", kFRA, 72);
  auto c3 = deploy.make_client("c3", kVA, 73);
  sim.run_for(1 * kSecond);

  c1->set_data("/x", "payload", -1, [&](const zk::ClientResult& r) {
    ASSERT_TRUE(r.ok());
    c1->set_data("/flag", "go", -1, {});
  });

  bool y_written = false;
  std::function<void()> poll_flag = [&]() {
    c2->get_data("/flag", false, [&](const zk::ClientResult& r) {
      const std::string v(r.data.begin(), r.data.end());
      if (v == "go" && !y_written) {
        y_written = true;
        // c2 observed /flag; anything it now writes is causally after /x.
        c2->set_data("/y", "done", -1, {});
      } else if (!y_written) {
        poll_flag();
      }
    });
  };
  poll_flag();

  bool checked = false;
  bool causality_held = false;
  std::function<void()> poll_y = [&]() {
    c3->get_data("/y", false, [&](const zk::ClientResult& ry) {
      const std::string v(ry.data.begin(), ry.data.end());
      if (v == "done" && !checked) {
        checked = true;
        c3->get_data("/x", false, [&](const zk::ClientResult& rx) {
          causality_held =
              std::string(rx.data.begin(), rx.data.end()) == "payload";
        });
      } else if (!checked) {
        poll_y();
      }
    });
  };
  poll_y();

  sim.run_for(30 * kSecond);
  ASSERT_TRUE(checked) << "/y never became visible at Virginia";
  EXPECT_TRUE(causality_held) << "saw /y without the causally-prior /x";
}

TEST(Consistency, StaleReadAllowedButConvergent) {
  // The paper's §II-D example: with tokens at different sites, a remote
  // reader may briefly see the old value of x (causal, not linearizable),
  // but must converge to the new one.
  sim::Simulator sim(11);
  sim::Network net(sim, sim::LatencyModel::paper_wan());
  wk::Deployment deploy(sim, net, {});
  ASSERT_TRUE(deploy.wait_ready());
  auto ca = deploy.make_client("ca", kCA, 80);
  sim.run_for(500 * kMillisecond);
  bool ready = false;
  ca->create("/sx", "0", false, false,
             [&](const zk::ClientResult& r) { ready = r.ok(); });
  sim.run_for(2 * kSecond);
  ASSERT_TRUE(ready);
  // Take the token to CA so updates commit locally there.
  for (int i = 0; i < 3; ++i) {
    ca->set_data("/sx", "warm" + std::to_string(i), -1, {});
    sim.run_for(1 * kSecond);
  }

  auto fra = deploy.make_client("fra", kFRA, 81);
  sim.run_for(1 * kSecond);

  // Local commit at CA, then an immediate read at FRA: the fan-out takes
  // ~2 WAN hops, so FRA still sees the old value (allowed), and after the
  // hub propagates, the new value (required).
  ca->set_data("/sx", "NEW", -1, {});
  sim.run_for(5 * kMillisecond);
  std::string early, late;
  fra->get_data("/sx", false, [&](const zk::ClientResult& r) {
    early = std::string(r.data.begin(), r.data.end());
  });
  sim.run_for(3 * kSecond);
  fra->get_data("/sx", false, [&](const zk::ClientResult& r) {
    late = std::string(r.data.begin(), r.data.end());
  });
  sim.run_for(3 * kSecond);
  EXPECT_NE(early, "NEW");  // too fresh to have crossed the WAN
  EXPECT_EQ(late, "NEW");   // one-way convergence
}

}  // namespace
}  // namespace wankeeper

// Property tests for WanKeeper's consistency guarantees (paper §II-D):
//   - token mutual exclusion (audited at apply time on every replica),
//   - per-object linearizability: one gapless version chain per record,
//   - per-client FIFO order (read-your-writes, even across WAN commits),
//   - causal consistency across objects and sites (hub ordering),
//   - eventual convergence of all replicas at all sites.
// Seeded sweeps run the same random workload under several seeds, and the
// whole matrix again with group commit + WAN coalescing enabled: batching
// must be invisible to every consistency property.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

#include "sim/network.h"
#include "sim/simulator.h"
#include "wankeeper/consistency.h"
#include "wankeeper/deployment.h"
#include "wankeeper/sweep_harness.h"

namespace wankeeper {
namespace {

constexpr SiteId kVA = 0;
constexpr SiteId kCA = 1;
constexpr SiteId kFRA = 2;

// (seed, batching on/off)
using SweepParam = std::tuple<std::uint64_t, bool>;

std::string sweep_param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return "seed" + std::to_string(std::get<0>(info.param)) +
         (std::get<1>(info.param) ? "_batched" : "_unbatched");
}

class ConsistencySweep : public ::testing::TestWithParam<SweepParam> {};

// Extra seeds for the slow tier (ctest -C slow -L slow / WK_SLOW_TESTS=1).
class ConsistencySweepSlow : public ConsistencySweep {
 protected:
  void SetUp() override {
    if (std::getenv("WK_SLOW_TESTS") == nullptr) {
      GTEST_SKIP() << "set WK_SLOW_TESTS=1 (or run ctest -C slow -L slow)";
    }
  }
};

void run_contended_sweep(std::uint64_t seed, bool batching) {
  sim::Simulator sim(seed);
  sim::Network net(sim, sim::LatencyModel::paper_wan());
  wk::TokenAuditor audit;
  wk::DeploymentConfig cfg;
  if (batching) cfg.enable_batching();
  wk::Deployment deploy(sim, net, cfg, &audit);
  ASSERT_TRUE(deploy.wait_ready());

  // Shared key space: every client hits every key, maximizing migration
  // and recall traffic.
  constexpr int kKeys = 25;
  constexpr int kOpsPerClient = 150;
  auto setup = deploy.make_client("setup", kVA, 50);
  sim.run_for(500 * kMillisecond);
  int created = 0;
  for (int k = 0; k < kKeys; ++k) {
    setup->create("/k" + std::to_string(k), "0", false, false,
                  [&](const zk::ClientResult& r) {
                    ASSERT_TRUE(r.ok());
                    ++created;
                  });
  }
  const Time guard0 = sim.now() + 120 * kSecond;
  while (created < kKeys && sim.now() < guard0) sim.run_for(100 * kMillisecond);
  ASSERT_EQ(created, kKeys);

  struct ClientState {
    std::unique_ptr<zk::Client> client;
    Rng rng{0};
    int remaining = kOpsPerClient;
    bool done = false;
    // All versions this client's successful setDatas produced, per path.
    std::map<std::string, std::vector<std::int32_t>> versions;
  };
  std::vector<ClientState> clients(3);
  const SiteId sites[3] = {kVA, kCA, kFRA};
  for (int i = 0; i < 3; ++i) {
    clients[i].client = deploy.make_client("c" + std::to_string(i), sites[i],
                                           1000 + i);
    clients[i].rng = Rng(seed * 31 + static_cast<std::uint64_t>(i));
  }
  sim.run_for(1 * kSecond);

  std::function<void(int)> issue = [&](int i) {
    auto& st = clients[i];
    if (st.remaining-- <= 0) {
      st.done = true;
      return;
    }
    const std::string path =
        "/k" + std::to_string(st.rng.uniform(kKeys));
    if (st.rng.chance(0.7)) {
      st.client->set_data(path, "v", -1, [&, i, path](const zk::ClientResult& r) {
        if (r.ok()) clients[i].versions[path].push_back(r.stat.version);
        issue(i);
      });
    } else {
      st.client->get_data(path, false,
                          [&, i](const zk::ClientResult&) { issue(i); });
    }
  };
  for (int i = 0; i < 3; ++i) issue(i);

  const Time guard = sim.now() + 30 * 60 * kSecond;
  while (sim.now() < guard) {
    if (clients[0].done && clients[1].done && clients[2].done) break;
    sim.run_for(500 * kMillisecond);
  }
  ASSERT_TRUE(clients[0].done && clients[1].done && clients[2].done);
  sim.run_for(5 * kSecond);  // quiesce: drain replication

  // --- invariant 1: token mutual exclusion held throughout ---
  EXPECT_TRUE(audit.clean()) << audit.violations().size() << " violations, first: "
                             << (audit.violations().empty()
                                     ? ""
                                     : audit.violations().front());
  EXPECT_GT(audit.grants(), 0u);  // the sweep exercised migration

  // --- invariant 2: all replicas at all sites converged ---
  EXPECT_TRUE(deploy.converged());

  // --- invariant 3: per-object linearizability ---
  // Successful writes across all clients produced each version exactly
  // once, with no gaps: a single total order per record.
  for (int k = 0; k < kKeys; ++k) {
    const std::string path = "/k" + std::to_string(k);
    std::vector<std::int32_t> all;
    for (const auto& st : clients) {
      const auto it = st.versions.find(path);
      if (it != st.versions.end()) {
        all.insert(all.end(), it->second.begin(), it->second.end());
      }
    }
    std::sort(all.begin(), all.end());
    for (std::size_t i = 0; i < all.size(); ++i) {
      ASSERT_EQ(all[i], static_cast<std::int32_t>(i + 1))
          << path << ": version chain has a gap or duplicate";
    }
    // The final version in every replica equals the chain length.
    store::Stat stat;
    ASSERT_TRUE(deploy.broker(kVA, 0).tree().exists(path, &stat));
    EXPECT_EQ(stat.version, static_cast<std::int32_t>(all.size())) << path;
  }
}

TEST_P(ConsistencySweep, RandomContendedWorkloadKeepsAllInvariants) {
  run_contended_sweep(std::get<0>(GetParam()), std::get<1>(GetParam()));
}

TEST_P(ConsistencySweepSlow, RandomContendedWorkloadKeepsAllInvariants) {
  run_contended_sweep(std::get<0>(GetParam()), std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencySweep,
                         ::testing::Combine(::testing::Values(1, 7, 42, 1337,
                                                              90210),
                                            ::testing::Bool()),
                         sweep_param_name);

INSTANTIATE_TEST_SUITE_P(WideSeeds, ConsistencySweepSlow,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8, 13,
                                                              21, 34, 55, 89,
                                                              144),
                                            ::testing::Bool()),
                         sweep_param_name);

TEST(Consistency, ReadYourWritesAcrossWanCommit) {
  sim::Simulator sim(5);
  sim::Network net(sim, sim::LatencyModel::paper_wan());
  wk::Deployment deploy(sim, net, {});
  ASSERT_TRUE(deploy.wait_ready());
  auto va = deploy.make_client("va", kVA, 60);
  sim.run_for(500 * kMillisecond);
  bool ok = false;
  va->create("/ryw", "0", false, false,
             [&](const zk::ClientResult& r) { ok = r.ok(); });
  sim.run_for(2 * kSecond);
  ASSERT_TRUE(ok);

  // The CA client's very first write is remote (token at L2). Pipelining
  // a read right behind it must still observe the write: the session queue
  // holds the read until the remote commit is applied locally.
  auto ca = deploy.make_client("ca", kCA, 61);
  sim.run_for(1 * kSecond);
  std::string observed;
  ca->set_data("/ryw", "mine", -1, {});
  ca->get_data("/ryw", false, [&](const zk::ClientResult& r) {
    observed = std::string(r.data.begin(), r.data.end());
  });
  sim.run_for(5 * kSecond);
  EXPECT_EQ(observed, "mine");
}

TEST(Consistency, CausalChainAcrossThreeSites) {
  // c1@CA writes /x then /flag. c2@FRA waits for /flag, then writes /y.
  // c3@VA waits for /y; causality requires it then sees /x (the hub fans
  // out in a causal order, so no site can see /y without /x).
  sim::Simulator sim(9);
  sim::Network net(sim, sim::LatencyModel::paper_wan());
  wk::Deployment deploy(sim, net, {});
  ASSERT_TRUE(deploy.wait_ready());

  auto setup = deploy.make_client("setup", kVA, 70);
  sim.run_for(500 * kMillisecond);
  int created = 0;
  for (const char* p : {"/x", "/flag", "/y"}) {
    setup->create(p, "0", false, false,
                  [&](const zk::ClientResult& r) { created += r.ok() ? 1 : 0; });
  }
  sim.run_for(3 * kSecond);
  ASSERT_EQ(created, 3);

  auto c1 = deploy.make_client("c1", kCA, 71);
  auto c2 = deploy.make_client("c2", kFRA, 72);
  auto c3 = deploy.make_client("c3", kVA, 73);
  sim.run_for(1 * kSecond);

  c1->set_data("/x", "payload", -1, [&](const zk::ClientResult& r) {
    ASSERT_TRUE(r.ok());
    c1->set_data("/flag", "go", -1, {});
  });

  bool y_written = false;
  std::function<void()> poll_flag = [&]() {
    c2->get_data("/flag", false, [&](const zk::ClientResult& r) {
      const std::string v(r.data.begin(), r.data.end());
      if (v == "go" && !y_written) {
        y_written = true;
        // c2 observed /flag; anything it now writes is causally after /x.
        c2->set_data("/y", "done", -1, {});
      } else if (!y_written) {
        poll_flag();
      }
    });
  };
  poll_flag();

  bool checked = false;
  bool causality_held = false;
  std::function<void()> poll_y = [&]() {
    c3->get_data("/y", false, [&](const zk::ClientResult& ry) {
      const std::string v(ry.data.begin(), ry.data.end());
      if (v == "done" && !checked) {
        checked = true;
        c3->get_data("/x", false, [&](const zk::ClientResult& rx) {
          causality_held =
              std::string(rx.data.begin(), rx.data.end()) == "payload";
        });
      } else if (!checked) {
        poll_y();
      }
    });
  };
  poll_y();

  sim.run_for(30 * kSecond);
  ASSERT_TRUE(checked) << "/y never became visible at Virginia";
  EXPECT_TRUE(causality_held) << "saw /y without the causally-prior /x";
}

TEST(Consistency, StaleReadAllowedButConvergent) {
  // The paper's §II-D example: with tokens at different sites, a remote
  // reader may briefly see the old value of x (causal, not linearizable),
  // but must converge to the new one.
  sim::Simulator sim(11);
  sim::Network net(sim, sim::LatencyModel::paper_wan());
  wk::Deployment deploy(sim, net, {});
  ASSERT_TRUE(deploy.wait_ready());
  auto ca = deploy.make_client("ca", kCA, 80);
  sim.run_for(500 * kMillisecond);
  bool ready = false;
  ca->create("/sx", "0", false, false,
             [&](const zk::ClientResult& r) { ready = r.ok(); });
  sim.run_for(2 * kSecond);
  ASSERT_TRUE(ready);
  // Take the token to CA so updates commit locally there.
  for (int i = 0; i < 3; ++i) {
    ca->set_data("/sx", "warm" + std::to_string(i), -1, {});
    sim.run_for(1 * kSecond);
  }

  auto fra = deploy.make_client("fra", kFRA, 81);
  sim.run_for(1 * kSecond);

  // Local commit at CA, then an immediate read at FRA: the fan-out takes
  // ~2 WAN hops, so FRA still sees the old value (allowed), and after the
  // hub propagates, the new value (required).
  ca->set_data("/sx", "NEW", -1, {});
  sim.run_for(5 * kMillisecond);
  std::string early, late;
  fra->get_data("/sx", false, [&](const zk::ClientResult& r) {
    early = std::string(r.data.begin(), r.data.end());
  });
  sim.run_for(3 * kSecond);
  fra->get_data("/sx", false, [&](const zk::ClientResult& r) {
    late = std::string(r.data.begin(), r.data.end());
  });
  sim.run_for(3 * kSecond);
  EXPECT_NE(early, "NEW");  // too fresh to have crossed the WAN
  EXPECT_EQ(late, "NEW");   // one-way convergence
}

// ------------------------------------------------------------------------
// Client-visible consistency checker (wankeeper/consistency.h): the sweep
// harness records every op and the checker replays the history. First the
// detector itself: deliberately corrupted histories — each one the trace a
// weakened guard would leave behind — must be flagged, and the clean
// equivalent must not. Without these, a silently-reverted guard would turn
// every scenario sweep green while the system forks.

namespace checker {

constexpr Time kMs = kMillisecond;

std::uint64_t write(wk::OpHistory& h, SessionId s, std::uint32_t epoch,
                    Time start, Time end, std::int32_t version,
                    const std::string& key = "/k") {
  const auto id = h.begin(s, epoch, /*site=*/0, wk::ClientOp::Kind::kWrite,
                          key, start);
  h.finish(id, end, /*ok=*/true, version);
  return id;
}

std::uint64_t read(wk::OpHistory& h, SessionId s, std::uint32_t epoch,
                   Time start, Time end, std::int32_t version,
                   const std::string& key = "/k") {
  const auto id = h.begin(s, epoch, /*site=*/0, wk::ClientOp::Kind::kRead,
                          key, start);
  h.finish(id, end, /*ok=*/true, version);
  return id;
}

std::vector<std::string> guarantees(const wk::OpHistory& h) {
  std::vector<std::string> out;
  for (const auto& v : wk::ConsistencyChecker::check(h)) {
    out.push_back(v.guarantee);
  }
  return out;
}

}  // namespace checker

TEST(ConsistencyChecker, CleanInterleavedHistoryPasses) {
  using namespace checker;
  wk::OpHistory h;
  write(h, 1, 0, 0, 10 * kMs, 1);
  write(h, 2, 0, 20 * kMs, 90 * kMs, 2);  // slow WAN write, fine
  read(h, 1, 0, 50 * kMs, 60 * kMs, 1);   // stale read: allowed (causal)
  read(h, 1, 0, 95 * kMs, 99 * kMs, 2);
  write(h, 1, 0, 100 * kMs, 110 * kMs, 3);
  read(h, 1, 0, 120 * kMs, 125 * kMs, 3);
  EXPECT_TRUE(wk::ConsistencyChecker::check(h).empty());
}

TEST(ConsistencyChecker, TimedOutWriteMayStillCommitWithoutViolation) {
  using namespace checker;
  wk::OpHistory h;
  // A write whose reply was lost stays open; the version it (maybe)
  // produced is a legal gap in the chain, not a duplicate.
  h.begin(1, 0, 0, wk::ClientOp::Kind::kWrite, "/k", 0);
  write(h, 2, 0, 10 * kMs, 20 * kMs, 2);
  write(h, 2, 0, 30 * kMs, 40 * kMs, 3);
  EXPECT_TRUE(wk::ConsistencyChecker::check(h).empty());
}

TEST(ConsistencyChecker, DetectsDuplicateVersion) {
  using namespace checker;
  wk::OpHistory h;
  write(h, 1, 0, 0, 10 * kMs, 1);
  write(h, 2, 0, 20 * kMs, 30 * kMs, 1);  // split-brain: v1 minted twice
  const auto got = guarantees(h);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "write-linearizability");
}

TEST(ConsistencyChecker, DetectsRealTimeInversionOfVersions) {
  using namespace checker;
  wk::OpHistory h;
  write(h, 1, 0, 0, 10 * kMs, 5);        // v5 done by 10ms
  write(h, 2, 0, 20 * kMs, 30 * kMs, 3); // started later, serialized earlier
  const auto got = guarantees(h);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "write-linearizability");
}

TEST(ConsistencyChecker, DetectsReadFromTheFuture) {
  using namespace checker;
  wk::OpHistory h;
  write(h, 1, 0, 0, 10 * kMs, 1);
  read(h, 2, 0, 15 * kMs, 20 * kMs, 7);  // nothing near v7 even started
  const auto got = guarantees(h);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "no-future-reads");
}

TEST(ConsistencyChecker, DetectsReadYourWritesRegression) {
  using namespace checker;
  wk::OpHistory h;
  write(h, 7, 0, 0, 10 * kMs, 4);
  write(h, 1, 0, 0, 5 * kMs, 1);
  write(h, 1, 0, 6 * kMs, 7 * kMs, 2);
  write(h, 1, 0, 8 * kMs, 9 * kMs, 3);
  read(h, 7, 0, 20 * kMs, 25 * kMs, 3);  // own write was v4
  const auto got = guarantees(h);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "read-your-writes");
}

TEST(ConsistencyChecker, DetectsMonotonicReadRegression) {
  using namespace checker;
  wk::OpHistory h;
  write(h, 1, 0, 0, 5 * kMs, 1);
  write(h, 1, 0, 6 * kMs, 10 * kMs, 2);
  read(h, 7, 0, 20 * kMs, 25 * kMs, 2);
  read(h, 7, 0, 30 * kMs, 35 * kMs, 1);  // went back in time
  const auto got = guarantees(h);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "monotonic-reads");
}

TEST(ConsistencyChecker, DetectsMonotonicWriteRegression) {
  using namespace checker;
  wk::OpHistory h;
  write(h, 1, 0, 0, 40 * kMs, 2, "/a");
  write(h, 1, 0, 1 * kMs, 50 * kMs, 1, "/a");  // session FIFO broken
  const auto got = guarantees(h);
  ASSERT_GE(got.size(), 1u);
  EXPECT_NE(std::find(got.begin(), got.end(), "monotonic-writes"), got.end());
}

TEST(ConsistencyChecker, ReconnectScopesSessionGuarantees) {
  using namespace checker;
  wk::OpHistory h;
  write(h, 9, 0, 0, 2 * kMs, 1);
  write(h, 9, 0, 3 * kMs, 4 * kMs, 2);
  write(h, 9, 0, 5 * kMs, 6 * kMs, 3);
  write(h, 1, /*epoch=*/0, 7 * kMs, 12 * kMs, 4);
  // Same session id after reconnect (new epoch): ZooKeeper semantics say
  // this is a fresh session, so an older read is NOT a RYW violation...
  read(h, 1, /*epoch=*/1, 20 * kMs, 25 * kMs, 2);
  EXPECT_TRUE(wk::ConsistencyChecker::check(h).empty());
  // ...but within one epoch it is.
  write(h, 1, /*epoch=*/1, 30 * kMs, 35 * kMs, 5);
  read(h, 1, /*epoch=*/1, 40 * kMs, 45 * kMs, 2);
  const auto got = guarantees(h);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "read-your-writes");
}

TEST(ConsistencyChecker, WitnessCarriesTheMinimalOpSubsequence) {
  using namespace checker;
  wk::OpHistory h;
  write(h, 1, 0, 0, 10 * kMs, 1);
  write(h, 2, 0, 20 * kMs, 30 * kMs, 1);
  const auto violations = wk::ConsistencyChecker::check(h);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].witness.size(), 2u);
  const std::string formatted = violations[0].format();
  EXPECT_NE(formatted.find("WRITE"), std::string::npos);
  EXPECT_NE(formatted.find("/k"), std::string::npos);
}

// Property sweep: the harness's mixed read/write load over a shared key
// space keeps tokens migrating (and the tokenless path through the L2 hub
// busy), and the recorded history must satisfy RYW + monotonic reads +
// write linearizability for every seed, in both batching modes.
class RecordedHistorySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RecordedHistorySweep, MixedLoadHistoryIsCleanAcrossTokenMigration) {
  const auto [seed, batching] = GetParam();
  wk::DeploymentConfig cfg;
  if (batching) cfg.enable_batching();
  wk::LoadedDeployment d(seed, cfg);
  ASSERT_TRUE(d.deploy.wait_ready());
  d.keys = 8;             // few keys -> heavy cross-site contention
  d.read_fraction = 0.5;  // plenty of reads to check against the chains
  d.start_mixed_load();
  d.sim.run_for(40 * kSecond);
  d.stop = true;
  d.sim.run_for(10 * kSecond);

  wk::SweepResult r;
  wk::finish_sweep(d, &r);
  EXPECT_TRUE(r.audit_clean) << r.first_violation;
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.consistency_clean)
      << r.consistency_violations << " violation(s), first:\n"
      << r.first_consistency_witness;
  EXPECT_GT(r.completed_total, 100u);
  EXPECT_GT(d.sim.obs().metrics.counter_total("broker.l2_served"), 0u)
      << "the sweep never exercised the L2 hub path";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordedHistorySweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                                            ::testing::Bool()),
                         sweep_param_name);

}  // namespace
}  // namespace wankeeper

// End-to-end WanKeeper tests: 3-site deployments on the paper's WAN
// topology — token migration, recall under contention, local-commit
// latency, cross-site replication/convergence, ephemeral sessions over
// WAN, L1 recovery, lease reclaim, and L2 failover.
#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/simulator.h"
#include "wankeeper/deployment.h"

namespace wankeeper {
namespace {

using wk::Broker;
using wk::Deployment;
using wk::DeploymentConfig;
using wk::TokenAuditor;

constexpr SiteId kVA = 0;
constexpr SiteId kCA = 1;
constexpr SiteId kFRA = 2;

struct WanFixture {
  sim::Simulator sim{2024};
  sim::Network net{sim, sim::LatencyModel::paper_wan()};
  TokenAuditor audit;
  Deployment deploy;

  explicit WanFixture(DeploymentConfig cfg = {})
      : deploy(sim, net, cfg, &audit) {}

  // Convenience: run a blocking op and return the result.
  zk::ClientResult run_op(const std::function<void(zk::Client::Callback)>& op,
                          Time max_wait = 5 * kSecond) {
    zk::ClientResult out;
    bool done = false;
    op([&](const zk::ClientResult& r) {
      out = r;
      done = true;
    });
    const Time deadline = sim.now() + max_wait;
    // Step event-by-event so sim.now() lands exactly on the completion.
    while (!done && sim.now() < deadline && sim.step()) {
    }
    EXPECT_TRUE(done) << "op did not complete";
    return out;
  }
};

TEST(WanKeeper, DeploymentBootsAndRegisters) {
  WanFixture f;
  ASSERT_TRUE(f.deploy.wait_ready());
  Broker* l2 = f.deploy.l2_broker();
  ASSERT_NE(l2, nullptr);
  EXPECT_EQ(l2->site(), kVA);
  EXPECT_TRUE(f.audit.clean());
}

TEST(WanKeeper, RemoteWriteServedAtL2AndVisibleEverywhere) {
  WanFixture f;
  ASSERT_TRUE(f.deploy.wait_ready());
  auto client = f.deploy.make_client("ca-client", kCA, 9001);

  auto res = f.run_op([&](zk::Client::Callback cb) {
    client->create("/x", "v1", false, false, std::move(cb));
  });
  ASSERT_EQ(res.rc, store::Rc::kOk);

  // Fan-out reaches every site.
  f.sim.run_for(2 * kSecond);
  for (SiteId s : {kVA, kCA, kFRA}) {
    for (std::size_t n = 0; n < 3; ++n) {
      EXPECT_TRUE(f.deploy.broker(s, n).tree().exists("/x"))
          << "site " << s << " node " << n;
    }
  }
  EXPECT_TRUE(f.audit.clean());
}

TEST(WanKeeper, ConsecutiveAccessesMigrateTokenAndEnableLocalWrites) {
  WanFixture f;
  ASSERT_TRUE(f.deploy.wait_ready());
  auto client = f.deploy.make_client("ca-client", kCA, 9001);

  // First write: remote (1 WAN RTT). Second write: remote, triggers the
  // r=2 migration. Third write onward: local (couple of ms).
  ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                 client->create("/hot", "0", false, false, std::move(cb));
               }).ok());

  Time t0 = f.sim.now();
  ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                 client->set_data("/hot", "1", -1, std::move(cb));
               }).ok());
  const Time second_latency = f.sim.now() - t0;

  f.sim.run_for(1 * kSecond);  // let the grant marker propagate

  Broker* ca = f.deploy.site_leader(kCA);
  ASSERT_NE(ca, nullptr);
  EXPECT_TRUE(ca->site_tokens().owns(wk::node_token("/hot")));

  t0 = f.sim.now();
  ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                 client->set_data("/hot", "2", -1, std::move(cb));
               }).ok());
  const Time third_latency = f.sim.now() - t0;

  // Remote ~1 WAN RTT (62ms); local a few ms.
  EXPECT_GT(second_latency, 50 * kMillisecond);
  EXPECT_LT(third_latency, 10 * kMillisecond);

  // The local write still reaches the other sites.
  f.sim.run_for(2 * kSecond);
  std::vector<std::uint8_t> data;
  ASSERT_EQ(f.deploy.broker(kFRA, 0).tree().get_data("/hot", &data), store::Rc::kOk);
  EXPECT_EQ(std::string(data.begin(), data.end()), "2");
  EXPECT_TRUE(f.audit.clean());
}

TEST(WanKeeper, ContentionRecallsTokenAndSerializesAtL2) {
  WanFixture f;
  ASSERT_TRUE(f.deploy.wait_ready());
  auto ca = f.deploy.make_client("ca", kCA, 9001);
  auto fra = f.deploy.make_client("fra", kFRA, 9002);

  // CA takes the token for /shared.
  ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                 ca->create("/shared", "0", false, false, std::move(cb));
               }).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                   ca->set_data("/shared", "ca" + std::to_string(i), -1, std::move(cb));
                 }).ok());
  }
  f.sim.run_for(1 * kSecond);
  ASSERT_TRUE(f.deploy.site_leader(kCA)->site_tokens().owns(wk::node_token("/shared")));

  // FRA writes: L2 must recall the token from CA, then serve.
  auto res = f.run_op([&](zk::Client::Callback cb) {
    fra->set_data("/shared", "fra0", -1, std::move(cb));
  });
  ASSERT_EQ(res.rc, store::Rc::kOk);

  f.sim.run_for(2 * kSecond);
  EXPECT_FALSE(f.deploy.site_leader(kCA)->site_tokens().owns(wk::node_token("/shared")));

  // Everyone converges on the same final value with a single version chain.
  std::vector<std::uint8_t> data;
  store::Stat stat;
  for (SiteId s : {kVA, kCA, kFRA}) {
    ASSERT_EQ(f.deploy.broker(s, 0).tree().get_data("/shared", &data, &stat),
              store::Rc::kOk);
    EXPECT_EQ(std::string(data.begin(), data.end()), "fra0") << "site " << s;
    EXPECT_EQ(stat.version, 4) << "site " << s;
  }
  EXPECT_GE(f.audit.recalls(), 1u);
  EXPECT_TRUE(f.audit.clean());
}

TEST(WanKeeper, ReadsAreAlwaysLocal) {
  WanFixture f;
  ASSERT_TRUE(f.deploy.wait_ready());
  auto writer = f.deploy.make_client("va", kVA, 9001);
  ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                 writer->create("/r", "data", false, false, std::move(cb));
               }).ok());
  f.sim.run_for(2 * kSecond);

  auto reader = f.deploy.make_client("fra", kFRA, 9002);
  f.sim.run_for(1 * kSecond);  // session establishment
  const Time t0 = f.sim.now();
  auto res = f.run_op([&](zk::Client::Callback cb) {
    reader->get_data("/r", false, std::move(cb));
  });
  ASSERT_TRUE(res.ok());
  EXPECT_LT(f.sim.now() - t0, 5 * kMillisecond);  // no WAN hop
}

TEST(WanKeeper, SequentialNodesUseBulkTokensAndStayOrdered) {
  WanFixture f;
  ASSERT_TRUE(f.deploy.wait_ready());
  auto ca = f.deploy.make_client("ca", kCA, 9001);
  auto fra = f.deploy.make_client("fra", kFRA, 9002);

  ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                 ca->create("/locks", "", false, false, std::move(cb));
               }).ok());

  // Interleave sequential creates from two sites; names must be unique and
  // globally ordered (the bulk token serializes them).
  std::vector<std::string> names;
  for (int i = 0; i < 3; ++i) {
    auto r1 = f.run_op([&](zk::Client::Callback cb) {
      ca->create("/locks/lock-", "", true, true, std::move(cb));
    });
    ASSERT_TRUE(r1.ok());
    names.push_back(r1.created_path);
    auto r2 = f.run_op([&](zk::Client::Callback cb) {
      fra->create("/locks/lock-", "", true, true, std::move(cb));
    });
    ASSERT_TRUE(r2.ok());
    names.push_back(r2.created_path);
  }
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  EXPECT_TRUE(f.audit.clean());
}

TEST(WanKeeper, EphemeralsOfRemoteSessionsSurviveViaHeartbeats) {
  WanFixture f;
  ASSERT_TRUE(f.deploy.wait_ready());
  auto ca = f.deploy.make_client("ca", kCA, 9001);
  ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                 ca->create("/eph", "x", true, false, std::move(cb));
               }).ok());

  // Much longer than the session timeout: the CA session stays alive via
  // client pings at CA + heartbeat piggyback to L2, so no one expires it.
  f.sim.run_for(30 * kSecond);
  for (SiteId s : {kVA, kCA, kFRA}) {
    EXPECT_TRUE(f.deploy.broker(s, 0).tree().exists("/eph")) << "site " << s;
  }

  // Kill the client; its home site expires the session; the closeSession
  // replicates and the ephemeral vanishes WAN-wide.
  f.net.actor(ca->id()).crash();
  f.sim.run_for(30 * kSecond);
  for (SiteId s : {kVA, kCA, kFRA}) {
    EXPECT_FALSE(f.deploy.broker(s, 0).tree().exists("/eph")) << "site " << s;
  }
  EXPECT_TRUE(f.audit.clean());
}

TEST(WanKeeper, L1LeaderCrashRecoversTokensFromLog) {
  WanFixture f;
  ASSERT_TRUE(f.deploy.wait_ready());
  auto ca = f.deploy.make_client("ca", kCA, 9001);
  ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                 ca->create("/t", "0", false, false, std::move(cb));
               }).ok());
  ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                 ca->set_data("/t", "1", -1, std::move(cb));
               }).ok());
  f.sim.run_for(1 * kSecond);
  ASSERT_TRUE(f.deploy.site_leader(kCA)->site_tokens().owns(wk::node_token("/t")));

  // Crash the CA leader; a new CA leader must reconstruct token ownership
  // from its replicated log and keep committing locally.
  f.deploy.crash_site_leader(kCA);
  f.sim.run_for(5 * kSecond);
  Broker* new_leader = f.deploy.site_leader(kCA);
  ASSERT_NE(new_leader, nullptr);
  EXPECT_TRUE(new_leader->site_tokens().owns(wk::node_token("/t")));

  auto res = f.run_op(
      [&](zk::Client::Callback cb) { ca->set_data("/t", "2", -1, std::move(cb)); },
      20 * kSecond);
  // The client may see one kUnavailable from the leadership change;
  // retry once in that case.
  if (!res.ok()) {
    res = f.run_op(
        [&](zk::Client::Callback cb) { ca->set_data("/t", "2", -1, std::move(cb)); },
        20 * kSecond);
  }
  EXPECT_TRUE(res.ok());
  EXPECT_TRUE(f.audit.clean());
}

TEST(WanKeeper, DeadSiteTokensReclaimedByLease) {
  DeploymentConfig cfg;
  cfg.wan.token_lease = 6 * kSecond;
  cfg.wan.lease_valid = 3 * kSecond;
  cfg.wan.enable_l2_failover = false;
  WanFixture f(cfg);
  ASSERT_TRUE(f.deploy.wait_ready());
  auto ca = f.deploy.make_client("ca", kCA, 9001);
  auto fra = f.deploy.make_client("fra", kFRA, 9002);

  ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                 ca->create("/owned", "0", false, false, std::move(cb));
               }).ok());
  ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                 ca->set_data("/owned", "1", -1, std::move(cb));
               }).ok());
  f.sim.run_for(1 * kSecond);
  ASSERT_NE(f.deploy.l2_broker()->token_table().owner(wk::node_token("/owned")),
            kNoSite);

  // The whole CA site dies. After the lease expires, L2 reclaims the token
  // and FRA's writes go through again.
  f.deploy.crash_site(kCA);
  f.sim.run_for(10 * kSecond);
  EXPECT_EQ(f.deploy.l2_broker()->token_table().owner(wk::node_token("/owned")),
            kNoSite);

  auto res = f.run_op(
      [&](zk::Client::Callback cb) {
        fra->set_data("/owned", "fra", -1, std::move(cb));
      },
      15 * kSecond);
  EXPECT_TRUE(res.ok());
}

TEST(WanKeeper, L2FailoverPromotesNewSiteAndWritesContinue) {
  DeploymentConfig cfg;
  cfg.wan.l2_failover_timeout = 3 * kSecond;
  cfg.wan.token_lease = 5 * kSecond;
  cfg.wan.lease_valid = 2 * kSecond;
  WanFixture f(cfg);
  ASSERT_TRUE(f.deploy.wait_ready());
  auto ca = f.deploy.make_client("ca", kCA, 9001);
  ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                 ca->create("/pre", "x", false, false, std::move(cb));
               }).ok());

  // Virginia (the L2 site) dies wholesale.
  f.deploy.crash_site(kVA);
  f.sim.run_for(12 * kSecond);

  Broker* l2 = f.deploy.l2_broker();
  ASSERT_NE(l2, nullptr);
  EXPECT_NE(l2->site(), kVA);
  EXPECT_EQ(l2->site(), kCA);  // lowest alive site id promotes

  // New writes flow through the new L2.
  auto fra = f.deploy.make_client("fra", kFRA, 9002);
  auto res = f.run_op(
      [&](zk::Client::Callback cb) {
        fra->create("/post-failover", "y", false, false, std::move(cb));
      },
      20 * kSecond);
  EXPECT_TRUE(res.ok());
  f.sim.run_for(3 * kSecond);
  EXPECT_TRUE(f.deploy.broker(kCA, 0).tree().exists("/post-failover"));
}

TEST(WanKeeper, QuiescentDeploymentConverges) {
  WanFixture f;
  ASSERT_TRUE(f.deploy.wait_ready());
  auto va = f.deploy.make_client("va", kVA, 9001);
  auto ca = f.deploy.make_client("ca", kCA, 9002);
  auto fra = f.deploy.make_client("fra", kFRA, 9003);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                   va->create("/va" + std::to_string(i), "v", false, false, std::move(cb));
                 }).ok());
    ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                   ca->create("/ca" + std::to_string(i), "v", false, false, std::move(cb));
                 }).ok());
    ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                   fra->create("/fra" + std::to_string(i), "v", false, false, std::move(cb));
                 }).ok());
  }
  f.sim.run_for(5 * kSecond);
  EXPECT_TRUE(f.deploy.converged());
  EXPECT_TRUE(f.audit.clean());
}

}  // namespace
}  // namespace wankeeper

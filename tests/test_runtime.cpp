// Runtime-seam conformance: the same Actor code must behave identically on
// the deterministic simulator and on rt::ThreadRuntime (real threads +
// loopback TCP) for the contract the seam promises — timer ordering per
// node, cancellation, crashed-actor isolation (no deliveries, no stale
// timers), restart with a fresh incarnation, and FIFO delivery per sender.
// Plus: wire-codec round-trips for every message family (including the
// recursive WanEnvelopeMsg), the cross-process TCP framing path, and a
// small end-to-end cluster (election + hub registration + client ops) on
// the thread runtime.
//
// The DES side of the seam is additionally pinned by test_determinism.cpp:
// its golden FNV-1a digests prove the refactor left the simulator's event
// schedule byte-identical.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "rt/cluster.h"
#include "rt/codec.h"
#include "rt/thread_runtime.h"
#include "sim/actor.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "wankeeper/messages.h"
#include "zab/messages.h"
#include "zk/messages.h"

namespace wankeeper {
namespace {

// --- codec round-trips ---

template <typename T>
std::shared_ptr<const T> roundtrip(const std::shared_ptr<T>& m) {
  const std::vector<std::uint8_t> bytes = rt::encode_message(*m);
  sim::MessagePtr decoded = rt::decode_message(bytes);
  const T* cast = sim::msg_cast<T>(decoded.get());
  EXPECT_NE(cast, nullptr) << "decoded to wrong type";
  return std::shared_ptr<const T>(decoded, cast);
}

TEST(Codec, ZabMessages) {
  auto vote = sim::make_mutable_message<zab::VoteMsg>();
  vote->round = 7;
  vote->candidate = 3;
  vote->candidate_zxid = (5ULL << 32) | 42;
  vote->candidate_priority = 2;
  auto v2 = roundtrip(vote);
  EXPECT_EQ(v2->round, 7u);
  EXPECT_EQ(v2->candidate, 3);
  EXPECT_EQ(v2->candidate_zxid, vote->candidate_zxid);
  EXPECT_EQ(v2->candidate_priority, 2);

  auto sync = sim::make_mutable_message<zab::SyncMsg>();
  sync->epoch = 4;
  sync->truncate_to = 9;
  sync->entries.push_back({10, common::Bytes({1, 2, 3})});
  sync->entries.push_back({11, common::Bytes({})});
  sync->commit_up_to = 11;
  auto s2 = roundtrip(sync);
  EXPECT_EQ(s2->epoch, 4u);
  EXPECT_EQ(s2->entries.size(), 2u);
  EXPECT_EQ(s2->entries[0].zxid, 10u);
  EXPECT_TRUE(s2->entries[0].payload == sync->entries[0].payload);
  EXPECT_TRUE(s2->entries[1].payload.empty());
  EXPECT_EQ(s2->commit_up_to, 11u);

  auto inform = sim::make_mutable_message<zab::InformMsg>();
  inform->epoch = 2;
  inform->entry = {77, common::Bytes({9, 9})};
  auto i2 = roundtrip(inform);
  EXPECT_EQ(i2->entry.zxid, 77u);
  EXPECT_TRUE(i2->entry.payload == inform->entry.payload);
}

TEST(Codec, ZkMessages) {
  auto req = sim::make_mutable_message<zk::ClientRequest>();
  req->session = 10001;
  req->xid = 5;
  req->op.op = zk::OpCode::kCreate;
  req->op.path = "/a/b";
  req->op.data = {1, 2, 3, 4};
  req->op.ephemeral = true;
  req->op.sequential = true;
  req->op.version = 3;
  req->watch = true;
  zk::Op extra;
  extra.op = zk::OpCode::kSetData;
  extra.path = "/c";
  req->multi_ops.push_back(extra);
  req->session_timeout = 6 * kSecond;
  req->trace = 999;
  auto r2 = roundtrip(req);
  EXPECT_EQ(r2->session, 10001);
  EXPECT_EQ(r2->op.path, "/a/b");
  EXPECT_EQ(r2->op.data, req->op.data);
  EXPECT_TRUE(r2->op.ephemeral);
  EXPECT_TRUE(r2->op.sequential);
  EXPECT_EQ(r2->op.version, 3);
  EXPECT_TRUE(r2->watch);
  ASSERT_EQ(r2->multi_ops.size(), 1u);
  EXPECT_EQ(r2->multi_ops[0].path, "/c");
  EXPECT_EQ(r2->session_timeout, 6 * kSecond);
  EXPECT_EQ(r2->trace, 999u);

  auto reply = sim::make_mutable_message<zk::ClientReply>();
  reply->session = 10001;
  reply->xid = 5;
  reply->op = zk::OpCode::kGetChildren;
  reply->rc = store::Rc::kNoNode;
  reply->data = {7};
  reply->stat.version = 12;
  reply->stat.mzxid = 34;
  reply->stat.ephemeral_owner = 10001;
  reply->children = {"x", "y"};
  reply->created_path = "/a/b0000000001";
  reply->zxid = 55;
  auto p2 = roundtrip(reply);
  EXPECT_EQ(p2->rc, store::Rc::kNoNode);
  EXPECT_EQ(p2->stat.version, 12);
  EXPECT_EQ(p2->stat.mzxid, 34u);
  EXPECT_EQ(p2->stat.ephemeral_owner, 10001);
  EXPECT_EQ(p2->children, reply->children);
  EXPECT_EQ(p2->created_path, "/a/b0000000001");
  EXPECT_EQ(p2->zxid, 55u);

  auto fwd = sim::make_mutable_message<zk::ForwardRequestMsg>();
  fwd->origin_server = 4;
  fwd->request.session = 3;
  fwd->request.op.path = "/fwd";
  auto f2 = roundtrip(fwd);
  EXPECT_EQ(f2->origin_server, 4);
  EXPECT_EQ(f2->request.op.path, "/fwd");

  auto touch = sim::make_mutable_message<zk::SessionTouchMsg>();
  touch->sessions = {1, 2, 30000};
  EXPECT_EQ(roundtrip(touch)->sessions, touch->sessions);
}

TEST(Codec, WanMessagesAndRecursion) {
  auto up = sim::make_mutable_message<wk::ReplicateUpMsg>();
  up->envelope.session = 20001;
  up->envelope.xid = 9;
  up->envelope.trace = 5;
  up->envelope.txn.path = "/k1";

  auto ack = sim::make_mutable_message<wk::WanAckMsg>();
  ack->from_site = 1;
  ack->from_node = 6;
  ack->stream_epoch = 2;
  ack->stream_gen = 3;
  ack->cumulative = 17;

  auto env = sim::make_mutable_message<wk::WanEnvelopeMsg>();
  env->from_site = 0;
  env->from_node = 1;
  env->stream_epoch = 8;
  env->stream_gen = 1;
  env->seq = 100;
  env->inners.push_back(up);
  env->inners.push_back(ack);
  auto e2 = roundtrip(env);
  EXPECT_EQ(e2->seq, 100u);
  ASSERT_EQ(e2->inners.size(), 2u);
  const auto* up2 = sim::msg_cast<wk::ReplicateUpMsg>(e2->inners[0].get());
  ASSERT_NE(up2, nullptr);
  EXPECT_EQ(up2->envelope.session, 20001);
  EXPECT_EQ(up2->envelope.txn.path, "/k1");
  const auto* ack2 = sim::msg_cast<wk::WanAckMsg>(e2->inners[1].get());
  ASSERT_NE(ack2, nullptr);
  EXPECT_EQ(ack2->cumulative, 17u);

  auto reg = sim::make_mutable_message<wk::RegisterMsg>();
  reg->from_site = 2;
  reg->from_node = 9;
  reg->zab_epoch = 3;
  reg->down_frontiers = {{1, 40}, {2, 7}};
  reg->owned_tokens = {"node:/a", "seq:/b"};
  reg->trace = 77;
  auto g2 = roundtrip(reg);
  EXPECT_EQ(g2->down_frontiers.size(), 2u);
  EXPECT_EQ(g2->down_frontiers[1].counter, 7u);
  EXPECT_EQ(g2->owned_tokens, reg->owned_tokens);

  auto hb = sim::make_mutable_message<wk::WanHeartbeatMsg>();
  hb->from_site = 1;
  hb->live_sessions = {10001, 10002};
  hb->down_frontiers = {{1, 5}};
  hb->l2_site = 0;
  hb->l2_epoch = 4;
  auto h2 = roundtrip(hb);
  EXPECT_EQ(h2->live_sessions, hb->live_sessions);
  EXPECT_EQ(h2->l2_epoch, 4u);

  auto down = sim::make_mutable_message<wk::ReplicateDownMsg>();
  down->envelope.session = 3;
  down->envelope.txn.path = "/fanout";
  down->l2_epoch = 2;
  down->resync = true;
  down->resync_trace = 6;
  auto d2 = roundtrip(down);
  EXPECT_EQ(d2->envelope.txn.path, "/fanout");
  EXPECT_TRUE(d2->resync);

  auto chunk = sim::make_mutable_message<wk::ResyncChunkMsg>();
  chunk->from_site = 1;
  chunk->done = true;
  zk::Envelope ce;
  ce.session = 8;
  ce.txn.path = "/resync";
  chunk->envelopes.push_back(ce);
  chunk->frontiers = {{2, 90}};
  auto c2 = roundtrip(chunk);
  ASSERT_EQ(c2->envelopes.size(), 1u);
  EXPECT_EQ(c2->envelopes[0].txn.path, "/resync");
  EXPECT_TRUE(c2->done);

  auto recall = sim::make_mutable_message<wk::TokenRecallMsg>();
  recall->keys = {"node:/x"};
  EXPECT_EQ(roundtrip(recall)->keys, recall->keys);
}

TEST(Codec, BadInputThrows) {
  std::vector<std::uint8_t> junk = {0xff, 0xff, 1, 2, 3};
  EXPECT_THROW(rt::decode_message(junk), BufferError);
  std::vector<std::uint8_t> truncated =
      rt::encode_message(*sim::make_mutable_message<zab::NewEpochMsg>());
  truncated.pop_back();
  EXPECT_THROW(rt::decode_message(truncated), BufferError);
}

// --- seam conformance on both runtimes ---

// Records timer firings and received message tags; thread-safe so the
// thread runtime's loops can append while the test thread polls.
class ProbeActor : public sim::Actor {
 public:
  ProbeActor(rt::Runtime& rt, std::string name) : Actor(rt, std::move(name)) {}

  void on_message(NodeId from, const sim::MessagePtr& msg) override {
    const auto* ping = sim::msg_cast<zab::PingMsg>(msg.get());
    ASSERT_NE(ping, nullptr);
    std::lock_guard<std::mutex> lk(mu_);
    received_.push_back({from, ping->epoch});
  }

  void fire(std::uint32_t label) {
    std::lock_guard<std::mutex> lk(mu_);
    fired_.push_back(label);
  }

  std::vector<std::uint32_t> fired() const {
    std::lock_guard<std::mutex> lk(mu_);
    return fired_;
  }
  std::vector<std::pair<NodeId, std::uint32_t>> received() const {
    std::lock_guard<std::mutex> lk(mu_);
    return received_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::uint32_t> fired_;
  std::vector<std::pair<NodeId, std::uint32_t>> received_;
};

sim::MessagePtr ping(std::uint32_t label) {
  auto m = sim::make_mutable_message<zab::PingMsg>();
  m->epoch = label;
  return m;
}

// One harness per runtime: register two probes, let time pass, poke actors.
// `settle` blocks until the runtime has processed everything in flight.
struct SimHarness {
  sim::Simulator sim;
  sim::Network net{sim, sim::LatencyModel(1, 100, 100)};
  ProbeActor a{sim, "a"}, b{sim, "b"};
  NodeId ida = net.add_node(a, 0);
  NodeId idb = net.add_node(b, 0);

  void on_actor(ProbeActor& actor, std::function<void()> fn) {
    (void)actor;
    fn();
  }
  void settle(Time virtual_time) { sim.run_for(virtual_time); }
};

struct ThreadHarness {
  rt::ThreadRuntime rt{42};
  ProbeActor a{rt, "a"}, b{rt, "b"};
  NodeId ida = rt.spawn(a, 0);
  NodeId idb = rt.spawn(b, 0);

  ThreadHarness() { rt.start(); }
  ~ThreadHarness() { rt.stop(); }

  void on_actor(ProbeActor& actor, std::function<void()> fn) {
    rt.call(actor.id(), std::move(fn));
  }
  void settle(Time virtual_time) {
    // Real time: sleep the virtual duration plus slack for loop wakeups.
    std::this_thread::sleep_for(
        std::chrono::microseconds(virtual_time + 50 * kMillisecond));
  }
};

template <typename H>
class RuntimeConformance : public ::testing::Test {};

using Harnesses = ::testing::Types<SimHarness, ThreadHarness>;
TYPED_TEST_SUITE(RuntimeConformance, Harnesses);

TYPED_TEST(RuntimeConformance, TimersFireInDeadlineOrder) {
  TypeParam h;
  h.on_actor(h.a, [&] {
    h.a.set_timer(30 * kMillisecond, [&] { h.a.fire(3); });
    h.a.set_timer(10 * kMillisecond, [&] { h.a.fire(1); });
    h.a.set_timer(20 * kMillisecond, [&] { h.a.fire(2); });
  });
  h.settle(100 * kMillisecond);
  EXPECT_EQ(h.a.fired(), (std::vector<std::uint32_t>{1, 2, 3}));
}

TYPED_TEST(RuntimeConformance, CancelledTimerNeverFires) {
  TypeParam h;
  h.on_actor(h.a, [&] {
    const rt::TimerId doomed =
        h.a.set_timer(10 * kMillisecond, [&] { h.a.fire(666); });
    h.a.set_timer(20 * kMillisecond, [&] { h.a.fire(1); });
    h.a.cancel_timer(doomed);
    h.a.cancel_timer(0);  // "no timer" id: harmless no-op
  });
  h.settle(100 * kMillisecond);
  EXPECT_EQ(h.a.fired(), (std::vector<std::uint32_t>{1}));
}

TYPED_TEST(RuntimeConformance, SendToDeadNodeIsDroppedAndFifoOtherwise) {
  TypeParam h;
  h.on_actor(h.b, [&] { h.b.crash(); });
  h.on_actor(h.a, [&] { h.a.rt().send(h.ida, h.idb, ping(1)); });
  h.settle(50 * kMillisecond);
  EXPECT_TRUE(h.b.received().empty());

  h.on_actor(h.b, [&] { h.b.restart(); });
  h.on_actor(h.a, [&] {
    for (std::uint32_t i = 2; i <= 5; ++i) h.a.rt().send(h.ida, h.idb, ping(i));
  });
  h.settle(50 * kMillisecond);
  const auto got = h.b.received();
  ASSERT_EQ(got.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(got[i].first, h.ida);
    EXPECT_EQ(got[i].second, i + 2);
  }
}

TYPED_TEST(RuntimeConformance, CrashInvalidatesPendingTimers) {
  TypeParam h;
  h.on_actor(h.a, [&] {
    h.a.set_timer(10 * kMillisecond, [&] { h.a.fire(666); });
    h.a.crash();
  });
  h.settle(50 * kMillisecond);
  h.on_actor(h.a, [&] {
    h.a.restart();
    // Timers armed before the crash belong to the old incarnation and must
    // not fire even after restart; new ones do.
    h.a.set_timer(10 * kMillisecond, [&] { h.a.fire(1); });
  });
  h.settle(50 * kMillisecond);
  EXPECT_EQ(h.a.fired(), (std::vector<std::uint32_t>{1}));
}

// --- thread-runtime specifics: TCP framing between two runtimes ---

TEST(ThreadRuntime, LoopbackTcpDeliversAcrossProcessesAndReconnects) {
  constexpr std::uint16_t kPortA = 45161;
  constexpr std::uint16_t kPortB = 45162;

  rt::ThreadRuntime rta(1);
  rt::ThreadRuntime rtb(2);
  ProbeActor a(rta, "a");
  ProbeActor b(rtb, "b");

  const std::size_t la = rta.add_loop();
  rta.add_actor(a, 1, 0, la);
  rta.add_remote(2, 1);
  rta.listen(kPortA);
  rta.connect_site(1, kPortB);

  const std::size_t lb = rtb.add_loop();
  rtb.add_actor(b, 2, 1, lb);
  rtb.add_remote(1, 0);
  rtb.connect_site(0, kPortA);

  // Send before the peer runtime is even started: frames queue on the
  // outbound link and flush when the listener comes up.
  rta.start();
  rta.send(1, 2, ping(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  rtb.listen(kPortB);  // throws if called post-start, so start B fully here
  rtb.start();

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (b.received().size() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(b.received().size(), 1u);
  EXPECT_EQ(b.received()[0], (std::pair<NodeId, std::uint32_t>{1, 1}));

  // Reply path B -> A over B's own outbound connection.
  rtb.send(2, 1, ping(7));
  while (a.received().empty() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(a.received().size(), 1u);
  EXPECT_EQ(a.received()[0], (std::pair<NodeId, std::uint32_t>{2, 7}));

  rta.stop();
  rtb.stop();
}

// --- end to end: a real (single-process) WanKeeper cluster ---

TEST(ThreadRuntime, HostedClusterElectsRegistersAndServes) {
  rt::ClusterConfig cfg;
  cfg.sites = 2;
  cfg.nodes_per_site = 1;
  cfg.clients_per_site = 1;
  cfg.base_port = 0;  // all sites in-process; no sockets
  rt::ThreadRuntime trt(7);
  rt::HostedCluster cluster(trt, cfg);
  cluster.start();
  ASSERT_TRUE(cluster.wait_ready(20 * kSecond));

  std::atomic<int> done{0};
  std::atomic<bool> all_ok{true};
  for (std::size_t i = 0; i < cluster.local_client_count(); ++i) {
    zk::Client* c = &cluster.client(i);
    const std::string key = "/rt-e2e-" + std::to_string(i);
    trt.call(c->id(), [&, c, key] {
      c->create(key, key, false, false, [&, c, key](const zk::ClientResult& r) {
        if (!r.ok()) all_ok.store(false);
        c->get_data(key, false, [&](const zk::ClientResult& g) {
          if (!g.ok()) all_ok.store(false);
          ++done;
        });
      });
    });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (done.load() < static_cast<int>(cluster.local_client_count()) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(done.load(), static_cast<int>(cluster.local_client_count()));
  EXPECT_TRUE(all_ok.load());

  // Both sites' replicas converge on the same tree once traffic stops.
  const auto conv_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool converged = false;
  while (!converged && std::chrono::steady_clock::now() < conv_deadline) {
    converged = cluster.converged_locally();
    if (!converged) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(converged);

  // Metrics are per-loop-thread on this runtime; the fold must see the zab
  // traffic those creates generated somewhere in the deployment.
  obs::MetricsRegistry all;
  trt.collect_metrics(all);
  EXPECT_GT(all.counter_total("zab.proposals"), 0u);
}

}  // namespace
}  // namespace wankeeper

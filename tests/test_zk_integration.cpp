// End-to-end tests of the ZooKeeper-like substrate: full ensembles in the
// simulator, real clients, leader failures, observers, watches, sessions.
#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/simulator.h"
#include "zk/ensemble.h"

namespace wankeeper {
namespace {

using zk::Ensemble;
using zk::NodeSpec;

struct Fixture {
  sim::Simulator sim{42};
  sim::Network net{sim, sim::LatencyModel(1, 150 * kMicrosecond, 150 * kMicrosecond)};
};

// Single-site 3-node ensemble.
std::vector<NodeSpec> three_local() {
  return {{0, false}, {0, false}, {0, false}};
}

TEST(ZkIntegration, LeaderElectedOnBoot) {
  Fixture f;
  Ensemble ens(f.sim, f.net, three_local());
  ASSERT_TRUE(ens.wait_for_leader());
  // Last-registered voter wins the empty-log election.
  EXPECT_EQ(ens.leader_index(), 2u);
}

TEST(ZkIntegration, CreateAndGet) {
  Fixture f;
  Ensemble ens(f.sim, f.net, three_local());
  ASSERT_TRUE(ens.wait_for_leader());
  auto client = ens.make_client("c0", 0, 0, 1001);

  zk::ClientResult create_res;
  client->create("/foo", "hello", false, false,
                 [&](const zk::ClientResult& r) { create_res = r; });
  f.sim.run_for(2 * kSecond);
  ASSERT_EQ(create_res.rc, store::Rc::kOk);
  EXPECT_EQ(create_res.created_path, "/foo");

  zk::ClientResult get_res;
  client->get_data("/foo", false,
                   [&](const zk::ClientResult& r) { get_res = r; });
  f.sim.run_for(1 * kSecond);
  ASSERT_EQ(get_res.rc, store::Rc::kOk);
  EXPECT_EQ(std::string(get_res.data.begin(), get_res.data.end()), "hello");
  EXPECT_EQ(get_res.stat.version, 0);
}

TEST(ZkIntegration, WritesReplicateToAllNodes) {
  Fixture f;
  Ensemble ens(f.sim, f.net, three_local());
  ASSERT_TRUE(ens.wait_for_leader());
  auto client = ens.make_client("c0", 0, 0, 1001);
  int done = 0;
  for (int i = 0; i < 20; ++i) {
    client->create("/n" + std::to_string(i), "v", false, false,
                   [&](const zk::ClientResult& r) {
                     EXPECT_EQ(r.rc, store::Rc::kOk);
                     ++done;
                   });
  }
  f.sim.run_for(5 * kSecond);
  EXPECT_EQ(done, 20);
  EXPECT_TRUE(ens.converged());
  for (std::size_t i = 0; i < ens.size(); ++i) {
    EXPECT_EQ(ens.server(i).tree().node_count(), 21u) << "node " << i;
  }
}

TEST(ZkIntegration, SequentialCreatesGetIncreasingNames) {
  Fixture f;
  Ensemble ens(f.sim, f.net, three_local());
  ASSERT_TRUE(ens.wait_for_leader());
  auto client = ens.make_client("c0", 0, 0, 1001);
  client->create("/q", "", false, false, {});
  std::vector<std::string> names;
  for (int i = 0; i < 5; ++i) {
    client->create("/q/item-", "", false, true,
                   [&](const zk::ClientResult& r) {
                     ASSERT_EQ(r.rc, store::Rc::kOk);
                     names.push_back(r.created_path);
                   });
  }
  f.sim.run_for(3 * kSecond);
  ASSERT_EQ(names.size(), 5u);
  for (std::size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1], names[i]);
  }
}

TEST(ZkIntegration, SetDataVersionConflictRejected) {
  Fixture f;
  Ensemble ens(f.sim, f.net, three_local());
  ASSERT_TRUE(ens.wait_for_leader());
  auto client = ens.make_client("c0", 0, 0, 1001);
  client->create("/v", "a", false, false, {});
  zk::ClientResult r1, r2;
  client->set_data("/v", "b", 0, [&](const zk::ClientResult& r) { r1 = r; });
  client->set_data("/v", "c", 0, [&](const zk::ClientResult& r) { r2 = r; });
  f.sim.run_for(3 * kSecond);
  EXPECT_EQ(r1.rc, store::Rc::kOk);
  EXPECT_EQ(r1.stat.version, 1);
  EXPECT_EQ(r2.rc, store::Rc::kBadVersion);
}

TEST(ZkIntegration, WatchFiresOnDataChange) {
  Fixture f;
  Ensemble ens(f.sim, f.net, three_local());
  ASSERT_TRUE(ens.wait_for_leader());
  auto watcher = ens.make_client("w", 0, 0, 1001);
  auto writer = ens.make_client("c", 0, 1, 1002);
  writer->create("/w", "x", false, false, {});
  f.sim.run_for(1 * kSecond);

  std::vector<std::pair<std::string, store::WatchEvent>> events;
  watcher->set_watch_handler([&](const std::string& p, store::WatchEvent e) {
    events.emplace_back(p, e);
  });
  watcher->get_data("/w", /*watch=*/true, {});
  f.sim.run_for(1 * kSecond);

  writer->set_data("/w", "y", -1, {});
  f.sim.run_for(1 * kSecond);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].first, "/w");
  EXPECT_EQ(events[0].second, store::WatchEvent::kDataChanged);

  // One-shot: a second write does not re-fire.
  writer->set_data("/w", "z", -1, {});
  f.sim.run_for(1 * kSecond);
  EXPECT_EQ(events.size(), 1u);
}

TEST(ZkIntegration, EphemeralsVanishWhenSessionExpires) {
  Fixture f;
  Ensemble ens(f.sim, f.net, three_local());
  ASSERT_TRUE(ens.wait_for_leader());
  auto client = ens.make_client("c0", 0, 0, 1001);
  client->create("/e", "x", true, false, {});
  f.sim.run_for(1 * kSecond);
  EXPECT_TRUE(ens.server(2).tree().exists("/e"));

  // Kill the client: pings stop, the leader expires the session.
  ens.net().actor(client->id()).crash();
  f.sim.run_for(15 * kSecond);
  EXPECT_FALSE(ens.server(0).tree().exists("/e"));
  EXPECT_FALSE(ens.server(1).tree().exists("/e"));
  EXPECT_TRUE(ens.converged());
}

TEST(ZkIntegration, FollowerServesLocalReads) {
  Fixture f;
  Ensemble ens(f.sim, f.net, three_local());
  ASSERT_TRUE(ens.wait_for_leader());
  auto writer = ens.make_client("cw", 0, 2, 2001);
  writer->create("/r", "data", false, false, {});
  f.sim.run_for(1 * kSecond);

  auto reader = ens.make_client("cr", 0, 0, 2002);  // node 0 is a follower
  zk::ClientResult res;
  reader->get_data("/r", false, [&](const zk::ClientResult& r) { res = r; });
  f.sim.run_for(1 * kSecond);
  EXPECT_EQ(res.rc, store::Rc::kOk);
  EXPECT_EQ(std::string(res.data.begin(), res.data.end()), "data");
}

TEST(ZkIntegration, LeaderCrashElectsNewLeaderAndClusterRecovers) {
  Fixture f;
  Ensemble ens(f.sim, f.net, three_local());
  ASSERT_TRUE(ens.wait_for_leader());
  const std::size_t old_leader = ens.leader_index();
  auto client = ens.make_client("c0", 0, 0, 1001);
  client->create("/a", "1", false, false, {});
  f.sim.run_for(1 * kSecond);

  ens.crash_node(old_leader);
  ASSERT_TRUE(ens.wait_for_leader(20 * kSecond));
  const std::size_t new_leader = ens.leader_index();
  EXPECT_NE(new_leader, old_leader);

  // The surviving majority still accepts writes...
  zk::ClientResult res;
  client->create("/b", "2", false, false,
                 [&](const zk::ClientResult& r) { res = r; });
  f.sim.run_for(15 * kSecond);
  EXPECT_EQ(res.rc, store::Rc::kOk);

  // ...and the old leader catches up after restart.
  ens.restart_node(old_leader);
  f.sim.run_for(10 * kSecond);
  EXPECT_TRUE(ens.server(old_leader).tree().exists("/a"));
  EXPECT_TRUE(ens.server(old_leader).tree().exists("/b"));
  EXPECT_TRUE(ens.converged());
}

TEST(ZkIntegration, MinorityPartitionBlocksWritesMajorityContinues) {
  sim::Simulator sim{7};
  // Three sites, one voter each, to exercise site partitions.
  sim::Network net{sim, sim::LatencyModel(3, 150 * kMicrosecond, 5 * kMillisecond)};
  Ensemble ens(sim, net, {{0, false}, {1, false}, {2, false}});
  ASSERT_TRUE(ens.wait_for_leader());
  EXPECT_EQ(ens.leader_index(), 2u);

  // Cut site 0 (a follower) off.
  net.isolate_site(0, true);
  auto client = ens.make_client("c", 1, 1, 1001);
  zk::ClientResult res;
  client->create("/p", "x", false, false,
                 [&](const zk::ClientResult& r) { res = r; });
  sim.run_for(5 * kSecond);
  EXPECT_EQ(res.rc, store::Rc::kOk);  // quorum of 2 still commits
  EXPECT_FALSE(ens.server(0).tree().exists("/p"));

  // Heal: the isolated follower catches up.
  net.isolate_site(0, false);
  sim.run_for(10 * kSecond);
  EXPECT_TRUE(ens.server(0).tree().exists("/p"));
}

TEST(ZkIntegration, ObserverLearnsCommitsWithoutVoting) {
  sim::Simulator sim{11};
  sim::Network net{sim, sim::LatencyModel(2, 150 * kMicrosecond, 30 * kMillisecond)};
  // 3 voters at site 0, observer at site 1.
  Ensemble ens(sim, net, {{0, false}, {0, false}, {0, false}, {1, true}});
  ASSERT_TRUE(ens.wait_for_leader());

  auto client = ens.make_client("c", 0, 0, 1001);
  client->create("/o", "x", false, false, {});
  sim.run_for(3 * kSecond);
  EXPECT_TRUE(ens.server(3).tree().exists("/o"));

  // Observer-attached client reads locally and writes via forwarding.
  auto oclient = ens.make_client("oc", 1, 3, 1002);
  zk::ClientResult read_res, write_res;
  oclient->get_data("/o", false, [&](const zk::ClientResult& r) { read_res = r; });
  oclient->create("/from-observer", "y", false, false,
                  [&](const zk::ClientResult& r) { write_res = r; });
  sim.run_for(3 * kSecond);
  EXPECT_EQ(read_res.rc, store::Rc::kOk);
  EXPECT_EQ(write_res.rc, store::Rc::kOk);
  EXPECT_TRUE(ens.converged());
}

TEST(ZkIntegration, MultiIsAtomic) {
  Fixture f;
  Ensemble ens(f.sim, f.net, three_local());
  ASSERT_TRUE(ens.wait_for_leader());
  auto client = ens.make_client("c0", 0, 0, 1001);

  std::vector<zk::Op> ops(2);
  ops[0].op = zk::OpCode::kCreate;
  ops[0].path = "/m1";
  ops[1].op = zk::OpCode::kCreate;
  ops[1].path = "/m2";
  zk::ClientResult ok_res;
  client->multi(ops, [&](const zk::ClientResult& r) { ok_res = r; });
  f.sim.run_for(2 * kSecond);
  EXPECT_EQ(ok_res.rc, store::Rc::kOk);
  EXPECT_TRUE(ens.server(0).tree().exists("/m1"));
  EXPECT_TRUE(ens.server(0).tree().exists("/m2"));

  // Second multi fails midway (duplicate /m1): nothing applies.
  std::vector<zk::Op> bad(2);
  bad[0].op = zk::OpCode::kCreate;
  bad[0].path = "/m3";
  bad[1].op = zk::OpCode::kCreate;
  bad[1].path = "/m1";  // exists
  zk::ClientResult bad_res;
  client->multi(bad, [&](const zk::ClientResult& r) { bad_res = r; });
  f.sim.run_for(2 * kSecond);
  EXPECT_EQ(bad_res.rc, store::Rc::kNodeExists);
  EXPECT_FALSE(ens.server(0).tree().exists("/m3"));
}

TEST(ZkIntegration, FifoClientOrderReadsSeeOwnWrites) {
  Fixture f;
  Ensemble ens(f.sim, f.net, three_local());
  ASSERT_TRUE(ens.wait_for_leader());
  auto client = ens.make_client("c0", 0, 0, 1001);
  client->create("/fifo", "0", false, false, {});

  // Pipelined write-then-read must observe the write (same session).
  std::string read_back;
  client->set_data("/fifo", "1", -1, {});
  client->get_data("/fifo", false, [&](const zk::ClientResult& r) {
    read_back = std::string(r.data.begin(), r.data.end());
  });
  f.sim.run_for(2 * kSecond);
  EXPECT_EQ(read_back, "1");
}

}  // namespace
}  // namespace wankeeper

// Scenario engine tests: the declarative hostile-WAN scripts (sim/scenario.h)
// drive the simulated network on schedule, and full deployments driven
// through them stay safe — token audit, convergence, and the client-visible
// consistency checker all come back clean (run_scenario_sweep).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "sim/scenario.h"
#include "wankeeper/sweep_harness.h"

namespace wankeeper {
namespace {

// --------------------------------------------------------- engine mechanics

TEST(Scenario, FlapCutsAndHealsOnSchedule) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(3, 100, 1000));
  sim::Scenario sc("flap-test", 3);
  sc.flap_link(/*first_down=*/1 * kSecond, 0, 1, /*down_for=*/2 * kSecond,
               /*up_for=*/3 * kSecond, /*cycles=*/2);
  sc.install(net, {});

  auto cut_at = [&](Time t, bool want) {
    sim.run_until(t);
    EXPECT_EQ(net.partitioned(0, 1), want) << "at " << t;
    EXPECT_EQ(net.partitioned(1, 0), want) << "flap is symmetric, at " << t;
  };
  cut_at(500 * kMillisecond, false);
  cut_at(1500 * kMillisecond, true);   // cycle 1 down at 1s
  cut_at(3500 * kMillisecond, false);  // healed at 3s
  cut_at(6500 * kMillisecond, true);   // cycle 2 down at 6s
  cut_at(8500 * kMillisecond, false);  // healed at 8s, stays up
  EXPECT_GE(sc.horizon(), 8 * kSecond);
}

TEST(Scenario, OneWayPartitionEventCutsOneDirection) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(3, 100, 1000));
  sim::Scenario sc("asym-test", 3);
  sc.partition_oneway(/*when=*/1 * kSecond, 0, 2, /*cut_for=*/2 * kSecond);
  sc.install(net, {});
  sim.run_until(1500 * kMillisecond);
  EXPECT_TRUE(net.partitioned(0, 2));
  EXPECT_FALSE(net.partitioned(2, 0));
  sim.run_until(3500 * kMillisecond);
  EXPECT_FALSE(net.partitioned(0, 2));
}

TEST(Scenario, SiteLeaveInvokesHooksAndFallsBackToIsolation) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(3, 100, 1000));
  sim::Scenario sc("leave-test", 3);
  sc.site_leave(/*when=*/1 * kSecond, 2, /*gone_for=*/2 * kSecond);

  std::vector<std::pair<const char*, SiteId>> calls;
  sim::ScenarioHooks hooks;
  hooks.site_down = [&](SiteId s) { calls.emplace_back("down", s); };
  hooks.site_up = [&](SiteId s) { calls.emplace_back("up", s); };
  sc.install(net, hooks);
  sim.run_until(5 * kSecond);
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_STREQ(calls[0].first, "down");
  EXPECT_EQ(calls[0].second, 2);
  EXPECT_STREQ(calls[1].first, "up");
  EXPECT_EQ(calls[1].second, 2);

  // Without hooks the engine falls back to cutting every link of the site.
  sim::Simulator sim2;
  sim::Network net2(sim2, sim::LatencyModel(3, 100, 1000));
  sim::Scenario sc2("leave-test2", 3);
  sc2.site_leave(1 * kSecond, 2, 2 * kSecond);
  sc2.install(net2, {});
  sim2.run_until(1500 * kMillisecond);
  EXPECT_TRUE(net2.partitioned(0, 2));
  EXPECT_TRUE(net2.partitioned(2, 1));
  sim2.run_until(3500 * kMillisecond);
  EXPECT_FALSE(net2.partitioned(0, 2));
}

TEST(Scenario, LoadFactorShiftsPerSiteLoad) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(3, 100, 1000));
  sim::Scenario sc("load-test", 3);
  sc.load_factor(/*when=*/1 * kSecond, /*site=*/1, /*factor=*/2.5);
  sc.load_factor(/*when=*/3 * kSecond, /*site=*/1, /*factor=*/1.0);
  sc.install(net, {});
  EXPECT_DOUBLE_EQ(sc.current_load(1), 1.0);
  sim.run_until(2 * kSecond);
  EXPECT_DOUBLE_EQ(sc.current_load(1), 2.5);
  EXPECT_DOUBLE_EQ(sc.current_load(0), 1.0);  // other sites untouched
  sim.run_until(4 * kSecond);
  EXPECT_DOUBLE_EQ(sc.current_load(1), 1.0);
}

TEST(Scenario, ScriptedLatencyChangeRoutesTraffic) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(3, 100, 1000, /*jitter=*/0.0));
  sim::Scenario sc("route-test", 3);
  sc.set_link_latency(/*when=*/1 * kSecond, 0, 1, /*one_way=*/9 * kMillisecond);
  sc.install(net, {});
  sim.run_until(2 * kSecond);
  EXPECT_EQ(net.latency().base(0, 1), 9 * kMillisecond);
  EXPECT_EQ(net.latency().base(1, 0), 9 * kMillisecond);
  EXPECT_EQ(net.latency().base(0, 2), 1000);
}

TEST(Scenario, LibraryNamesResolveAndUnknownThrows) {
  for (const auto& name : sim::scenario_names()) {
    const sim::Scenario sc = sim::make_scenario(name);
    EXPECT_EQ(sc.name(), name);
    EXPECT_GE(sc.sites(), 3u);
    if (sc.event_count() > 0) {
      EXPECT_GT(sc.horizon(), 0);
    }
    EXPECT_NE(sc.to_script().find(name), std::string::npos);
  }
  EXPECT_THROW(sim::make_scenario("no-such-scenario"), std::invalid_argument);
}

TEST(Scenario, ScriptListsEveryEventInTimeOrder) {
  const sim::Scenario sc = sim::make_scenario("hostile5");
  const std::string script = sc.to_script();
  // The acceptance scenario carries every event class the engine supports.
  for (const char* needle :
       {"set_latency", "partition 1<->3", "degrade", "partition_oneway",
        "load_factor", "site_leave", "site_rejoin", "heal"}) {
    EXPECT_NE(script.find(needle), std::string::npos) << needle << "\n" << script;
  }
}

// ------------------------------------------------- full-deployment sweeps

using SweepParam = std::tuple<std::uint64_t, bool>;

std::string sweep_param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return "seed" + std::to_string(std::get<0>(info.param)) +
         (std::get<1>(info.param) ? "_batched" : "_unbatched");
}

class HostileScenarioSweep : public ::testing::TestWithParam<SweepParam> {};

class HostileScenarioSweepSlow : public HostileScenarioSweep {
 protected:
  void SetUp() override {
    if (std::getenv("WK_SLOW_TESTS") == nullptr) {
      GTEST_SKIP() << "set WK_SLOW_TESTS=1 (or run ctest -C slow -L slow)";
    }
  }
};

void expect_clean(const wk::SweepResult& r, const char* scenario) {
  EXPECT_TRUE(r.audit_clean) << scenario << ": " << r.first_violation;
  EXPECT_TRUE(r.converged) << scenario << ": sites diverged";
  EXPECT_TRUE(r.consistency_clean)
      << scenario << ": " << r.consistency_violations
      << " consistency violation(s)\n" << r.first_consistency_witness;
  EXPECT_EQ(r.duplicate_mints, 0u)
      << scenario << ": same gseq minted twice\n" << r.fork_evidence;
  EXPECT_FALSE(r.dueling_hubs)
      << scenario << ": overlapping hub reigns\n" << r.fork_evidence;
  EXPECT_GT(r.completed_total, 100u) << scenario << ": load barely ran";
}

// The acceptance scenario: heterogeneous 5-site matrix, a flapping link, a
// one-way partition, a diurnal load shift, and a whole-site leave/rejoin.
TEST_P(HostileScenarioSweep, Hostile5KeepsClientContract) {
  const auto [seed, batching] = GetParam();
  expect_clean(wk::run_scenario_sweep(seed, batching, "hostile5"), "hostile5");
}

TEST_P(HostileScenarioSweep, FlapAndDiurnalKeepClientContract) {
  const auto [seed, batching] = GetParam();
  expect_clean(wk::run_scenario_sweep(seed, batching, "flap3"), "flap3");
  expect_clean(wk::run_scenario_sweep(seed, batching, "diurnal5"), "diurnal5");
}

TEST_P(HostileScenarioSweepSlow, Hostile5KeepsClientContract) {
  const auto [seed, batching] = GetParam();
  expect_clean(wk::run_scenario_sweep(seed, batching, "hostile5"), "hostile5");
}

INSTANTIATE_TEST_SUITE_P(Seeds, HostileScenarioSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Bool()),
                         sweep_param_name);

// The CI scenario-sweep job covers seeds 1-40 via tools/seed_hunt; the slow
// tier keeps a disjoint window so the matrices compound instead of overlap.
INSTANTIATE_TEST_SUITE_P(WideSeeds, HostileScenarioSweepSlow,
                         ::testing::Combine(::testing::Range<std::uint64_t>(41,
                                                                            61),
                                            ::testing::Bool()),
                         sweep_param_name);

// ------------------------------------------------- hub handover matrix

// asym3 aims a one-way partition at the hub: the cut-off site promotes
// itself (it cannot distinguish a dead hub from an asymmetric cut). Before
// hub handover catch-up this forked — the new hub started serving without
// the fan-outs it missed and re-minted the old hub's sequence slots. With
// RECONCILING in place (DESIGN.md §5d) the promoted hub pulls itself level
// with the majority frontier and resumes the counter past the highest
// observed mint, so the exact run that used to fork (seed 5) must now be
// clean end to end: no client-visible violations, no duplicate mints, no
// overlapping hub reigns, and nothing worth a post-mortem dump. The
// checker's *detection* coverage, previously pinned here on the live fork,
// is pinned by the injected-corruption tests in tests/test_consistency.cpp.
TEST(Scenario, Asym3NeverForks) {
  const wk::SweepResult r = wk::run_scenario_sweep(5, false, "asym3");
  expect_clean(r, "asym3");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.fork_evidence.empty()) << r.fork_evidence;
  EXPECT_TRUE(r.dump_reasons.empty())
      << "clean asym3 requested a dump: " << r.dump_reasons.front();
  EXPECT_TRUE(r.post_mortem_json.empty());
}

// The adversarial handover matrix: every scenario that forces (or flaps
// across) a hub promotion, swept over seeds and batching modes. The CI
// seed-hunt job extends the same family to seeds 1-40 nightly.
using HandoverParam = std::tuple<const char*, std::uint64_t, bool>;

std::string handover_param_name(
    const ::testing::TestParamInfo<HandoverParam>& info) {
  return std::string(std::get<0>(info.param)) + "_seed" +
         std::to_string(std::get<1>(info.param)) +
         (std::get<2>(info.param) ? "_batched" : "_unbatched");
}

class HandoverScenarioSweep : public ::testing::TestWithParam<HandoverParam> {};

class HandoverScenarioSweepSlow : public HandoverScenarioSweep {
 protected:
  void SetUp() override {
    if (std::getenv("WK_SLOW_TESTS") == nullptr) {
      GTEST_SKIP() << "set WK_SLOW_TESTS=1 (or run ctest -C slow -L slow)";
    }
  }
};

TEST_P(HandoverScenarioSweep, PromotedHubNeverForksHistory) {
  const auto [scenario, seed, batching] = GetParam();
  expect_clean(wk::run_scenario_sweep(seed, batching, scenario), scenario);
}

TEST_P(HandoverScenarioSweepSlow, PromotedHubNeverForksHistory) {
  const auto [scenario, seed, batching] = GetParam();
  expect_clean(wk::run_scenario_sweep(seed, batching, scenario), scenario);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, HandoverScenarioSweep,
    ::testing::Combine(::testing::Values("asym3", "asym3_fanout",
                                         "asym3_double", "asym3_flap"),
                       ::testing::Values(1, 2, 3), ::testing::Bool()),
    handover_param_name);

// Seeds 1-40 run nightly via tools/seed_hunt; the slow tier keeps a
// disjoint window so the matrices compound instead of overlap.
INSTANTIATE_TEST_SUITE_P(
    WideSeeds, HandoverScenarioSweepSlow,
    ::testing::Combine(::testing::Values("asym3", "asym3_fanout",
                                         "asym3_double", "asym3_flap"),
                       ::testing::Range<std::uint64_t>(41, 61),
                       ::testing::Bool()),
    handover_param_name);

// The counter-resume contract, pinned straight off the flight recorder.
// Two regime changes: the hub site's whole-site crash promotes site 1
// under a fresh epoch, then a zab leader change *inside* the new hub site
// re-enters an epoch that already minted — the relected leader must resume
// the counter after the highest mint it applied, not restart at 1 (the
// became_leader reset bug this PR fixes). Every (epoch, counter) slot is
// minted exactly once across the whole run, even though two different zab
// leaders minted under the same L2 epoch.
TEST(Scenario, PromotedHubResumesGseqAfterHighestMint) {
  wk::LoadedDeployment d(11);
  ASSERT_TRUE(d.deploy.wait_ready());
  d.start_load();
  d.sim.run_for(8 * kSecond);

  d.deploy.crash_site(0);         // hub site gone: site 1 promotes itself
  d.sim.run_for(12 * kSecond);    // reconcile completes, epoch 2 mints flow

  wk::Broker* hub = d.deploy.site_leader(1);
  ASSERT_NE(hub, nullptr);
  ASSERT_TRUE(hub->l2_role()) << "site 1 should hold the hub role by now";
  d.deploy.crash_site_leader(1);  // new zab leader, same L2 epoch
  d.sim.run_for(12 * kSecond);

  d.deploy.restart_site(0);
  d.sim.run_for(10 * kSecond);
  d.stop = true;
  d.sim.run_for(25 * kSecond);

  wk::SweepResult r;
  wk::finish_sweep(d, &r);
  EXPECT_TRUE(r.ok()) << r.first_violation << r.first_consistency_witness
                      << "\n" << r.fork_evidence;

  std::map<std::uint64_t, int> mints_per_gseq;
  std::map<std::uint64_t, std::set<std::string>> actors_per_epoch;
  for (const auto& ev :
       d.sim.obs().events.merged(obs::EventKind::kGseqMint)) {
    ++mints_per_gseq[ev.a];
    actors_per_epoch[ev.b].insert(ev.actor);
  }
  for (const auto& [gseq, n] : mints_per_gseq) {
    EXPECT_EQ(n, 1) << "gseq " << gseq << " (epoch " << wk::gseq_epoch(gseq)
                    << ", counter " << wk::gseq_counter(gseq) << ") minted "
                    << n << " times";
  }
  ASSERT_GE(actors_per_epoch.size(), 2u) << "promotion never happened";
  // The leader change re-entered an already-minted epoch: at least one
  // epoch carries mints from two distinct zab leaders, none duplicated.
  bool some_epoch_shared = false;
  for (const auto& [epoch, actors] : actors_per_epoch) {
    if (actors.size() >= 2) some_epoch_shared = true;
  }
  EXPECT_TRUE(some_epoch_shared)
      << "expected two zab reigns minting under one L2 epoch";
}

}  // namespace
}  // namespace wankeeper

// Scenario engine tests: the declarative hostile-WAN scripts (sim/scenario.h)
// drive the simulated network on schedule, and full deployments driven
// through them stay safe — token audit, convergence, and the client-visible
// consistency checker all come back clean (run_scenario_sweep).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "sim/scenario.h"
#include "wankeeper/sweep_harness.h"

namespace wankeeper {
namespace {

// --------------------------------------------------------- engine mechanics

TEST(Scenario, FlapCutsAndHealsOnSchedule) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(3, 100, 1000));
  sim::Scenario sc("flap-test", 3);
  sc.flap_link(/*first_down=*/1 * kSecond, 0, 1, /*down_for=*/2 * kSecond,
               /*up_for=*/3 * kSecond, /*cycles=*/2);
  sc.install(net, {});

  auto cut_at = [&](Time t, bool want) {
    sim.run_until(t);
    EXPECT_EQ(net.partitioned(0, 1), want) << "at " << t;
    EXPECT_EQ(net.partitioned(1, 0), want) << "flap is symmetric, at " << t;
  };
  cut_at(500 * kMillisecond, false);
  cut_at(1500 * kMillisecond, true);   // cycle 1 down at 1s
  cut_at(3500 * kMillisecond, false);  // healed at 3s
  cut_at(6500 * kMillisecond, true);   // cycle 2 down at 6s
  cut_at(8500 * kMillisecond, false);  // healed at 8s, stays up
  EXPECT_GE(sc.horizon(), 8 * kSecond);
}

TEST(Scenario, OneWayPartitionEventCutsOneDirection) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(3, 100, 1000));
  sim::Scenario sc("asym-test", 3);
  sc.partition_oneway(/*when=*/1 * kSecond, 0, 2, /*cut_for=*/2 * kSecond);
  sc.install(net, {});
  sim.run_until(1500 * kMillisecond);
  EXPECT_TRUE(net.partitioned(0, 2));
  EXPECT_FALSE(net.partitioned(2, 0));
  sim.run_until(3500 * kMillisecond);
  EXPECT_FALSE(net.partitioned(0, 2));
}

TEST(Scenario, SiteLeaveInvokesHooksAndFallsBackToIsolation) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(3, 100, 1000));
  sim::Scenario sc("leave-test", 3);
  sc.site_leave(/*when=*/1 * kSecond, 2, /*gone_for=*/2 * kSecond);

  std::vector<std::pair<const char*, SiteId>> calls;
  sim::ScenarioHooks hooks;
  hooks.site_down = [&](SiteId s) { calls.emplace_back("down", s); };
  hooks.site_up = [&](SiteId s) { calls.emplace_back("up", s); };
  sc.install(net, hooks);
  sim.run_until(5 * kSecond);
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_STREQ(calls[0].first, "down");
  EXPECT_EQ(calls[0].second, 2);
  EXPECT_STREQ(calls[1].first, "up");
  EXPECT_EQ(calls[1].second, 2);

  // Without hooks the engine falls back to cutting every link of the site.
  sim::Simulator sim2;
  sim::Network net2(sim2, sim::LatencyModel(3, 100, 1000));
  sim::Scenario sc2("leave-test2", 3);
  sc2.site_leave(1 * kSecond, 2, 2 * kSecond);
  sc2.install(net2, {});
  sim2.run_until(1500 * kMillisecond);
  EXPECT_TRUE(net2.partitioned(0, 2));
  EXPECT_TRUE(net2.partitioned(2, 1));
  sim2.run_until(3500 * kMillisecond);
  EXPECT_FALSE(net2.partitioned(0, 2));
}

TEST(Scenario, LoadFactorShiftsPerSiteLoad) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(3, 100, 1000));
  sim::Scenario sc("load-test", 3);
  sc.load_factor(/*when=*/1 * kSecond, /*site=*/1, /*factor=*/2.5);
  sc.load_factor(/*when=*/3 * kSecond, /*site=*/1, /*factor=*/1.0);
  sc.install(net, {});
  EXPECT_DOUBLE_EQ(sc.current_load(1), 1.0);
  sim.run_until(2 * kSecond);
  EXPECT_DOUBLE_EQ(sc.current_load(1), 2.5);
  EXPECT_DOUBLE_EQ(sc.current_load(0), 1.0);  // other sites untouched
  sim.run_until(4 * kSecond);
  EXPECT_DOUBLE_EQ(sc.current_load(1), 1.0);
}

TEST(Scenario, ScriptedLatencyChangeRoutesTraffic) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(3, 100, 1000, /*jitter=*/0.0));
  sim::Scenario sc("route-test", 3);
  sc.set_link_latency(/*when=*/1 * kSecond, 0, 1, /*one_way=*/9 * kMillisecond);
  sc.install(net, {});
  sim.run_until(2 * kSecond);
  EXPECT_EQ(net.latency().base(0, 1), 9 * kMillisecond);
  EXPECT_EQ(net.latency().base(1, 0), 9 * kMillisecond);
  EXPECT_EQ(net.latency().base(0, 2), 1000);
}

TEST(Scenario, LibraryNamesResolveAndUnknownThrows) {
  for (const auto& name : sim::scenario_names()) {
    const sim::Scenario sc = sim::make_scenario(name);
    EXPECT_EQ(sc.name(), name);
    EXPECT_GE(sc.sites(), 3u);
    if (sc.event_count() > 0) EXPECT_GT(sc.horizon(), 0);
    EXPECT_NE(sc.to_script().find(name), std::string::npos);
  }
  EXPECT_THROW(sim::make_scenario("no-such-scenario"), std::invalid_argument);
}

TEST(Scenario, ScriptListsEveryEventInTimeOrder) {
  const sim::Scenario sc = sim::make_scenario("hostile5");
  const std::string script = sc.to_script();
  // The acceptance scenario carries every event class the engine supports.
  for (const char* needle :
       {"set_latency", "partition 1<->3", "degrade", "partition_oneway",
        "load_factor", "site_leave", "site_rejoin", "heal"}) {
    EXPECT_NE(script.find(needle), std::string::npos) << needle << "\n" << script;
  }
}

// ------------------------------------------------- full-deployment sweeps

using SweepParam = std::tuple<std::uint64_t, bool>;

std::string sweep_param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return "seed" + std::to_string(std::get<0>(info.param)) +
         (std::get<1>(info.param) ? "_batched" : "_unbatched");
}

class HostileScenarioSweep : public ::testing::TestWithParam<SweepParam> {};

class HostileScenarioSweepSlow : public HostileScenarioSweep {
 protected:
  void SetUp() override {
    if (std::getenv("WK_SLOW_TESTS") == nullptr) {
      GTEST_SKIP() << "set WK_SLOW_TESTS=1 (or run ctest -C slow -L slow)";
    }
  }
};

void expect_clean(const wk::SweepResult& r, const char* scenario) {
  EXPECT_TRUE(r.audit_clean) << scenario << ": " << r.first_violation;
  EXPECT_TRUE(r.converged) << scenario << ": sites diverged";
  EXPECT_TRUE(r.consistency_clean)
      << scenario << ": " << r.consistency_violations
      << " consistency violation(s)\n" << r.first_consistency_witness;
  EXPECT_GT(r.completed_total, 100u) << scenario << ": load barely ran";
}

// The acceptance scenario: heterogeneous 5-site matrix, a flapping link, a
// one-way partition, a diurnal load shift, and a whole-site leave/rejoin.
TEST_P(HostileScenarioSweep, Hostile5KeepsClientContract) {
  const auto [seed, batching] = GetParam();
  expect_clean(wk::run_scenario_sweep(seed, batching, "hostile5"), "hostile5");
}

TEST_P(HostileScenarioSweep, FlapAndDiurnalKeepClientContract) {
  const auto [seed, batching] = GetParam();
  expect_clean(wk::run_scenario_sweep(seed, batching, "flap3"), "flap3");
  expect_clean(wk::run_scenario_sweep(seed, batching, "diurnal5"), "diurnal5");
}

TEST_P(HostileScenarioSweepSlow, Hostile5KeepsClientContract) {
  const auto [seed, batching] = GetParam();
  expect_clean(wk::run_scenario_sweep(seed, batching, "hostile5"), "hostile5");
}

INSTANTIATE_TEST_SUITE_P(Seeds, HostileScenarioSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Bool()),
                         sweep_param_name);

// The CI scenario-sweep job covers seeds 1-40 via tools/seed_hunt; the slow
// tier keeps a disjoint window so the matrices compound instead of overlap.
INSTANTIATE_TEST_SUITE_P(WideSeeds, HostileScenarioSweepSlow,
                         ::testing::Combine(::testing::Range<std::uint64_t>(41,
                                                                            61),
                                            ::testing::Bool()),
                         sweep_param_name);

// asym3 aims a one-way partition at the hub: the cut-off site promotes
// itself (it cannot distinguish a dead hub from an asymmetric cut), and the
// new hub starts serving before recovering fan-outs it missed during the
// cut — a known hub-handover hole (ROADMAP: "Hub handover catch-up"). This
// test pins the detection contract: replicas still converge, and if the
// run forked in any client-visible way, the consistency checker must say
// so. When the catch-up protocol lands, a fully clean run also passes.
TEST(Scenario, Asym3ForkIsDetectedByConsistencyChecker) {
  const wk::SweepResult r = wk::run_scenario_sweep(5, false, "asym3");
  EXPECT_TRUE(r.converged) << "replicas must converge once links heal";
  EXPECT_GT(r.completed_total, 100u);
  if (!r.ok()) {
    EXPECT_FALSE(r.consistency_clean)
        << "a failing asym3 run must be caught by the client-visible "
           "checker, not pass silently";
    EXPECT_GT(r.consistency_violations, 0u);
    EXPECT_FALSE(r.first_consistency_witness.empty());
  }
}

// The post-mortem contract for the same hole: a failing asym3 run must
// auto-produce a merged flight-recorder dump from which the split-brain
// fork is reconstructable — the promotion, both hubs' gseq mints, and the
// distilled forensics showing the two hubs claiming the same sequence
// slots (same low-40-bit counter, each under its own epoch).
TEST(Scenario, Asym3FailureDumpReconstructsTheSplitBrainFork) {
  const wk::SweepResult r = wk::run_scenario_sweep(5, false, "asym3");
  if (r.ok()) {
    GTEST_SKIP() << "hub handover catch-up landed; asym3 no longer forks";
  }
  ASSERT_FALSE(r.dump_reasons.empty());
  EXPECT_NE(std::find(r.dump_reasons.begin(), r.dump_reasons.end(),
                      "consistency violation"),
            r.dump_reasons.end());

  // The dump itself carries the raw story: the self-promotion and mints
  // from both hubs under their respective epochs.
  ASSERT_FALSE(r.post_mortem_json.empty());
  EXPECT_NE(r.post_mortem_json.find("\"kind\": \"hub_promote\""),
            std::string::npos);
  EXPECT_NE(r.post_mortem_json.find("\"kind\": \"gseq_mint\""),
            std::string::npos);
  EXPECT_NE(r.post_mortem_json.find("\"kind\": \"violation\""),
            std::string::npos);

  // The distilled forensics name both hubs minting the same gseq slot.
  ASSERT_FALSE(r.fork_evidence.empty()) << "no split-brain evidence distilled";
  EXPECT_NE(r.fork_evidence.find("dueling hubs"), std::string::npos)
      << r.fork_evidence;
  EXPECT_NE(r.fork_evidence.find("claimed by both hubs"), std::string::npos)
      << r.fork_evidence;
}

}  // namespace
}  // namespace wankeeper

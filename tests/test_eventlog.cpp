// Flight-recorder tests: the structured event ring (obs/event_log.h), the
// ownership analytics and split-brain forensics distilled from it
// (obs/ownership.h), the Perfetto exporter (obs/perfetto.h), the fault-
// observer wiring and event-loop profiler in sim::Simulator, and the
// post-mortem dump discipline of the sweep harness.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/ownership.h"
#include "obs/perfetto.h"
#include "sim/simulator.h"

namespace wankeeper {
namespace {

using obs::Event;
using obs::EventKind;
using obs::EventLog;

// ------------------------------------------------------------------ ring

TEST(EventLog, RingWrapsAndAccountsForDrops) {
  EventLog log;
  log.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    log.record(/*t=*/i * 100, /*site=*/0, EventKind::kGseqMint, "hub",
               /*detail=*/"", /*key=*/"", /*a=*/static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(log.recorded(0), 10u);
  EXPECT_EQ(log.dropped(0), 6u);
  EXPECT_EQ(log.size(), 4u);

  // The survivors are exactly the newest four, still in time order.
  const auto merged = log.merged();
  ASSERT_EQ(merged.size(), 4u);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].a, 6 + i);
  }
}

TEST(EventLog, PerSiteRingsIsolateChattySites) {
  EventLog log;
  log.set_capacity(4);
  // Site 0 floods; site 1 records one early event that must survive.
  log.record(0, 1, EventKind::kLeaderElected, "quiet");
  for (int i = 0; i < 100; ++i) {
    log.record(i, 0, EventKind::kGseqMint, "chatty");
  }
  EXPECT_EQ(log.dropped(1), 0u);
  const auto merged = log.merged();
  ASSERT_FALSE(merged.empty());
  EXPECT_EQ(merged.front().site, 1);
  EXPECT_EQ(merged.front().kind, EventKind::kLeaderElected);
}

TEST(EventLog, MergeIsTimeSortedWithSeqBreakingTies) {
  EventLog log;
  // Interleave three sites, including equal timestamps: record order (the
  // global seq) must decide ties, making the merge byte-deterministic.
  log.record(200, 2, EventKind::kTokenGrant, "c");
  log.record(100, 0, EventKind::kTokenGrant, "a");
  log.record(200, 0, EventKind::kTokenGrant, "d");
  log.record(100, 1, EventKind::kTokenGrant, "b");
  const auto merged = log.merged();
  ASSERT_EQ(merged.size(), 4u);
  std::vector<std::string> actors;
  for (const Event& ev : merged) actors.push_back(ev.actor);
  // t=100: "a" (seq 2) before "b" (seq 4); t=200: "c" (seq 1) before "d".
  EXPECT_EQ(actors, (std::vector<std::string>{"a", "b", "c", "d"}));
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].t, merged[i].t);
    if (merged[i - 1].t == merged[i].t) {
      EXPECT_LT(merged[i - 1].seq, merged[i].seq);
    }
  }
}

TEST(EventLog, DumpReasonsAccumulateAndJsonCarriesThem) {
  EventLog log;
  log.record(5, 0, EventKind::kViolation, "checker", "stale read", "/k");
  EXPECT_FALSE(log.dump_requested());
  log.request_dump("consistency violation");
  log.request_dump("sites did not converge");
  ASSERT_TRUE(log.dump_requested());
  ASSERT_EQ(log.dump_reasons().size(), 2u);

  const std::string json = log.to_json();
  EXPECT_NE(json.find("consistency violation"), std::string::npos);
  EXPECT_NE(json.find("sites did not converge"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"violation\""), std::string::npos);
  EXPECT_NE(json.find("stale read"), std::string::npos);

  log.clear();
  EXPECT_FALSE(log.dump_requested());
  EXPECT_EQ(log.size(), 0u);
}

TEST(EventLog, DisabledLogRecordsNothing) {
  EventLog log;
  log.set_enabled(false);
  log.record(1, 0, EventKind::kTokenGrant, "x");
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.recorded(0), 0u);
}

// ----------------------------------------------------- ownership analytics

// Shorthand: build a grant/recall/return history for one key.
void grant(EventLog& log, Time t, const std::string& key, SiteId to) {
  log.record(t, 0, EventKind::kTokenGrant, "hub", "", key,
             static_cast<std::uint64_t>(to));
}

TEST(Ownership, TimelineMigrationsAndRecallRtt) {
  EventLog log;
  grant(log, 1 * kSecond, "/hot", 1);
  // The grantee's ring carries the same transition; it must collapse.
  log.record(1 * kSecond + 10, 1, EventKind::kTokenGrant, "s1-leader", "",
             "/hot", 1);
  log.record(5 * kSecond, 0, EventKind::kTokenRecall, "hub", "", "/hot", 1);
  log.record(5 * kSecond + 30 * kMillisecond, 0, EventKind::kTokenReturn,
             "hub", "", "/hot", 1);
  grant(log, 8 * kSecond, "/hot", 2);

  const auto own = obs::OwnershipAnalytics::from_events(log.merged());
  const auto* rec = own.find("/hot");
  ASSERT_NE(rec, nullptr);
  // hub -> site1 -> hub -> site2: three owner changes. The duplicate grant
  // record still counts as a grant but opens no new interval.
  EXPECT_EQ(rec->migrations, 3u);
  EXPECT_EQ(rec->grants, 3u);
  EXPECT_EQ(rec->returns, 1u);
  EXPECT_EQ(rec->recalls, 1u);
  ASSERT_EQ(rec->timeline.size(), 3u);
  EXPECT_EQ(rec->timeline[0].owner, 1);
  EXPECT_EQ(rec->timeline[1].owner, kNoSite);
  EXPECT_EQ(rec->timeline[2].owner, 2);
  EXPECT_TRUE(rec->timeline[2].open());
  ASSERT_EQ(rec->recall_rtt_us.count(), 1u);
  EXPECT_EQ(own.recall_rtt().percentile_us(0.5), 30 * kMillisecond);

  const std::string table = own.table(3, 10 * kSecond);
  EXPECT_NE(table.find("/hot"), std::string::npos);
  EXPECT_NE(table.find("site 2"), std::string::npos);
}

TEST(Ownership, UntouchedRecordsStayOutOfTheTables) {
  EventLog log;
  log.record(1, 0, EventKind::kGseqMint, "hub", "", "", 42);
  const auto own = obs::OwnershipAnalytics::from_events(log.merged());
  EXPECT_TRUE(own.records().empty());
  EXPECT_EQ(own.total_migrations(), 0u);
}

// --------------------------------------------------- split-brain forensics

void mint(EventLog& log, Time t, SiteId site, std::uint64_t epoch,
          std::uint64_t counter) {
  log.record(t, site, EventKind::kGseqMint, "hub", "", "",
             (epoch << 40) | counter, epoch);
}

TEST(Forensics, DuplicateMintsDetectedAcrossSites) {
  EventLog log;
  mint(log, 100, 0, 1, 7);
  mint(log, 200, 1, 1, 7);  // same epoch, same counter: the worst case
  mint(log, 300, 0, 1, 8);
  const auto forks = obs::find_duplicate_mints(log.merged());
  ASSERT_EQ(forks.size(), 1u);
  EXPECT_EQ(forks[0].gseq, (1ULL << 40) | 7);
  EXPECT_EQ(forks[0].sites, (std::vector<SiteId>{0, 1}));
  const std::string text = obs::format_fork_evidence(forks);
  EXPECT_NE(text.find("minted by more than one hub"), std::string::npos);
  EXPECT_NE(text.find("counter 7"), std::string::npos);

  EventLog clean;
  mint(clean, 100, 0, 1, 7);
  mint(clean, 200, 0, 1, 8);
  EXPECT_TRUE(obs::find_duplicate_mints(clean.merged()).empty());
}

TEST(Forensics, DuelingHubsDetectedByOverlappingReigns) {
  // The asym3 shape: site 0 reigns under epoch 1; site 1 self-promotes to
  // epoch 2 at t=25 and mints while site 0 is still hub; site 0 only
  // concedes (adopts hub 1) at t=40. Both stamp counters 1 and 2.
  EventLog log;
  mint(log, 10, 0, 1, 1);
  mint(log, 20, 0, 1, 2);
  mint(log, 30, 0, 1, 3);
  mint(log, 25, 1, 2, 1);
  mint(log, 35, 1, 2, 2);
  log.record(40, 0, EventKind::kL2Adopt, "s0-leader", "", "", /*a=*/1,
             /*b=*/2);
  const auto duel = obs::find_dueling_hubs(log.merged());
  ASSERT_TRUE(duel.found);
  EXPECT_EQ(duel.hub_a, 0);
  EXPECT_EQ(duel.hub_b, 1);
  EXPECT_EQ(duel.epoch_a, 1u);
  EXPECT_EQ(duel.epoch_b, 2u);
  EXPECT_EQ(duel.overlap_begin, 25);
  EXPECT_EQ(duel.overlap_end, 40);  // reign ends at concession, not last mint
  EXPECT_EQ(duel.shared_counters, 2u);
  EXPECT_EQ(duel.example_counter, 1u);
  EXPECT_EQ(duel.example_gseq_a, (1ULL << 40) | 1);
  EXPECT_EQ(duel.example_gseq_b, (2ULL << 40) | 1);
  const std::string text = obs::format_hub_duel(duel);
  EXPECT_NE(text.find("dueling hubs"), std::string::npos);
  EXPECT_NE(text.find("claimed by both hubs"), std::string::npos);
}

TEST(Forensics, CleanHandoverIsNotADuel) {
  // Site 0 concedes before site 1 ever mints: no overlap, no fork.
  EventLog log;
  mint(log, 10, 0, 1, 1);
  mint(log, 20, 0, 1, 2);
  log.record(30, 0, EventKind::kL2Adopt, "s0-leader", "", "", /*a=*/1,
             /*b=*/2);
  mint(log, 40, 1, 2, 1);
  mint(log, 50, 1, 2, 2);
  EXPECT_FALSE(obs::find_dueling_hubs(log.merged()).found);
  // A single healthy hub is trivially not a duel either.
  EventLog solo;
  mint(solo, 10, 0, 1, 1);
  mint(solo, 20, 0, 1, 2);
  EXPECT_FALSE(obs::find_dueling_hubs(solo.merged()).found);
}

// ------------------------------------------------------- perfetto export

TEST(Perfetto, ExportCarriesSpansAndInstantEvents) {
  obs::Tracer tracer;
  const obs::TraceId t1 = tracer.begin("set /k", /*origin_site=*/1, 1000);
  tracer.open(t1, obs::SpanKind::kWanHop, 1, "s1-leader", 1000);
  tracer.close(t1, obs::SpanKind::kWanHop, 1, 31000);
  tracer.end(t1, 40000);

  EventLog log;
  log.record(2000, 0, EventKind::kGseqMint, "hub", "", "", (1ULL << 40) | 1);

  const std::string json = obs::perfetto_trace_json(tracer, log);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);  // complete span
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);  // instant event
  EXPECT_NE(json.find("wan_hop"), std::string::npos);
  EXPECT_NE(json.find("gseq_mint"), std::string::npos);
  // Valid JSON object shape (cheap smoke: balanced braces at the ends).
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

// ----------------------------------------------- simulator fault observer

TEST(SimFaultObserver, UnarmedFireRecordsButDoesNotRequestDump) {
  sim::Simulator sim;
  sim.faults().fire("resync.request_sent", "wk-s0-0");
  const auto fired = sim.obs().events.merged(EventKind::kFault);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].actor, "wk-s0-0");
  EXPECT_EQ(fired[0].key, "resync.request_sent");
  EXPECT_FALSE(sim.obs().events.dump_requested());
}

TEST(SimFaultObserver, ArmedFireRequestsPostMortemDump) {
  sim::Simulator sim;
  bool hook_ran = false;
  sim.faults().arm("grant.in_flight", [&](const std::string&) {
    hook_ran = true;
  });
  sim.faults().fire("grant.in_flight", "wk-s1-2");
  EXPECT_TRUE(hook_ran);
  ASSERT_TRUE(sim.obs().events.dump_requested());
  EXPECT_NE(sim.obs().events.dump_reasons().front().find("grant.in_flight"),
            std::string::npos);
}

// -------------------------------------------------------------- profiler

TEST(SimProfiler, CountsScheduledExecutedCancelledAndHighWater) {
  sim::Simulator sim;
  sim.enable_profiling();
  int ran = 0;
  sim.at(100, [&] { ++ran; });
  sim.at(200, [&] { ++ran; });
  const sim::EventId doomed = sim.at(300, [&] { ++ran; });
  sim.cancel(doomed);
  sim.run_until(1000);

  const sim::SimProfile& p = sim.profile();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(p.events_scheduled, 3u);
  EXPECT_EQ(p.events_executed, 2u);
  EXPECT_EQ(p.events_cancelled, 1u);
  EXPECT_GE(p.queue_high_water, 3u);
  EXPECT_GT(p.wall_ns, 0u);  // profiling on: the loop timed itself
  EXPECT_GT(p.events_per_sec(), 0.0);
}

TEST(SimProfiler, WallClockOffByDefaultCountersStillOn) {
  sim::Simulator sim;
  sim.at(100, [] {});
  sim.run_until(1000);
  EXPECT_EQ(sim.profile().events_executed, 1u);
  EXPECT_EQ(sim.profile().wall_ns, 0u);
  EXPECT_EQ(sim.profile().events_per_sec(), 0.0);
}

}  // namespace
}  // namespace wankeeper

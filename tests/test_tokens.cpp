// Unit tests: token keys, the site/broker token tables, migration policies,
// and the Markov predictor.
#include <gtest/gtest.h>

#include "wankeeper/policy.h"
#include "wankeeper/predictor.h"
#include "wankeeper/token.h"
#include "wankeeper/token_manager.h"

namespace wankeeper::wk {
namespace {

zk::Op make_op(zk::OpCode code, const std::string& path, bool sequential = false) {
  zk::Op op;
  op.op = code;
  op.path = path;
  op.sequential = sequential;
  return op;
}

// ------------------------------------------------------------- token keys

TEST(TokenKeys, SetDataTakesNodeToken) {
  const auto keys = tokens_for_op(make_op(zk::OpCode::kSetData, "/a/b"));
  EXPECT_EQ(keys, (std::vector<TokenKey>{"node:/a/b"}));
}

TEST(TokenKeys, SequentialCreateTakesBulkParentToken) {
  const auto keys =
      tokens_for_op(make_op(zk::OpCode::kCreate, "/locks/l-", /*sequential=*/true));
  EXPECT_EQ(keys, (std::vector<TokenKey>{"seq:/locks"}));
}

TEST(TokenKeys, OpsOnSequentialNodesUseBulkToken) {
  // A node whose name carries the 10-digit suffix belongs to its parent's
  // bulk record (§III-B: sequential siblings move together).
  const auto del = tokens_for_op(make_op(zk::OpCode::kDelete, "/locks/l-0000000004"));
  EXPECT_EQ(del, (std::vector<TokenKey>{"seq:/locks"}));
  const auto set = tokens_for_op(make_op(zk::OpCode::kSetData, "/locks/l-0000000004"));
  EXPECT_EQ(set, (std::vector<TokenKey>{"seq:/locks"}));
}

TEST(TokenKeys, ReadsNeedNoTokens) {
  EXPECT_TRUE(tokens_for_op(make_op(zk::OpCode::kGetData, "/a")).empty());
  EXPECT_TRUE(tokens_for_op(make_op(zk::OpCode::kGetChildren, "/a")).empty());
  EXPECT_TRUE(tokens_for_op(make_op(zk::OpCode::kExists, "/a")).empty());
}

TEST(TokenKeys, MultiTakesUnionDeduplicated) {
  zk::ClientRequest req;
  req.op.op = zk::OpCode::kMulti;
  req.multi_ops = {make_op(zk::OpCode::kSetData, "/x"),
                   make_op(zk::OpCode::kSetData, "/y"),
                   make_op(zk::OpCode::kSetData, "/x")};
  const auto keys = tokens_for_request(req);
  EXPECT_EQ(keys, (std::vector<TokenKey>{"node:/x", "node:/y"}));
}

TEST(TokenKeys, TxnMirrorsRequestKeys) {
  store::Txn txn;
  txn.type = store::TxnType::kCreate;
  txn.path = "/locks/l-0000000009";
  EXPECT_EQ(tokens_for_txn(txn), (std::vector<TokenKey>{"seq:/locks"}));
  txn.path = "/plain";
  EXPECT_EQ(tokens_for_txn(txn), (std::vector<TokenKey>{"node:/plain"}));
}

// --------------------------------------------------------- SiteTokenTable

TEST(SiteTokenTable, GrantThenHoldThenReturn) {
  SiteTokenTable t;
  EXPECT_FALSE(t.holds_all({"node:/a"}));
  t.apply_granted({"node:/a", "node:/b"});
  EXPECT_TRUE(t.holds_all({"node:/a", "node:/b"}));
  EXPECT_EQ(t.owned_count(), 2u);
  t.apply_returned({"node:/a"});
  EXPECT_FALSE(t.holds_all({"node:/a"}));
  EXPECT_TRUE(t.holds_all({"node:/b"}));
}

TEST(SiteTokenTable, RecallMovesToOutgoingAndBlocksLocalUse) {
  SiteTokenTable t;
  t.apply_granted({"node:/a"});
  const auto start = t.begin_recall({"node:/a"});
  EXPECT_EQ(start, (std::vector<TokenKey>{"node:/a"}));
  EXPECT_TRUE(t.owns("node:/a"));       // still owned...
  EXPECT_TRUE(t.outgoing("node:/a"));   // ...but leaving
  EXPECT_FALSE(t.holds_all({"node:/a"}));
  // A duplicate recall while the return is in flight starts nothing.
  EXPECT_TRUE(t.begin_recall({"node:/a"}).empty());
  t.apply_returned({"node:/a"});
  EXPECT_FALSE(t.owns("node:/a"));
  EXPECT_FALSE(t.outgoing("node:/a"));
}

TEST(SiteTokenTable, RecallBeforeGrantIsDeferred) {
  SiteTokenTable t;
  // Recall raced ahead of the grant (possible across leader changes).
  EXPECT_TRUE(t.begin_recall({"node:/a"}).empty());
  const auto pending = t.take_pending_recalls({"node:/a"});
  EXPECT_EQ(pending, (std::vector<TokenKey>{"node:/a"}));
  EXPECT_TRUE(t.outgoing("node:/a"));
  // Consumed: asking again yields nothing.
  EXPECT_TRUE(t.take_pending_recalls({"node:/a"}).empty());
}

TEST(SiteTokenTable, ReturnPurgesStalePendingRecall) {
  SiteTokenTable t;
  t.begin_recall({"node:/a"});  // deferred
  t.apply_returned({"node:/a"});
  EXPECT_TRUE(t.take_pending_recalls({"node:/a"}).empty());
}

// ------------------------------------------------------- BrokerTokenTable

TEST(BrokerTokenTable, DefaultOwnerIsBroker) {
  BrokerTokenTable t;
  EXPECT_EQ(t.owner("node:/a"), kNoSite);
  t.set_owner("node:/a", 2);
  EXPECT_EQ(t.owner("node:/a"), 2);
  t.set_owner("node:/a", kNoSite);
  EXPECT_EQ(t.owner("node:/a"), kNoSite);
  EXPECT_EQ(t.migrated_count(), 0u);
}

TEST(BrokerTokenTable, RecordAccessDrivesConsecutivePolicy) {
  BrokerTokenTable t;
  ConsecutivePolicy policy(2);
  EXPECT_FALSE(t.record_access("node:/a", 1, policy));  // consecutive = 1
  EXPECT_TRUE(t.record_access("node:/a", 1, policy));   // consecutive = 2
  EXPECT_FALSE(t.record_access("node:/a", 2, policy));  // site change resets
  EXPECT_TRUE(t.record_access("node:/a", 2, policy));
  const auto* h = t.history("node:/a");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total_accesses, 4u);
  EXPECT_EQ(h->last_site, 2);
}

TEST(BrokerTokenTable, ParkAndUnparkByMissingKeys) {
  BrokerTokenTable t;
  PendingRemote p1;
  p1.from_site = 1;
  p1.missing = {"node:/a", "node:/b"};
  PendingRemote p2;
  p2.from_site = 2;
  p2.missing = {"node:/a"};
  t.park(std::move(p1));
  t.park(std::move(p2));
  EXPECT_EQ(t.parked_count(), 2u);

  auto ready = t.unpark("node:/a");
  ASSERT_EQ(ready.size(), 1u);  // p2 has everything now
  EXPECT_EQ(ready[0].from_site, 2);
  EXPECT_EQ(t.parked_count(), 1u);

  ready = t.unpark("node:/b");
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].from_site, 1);
  EXPECT_EQ(t.parked_count(), 0u);
}

TEST(BrokerTokenTable, OwnedByListsSiteTokens) {
  BrokerTokenTable t;
  t.set_owner("node:/a", 1);
  t.set_owner("node:/b", 1);
  t.set_owner("node:/c", 2);
  EXPECT_EQ(t.owned_by(1).size(), 2u);
  EXPECT_EQ(t.owned_by(2).size(), 1u);
  EXPECT_TRUE(t.owned_by(3).empty());
}

TEST(BrokerTokenTable, ClearVolatileKeepsOwnership) {
  BrokerTokenTable t;
  ConsecutivePolicy policy(2);
  t.set_owner("node:/a", 1);
  t.record_access("node:/b", 1, policy);
  t.mark_recalling("node:/a", true);
  PendingRemote p;
  p.missing = {"node:/a"};
  t.park(std::move(p));
  t.clear_volatile();
  EXPECT_EQ(t.owner("node:/a"), 1);            // snapshot-like
  EXPECT_FALSE(t.recall_in_progress("node:/a"));  // volatile
  EXPECT_EQ(t.parked_count(), 0u);
  EXPECT_EQ(t.history("node:/b"), nullptr);
}

// ---------------------------------------------------------------- policies

TEST(Policies, SpectrumEnds) {
  NeverMigratePolicy never;
  AlwaysMigratePolicy always;
  AccessHistory h;
  h.last_site = 1;
  h.consecutive = 100;
  EXPECT_FALSE(never.should_migrate("k", 1, h));
  EXPECT_TRUE(always.should_migrate("k", 1, h));
}

TEST(Policies, ConsecutiveThreshold) {
  ConsecutivePolicy r3(3);
  AccessHistory h;
  h.last_site = 1;
  h.consecutive = 2;
  EXPECT_FALSE(r3.should_migrate("k", 1, h));
  h.consecutive = 3;
  EXPECT_TRUE(r3.should_migrate("k", 1, h));
  // History about another site never triggers for this requester.
  EXPECT_FALSE(r3.should_migrate("k", 2, h));
}

TEST(Policies, FactoryParsesSpecs) {
  EXPECT_STREQ(make_policy("never")->name(), "never");
  EXPECT_STREQ(make_policy("always")->name(), "always");
  EXPECT_STREQ(make_policy("predictive")->name(), "predictive");
  auto c = make_policy("consecutive:5");
  EXPECT_STREQ(c->name(), "consecutive");
  EXPECT_EQ(static_cast<ConsecutivePolicy*>(c.get())->r(), 5u);
  EXPECT_EQ(static_cast<ConsecutivePolicy*>(make_policy("consecutive").get())->r(), 2u);
  EXPECT_THROW(make_policy("bogus"), std::invalid_argument);
}

// --------------------------------------------------------------- predictor

TEST(Predictor, LearnsDominantTransition) {
  MarkovPredictor p;
  // Site 1 hammers the record; site 2 touches it occasionally.
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 8; ++i) p.observe("rec", 1);
    p.observe("rec", 2);
  }
  // From state (rec, site1) the next access is almost always site1 again.
  p.observe("rec", 1);
  const auto pred = p.predict_next_site("rec");
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->site, 1);
  EXPECT_GT(pred->probability, 0.7);
  EXPECT_GT(p.site_probability("rec", 1), 0.7);
  EXPECT_LT(p.site_probability("rec", 2), 0.3);
}

TEST(Predictor, NoPredictionWithoutHistory) {
  MarkovPredictor p;
  EXPECT_FALSE(p.predict_next_site("rec").has_value());
  p.observe("rec", 1);  // first access: no transition yet
  EXPECT_FALSE(p.predict_next_site("rec").has_value());
}

TEST(Predictor, SlidingWindowForgetsOldPatterns) {
  MarkovPredictor p(/*window=*/32);
  for (int i = 0; i < 64; ++i) p.observe("rec", 1);
  // The pattern shifts entirely to site 2.
  for (int i = 0; i < 64; ++i) p.observe("rec", 2);
  const auto pred = p.predict_next_site("rec");
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->site, 2);
  EXPECT_GT(pred->probability, 0.9);
}

TEST(Predictor, RecordsAreIndependent) {
  MarkovPredictor p;
  for (int i = 0; i < 10; ++i) {
    p.observe("a", 1);
    p.observe("b", 2);
  }
  EXPECT_GT(p.site_probability("a", 1), 0.9);
  EXPECT_GT(p.site_probability("b", 2), 0.9);
  EXPECT_DOUBLE_EQ(p.site_probability("a", 2), 0.0);
}

TEST(PredictivePolicy, VetoesBurstsGrantsDominantSite) {
  PredictivePolicy policy(0.6, /*fallback_r=*/2);
  AccessHistory h;
  // Train: per cycle, site 1 makes 6 accesses, site 2 makes 2.
  auto access = [&](SiteId site) {
    if (h.last_site == site) {
      ++h.consecutive;
    } else {
      h.last_site = site;
      h.consecutive = 1;
    }
    return policy.should_migrate("rec", site, h);
  };
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 6; ++i) access(1);
    for (int i = 0; i < 2; ++i) access(2);
  }
  // Site 2's 2-burst would satisfy r=2, but the model knows site 1 returns.
  access(1);  // state (rec,1)
  EXPECT_FALSE(access(2));  // first of the burst
  EXPECT_FALSE(access(2));  // second: r=2 would migrate, predictor vetoes
  // Site 1's very first access after the burst re-migrates immediately.
  EXPECT_TRUE(access(1));
}

}  // namespace
}  // namespace wankeeper::wk

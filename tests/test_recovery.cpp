// Crash-recovery resync tests: the epoch-tagged L2→L1 refill protocol and
// its fault-injection points. The scenario tests pin the mechanisms
// (frontier re-announce, epoch fencing, duplicate-gseq dedup, WAN stream
// resets); the RecoveryFault tests crash a node at exactly the instants the
// protocol is most fragile — named points fired from product code (see
// sim/faults.h) — and require the deployment to converge anyway.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "wankeeper/sweep_harness.h"

namespace wankeeper {
namespace {

using wk::LoadedDeployment;

constexpr SiteId kVA = 0;   // default L2 site
constexpr SiteId kCA = 1;
constexpr SiteId kFRA = 2;

// Actor names follow the deployment convention "wk-s<site>-<node>[-zab]".
bool locate(const std::string& actor, SiteId* site, std::size_t* node) {
  const std::size_t s = actor.find("-s");
  if (s == std::string::npos) return false;
  const std::size_t d1 = actor.find('-', s + 2);
  if (d1 == std::string::npos) return false;
  std::size_t d2 = actor.find('-', d1 + 1);
  try {
    *site = static_cast<SiteId>(std::stoi(actor.substr(s + 2, d1 - s - 2)));
    *node = std::stoul(actor.substr(d1 + 1, d2 == std::string::npos
                                                ? std::string::npos
                                                : d2 - d1 - 1));
  } catch (...) {
    return false;
  }
  return true;
}

// Arms `point` to crash the firing actor's whole node (server + zab peer)
// on the first hit, restarting it after `down_for`. `only_prefix` restricts
// the crash to actors whose name starts with it ("" = any).
void arm_crash_on_first_fire(LoadedDeployment& d, const std::string& point,
                             const std::string& only_prefix,
                             Time down_for = 4 * kSecond) {
  auto fired = std::make_shared<bool>(false);
  d.sim.faults().arm(point, [&d, only_prefix, down_for,
                             fired](const std::string& actor) {
    if (*fired) return;
    if (!only_prefix.empty() && actor.rfind(only_prefix, 0) != 0) return;
    SiteId site;
    std::size_t node;
    if (!locate(actor, &site, &node)) return;
    *fired = true;
    d.deploy.site_ensemble(site).crash_node(node);
    d.sim.after(down_for, [&d, site, node]() {
      d.deploy.site_ensemble(site).restart_node(node);
    });
  });
}

void quiesce_and_check(LoadedDeployment& d) {
  d.stop = true;
  d.sim.run_for(25 * kSecond);
  EXPECT_TRUE(d.audit.clean())
      << (d.audit.violations().empty() ? "" : d.audit.violations().front());
  EXPECT_TRUE(d.deploy.converged());
}

// ---------------------------------------------------------------------------
// gseq helpers: pure unit tests.

TEST(Gseq, EpochCounterRoundTripAndOrdering) {
  const std::uint64_t g = wk::make_gseq(7, 123456);
  EXPECT_EQ(wk::gseq_epoch(g), 7u);
  EXPECT_EQ(wk::gseq_counter(g), 123456u);
  // A later L2 epoch orders after any counter of an earlier epoch, so the
  // single "highest applied" scalar is monotone across failovers.
  EXPECT_GT(wk::make_gseq(2, 1), wk::make_gseq(1, wk::kGseqCounterMask));
  EXPECT_EQ(wk::gseq_counter(wk::make_gseq(3, wk::kGseqCounterMask)),
            wk::kGseqCounterMask);
}

TEST(Gseq, MajorityFrontierTakesPerEpochMax) {
  const std::vector<std::vector<wk::GseqFrontier>> announced = {
      {{1, 40}, {2, 7}},
      {{1, 55}},
      {{2, 12}, {3, 0}},
  };
  const auto target = wk::majority_frontier(announced);
  ASSERT_EQ(target.size(), 3u);
  EXPECT_EQ(target[0], (wk::GseqFrontier{1, 55}));
  EXPECT_EQ(target[1], (wk::GseqFrontier{2, 12}));
  EXPECT_EQ(target[2], (wk::GseqFrontier{3, 0}));
  EXPECT_TRUE(wk::majority_frontier({}).empty());
}

TEST(Gseq, FrontierDeficitListsMissingSpans) {
  const std::vector<wk::GseqFrontier> have = {{1, 55}, {2, 5}};
  const std::vector<wk::GseqFrontier> target = {
      {1, 55}, {2, 12}, {3, 9}, {4, 0}};
  const auto deficit = wk::frontier_deficit(have, target);
  ASSERT_EQ(deficit.size(), 2u);
  EXPECT_EQ(deficit[0], (wk::GseqFrontier{2, 7}));  // partially applied epoch
  EXPECT_EQ(deficit[1], (wk::GseqFrontier{3, 9}));  // wholly missing epoch
  // Zero-counter announcements carry no data and are never a deficit, and a
  // hub that matches the target exactly has nothing left to pull.
  EXPECT_TRUE(wk::frontier_deficit(target, target).empty());
}

// ---------------------------------------------------------------------------
// Scenario tests for the resync mechanisms.

// A cut-off site sheds fan-outs once its backlog cap is hit; after heal the
// gseq-frontier resync must refill the holes (and drop what retransmission
// already delivered: exactly-once apply per gseq).
TEST(Recovery, ResyncRefillsShedFanOutsAfterPartition) {
  wk::DeploymentConfig cfg;
  cfg.wan.max_site_backlog = 32;  // shed quickly so the partition makes holes
  LoadedDeployment d(211, cfg);
  d.start_load();
  d.sim.run_for(8 * kSecond);

  d.net.isolate_site(kFRA, true);
  d.sim.run_for(20 * kSecond);
  d.net.isolate_site(kFRA, false);
  d.sim.run_for(30 * kSecond);

  const auto& m = d.sim.obs().metrics;
  EXPECT_GT(m.counter_total("resync.rounds"), 0u)
      << "the partition should have forced a frontier resync";
  EXPECT_GT(m.counter_total("resync.txns_shipped"), 0u);
  quiesce_and_check(d);

  // Every replica of every site ends at the same cum frontier per epoch.
  const auto want = d.deploy.broker(0, 0).applied_down_frontiers();
  for (SiteId s = 0; s < 3; ++s) {
    for (std::size_t n = 0; n < 3; ++n) {
      EXPECT_EQ(d.deploy.broker(s, n).applied_down_frontiers(), want)
          << "site " << int(s) << " node " << n;
    }
  }
}

// A new site leader (after the old one crashes) must re-announce its
// frontier to L2 via a fresh register — otherwise L2 keeps fanning out
// against stale knowledge and never refills what the dead leader lost.
TEST(Recovery, FrontierReannouncedAfterSiteLeaderChange) {
  wk::DeploymentConfig cfg;
  LoadedDeployment d(223, cfg);
  d.start_load();
  d.sim.run_for(8 * kSecond);

  const std::uint64_t registers_before =
      d.sim.obs().metrics.counter_total("resync.registers_sent");
  auto& ens = d.deploy.site_ensemble(kCA);
  const std::size_t leader = ens.leader_index();
  ASSERT_NE(leader, zk::Ensemble::npos);
  ens.crash_node(leader);
  d.sim.run_for(10 * kSecond);
  ens.restart_node(leader);
  d.sim.run_for(15 * kSecond);

  EXPECT_GT(d.sim.obs().metrics.counter_total("resync.registers_sent"),
            registers_before)
      << "the re-elected site leader never re-announced its frontier";
  quiesce_and_check(d);
}

// L2 failover bumps the l2_epoch; replicate-downs stamped by the dead hub
// must be fenced at L1s (never applied under the new epoch's order), and
// the revived old hub site must rejoin as a plain L1 and converge.
TEST(Recovery, StaleL2EpochFencedAfterFailover) {
  wk::DeploymentConfig cfg;
  cfg.wan.l2_failover_timeout = 3 * kSecond;
  cfg.wan.lease_valid = 2 * kSecond;
  cfg.wan.token_lease = 5 * kSecond;
  LoadedDeployment d(227, cfg);
  d.start_load();
  d.sim.run_for(8 * kSecond);

  d.deploy.crash_site(kVA);
  d.sim.run_for(20 * kSecond);
  wk::Broker* l2 = d.deploy.l2_broker();
  ASSERT_NE(l2, nullptr);
  EXPECT_NE(l2->site(), kVA);
  EXPECT_GT(l2->l2_epoch(), 1u);

  d.deploy.restart_site(kVA);
  d.sim.run_for(25 * kSecond);
  quiesce_and_check(d);
}

// A receiver-side Zab re-election invalidates both directions of that
// site's WAN streams. Senders must notice the in-band zab-epoch bump and
// reset their outgoing streams instead of waiting on acks that never come.
TEST(Recovery, WanStreamsResetAfterReceiverReelection) {
  wk::DeploymentConfig cfg;
  LoadedDeployment d(229, cfg);
  d.start_load();
  d.sim.run_for(8 * kSecond);

  auto& ens = d.deploy.site_ensemble(kFRA);
  const std::size_t leader = ens.leader_index();
  ASSERT_NE(leader, zk::Ensemble::npos);
  ens.crash_node(leader);
  d.sim.run_for(10 * kSecond);
  ens.restart_node(leader);
  d.sim.run_for(15 * kSecond);

  EXPECT_GT(d.sim.obs().metrics.counter_total("wan.stream_resets"), 0u)
      << "no sender reset its stream after the receiver re-elected";
  quiesce_and_check(d);
}

// ---------------------------------------------------------------------------
// Fault-injection property tests: crash at the protocol's fragile instants.

// Crash an L1 leader the moment it has sent its register (frontier
// announcement in flight, RegisterOk never processed). The next leader must
// register afresh and the site must converge.
TEST(RecoveryFault, CrashAtRegisterSent) {
  LoadedDeployment d(307);
  arm_crash_on_first_fire(d, "wk.register_sent", "wk-s1");
  d.start_load();
  d.sim.run_for(40 * kSecond);
  EXPECT_GT(d.sim.faults().fires("wk.register_sent"), 0u);
  quiesce_and_check(d);
}

// Crash the L2 leader right after it ships a resync round (refill in
// flight). The L2 site re-elects; the new hub leader rebuilds the frontier
// map from registers/heartbeats and finishes the refill. Dedup on (epoch,
// counter) makes the overlap harmless.
TEST(RecoveryFault, CrashAtResyncSent) {
  wk::DeploymentConfig cfg;
  cfg.wan.max_site_backlog = 32;
  LoadedDeployment d(311, cfg);
  arm_crash_on_first_fire(d, "wk.resync_sent", "");
  d.start_load();
  d.sim.run_for(8 * kSecond);
  d.net.isolate_site(kFRA, true);
  d.sim.run_for(20 * kSecond);
  d.net.isolate_site(kFRA, false);
  d.sim.run_for(40 * kSecond);
  EXPECT_GT(d.sim.faults().fires("wk.resync_sent"), 0u);
  quiesce_and_check(d);
}

// Crash the receiving L1 leader mid-refill (resync partially applied). The
// applied frontier is derived from applied txns, so the next leader's
// re-announced frontier reflects exactly the prefix that survived, and the
// remainder is re-shipped without double-applying anything.
TEST(RecoveryFault, CrashAtResyncPartiallyApplied) {
  wk::DeploymentConfig cfg;
  cfg.wan.max_site_backlog = 32;
  LoadedDeployment d(313, cfg);
  arm_crash_on_first_fire(d, "wk.resync_apply", "wk-s2");
  d.start_load();
  d.sim.run_for(8 * kSecond);
  d.net.isolate_site(kFRA, true);
  d.sim.run_for(20 * kSecond);
  d.net.isolate_site(kFRA, false);
  d.sim.run_for(40 * kSecond);
  EXPECT_GT(d.sim.faults().fires("wk.resync_apply"), 0u);
  quiesce_and_check(d);
}

// Crash the L2 leader with a token grant proposed but not yet fanned out
// (grant in flight during leader change). Token state is reconstructed
// from applied marker txns, so the grant either committed (and the new hub
// honors it) or it didn't (and the requester re-parks) — never both.
TEST(RecoveryFault, CrashAtGrantInFlightDuringLeaderChange) {
  LoadedDeployment d(317);
  arm_crash_on_first_fire(d, "wk.grant_proposed", "");
  d.start_load();
  d.sim.run_for(40 * kSecond);
  EXPECT_GT(d.sim.faults().fires("wk.grant_proposed"), 0u);
  quiesce_and_check(d);
}

// Crash a follower while it is applying a Zab sync from its leader (local
// recovery partially applied), then let it come back and re-sync.
TEST(RecoveryFault, CrashDuringZabSyncApply) {
  LoadedDeployment d(331);
  arm_crash_on_first_fire(d, "zab.sync_applying", "wk-s1");
  d.start_load();
  d.sim.run_for(8 * kSecond);
  // Bounce a site-1 node so it has to sync on rejoin; the armed point then
  // crashes it again mid-sync.
  auto& ens = d.deploy.site_ensemble(kCA);
  const std::size_t victim = (ens.leader_index() + 1) % 3;
  ens.crash_node(victim);
  d.sim.run_for(6 * kSecond);
  ens.restart_node(victim);
  d.sim.run_for(30 * kSecond);
  EXPECT_GT(d.sim.faults().fires("zab.sync_applying"), 0u);
  quiesce_and_check(d);
}

// Crash a follower just after it asked its leader for a resync (request in
// flight). The gap that triggers the request comes from message loss — a
// PROPOSE that skips past the follower's log tail — so run a lossy window.
// The re-entrancy guard plus the crash/restart cycle must still end in a
// fully synced replica.
TEST(RecoveryFault, CrashAtZabResyncRequested) {
  LoadedDeployment d(337);
  arm_crash_on_first_fire(d, "zab.resync_request", "wk-s2");
  d.start_load();
  d.sim.run_for(5 * kSecond);
  d.net.set_drop_rate(0.02);
  d.sim.run_for(20 * kSecond);
  d.net.set_drop_rate(0.0);
  d.sim.run_for(20 * kSecond);
  EXPECT_GT(d.sim.faults().fires("zab.resync_request"), 0u);
  quiesce_and_check(d);
}

// Crash the freshly promoted hub the instant it sends its first catch-up
// pull: mid-RECONCILING, writes parked in the deferred queue, frontier maps
// half-built, nothing minted yet. The site re-elects; the next leader
// re-derives the hub claim from gossip, re-enters reconciliation from its
// own applied state, and the deployment must still converge on one hub.
TEST(RecoveryFault, CrashNewHubMidReconciliation) {
  LoadedDeployment d(347);
  arm_crash_on_first_fire(d, "wk.reconcile_pull", "wk-s1");
  d.start_load();
  d.sim.run_for(8 * kSecond);
  // One-way cut: site 1 stops hearing the hub's heartbeats and fan-outs
  // while the rest of the WAN still hears site 1. It promotes itself while
  // behind, so the reconcile must pull — and the armed point kills it there.
  d.net.partition_oneway(kVA, kCA, true);
  d.sim.run_for(12 * kSecond);
  d.net.partition_oneway(kVA, kCA, false);
  d.sim.run_for(30 * kSecond);
  EXPECT_GT(d.sim.faults().fires("wk.reconcile_pull"), 0u);
  quiesce_and_check(d);
}

}  // namespace
}  // namespace wankeeper

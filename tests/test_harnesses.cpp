// Tests for the evaluation harnesses themselves: workload generators, key
// mappers, metrics, the YCSB runner, the BookKeeper bench, and the SCFS
// metadata client — so the numbers the figure benches print rest on tested
// machinery.
#include <gtest/gtest.h>

#include <set>

#include "bookkeeper/writer.h"
#include "scfs/metadata.h"
#include "scfs/workload.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "wankeeper/deployment.h"
#include "ycsb/runner.h"

namespace wankeeper {
namespace {

using namespace wankeeper::ycsb;

// ------------------------------------------------------------- workloads

TEST(YcsbWorkload, OpStreamIsDeterministicPerSeed) {
  WorkloadSpec spec;
  spec.seed = 9;
  OpStream a(spec), b(spec);
  for (int i = 0; i < 100; ++i) {
    const auto oa = a.next();
    const auto ob = b.next();
    EXPECT_EQ(oa.rank, ob.rank);
    EXPECT_EQ(oa.is_write, ob.is_write);
  }
}

TEST(YcsbWorkload, WriteFractionRespected) {
  WorkloadSpec spec;
  spec.write_fraction = 0.3;
  spec.seed = 4;
  OpStream s(spec);
  int writes = 0;
  for (int i = 0; i < 10000; ++i) writes += s.next().is_write ? 1 : 0;
  EXPECT_NEAR(writes, 3000, 200);
}

TEST(YcsbWorkload, ZipfianSkewsTowardLowRanks) {
  WorkloadSpec spec;
  spec.distribution = KeyDistribution::kZipfian;
  OpStream s(spec);
  int low = 0;
  for (int i = 0; i < 10000; ++i) low += s.next().rank < 100 ? 1 : 0;
  EXPECT_GT(low, 4000);  // top 10% of keys draw far more than 10% of ops
}

TEST(YcsbWorkload, UniformCoversKeyspaceEvenly) {
  WorkloadSpec spec;
  spec.distribution = KeyDistribution::kUniform;
  spec.record_count = 10;
  OpStream s(spec);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[s.next().rank];
  for (const auto& [rank, n] : counts) EXPECT_GT(n, 700);
}

TEST(YcsbWorkload, KeyMapperSharesLowRanksOnly) {
  KeyMapper a("/y", "a", 0.3, 100);
  KeyMapper b("/y", "b", 0.3, 100);
  for (std::uint64_t r = 0; r < 30; ++r) {
    EXPECT_TRUE(a.is_shared(r));
    EXPECT_EQ(a.path_of(r), b.path_of(r));  // shared record, same path
  }
  for (std::uint64_t r = 30; r < 100; ++r) {
    EXPECT_FALSE(a.is_shared(r));
    EXPECT_NE(a.path_of(r), b.path_of(r));  // private records
  }
  EXPECT_EQ(a.private_paths().size(), 70u);
  EXPECT_EQ(a.all_paths().size(), 100u);
}

TEST(YcsbMetrics, AggregateThroughputSpansAllClients) {
  ClientMetrics a, b;
  a.ops = 100;
  a.started = 0;
  a.finished = 10 * kSecond;
  b.ops = 300;
  b.started = 5 * kSecond;
  b.finished = 20 * kSecond;
  AggregateMetrics agg;
  agg.clients = {&a, &b};
  EXPECT_DOUBLE_EQ(agg.total_throughput(), 400.0 / 20.0);
  a.read_latency.record(10);
  b.read_latency.record(20);
  EXPECT_EQ(agg.merged_reads().count(), 2u);
}

// ----------------------------------------------------------- YCSB runner

TEST(YcsbRunner, SmokeAllThreeSystems) {
  for (SystemKind sys : {SystemKind::kZooKeeper, SystemKind::kZooKeeperObserver,
                         SystemKind::kWanKeeper}) {
    RunConfig cfg;
    cfg.system = sys;
    ClientSpec c;
    c.site = kCalifornia;
    c.shared_fraction = 0.0;
    c.workload.record_count = 50;
    c.workload.op_count = 200;
    c.workload.write_fraction = 0.5;
    cfg.clients = {c};
    const RunResult r = run_experiment(cfg);
    EXPECT_EQ(r.clients[0].ops, 200u) << system_name(sys);
    EXPECT_GT(r.total_throughput, 0.0) << system_name(sys);
    EXPECT_EQ(r.reads.count() + r.writes.count(), 200u) << system_name(sys);
    EXPECT_TRUE(r.token_audit_clean) << system_name(sys);
  }
}

TEST(YcsbRunner, WanKeeperBeatsZooKeeperOnWriteHeavyLocality) {
  auto run = [](SystemKind sys) {
    RunConfig cfg;
    cfg.system = sys;
    ClientSpec c;
    c.site = kCalifornia;
    c.shared_fraction = 0.0;
    c.workload.record_count = 100;
    c.workload.op_count = 1000;
    c.workload.write_fraction = 0.5;
    cfg.clients = {c};
    return run_experiment(cfg).total_throughput;
  };
  const double zk = run(SystemKind::kZooKeeper);
  const double wk = run(SystemKind::kWanKeeper);
  EXPECT_GT(wk, 3.0 * zk);  // the paper's headline effect, conservatively
}

TEST(YcsbRunner, HotStartOutperformsColdStart) {
  auto run = [](bool hot) {
    RunConfig cfg;
    cfg.system = SystemKind::kWanKeeper;
    cfg.wk_hot_start = hot;
    for (SiteId site : {kCalifornia, kFrankfurt}) {
      ClientSpec c;
      c.site = site;
      c.shared_fraction = 0.0;
      c.workload.record_count = 200;
      c.workload.op_count = 500;
      c.workload.write_fraction = 0.5;
      c.workload.seed = 1 + static_cast<std::uint64_t>(site);
      cfg.clients.push_back(c);
    }
    return run_experiment(cfg).total_throughput;
  };
  EXPECT_GT(run(true), run(false));
}

// ------------------------------------------------------------ bookkeeper

TEST(BookKeeper, BenchSmokeBothLockRecipes) {
  for (bool fair : {false, true}) {
    bk::BkBenchConfig cfg;
    cfg.system = SystemKind::kWanKeeper;
    cfg.write_duration = 200 * kMillisecond;
    cfg.horizon = 5 * kSecond;
    cfg.fair_lock = fair;
    const bk::BkBenchResult r = bk::run_bk_bench(cfg);
    EXPECT_GT(r.total_entries, 0u) << "fair=" << fair;
    EXPECT_GT(r.total_rounds, 1u) << "fair=" << fair;
    EXPECT_TRUE(r.audit_clean) << "fair=" << fair;
  }
}

TEST(BookKeeper, BookieStoresAfterQuorumAck) {
  sim::Simulator sim(1);
  sim::Network net(sim, sim::LatencyModel(1, 200, 200));
  bk::Bookie b1(sim, "b1"), b2(sim, "b2"), b3(sim, "b3");
  const NodeId i1 = net.add_node(b1, 0);
  const NodeId i2 = net.add_node(b2, 0);
  const NodeId i3 = net.add_node(b3, 0);
  for (auto* b : {&b1, &b2, &b3}) b->set_network(net);

  bk::LedgerWriter writer(sim, "w", {i1, i2, i3}, /*write_quorum=*/2);
  net.add_node(writer, 0);
  writer.set_network(net);
  writer.open(7);
  std::uint64_t wrote = 0;
  writer.write_until(sim.now() + kSecond, [&](std::uint64_t n) { wrote = n; });
  sim.run_for(2 * kSecond);
  EXPECT_GT(wrote, 100u);
  EXPECT_EQ(writer.total_entries(), wrote);
  // Every acked entry is on at least the quorum; spot-check the first.
  int copies = 0;
  for (auto* b : {&b1, &b2, &b3}) copies += b->has_entry(7, 0) ? 1 : 0;
  EXPECT_GE(copies, 2);
}

// ------------------------------------------------------------------ scfs

TEST(Scfs, MetadataClientRoundTrip) {
  sim::Simulator sim(6);
  sim::Network net(sim, sim::LatencyModel::paper_wan());
  wk::Deployment deploy(sim, net, {});
  ASSERT_TRUE(deploy.wait_ready());
  auto zk = deploy.make_client("fs", 1, 300);
  sim.run_for(kSecond);
  scfs::MetadataClient mds(*zk);

  bool done = false;
  auto wait = [&]() {
    const Time guard = sim.now() + 30 * kSecond;
    while (!done && sim.now() < guard) sim.step();
    ASSERT_TRUE(done);
    done = false;
  };

  mds.init([&](store::Rc rc) {
    EXPECT_EQ(rc, store::Rc::kOk);
    done = true;
  });
  wait();
  mds.create_file("/a/b.txt", [&](store::Rc rc, const scfs::FileMeta&) {
    EXPECT_EQ(rc, store::Rc::kOk);
    done = true;
  });
  wait();
  scfs::FileMeta meta;
  meta.path = "/a/b.txt";
  meta.size = 4096;
  meta.backend_ref = "s3://x/y";
  mds.update(meta, [&](store::Rc rc, const scfs::FileMeta& out) {
    EXPECT_EQ(rc, store::Rc::kOk);
    EXPECT_EQ(out.version, 1);
    done = true;
  });
  wait();
  mds.lookup("/a/b.txt", [&](store::Rc rc, const scfs::FileMeta& out) {
    EXPECT_EQ(rc, store::Rc::kOk);
    EXPECT_EQ(out.size, 4096u);
    EXPECT_EQ(out.backend_ref, "s3://x/y");
    done = true;
  });
  wait();
  mds.list_dir([&](store::Rc rc, const std::vector<std::string>& names) {
    EXPECT_EQ(rc, store::Rc::kOk);
    EXPECT_EQ(names.size(), 1u);
    done = true;
  });
  wait();
  mds.remove_file("/a/b.txt", [&](store::Rc rc) {
    EXPECT_EQ(rc, store::Rc::kOk);
    done = true;
  });
  wait();
}

TEST(Scfs, BenchSmokeShowsWanKeeperAdvantageAtLowOverlap) {
  scfs::ScfsBenchConfig wk_cfg;
  wk_cfg.system = SystemKind::kWanKeeper;
  wk_cfg.overlap = 0.1;
  wk_cfg.files = 100;
  wk_cfg.ops_per_site = 400;
  const auto wk = scfs::run_scfs_bench(wk_cfg);
  EXPECT_TRUE(wk.audit_clean);
  EXPECT_GT(wk.total_throughput, 0.0);

  scfs::ScfsBenchConfig zko_cfg = wk_cfg;
  zko_cfg.system = SystemKind::kZooKeeperObserver;
  const auto zko = scfs::run_scfs_bench(zko_cfg);
  EXPECT_GT(wk.total_throughput, zko.total_throughput);
}

TEST(Scfs, ZnodeOfFlattensPaths) {
  EXPECT_EQ(scfs::MetadataClient::znode_of("/scfs", "/a/b/c.txt"),
            "/scfs/_a_b_c.txt");
}

}  // namespace
}  // namespace wankeeper

// Zab tests: the transaction log, and protocol-level properties exercised
// on small ensembles of raw peers with a recording state machine.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"
#include "zab/log.h"
#include "zab/peer.h"

namespace wankeeper::zab {
namespace {

// ------------------------------------------------------------------- log

LogEntry entry(std::uint32_t epoch, std::uint32_t counter, std::uint8_t tag = 0) {
  return LogEntry{make_zxid(epoch, counter), {tag}};
}

TEST(TxnLog, AppendAndQuery) {
  TxnLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.last_zxid(), kNoZxid);
  log.append(entry(1, 1));
  log.append(entry(1, 2));
  log.append(entry(2, 1));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.last_zxid(), make_zxid(2, 1));
  EXPECT_TRUE(log.contains(make_zxid(1, 2)));
  EXPECT_FALSE(log.contains(make_zxid(1, 3)));
}

TEST(TxnLog, OutOfOrderAppendThrows) {
  TxnLog log;
  log.append(entry(1, 2));
  EXPECT_THROW(log.append(entry(1, 1)), std::logic_error);
  EXPECT_THROW(log.append(entry(1, 2)), std::logic_error);
}

TEST(TxnLog, EntriesAfterAndIndexAfter) {
  TxnLog log;
  for (std::uint32_t i = 1; i <= 5; ++i) log.append(entry(1, i));
  EXPECT_EQ(log.entries_after(make_zxid(1, 3)).size(), 2u);
  EXPECT_EQ(log.entries_after(kNoZxid).size(), 5u);
  EXPECT_EQ(log.entries_after(make_zxid(1, 5)).size(), 0u);
  EXPECT_EQ(log.index_after(make_zxid(1, 2)), 2u);
  EXPECT_EQ(log.index_after(make_zxid(9, 9)), 5u);
}

TEST(TxnLog, TruncateAfter) {
  TxnLog log;
  for (std::uint32_t i = 1; i <= 5; ++i) log.append(entry(1, i));
  log.truncate_after(make_zxid(1, 3));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.last_zxid(), make_zxid(1, 3));
  log.truncate_after(kNoZxid);
  EXPECT_TRUE(log.empty());
}

TEST(TxnLog, LastCommonZxid) {
  TxnLog a, b;
  for (std::uint32_t i = 1; i <= 3; ++i) {
    a.append(entry(1, i));
    b.append(entry(1, i));
  }
  a.append(entry(2, 1));  // a diverges with epoch-2 tail
  b.append(entry(3, 1));  // b with epoch-3 tail
  EXPECT_EQ(a.last_common_zxid(b), make_zxid(1, 3));
  TxnLog empty;
  EXPECT_EQ(a.last_common_zxid(empty), kNoZxid);
}

// ------------------------------------------------------------- ensembles

class RecordingSm : public StateMachine {
 public:
  void on_commit(const LogEntry& e) override { committed.push_back(e); }
  std::vector<LogEntry> committed;
};

struct ZabHarness {
  sim::Simulator sim{1234};
  sim::Network net{sim, sim::LatencyModel(1, 200, 200)};
  std::vector<std::unique_ptr<RecordingSm>> sms;
  std::vector<std::unique_ptr<Peer>> peers;

  explicit ZabHarness(std::size_t n, std::size_t observers = 0,
                      PeerOptions opts = {}) {
    std::vector<NodeId> voter_ids, observer_ids;
    for (std::size_t i = 0; i < n + observers; ++i) {
      sms.push_back(std::make_unique<RecordingSm>());
      peers.push_back(std::make_unique<Peer>(sim, "p" + std::to_string(i),
                                             *sms.back(), opts));
    }
    for (std::size_t i = 0; i < peers.size(); ++i) {
      const NodeId id = net.add_node(*peers[i], 0);
      (i < n ? voter_ids : observer_ids).push_back(id);
    }
    for (std::size_t i = 0; i < peers.size(); ++i) {
      peers[i]->boot(voter_ids, observer_ids, i >= n,
                     static_cast<std::int32_t>(i));
    }
  }

  Peer* leader() {
    for (auto& p : peers) {
      if (p->leading()) return p.get();
    }
    return nullptr;
  }

  bool wait_for_leader(Time max = 10 * kSecond) {
    const Time deadline = sim.now() + max;
    while (sim.now() < deadline) {
      if (leader() != nullptr) return true;
      sim.run_for(50 * kMillisecond);
    }
    return leader() != nullptr;
  }
};

TEST(ZabPeer, SingleNodeEnsembleCommitsAlone) {
  ZabHarness h(1);
  ASSERT_TRUE(h.wait_for_leader());
  const Zxid z = h.leader()->propose({1, 2, 3});
  EXPECT_NE(z, kNoZxid);
  h.sim.run_for(1 * kSecond);
  ASSERT_EQ(h.sms[0]->committed.size(), 1u);
  EXPECT_EQ(h.sms[0]->committed[0].zxid, z);
}

TEST(ZabPeer, AllPeersCommitInSameOrder) {
  ZabHarness h(3);
  ASSERT_TRUE(h.wait_for_leader());
  for (int i = 0; i < 10; ++i) {
    h.leader()->propose({static_cast<std::uint8_t>(i)});
    h.sim.run_for(10 * kMillisecond);
  }
  h.sim.run_for(1 * kSecond);
  ASSERT_EQ(h.sms[0]->committed.size(), 10u);
  for (std::size_t p = 1; p < 3; ++p) {
    ASSERT_EQ(h.sms[p]->committed.size(), 10u) << "peer " << p;
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(h.sms[p]->committed[i], h.sms[0]->committed[i]);
    }
  }
}

TEST(ZabPeer, ProposeRejectedOnNonLeader) {
  ZabHarness h(3);
  ASSERT_TRUE(h.wait_for_leader());
  for (auto& p : h.peers) {
    if (!p->leading()) {
      EXPECT_EQ(p->propose({1}), kNoZxid);
    }
  }
}

TEST(ZabPeer, HighestPriorityWinsInitialElection) {
  ZabHarness h(3);
  ASSERT_TRUE(h.wait_for_leader());
  EXPECT_TRUE(h.peers[2]->leading());
}

TEST(ZabPeer, FollowerCrashDoesNotBlockCommits) {
  ZabHarness h(3);
  ASSERT_TRUE(h.wait_for_leader());
  h.peers[0]->crash();
  const Zxid z = h.leader()->propose({9});
  EXPECT_NE(z, kNoZxid);
  h.sim.run_for(1 * kSecond);
  EXPECT_EQ(h.sms[2]->committed.size(), 1u);
  EXPECT_EQ(h.sms[1]->committed.size(), 1u);
}

TEST(ZabPeer, LeaderCrashTriggersReElectionAndRecovery) {
  ZabHarness h(3);
  ASSERT_TRUE(h.wait_for_leader());
  h.leader()->propose({1});
  h.sim.run_for(500 * kMillisecond);
  h.peers[2]->crash();
  ASSERT_TRUE(h.wait_for_leader(20 * kSecond));
  Peer* new_leader = h.leader();
  ASSERT_NE(new_leader, nullptr);
  EXPECT_NE(new_leader, h.peers[2].get());
  // The committed entry survives into the new epoch.
  new_leader->propose({2});
  h.sim.run_for(1 * kSecond);
  for (std::size_t p = 0; p < 2; ++p) {
    ASSERT_EQ(h.sms[p]->committed.size(), 2u) << "peer " << p;
    EXPECT_EQ(h.sms[p]->committed[0].payload, (std::vector<std::uint8_t>{1}));
  }
  // The old leader catches up on restart, in order, without duplicates.
  h.peers[2]->restart();
  h.sim.run_for(5 * kSecond);
  ASSERT_EQ(h.sms[2]->committed.size(), 2u);
  EXPECT_EQ(h.sms[2]->committed[1].payload, (std::vector<std::uint8_t>{2}));
}

TEST(ZabPeer, CommittedPrefixAgreementAcrossManyCrashes) {
  ZabHarness h(3);
  ASSERT_TRUE(h.wait_for_leader());
  int proposed = 0;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 5; ++i) {
      Peer* leader = h.leader();
      if (leader != nullptr) {
        leader->propose({static_cast<std::uint8_t>(proposed++)});
      }
      h.sim.run_for(20 * kMillisecond);
    }
    const std::size_t victim = static_cast<std::size_t>(round) % 3;
    h.peers[victim]->crash();
    h.sim.run_for(3 * kSecond);
    h.peers[victim]->restart();
    ASSERT_TRUE(h.wait_for_leader(20 * kSecond)) << "round " << round;
    h.sim.run_for(2 * kSecond);
  }
  h.sim.run_for(3 * kSecond);
  // Every peer's committed sequence is a prefix of the longest one, and
  // zxids are strictly increasing.
  std::size_t longest = 0;
  for (std::size_t p = 1; p < 3; ++p) {
    if (h.sms[p]->committed.size() > h.sms[longest]->committed.size()) longest = p;
  }
  const auto& ref = h.sms[longest]->committed;
  for (std::size_t i = 1; i < ref.size(); ++i) {
    EXPECT_LT(ref[i - 1].zxid, ref[i].zxid);
  }
  for (std::size_t p = 0; p < 3; ++p) {
    const auto& seq = h.sms[p]->committed;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(seq[i], ref[i]) << "peer " << p << " entry " << i;
    }
  }
}

TEST(ZabPeer, ObserverLearnsCommitsButNeverLeads) {
  ZabHarness h(3, /*observers=*/1);
  ASSERT_TRUE(h.wait_for_leader());
  EXPECT_FALSE(h.peers[3]->leading());
  for (int i = 0; i < 5; ++i) {
    h.leader()->propose({static_cast<std::uint8_t>(i)});
    h.sim.run_for(10 * kMillisecond);
  }
  h.sim.run_for(2 * kSecond);
  ASSERT_EQ(h.sms[3]->committed.size(), 5u);
  EXPECT_EQ(h.peers[3]->role(), Role::kObserving);
  // Observer crash never affects the voters.
  h.peers[3]->crash();
  h.leader()->propose({99});
  h.sim.run_for(1 * kSecond);
  EXPECT_EQ(h.sms[0]->committed.size(), 6u);
}

TEST(ZabPeer, QuorumLossStopsProgressUntilHeal) {
  ZabHarness h(3);
  ASSERT_TRUE(h.wait_for_leader());
  h.peers[0]->crash();
  h.peers[1]->crash();
  h.sim.run_for(3 * kSecond);
  // The leader notices lost quorum and steps down.
  EXPECT_EQ(h.leader(), nullptr);
  EXPECT_EQ(h.peers[2]->propose({1}), kNoZxid);
  h.peers[0]->restart();
  ASSERT_TRUE(h.wait_for_leader(20 * kSecond));
  EXPECT_NE(h.leader()->propose({2}), kNoZxid);
}

TEST(ZabPeer, DivergentUncommittedTailIsTruncated) {
  ZabHarness h(3);
  ASSERT_TRUE(h.wait_for_leader());
  Peer* old_leader = h.leader();
  // Cut the leader's site... here all at site 0, so crash followers first
  // so the leader logs an entry that can never commit.
  h.peers[0]->crash();
  h.peers[1]->crash();
  h.sim.run_for(200 * kMillisecond);  // before the leader notices
  old_leader->propose({42});          // logged at the leader only
  const Zxid orphan = old_leader->last_logged();
  h.sim.run_for(50 * kMillisecond);
  old_leader->crash();

  h.peers[0]->restart();
  h.peers[1]->restart();
  ASSERT_TRUE(h.wait_for_leader(20 * kSecond));
  h.leader()->propose({7});
  h.sim.run_for(1 * kSecond);

  // The old leader rejoins: its orphan entry must be truncated away and
  // replaced by the new history.
  old_leader->restart();
  h.sim.run_for(5 * kSecond);
  EXPECT_FALSE(old_leader->log().contains(orphan));
  ASSERT_GE(h.sms[2]->committed.size(), 1u);
  EXPECT_EQ(h.sms[2]->committed.back().payload, (std::vector<std::uint8_t>{7}));
}

// ---------------------------------------------------------- group commit

PeerOptions batched(std::size_t max_batch = 8, Time max_delay = 5 * kMillisecond) {
  PeerOptions o;
  o.max_batch = max_batch;
  o.max_delay = max_delay;
  return o;
}

// All committed sequences are identical across replicas, zxids are gapless
// within each epoch, and payload order matches proposal order.
void expect_gapless_and_ordered(const ZabHarness& h,
                                std::size_t expect_committed) {
  for (std::size_t p = 0; p < h.sms.size(); ++p) {
    const auto& committed = h.sms[p]->committed;
    ASSERT_EQ(committed.size(), expect_committed) << "peer " << p;
    for (std::size_t i = 0; i < committed.size(); ++i) {
      EXPECT_EQ(committed[i].zxid, h.sms[0]->committed[i].zxid);
      EXPECT_EQ(committed[i].payload, h.sms[0]->committed[i].payload);
      if (i > 0) {
        const Zxid prev = committed[i - 1].zxid;
        const Zxid cur = committed[i].zxid;
        EXPECT_GT(cur, prev);
        if (zxid_epoch(cur) == zxid_epoch(prev)) {
          EXPECT_EQ(zxid_counter(cur), zxid_counter(prev) + 1) << "gap at " << i;
        } else {
          EXPECT_EQ(zxid_counter(cur), 1u) << "new epoch must restart at 1";
        }
      }
    }
  }
}

TEST(ZabGroupCommit, BurstCommitsInOrderWithGaplessZxids) {
  ZabHarness h(3, 0, batched());
  ASSERT_TRUE(h.wait_for_leader());
  // A same-instant burst: the first proposal flushes immediately (pipe
  // idle); the rest accumulate into multi-entry rounds.
  std::vector<Zxid> zxids;
  for (std::uint8_t i = 0; i < 20; ++i) {
    const Zxid z = h.leader()->propose({i});
    ASSERT_NE(z, kNoZxid);
    ASSERT_TRUE(zxids.empty() || z > zxids.back());  // assigned at propose time
    zxids.push_back(z);
  }
  h.sim.run_for(1 * kSecond);
  expect_gapless_and_ordered(h, 20);
  for (std::size_t i = 0; i < zxids.size(); ++i) {
    EXPECT_EQ(h.sms[0]->committed[i].zxid, zxids[i]);
    EXPECT_EQ(h.sms[0]->committed[i].payload,
              std::vector<std::uint8_t>{static_cast<std::uint8_t>(i)});
  }
  // The win: 20 proposals needed far fewer broadcast rounds.
  const auto& batches = h.sim.obs().metrics.histogram("zab.batch_size", 0);
  EXPECT_GT(batches.count(), 0u);
  EXPECT_LT(batches.count(), 20u);
}

TEST(ZabGroupCommit, ObserversSeeBatchedCommitsInOrder) {
  ZabHarness h(3, /*observers=*/1, batched());
  ASSERT_TRUE(h.wait_for_leader());
  for (std::uint8_t i = 0; i < 12; ++i) h.leader()->propose({i});
  h.sim.run_for(2 * kSecond);
  expect_gapless_and_ordered(h, 12);
}

TEST(ZabGroupCommit, LoneRequestFlushesWithoutWaitingForFullBatch) {
  // Huge batch cap: a stalled batch would wait forever for 63 more requests.
  ZabHarness h(3, 0, batched(/*max_batch=*/64, /*max_delay=*/5 * kMillisecond));
  ASSERT_TRUE(h.wait_for_leader());
  h.leader()->propose({1});
  // Commit must arrive within network round trips + max_delay, not stall.
  h.sim.run_for(10 * kMillisecond);
  for (auto& sm : h.sms) EXPECT_EQ(sm->committed.size(), 1u);
}

TEST(ZabGroupCommit, TrailingPartialBatchFlushesWithinMaxDelay) {
  ZabHarness h(3, 0, batched(/*max_batch=*/64, /*max_delay=*/5 * kMillisecond));
  ASSERT_TRUE(h.wait_for_leader());
  // 10 proposals: 1 flushes immediately, 9 ride behind the in-flight round;
  // nothing reaches max_batch, so the trailing batch depends on the
  // round-completion/max_delay flush.
  for (std::uint8_t i = 0; i < 10; ++i) h.leader()->propose({i});
  h.sim.run_for(20 * kMillisecond);
  expect_gapless_and_ordered(h, 10);
}

TEST(ZabGroupCommit, LeaderCrashMidBatchPreservesOrderAndGaplessness) {
  ZabHarness h(3, 0, batched(/*max_batch=*/4));
  ASSERT_TRUE(h.wait_for_leader());
  Peer* old_leader = h.leader();
  for (std::uint8_t i = 0; i < 6; ++i) old_leader->propose({i});
  h.sim.run_for(1 * kSecond);
  const std::size_t committed_before = h.sms[0]->committed.size();
  EXPECT_EQ(committed_before, 6u);

  // A burst, then crash before any of it can commit: some entries are
  // broadcast, the rest sit unflushed in the leader's (durable) log.
  for (std::uint8_t i = 6; i < 16; ++i) old_leader->propose({i});
  old_leader->crash();
  ASSERT_TRUE(h.wait_for_leader(20 * kSecond));
  ASSERT_NE(h.leader(), old_leader);
  h.leader()->propose({100});
  h.sim.run_for(1 * kSecond);
  old_leader->restart();
  h.sim.run_for(5 * kSecond);

  // Whatever survived, every replica agrees on it, zxids are gapless per
  // epoch, and surviving pre-crash entries precede post-crash ones.
  const std::size_t total = h.sms[0]->committed.size();
  ASSERT_GE(total, committed_before + 1);
  expect_gapless_and_ordered(h, total);
  EXPECT_EQ(h.sms[0]->committed.back().payload, (std::vector<std::uint8_t>{100}));
  // The committed prefix from before the crash survived verbatim.
  for (std::size_t i = 0; i < committed_before; ++i) {
    EXPECT_EQ(h.sms[0]->committed[i].payload,
              std::vector<std::uint8_t>{static_cast<std::uint8_t>(i)});
  }
}

TEST(ZabGroupCommit, BatchingOffMatchesLegacyBehavior) {
  ZabHarness h(3);  // default options: max_batch = 1
  ASSERT_TRUE(h.wait_for_leader());
  for (std::uint8_t i = 0; i < 8; ++i) h.leader()->propose({i});
  h.sim.run_for(1 * kSecond);
  expect_gapless_and_ordered(h, 8);
  // Every proposal was its own broadcast round of one entry.
  const auto& batches = h.sim.obs().metrics.histogram("zab.batch_size", 0);
  EXPECT_EQ(batches.count(), 8u);
  EXPECT_EQ(batches.recorder().percentile_us(1.0), 1);
}

}  // namespace
}  // namespace wankeeper::zab

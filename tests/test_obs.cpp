// Flight-recorder tests: the metrics registry and tracer in isolation,
// LatencyRecorder edge cases, the WANKEEPER_LOG parser, the YCSB
// throughput guard — and end-to-end: the span sequence of a contended
// remote write, registry counters agreeing with the token auditor, and
// byte-identical exports across identical-seed experiment runs.
#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "wankeeper/deployment.h"
#include "ycsb/metrics.h"
#include "ycsb/runner.h"

namespace wankeeper {
namespace {

using obs::SpanKind;

// ---------------------------------------------------------------- registry

TEST(MetricsRegistry, CountersGaugesHistogramsBasics) {
  obs::MetricsRegistry reg;
  reg.counter("a.ops").inc();
  reg.counter("a.ops").inc(4);
  EXPECT_EQ(reg.counter("a.ops").value(), 5u);

  reg.gauge("a.depth").set(7);
  reg.gauge("a.depth").add(-3);
  EXPECT_EQ(reg.gauge("a.depth").value(), 4);

  reg.histogram("a.lat_us").record(100);
  reg.histogram("a.lat_us").record(300);
  EXPECT_EQ(reg.histogram("a.lat_us").count(), 2u);
  EXPECT_EQ(reg.histogram("a.lat_us").recorder().max_us(), 300);
}

TEST(MetricsRegistry, PerSiteScopingAndTotals) {
  obs::MetricsRegistry reg;
  reg.counter("token.grants", 0).inc(2);
  reg.counter("token.grants", 1).inc(3);
  reg.counter("token.grants").inc();  // global scope is a distinct key
  EXPECT_EQ(reg.counter("token.grants", 0).value(), 2u);
  EXPECT_EQ(reg.counter("token.grants", 1).value(), 3u);
  EXPECT_EQ(reg.counter_total("token.grants"), 6u);
  EXPECT_EQ(reg.counter_total("token.recalls"), 0u);
}

TEST(MetricsRegistry, HandlesAreStableAcrossInsertions) {
  obs::MetricsRegistry reg;
  obs::Counter& first = reg.counter("z.last");
  for (int i = 0; i < 100; ++i) {
    reg.counter("a." + std::to_string(i)).inc();
  }
  first.inc();
  EXPECT_EQ(reg.counter("z.last").value(), 1u);
}

TEST(MetricsRegistry, MergeFromSumsCountersGaugesAndHistograms) {
  obs::MetricsRegistry a;
  a.counter("zab.proposals", 0).inc(5);
  a.gauge("q.depth").set(3);
  a.histogram("lat_us").record(100);

  obs::MetricsRegistry b;
  b.counter("zab.proposals", 0).inc(2);
  b.counter("zab.proposals", 1).inc(4);  // site only present in b
  b.gauge("q.depth").set(-1);
  b.histogram("lat_us").record(900);

  a.merge_from(b);
  EXPECT_EQ(a.counter("zab.proposals", 0).value(), 7u);
  EXPECT_EQ(a.counter("zab.proposals", 1).value(), 4u);
  EXPECT_EQ(a.counter_total("zab.proposals"), 11u);
  EXPECT_EQ(a.gauge("q.depth").value(), 2);
  EXPECT_EQ(a.histogram("lat_us").count(), 2u);
  EXPECT_EQ(a.histogram("lat_us").recorder().max_us(), 900);
  // b is untouched by the fold.
  EXPECT_EQ(b.counter_total("zab.proposals"), 6u);
}

TEST(MetricsRegistry, SnapshotSortedAndJsonDeterministic) {
  auto populate = [](obs::MetricsRegistry& reg) {
    // Insert in unsorted order; exports must sort by (name, site).
    reg.counter("b.second", 2).inc(2);
    reg.counter("a.first", 1).inc();
    reg.counter("a.first", 0).inc();
    reg.gauge("c.depth").set(-5);
    reg.histogram("d.lat_us", 1).record(250);
    reg.histogram("d.lat_us", 1).record(750);
  };
  obs::MetricsRegistry r1, r2;
  populate(r1);
  populate(r2);

  const auto snap = r1.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(std::get<0>(snap.counters[0]), "a.first");
  EXPECT_EQ(std::get<1>(snap.counters[0]), 0);
  EXPECT_EQ(std::get<0>(snap.counters[2]), "b.second");

  EXPECT_EQ(r1.to_json(), r2.to_json());
  EXPECT_EQ(r1.to_table(), r2.to_table());
  EXPECT_NE(r1.to_json().find("\"a.first@0\": 1"), std::string::npos);
  EXPECT_NE(r1.to_json().find("\"c.depth@*\": -5"), std::string::npos);
  EXPECT_NE(r1.to_json().find("\"p50_us\": 250"), std::string::npos);

  r1.clear();
  EXPECT_EQ(r1.counter_total("a.first"), 0u);
}

// ------------------------------------------------------------------ tracer

TEST(Tracer, SpanLifecycleAndKeying) {
  obs::Tracer tr;
  const obs::TraceId t = tr.begin("setData /x", /*origin_site=*/1, /*now=*/100);
  ASSERT_NE(t, obs::kNoTrace);

  tr.open(t, SpanKind::kEnqueue, 1, "s1", 100);
  tr.open(t, SpanKind::kZabPropose, 0, "va", 150);  // concurrent, other site
  tr.open(t, SpanKind::kZabPropose, 1, "ca", 160);
  tr.close(t, SpanKind::kZabPropose, 0, 200);  // must hit site 0, not site 1
  tr.close(t, SpanKind::kZabPropose, 1, 260);
  tr.close(t, SpanKind::kEnqueue, 1, 120);
  tr.point(t, SpanKind::kApply, 1, "s1", 300);
  tr.end(t, 310);

  const obs::TraceRecord* rec = tr.find(t);
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->completed());
  EXPECT_EQ(rec->duration(), 210);
  ASSERT_EQ(rec->spans.size(), 4u);
  EXPECT_EQ(rec->spans[1].site, 0);
  EXPECT_EQ(rec->spans[1].duration(), 50);
  EXPECT_EQ(rec->spans[2].site, 1);
  EXPECT_EQ(rec->spans[2].duration(), 100);
  EXPECT_EQ(rec->spans[3].duration(), 0);  // point event

  const auto kinds = tr.kinds_of(t);
  const std::vector<SpanKind> want{SpanKind::kEnqueue, SpanKind::kZabPropose,
                                   SpanKind::kZabPropose, SpanKind::kApply};
  EXPECT_EQ(kinds, want);
}

TEST(Tracer, CloseWithoutOpenAndUnknownTraceAreNoOps) {
  obs::Tracer tr;
  tr.close(42, SpanKind::kWanHop, 0, 10);  // unknown trace
  const obs::TraceId t = tr.begin("op", 0, 0);
  tr.close(t, SpanKind::kWanHop, 0, 10);  // never opened
  tr.open(t, SpanKind::kWanHop, 0, "b", 20);
  tr.close(t, SpanKind::kWanHop, 1, 30);  // wrong site: no-op
  ASSERT_EQ(tr.find(t)->spans.size(), 1u);
  EXPECT_FALSE(tr.find(t)->spans[0].closed());
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  obs::Tracer tr;
  tr.set_enabled(false);
  EXPECT_EQ(tr.begin("op", 0, 0), obs::kNoTrace);
  EXPECT_EQ(tr.trace_count(), 0u);
}

TEST(Tracer, SlowestOrdersByDurationThenId) {
  obs::Tracer tr;
  const auto a = tr.begin("a", 0, 0);
  tr.end(a, 100);
  const auto b = tr.begin("b", 0, 0);
  tr.end(b, 500);
  const auto c = tr.begin("c", 0, 0);
  tr.end(c, 100);
  const auto d = tr.begin("d", 0, 0);  // never completes: excluded
  (void)d;

  const auto top = tr.slowest(10);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0]->id, b);
  EXPECT_EQ(top[1]->id, a);  // duration tie with c: lower id first
  EXPECT_EQ(top[2]->id, c);
  EXPECT_EQ(tr.slowest(1).size(), 1u);
}

TEST(Tracer, SpanLatenciesAndReports) {
  obs::Tracer tr;
  const auto t = tr.begin("setData /k", 2, 1000);
  tr.open(t, SpanKind::kWanHop, 0, "fra-l1", 1000, "site 2 -> site 0");
  tr.close(t, SpanKind::kWanHop, 0, 45000);
  tr.end(t, 90000);

  const auto lat = tr.span_latencies(SpanKind::kWanHop);
  ASSERT_EQ(lat.count(), 1u);
  EXPECT_EQ(lat.max_us(), 44000);
  EXPECT_EQ(tr.span_latencies(SpanKind::kTokenWait).count(), 0u);

  const std::string text = tr.format_trace(t);
  EXPECT_NE(text.find("setData /k"), std::string::npos);
  EXPECT_NE(text.find("wan_hop"), std::string::npos);
  EXPECT_NE(text.find("site 2 -> site 0"), std::string::npos);
  const std::string table = tr.breakdown_table();
  EXPECT_NE(table.find("wan_hop"), std::string::npos);
  EXPECT_EQ(table.find("token_wait"), std::string::npos);  // empty kinds omitted
}

// ------------------------------------------- satellite: LatencyRecorder

TEST(LatencyRecorder, MergePreservesExactPercentiles) {
  LatencyRecorder a, b;
  for (Time v : {10, 30, 50, 70, 90}) a.record(v);
  for (Time v : {20, 40, 60, 80, 100}) b.record(v);
  a.merge(b);
  ASSERT_EQ(a.count(), 10u);
  // Nearest-rank over the merged, sorted samples 10..100.
  EXPECT_EQ(a.percentile_us(0.5), 50);
  EXPECT_EQ(a.percentile_us(0.9), 90);
  EXPECT_EQ(a.percentile_us(0.91), 100);
  EXPECT_EQ(a.min_us(), 10);
  EXPECT_EQ(a.max_us(), 100);
}

TEST(LatencyRecorder, PercentileBoundaryRanks) {
  LatencyRecorder r;
  for (Time v : {5, 15, 25}) r.record(v);
  EXPECT_EQ(r.percentile_us(0.0), 5);   // rank 0 clamps to the first sample
  EXPECT_EQ(r.percentile_us(1.0), 25);  // rank n is the last sample
  EXPECT_THROW(r.percentile_us(1.5), std::invalid_argument);
  LatencyRecorder empty;
  EXPECT_EQ(empty.percentile_us(0.5), 0);
}

TEST(LatencyRecorder, CdfEmptyAndSingleSample) {
  LatencyRecorder empty;
  EXPECT_TRUE(empty.cdf().empty());

  LatencyRecorder one;
  one.record(2000);
  const auto points = one.cdf();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].first, 2.0);  // ms
  EXPECT_DOUBLE_EQ(points[0].second, 1.0);
}

// --------------------------------------- satellite: throughput guard

TEST(ClientMetrics, ThroughputGuardsUnfinishedRuns) {
  ycsb::ClientMetrics m;
  m.ops = 100;
  m.started = 5 * kSecond;
  m.finished = 0;  // crashed mid-run: finished never stamped
  EXPECT_DOUBLE_EQ(m.throughput(), 0.0);
  m.finished = m.started;  // zero-length window
  EXPECT_DOUBLE_EQ(m.throughput(), 0.0);
  m.finished = m.started + 10 * kSecond;
  EXPECT_DOUBLE_EQ(m.throughput(), 10.0);
}

// --------------------------------------- satellite: WANKEEPER_LOG parsing

TEST(Logging, LevelFromStringAcceptsDocumentedLevels) {
  EXPECT_EQ(log_level_from_string("trace"), LogLevel::kTrace);
  EXPECT_EQ(log_level_from_string("debug"), LogLevel::kDebug);
  EXPECT_EQ(log_level_from_string("info"), LogLevel::kInfo);
  EXPECT_EQ(log_level_from_string("warn"), LogLevel::kWarn);
  EXPECT_EQ(log_level_from_string("error"), LogLevel::kError);
}

TEST(Logging, LevelFromStringIgnoresJunk) {
  EXPECT_EQ(log_level_from_string(nullptr), LogLevel::kOff);
  EXPECT_EQ(log_level_from_string(""), LogLevel::kOff);
  EXPECT_EQ(log_level_from_string("off"), LogLevel::kOff);
  EXPECT_EQ(log_level_from_string("DEBUG"), LogLevel::kOff);  // case-sensitive
  EXPECT_EQ(log_level_from_string("verbose"), LogLevel::kOff);
  EXPECT_EQ(log_level_from_string("info "), LogLevel::kOff);
}

// ------------------------------------------------------------ integration

constexpr SiteId kVA = 0;
constexpr SiteId kCA = 1;
constexpr SiteId kFRA = 2;

struct WanFixture {
  sim::Simulator sim{2024};
  sim::Network net{sim, sim::LatencyModel::paper_wan()};
  wk::TokenAuditor audit;
  wk::Deployment deploy;

  explicit WanFixture(wk::DeploymentConfig cfg = {})
      : deploy(sim, net, cfg, &audit) {}

  zk::ClientResult run_op(const std::function<void(zk::Client::Callback)>& op,
                          Time max_wait = 5 * kSecond) {
    zk::ClientResult out;
    bool done = false;
    op([&](const zk::ClientResult& r) {
      out = r;
      done = true;
    });
    const Time deadline = sim.now() + max_wait;
    while (!done && sim.now() < deadline && sim.step()) {
    }
    EXPECT_TRUE(done) << "op did not complete";
    return out;
  }
};

bool has_subsequence(const std::vector<SpanKind>& kinds,
                     const std::vector<SpanKind>& want) {
  std::size_t i = 0;
  for (const SpanKind k : kinds) {
    if (i < want.size() && k == want[i]) ++i;
  }
  return i == want.size();
}

// Migrate /hot's token to California, then write it from Frankfurt: the
// write must be forwarded to L2, park behind a recall, get serialized at
// Virginia, and fan back out — and its trace must say exactly that.
TEST(ObsIntegration, ContendedRemoteWriteSpanSequence) {
  WanFixture f;
  ASSERT_TRUE(f.deploy.wait_ready());
  auto ca = f.deploy.make_client("ca-client", kCA, 9001);
  auto fra = f.deploy.make_client("fra-client", kFRA, 9002);

  // Two consecutive CA accesses: the consecutive:2 policy migrates the token.
  ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                 ca->create("/hot", "0", false, false, std::move(cb));
               }).ok());
  ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                 ca->set_data("/hot", "1", -1, std::move(cb));
               }).ok());
  f.sim.run_for(1 * kSecond);
  ASSERT_TRUE(f.deploy.site_leader(kCA)->site_tokens().owns(wk::node_token("/hot")));

  // Record only the contended write.
  f.sim.obs().clear();
  const Time t0 = f.sim.now();
  ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                 fra->set_data("/hot", "2", -1, std::move(cb));
               }).ok());
  const Time latency = f.sim.now() - t0;

  const auto& tracer = f.sim.obs().tracer;
  const obs::TraceRecord* trace = nullptr;
  for (const obs::TraceRecord& rec : tracer.traces()) {
    if (rec.what == "setData /hot" && rec.origin_site == kFRA) trace = &rec;
  }
  ASSERT_NE(trace, nullptr) << "contended write left no trace";
  EXPECT_TRUE(trace->completed());
  EXPECT_EQ(trace->duration(), latency);

  const auto kinds = tracer.kinds_of(trace->id);
  EXPECT_TRUE(has_subsequence(
      kinds, {SpanKind::kEnqueue, SpanKind::kWanHop, SpanKind::kTokenWait,
              SpanKind::kZabPropose, SpanKind::kApply}))
      << tracer.format_trace(trace->id);

  // Up hop (FRA->VA) and down hop (VA->FRA): at least two WAN hops, and the
  // recall round-trip puts the token wait at >= one VA<->CA RTT (62 ms).
  std::size_t wan_hops = 0;
  Time token_wait = 0;
  for (const auto& span : trace->spans) {
    if (span.kind == SpanKind::kWanHop) ++wan_hops;
    if (span.kind == SpanKind::kTokenWait && span.closed()) {
      token_wait += span.duration();
    }
  }
  EXPECT_GE(wan_hops, 2u) << tracer.format_trace(trace->id);
  EXPECT_GE(token_wait, 60 * kMillisecond) << tracer.format_trace(trace->id);
  EXPECT_TRUE(f.audit.clean());

  // The recall RTT landed in the registry too.
  EXPECT_EQ(f.sim.obs().metrics.counter_total("token.recalls"), 1u);
  EXPECT_EQ(
      f.sim.obs().metrics.histogram("token.recall_latency_us").count(), 1u);
}

// Registry counters are incremented adjacent to every auditor count, so
// after any workload the two books must agree exactly.
TEST(ObsIntegration, RegistryCountersMatchTokenAuditor) {
  WanFixture f;
  ASSERT_TRUE(f.deploy.wait_ready());
  auto ca = f.deploy.make_client("ca-client", kCA, 9001);
  auto fra = f.deploy.make_client("fra-client", kFRA, 9002);

  auto write = [&](zk::Client& c, const std::string& path, const char* v) {
    ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                   c.set_data(path, v, -1, std::move(cb));
                 }).ok());
  };
  ASSERT_TRUE(f.run_op([&](zk::Client::Callback cb) {
                 ca->create("/contended", "0", false, false, std::move(cb));
               }).ok());
  for (int round = 0; round < 3; ++round) {
    write(*ca, "/contended", "ca");
    write(*ca, "/contended", "ca2");  // migrates the token to CA
    f.sim.run_for(1 * kSecond);
    write(*ca, "/contended", "local");  // local commit under the token
    write(*fra, "/contended", "fra");   // recall + L2 serve
    f.sim.run_for(1 * kSecond);
  }
  f.sim.run_for(2 * kSecond);

  const auto& reg = f.sim.obs().metrics;
  EXPECT_EQ(reg.counter_total("token.grants"), f.audit.grants());
  EXPECT_EQ(reg.counter_total("token.recalls"), f.audit.recalls());
  EXPECT_EQ(reg.counter_total("token.returns"), f.audit.returns());
  EXPECT_EQ(reg.counter_total("token.local_commits"), f.audit.local_commits());
  EXPECT_EQ(reg.counter_total("token.remote_commits"), f.audit.remote_commits());
  EXPECT_GT(f.audit.grants(), 0u);
  EXPECT_GT(f.audit.recalls(), 0u);
  EXPECT_GT(f.audit.local_commits(), 0u);
  EXPECT_TRUE(f.audit.clean());
}

// Same config + seed twice: the flight-recorder exports must be identical,
// byte for byte.
TEST(ObsIntegration, ExportsAreDeterministicAcrossRuns) {
  auto run = [] {
    ycsb::RunConfig cfg;
    cfg.system = ycsb::SystemKind::kWanKeeper;
    cfg.seed = 7;
    for (SiteId site : {kCA, kFRA}) {
      ycsb::ClientSpec client;
      client.site = site;
      client.shared_fraction = 0.5;
      client.workload.record_count = 40;
      client.workload.op_count = 120;
      client.workload.write_fraction = 1.0;
      client.workload.seed = 42 + static_cast<std::uint64_t>(site);
      cfg.clients.push_back(client);
    }
    return ycsb::run_experiment(cfg);
  };
  const ycsb::RunResult r1 = run();
  const ycsb::RunResult r2 = run();

  EXPECT_FALSE(r1.metrics_json.empty());
  EXPECT_EQ(r1.metrics_json, r2.metrics_json);
  ASSERT_EQ(r1.slow_traces.size(), r2.slow_traces.size());
  EXPECT_GT(r1.slow_traces.size(), 0u);
  for (std::size_t i = 0; i < r1.slow_traces.size(); ++i) {
    EXPECT_EQ(r1.slow_traces[i], r2.slow_traces[i]);
  }
  ASSERT_EQ(r1.phase_breakdown.size(), obs::kSpanKindCount);
  for (std::size_t i = 0; i < r1.phase_breakdown.size(); ++i) {
    EXPECT_EQ(r1.phase_breakdown[i].kind, r2.phase_breakdown[i].kind);
    EXPECT_EQ(r1.phase_breakdown[i].count, r2.phase_breakdown[i].count);
    EXPECT_EQ(r1.phase_breakdown[i].p50_us, r2.phase_breakdown[i].p50_us);
    EXPECT_EQ(r1.phase_breakdown[i].p99_us, r2.phase_breakdown[i].p99_us);
    EXPECT_EQ(r1.phase_breakdown[i].total_us, r2.phase_breakdown[i].total_us);
  }
  // The breakdown actually saw the workload: every write proposes via Zab.
  const auto& zab = r1.phase_breakdown[static_cast<std::size_t>(
      SpanKind::kZabPropose)];
  EXPECT_GT(zab.count, 0u);
}

}  // namespace
}  // namespace wankeeper

// Unit tests: znode paths, transactions, the data tree, and watches.
#include <gtest/gtest.h>

#include "store/datatree.h"
#include "store/paths.h"
#include "store/txn.h"
#include "store/watch.h"

namespace wankeeper::store {
namespace {

// ----------------------------------------------------------------- paths

TEST(Paths, Validation) {
  EXPECT_TRUE(valid_path("/"));
  EXPECT_TRUE(valid_path("/a"));
  EXPECT_TRUE(valid_path("/a/b/c"));
  EXPECT_FALSE(valid_path(""));
  EXPECT_FALSE(valid_path("a"));
  EXPECT_FALSE(valid_path("/a/"));
  EXPECT_FALSE(valid_path("/a//b"));
}

TEST(Paths, ParentAndBasename) {
  EXPECT_EQ(parent_path("/a/b/c"), "/a/b");
  EXPECT_EQ(parent_path("/a"), "/");
  EXPECT_EQ(parent_path("/"), "");
  EXPECT_EQ(basename("/a/b"), "b");
  EXPECT_EQ(basename("/a"), "a");
  EXPECT_EQ(basename("/"), "");
}

TEST(Paths, Join) {
  EXPECT_EQ(join_path("/", "a"), "/a");
  EXPECT_EQ(join_path("/a", "b"), "/a/b");
}

TEST(Paths, SequentialNames) {
  EXPECT_EQ(sequential_name("lock-", 7), "lock-0000000007");
  EXPECT_EQ(sequence_of("lock-0000000007"), 7);
  EXPECT_EQ(sequence_of("lock-"), -1);
  EXPECT_EQ(sequence_of("plain"), -1);
  EXPECT_EQ(sequence_of("x0000000123"), 123);
}

// ------------------------------------------------------------------- txn

TEST(Txn, EncodeDecodeRoundTrip) {
  Txn t;
  t.type = TxnType::kCreate;
  t.zxid = make_zxid(3, 17);
  t.path = "/a/b";
  t.data = {1, 2, 3};
  t.ephemeral = true;
  t.version = 5;
  t.session = 12345;
  t.session_timeout = 6 * kSecond;
  t.parent_cversion = 9;
  t.paths = {"node:/x", "seq:/y"};
  t.origin_site = 2;
  t.origin_zxid = make_zxid(1, 1);
  t.gseq = 777;
  t.error = 4;
  EXPECT_EQ(Txn::decode(t.encode()), t);
}

TEST(Txn, NestedMultiRoundTrip) {
  Txn outer;
  outer.type = TxnType::kMulti;
  Txn a;
  a.type = TxnType::kCreate;
  a.path = "/m/a";
  Txn b;
  b.type = TxnType::kSetData;
  b.path = "/m/b";
  b.version = 3;
  outer.ops = {a, b};
  EXPECT_EQ(Txn::decode(outer.encode()), outer);
}

// -------------------------------------------------------------- datatree

Txn create_txn(const std::string& path, Zxid zxid, const std::string& data = "",
               bool ephemeral = false, SessionId owner = kNoSession,
               std::int32_t parent_cversion = 0) {
  Txn t;
  t.type = TxnType::kCreate;
  t.zxid = zxid;
  t.path = path;
  t.data.assign(data.begin(), data.end());
  t.ephemeral = ephemeral;
  t.session = owner;
  t.parent_cversion = parent_cversion;
  return t;
}

TEST(DataTree, CreateGetDelete) {
  DataTree tree;
  EXPECT_EQ(tree.apply(create_txn("/a", 1, "hello"), 100), Rc::kOk);
  std::vector<std::uint8_t> data;
  Stat stat;
  EXPECT_EQ(tree.get_data("/a", &data, &stat), Rc::kOk);
  EXPECT_EQ(std::string(data.begin(), data.end()), "hello");
  EXPECT_EQ(stat.czxid, 1u);
  EXPECT_EQ(stat.version, 0);

  Txn del;
  del.type = TxnType::kDelete;
  del.zxid = 2;
  del.path = "/a";
  del.version = 0x7fffffff;
  EXPECT_EQ(tree.apply(del, 200), Rc::kOk);
  EXPECT_FALSE(tree.exists("/a"));
}

TEST(DataTree, CreateRequiresParent) {
  DataTree tree;
  EXPECT_EQ(tree.apply(create_txn("/a/b", 1), 0), Rc::kNoNode);
}

TEST(DataTree, DuplicateCreateRejected) {
  DataTree tree;
  EXPECT_EQ(tree.apply(create_txn("/a", 1), 0), Rc::kOk);
  EXPECT_EQ(tree.apply(create_txn("/a", 2), 0), Rc::kNodeExists);
}

TEST(DataTree, DeleteNonEmptyRejected) {
  DataTree tree;
  tree.apply(create_txn("/a", 1), 0);
  tree.apply(create_txn("/a/b", 2), 0);
  Txn del;
  del.type = TxnType::kDelete;
  del.zxid = 3;
  del.path = "/a";
  del.version = 0x7fffffff;
  EXPECT_EQ(tree.apply(del, 0), Rc::kNotEmpty);
  EXPECT_TRUE(tree.exists("/a"));
}

TEST(DataTree, SetDataStampsVersion) {
  DataTree tree;
  tree.apply(create_txn("/a", 1), 0);
  Txn set;
  set.type = TxnType::kSetData;
  set.zxid = 2;
  set.path = "/a";
  set.data = {'x'};
  set.version = 1;
  EXPECT_EQ(tree.apply(set, 50), Rc::kOk);
  Stat stat;
  tree.get_data("/a", nullptr, &stat);
  EXPECT_EQ(stat.version, 1);
  EXPECT_EQ(stat.mzxid, 2u);
}

TEST(DataTree, StaleZxidSkipped) {
  DataTree tree;
  tree.apply(create_txn("/a", 5, "v1"), 0);
  // Replayed older txn must not re-apply.
  Txn set;
  set.type = TxnType::kSetData;
  set.zxid = 4;
  set.path = "/a";
  set.data = {'z'};
  set.version = 9;
  EXPECT_EQ(tree.apply(set, 0), Rc::kOk);
  std::vector<std::uint8_t> data;
  tree.get_data("/a", &data);
  EXPECT_EQ(std::string(data.begin(), data.end()), "v1");
  EXPECT_EQ(tree.last_applied(), 5u);
}

TEST(DataTree, EphemeralsTrackedAndRemovedOnCloseSession) {
  DataTree tree;
  tree.apply(create_txn("/e1", 1, "", true, 100), 0);
  tree.apply(create_txn("/e2", 2, "", true, 100), 0);
  tree.apply(create_txn("/p", 3, "", false), 0);
  EXPECT_EQ(tree.ephemerals_of(100).size(), 2u);

  Txn close;
  close.type = TxnType::kCloseSession;
  close.zxid = 4;
  close.session = 100;
  EXPECT_EQ(tree.apply(close, 0), Rc::kOk);
  EXPECT_FALSE(tree.exists("/e1"));
  EXPECT_FALSE(tree.exists("/e2"));
  EXPECT_TRUE(tree.exists("/p"));
  EXPECT_TRUE(tree.ephemerals_of(100).empty());
}

TEST(DataTree, EphemeralsCannotHaveChildren) {
  DataTree tree;
  tree.apply(create_txn("/e", 1, "", true, 100), 0);
  EXPECT_EQ(tree.apply(create_txn("/e/c", 2), 0), Rc::kNoChildrenForEphemerals);
}

TEST(DataTree, ChildrenListedSorted) {
  DataTree tree;
  tree.apply(create_txn("/p", 1), 0);
  tree.apply(create_txn("/p/c", 2), 0);
  tree.apply(create_txn("/p/a", 3), 0);
  tree.apply(create_txn("/p/b", 4), 0);
  std::vector<std::string> children;
  EXPECT_EQ(tree.get_children("/p", &children), Rc::kOk);
  EXPECT_EQ(children, (std::vector<std::string>{"a", "b", "c"}));
  Stat stat;
  tree.exists("/p", &stat);
  EXPECT_EQ(stat.num_children, 3);
}

TEST(DataTree, ParentCversionTakesMaxForConvergence) {
  // Two sites stamping the same counter value concurrently must converge.
  DataTree a, b;
  a.apply(create_txn("/p", 1), 0);
  b.apply(create_txn("/p", 1), 0);
  // Site A's create stamped cversion 2, site B's stamped 2 as well; each
  // replica applies them in a different order.
  auto ca = create_txn("/p/a", 2, "", false, kNoSession, 2);
  auto cb = create_txn("/p/b", 3, "", false, kNoSession, 2);
  a.apply(ca, 0);
  a.apply(cb, 0);
  auto ca2 = create_txn("/p/a", 3, "", false, kNoSession, 2);
  auto cb2 = create_txn("/p/b", 2, "", false, kNoSession, 2);
  b.apply(cb2, 0);
  b.apply(ca2, 0);
  Stat sa, sb;
  a.exists("/p", &sa);
  b.exists("/p", &sb);
  EXPECT_EQ(sa.cversion, sb.cversion);
  EXPECT_EQ(sa.num_children, 2);
  EXPECT_EQ(sb.num_children, 2);
}

TEST(DataTree, DigestEqualForSameHistoryDiffersOtherwise) {
  DataTree a, b;
  for (Zxid z = 1; z <= 5; ++z) {
    a.apply(create_txn("/n" + std::to_string(z), z, "v"), 0);
    b.apply(create_txn("/n" + std::to_string(z), z, "v"), 0);
  }
  EXPECT_EQ(a.digest(), b.digest());
  b.apply(create_txn("/extra", 6), 0);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(DataTree, SnapshotRestoreRoundTrip) {
  DataTree tree;
  tree.apply(create_txn("/a", 1, "x"), 10);
  tree.apply(create_txn("/a/b", 2, "y", true, 42), 20);
  Txn set;
  set.type = TxnType::kSetData;
  set.zxid = 3;
  set.path = "/a";
  set.data = {'z'};
  set.version = 1;
  tree.apply(set, 30);

  const auto snap = tree.snapshot();
  DataTree restored;
  restored.restore(snap);
  EXPECT_EQ(restored.digest(), tree.digest());
  EXPECT_EQ(restored.last_applied(), tree.last_applied());
  EXPECT_EQ(restored.ephemerals_of(42).size(), 1u);
  std::vector<std::string> children;
  restored.get_children("/a", &children);
  EXPECT_EQ(children, (std::vector<std::string>{"b"}));
}

// ----------------------------------------------------------------- watch

TEST(WatchManager, DataWatchFiresOnceOnSetData) {
  WatchManager wm;
  wm.add_data_watch("/a", 1);
  Txn set;
  set.type = TxnType::kSetData;
  set.path = "/a";
  auto fires = wm.on_txn(set);
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], (WatchFire{1, "/a", WatchEvent::kDataChanged}));
  EXPECT_TRUE(wm.on_txn(set).empty());  // one-shot
}

TEST(WatchManager, CreateFiresExistsWatchAndParentChildWatch) {
  WatchManager wm;
  wm.add_data_watch("/p/c", 1);   // exists() watch on absent node
  wm.add_child_watch("/p", 2);
  Txn create;
  create.type = TxnType::kCreate;
  create.path = "/p/c";
  const auto fires = wm.on_txn(create);
  ASSERT_EQ(fires.size(), 2u);
  EXPECT_EQ(fires[0], (WatchFire{1, "/p/c", WatchEvent::kCreated}));
  EXPECT_EQ(fires[1], (WatchFire{2, "/p", WatchEvent::kChildrenChanged}));
}

TEST(WatchManager, DeleteFiresNodeAndParentWatches) {
  WatchManager wm;
  wm.add_data_watch("/p/c", 1);
  wm.add_child_watch("/p/c", 2);
  wm.add_child_watch("/p", 3);
  Txn del;
  del.type = TxnType::kDelete;
  del.path = "/p/c";
  const auto fires = wm.on_txn(del);
  EXPECT_EQ(fires.size(), 3u);
}

TEST(WatchManager, CloseSessionFiresForImpliedDeletes) {
  WatchManager wm;
  wm.add_data_watch("/eph", 7);
  Txn close;
  close.type = TxnType::kCloseSession;
  close.session = 9;
  const auto fires = wm.on_txn(close, {"/eph"});
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0].event, WatchEvent::kDeleted);
}

TEST(WatchManager, RemoveSessionDropsItsWatches) {
  WatchManager wm;
  wm.add_data_watch("/a", 1);
  wm.add_data_watch("/a", 2);
  wm.add_child_watch("/b", 1);
  wm.remove_session(1);
  EXPECT_EQ(wm.data_watch_count(), 1u);
  EXPECT_EQ(wm.child_watch_count(), 0u);
}

TEST(WatchManager, MultiFiresSubOpWatches) {
  WatchManager wm;
  wm.add_data_watch("/x", 1);
  wm.add_data_watch("/y", 2);
  Txn multi;
  multi.type = TxnType::kMulti;
  Txn sx;
  sx.type = TxnType::kSetData;
  sx.path = "/x";
  Txn sy;
  sy.type = TxnType::kSetData;
  sy.path = "/y";
  multi.ops = {sx, sy};
  EXPECT_EQ(wm.on_txn(multi).size(), 2u);
}

}  // namespace
}  // namespace wankeeper::store

// Unit tests: serialization buffers, seeded RNG and distributions,
// latency/throughput statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/buffer.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/types.h"

namespace wankeeper {
namespace {

// ---------------------------------------------------------------- buffer

TEST(Buffer, RoundTripsScalars) {
  BufferWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.boolean(true);
  w.boolean(false);

  BufferReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Buffer, RoundTripsStringsAndBlobs) {
  BufferWriter w;
  w.str("hello");
  w.str("");
  w.blob({1, 2, 3});
  w.blob({});
  BufferReader r(w.bytes());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.blob(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(r.blob().empty());
}

TEST(Buffer, UnderflowThrows) {
  BufferWriter w;
  w.u8(1);
  BufferReader r(w.bytes());
  r.u8();
  EXPECT_THROW(r.u32(), BufferError);
}

TEST(Buffer, TruncatedStringThrows) {
  BufferWriter w;
  w.u32(100);  // claims a 100-byte string with no body
  BufferReader r(w.bytes());
  EXPECT_THROW(r.str(), BufferError);
}

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(7), c2(8);
  EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, UniformStaysInRangeAndCoversIt) {
  Rng rng(3);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [v, n] : counts) {
    EXPECT_GT(n, 800) << "value " << v;  // ~1000 expected
    EXPECT_LT(n, 1200) << "value " << v;
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceRespectsProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits, 3000, 200);
}

TEST(Rng, NormalMeanAndSpread) {
  Rng rng(13);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, UniformZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

// --------------------------------------------------------------- zipfian

TEST(Zipfian, PmfMatchesFormula) {
  // f(k; s, N) = (1/k^s) / sum_{n=1..N} 1/n^s  — the paper's formula.
  Zipfian z(100, 0.99);
  double total = 0;
  for (std::uint64_t k = 1; k <= 100; ++k) total += z.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(z.pmf(1), z.pmf(2));
  EXPECT_GT(z.pmf(2), z.pmf(50));
}

TEST(Zipfian, EmpiricalFrequenciesTrackPmf) {
  const std::uint64_t n = 100;
  Zipfian z(n, 0.99);
  Rng rng(17);
  std::map<std::uint64_t, int> counts;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[z.next(rng)];
  // Rank 0 (the hottest key) should match pmf(1) closely.
  EXPECT_NEAR(static_cast<double>(counts[0]) / draws, z.pmf(1), 0.01);
  // Skew: top item much hotter than median item.
  EXPECT_GT(counts[0], counts[49] * 10);
}

TEST(Zipfian, AllDrawsInRange) {
  Zipfian z(10, 0.99);
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(z.next(rng), 10u);
}

TEST(Zipfian, EmptyKeyspaceThrows) {
  EXPECT_THROW(Zipfian(0, 0.99), std::invalid_argument);
}

// --------------------------------------------------------------- hotspot

TEST(Hotspot, OpFractionLandsOnHotSet) {
  Hotspot h(1000, 0.2, 0.8, 42);
  EXPECT_EQ(h.hot_set().size(), 200u);
  std::set<std::uint64_t> hot(h.hot_set().begin(), h.hot_set().end());
  Rng rng(23);
  int hot_hits = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    hot_hits += hot.count(h.next(rng)) != 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hot_hits) / draws, 0.8, 0.02);
}

TEST(Hotspot, DifferentSeedsGiveDifferentHotSets) {
  Hotspot a(1000, 0.2, 0.8, 1);
  Hotspot b(1000, 0.2, 0.8, 2);
  std::set<std::uint64_t> sa(a.hot_set().begin(), a.hot_set().end());
  int common = 0;
  for (auto k : b.hot_set()) common += sa.count(k) != 0 ? 1 : 0;
  // Expected overlap of two random 20% subsets is ~40 of 200.
  EXPECT_LT(common, 100);
}

TEST(Hotspot, WholeKeyspaceHotDegeneratesToUniform) {
  Hotspot h(100, 1.0, 0.8, 1);
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(h.next(rng), 100u);
}

// ----------------------------------------------------------------- stats

TEST(LatencyRecorder, MeanMinMaxPercentiles) {
  LatencyRecorder r;
  for (Time v : {10, 20, 30, 40, 50, 60, 70, 80, 90, 100}) r.record(v * 1000);
  EXPECT_EQ(r.count(), 10u);
  EXPECT_DOUBLE_EQ(r.mean_ms(), 55.0);
  EXPECT_EQ(r.min_us(), 10000);
  EXPECT_EQ(r.max_us(), 100000);
  EXPECT_EQ(r.percentile_us(0.5), 50000);
  EXPECT_EQ(r.percentile_us(0.9), 90000);
  EXPECT_EQ(r.percentile_us(1.0), 100000);
  EXPECT_EQ(r.percentile_us(0.0), 10000);
}

TEST(LatencyRecorder, CdfIsMonotoneAndEndsAtOne) {
  LatencyRecorder r;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) r.record(static_cast<Time>(rng.uniform(100000)));
  const auto cdf = r.cdf(20);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LE(cdf[i - 1].second, cdf[i].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(LatencyRecorder, MergeCombinesSamples) {
  LatencyRecorder a, b;
  a.record(10);
  b.record(20);
  b.record(30);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max_us(), 30);
}

TEST(LatencyRecorder, EmptyRecorderIsSafe) {
  LatencyRecorder r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_DOUBLE_EQ(r.mean_us(), 0.0);
  EXPECT_EQ(r.percentile_us(0.9), 0);
  EXPECT_TRUE(r.cdf().empty());
}

TEST(ThroughputSeries, BucketsByWindow) {
  ThroughputSeries s(10 * kSecond);
  s.record(1 * kSecond);
  s.record(2 * kSecond);
  s.record(15 * kSecond);
  s.record(25 * kSecond);
  const auto ops = s.ops_per_sec();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_DOUBLE_EQ(ops[0], 0.2);
  EXPECT_DOUBLE_EQ(ops[1], 0.1);
  EXPECT_DOUBLE_EQ(ops[2], 0.1);
}

TEST(Types, ZxidPacksEpochAndCounter) {
  const Zxid z = make_zxid(7, 1234);
  EXPECT_EQ(zxid_epoch(z), 7u);
  EXPECT_EQ(zxid_counter(z), 1234u);
  EXPECT_GT(make_zxid(8, 0), make_zxid(7, 0xffffffffu));
}

}  // namespace
}  // namespace wankeeper

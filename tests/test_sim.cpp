// Unit tests: discrete-event simulator, actors, and the simulated WAN.
#include <gtest/gtest.h>

#include <vector>

#include "sim/actor.h"
#include "sim/failure.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace wankeeper {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  sim::Simulator sim;
  std::vector<int> order;
  sim.at(30, [&]() { order.push_back(3); });
  sim.at(10, [&]() { order.push_back(1); });
  sim.at(20, [&]() { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimesRunInScheduleOrder) {
  sim::Simulator sim;
  std::vector<int> order;
  sim.at(10, [&]() { order.push_back(1); });
  sim.at(10, [&]() { order.push_back(2); });
  sim.at(10, [&]() { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelSuppressesEvent) {
  sim::Simulator sim;
  bool fired = false;
  const auto id = sim.after(10, [&]() { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  sim.cancel(id);  // double-cancel is a no-op
  sim.cancel(9999);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  sim::Simulator sim;
  int count = 0;
  sim.at(10, [&]() { ++count; });
  sim.at(20, [&]() { ++count; });
  sim.at(30, [&]() { ++count; });
  sim.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 20);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  sim::Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  sim::Simulator sim;
  sim.at(100, []() {});
  sim.run();
  EXPECT_THROW(sim.at(50, []() {}), std::invalid_argument);
}

TEST(Simulator, NestedSchedulingWorks) {
  sim::Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) sim.after(10, recurse);
  };
  sim.after(10, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 50);
}

// ----------------------------------------------------------------- actors

class Recorder : public sim::Actor {
 public:
  using Actor::Actor;
  void on_message(NodeId from, const sim::MessagePtr& msg) override {
    received.emplace_back(from, msg, now());
  }
  std::vector<std::tuple<NodeId, sim::MessagePtr, Time>> received;
};

struct PingMsg : sim::Message {
  int n = 0;
  const char* name() const override { return "test.ping"; }
};

TEST(Actor, TimerSkippedAfterCrash) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(1, 100, 100));
  Recorder a(sim, "a");
  net.add_node(a, 0);
  bool fired = false;
  a.set_timer(100, [&]() { fired = true; });
  sim.at(50, [&]() { a.crash(); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Actor, TimerFromOldIncarnationSkippedAfterRestart) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(1, 100, 100));
  Recorder a(sim, "a");
  net.add_node(a, 0);
  bool old_fired = false, new_fired = false;
  a.set_timer(100, [&]() { old_fired = true; });
  sim.at(50, [&]() {
    a.crash();
    a.restart();
    a.set_timer(100, [&]() { new_fired = true; });
  });
  sim.run();
  EXPECT_FALSE(old_fired);
  EXPECT_TRUE(new_fired);
}

// ---------------------------------------------------------------- network

TEST(Network, DeliversWithSiteLatency) {
  sim::Simulator sim;
  sim::LatencyModel lat({{100, 5000}, {5000, 100}}, /*jitter=*/0.0);
  sim::Network net(sim, lat);
  Recorder a(sim, "a"), b(sim, "b");
  const NodeId ida = net.add_node(a, 0);
  const NodeId idb = net.add_node(b, 1);
  net.send(ida, idb, sim::make_message<PingMsg>());
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(std::get<2>(b.received[0]), 5000);
  EXPECT_EQ(net.stats().wan_messages, 1u);
}

TEST(Network, FifoPerChannelDespiteJitter) {
  sim::Simulator sim(99);
  sim::Network net(sim, sim::LatencyModel(2, 100, 10000, /*jitter=*/0.3));
  Recorder a(sim, "a"), b(sim, "b");
  const NodeId ida = net.add_node(a, 0);
  const NodeId idb = net.add_node(b, 1);
  for (int i = 0; i < 50; ++i) {
    auto m = std::make_shared<PingMsg>();
    m->n = i;
    net.send(ida, idb, m);
  }
  sim.run();
  ASSERT_EQ(b.received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    const auto* m = dynamic_cast<const PingMsg*>(std::get<1>(b.received[i]).get());
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->n, i) << "FIFO violated at position " << i;
  }
}

TEST(Network, PartitionDropsAndHealRestores) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(2, 100, 1000));
  Recorder a(sim, "a"), b(sim, "b");
  const NodeId ida = net.add_node(a, 0);
  const NodeId idb = net.add_node(b, 1);
  net.partition(0, 1, true);
  net.send(ida, idb, sim::make_message<PingMsg>());
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().messages_dropped, 1u);
  net.partition(0, 1, false);
  net.send(ida, idb, sim::make_message<PingMsg>());
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Network, CrashedReceiverDropsDelivery) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(1, 1000, 1000));
  Recorder a(sim, "a"), b(sim, "b");
  const NodeId ida = net.add_node(a, 0);
  const NodeId idb = net.add_node(b, 0);
  net.send(ida, idb, sim::make_message<PingMsg>());
  // Crash b while the message is in flight: connection reset.
  sim.at(500, [&]() { b.crash(); });
  sim.run();
  EXPECT_TRUE(b.received.empty());
}

TEST(Network, DeliveryAcrossRestartIncarnationDropped) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(1, 1000, 1000));
  Recorder a(sim, "a"), b(sim, "b");
  const NodeId ida = net.add_node(a, 0);
  const NodeId idb = net.add_node(b, 0);
  net.send(ida, idb, sim::make_message<PingMsg>());
  sim.at(500, [&]() {
    b.crash();
    b.restart();
  });
  sim.run();
  // The message belonged to the previous incarnation's connection.
  EXPECT_TRUE(b.received.empty());
}

TEST(Network, DropRateLosesRoughlyThatFraction) {
  sim::Simulator sim(7);
  sim::Network net(sim, sim::LatencyModel(1, 100, 100));
  Recorder a(sim, "a"), b(sim, "b");
  const NodeId ida = net.add_node(a, 0);
  const NodeId idb = net.add_node(b, 0);
  net.set_drop_rate(0.25);
  for (int i = 0; i < 2000; ++i) net.send(ida, idb, sim::make_message<PingMsg>());
  sim.run();
  EXPECT_NEAR(static_cast<double>(b.received.size()), 1500.0, 120.0);
}

TEST(Network, IsolateSiteCutsAllPairs) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(3, 100, 1000));
  net.isolate_site(1, true);
  EXPECT_TRUE(net.partitioned(0, 1));
  EXPECT_TRUE(net.partitioned(1, 2));
  EXPECT_FALSE(net.partitioned(0, 2));
  net.isolate_site(1, false);
  EXPECT_FALSE(net.partitioned(0, 1));
}

TEST(Network, OneWayPartitionDropsExactlyOneDirection) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(2, 100, 1000));
  Recorder a(sim, "a"), b(sim, "b");
  const NodeId ida = net.add_node(a, 0);
  const NodeId idb = net.add_node(b, 1);
  net.partition_oneway(0, 1, true);
  EXPECT_TRUE(net.partitioned(0, 1));
  EXPECT_FALSE(net.partitioned(1, 0));
  net.send(ida, idb, sim::make_message<PingMsg>());  // cut direction
  net.send(idb, ida, sim::make_message<PingMsg>());  // open direction
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(a.received.size(), 1u);
  EXPECT_EQ(net.stats().messages_dropped, 1u);
}

TEST(Network, OneWayHealRestoresOnlyThatDirection) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(2, 100, 1000));
  Recorder a(sim, "a"), b(sim, "b");
  const NodeId ida = net.add_node(a, 0);
  const NodeId idb = net.add_node(b, 1);
  net.partition_oneway(0, 1, true);
  net.partition_oneway(1, 0, true);
  net.partition_oneway(0, 1, false);  // heal one leg of a full cut
  net.send(ida, idb, sim::make_message<PingMsg>());
  net.send(idb, ida, sim::make_message<PingMsg>());
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_TRUE(a.received.empty());
}

TEST(Network, SymmetricPartitionIsBothOneWayCuts) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(2, 100, 1000));
  net.partition(0, 1, true);
  EXPECT_TRUE(net.partitioned(0, 1));
  EXPECT_TRUE(net.partitioned(1, 0));
  net.partition(0, 1, false);
  EXPECT_FALSE(net.partitioned(0, 1));
  EXPECT_FALSE(net.partitioned(1, 0));
}

TEST(Network, InFlightMessageHonorsSendTimeLatency) {
  // A scripted latency change applies to sends after the change; messages
  // already on the wire keep the cost sampled when they were sent.
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(2, 100, 1000, /*jitter=*/0.0));
  Recorder a(sim, "a"), b(sim, "b");
  const NodeId ida = net.add_node(a, 0);
  const NodeId idb = net.add_node(b, 1);
  net.send(ida, idb, sim::make_message<PingMsg>());  // in flight at old cost
  sim.at(500, [&]() {
    net.set_latency(0, 1, 50000);
    net.send(ida, idb, sim::make_message<PingMsg>());
  });
  sim.run();
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(std::get<2>(b.received[0]), 1000);          // send-time cost
  EXPECT_EQ(std::get<2>(b.received[1]), 500 + 50000);   // rerouted cost
}

TEST(Network, SetLatencyAsymmetricChangesOneDirection) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(2, 100, 1000, /*jitter=*/0.0));
  net.set_latency(0, 1, 7777, /*symmetric=*/false);
  Recorder a(sim, "a"), b(sim, "b");
  const NodeId ida = net.add_node(a, 0);
  const NodeId idb = net.add_node(b, 1);
  net.send(ida, idb, sim::make_message<PingMsg>());
  net.send(idb, ida, sim::make_message<PingMsg>());
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(std::get<2>(b.received[0]), 7777);
  EXPECT_EQ(std::get<2>(a.received[0]), 1000);
}

TEST(Network, DegradedLinkAddsLatencyAndDropsDirectionally) {
  sim::Simulator sim(3);
  sim::Network net(sim, sim::LatencyModel(2, 100, 1000, /*jitter=*/0.0));
  Recorder a(sim, "a"), b(sim, "b");
  const NodeId ida = net.add_node(a, 0);
  const NodeId idb = net.add_node(b, 1);
  net.degrade_link(0, 1, /*drop_rate=*/0.3, /*extra_latency=*/2000);
  for (int i = 0; i < 1000; ++i) net.send(ida, idb, sim::make_message<PingMsg>());
  net.send(idb, ida, sim::make_message<PingMsg>());  // reverse leg untouched
  sim.run();
  EXPECT_NEAR(static_cast<double>(b.received.size()), 700.0, 90.0);
  for (const auto& r : b.received) EXPECT_EQ(std::get<2>(r), 1000 + 2000);
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(std::get<2>(a.received[0]), 1000);

  // Clearing the degradation restores the pristine link.
  net.degrade_link(0, 1, 0.0, 0);
  EXPECT_TRUE(net.link(0, 1).pristine());
}

TEST(Network, ScaleWanLatencyLeavesIntraSiteAlone) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(2, 100, 1000, /*jitter=*/0.0));
  net.scale_wan_latency(3.0);
  Recorder a(sim, "a"), b(sim, "b"), c(sim, "c");
  const NodeId ida = net.add_node(a, 0);
  const NodeId idb = net.add_node(b, 1);
  const NodeId idc = net.add_node(c, 0);
  net.send(ida, idb, sim::make_message<PingMsg>());
  net.send(ida, idc, sim::make_message<PingMsg>());
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  ASSERT_EQ(c.received.size(), 1u);
  EXPECT_EQ(std::get<2>(b.received[0]), 3000);
  EXPECT_EQ(std::get<2>(c.received[0]), 100);
}

TEST(LatencyModel, PaperWanIsSymmetricWithSubMsIntra) {
  const auto lat = sim::LatencyModel::paper_wan();
  ASSERT_EQ(lat.sites(), 3u);
  for (SiteId i = 0; i < 3; ++i) {
    EXPECT_LT(lat.base(i, i), kMillisecond);
    for (SiteId j = 0; j < 3; ++j) EXPECT_EQ(lat.base(i, j), lat.base(j, i));
  }
  // RTTs: VA-CA 62ms, VA-FRA 88ms, CA-FRA 146ms.
  EXPECT_EQ(lat.base(0, 1) * 2, 62 * kMillisecond);
  EXPECT_EQ(lat.base(0, 2) * 2, 88 * kMillisecond);
  EXPECT_EQ(lat.base(1, 2) * 2, 146 * kMillisecond);
}

TEST(FailureInjector, CrashAndRestartOnSchedule) {
  sim::Simulator sim;
  sim::Network net(sim, sim::LatencyModel(1, 100, 100));
  Recorder a(sim, "a");
  const NodeId id = net.add_node(a, 0);
  sim::FailureInjector inject(net);
  inject.crash_at(1000, id, /*down_for=*/500);
  sim.run_until(1200);
  EXPECT_FALSE(a.up());
  sim.run_until(2000);
  EXPECT_TRUE(a.up());
}

}  // namespace
}  // namespace wankeeper

// Determinism pins for the simulator hot path.
//
// The event-slab simulator, the message frame arena, and the flat network
// tables are all allowed to change *how fast* a sweep runs — never *what*
// it does. Three families of pins enforce that:
//
//  1. Golden flight-recorder digests for a fixed (scenario, seed, batching)
//     matrix, captured from the tree BEFORE the hot-path rebuild. Any
//     ordering, RNG, or scheduling drift flips a digest.
//  2. Parallel-vs-serial seed-hunt equivalence: forking the range across
//     workers must yield byte-identical report.txt and artifact files.
//  3. Link-table iteration-order independence: applying the same link
//     mutations in different orders must leave the network in an
//     identical state with identical delivery behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sim/network.h"
#include "sim/scenario.h"
#include "sim/simulator.h"
#include "wankeeper/hunt_driver.h"
#include "wankeeper/sweep_harness.h"

namespace wankeeper {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t cell_digest(const std::string& scenario, std::uint64_t seed,
                          bool batching) {
  wk::DeploymentConfig cfg;
  if (batching) cfg.enable_batching();
  if (scenario == "crash") {
    wk::LoadedDeployment d(seed, cfg);
    (void)wk::run_crash_sweep_on(d, seed);
    return fnv1a(d.sim.obs().events.to_text());
  }
  sim::Scenario sc = sim::make_scenario(scenario);
  cfg.sites = sc.sites();
  wk::LoadedDeployment d(seed, cfg, sim::scenario_latency(sc));
  (void)wk::run_scenario_sweep_on(d, sc);
  return fnv1a(d.sim.obs().events.to_text());
}

struct GoldenCell {
  const char* scenario;
  std::uint64_t seed;
  bool batching;
  std::uint64_t digest;
};

// Captured from the seed tree (PR 8 head, before the hot-path rebuild) by
// hashing obs().events.to_text() after the sweep. If a cell mismatches, the
// change is NOT digest-invisible: either fix it or — only for a deliberate
// semantic change — regenerate every golden with a printer that hashes
// exactly as cell_digest() does, and say so loudly in the PR.
constexpr GoldenCell kGoldens[] = {
    {"crash", 7ULL, false, 0x5aab0bc809e317faULL},
    {"crash", 7ULL, true, 0xd7ab2964c8c5df7fULL},
    {"crash", 41ULL, false, 0x3c148028f9c05c66ULL},
    {"flap3", 11ULL, false, 0xa10d25a0d8add02cULL},
    {"flap3", 11ULL, true, 0x063b893e80af6e0bULL},
    {"asym3", 3ULL, true, 0x0fe244cf494f0f1bULL},
    {"hostile5", 5ULL, false, 0x27ce34320958823cULL},
};

TEST(GoldenDigests, MatrixMatchesSeedTree) {
  for (const GoldenCell& g : kGoldens) {
    const std::uint64_t got = cell_digest(g.scenario, g.seed, g.batching);
    EXPECT_EQ(got, g.digest)
        << "scenario=" << g.scenario << " seed=" << g.seed
        << " batching=" << g.batching << std::hex << " got=0x" << got
        << " want=0x" << g.digest
        << " — the simulator hot path changed observable behavior";
  }
}

// Two sweeps inside one process must match too: slab/arena recycling between
// runs must be invisible (a recycled slot or frame changing behavior would
// diverge the second run).
TEST(GoldenDigests, BackToBackRunsShareAProcessCleanly) {
  const std::uint64_t a = cell_digest("crash", 7, false);
  const std::uint64_t b = cell_digest("crash", 7, false);
  EXPECT_EQ(a, b);
}

// --- parallel seed hunt -----------------------------------------------------

std::map<std::string, std::string> slurp_dir(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    std::ifstream f(e.path(), std::ios::binary);
    std::stringstream ss;
    ss << f.rdbuf();
    files[e.path().filename().string()] = ss.str();
  }
  return files;
}

TEST(ParallelHunt, MatchesSerialByteForByte) {
  const std::string base =
      (std::filesystem::temp_directory_path() / "wk_hunt_eq").string();
  const std::string serial_dir = base + "_serial";
  const std::string par_dir = base + "_par";
  std::filesystem::remove_all(serial_dir);
  std::filesystem::remove_all(par_dir);

  wk::hunt::HuntOptions opt;
  opt.start = 5;
  opt.count = 2;
  opt.batching = 2;
  opt.events = true;  // artifacts for passing cells too → real file diff
  opt.progress = false;

  opt.out_dir = serial_dir;
  opt.parallel = 1;
  const wk::hunt::HuntReport serial = wk::hunt::run_hunt(opt);

  opt.out_dir = par_dir;
  opt.parallel = 2;
  const wk::hunt::HuntReport par = wk::hunt::run_hunt(opt);

  EXPECT_EQ(serial.cells, par.cells);
  EXPECT_EQ(serial.failures, par.failures);
  ASSERT_EQ(serial.fail_lines.size(), par.fail_lines.size());
  for (std::size_t i = 0; i < serial.fail_lines.size(); ++i) {
    EXPECT_EQ(serial.fail_lines[i], par.fail_lines[i]);
  }

  const auto serial_files = slurp_dir(serial_dir);
  const auto par_files = slurp_dir(par_dir);
  std::set<std::string> serial_names, par_names;
  for (const auto& [name, _] : serial_files) serial_names.insert(name);
  for (const auto& [name, _] : par_files) par_names.insert(name);
  EXPECT_EQ(serial_names, par_names) << "artifact sets diverged";
  for (const auto& [name, body] : serial_files) {
    const auto it = par_files.find(name);
    if (it == par_files.end()) continue;
    EXPECT_EQ(body, it->second) << "artifact " << name << " diverged";
  }

  std::filesystem::remove_all(serial_dir);
  std::filesystem::remove_all(par_dir);
}

// --- link-table order independence ------------------------------------------

struct CountingActor final : sim::Actor {
  using sim::Actor::Actor;
  int received = 0;
  void on_message(NodeId, const sim::MessagePtr&) override { ++received; }
};

struct PingMsg final : sim::Message {
  const char* name() const override { return "ping"; }
};

// Applies the same set of link mutations in a given order, then runs a
// fixed send schedule and returns (per-node receive counts, net stats).
std::pair<std::vector<int>, sim::NetworkStats> run_link_schedule(
    const std::vector<int>& order) {
  sim::Simulator sim(99);
  sim::Network net(sim, sim::LatencyModel(3, 100, 20000, 0.0));
  std::vector<std::unique_ptr<CountingActor>> actors;
  for (int i = 0; i < 3; ++i) {
    actors.push_back(std::make_unique<CountingActor>(
        sim, "n" + std::to_string(i)));
    net.add_node(*actors.back(), static_cast<SiteId>(i));
  }

  // Three mutations, applied in the permutation `order` gives.
  const auto mutate = [&](int which) {
    switch (which) {
      case 0: net.partition_oneway(0, 1, true); break;
      case 1: net.degrade_link(1, 2, 0.0, 5000); break;
      case 2: net.degrade_link(2, 0, 1.0, 0); break;
      default: break;
    }
  };
  for (const int which : order) mutate(which);

  // Every directed pair sends one message; FIFO clocks + link state decide.
  for (NodeId from = 0; from < 3; ++from) {
    for (NodeId to = 0; to < 3; ++to) {
      if (from != to) net.send(from, to, sim::make_message<PingMsg>());
    }
  }
  sim.run_for(1 * kSecond);

  std::vector<int> received;
  for (const auto& a : actors) received.push_back(a->received);
  return {received, net.stats()};
}

TEST(LinkTables, MutationOrderIsInvisible) {
  const auto [recv_a, stats_a] = run_link_schedule({0, 1, 2});
  const auto [recv_b, stats_b] = run_link_schedule({2, 1, 0});
  const auto [recv_c, stats_c] = run_link_schedule({1, 2, 0});
  EXPECT_EQ(recv_a, recv_b);
  EXPECT_EQ(recv_a, recv_c);
  EXPECT_EQ(stats_a.messages_delivered, stats_b.messages_delivered);
  EXPECT_EQ(stats_a.messages_dropped, stats_b.messages_dropped);
  EXPECT_EQ(stats_a.messages_delivered, stats_c.messages_delivered);
  EXPECT_EQ(stats_a.messages_dropped, stats_c.messages_dropped);

  // The cut link dropped 0->1, the fully-lossy link dropped 2->0; 2 of 6
  // sends lost regardless of mutation order.
  EXPECT_EQ(stats_a.messages_dropped, 2u);
  EXPECT_EQ(stats_a.messages_delivered, 4u);
}

TEST(LinkTables, StateReadsMatchAcrossOrders) {
  sim::Simulator sim_a(1), sim_b(1);
  sim::Network a(sim_a, sim::LatencyModel(4, 100, 20000, 0.0));
  sim::Network b(sim_b, sim::LatencyModel(4, 100, 20000, 0.0));

  a.partition(0, 1, true);
  a.degrade_link(1, 2, 0.25, 777);
  a.partition_oneway(3, 0, true);

  b.partition_oneway(3, 0, true);
  b.degrade_link(1, 2, 0.25, 777);
  b.partition(0, 1, true);

  for (SiteId i = 0; i < 4; ++i) {
    for (SiteId j = 0; j < 4; ++j) {
      const sim::LinkState& la = a.link(i, j);
      const sim::LinkState& lb = b.link(i, j);
      EXPECT_EQ(la.cut, lb.cut) << i << "->" << j;
      EXPECT_EQ(la.drop_rate, lb.drop_rate) << i << "->" << j;
      EXPECT_EQ(la.extra_latency, lb.extra_latency) << i << "->" << j;
    }
  }
}

// --- event slab semantics ----------------------------------------------------

TEST(EventSlab, CancelledEventsAreSkippedAndIdsDoNotAlias) {
  sim::Simulator s(1);
  int fired = 0;
  const sim::EventId a = s.after(10, [&] { ++fired; });
  const sim::EventId b = s.after(20, [&] { ++fired; });
  s.cancel(a);
  s.cancel(a);  // double cancel: no-op
  s.run();
  EXPECT_EQ(fired, 1);
  // `a`'s slot has been recycled by now; a stale cancel must not touch the
  // new occupant.
  const sim::EventId c = s.after(30, [&] { ++fired; });
  s.cancel(a);
  s.cancel(b);  // already fired: no-op
  s.run();
  EXPECT_EQ(fired, 2);
  (void)c;
}

TEST(EventSlab, PendingCountExcludesCancelled) {
  sim::Simulator s(1);
  const sim::EventId a = s.after(10, [] {});
  s.after(20, [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(EventSlab, PoolRecyclesSlots) {
  sim::Simulator s(1);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 100; ++i) s.after(i, [] {});
    s.run();
  }
  const sim::SimProfile& p = s.profile();
  EXPECT_EQ(p.events_scheduled, 400u);
  EXPECT_EQ(p.events_executed, 400u);
  // One slab chunk suffices for 100 concurrent events; later rounds reuse.
  EXPECT_GE(p.events_pooled, 300u);
  EXPECT_EQ(p.events_grown, 1u);
}

}  // namespace
}  // namespace wankeeper

// Real-hardware WanKeeper node: hosts one site (or all of them) of a
// cluster on rt::ThreadRuntime over loopback TCP.
//
// Modes:
//   wankeeper_node --launch [opts]     fork one process per site, run a
//                                      mixed load in each, verify client
//                                      consistency + cross-process replica
//                                      convergence, print a JSON summary
//   wankeeper_node --site S [opts]     one site's process (what --launch
//                                      forks); writes a one-line JSON report
//
// Exit codes: 0 ok, 2 cluster never became ready, 4 consistency
// violations, 5 load failed, 6 cross-process divergence, 7 child crashed
// (incl. the SIGALRM watchdog that kills a wedged process).
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "rt/cluster.h"
#include "rt/thread_runtime.h"
#include "wankeeper/consistency.h"
#include "zk/client.h"

namespace wankeeper {
namespace {

struct NodeOptions {
  rt::ClusterConfig cluster;
  SiteId site = kNoSite;  // >= 0: single-site process mode
  bool launch = false;
  std::size_t ops_per_client = 200;
  std::size_t keys = 16;
  std::string json_path;
  Time ready_wait = 60 * kSecond;
  Time settle_max = 30 * kSecond;
};

// Closed-loop mixed load for one client: alternating set_data/get_data over
// a keyspace that is half site-private, half shared across sites (shared
// keys force token recalls and hub round-trips). Every completed op lands
// in the (mutex-guarded) history for the consistency checker.
class LoadDriver {
 public:
  LoadDriver(rt::ThreadRuntime& rt, rt::HostedCluster& cluster,
             const NodeOptions& opt)
      : rt_(rt),
        cluster_(cluster),
        opt_(opt),
        // The checker needs the COMPLETE history of a key's writers. A
        // single-site process never sees the other processes' writes to
        // shared keys, so it version-checks only its private keys; shared
        // keys still run (they drive the token recalls) but are only
        // counted. A process hosting every site checks everything.
        check_shared_(cluster.local_sites().size() == opt.cluster.sites ||
                      cluster.local_sites().empty()) {}

  // Returns false if the pre-create phase or the load itself stalled.
  bool run() {
    if (cluster_.local_client_count() == 0) return true;
    if (!precreate()) return false;
    const std::size_t n = cluster_.local_client_count();
    for (std::size_t i = 0; i < n; ++i) {
      zk::Client* c = &cluster_.client(i);
      const SiteId site = cluster_.client_site(i);
      rt_.call(c->id(), [this, c, site, i] { next_op(c, site, i, 0); });
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(120);
    while (clients_done_.load() < static_cast<long>(n)) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return !load_failed_.load();
  }

  const wk::OpHistory& history() const { return history_; }
  std::uint64_t ops_ok() const {
    std::lock_guard<std::mutex> lk(mu_);
    return history_.completed_ok() + shared_ok_;
  }

 private:
  std::string key_for(SiteId site, std::uint64_t draw) const {
    // Even draws: a key only this site writes; odd draws: shared keys that
    // every site contends on.
    if (draw % 2 == 0) {
      return "/s" + std::to_string(site) + "-k" +
             std::to_string((draw / 2) % opt_.keys);
    }
    return "/shared-k" + std::to_string((draw / 2) % opt_.keys);
  }

  bool precreate() {
    // The first client of each local site creates that site's private keys;
    // client 0 also creates the shared keys. Creates of already-existing
    // shared keys lose the race across processes benignly (kNodeExists).
    std::atomic<long> pending{0};
    auto create = [this, &pending](zk::Client* c, std::string key) {
      ++pending;
      rt_.call(c->id(), [c, key = std::move(key), &pending] {
        c->create(key, key, false, false,
                  [&pending](const zk::ClientResult&) { --pending; });
      });
    };
    std::set<SiteId> seen;
    for (std::size_t i = 0; i < cluster_.local_client_count(); ++i) {
      const SiteId site = cluster_.client_site(i);
      if (!seen.insert(site).second) continue;
      zk::Client* c = &cluster_.client(i);
      for (std::size_t j = 0; j < opt_.keys; ++j) {
        create(c, "/s" + std::to_string(site) + "-k" + std::to_string(j));
        if (i == 0) create(c, "/shared-k" + std::to_string(j));
      }
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(60);
    while (pending.load() > 0) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return true;
  }

  // Runs on the client's loop.
  void next_op(zk::Client* c, SiteId site, std::size_t idx, std::size_t done) {
    if (done >= opt_.ops_per_client) {
      ++clients_done_;
      return;
    }
    Rng& rng = rt_.rng();
    const std::string key = key_for(site, rng.next());
    const bool write = rng.chance(0.5);
    const bool record = check_shared_ || key.rfind("/shared-", 0) != 0;
    std::uint64_t id = 0;
    if (record) {
      std::lock_guard<std::mutex> lk(mu_);
      id = history_.begin(c->session(), 0, site,
                          write ? wk::ClientOp::Kind::kWrite
                                : wk::ClientOp::Kind::kRead,
                          key, rt_.now());
    }
    auto finish = [this, c, site, idx, done, id,
                   record](const zk::ClientResult& r) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (record) {
          history_.finish(id, rt_.now(), r.ok(), r.stat.version);
        } else if (r.ok()) {
          ++shared_ok_;
        }
      }
      if (!r.ok() && r.rc != store::Rc::kBadVersion) {
        // Under a healthy loopback cluster every op should succeed.
        load_failed_.store(true);
      }
      next_op(c, site, idx, done + 1);
    };
    if (write) {
      c->set_data(key, "v" + std::to_string(done), -1, std::move(finish));
    } else {
      c->get_data(key, false, std::move(finish));
    }
  }

  rt::ThreadRuntime& rt_;
  rt::HostedCluster& cluster_;
  const NodeOptions& opt_;
  const bool check_shared_;
  mutable std::mutex mu_;
  wk::OpHistory history_;
  std::uint64_t shared_ok_ = 0;  // guarded by mu_
  std::atomic<long> clients_done_{0};
  std::atomic<bool> load_failed_{false};
};

void write_report(const NodeOptions& opt, SiteId site, std::uint64_t ops_ok,
                  std::size_t violations, std::uint64_t digest,
                  std::uint64_t frames_dropped, bool converged) {
  std::ostringstream out;
  out << "{\"site\":" << site << ",\"ops_ok\":" << ops_ok
      << ",\"violations\":" << violations << ",\"digest\":\"" << std::hex
      << digest << std::dec << "\",\"frames_dropped\":" << frames_dropped
      << ",\"converged_locally\":" << (converged ? "true" : "false") << "}";
  const std::string line = out.str();
  if (!opt.json_path.empty()) {
    std::ofstream f(opt.json_path);
    f << line << "\n";
  }
  std::cout << line << std::endl;
}

int run_site(NodeOptions opt, SiteId site) {
  // Watchdog: a wedged cluster must fail the job, not hang it.
  alarm(300);
  opt.cluster.seed = opt.cluster.seed * 1000 + static_cast<std::uint64_t>(site) + 1;
  rt::ThreadRuntime trt(opt.cluster.seed);
  std::vector<SiteId> local_sites;
  if (site != kNoSite) local_sites.push_back(site);
  rt::HostedCluster cluster(trt, opt.cluster, local_sites);
  cluster.start();
  if (!cluster.wait_ready(opt.ready_wait)) {
    std::cerr << "site " << site << ": cluster not ready\n";
    return 2;
  }

  LoadDriver load(trt, cluster, opt);
  const bool load_ok = load.run();

  // Settle: wait until every local replica agrees and the digest has been
  // stable for 3 s (fan-outs from other sites may still be arriving).
  const SiteId probe = local_sites.empty() ? SiteId{0} : local_sites[0];
  const Time settle_deadline = trt.now() + opt.settle_max;
  std::uint64_t stable_digest = 0;
  Time stable_since = 0;
  bool converged = false;
  while (trt.now() < settle_deadline) {
    const std::uint64_t d = cluster.tree_digest(probe);
    if (d != 0 && d == stable_digest) {
      if (trt.now() - stable_since >= 3 * kSecond &&
          cluster.converged_locally()) {
        converged = true;
        break;
      }
    } else {
      stable_digest = d;
      stable_since = trt.now();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  const auto violations = wk::ConsistencyChecker::check(load.history());
  for (const auto& v : violations) std::cerr << v.format() << "\n";
  write_report(opt, site, load.ops_ok(), violations.size(), stable_digest,
               trt.frames_dropped(), converged);

  if (!violations.empty()) return 4;
  if (!load_ok || load.ops_ok() == 0) return 5;
  if (!converged) return 6;
  return 0;
}

std::string read_field(const std::string& json, const std::string& field) {
  const std::string tag = "\"" + field + "\":";
  const std::size_t at = json.find(tag);
  if (at == std::string::npos) return {};
  std::size_t from = at + tag.size();
  bool quoted = from < json.size() && json[from] == '"';
  if (quoted) ++from;
  std::size_t to = from;
  while (to < json.size() &&
         (quoted ? json[to] != '"' : (json[to] != ',' && json[to] != '}'))) {
    ++to;
  }
  return json.substr(from, to - from);
}

int run_launcher(const NodeOptions& opt) {
  const std::string dir = "wankeeper_node_out";
  (void)::system(("mkdir -p " + dir).c_str());
  std::vector<pid_t> pids;
  std::vector<std::string> reports;
  for (std::size_t s = 0; s < opt.cluster.sites; ++s) {
    const std::string path = dir + "/site" + std::to_string(s) + ".json";
    reports.push_back(path);
    const pid_t pid = fork();
    if (pid < 0) {
      std::cerr << "fork failed\n";
      return 7;
    }
    if (pid == 0) {
      NodeOptions child = opt;
      child.json_path = path;
      _exit(run_site(std::move(child), static_cast<SiteId>(s)));
    }
    pids.push_back(pid);
  }

  int worst = 0;
  for (std::size_t s = 0; s < pids.size(); ++s) {
    int status = 0;
    if (waitpid(pids[s], &status, 0) < 0) {
      worst = std::max(worst, 7);
      continue;
    }
    if (WIFSIGNALED(status)) {
      std::cerr << "site " << s << " killed by signal " << WTERMSIG(status)
                << "\n";
      worst = std::max(worst, 7);
    } else if (WEXITSTATUS(status) != 0) {
      std::cerr << "site " << s << " exited " << WEXITSTATUS(status) << "\n";
      worst = std::max(worst, WEXITSTATUS(status));
    }
  }

  // Cross-process convergence: every site's settled digest must agree.
  std::string digest;
  bool digests_agree = true;
  std::uint64_t total_ops = 0;
  std::size_t total_violations = 0;
  for (const auto& path : reports) {
    std::ifstream f(path);
    std::string line;
    std::getline(f, line);
    if (line.empty()) {
      digests_agree = false;
      continue;
    }
    const std::string d = read_field(line, "digest");
    if (digest.empty()) {
      digest = d;
    } else if (d != digest) {
      digests_agree = false;
    }
    total_ops += std::strtoull(read_field(line, "ops_ok").c_str(), nullptr, 10);
    total_violations +=
        std::strtoull(read_field(line, "violations").c_str(), nullptr, 10);
  }
  if (!digests_agree && worst == 0) worst = 6;

  std::cout << "{\"sites\":" << opt.cluster.sites
            << ",\"total_ops_ok\":" << total_ops
            << ",\"total_violations\":" << total_violations
            << ",\"digests_agree\":" << (digests_agree ? "true" : "false")
            << ",\"exit\":" << worst << "}" << std::endl;
  return worst;
}

}  // namespace
}  // namespace wankeeper

int main(int argc, char** argv) {
  using namespace wankeeper;
  NodeOptions opt;
  opt.cluster.sites = 3;
  opt.cluster.nodes_per_site = 2;
  opt.cluster.clients_per_site = 2;
  opt.cluster.base_port = 46000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--launch") {
      opt.launch = true;
    } else if (arg == "--site") {
      opt.site = static_cast<SiteId>(std::stoi(next()));
    } else if (arg == "--sites") {
      opt.cluster.sites = std::stoul(next());
    } else if (arg == "--nodes") {
      opt.cluster.nodes_per_site = std::stoul(next());
    } else if (arg == "--clients") {
      opt.cluster.clients_per_site = std::stoul(next());
    } else if (arg == "--base-port") {
      opt.cluster.base_port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--ops") {
      opt.ops_per_client = std::stoul(next());
    } else if (arg == "--keys") {
      opt.keys = std::stoul(next());
    } else if (arg == "--seed") {
      opt.cluster.seed = std::stoull(next());
    } else if (arg == "--json") {
      opt.json_path = next();
    } else {
      std::cerr << "unknown argument " << arg << "\n";
      return 64;
    }
  }
  if (opt.launch) return run_launcher(opt);
  if (opt.site != kNoSite) return run_site(opt, opt.site);
  // No mode: host every site in this one process (no sockets).
  NodeOptions single = opt;
  single.cluster.base_port = 0;
  return run_site(std::move(single), kNoSite);
}

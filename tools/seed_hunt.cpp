// CI seed hunter: run the canonical crash sweep or a named hostile-WAN
// scenario sweep (src/wankeeper/sweep_harness.h) over a seed range in both
// batching modes and dump a flight-recorder artifact for every failure. The
// nightly workflow walks a rolling ~1000-seed window of the crash sweep plus
// scenario shards with this tool; a developer reproduces a red run locally
// with the exact seed and scenario it prints (see EXPERIMENTS.md).
//
//   seed_hunt --start 1 --count 100 [--batching 0|1|both]
//             [--scenario crash|calm3|flap3|asym3|hostile5|diurnal5|...]
//             [--out DIR] [--events]
//
// --events additionally writes the flight-recorder artifacts (merged event
// log, Perfetto trace, ownership analytics) for *passing* cells too; failed
// cells always get them.
//
// Exit status: 0 when every (seed, mode) cell passed, 1 otherwise.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/perfetto.h"
#include "wankeeper/sweep_harness.h"

namespace {

using namespace wankeeper;

struct Options {
  std::uint64_t start = 1;
  std::uint64_t count = 50;
  int batching = 2;  // 0, 1, or 2 = both
  std::string scenario = "crash";
  std::string out_dir = ".";
  bool events = false;  // dump flight-recorder artifacts for passing cells too
};

bool parse(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--start") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->start = std::stoull(v);
    } else if (arg == "--count") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->count = std::stoull(v);
    } else if (arg == "--batching") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->batching = std::strcmp(v, "both") == 0 ? 2 : std::stoi(v);
    } else if (arg == "--scenario") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->scenario = v;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->out_dir = v;
    } else if (arg == "--events") {
      opt->events = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (opt->scenario != "crash") {
    // Fail fast on a typo'd scenario name instead of 2N red cells.
    try {
      sim::make_scenario(opt->scenario);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\nknown scenarios: crash", e.what());
      for (const auto& n : sim::scenario_names()) {
        std::fprintf(stderr, " %s", n.c_str());
      }
      std::fprintf(stderr, "\n");
      return false;
    }
  }
  return true;
}

std::string cell_stem(std::uint64_t seed, bool batching,
                      const std::string& out_dir) {
  return out_dir + "/seed" + std::to_string(seed) +
         (batching ? "_batched" : "_unbatched");
}

// The flight-recorder artifacts: the merged post-mortem event log, the
// Perfetto trace (spans + events, loadable in ui.perfetto.dev), and the
// token-ownership analytics distilled from the event stream. Returns the
// event-log path so the failure summary line can point straight at it.
std::string dump_events(wk::LoadedDeployment& d, const wk::SweepResult& r,
                        const std::string& stem) {
  const std::string events_path = stem + ".events.json";
  {
    std::ofstream f(events_path);
    f << (r.post_mortem_json.empty() ? d.sim.obs().events.to_json()
                                     : r.post_mortem_json);
  }
  {
    std::ofstream f(stem + ".trace.json");
    f << obs::perfetto_trace_json(d.sim.obs().tracer, d.sim.obs().events);
  }
  {
    std::ofstream f(stem + ".ownership.json");
    f << obs::OwnershipAnalytics::from_events(d.sim.obs().events.merged())
             .to_json();
  }
  return events_path;
}

// On failure, dump the full metrics registry plus the slowest traces, the
// scenario script that was running, and the consistency checker's violation
// witness (the minimal op subsequence) so the CI artifact carries everything
// needed to start debugging without a rerun.
void dump_artifacts(wk::LoadedDeployment& d, const wk::SweepResult& r,
                    std::uint64_t seed, bool batching,
                    const std::string& scenario_script,
                    const std::string& out_dir) {
  // ofstream fails silently on a missing directory — a CI failure losing
  // its only witness is the worst possible outcome, so create it here.
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string stem = cell_stem(seed, batching, out_dir);
  {
    std::ofstream f(stem + ".metrics.json");
    f << d.sim.obs().metrics.to_json() << "\n";
  }
  {
    std::ofstream f(stem + ".report.txt");
    f << "seed: " << seed << "\n"
      << "batching: " << (batching ? "on" : "off") << "\n"
      << "audit_clean: " << r.audit_clean << "\n"
      << "first_violation: " << r.first_violation << "\n"
      << "converged: " << r.converged << "\n"
      << "completed_total: " << r.completed_total << "\n"
      << "consistency_clean: " << r.consistency_clean << " ("
      << r.consistency_violations << " violation(s))\n"
      << "duplicate_mints: " << r.duplicate_mints << "\n"
      << "dueling_hubs: " << r.dueling_hubs << "\n";
    for (const std::string& reason : r.dump_reasons) {
      f << "dump_reason: " << reason << "\n";
    }
    if (!r.fork_evidence.empty()) {
      f << "\nsplit-brain fork evidence:\n" << r.fork_evidence;
    }
    if (!r.first_consistency_witness.empty()) {
      f << "\nconsistency witness (minimal op subsequence):\n"
        << r.first_consistency_witness;
    }
    if (!scenario_script.empty()) {
      f << "\nscenario script:\n" << scenario_script;
    }
    f << "\n"
      << obs::OwnershipAnalytics::from_events(d.sim.obs().events.merged())
             .table(5, d.sim.now());
    f << "\n" << d.sim.obs().tracer.breakdown_table() << "\n";
    for (const auto* t : d.sim.obs().tracer.slowest(20)) {
      f << d.sim.obs().tracer.format_trace(t->id) << "\n";
    }
  }
  std::printf("artifacts: %s.{metrics.json,report.txt}\n", stem.c_str());
}

bool run_cell(std::uint64_t seed, bool batching, const std::string& scenario,
              const std::string& out_dir, bool events_always) {
  wk::DeploymentConfig cfg;
  if (batching) cfg.enable_batching();
  std::unique_ptr<wk::LoadedDeployment> d;
  wk::SweepResult r;
  std::string script;
  if (scenario == "crash") {
    d = std::make_unique<wk::LoadedDeployment>(seed, cfg);
    r = wk::run_crash_sweep_on(*d, seed);
  } else {
    sim::Scenario sc = sim::make_scenario(scenario);
    cfg.sites = sc.sites();
    d = std::make_unique<wk::LoadedDeployment>(seed, cfg,
                                               sim::scenario_latency(sc));
    r = wk::run_scenario_sweep_on(*d, sc);
    script = sc.to_script();
  }
  if (r.ok()) {
    if (events_always) {
      std::error_code ec;
      std::filesystem::create_directories(out_dir, ec);
      dump_events(*d, r, cell_stem(seed, batching, out_dir));
    }
    return true;
  }
  dump_artifacts(*d, r, seed, batching, script, out_dir);
  const std::string events_path =
      dump_events(*d, r, cell_stem(seed, batching, out_dir));
  std::printf("FAIL seed %llu batching %d scenario %s: audit_clean=%d "
              "converged=%d consistency=%d dup_mints=%zu duel=%d "
              "completed=%llu%s%s events=%s\n",
              static_cast<unsigned long long>(seed), int(batching),
              scenario.c_str(), int(r.audit_clean), int(r.converged),
              int(r.consistency_clean), r.duplicate_mints, int(r.dueling_hubs),
              static_cast<unsigned long long>(r.completed_total),
              r.first_violation.empty() ? "" : " violation=",
              r.first_violation.c_str(), events_path.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, &opt)) {
    std::fprintf(stderr,
                 "usage: seed_hunt [--start N] [--count M] "
                 "[--batching 0|1|both] [--scenario NAME] [--out DIR] "
                 "[--events]\n");
    return 2;
  }

  std::vector<bool> modes;
  if (opt.batching == 0 || opt.batching == 2) modes.push_back(false);
  if (opt.batching == 1 || opt.batching == 2) modes.push_back(true);

  std::uint64_t failures = 0, cells = 0;
  for (std::uint64_t s = opt.start; s < opt.start + opt.count; ++s) {
    for (const bool batching : modes) {
      ++cells;
      if (!run_cell(s, batching, opt.scenario, opt.out_dir, opt.events)) {
        ++failures;
      }
    }
    if ((s - opt.start + 1) % 10 == 0) {
      std::printf("progress: %llu/%llu seeds, %llu failure(s)\n",
                  static_cast<unsigned long long>(s - opt.start + 1),
                  static_cast<unsigned long long>(opt.count),
                  static_cast<unsigned long long>(failures));
      std::fflush(stdout);
    }
  }
  std::printf("seed_hunt done: scenario %s, %llu cell(s), %llu failure(s)\n",
              opt.scenario.c_str(), static_cast<unsigned long long>(cells),
              static_cast<unsigned long long>(failures));
  return failures == 0 ? 0 : 1;
}

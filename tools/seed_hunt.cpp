// CI seed hunter: run the canonical crash sweep (src/wankeeper/sweep_harness.h)
// over a seed range in both batching modes and dump a flight-recorder
// artifact for every failure. The nightly workflow walks a rolling ~1000-seed
// window with this tool; a developer reproduces a red run locally with the
// exact seed it prints (see EXPERIMENTS.md).
//
//   seed_hunt --start 1 --count 100 [--batching 0|1|both] [--out DIR]
//
// Exit status: 0 when every (seed, mode) cell passed, 1 otherwise.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "wankeeper/sweep_harness.h"

namespace {

using namespace wankeeper;

struct Options {
  std::uint64_t start = 1;
  std::uint64_t count = 50;
  int batching = 2;  // 0, 1, or 2 = both
  std::string out_dir = ".";
};

bool parse(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--start") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->start = std::stoull(v);
    } else if (arg == "--count") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->count = std::stoull(v);
    } else if (arg == "--batching") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->batching = std::strcmp(v, "both") == 0 ? 2 : std::stoi(v);
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->out_dir = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// On failure, dump the full metrics registry plus the slowest traces so the
// CI artifact carries everything needed to start debugging without a rerun.
void dump_artifacts(wk::LoadedDeployment& d, const wk::SweepResult& r,
                    std::uint64_t seed, bool batching,
                    const std::string& out_dir) {
  const std::string stem = out_dir + "/seed" + std::to_string(seed) +
                           (batching ? "_batched" : "_unbatched");
  {
    std::ofstream f(stem + ".metrics.json");
    f << d.sim.obs().metrics.to_json() << "\n";
  }
  {
    std::ofstream f(stem + ".report.txt");
    f << "seed: " << seed << "\n"
      << "batching: " << (batching ? "on" : "off") << "\n"
      << "audit_clean: " << r.audit_clean << "\n"
      << "first_violation: " << r.first_violation << "\n"
      << "converged: " << r.converged << "\n"
      << "completed_total: " << r.completed_total << "\n\n"
      << d.sim.obs().tracer.breakdown_table() << "\n";
    for (const auto* t : d.sim.obs().tracer.slowest(20)) {
      f << d.sim.obs().tracer.format_trace(t->id) << "\n";
    }
  }
  std::printf("artifacts: %s.{metrics.json,report.txt}\n", stem.c_str());
}

bool run_cell(std::uint64_t seed, bool batching, const std::string& out_dir) {
  wk::DeploymentConfig cfg;
  if (batching) cfg.enable_batching();
  wk::LoadedDeployment d(seed, cfg);
  const wk::SweepResult r = wk::run_crash_sweep_on(d, seed);
  if (r.ok()) return true;
  std::printf("FAIL seed %llu batching %d: audit_clean=%d converged=%d "
              "completed=%llu%s%s\n",
              static_cast<unsigned long long>(seed), int(batching),
              int(r.audit_clean), int(r.converged),
              static_cast<unsigned long long>(r.completed_total),
              r.first_violation.empty() ? "" : " violation=",
              r.first_violation.c_str());
  dump_artifacts(d, r, seed, batching, out_dir);
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, &opt)) {
    std::fprintf(stderr,
                 "usage: seed_hunt [--start N] [--count M] "
                 "[--batching 0|1|both] [--out DIR]\n");
    return 2;
  }

  std::vector<bool> modes;
  if (opt.batching == 0 || opt.batching == 2) modes.push_back(false);
  if (opt.batching == 1 || opt.batching == 2) modes.push_back(true);

  std::uint64_t failures = 0, cells = 0;
  for (std::uint64_t s = opt.start; s < opt.start + opt.count; ++s) {
    for (const bool batching : modes) {
      ++cells;
      if (!run_cell(s, batching, opt.out_dir)) ++failures;
    }
    if ((s - opt.start + 1) % 10 == 0) {
      std::printf("progress: %llu/%llu seeds, %llu failure(s)\n",
                  static_cast<unsigned long long>(s - opt.start + 1),
                  static_cast<unsigned long long>(opt.count),
                  static_cast<unsigned long long>(failures));
      std::fflush(stdout);
    }
  }
  std::printf("seed_hunt done: %llu cell(s), %llu failure(s)\n",
              static_cast<unsigned long long>(cells),
              static_cast<unsigned long long>(failures));
  return failures == 0 ? 0 : 1;
}

// CI seed hunter: run the canonical crash sweep or a named hostile-WAN
// scenario sweep (src/wankeeper/sweep_harness.h) over a seed range in both
// batching modes and dump a flight-recorder artifact for every failure. The
// nightly workflow walks a rolling seed window of the crash sweep plus
// scenario shards with this tool; a developer reproduces a red run locally
// with the exact seed and scenario it prints (see EXPERIMENTS.md).
//
//   seed_hunt --start 1 --count 100 [--batching 0|1|both]
//             [--scenario crash|calm3|flap3|asym3|hostile5|diurnal5|...]
//             [--out DIR] [--events] [--parallel N]
//
// --events additionally writes the flight-recorder artifacts (merged event
// log, Perfetto trace, ownership analytics) for *passing* cells too; failed
// cells always get them.
//
// --parallel N forks N worker processes over contiguous seed slices (0 =
// one per core). FAIL lines, artifacts, and <out>/report.txt are identical
// to a serial run of the same range — tests/test_determinism.cpp pins that.
//
// Exit status: 0 when every (seed, mode) cell passed, 1 otherwise.
#include <cstdio>
#include <cstring>
#include <string>

#include "wankeeper/hunt_driver.h"

namespace {

using namespace wankeeper;

bool parse(int argc, char** argv, wk::hunt::HuntOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--start") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->start = std::stoull(v);
    } else if (arg == "--count") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->count = std::stoull(v);
    } else if (arg == "--batching") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->batching = std::strcmp(v, "both") == 0 ? 2 : std::stoi(v);
    } else if (arg == "--scenario") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->scenario = v;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->out_dir = v;
    } else if (arg == "--events") {
      opt->events = true;
    } else if (arg == "--parallel") {
      const char* v = value();
      if (v == nullptr) return false;
      opt->parallel = std::stoi(v);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (opt->scenario != "crash") {
    // Fail fast on a typo'd scenario name instead of 2N red cells.
    try {
      sim::make_scenario(opt->scenario);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\nknown scenarios: crash", e.what());
      for (const auto& n : sim::scenario_names()) {
        std::fprintf(stderr, " %s", n.c_str());
      }
      std::fprintf(stderr, "\n");
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  wk::hunt::HuntOptions opt;
  if (!parse(argc, argv, &opt)) {
    std::fprintf(stderr,
                 "usage: seed_hunt [--start N] [--count M] "
                 "[--batching 0|1|both] [--scenario NAME] [--out DIR] "
                 "[--events] [--parallel N]\n");
    return 2;
  }
  return wk::hunt::run_hunt(opt).ok() ? 0 : 1;
}

file(REMOVE_RECURSE
  "CMakeFiles/wk_core.dir/wankeeper/audit.cpp.o"
  "CMakeFiles/wk_core.dir/wankeeper/audit.cpp.o.d"
  "CMakeFiles/wk_core.dir/wankeeper/broker.cpp.o"
  "CMakeFiles/wk_core.dir/wankeeper/broker.cpp.o.d"
  "CMakeFiles/wk_core.dir/wankeeper/deployment.cpp.o"
  "CMakeFiles/wk_core.dir/wankeeper/deployment.cpp.o.d"
  "CMakeFiles/wk_core.dir/wankeeper/heartbeat.cpp.o"
  "CMakeFiles/wk_core.dir/wankeeper/heartbeat.cpp.o.d"
  "CMakeFiles/wk_core.dir/wankeeper/level2.cpp.o"
  "CMakeFiles/wk_core.dir/wankeeper/level2.cpp.o.d"
  "CMakeFiles/wk_core.dir/wankeeper/policy.cpp.o"
  "CMakeFiles/wk_core.dir/wankeeper/policy.cpp.o.d"
  "CMakeFiles/wk_core.dir/wankeeper/predictor.cpp.o"
  "CMakeFiles/wk_core.dir/wankeeper/predictor.cpp.o.d"
  "CMakeFiles/wk_core.dir/wankeeper/token.cpp.o"
  "CMakeFiles/wk_core.dir/wankeeper/token.cpp.o.d"
  "CMakeFiles/wk_core.dir/wankeeper/token_manager.cpp.o"
  "CMakeFiles/wk_core.dir/wankeeper/token_manager.cpp.o.d"
  "CMakeFiles/wk_core.dir/wankeeper/wan_transport.cpp.o"
  "CMakeFiles/wk_core.dir/wankeeper/wan_transport.cpp.o.d"
  "libwk_core.a"
  "libwk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libwk_core.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wankeeper/audit.cpp" "src/CMakeFiles/wk_core.dir/wankeeper/audit.cpp.o" "gcc" "src/CMakeFiles/wk_core.dir/wankeeper/audit.cpp.o.d"
  "/root/repo/src/wankeeper/broker.cpp" "src/CMakeFiles/wk_core.dir/wankeeper/broker.cpp.o" "gcc" "src/CMakeFiles/wk_core.dir/wankeeper/broker.cpp.o.d"
  "/root/repo/src/wankeeper/deployment.cpp" "src/CMakeFiles/wk_core.dir/wankeeper/deployment.cpp.o" "gcc" "src/CMakeFiles/wk_core.dir/wankeeper/deployment.cpp.o.d"
  "/root/repo/src/wankeeper/heartbeat.cpp" "src/CMakeFiles/wk_core.dir/wankeeper/heartbeat.cpp.o" "gcc" "src/CMakeFiles/wk_core.dir/wankeeper/heartbeat.cpp.o.d"
  "/root/repo/src/wankeeper/level2.cpp" "src/CMakeFiles/wk_core.dir/wankeeper/level2.cpp.o" "gcc" "src/CMakeFiles/wk_core.dir/wankeeper/level2.cpp.o.d"
  "/root/repo/src/wankeeper/policy.cpp" "src/CMakeFiles/wk_core.dir/wankeeper/policy.cpp.o" "gcc" "src/CMakeFiles/wk_core.dir/wankeeper/policy.cpp.o.d"
  "/root/repo/src/wankeeper/predictor.cpp" "src/CMakeFiles/wk_core.dir/wankeeper/predictor.cpp.o" "gcc" "src/CMakeFiles/wk_core.dir/wankeeper/predictor.cpp.o.d"
  "/root/repo/src/wankeeper/token.cpp" "src/CMakeFiles/wk_core.dir/wankeeper/token.cpp.o" "gcc" "src/CMakeFiles/wk_core.dir/wankeeper/token.cpp.o.d"
  "/root/repo/src/wankeeper/token_manager.cpp" "src/CMakeFiles/wk_core.dir/wankeeper/token_manager.cpp.o" "gcc" "src/CMakeFiles/wk_core.dir/wankeeper/token_manager.cpp.o.d"
  "/root/repo/src/wankeeper/wan_transport.cpp" "src/CMakeFiles/wk_core.dir/wankeeper/wan_transport.cpp.o" "gcc" "src/CMakeFiles/wk_core.dir/wankeeper/wan_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wk_zk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_zab.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

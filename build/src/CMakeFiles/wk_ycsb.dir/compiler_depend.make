# Empty compiler generated dependencies file for wk_ycsb.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libwk_ycsb.a"
)

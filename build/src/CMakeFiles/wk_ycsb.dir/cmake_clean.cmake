file(REMOVE_RECURSE
  "CMakeFiles/wk_ycsb.dir/ycsb/client.cpp.o"
  "CMakeFiles/wk_ycsb.dir/ycsb/client.cpp.o.d"
  "CMakeFiles/wk_ycsb.dir/ycsb/metrics.cpp.o"
  "CMakeFiles/wk_ycsb.dir/ycsb/metrics.cpp.o.d"
  "CMakeFiles/wk_ycsb.dir/ycsb/runner.cpp.o"
  "CMakeFiles/wk_ycsb.dir/ycsb/runner.cpp.o.d"
  "CMakeFiles/wk_ycsb.dir/ycsb/testbed.cpp.o"
  "CMakeFiles/wk_ycsb.dir/ycsb/testbed.cpp.o.d"
  "CMakeFiles/wk_ycsb.dir/ycsb/workload.cpp.o"
  "CMakeFiles/wk_ycsb.dir/ycsb/workload.cpp.o.d"
  "libwk_ycsb.a"
  "libwk_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

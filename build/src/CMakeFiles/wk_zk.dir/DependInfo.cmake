
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zk/client.cpp" "src/CMakeFiles/wk_zk.dir/zk/client.cpp.o" "gcc" "src/CMakeFiles/wk_zk.dir/zk/client.cpp.o.d"
  "/root/repo/src/zk/ensemble.cpp" "src/CMakeFiles/wk_zk.dir/zk/ensemble.cpp.o" "gcc" "src/CMakeFiles/wk_zk.dir/zk/ensemble.cpp.o.d"
  "/root/repo/src/zk/server.cpp" "src/CMakeFiles/wk_zk.dir/zk/server.cpp.o" "gcc" "src/CMakeFiles/wk_zk.dir/zk/server.cpp.o.d"
  "/root/repo/src/zk/session.cpp" "src/CMakeFiles/wk_zk.dir/zk/session.cpp.o" "gcc" "src/CMakeFiles/wk_zk.dir/zk/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wk_zab.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for wk_zk.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wk_zk.dir/zk/client.cpp.o"
  "CMakeFiles/wk_zk.dir/zk/client.cpp.o.d"
  "CMakeFiles/wk_zk.dir/zk/ensemble.cpp.o"
  "CMakeFiles/wk_zk.dir/zk/ensemble.cpp.o.d"
  "CMakeFiles/wk_zk.dir/zk/server.cpp.o"
  "CMakeFiles/wk_zk.dir/zk/server.cpp.o.d"
  "CMakeFiles/wk_zk.dir/zk/session.cpp.o"
  "CMakeFiles/wk_zk.dir/zk/session.cpp.o.d"
  "libwk_zk.a"
  "libwk_zk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_zk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libwk_zk.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/wk_store.dir/store/datatree.cpp.o"
  "CMakeFiles/wk_store.dir/store/datatree.cpp.o.d"
  "CMakeFiles/wk_store.dir/store/paths.cpp.o"
  "CMakeFiles/wk_store.dir/store/paths.cpp.o.d"
  "CMakeFiles/wk_store.dir/store/txn.cpp.o"
  "CMakeFiles/wk_store.dir/store/txn.cpp.o.d"
  "CMakeFiles/wk_store.dir/store/watch.cpp.o"
  "CMakeFiles/wk_store.dir/store/watch.cpp.o.d"
  "libwk_store.a"
  "libwk_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for wk_store.
# This may be replaced when dependencies are built.

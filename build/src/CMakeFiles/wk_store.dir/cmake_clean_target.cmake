file(REMOVE_RECURSE
  "libwk_store.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/datatree.cpp" "src/CMakeFiles/wk_store.dir/store/datatree.cpp.o" "gcc" "src/CMakeFiles/wk_store.dir/store/datatree.cpp.o.d"
  "/root/repo/src/store/paths.cpp" "src/CMakeFiles/wk_store.dir/store/paths.cpp.o" "gcc" "src/CMakeFiles/wk_store.dir/store/paths.cpp.o.d"
  "/root/repo/src/store/txn.cpp" "src/CMakeFiles/wk_store.dir/store/txn.cpp.o" "gcc" "src/CMakeFiles/wk_store.dir/store/txn.cpp.o.d"
  "/root/repo/src/store/watch.cpp" "src/CMakeFiles/wk_store.dir/store/watch.cpp.o" "gcc" "src/CMakeFiles/wk_store.dir/store/watch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
